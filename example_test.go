package repro_test

// Runnable godoc examples for the public repro API. The Sim backend is
// bit-for-bit deterministic, so its examples assert exact output; Live and
// Campaign examples assert the invariants that hold under every OS
// schedule (a unique winner, balanced validity counts) rather than
// schedule-dependent values.

import (
	"fmt"

	"repro"
)

// ExampleElect runs one election on the default Sim backend: the paper's
// model exactly, adversary-scheduled and reproducible from the seed.
func ExampleElect() {
	res, err := repro.Elect(repro.WithN(8), repro.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("winner:", res.Winner)
	fmt.Println("communicate calls:", res.Time)
	fmt.Println("participants decided:", len(res.Decisions))
	// Output:
	// winner: 3
	// communicate calls: 16
	// participants decided: 8
}

// ExampleElect_live runs the same election on the Live backend: real
// OS-scheduled goroutines, wall-clock time. The winner's identity varies
// with the schedule; its uniqueness never does.
func ExampleElect_live() {
	res, err := repro.Elect(repro.WithN(8), repro.WithSeed(1),
		repro.WithBackend(repro.Live))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	winners := 0
	for _, d := range res.Decisions {
		if d.String() == "WIN" {
			winners++
		}
	}
	fmt.Println("unique winner:", winners == 1 && res.Winner >= 0)
	fmt.Println("everyone decided:", len(res.Decisions) == 8)
	// Output:
	// unique winner: true
	// everyone decided: true
}

// ExampleElect_scenario injects a named fault scenario into a Live run:
// here the full crash budget of ⌈n/2⌉−1 processors failing at randomized
// times. Survivors still agree on at most one leader; if every survivor
// lost, the winner itself crashed and Elect reports ErrNoWinner.
func ExampleElect_scenario() {
	res, err := repro.Elect(repro.WithN(16), repro.WithSeed(7),
		repro.WithBackend(repro.Live), repro.WithScenario("crash-minority"))
	if err != nil && err != repro.ErrNoWinner {
		fmt.Println("error:", err)
		return
	}
	winners := 0
	for _, d := range res.Decisions {
		if d.String() == "WIN" {
			winners++
		}
	}
	fmt.Println("at most one winner:", winners <= 1)
	fmt.Println("accounted for:", len(res.Decisions)+len(res.Crashed) == 16)
	// Output:
	// at most one winner: true
	// accounted for: true
}

// ExampleCampaign fans independent Live elections across a worker pool and
// aggregates throughput, latency percentiles and validity counts — the
// production view of the algorithm.
func ExampleCampaign() {
	rep, err := repro.Campaign(repro.WithN(8), repro.WithRuns(16),
		repro.WithWorkers(4), repro.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("runs:", rep.Runs)
	fmt.Println("all elected:", rep.Elected == rep.Runs)
	fmt.Println("percentiles ordered:", rep.P50 <= rep.P90 && rep.P90 <= rep.P99)
	// Output:
	// runs: 16
	// all elected: true
	// percentiles ordered: true
}
