package repro_test

import (
	"errors"
	"testing"

	"repro"
	"repro/internal/core"
)

func TestElectDefaults(t *testing.T) {
	res, err := repro.Elect(repro.WithSeed(1))
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if res.Winner < 0 || res.Winner >= 16 {
		t.Fatalf("winner = %d", res.Winner)
	}
	if len(res.Decisions) != 16 {
		t.Fatalf("decisions = %d, want 16", len(res.Decisions))
	}
	wins := 0
	for _, d := range res.Decisions {
		if d == core.Win {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("wins = %d", wins)
	}
	if res.Time < 1 || res.Messages < 1 || res.Rounds < 1 {
		t.Fatalf("degenerate metrics: %+v", res)
	}
}

func TestElectTournament(t *testing.T) {
	res, err := repro.Elect(
		repro.WithN(16),
		repro.WithAlgorithm(repro.Tournament),
		repro.WithSchedule(repro.LockStep),
		repro.WithSeed(2),
	)
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if res.Winner < 0 {
		t.Fatal("no winner")
	}
}

func TestElectPartialParticipation(t *testing.T) {
	res, err := repro.Elect(repro.WithN(32), repro.WithParticipants(4), repro.WithSeed(3))
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if len(res.Decisions) != 4 {
		t.Fatalf("decisions = %d, want 4", len(res.Decisions))
	}
	if int(res.Winner) >= 4 {
		t.Fatalf("winner %d outside the participant set", res.Winner)
	}
}

func TestElectDeterministic(t *testing.T) {
	a, err := repro.Elect(repro.WithN(24), repro.WithSeed(7))
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	b, err := repro.Elect(repro.WithN(24), repro.WithSeed(7))
	if err != nil {
		t.Fatalf("Elect: %v", err)
	}
	if a.Winner != b.Winner || a.Messages != b.Messages || a.Time != b.Time {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
}

func TestElectValidation(t *testing.T) {
	if _, err := repro.Elect(repro.WithN(0)); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithParticipants(5)); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestRename(t *testing.T) {
	res, err := repro.Rename(repro.WithN(16), repro.WithSeed(4))
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	seen := map[int]bool{}
	for id, u := range res.Names {
		if u < 1 || u > 16 {
			t.Fatalf("processor %d got name %d", id, u)
		}
		if seen[u] {
			t.Fatalf("duplicate name %d", u)
		}
		seen[u] = true
	}
	if len(res.Names) != 16 {
		t.Fatalf("names = %d", len(res.Names))
	}
}

func TestRenameRandomScanBaseline(t *testing.T) {
	res, err := repro.Rename(
		repro.WithN(8),
		repro.WithAlgorithm(repro.RandomScan),
		repro.WithSchedule(repro.LockStep),
		repro.WithSeed(5),
	)
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if len(res.Names) != 8 {
		t.Fatalf("names = %d", len(res.Names))
	}
}

func TestRenameRejectsTournament(t *testing.T) {
	if _, err := repro.Rename(repro.WithAlgorithm(repro.Tournament)); err == nil {
		t.Fatal("tournament accepted as renaming algorithm")
	}
}

func TestSiftVariants(t *testing.T) {
	for _, algo := range []repro.Algorithm{repro.BasicSift, repro.HetSift, repro.NaiveSift} {
		res, err := repro.Sift(
			repro.WithN(32),
			repro.WithAlgorithm(algo),
			repro.WithSchedule(repro.LockStep),
			repro.WithSeed(6),
		)
		if err != nil {
			t.Fatalf("Sift(%s): %v", algo, err)
		}
		if res.Survivors < 1 || res.Survivors > 32 {
			t.Fatalf("Sift(%s): survivors = %d", algo, res.Survivors)
		}
	}
}

func TestSiftRejectsRenaming(t *testing.T) {
	if _, err := repro.Sift(repro.WithAlgorithm(repro.RandomScan)); err == nil {
		t.Fatal("renaming accepted as sifting algorithm")
	}
}

func TestElectUnderCrashesMayHaveNoWinner(t *testing.T) {
	// With the crashing schedule the winner may die before deciding; the
	// API reports that case as ErrNoWinner, never as a phantom winner.
	sawWinner, sawNoWinner := false, false
	for seed := int64(0); seed < 10; seed++ {
		res, err := repro.Elect(
			repro.WithN(16),
			repro.WithSchedule(repro.Crashing),
			repro.WithFaults(7),
			repro.WithSeed(seed),
		)
		switch {
		case err == nil:
			sawWinner = true
			if res.Winner < 0 {
				t.Fatal("nil error with no winner")
			}
		case errors.Is(err, repro.ErrNoWinner):
			sawNoWinner = true
		default:
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
	if !sawWinner {
		t.Fatal("crashes prevented every election from electing (suspicious)")
	}
	_ = sawNoWinner // either outcome is legal; both together show the API surface
}
