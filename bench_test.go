package repro_test

// The benchmark harness regenerates every experiment of the paper's
// evaluation (see DESIGN.md §3 and EXPERIMENTS.md): one benchmark per table
// (T1–T13, ablations A1–A2) and per claim-figure (F1–F3), each reporting the
// experiment's headline quantity as a custom metric, plus micro-benchmarks
// of the simulation substrate.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// The Tx/Fx benchmarks execute their full experiment at Quick scale per
// iteration; absolute ns/op therefore measures experiment cost, while the
// custom metrics carry the reproduced quantities (survivors, communicate
// calls, message ratios, ...).

import (
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/quorum"
	"repro/internal/sim"
)

// benchScale keeps every experiment benchmark in seconds; cmd/reproduce
// regenerates the full-scale tables recorded in EXPERIMENTS.md.
var benchScale = expt.Scale{Seeds: 2, MaxN: 64}

// runTable executes one experiment generator per iteration.
func runTable(b *testing.B, gen func(expt.Scale) *expt.Table) *expt.Table {
	b.Helper()
	var tab *expt.Table
	for i := 0; i < b.N; i++ {
		tab = gen(benchScale)
	}
	if len(tab.Rows) == 0 {
		b.Fatal("experiment produced no rows")
	}
	return tab
}

// lastField parses the numeric cell at column col of the last row matching
// the given prefix filter (empty filter = last row).
func lastField(b *testing.B, tab *expt.Table, col int, match func([]string) bool) float64 {
	b.Helper()
	for i := len(tab.Rows) - 1; i >= 0; i-- {
		if match == nil || match(tab.Rows[i]) {
			v, err := strconv.ParseFloat(tab.Rows[i][col], 64)
			if err != nil {
				b.Fatalf("parse %q: %v", tab.Rows[i][col], err)
			}
			return v
		}
	}
	b.Fatal("no matching row")
	return 0
}

func BenchmarkT1PoisonPillSurvivors(b *testing.B) {
	tab := runTable(b, expt.T1PoisonPillSurvivors)
	// Mean survivors per √n at the largest size under the sequential
	// (worst-case) schedule: Claims 3.1+3.2 predict a Θ(1) ratio.
	ratio := lastField(b, tab, 6, func(r []string) bool { return r[1] == "sequential" })
	b.ReportMetric(ratio, "survivors/sqrt(n)")
}

func BenchmarkT2HetSurvivors(b *testing.B) {
	tab := runTable(b, expt.T2HetSurvivors)
	ratio := lastField(b, tab, 6, func(r []string) bool { return r[1] == "sequential" })
	b.ReportMetric(ratio, "survivors/log2(k)")
}

func BenchmarkT3ElectionTime(b *testing.B) {
	tab := runTable(b, expt.T3ElectionTime)
	pp := lastField(b, tab, 3, func(r []string) bool {
		return r[1] == string(expt.AlgoPoisonPill) && r[2] == "lockstep"
	})
	tn := lastField(b, tab, 3, func(r []string) bool {
		return r[1] == string(expt.AlgoTournament) && r[2] == "lockstep"
	})
	b.ReportMetric(pp, "poisonpill-time")
	b.ReportMetric(tn, "tournament-time")
	b.ReportMetric(tn/pp, "speedup")
}

func BenchmarkT4ElectionMessages(b *testing.B) {
	tab := runTable(b, expt.T4ElectionMessages)
	b.ReportMetric(lastField(b, tab, 4, nil), "messages/(kn)")
}

func BenchmarkT5Adaptivity(b *testing.B) {
	tab := runTable(b, expt.T5Adaptivity)
	b.ReportMetric(lastField(b, tab, 2, nil), "time-at-max-k")
}

func BenchmarkT6RenamingMessages(b *testing.B) {
	tab := runTable(b, expt.T6RenamingMessages)
	ratio := lastField(b, tab, 3, func(r []string) bool { return r[1] == string(expt.AlgoRenaming) })
	b.ReportMetric(ratio, "messages/n^2")
}

func BenchmarkT7RenamingTime(b *testing.B) {
	tab := runTable(b, expt.T7RenamingTime)
	t := lastField(b, tab, 3, func(r []string) bool { return r[1] == string(expt.AlgoRenaming) })
	b.ReportMetric(t, "renaming-time")
}

func BenchmarkT8LowerBound(b *testing.B) {
	tab := runTable(b, expt.T8LowerBound)
	b.ReportMetric(lastField(b, tab, 4, nil), "messages/(kn)")
}

func BenchmarkT9RoundDecay(b *testing.B) {
	tab := runTable(b, expt.T9RoundDecay)
	b.ReportMetric(lastField(b, tab, 2, nil), "worst-max-round")
}

func BenchmarkT10NaiveVsPoisonPill(b *testing.B) {
	tab := runTable(b, expt.T10NaiveVsPoisonPill)
	naive := lastField(b, tab, 3, func(r []string) bool { return r[1] == string(expt.AlgoNaiveSift) })
	pill := lastField(b, tab, 3, func(r []string) bool { return r[1] == string(expt.AlgoBasicSift) })
	b.ReportMetric(naive, "naive-survivor-fraction")
	b.ReportMetric(pill, "poisonpill-survivor-fraction")
}

func BenchmarkT11FaultTolerance(b *testing.B) {
	tab := runTable(b, expt.T11FaultTolerance)
	b.ReportMetric(lastField(b, tab, 4, nil), "violations")
}

func BenchmarkF1HeadlineCurve(b *testing.B) {
	tab := runTable(b, expt.F1HeadlineCurve)
	b.ReportMetric(lastField(b, tab, 3, nil), "tournament/poisonpill")
}

func BenchmarkF2SurvivorHistogram(b *testing.B) {
	tab := runTable(b, expt.F2SurvivorHistogram)
	b.ReportMetric(lastField(b, tab, 4, func(r []string) bool { return r[0] == string(expt.AlgoHetSift) }), "het-mean-survivors")
}

func BenchmarkF3RenamingDistributions(b *testing.B) {
	tab := runTable(b, expt.F3RenamingDistributions)
	b.ReportMetric(lastField(b, tab, 4, nil), "max-trials")
}

// --- substrate micro-benchmarks ------------------------------------------

// BenchmarkKernelRoundtrip measures one message round-trip (send, deliver,
// step, reply, deliver, step) through the kernel.
func BenchmarkKernelRoundtrip(b *testing.B) {
	type echo struct{}
	k := sim.NewKernel(sim.Config{N: 2, Seed: 1, Budget: int64(b.N)*16 + 1024})
	k.SetService(1, serviceFunc(func(from sim.ProcID, payload any) (any, bool) {
		return echo{}, true
	}))
	got := 0
	k.SetService(0, serviceFunc(func(from sim.ProcID, payload any) (any, bool) {
		got++
		return nil, false
	}))
	k.Spawn(0, func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Send(1, echo{})
			want := i + 1
			p.Await(func() bool { return got >= want })
		}
	})
	b.ResetTimer()
	if _, err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// serviceFunc adapts a function to sim.Service.
type serviceFunc func(sim.ProcID, any) (any, bool)

func (f serviceFunc) HandleMessage(from sim.ProcID, payload any) (any, bool) {
	return f(from, payload)
}

// BenchmarkQuorumPropagateCollect measures one propagate + collect pair over
// a 32-processor system.
func BenchmarkQuorumPropagateCollect(b *testing.B) {
	const n = 32
	k := sim.NewKernel(sim.Config{N: n, Seed: 1, Budget: int64(b.N)*int64(n)*8 + 4096})
	stores := quorum.InstallStores(k)
	k.Spawn(0, func(p *sim.Proc) {
		c := quorum.NewComm(p, stores[0])
		for i := 0; i < b.N; i++ {
			c.Propagate("bench", i)
			c.Collect("bench")
		}
	})
	b.ResetTimer()
	if _, err := k.Run(nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkElection64 measures one complete 64-processor election.
func BenchmarkElection64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Elect(
			repro.WithN(64),
			repro.WithSchedule(repro.LockStep),
			repro.WithSeed(int64(i)),
		); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTournament64 measures the baseline on the same workload.
func BenchmarkTournament64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Elect(
			repro.WithN(64),
			repro.WithAlgorithm(repro.Tournament),
			repro.WithSchedule(repro.LockStep),
			repro.WithSeed(int64(i)),
		); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenaming32 measures one complete 32-processor renaming.
func BenchmarkRenaming32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := repro.Rename(
			repro.WithN(32),
			repro.WithSchedule(repro.LockStep),
			repro.WithSeed(int64(i)),
		); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT12TimeMetric(b *testing.B) {
	tab := runTable(b, expt.T12TimeMetric)
	b.ReportMetric(lastField(b, tab, 4, nil), "makespan/calls")
}

func BenchmarkT13RoundDecaySeries(b *testing.B) {
	tab := runTable(b, expt.T13RoundDecaySeries)
	b.ReportMetric(float64(len(tab.Rows)), "schedules")
}

func BenchmarkA1BiasAblation(b *testing.B) {
	tab := runTable(b, expt.A1BiasAblation)
	paper := lastField(b, tab, 2, func(r []string) bool { return r[1] == "1/√n (paper)" })
	b.ReportMetric(paper, "paper-bias-survivors")
}

// --- live backend (wall-clock) benchmarks --------------------------------

// BenchmarkT11LiveElectionWallClock measures the wall-clock latency of one
// complete PoisonPill election on the real-concurrency goroutine backend at
// several system sizes. ns/op is the election latency; the custom metrics
// carry the paper's complexity measures for cross-checking against the sim
// backend (T3/T9).
func BenchmarkT11LiveElectionWallClock(b *testing.B) {
	for _, n := range []int{8, 64, 256} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var rounds, calls float64
			for i := 0; i < b.N; i++ {
				res, err := live.Elect(live.Config{N: n, Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Rounds)
				calls += float64(res.Time)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(calls/float64(b.N), "comm-calls")
		})
	}
}

// BenchmarkT12CampaignThroughput measures elections/second through the
// parallel campaign engine at one worker and at GOMAXPROCS workers. The
// ratio between the two sub-benchmarks' elections/s metrics is the
// multi-core speedup; on a multi-core machine it exceeds 1 because campaign
// runs are independent and share no state.
func BenchmarkT12CampaignThroughput(b *testing.B) {
	workers := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		workers = append(workers, g)
	}
	const runsPerIter = 32
	for _, w := range workers {
		b.Run("workers="+strconv.Itoa(w), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				rep, err := campaign.Run(campaign.Config{
					Runs: runsPerIter, Workers: w, N: 32, BaseSeed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				tput += rep.Throughput
			}
			b.ReportMetric(tput/float64(b.N), "elections/s")
		})
	}
}

// BenchmarkLiveElectionCrashFaults measures a live election with the full
// crash budget ⌈n/2⌉−1 firing inside a tight window, so most crashes land
// mid-protocol. ns/op is the degraded-mode election latency; the custom
// metrics report how many participants each run lost and how often a
// surviving winner still emerged (a winnerless run means the linearized
// winner itself crashed — allowed by Theorem A.5, never more than one
// winner).
func BenchmarkLiveElectionCrashFaults(b *testing.B) {
	sc := fault.Scenario{
		Name:        "bench-crash",
		Crashes:     fault.CrashMax,
		CrashWindow: 500 * time.Microsecond,
	}
	for _, n := range []int{16, 64} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var crashed, elected float64
			for i := 0; i < b.N; i++ {
				res, err := live.Elect(live.Config{N: n, Seed: int64(i), Scenario: sc})
				if err != nil {
					b.Fatal(err)
				}
				crashed += float64(len(res.Crashed))
				if res.Winner >= 0 {
					elected++
				}
			}
			b.ReportMetric(crashed/float64(b.N), "crashed/run")
			b.ReportMetric(elected/float64(b.N), "elected-frac")
		})
	}
}

// BenchmarkLiveElectionHeavyTail measures a live election under
// Pareto-distributed link latency (α = 1.2): most messages are fast, a few
// are extreme stragglers. ns/op captures the wall-clock cost of the tail;
// the comm-calls metric shows the paper's time metric is latency-blind —
// quorums wait only for the fastest majority, so the O(log* k) call count
// matches the fault-free runs even as wall-clock latency balloons.
func BenchmarkLiveElectionHeavyTail(b *testing.B) {
	sc := fault.HeavyTail()
	for _, n := range []int{16, 64} {
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			var calls, rounds float64
			for i := 0; i < b.N; i++ {
				res, err := live.Elect(live.Config{N: n, Seed: int64(i), Scenario: sc})
				if err != nil {
					b.Fatal(err)
				}
				calls += float64(res.Time)
				rounds += float64(res.Rounds)
			}
			b.ReportMetric(calls/float64(b.N), "comm-calls")
			b.ReportMetric(rounds/float64(b.N), "rounds")
		})
	}
}

func BenchmarkA2HetBiasAblation(b *testing.B) {
	tab := runTable(b, expt.A2HetBiasAblation)
	paper := lastField(b, tab, 3, func(r []string) bool { return r[1] == "ln l/l (paper)" && r[2] == "sequential" })
	fair := lastField(b, tab, 3, func(r []string) bool { return r[1] == "1/2" && r[2] == "sequential" })
	b.ReportMetric(paper, "paper-bias-survivors")
	b.ReportMetric(fair, "fair-bias-survivors")
}
