// Package repro is a from-scratch Go reproduction of
//
//	Dan Alistarh, Rati Gelashvili, Adrian Vladu.
//	"How to Elect a Leader Faster than a Tournament." PODC 2015.
//
// It provides the paper's O(log* k)-time, O(kn)-message randomized leader
// election (the PoisonPill construction), the O(log² n)-time, O(n²)-message
// strong renaming built on it, the Θ(log n) tournament baseline it improves
// upon, and the asynchronous message-passing model with a strong adaptive
// adversary that all of them are defined against — implemented as a
// deterministic discrete-event simulation.
//
// This package is the stable entry point: configure a run with functional
// options and execute it.
//
//	res, err := repro.Elect(repro.WithN(64), repro.WithSeed(1))
//	if err != nil { ... }
//	fmt.Println("winner:", res.Winner, "time:", res.Time)
//
// The underlying pieces (kernel, quorum layer, algorithms, adversary
// strategies, experiment harness) live in internal/ packages; examples/ and
// cmd/ show them in use.
package repro

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/sim"
)

// Algorithm selects a leader-election protocol.
type Algorithm = expt.Algorithm

// Leader-election algorithm choices.
const (
	// PoisonPill is the paper's O(log* k) election (default).
	PoisonPill = expt.AlgoPoisonPill
	// Tournament is the Θ(log n) baseline of [AGTV92].
	Tournament = expt.AlgoTournament
)

// Schedule selects the adversary strategy that drives the run.
type Schedule = expt.Schedule

// Adversary schedule choices.
const (
	// Fair delivers and schedules at random (benign asynchrony, default).
	Fair = expt.SchedFair
	// LockStep is a deterministic synchronous-like schedule.
	LockStep = expt.SchedLockStep
	// Sequential runs participants one at a time (Section 3.2's schedule).
	Sequential = expt.SchedSequential
	// SequentialRounds is the per-round sequential schedule.
	SequentialRounds = expt.SchedSeqRounds
	// FlipAware completes 0-flippers before any 1-flipper is visible
	// (Section 1's attack on naive sifting).
	FlipAware = expt.SchedFlipAware
	// Crashing crashes up to the configured number of participants.
	Crashing = expt.SchedCrash
	// Bubble is the Theorem B.2 lower-bound construction.
	Bubble = expt.SchedBubble
	// StaleViews starves half the system of updates (renaming skew).
	StaleViews = expt.SchedStaleViews
)

// Backend selects the execution backend a run executes on.
type Backend string

// Execution backend choices.
const (
	// Sim is the deterministic discrete-event kernel with a strong adaptive
	// adversary — the paper's model, exactly (default). Time is virtual.
	Sim Backend = "sim"
	// Live runs the same algorithms on real OS-scheduled goroutines with
	// channel-backed quorums: wall-clock time, genuine contention, no
	// adversary control. Safety properties hold on both backends. The comm
	// substrate is orthogonal — pick it with WithTransport (ChanTransport,
	// TCPTransport or UDPTransport).
	Live Backend = "live"
	// BackendTCP is shorthand for WithBackend(Live) plus
	// WithTransport(TCPTransport).
	//
	// Deprecated: backend and transport are independent axes; select them
	// separately with WithBackend(Live) and WithTransport. BackendTCP
	// remains as an alias and is folded into that pair.
	BackendTCP Backend = "live-tcp"
)

// Transport selects the Live backend's comm substrate (see internal/live
// and the wire/transport/electd packages).
type Transport = live.Transport

// Live-backend transport choices.
const (
	// ChanTransport is the in-process substrate: server-goroutine mailboxes
	// and channel broadcast (default).
	ChanTransport = live.TransportChan
	// TCPTransport routes quorum traffic through electd servers over
	// loopback TCP: a real network boundary under the same algorithms.
	TCPTransport = live.TransportTCP
	// UDPTransport routes quorum traffic through electd servers over
	// loopback UDP datagrams: the same wire frames packed into datagrams
	// with batched syscalls, and the client pool's retransmit-and-dedup as
	// the reliability layer, strictly below the quorum semantics.
	UDPTransport = live.TransportUDP
)

// config collects the run parameters; zero values select defaults.
type config struct {
	n, k          int
	seed          int64
	algorithm     Algorithm
	schedule      Schedule
	backend       Backend
	transport     Transport
	faults        int
	budget        int64
	scenario      string
	runs, workers int
}

// Option configures a run.
type Option func(*config)

// WithN sets the system size (total processors). Default 16.
func WithN(n int) Option { return func(c *config) { c.n = n } }

// WithParticipants sets the number of protocol participants k ≤ n; the
// remaining processors only acknowledge messages. Default: k = n.
func WithParticipants(k int) Option { return func(c *config) { c.k = k } }

// WithSeed fixes the run's randomness; equal seeds give identical runs.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithAlgorithm selects PoisonPill (default) or Tournament for Elect.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algorithm = a } }

// WithSchedule selects the adversary strategy. Default Fair. Adversary
// schedules exist only on the Sim backend.
func WithSchedule(s Schedule) Option { return func(c *config) { c.schedule = s } }

// WithBackend selects the execution backend: Sim (default) or Live. The
// deprecated BackendTCP alias is accepted and folded into Live +
// TCPTransport.
func WithBackend(b Backend) Option { return func(c *config) { c.backend = b } }

// WithTransport selects the Live backend's comm substrate: ChanTransport
// (default), TCPTransport or UDPTransport. Requires WithBackend(Live).
func WithTransport(t Transport) Option { return func(c *config) { c.transport = t } }

// WithFaults sets the crash budget used by the Crashing schedule.
func WithFaults(f int) Option { return func(c *config) { c.faults = f } }

// WithBudget overrides the kernel's action budget (safety bound on run
// length).
func WithBudget(b int64) Option { return func(c *config) { c.budget = b } }

// WithScenario injects a named fault/latency scenario into Live-backend
// runs: crash schedules, per-link delay distributions, slow processors,
// message reordering. Scenarios() lists the names. Requires
// WithBackend(Live).
func WithScenario(name string) Option { return func(c *config) { c.scenario = name } }

// WithRuns sets the number of elections a Campaign executes. Default 128.
func WithRuns(r int) Option { return func(c *config) { c.runs = r } }

// WithWorkers sets a Campaign's worker-pool size. Default: GOMAXPROCS.
func WithWorkers(w int) Option { return func(c *config) { c.workers = w } }

// Scenarios lists the named fault/latency scenarios WithScenario accepts,
// fault-free "baseline" first.
func Scenarios() []string { return fault.Names() }

func buildConfig(opts []Option) config {
	c := config{n: 16, schedule: Fair, algorithm: PoisonPill, backend: Sim}
	for _, o := range opts {
		o(&c)
	}
	if c.k == 0 {
		c.k = c.n
	}
	return c
}

// resolveBackend folds the BackendTCP shorthand into Live + TCPTransport.
func (c *config) resolveBackend() {
	if c.backend == BackendTCP {
		c.backend = Live
		if c.transport == "" {
			c.transport = TCPTransport
		}
	}
}

func (c config) validate() error {
	if c.n < 1 {
		return fmt.Errorf("repro: system size %d must be at least 1", c.n)
	}
	if c.k < 1 || c.k > c.n {
		return fmt.Errorf("repro: participants %d must be in [1, %d]", c.k, c.n)
	}
	switch c.backend {
	case Sim, Live:
	default:
		return fmt.Errorf("repro: unknown backend %q", c.backend)
	}
	if c.transport != "" && c.backend != Live {
		return fmt.Errorf("repro: transport %q requires the Live backend (the Sim kernel has no network)", c.transport)
	}
	switch c.transport {
	case "", ChanTransport, TCPTransport, UDPTransport:
	default:
		return fmt.Errorf("repro: unknown transport %q", c.transport)
	}
	if c.backend == Live {
		if c.schedule != Fair {
			return fmt.Errorf("repro: schedule %q requires the Sim backend (the Live backend has no adversary)", c.schedule)
		}
		if c.faults > 0 {
			return fmt.Errorf("repro: crash faults require the Sim backend (for Live crash scenarios use WithScenario)")
		}
		if c.budget > 0 {
			return fmt.Errorf("repro: the action budget is a Sim kernel bound; Live runs are bounded by a wall-clock timeout")
		}
	}
	if c.scenario != "" && c.backend != Live {
		return fmt.Errorf("repro: scenario %q requires the Live backend (Sim runs are driven by adversary schedules)", c.scenario)
	}
	return nil
}

// resolveScenario maps the configured scenario name to its fault.Scenario
// (the zero, fault-free scenario when unset).
func (c config) resolveScenario() (fault.Scenario, error) {
	if c.scenario == "" {
		return fault.Scenario{}, nil
	}
	sc, ok := fault.Lookup(c.scenario)
	if !ok {
		return fault.Scenario{}, fmt.Errorf("repro: unknown scenario %q (available: %s)",
			c.scenario, strings.Join(fault.Names(), ", "))
	}
	return sc, nil
}

// ErrNoWinner is returned by Elect when every potential winner crashed
// before deciding — possible under the Sim backend's Crashing schedule and
// under Live-backend crash scenarios (WithScenario). It reports a
// legitimate fault-model outcome, not a safety violation: the linearized
// winner died holding the election, and every survivor correctly lost.
var ErrNoWinner = errors.New("repro: all potential winners crashed before deciding")

// ElectionResult reports one leader-election run.
type ElectionResult struct {
	// Winner is the elected processor.
	Winner sim.ProcID
	// Decisions maps every returning participant to WIN/LOSE.
	Decisions map[sim.ProcID]core.Decision
	// Crashed lists participants killed mid-protocol by a WithScenario
	// crash schedule (Live backend), in id order.
	Crashed []sim.ProcID
	// Time is the maximum number of communicate calls any processor made —
	// the paper's time metric (Claim 2.1).
	Time int
	// Messages is the total number of point-to-point messages sent.
	Messages int64
	// PayloadBytes is the total wire-codec payload size of those messages —
	// the exact internal/wire frame-body accounting, consistent across the
	// Sim kernel (Stats.PayloadBytes), the Live chan substrate and the TCP
	// transport.
	PayloadBytes int64
	// Rounds is the highest election round reached.
	Rounds int
	// Stats exposes the full kernel statistics.
	Stats sim.Stats
}

// Elect runs one leader election and returns the winner and complexity
// measures. Exactly one participant wins; every other returns LOSE.
//
// On the Live backend (WithBackend(Live)) the election runs on real
// goroutines: Time and Messages keep their meanings, Stats stays zero
// (there is no kernel), and results vary with the OS schedule — only the
// winner's uniqueness is deterministic.
func Elect(opts ...Option) (ElectionResult, error) {
	c := buildConfig(opts)
	c.resolveBackend()
	if err := c.validate(); err != nil {
		return ElectionResult{}, err
	}
	if c.backend == Live {
		return electLive(c)
	}
	r := expt.Run(expt.Config{
		N: c.n, K: c.k, Seed: c.seed,
		Algorithm: c.algorithm, Schedule: c.schedule,
		Faults: c.faults, Budget: c.budget,
	})
	if r.Err != nil {
		return ElectionResult{}, fmt.Errorf("repro: election run: %w", r.Err)
	}
	res := ElectionResult{
		Winner:       -1,
		Decisions:    r.Decisions,
		Time:         r.Stats.MaxCommunicateCalls(),
		Messages:     r.Stats.MessagesSent,
		PayloadBytes: r.Stats.PayloadBytes,
		Rounds:       r.MaxRound,
		Stats:        r.Stats,
	}
	for id, d := range r.Decisions {
		if d == core.Win {
			res.Winner = id
		}
	}
	if res.Winner < 0 {
		return res, ErrNoWinner
	}
	return res, nil
}

// electLive runs Elect on the real-concurrency backend.
func electLive(c config) (ElectionResult, error) {
	switch c.algorithm {
	case PoisonPill, Tournament:
	default:
		return ElectionResult{}, fmt.Errorf("repro: %q is not an election algorithm", c.algorithm)
	}
	sc, err := c.resolveScenario()
	if err != nil {
		return ElectionResult{}, err
	}
	r, err := live.Elect(live.Config{
		N: c.n, K: c.k, Seed: c.seed, Algorithm: live.Algorithm(c.algorithm), Scenario: sc,
		Transport: c.transport,
	})
	if err != nil {
		return ElectionResult{}, fmt.Errorf("repro: live election run: %w", err)
	}
	res := ElectionResult{
		Winner:       r.Winner,
		Decisions:    r.Decisions,
		Crashed:      r.Crashed,
		Time:         r.Time,
		Messages:     r.Messages,
		PayloadBytes: r.Bytes,
		Rounds:       r.Rounds,
	}
	if res.Winner < 0 {
		// Every survivor lost: the linearized winner is among the crashed,
		// exactly as under the Sim backend's Crashing schedule.
		return res, ErrNoWinner
	}
	return res, nil
}

// CampaignReport summarises a parallel election campaign: many independent
// elections fanned across a worker pool (see internal/campaign).
type CampaignReport struct {
	// Runs and Workers echo the effective configuration.
	Runs, Workers int
	// Elapsed is the campaign's wall-clock duration; Throughput its
	// elections completed per second.
	Elapsed    time.Duration
	Throughput float64
	// MeanLatency and the percentiles summarise per-election wall-clock
	// latency.
	MeanLatency, P50, P90, P99, MaxLatency time.Duration
	// MeanTime is the mean of the paper's time metric (max communicate
	// calls per processor) across runs.
	MeanTime float64
	// Elected counts runs with a unique surviving winner; WinnerCrashed
	// counts runs whose winner crashed before returning (possible only
	// under a WithScenario crash schedule); NoQuorum counts runs in which
	// every client was starved of majority quorums by a never-healing
	// partition (NoQuorumOK scenarios only); Crashed totals participants
	// killed across all runs and Starved those that aborted quorumless.
	Elected, WinnerCrashed, NoQuorum, Crashed, Starved int
}

// Campaign fans WithRuns independent elections across a WithWorkers-sized
// pool and aggregates throughput, latency percentiles and election-validity
// counts. It accepts the options of Elect plus WithRuns/WithWorkers, with
// two exceptions: WithFaults and WithBudget are single-run Sim knobs the
// campaign engine does not carry and are rejected rather than ignored. The
// default backend is Live (wall-clock latency is the campaign question),
// and WithScenario injects a fault/latency scenario into every run.
func Campaign(opts ...Option) (CampaignReport, error) {
	c := config{n: 16, schedule: Fair, algorithm: PoisonPill, backend: Live}
	for _, o := range opts {
		o(&c)
	}
	if c.k == 0 {
		c.k = c.n
	}
	c.resolveBackend()
	if err := c.validate(); err != nil {
		return CampaignReport{}, err
	}
	if c.faults > 0 {
		return CampaignReport{}, fmt.Errorf("repro: WithFaults is not supported in campaigns (use WithScenario crash scenarios on the Live backend)")
	}
	if c.budget > 0 {
		return CampaignReport{}, fmt.Errorf("repro: WithBudget is not supported in campaigns")
	}
	sc, err := c.resolveScenario()
	if err != nil {
		return CampaignReport{}, err
	}
	rep, err := campaign.Run(campaign.Config{
		Runs: c.runs, Workers: c.workers, N: c.n, K: c.k, BaseSeed: c.seed,
		Algorithm: live.Algorithm(c.algorithm), Backend: campaign.Backend(c.backend),
		Schedule: c.schedule, Scenario: sc, Transport: c.transport,
	})
	if err != nil {
		return CampaignReport{}, fmt.Errorf("repro: %w", err)
	}
	return CampaignReport{
		Runs: rep.Runs, Workers: rep.Workers,
		Elapsed: rep.Elapsed, Throughput: rep.Throughput,
		MeanLatency: rep.Latency.Mean, P50: rep.Latency.P50, P90: rep.Latency.P90,
		P99: rep.Latency.P99, MaxLatency: rep.Latency.Max,
		MeanTime: rep.MeanTime,
		Elected:  rep.Elected, WinnerCrashed: rep.WinnerCrashed,
		NoQuorum: rep.NoQuorum, Crashed: rep.Crashed, Starved: rep.Starved,
	}, nil
}

// RenameResult reports one renaming run.
type RenameResult struct {
	// Names maps each returning participant to its unique name in [1, n].
	Names map[sim.ProcID]int
	// Time is the maximum number of communicate calls any processor made.
	Time int
	// Messages is the total number of messages sent.
	Messages int64
	// Stats exposes the full kernel statistics.
	Stats sim.Stats
}

// Rename runs the strong renaming algorithm: every participant receives a
// distinct name in [1, n].
func Rename(opts ...Option) (RenameResult, error) {
	c := buildConfig(opts)
	c.resolveBackend()
	if err := c.validate(); err != nil {
		return RenameResult{}, err
	}
	if c.backend == Live {
		return RenameResult{}, fmt.Errorf("repro: renaming is not yet supported on the Live backend")
	}
	algo := expt.AlgoRenaming
	if c.algorithm == Tournament {
		return RenameResult{}, fmt.Errorf("repro: %q is not a renaming algorithm", c.algorithm)
	}
	if c.algorithm == expt.AlgoRandomScan {
		algo = expt.AlgoRandomScan
	}
	r := expt.Run(expt.Config{
		N: c.n, K: c.k, Seed: c.seed,
		Algorithm: algo, Schedule: c.schedule,
		Faults: c.faults, Budget: c.budget,
	})
	if r.Err != nil {
		return RenameResult{}, fmt.Errorf("repro: renaming run: %w", r.Err)
	}
	return RenameResult{
		Names:    r.Names,
		Time:     r.Stats.MaxCommunicateCalls(),
		Messages: r.Stats.MessagesSent,
		Stats:    r.Stats,
	}, nil
}

// RandomScan selects the [AAG+10] random-scan baseline for Rename.
const RandomScan = expt.AlgoRandomScan

// SiftResult reports one standalone sifting round.
type SiftResult struct {
	// Survivors is the number of participants that survived the round.
	Survivors int
	// Outcomes maps each participant to SURVIVE/DIE.
	Outcomes map[sim.ProcID]core.Outcome
	// Stats exposes the full kernel statistics.
	Stats sim.Stats
}

// Sifter choices for Sift.
const (
	// BasicSift is one round of Figure 1 (O(√n) survivors).
	BasicSift = expt.AlgoBasicSift
	// HetSift is one round of Figure 2 (O(log²k) survivors).
	HetSift = expt.AlgoHetSift
	// NaiveSift is the introduction's broken strawman.
	NaiveSift = expt.AlgoNaiveSift
)

// Sift runs one standalone sifting round (use WithAlgorithm with BasicSift,
// HetSift or NaiveSift). At least one participant always survives.
func Sift(opts ...Option) (SiftResult, error) {
	c := buildConfig(opts)
	c.resolveBackend()
	if err := c.validate(); err != nil {
		return SiftResult{}, err
	}
	algo := c.algorithm
	if algo == PoisonPill {
		algo = BasicSift
	}
	switch algo {
	case BasicSift, HetSift, NaiveSift:
	default:
		return SiftResult{}, fmt.Errorf("repro: %q is not a sifting algorithm", algo)
	}
	if c.backend == Live {
		if algo == NaiveSift {
			return SiftResult{}, fmt.Errorf("repro: %q requires the Sim backend (its failure mode needs the adversary)", algo)
		}
		r, err := live.Sift(live.Config{
			N: c.n, K: c.k, Seed: c.seed, Algorithm: live.Algorithm(algo),
			Transport: c.transport,
		})
		if err != nil {
			return SiftResult{}, fmt.Errorf("repro: live sift run: %w", err)
		}
		survivors := 0
		for _, o := range r.Outcomes {
			if o == core.Survive {
				survivors++
			}
		}
		return SiftResult{Survivors: survivors, Outcomes: r.Outcomes}, nil
	}
	r := expt.Run(expt.Config{
		N: c.n, K: c.k, Seed: c.seed,
		Algorithm: algo, Schedule: c.schedule,
		Faults: c.faults, Budget: c.budget,
	})
	if r.Err != nil {
		return SiftResult{}, fmt.Errorf("repro: sift run: %w", r.Err)
	}
	return SiftResult{
		Survivors: r.Survivors(),
		Outcomes:  r.Outcomes,
		Stats:     r.Stats,
	}, nil
}
