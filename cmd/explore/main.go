// Command explore runs bounded-exhaustive schedule exploration of the
// paper's protocols on tiny systems, checking safety invariants over every
// explored adversary schedule (see internal/explore).
//
// Usage:
//
//	explore -protocol sift -n 2 -seeds 8            # full exhaustive
//	explore -protocol election -n 2 -depth 8
//	explore -protocol hetsift -n 3 -depth 7 -seeds 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/quorum"
	"repro/internal/sim"
)

func main() {
	var (
		protocol = flag.String("protocol", "sift", "sift | hetsift | election")
		n        = flag.Int("n", 2, "participants (keep tiny: the tree is exponential)")
		depth    = flag.Int("depth", 0, "exhaustive choice depth (0 = unlimited)")
		seeds    = flag.Int("seeds", 4, "coin seeds to sweep")
		maxNodes = flag.Int("maxnodes", 0, "node cap (0 = default)")
	)
	flag.Parse()

	exit := 0
	for seed := int64(0); seed < int64(*seeds); seed++ {
		factory, err := buildFactory(*protocol, *n, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := explore.Run(factory, explore.Config{MaxDepth: *depth, MaxNodes: *maxNodes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "explore:", err)
			os.Exit(2)
		}
		status := "ok"
		if rep.Failed() {
			status = fmt.Sprintf("FAILED (%d violations, first prefix %v: %v)",
				len(rep.Violations), rep.Violations[0].Prefix, rep.Violations[0].Err)
			exit = 1
		}
		trunc := ""
		if rep.Truncated {
			trunc = " (truncated)"
		}
		fmt.Printf("%s n=%d seed=%d: %d schedules (%d complete, %d depth-capped)%s in %.1fs: %s\n",
			*protocol, *n, seed, rep.Nodes, rep.Leaves, rep.DepthCapped, trunc,
			time.Since(start).Seconds(), status)
	}
	os.Exit(exit)
}

// buildFactory wires the chosen protocol with its safety invariant.
func buildFactory(protocol string, n int, seed int64) (explore.Factory, error) {
	switch protocol {
	case "sift", "hetsift":
		het := protocol == "hetsift"
		return func() *explore.Instance {
			k := sim.NewKernel(sim.Config{N: n, Seed: seed})
			stores := quorum.InstallStores(k)
			outcomes := make(map[sim.ProcID]core.Outcome, n)
			for i := 0; i < n; i++ {
				id := sim.ProcID(i)
				k.Spawn(id, func(p *sim.Proc) {
					c := quorum.NewComm(p, stores[id])
					s := core.NewState(p, "sift")
					if het {
						outcomes[id] = core.HetPoisonPill(c, "pp", s)
					} else {
						outcomes[id] = core.PoisonPill(c, "pp", s)
					}
				})
			}
			return &explore.Instance{
				Kernel: k,
				Check: func() error {
					for _, o := range outcomes {
						if o == core.Survive {
							return nil
						}
					}
					return errors.New("all participants died (Claim 3.1)")
				},
			}
		}, nil
	case "election":
		return func() *explore.Instance {
			k := sim.NewKernel(sim.Config{N: n, Seed: seed})
			stores := quorum.InstallStores(k)
			decisions := make(map[sim.ProcID]core.Decision, n)
			for i := 0; i < n; i++ {
				id := sim.ProcID(i)
				k.Spawn(id, func(p *sim.Proc) {
					c := quorum.NewComm(p, stores[id])
					decisions[id] = core.LeaderElect(c, "e")
				})
			}
			return &explore.Instance{
				Kernel: k,
				Check: func() error {
					winners := 0
					for _, d := range decisions {
						if d == core.Win {
							winners++
						}
					}
					if winners != 1 {
						return fmt.Errorf("%d winners (Lemma A.2)", winners)
					}
					return nil
				},
			}
		}, nil
	default:
		return nil, fmt.Errorf("unknown protocol %q", protocol)
	}
}
