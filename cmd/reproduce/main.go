// Command reproduce regenerates every experiment table of EXPERIMENTS.md:
// one table (or claim-figure series) per quantitative statement of the
// paper's evaluation.
//
// Usage:
//
//	reproduce                      # all experiments, quick scale
//	reproduce -scale standard      # the EXPERIMENTS.md scale
//	reproduce -only T1,T3,F1       # a subset
//	reproduce -markdown            # GitHub-flavored markdown output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/expt"
)

func main() {
	var (
		scale    = flag.String("scale", "quick", "quick | standard | large")
		only     = flag.String("only", "", "comma-separated experiment IDs (default: all)")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	)
	flag.Parse()

	sc, ok := map[string]expt.Scale{
		"quick":    expt.Quick,
		"standard": expt.Standard,
		"large":    expt.Large,
	}[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "reproduce: unknown scale %q\n", *scale)
		os.Exit(1)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, exp := range expt.Registry() {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		t0 := time.Now()
		tab := exp.Gen(sc)
		if *markdown {
			tab.Markdown(os.Stdout)
		} else {
			tab.Render(os.Stdout)
			fmt.Printf("  (%.1fs)\n\n", time.Since(t0).Seconds())
		}
		ran++
	}
	fmt.Fprintf(os.Stderr, "reproduce: %d experiments in %.1fs at scale %s\n",
		ran, time.Since(start).Seconds(), *scale)
}
