// Command renamesim runs strong-renaming simulations (the paper's
// balls-into-bins algorithm or the random-scan baseline) and prints the
// assignment and complexity measures.
//
// Usage:
//
//	renamesim -n 64 -schedule fair -seed 1
//	renamesim -n 64 -algorithm random-scan -schedule lockstep
//	renamesim -n 32 -schedule staleviews -seeds 5 -names
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/expt"
	"repro/internal/sim"
)

func main() {
	var (
		n         = flag.Int("n", 64, "system size (and name space)")
		k         = flag.Int("k", 0, "participants (0 = all processors)")
		seed      = flag.Int64("seed", 1, "first random seed")
		seeds     = flag.Int("seeds", 1, "number of seeds to sweep")
		algo      = flag.String("algorithm", "renaming", "renaming | random-scan")
		sched     = flag.String("schedule", "fair", "fair | lockstep | sequential | crash | bubble | staleviews")
		faults    = flag.Int("faults", 0, "crash budget (crash schedule)")
		showNames = flag.Bool("names", false, "print the full name assignment")
	)
	flag.Parse()

	if err := run(*n, *k, *seed, *seeds, *algo, *sched, *faults, *showNames); err != nil {
		fmt.Fprintln(os.Stderr, "renamesim:", err)
		os.Exit(1)
	}
}

func run(n, k int, seed int64, seeds int, algo, sched string, faults int, showNames bool) error {
	for s := 0; s < seeds; s++ {
		cfg := expt.Config{
			N: n, K: k, Seed: seed + int64(s),
			Algorithm: expt.Algorithm(algo),
			Schedule:  expt.Schedule(sched),
			Faults:    faults,
		}
		r := expt.Run(cfg)
		if r.Err != nil {
			return fmt.Errorf("seed %d: %w", cfg.Seed, r.Err)
		}
		maxIters := 0
		for _, it := range r.Iterations {
			if it > maxIters {
				maxIters = it
			}
		}
		fmt.Printf("seed=%-4d assigned=%-4d time=%-4d max-trials=%-3d messages=%-9d messages/n²=%.2f\n",
			cfg.Seed, len(r.Names), r.Stats.MaxCommunicateCalls(), maxIters,
			r.Stats.MessagesSent, float64(r.Stats.MessagesSent)/float64(n*n))
		if showNames {
			ids := make([]sim.ProcID, 0, len(r.Names))
			for id := range r.Names {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				fmt.Printf("  processor %-3d -> name %d\n", id, r.Names[id])
			}
		}
	}
	return nil
}
