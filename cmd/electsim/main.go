// Command electsim runs single leader-election (or sifting) simulations and
// prints their complexity measures.
//
// Usage:
//
//	electsim -n 64 -k 64 -algorithm poisonpill -schedule fair -seed 1
//	electsim -n 256 -algorithm tournament -schedule lockstep
//	electsim -n 256 -algorithm basic-sift -schedule sequential -seeds 10
//
// Algorithms: poisonpill (default), tournament, basic-sift, het-sift,
// naive-sift. Schedules: fair (default), lockstep, sequential, seqrounds,
// flipaware, crash, bubble, staleviews.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/expt"
)

func main() {
	var (
		n      = flag.Int("n", 64, "system size (total processors)")
		k      = flag.Int("k", 0, "participants (0 = all processors)")
		seed   = flag.Int64("seed", 1, "first random seed")
		seeds  = flag.Int("seeds", 1, "number of seeds to sweep")
		algo   = flag.String("algorithm", "poisonpill", "poisonpill | tournament | basic-sift | het-sift | naive-sift")
		sched  = flag.String("schedule", "fair", "fair | lockstep | sequential | seqrounds | flipaware | crash | bubble | staleviews")
		faults = flag.Int("faults", 0, "crash budget (crash schedule)")
	)
	flag.Parse()

	if err := run(*n, *k, *seed, *seeds, *algo, *sched, *faults); err != nil {
		fmt.Fprintln(os.Stderr, "electsim:", err)
		os.Exit(1)
	}
}

func run(n, k int, seed int64, seeds int, algo, sched string, faults int) error {
	for s := 0; s < seeds; s++ {
		cfg := expt.Config{
			N: n, K: k, Seed: seed + int64(s),
			Algorithm: expt.Algorithm(algo),
			Schedule:  expt.Schedule(sched),
			Faults:    faults,
		}
		r := expt.Run(cfg)
		if r.Err != nil {
			return fmt.Errorf("seed %d: %w", cfg.Seed, r.Err)
		}
		switch cfg.Algorithm {
		case expt.AlgoBasicSift, expt.AlgoHetSift, expt.AlgoNaiveSift:
			fmt.Printf("seed=%-4d survivors=%-4d of %-4d  time=%-3d messages=%-8d bytes=%d\n",
				cfg.Seed, r.Survivors(), len(r.Outcomes),
				r.Stats.MaxCommunicateCalls(), r.Stats.MessagesSent, r.Stats.PayloadBytes)
		default:
			winner := -1
			for id, d := range r.Decisions {
				if d.String() == "WIN" {
					winner = int(id)
				}
			}
			fmt.Printf("seed=%-4d winner=%-4d rounds=%-3d time=%-3d messages=%-8d bytes=%-10d crashes=%d\n",
				cfg.Seed, winner, r.MaxRound,
				r.Stats.MaxCommunicateCalls(), r.Stats.MessagesSent, r.Stats.PayloadBytes, r.Stats.Crashes)
		}
	}
	return nil
}
