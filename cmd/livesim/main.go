// Command livesim runs leader elections on the real-concurrency goroutine
// backend and drives the parallel campaign engine: many independent
// elections fanned across a worker pool, with wall-clock latency percentiles
// and throughput — optionally under fault/latency injection scenarios
// (crash schedules, link-delay distributions, slow processors, reordering).
//
// Usage:
//
//	livesim -n 64 -runs 256                      # campaign at GOMAXPROCS workers
//	livesim -n 256 -runs 64 -algorithm tournament
//	livesim -n 64 -runs 256 -scan                # worker-scaling curve 1..GOMAXPROCS
//	livesim -n 32 -runs 128 -backend sim         # same campaign on the sim kernel
//	livesim -n 32 -runs 128 -transport tcp       # quorums over loopback TCP (electd)
//	livesim -n 32 -runs 128 -transport udp       # quorums over UDP datagrams (electd)
//	livesim -n 64 -runs 1 -v                     # one election, per-run detail
//
// Flight recorder (live backend only):
//
//	livesim -n 32 -runs 64 -transport tcp -trace-out trace.json
//	livesim -n 32 -runs 64 -trace-out t.json -trace-chrome t.chrome.json
//
// -trace-out records phase-level spans (client pool, transport, electd
// server) into a lock-free ring, prints the per-phase latency attribution
// table, and writes the trace file cmd/traceview reads; -trace-chrome also
// exports Chrome trace_event JSON for about://tracing. Tracing off (the
// default) leaves every hot path byte-identical to an untraced build.
//
// Scenario matrices (live backend only):
//
//	livesim -n 64 -runs 128 -scenarios all       # every preset scenario
//	livesim -n 64 -runs 128 -scenarios baseline,crash-minority,heavy-tail
//	livesim -n 64 -runs 128 -crashes 31 -crash-window 2ms   # custom crash campaign
//	livesim -n 64 -runs 128 -delay 100us -jitter 400us -tail 1.2
//
// Chaos verification grid (live backend only):
//
//	livesim -n 8 -chaos                          # fault.ChaosGrid × 6 seeds × backends
//	livesim -n 8 -chaos -chaos-seeds 12 -chaos-out chaos.json
//
// The chaos grid validates every election individually — unique winner among
// the survivors, or typed no-quorum aborts only on clients the fault plan
// provably starved — and exits nonzero on any invalid run. Link-only
// scenarios also run multiplexed on a shared electd cluster next to
// fault-free sibling elections (blast-radius accounting). -chaos-out writes
// the machine-readable JSON report CI archives.
//
// Algorithms: poisonpill (default), tournament. Backends: live (default),
// sim. Transports (live backend): chan (default, in-process mailboxes), tcp
// (electd quorum servers over loopback TCP sockets; the campaign shares one
// multiplexed server set), udp (the same servers over loopback datagrams
// with client-side retransmit-and-dedup). Preset scenarios: baseline,
// crash-1, crash-minority, lan, wan, heavy-tail, slow-third, reorder,
// chaos.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 64, "system size (total processors)")
		k       = flag.Int("k", 0, "participants (0 = all processors)")
		runs    = flag.Int("runs", 256, "elections per campaign (per scenario)")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "base seed (per-run seeds are sharded from it)")
		algo    = flag.String("algorithm", "poisonpill", "poisonpill | tournament")
		backend = flag.String("backend", "live", "live | sim")
		trans   = flag.String("transport", "chan", "chan | tcp | udp (live backend comm substrate)")
		scan    = flag.Bool("scan", false, "sweep worker counts 1,2,4,...,GOMAXPROCS and print the scaling curve")
		verbose = flag.Bool("v", false, "run additional individual live elections first and print their per-run details")

		scenarios = flag.String("scenarios", "", "comma-separated preset scenarios, or \"all\" (live backend)")

		traceOut    = flag.String("trace-out", "", "record phase-level spans and write the trace file (breakdown + raw spans) to this path (live backend)")
		traceChrome = flag.String("trace-chrome", "", "also export the recorded spans in Chrome trace_event format to this path")
		traceCap    = flag.Int("trace-cap", 1<<20, "flight-recorder ring capacity in spans (rounded up to a power of two)")

		chaos      = flag.Bool("chaos", false, "run the chaos verification grid (fault.ChaosGrid × seeds × backends) and validate every election")
		chaosSeeds = flag.Int("chaos-seeds", 6, "seeds per chaos grid cell")
		chaosOut   = flag.String("chaos-out", "", "write the chaos grid's machine-readable JSON report to this path")

		crashes     = flag.Int("crashes", 0, "custom scenario: processors to crash (≤ ⌈n/2⌉−1, -1 = max)")
		crashWindow = flag.Duration("crash-window", 0, "custom scenario: crash times are uniform in [0, window)")
		delay       = flag.Duration("delay", 0, "custom scenario: fixed link-delay floor per message")
		jitter      = flag.Duration("jitter", 0, "custom scenario: uniform link-delay jitter width")
		tail        = flag.Float64("tail", 0, "custom scenario: Pareto tail index α (>1) — makes the link delay heavy-tailed")
		slow        = flag.Int("slow", 0, "custom scenario: processors to throttle (-1 = ⌈n/3⌉)")
		slowDelay   = flag.Duration("slow-delay", 0, "custom scenario: extra delay per op on throttled processors")
		reorder     = flag.Float64("reorder", 0, "custom scenario: probability a message takes an extra reorder delay")
	)
	flag.Parse()

	custom, err := buildCustomScenario(*crashes, *crashWindow, *delay, *jitter, *tail, *slow, *slowDelay, *reorder)
	if err != nil {
		fmt.Fprintln(os.Stderr, "livesim:", err)
		os.Exit(1)
	}
	cfg := config{
		n: *n, k: *k, runs: *runs, workers: *workers, seed: *seed,
		algo: *algo, backend: *backend, transport: *trans, scan: *scan, verbose: *verbose,
		scenarios: *scenarios, custom: custom,
		traceOut: *traceOut, traceChrome: *traceChrome, traceCap: *traceCap,
	}
	if *chaos {
		if err := runChaos(cfg, *chaosSeeds, *chaosOut); err != nil {
			fmt.Fprintln(os.Stderr, "livesim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "livesim:", err)
		os.Exit(1)
	}
}

type config struct {
	n, k, runs, workers int
	seed                int64
	algo, backend       string
	transport           string
	scan, verbose       bool
	scenarios           string
	custom              *fault.Scenario

	traceOut, traceChrome string
	traceCap              int
}

// buildCustomScenario assembles a Scenario from the individual injection
// flags; nil when none is set. Companion flags that would otherwise be
// silently dropped (-tail without a delay, -crash-window without -crashes,
// -slow-delay without -slow) are errors: a campaign must never run a
// narrower scenario than the command line asked for.
func buildCustomScenario(crashes int, window, delay, jitter time.Duration, tail float64, slow int, slowDelay time.Duration, reorder float64) (*fault.Scenario, error) {
	sc := fault.Scenario{Name: "custom", Crashes: crashes, CrashWindow: window}
	if window > 0 && crashes == 0 {
		return nil, fmt.Errorf("-crash-window has no effect without -crashes")
	}
	if delay > 0 || jitter > 0 {
		sc.Link = fault.Dist{Kind: fault.Uniform, Base: delay, Jitter: jitter}
		if tail > 0 {
			sc.Link = fault.Dist{Kind: fault.Pareto, Base: delay, Jitter: jitter, Alpha: tail}
		}
	} else if tail > 0 {
		return nil, fmt.Errorf("-tail needs a link delay to shape: set -delay and/or -jitter")
	}
	if slow != 0 {
		sc.SlowProcs = slow
		d := slowDelay
		if d == 0 {
			d = 500 * time.Microsecond
		}
		sc.Slow = fault.Dist{Kind: fault.Uniform, Base: d / 2, Jitter: d}
	} else if slowDelay > 0 {
		return nil, fmt.Errorf("-slow-delay has no effect without -slow")
	}
	if reorder > 0 {
		sc.ReorderProb = reorder
		sc.Reorder = fault.Dist{Kind: fault.Uniform, Jitter: 500 * time.Microsecond}
	}
	if !sc.Active() {
		return nil, nil
	}
	return &sc, nil
}

// resolveScenarios expands the -scenarios flag (and the custom flags) into
// the matrix to run; nil means no matrix — plain campaign mode.
func resolveScenarios(cfg config) ([]fault.Scenario, error) {
	var out []fault.Scenario
	switch cfg.scenarios {
	case "":
	case "all":
		out = fault.Presets()
	default:
		for _, name := range strings.Split(cfg.scenarios, ",") {
			name = strings.TrimSpace(name)
			sc, ok := fault.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("unknown scenario %q (available: %s, or \"all\")",
					name, strings.Join(fault.Names(), ", "))
			}
			out = append(out, sc)
		}
	}
	if cfg.custom != nil {
		out = append(out, *cfg.custom)
	}
	return out, nil
}

func run(cfg config) error {
	ccfg := campaign.Config{
		Runs: cfg.runs, Workers: cfg.workers, N: cfg.n, K: cfg.k, BaseSeed: cfg.seed,
		Algorithm: live.Algorithm(cfg.algo), Backend: campaign.Backend(cfg.backend),
		Transport: live.Transport(cfg.transport),
	}
	var rec *trace.Recorder
	if cfg.traceOut != "" || cfg.traceChrome != "" {
		if campaign.Backend(cfg.backend) != campaign.BackendLive {
			return fmt.Errorf("-trace-out records the live backend's flight recorder; backend %q has no live spans", cfg.backend)
		}
		rec = trace.NewRecorder(cfg.traceCap)
		ccfg.Trace = rec
	}
	scenarios, err := resolveScenarios(cfg)
	if err != nil {
		return err
	}

	if cfg.verbose && campaign.Backend(cfg.backend) == campaign.BackendLive {
		detail := scenarios
		if len(detail) == 0 {
			detail = []fault.Scenario{{}} // fault-free
		}
		for _, sc := range detail {
			if err := printRuns(cfg, sc); err != nil {
				return err
			}
		}
	}

	if len(scenarios) > 0 {
		if cfg.scan {
			return fmt.Errorf("-scan and -scenarios are mutually exclusive (the matrix shares one pool)")
		}
		m, err := campaign.RunMatrix(ccfg, scenarios)
		if err != nil {
			return err
		}
		printMatrix(m)
		if rec != nil {
			// The matrix shares one recorder, so the trace file aggregates
			// every scenario's spans; the first row's latency anchors the
			// reconciliation line.
			s := m.Scenarios[0]
			return writeTrace(cfg, rec, m.Runs, s.Latency.Mean, s.MeanRounds, s.MeanMsgs)
		}
		return nil
	}

	if cfg.scan {
		return printScan(ccfg)
	}
	rep, err := campaign.Run(ccfg)
	if err != nil {
		return err
	}
	printHeader()
	printReport(rep)
	printShape(rep.Shape)
	if rec != nil {
		return writeTrace(cfg, rec, rep.Runs, rep.Latency.Mean, rep.MeanRounds, rep.MeanMsgs)
	}
	return nil
}

// printShape prints the paper-shape reconciliation of a campaign report:
// measured mean rounds and messages against the O(log* k) and O(kn)
// predictions of Theorem A.5.
func printShape(s campaign.Shape) {
	if s.K == 0 {
		return
	}
	fmt.Printf("shape: rounds %.2f vs log*k+2 = %d (%.2fx), msgs %.1f vs kn = %d (%.2fx)\n",
		s.RoundsRatio*float64(s.LogStarK+2), s.LogStarK+2, s.RoundsRatio,
		s.MsgsRatio*float64(s.KN), s.KN, s.MsgsRatio)
}

// writeTrace snapshots the flight recorder, writes the trace file and the
// optional Chrome export, and prints the attribution table.
func writeTrace(cfg config, rec *trace.Recorder, runs int, meanLat time.Duration, meanRounds, meanMsgs float64) error {
	k := cfg.k
	if k == 0 {
		k = cfg.n
	}
	f := &trace.File{
		Meta: trace.Meta{
			Name:      fmt.Sprintf("%s/%s/n=%d", cfg.algo, cfg.transport, cfg.n),
			Transport: cfg.transport, N: cfg.n, K: k,
			Elections: runs, Participants: k,
			MeanElectionSec: meanLat.Seconds(),
			MeanRounds:      meanRounds, MeanMsgs: meanMsgs,
		},
		Spans: rec.Spans(),
	}
	f.Breakdown = trace.ComputeBreakdown(f.Spans, rec.Dropped())
	fmt.Println()
	f.WriteTable(os.Stdout)
	if cfg.traceOut != "" {
		if err := trace.WriteFile(cfg.traceOut, f); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		fmt.Printf("trace written to %s (%d spans)\n", cfg.traceOut, len(f.Spans))
	}
	if cfg.traceChrome != "" {
		out, err := os.Create(cfg.traceChrome)
		if err != nil {
			return fmt.Errorf("write chrome trace: %w", err)
		}
		defer out.Close()
		if err := f.WriteChrome(out); err != nil {
			return fmt.Errorf("write chrome trace: %w", err)
		}
		fmt.Printf("chrome trace written to %s (load in about://tracing)\n", cfg.traceChrome)
	}
	return nil
}

// printRuns executes each election individually under one scenario and
// prints its detail line, labelled with the scenario's name.
func printRuns(cfg config, sc fault.Scenario) error {
	name := sc.Name
	if name == "" {
		name = "fault-free"
	}
	for i := 0; i < cfg.runs; i++ {
		res, err := live.Elect(live.Config{
			N: cfg.n, K: cfg.k, Seed: cfg.seed + int64(i),
			Algorithm: live.Algorithm(cfg.algo), Scenario: sc,
			Transport: live.Transport(cfg.transport),
		})
		if err != nil {
			return fmt.Errorf("%s run %d: %w", name, i, err)
		}
		fmt.Printf("scenario=%-16s run=%-4d winner=%-4d rounds=%-3d time=%-4d messages=%-8d bytes=%-8d crashed=%-3d wall=%v\n",
			name, i, res.Winner, res.Rounds, res.Time, res.Messages, res.Bytes, len(res.Crashed),
			res.Elapsed.Round(time.Microsecond))
	}
	return nil
}

// printScan sweeps power-of-two worker counts up to GOMAXPROCS.
func printScan(cfg campaign.Config) error {
	max := runtime.GOMAXPROCS(0)
	var counts []int
	for w := 1; w < max; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, max)
	reps, err := campaign.ScanWorkers(cfg, counts)
	if err != nil {
		return err
	}
	printHeader()
	for _, rep := range reps {
		printReport(rep)
	}
	if len(reps) > 1 {
		base := reps[0].Throughput
		last := reps[len(reps)-1]
		fmt.Printf("\nscaling: %.2fx throughput at %d workers over 1 worker\n",
			last.Throughput/base, last.Workers)
	}
	return nil
}

func printHeader() {
	fmt.Printf("%-8s %-6s %-10s %-12s %-10s %-10s %-10s %-10s %-8s\n",
		"workers", "runs", "elapsed", "elect/s", "p50", "p90", "p99", "max", "time")
}

func printReport(rep campaign.Report) {
	fmt.Printf("%-8d %-6d %-10v %-12.1f %-10v %-10v %-10v %-10v %-8.1f\n",
		rep.Workers, rep.Runs, rep.Elapsed.Round(time.Millisecond), rep.Throughput,
		rep.Latency.P50.Round(time.Microsecond), rep.Latency.P90.Round(time.Microsecond),
		rep.Latency.P99.Round(time.Microsecond), rep.Latency.Max.Round(time.Microsecond),
		rep.MeanTime)
}

// printMatrix renders one row per scenario: latency percentiles, the
// paper's time metric and the election-validity counts.
func printMatrix(m campaign.MatrixReport) {
	fmt.Printf("%-16s %-6s %-10s %-10s %-10s %-10s %-8s %-8s %-7s %-8s\n",
		"scenario", "runs", "p50", "p90", "p99", "max", "time", "elected", "no-win", "crashed")
	for _, row := range m.Scenarios {
		name := row.Scenario.Name
		if name == "" {
			name = "(fault-free)"
		}
		fmt.Printf("%-16s %-6d %-10v %-10v %-10v %-10v %-8.1f %-8d %-7d %-8d\n",
			name, row.Runs,
			row.Latency.P50.Round(time.Microsecond), row.Latency.P90.Round(time.Microsecond),
			row.Latency.P99.Round(time.Microsecond), row.Latency.Max.Round(time.Microsecond),
			row.MeanTime, row.Elected, row.WinnerCrashed, row.Crashed)
	}
	fmt.Printf("\nmatrix: %d elections, %d workers, %v elapsed, %.1f elect/s\n",
		m.Runs, m.Workers, m.Elapsed.Round(time.Millisecond), m.Throughput)
}
