// Command livesim runs leader elections on the real-concurrency goroutine
// backend and drives the parallel campaign engine: many independent
// elections fanned across a worker pool, with wall-clock latency percentiles
// and throughput.
//
// Usage:
//
//	livesim -n 64 -runs 256                     # campaign at GOMAXPROCS workers
//	livesim -n 256 -runs 64 -algorithm tournament
//	livesim -n 64 -runs 256 -scan               # worker-scaling curve 1..GOMAXPROCS
//	livesim -n 32 -runs 128 -backend sim        # same campaign on the sim kernel
//	livesim -n 64 -runs 1 -v                    # one election, per-run detail
//
// Algorithms: poisonpill (default), tournament. Backends: live (default),
// sim.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/campaign"
	"repro/internal/live"
)

func main() {
	var (
		n       = flag.Int("n", 64, "system size (total processors)")
		k       = flag.Int("k", 0, "participants (0 = all processors)")
		runs    = flag.Int("runs", 256, "elections per campaign")
		workers = flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "base seed (per-run seeds are sharded from it)")
		algo    = flag.String("algorithm", "poisonpill", "poisonpill | tournament")
		backend = flag.String("backend", "live", "live | sim")
		scan    = flag.Bool("scan", false, "sweep worker counts 1,2,4,...,GOMAXPROCS and print the scaling curve")
		verbose = flag.Bool("v", false, "run additional individual live elections first and print their per-run details")
	)
	flag.Parse()

	if err := run(*n, *k, *runs, *workers, *seed, *algo, *backend, *scan, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "livesim:", err)
		os.Exit(1)
	}
}

func run(n, k, runs, workers int, seed int64, algo, backend string, scan, verbose bool) error {
	cfg := campaign.Config{
		Runs: runs, Workers: workers, N: n, K: k, BaseSeed: seed,
		Algorithm: live.Algorithm(algo), Backend: campaign.Backend(backend),
	}

	if verbose && campaign.Backend(backend) == campaign.BackendLive {
		if err := printRuns(n, k, runs, seed, algo); err != nil {
			return err
		}
	}

	if scan {
		return printScan(cfg)
	}
	rep, err := campaign.Run(cfg)
	if err != nil {
		return err
	}
	printHeader()
	printReport(cfg, rep)
	return nil
}

// printRuns executes each election individually and prints its detail line.
func printRuns(n, k, runs int, seed int64, algo string) error {
	for i := 0; i < runs; i++ {
		res, err := live.Elect(live.Config{
			N: n, K: k, Seed: seed + int64(i), Algorithm: live.Algorithm(algo),
		})
		if err != nil {
			return fmt.Errorf("run %d: %w", i, err)
		}
		fmt.Printf("run=%-4d winner=%-4d rounds=%-3d time=%-4d messages=%-8d wall=%v\n",
			i, res.Winner, res.Rounds, res.Time, res.Messages, res.Elapsed.Round(time.Microsecond))
	}
	return nil
}

// printScan sweeps power-of-two worker counts up to GOMAXPROCS.
func printScan(cfg campaign.Config) error {
	max := runtime.GOMAXPROCS(0)
	var counts []int
	for w := 1; w < max; w *= 2 {
		counts = append(counts, w)
	}
	counts = append(counts, max)
	reps, err := campaign.ScanWorkers(cfg, counts)
	if err != nil {
		return err
	}
	printHeader()
	for _, rep := range reps {
		printReport(cfg, rep)
	}
	if len(reps) > 1 {
		base := reps[0].Throughput
		last := reps[len(reps)-1]
		fmt.Printf("\nscaling: %.2fx throughput at %d workers over 1 worker\n",
			last.Throughput/base, last.Workers)
	}
	return nil
}

func printHeader() {
	fmt.Printf("%-8s %-6s %-10s %-12s %-10s %-10s %-10s %-10s %-8s\n",
		"workers", "runs", "elapsed", "elect/s", "p50", "p90", "p99", "max", "time")
}

func printReport(cfg campaign.Config, rep campaign.Report) {
	fmt.Printf("%-8d %-6d %-10v %-12.1f %-10v %-10v %-10v %-10v %-8.1f\n",
		rep.Workers, rep.Runs, rep.Elapsed.Round(time.Millisecond), rep.Throughput,
		rep.Latency.P50.Round(time.Microsecond), rep.Latency.P90.Round(time.Microsecond),
		rep.Latency.P99.Round(time.Microsecond), rep.Latency.Max.Round(time.Microsecond),
		rep.MeanTime)
}
