package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/campaign"
	"repro/internal/electd"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/transport"
)

// The chaos runner sweeps fault.ChaosGrid() — partitions, crash-recovery,
// flaky links and their combination — across seeds and backends, validating
// every single election rather than aggregating: a run is valid when it has
// a unique winner among the survivors, or every quorumless abort is a typed
// fault.NoQuorumError hitting a participant the plan provably starved. A
// single invalid run fails the whole sweep (exit 1), which is what the CI
// chaos-grid job keys on. Link-only scenarios additionally run multiplexed
// on a shared electd cluster next to fault-free sibling elections, counting
// the blast radius: siblings of a partitioned run must all still elect.

// chaosSiblings is the number of fault-free elections run concurrently with
// each chaos election on the shared cluster for blast-radius accounting.
const chaosSiblings = 2

// chaosCell aggregates one (scenario, backend) cell of the grid.
type chaosCell struct {
	Scenario string `json:"scenario"`
	Backend  string `json:"backend"` // chan | tcp | udp | tcp-shared
	Runs     int    `json:"runs"`
	// Valid run outcomes: a unique surviving winner, a winnerless run
	// whose linearized winner crashed, or a fully starved no-quorum run.
	Elected       int `json:"elected"`
	WinnerCrashed int `json:"winner_crashed"`
	NoQuorumRuns  int `json:"no_quorum_runs"`
	// Participant totals across the cell's runs.
	Crashed int `json:"crashed_participants"`
	Starved int `json:"starved_participants"`
	// Invalid counts runs that violated the validity contract; Violations
	// carries one line per violation for the report artifact.
	Invalid    int      `json:"invalid"`
	Violations []string `json:"violations,omitempty"`
	P50Micros  int64    `json:"p50_us"`
	MaxMicros  int64    `json:"max_us"`
}

// chaosReport is the machine-readable artifact the sweep writes.
type chaosReport struct {
	N         int         `json:"n"`
	K         int         `json:"k"`
	Seeds     int         `json:"seeds"`
	BaseSeed  int64       `json:"base_seed"`
	Algorithm string      `json:"algorithm"`
	Cells     []chaosCell `json:"cells"`
	// SiblingRuns and SiblingInvalid account the blast radius: fault-free
	// elections multiplexed on a shared cluster next to a chaos election,
	// and how many of them its faults broke (must be zero).
	SiblingRuns    int   `json:"sibling_runs"`
	SiblingInvalid int   `json:"sibling_invalid"`
	Invalid        int   `json:"invalid"`
	ElapsedMillis  int64 `json:"elapsed_ms"`
}

// chaosSeed decorrelates the grid's per-run seeds with the splitmix64
// finalizer, like the campaign engine's seed sharding: cell c, seed index s
// must not hand neighbouring runs overlapping per-processor PRNG streams.
func chaosSeed(base int64, cell, s int) int64 {
	z := uint64(base) + uint64(cell*1_000_003+s)*live.SeedStride
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// validateChaosRun checks one completed election against the chaos validity
// contract and returns one line per violation. The plan is re-derived from
// (scenario, n, seed) — Plan is deterministic, so this is exactly the plan
// the run executed under.
func validateChaosRun(sc fault.Scenario, n, k int, seed int64, res live.Result) []string {
	var bad []string
	plan, err := sc.Plan(n, seed)
	if err != nil {
		return []string{fmt.Sprintf("plan(%d, %d): %v", n, seed, err)}
	}
	// Every participant must be accounted for exactly once: a decision, a
	// scenario crash, or a typed no-quorum abort.
	if got := len(res.Decisions) + len(res.Crashed) + len(res.NoQuorum); got != k {
		bad = append(bad, fmt.Sprintf("seed %d: %d of %d participants accounted for", seed, got, k))
	}
	// A typed no-quorum abort is only valid for a participant the plan
	// provably starved; an electable participant aborting quorumless means
	// the injection layer lost a quorum it should have been able to form.
	for _, id := range res.NoQuorum {
		if plan == nil || plan.Electable(int(id)) {
			bad = append(bad, fmt.Sprintf("seed %d: electable participant %d aborted with NoQuorumError", seed, id))
		}
	}
	if !sc.NoQuorumOK && len(res.NoQuorum) > 0 {
		bad = append(bad, fmt.Sprintf("seed %d: scenario %q promised electability but %d participants starved",
			seed, sc.Name, len(res.NoQuorum)))
	}
	// Winner uniqueness is enforced inside live.Elect (a second Win is a
	// run error, counted by the caller); a winnerless run is valid only
	// when the linearized winner is among the crashed or starved.
	if res.Winner < 0 && len(res.Crashed) == 0 && len(res.NoQuorum) == 0 {
		bad = append(bad, fmt.Sprintf("seed %d: no winner, no crashes, no starvation", seed))
	}
	return bad
}

// chaosBackends lists the backends scenario sc runs on: every transport
// always — udp included, so datagram loss composes with injected faults
// under validation — plus the shared multiplexed cluster when the
// scenario's faults are link-only (client-side, per election) or absent,
// the configurations a deployed service would actually multiplex.
func chaosBackends(sc fault.Scenario) []string {
	b := []string{"chan", "tcp", "udp"}
	if !sc.Active() || sc.LinkOnly() {
		b = append(b, "tcp-shared")
	}
	return b
}

// runChaos executes the chaos grid and writes the report artifact. It
// returns an error (after writing the report) when any run was invalid.
func runChaos(cfg config, seeds int, out string) error {
	if campaign.BackendLive != campaign.Backend(cfg.backend) {
		return fmt.Errorf("-chaos requires the live backend")
	}
	k := cfg.k
	if k == 0 {
		k = cfg.n
	}
	grid := fault.ChaosGrid()
	rep := chaosReport{N: cfg.n, K: k, Seeds: seeds, BaseSeed: cfg.seed, Algorithm: cfg.algo}
	start := time.Now()
	cellIdx := 0
	for _, sc := range grid {
		for _, backend := range chaosBackends(sc) {
			cell, err := runChaosCell(cfg, sc, backend, seeds, cellIdx, &rep)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, cell)
			rep.Invalid += cell.Invalid
			cellIdx++
		}
	}
	rep.Invalid += rep.SiblingInvalid
	rep.ElapsedMillis = time.Since(start).Milliseconds()

	printChaos(rep)
	if out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write chaos report: %w", err)
		}
		fmt.Printf("report: %s\n", out)
	}
	if rep.Invalid > 0 {
		return fmt.Errorf("chaos grid: %d invalid elections", rep.Invalid)
	}
	return nil
}

// runChaosCell executes one (scenario, backend) cell: seeds elections, each
// validated individually. On the tcp-shared backend every election is
// multiplexed onto one cluster and raced against fault-free siblings whose
// validity is booked into the report's blast-radius counters.
func runChaosCell(cfg config, sc fault.Scenario, backend string, seeds, cellIdx int, rep *chaosReport) (chaosCell, error) {
	cell := chaosCell{Scenario: sc.Name, Backend: backend, Runs: seeds}
	var cluster *electd.Cluster
	if backend == "tcp-shared" {
		nw := transport.NewTCP()
		cl, err := electd.NewCluster(nw, cfg.n)
		if err != nil {
			return cell, fmt.Errorf("chaos %s/%s: start shared cluster: %w", sc.Name, backend, err)
		}
		defer cl.Close()
		cluster = cl
	}
	var lats []time.Duration
	for s := 0; s < seeds; s++ {
		seed := chaosSeed(cfg.seed, cellIdx, s)
		lcfg := live.Config{
			N: cfg.n, K: cfg.k, Seed: seed,
			Algorithm: live.Algorithm(cfg.algo), Scenario: sc,
		}
		switch backend {
		case "chan":
			lcfg.Transport = live.TransportChan
		case "tcp":
			lcfg.Transport = live.TransportTCP
		case "udp":
			lcfg.Transport = live.TransportUDP
		case "tcp-shared":
			lcfg.Transport = live.TransportTCP
			lcfg.Cluster = cluster
			lcfg.ElectionID = cluster.NextElectionID()
		}

		// Blast-radius siblings: fault-free elections multiplexed on the
		// same cluster, concurrent with the chaos election. Launched first
		// so they overlap the fault window, joined after.
		type sibOut struct {
			res live.Result
			err error
		}
		var sibs chan sibOut
		if cluster != nil {
			sibs = make(chan sibOut, chaosSiblings)
			for j := 0; j < chaosSiblings; j++ {
				scfg := live.Config{
					N: cfg.n, K: cfg.k, Seed: chaosSeed(cfg.seed^0x5CA1AB1E, cellIdx, s*chaosSiblings+j),
					Algorithm: live.Algorithm(cfg.algo), Transport: live.TransportTCP,
					Cluster: cluster, ElectionID: cluster.NextElectionID(),
				}
				go func(scfg live.Config) {
					res, err := live.Elect(scfg)
					sibs <- sibOut{res, err}
				}(scfg)
			}
		}

		res, err := live.Elect(lcfg)
		if cluster != nil {
			cluster.RemoveElection(lcfg.ElectionID)
			for j := 0; j < chaosSiblings; j++ {
				so := <-sibs
				rep.SiblingRuns++
				// A sibling is untouched by the chaos election's faults iff
				// it elects cleanly: any error, missing winner, crash or
				// starvation is leakage across the multiplexing boundary.
				if so.err != nil || so.res.Winner < 0 || len(so.res.Crashed) > 0 || len(so.res.NoQuorum) > 0 {
					rep.SiblingInvalid++
					cell.Violations = append(cell.Violations,
						fmt.Sprintf("seed %d: fault-free sibling broken: winner=%d err=%v", seed, so.res.Winner, so.err))
				}
			}
		}
		if err != nil {
			// Safety violations (two winners), undecided returns and
			// timeouts surface as Elect errors: invalid, not fatal — the
			// sweep completes and reports them all.
			cell.Invalid++
			cell.Violations = append(cell.Violations, fmt.Sprintf("seed %d: %v", seed, err))
			continue
		}
		if bad := validateChaosRun(sc, cfg.n, rep.K, seed, res); len(bad) > 0 {
			cell.Invalid++
			cell.Violations = append(cell.Violations, bad...)
		}
		switch {
		case res.Winner >= 0:
			cell.Elected++
		case len(res.Crashed) > 0:
			cell.WinnerCrashed++
		default:
			cell.NoQuorumRuns++
		}
		cell.Crashed += len(res.Crashed)
		cell.Starved += len(res.NoQuorum)
		lats = append(lats, res.Elapsed)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		cell.P50Micros = lats[len(lats)/2].Microseconds()
		cell.MaxMicros = lats[len(lats)-1].Microseconds()
	}
	return cell, nil
}

// printChaos renders the grid, one line per cell.
func printChaos(rep chaosReport) {
	fmt.Printf("chaos grid: n=%d k=%d seeds=%d algorithm=%s\n", rep.N, rep.K, rep.Seeds, rep.Algorithm)
	fmt.Printf("%-18s %-11s %-5s %-8s %-7s %-9s %-8s %-8s %-8s %-8s\n",
		"scenario", "backend", "runs", "elected", "no-win", "noquorum", "crashed", "starved", "invalid", "p50")
	for _, c := range rep.Cells {
		fmt.Printf("%-18s %-11s %-5d %-8d %-7d %-9d %-8d %-8d %-8d %vµs\n",
			c.Scenario, c.Backend, c.Runs, c.Elected, c.WinnerCrashed, c.NoQuorumRuns,
			c.Crashed, c.Starved, c.Invalid, c.P50Micros)
		for _, v := range c.Violations {
			fmt.Printf("    violation: %s\n", v)
		}
	}
	fmt.Printf("\nblast radius: %d sibling elections on shared clusters, %d broken\n",
		rep.SiblingRuns, rep.SiblingInvalid)
	fmt.Printf("invalid: %d of %d elections (%dms)\n",
		rep.Invalid, len(rep.Cells)*rep.Seeds+rep.SiblingRuns, rep.ElapsedMillis)
}
