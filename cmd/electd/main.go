// Command electd runs the election service: a long-lived daemon hosting the
// paper's register arrays behind majority-quorum reads and writes, and a
// client mode that runs leader elections against a set of such servers over
// TCP. One server set multiplexes any number of concurrent election
// instances by election ID.
//
// A quorum system is n server processes; elections tolerate up to ⌈n/2⌉−1
// of them failing. Participants are pure clients — they can live anywhere
// that can dial the servers.
//
// Servers retain each election instance's register state until told to
// drop it (electd.Server.RemoveElection); the protocol itself has no
// completion signal, since no participant can know whether others still
// need the registers. Long-lived deployments should recycle the server
// processes, or embed electd.Server and evict finished instances.
//
// Start a three-server system (each in its own process, or machine):
//
//	electd -serve -id 0 -listen 127.0.0.1:7600
//	electd -serve -id 1 -listen 127.0.0.1:7601
//	electd -serve -id 2 -listen 127.0.0.1:7602
//
// Run elections against it from a separate participant process:
//
//	electd -elect -servers 127.0.0.1:7600,127.0.0.1:7601,127.0.0.1:7602 \
//	       -k 8 -elections 100 -seed 1
//
// Or demo the whole thing in one process (servers on ephemeral loopback
// ports, participants dialling them over real sockets):
//
//	electd -demo -n 5 -k 5 -elections 10
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/rt"
	"repro/internal/transport"
)

func main() {
	var (
		serve     = flag.Bool("serve", false, "run one quorum server (daemon mode)")
		elect     = flag.Bool("elect", false, "run elections as a client against -servers")
		demo      = flag.Bool("demo", false, "run servers and participants in one process over loopback TCP")
		id        = flag.Int("id", 0, "serve: this server's replica id")
		listen    = flag.String("listen", "127.0.0.1:0", "serve: listen address")
		servers   = flag.String("servers", "", "elect: comma-separated server addresses, in replica-id order")
		n         = flag.Int("n", 3, "demo: number of quorum servers")
		k         = flag.Int("k", 4, "elect/demo: participants per election")
		elections = flag.Int("elections", 1, "elect/demo: number of (concurrent) election instances")
		seed      = flag.Int64("seed", 1, "elect/demo: base PRNG seed")
		algo      = flag.String("algorithm", "poisonpill", "poisonpill | tournament")
	)
	flag.Parse()

	var err error
	switch {
	case *serve:
		err = runServe(*id, *listen)
	case *elect:
		err = runElect(strings.Split(*servers, ","), *k, *elections, *seed, *algo)
	case *demo:
		err = runDemo(*n, *k, *elections, *seed, *algo)
	default:
		err = fmt.Errorf("pick a mode: -serve, -elect or -demo")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "electd:", err)
		os.Exit(1)
	}
}

// runServe hosts one register replica until interrupted.
func runServe(id int, addr string) error {
	if id < 0 {
		return fmt.Errorf("server id %d must be non-negative", id)
	}
	srv := electd.NewServer(rt.ProcID(id))
	ln, err := transport.ListenTCP(addr, srv.Handle)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("electd: server %d listening on %s\n", id, ln.Addr())

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			fmt.Printf("electd: server %d shutting down (%d requests served, %d elections hosted)\n",
				id, srv.Served(), srv.Elections())
			return nil
		case <-tick.C:
			fmt.Printf("electd: server %d: %d requests served, %d elections hosted\n",
				id, srv.Served(), srv.Elections())
		}
	}
}

// runElect dials the servers and runs the requested elections concurrently,
// multiplexed by election ID over one connection pool.
func runElect(addrs []string, k, elections int, seed int64, algo string) error {
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if len(addrs) == 0 || addrs[0] == "" {
		return fmt.Errorf("-elect needs -servers")
	}
	pool, err := electd.DialPool(transport.NewTCP(), addrs)
	if err != nil {
		return err
	}
	defer pool.Close()
	return runElections(pool.NewComm, len(addrs), k, elections, seed, algo)
}

// runDemo starts an in-process cluster over loopback TCP and elects on it.
func runDemo(n, k, elections int, seed int64, algo string) error {
	cluster, err := electd.NewCluster(transport.NewTCP(), n)
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("electd: %d servers on %s\n", n, strings.Join(cluster.Addrs(), " "))
	return runElections(cluster.NewComm, n, k, elections, seed, algo)
}

// runElections fans the requested election instances out concurrently —
// each with k participant goroutines — and verifies a unique winner per
// instance.
func runElections(newComm func(p rt.Procer, election uint64, delay func(int) time.Duration) *electd.Client,
	n, k, elections int, seed int64, algo string) error {
	if k < 1 {
		return fmt.Errorf("participants %d must be positive", k)
	}
	if elections < 1 {
		return fmt.Errorf("election count %d must be positive", elections)
	}
	body := core.LeaderElectWithState
	switch algo {
	case "poisonpill", "":
	case "tournament":
		return fmt.Errorf("tournament over electd needs the livesim harness (livesim -transport tcp -algorithm tournament)")
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	// Election IDs must be unique across invocations, not just within one:
	// long-lived servers keep per-ID register state, so a second `-elect`
	// run reusing IDs 1..E would collide with the first run's cells and
	// decide on stale state. A per-invocation nanosecond base keeps every
	// run in its own namespace on the shared servers.
	base := uint64(time.Now().UnixNano())
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, elections)
	for e := 0; e < elections; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			decisions := make([]core.Decision, k)
			var pwg sync.WaitGroup
			for i := 0; i < k; i++ {
				pwg.Add(1)
				go func(i int) {
					defer pwg.Done()
					p := electd.NewParticipant(rt.ProcID(i), k, seed+int64(e*k+i))
					c := newComm(p, base+uint64(e), nil)
					s := core.NewState(p, "leaderelect")
					decisions[i] = body(c, "elect", s)
				}(i)
			}
			pwg.Wait()
			winner := rt.ProcID(-1)
			for i, d := range decisions {
				if d == core.Win {
					if winner >= 0 {
						errs[e] = fmt.Errorf("election %d: processors %d and %d both won", e, winner, i)
						return
					}
					winner = rt.ProcID(i)
				}
			}
			if winner < 0 {
				errs[e] = fmt.Errorf("election %d: no winner", e)
				return
			}
			fmt.Printf("election=%-4d winner=%d\n", e, winner)
		}(e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Printf("%d elections, %d participants each, %d servers: %v total\n",
		elections, k, n, time.Since(start).Round(time.Millisecond))
	return nil
}
