// Command electd runs the election service: a long-lived daemon hosting the
// paper's register arrays behind majority-quorum reads and writes, and a
// client mode that runs leader elections against a set of such servers over
// TCP or UDP (-transport; servers and clients must agree). One server set
// multiplexes any number of concurrent election instances by election ID.
//
// A quorum system is n server processes; elections tolerate up to ⌈n/2⌉−1
// of them failing. Participants are pure clients — they can live anywhere
// that can dial the servers.
//
// A server is a real service, not a fixture: idle election state is
// TTL-evicted (-ttl; the protocol itself has no completion signal, since no
// participant can know whether others still need the registers), admission
// is bounded per shard (-max-live) with explicit busy replies when
// exceeded, SIGTERM and SIGINT trigger a graceful drain (stop admitting,
// finish in-flight elections, then exit — non-zero if the -drain-timeout
// passes with elections still live), and -admin serves the observability
// endpoints /metrics (JSON, or Prometheus text with ?format=prometheus),
// /healthz and /drainz. See docs/ELECTD.md for the ops guide.
//
// Start a three-server system (each in its own process, or machine):
//
//	electd -serve -id 0 -listen 127.0.0.1:7600 -admin 127.0.0.1:7700
//	electd -serve -id 1 -listen 127.0.0.1:7601 -admin 127.0.0.1:7701
//	electd -serve -id 2 -listen 127.0.0.1:7602 -admin 127.0.0.1:7702
//
// Run elections against it from a separate participant process:
//
//	electd -elect -servers 127.0.0.1:7600,127.0.0.1:7601,127.0.0.1:7602 \
//	       -k 8 -elections 100 -seed 1
//
// Or demo the whole thing in one process (servers on ephemeral loopback
// ports, participants dialling them over real sockets):
//
//	electd -demo -n 5 -k 5 -elections 10
//
// The endurance soak — hundreds of thousands of short elections over one
// long-running in-process cluster, asserting flat heap, full eviction and
// metrics consistency (the CI smoke job runs a compressed one):
//
//	electd -soak -elections 100000 -metrics-out soak-metrics.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	rtrace "runtime/trace"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		serve     = flag.Bool("serve", false, "run one quorum server (daemon mode)")
		elect     = flag.Bool("elect", false, "run elections as a client against -servers")
		demo      = flag.Bool("demo", false, "run servers and participants in one process over loopback TCP")
		soak      = flag.Bool("soak", false, "run the service-endurance soak in one process")
		id        = flag.Int("id", 0, "serve: this server's replica id")
		listen    = flag.String("listen", "127.0.0.1:0", "serve: listen address")
		admin     = flag.String("admin", "", "serve: admin HTTP address for /metrics, /healthz, /drainz (empty: off)")
		ttl       = flag.Duration("ttl", 10*time.Minute, "serve: evict election state idle longer than this (0: retain forever)")
		maxLive   = flag.Int("max-live", 4096, "serve: per-shard live election bound; above it new elections get busy replies (0: unbounded)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "serve: graceful drain deadline on SIGTERM/SIGINT")
		pprofOn   = flag.Bool("pprof", false, "serve: expose net/http/pprof and runtime/trace start/stop under /debug on the -admin server")
		mutexFrac = flag.Int("mutex-fraction", 0, "serve: sample 1/n of mutex contention and blocking events into /debug/pprof/{mutex,block} (0: off; requires -pprof)")
		traceOn   = flag.Bool("trace", false, "serve: record per-phase server spans into a flight recorder; per-phase histograms appear in /metrics")
		servers   = flag.String("servers", "", "elect: comma-separated server addresses, in replica-id order")
		n         = flag.Int("n", 3, "demo/soak: number of quorum servers")
		k         = flag.Int("k", 4, "elect/demo/soak: participants per election")
		elections = flag.Int("elections", 1, "elect/demo/soak: number of election instances (soak default: 100000)")
		seed      = flag.Int64("seed", 1, "elect/demo: base PRNG seed")
		algo      = flag.String("algorithm", "poisonpill", "poisonpill | tournament")
		tspt      = flag.String("transport", "tcp", "serve/elect/demo: tcp | udp socket substrate (servers and clients must agree)")
		metricsOu = flag.String("metrics-out", "", "soak: write the final metrics snapshot JSON here")
	)
	flag.Parse()

	spec := transport.Spec{Name: *tspt}
	var err error
	switch {
	case *serve:
		err = runServe(spec, *id, *listen, *admin, *ttl, *maxLive, *drainWait, *pprofOn, *traceOn, *mutexFrac)
	case *elect:
		err = runElect(spec, strings.Split(*servers, ","), *k, *elections, *seed, *algo)
	case *demo:
		err = runDemo(spec, *n, *k, *elections, *seed, *algo)
	case *soak:
		err = runSoak(*n, *k, *elections, *metricsOu)
	default:
		err = fmt.Errorf("pick a mode: -serve, -elect, -demo or -soak")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "electd:", err)
		os.Exit(1)
	}
}

// runServe hosts one register replica until signalled, then drains. The
// error it returns — drain deadline passed, admin server died, accept loop
// died — is the process's non-zero exit.
func runServe(spec transport.Spec, id int, addr, admin string, ttl time.Duration, maxLive int, drainWait time.Duration, pprofOn, traceOn bool, mutexFrac int) error {
	if id < 0 {
		return fmt.Errorf("server id %d must be non-negative", id)
	}
	if mutexFrac > 0 {
		// Arm the runtime's contention profilers: /debug/pprof/mutex and
		// /debug/pprof/block (mounted by -pprof's pprof.Index) stay empty
		// until these rates are non-zero. Sampling 1/n of events costs the
		// sampled paths a stack capture — off by default; profiling runs
		// opt in. This is how the lock-free claim gets verified against a
		// running daemon: under steady load the mutex profile shows no
		// samples in Server.Handle (see docs/ELECTD.md).
		runtime.SetMutexProfileFraction(mutexFrac)
		runtime.SetBlockProfileRate(mutexFrac)
	}
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	transport.RegisterMetrics(reg)
	// The flight recorder is opt-in: untraced servers keep the hot path
	// free of even the nil checks' branch history. With -trace, every
	// shard-wait/merge/snapshot/reply span also lands in the
	// trace_phase_us histograms /metrics exposes.
	var rec *trace.Recorder
	if traceOn {
		rec = trace.NewRecorder(1 << 18)
		rec.EnableMetrics(reg)
	}
	srv := electd.NewServerOpts(rt.ProcID(id), electd.ServerOptions{
		TTL:             ttl,
		MaxLivePerShard: maxLive,
		Metrics:         reg,
		Trace:           rec,
	})
	defer srv.Close()
	ln, err := spec.ListenAddr(addr, srv.Handle)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("electd: server %d listening on %s/%s (ttl %v, max-live %d/shard)\n", id, spec.Name, ln.Addr(), ttl, maxLive)

	// The admin endpoint is plumbing around the service, never in the
	// quorum path: a scrape or a drain request serializes against nothing
	// the replica's Handle touches.
	drainReq := make(chan struct{}, 1)
	adminErr := make(chan error, 1)
	if admin != "" {
		hs := &http.Server{Addr: admin, Handler: adminMux(reg, srv, drainReq, pprofOn)}
		go func() { adminErr <- hs.ListenAndServe() }()
		defer hs.Close()
		fmt.Printf("electd: server %d admin endpoint on http://%s/metrics\n", id, admin)
	}

	stop := make(chan os.Signal, 2)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(30 * time.Second)
	defer tick.Stop()
	for {
		select {
		case sig := <-stop:
			fmt.Printf("electd: server %d caught %v, draining (deadline %v)\n", id, sig, drainWait)
			return drainAndReport(srv, id, drainWait)
		case <-drainReq:
			fmt.Printf("electd: server %d draining on admin request (deadline %v)\n", id, drainWait)
			return drainAndReport(srv, id, drainWait)
		case err := <-adminErr:
			return fmt.Errorf("admin endpoint died: %w", err)
		case <-ln.Done():
			if err := ln.Err(); err != nil {
				return fmt.Errorf("accept loop died: %w", err)
			}
			return fmt.Errorf("listener closed unexpectedly")
		case <-tick.C:
			fmt.Printf("electd: server %d: %d requests served, %d elections live, %d evicted, %d shed\n",
				id, srv.Served(), srv.Elections(), srv.Evicted(), srv.Shed())
		}
	}
}

// drainAndReport runs the graceful drain and prints the service's final
// ledger either way; a deadline miss is the caller's non-zero exit.
func drainAndReport(srv *electd.Server, id int, drainWait time.Duration) error {
	err := srv.Drain(drainWait)
	fmt.Printf("electd: server %d shut down (%d requests served, %d elections hosted, %d evicted, %d shed)\n",
		id, srv.Served(), srv.Started(), srv.Evicted(), srv.Shed())
	return err
}

// adminMux assembles the admin endpoint: /metrics (obs snapshot, JSON or
// Prometheus text), /healthz (503 once draining, for load-balancer
// removal), /drainz (GET status; POST initiates a graceful drain). With
// pprofOn it also mounts net/http/pprof under /debug/pprof/ and the
// runtime execution tracer under /debug/rtrace/{start,stop} — both
// diagnostics around the service, never in the quorum path.
func adminMux(reg *obs.Registry, srv *electd.Server, drainReq chan<- struct{}, pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mountRuntimeTrace(mux)
	}
	mux.Handle("/metrics", obs.Handler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if srv.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			select {
			case drainReq <- struct{}{}:
			default: // a drain is already requested; idempotent
			}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintln(w, "draining")
		case http.MethodGet:
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
				"draining":  srv.Draining(),
				"elections": srv.Elections(),
			})
		default:
			http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// mountRuntimeTrace wires runtime/trace capture onto the admin mux:
// POST /debug/rtrace/start begins writing an execution trace to a
// server-side file (?file= overrides the path), POST /debug/rtrace/stop
// ends it and reports the file to feed `go tool trace`. Unlike
// /debug/pprof/trace this survives client disconnects, so it can bracket
// a whole soak or drain. One capture at a time; a second start is a 409.
func mountRuntimeTrace(mux *http.ServeMux) {
	var mu sync.Mutex
	var out *os.File
	mux.HandleFunc("/debug/rtrace/start", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST", http.StatusMethodNotAllowed)
			return
		}
		path := r.FormValue("file")
		if path == "" {
			path = fmt.Sprintf("electd-rtrace-%d.out", os.Getpid())
		}
		mu.Lock()
		defer mu.Unlock()
		if out != nil {
			http.Error(w, "a runtime trace is already being captured; POST /debug/rtrace/stop first", http.StatusConflict)
			return
		}
		f, err := os.Create(path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			os.Remove(path)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out = f
		fmt.Fprintf(w, "runtime trace started: %s\n", path)
	})
	mux.HandleFunc("/debug/rtrace/stop", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST", http.StatusMethodNotAllowed)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if out == nil {
			http.Error(w, "no runtime trace running", http.StatusConflict)
			return
		}
		rtrace.Stop()
		name := out.Name()
		if err := out.Close(); err != nil {
			out = nil
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		out = nil
		fmt.Fprintf(w, "runtime trace stopped: %s (inspect with: go tool trace %s)\n", name, name)
	})
}

// runSoak runs the endurance harness (electd.Soak) in one process and
// turns its report into the exit code; the final metrics snapshot can be
// written out as the CI artifact.
func runSoak(n, k, elections int, metricsOut string) error {
	if elections <= 1 {
		elections = 100_000
	}
	rep, err := electd.Soak(electd.SoakConfig{
		N: n, K: k, Elections: elections,
		Log: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	fmt.Printf("soak: %d elections (%d shed, %d invalid), served %d, evicted %d, final live %d, heap %.0f → %.0f bytes\n",
		rep.Elections, rep.Shed, rep.Invalid, rep.Served, rep.Evicted, rep.FinalLive, rep.FirstQMean, rep.LastQMean)
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		werr := rep.Snapshot.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("soak: metrics snapshot written to %s\n", metricsOut)
	}
	return rep.Check()
}

// runElect dials the servers and runs the requested elections concurrently,
// multiplexed by election ID over one connection pool.
func runElect(spec transport.Spec, addrs []string, k, elections int, seed int64, algo string) error {
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if len(addrs) == 0 || addrs[0] == "" {
		return fmt.Errorf("-elect needs -servers")
	}
	// NewPool folds the spec in: on UDP that arms the pool's default
	// retransmit-and-dedup reliability layer.
	pool, err := electd.NewPool(spec, addrs, electd.PoolOptions{})
	if err != nil {
		return err
	}
	defer pool.Close()
	return runElections(pool.NewComm, len(addrs), k, elections, seed, algo)
}

// runDemo starts an in-process cluster over loopback sockets and elects on
// it.
func runDemo(spec transport.Spec, n, k, elections int, seed int64, algo string) error {
	cluster, err := electd.NewClusterSpec(spec, n, electd.ClusterOptions{})
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("electd: %d servers (%s) on %s\n", n, spec.Name, strings.Join(cluster.Addrs(), " "))
	return runElections(cluster.NewComm, n, k, elections, seed, algo)
}

// runElections fans the requested election instances out concurrently —
// each with k participant goroutines — and verifies a unique winner per
// instance.
func runElections(newComm func(p rt.Procer, election uint64, delay func(int) time.Duration) *electd.Client,
	n, k, elections int, seed int64, algo string) error {
	if k < 1 {
		return fmt.Errorf("participants %d must be positive", k)
	}
	if elections < 1 {
		return fmt.Errorf("election count %d must be positive", elections)
	}
	body := core.LeaderElectWithState
	switch algo {
	case "poisonpill", "":
	case "tournament":
		return fmt.Errorf("tournament over electd needs the livesim harness (livesim -transport tcp -algorithm tournament)")
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	// Election IDs must be unique across invocations, not just within one:
	// long-lived servers keep per-ID register state, so a second `-elect`
	// run reusing IDs 1..E would collide with the first run's cells and
	// decide on stale state. A per-invocation nanosecond base keeps every
	// run in its own namespace on the shared servers.
	base := uint64(time.Now().UnixNano())
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, elections)
	for e := 0; e < elections; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			decisions := make([]core.Decision, k)
			var pwg sync.WaitGroup
			for i := 0; i < k; i++ {
				pwg.Add(1)
				go func(i int) {
					defer pwg.Done()
					p := electd.NewParticipant(rt.ProcID(i), k, seed+int64(e*k+i))
					c := newComm(p, base+uint64(e), nil)
					s := core.NewState(p, "leaderelect")
					decisions[i] = body(c, "elect", s)
				}(i)
			}
			pwg.Wait()
			winner := rt.ProcID(-1)
			for i, d := range decisions {
				if d == core.Win {
					if winner >= 0 {
						errs[e] = fmt.Errorf("election %d: processors %d and %d both won", e, winner, i)
						return
					}
					winner = rt.ProcID(i)
				}
			}
			if winner < 0 {
				errs[e] = fmt.Errorf("election %d: no winner", e)
				return
			}
			fmt.Printf("election=%-4d winner=%d\n", e, winner)
		}(e)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	fmt.Printf("%d elections, %d participants each, %d servers: %v total\n",
		elections, k, n, time.Since(start).Round(time.Millisecond))
	return nil
}
