// Command traceview reads the trace files cmd/livesim -trace-out (and the
// benchmark suite) write, prints the per-phase latency attribution table,
// and diffs two traces — the "where do the 33ms at t13/tcp/n=32 go, and
// which phase did this PR actually move" tool.
//
// Usage:
//
//	traceview trace.json                 # attribution table + coverage
//	traceview -diff before.json after.json
//	traceview -chrome out.json trace.json  # re-export Chrome trace_event
//
// The attribution table lists every phase that recorded spans, grouped by
// layer (client, transport, server), with count, mean, p50, p99 and the
// phase's detail payload (queue depth, frames per drain, snapshot hit
// rate). The footer reconciles the trace against the measured run: the
// trace-reconstructed election span (the extent of each election's
// client-layer spans) should cover ~100% of the measured election latency;
// large gaps mean the ring evicted spans or a layer went untraced.
//
// -diff prints per-phase before → after mean durations with ratios, so a
// perf PR's claim ("batching halved write-drain") is checked against the
// phase it names rather than end-to-end latency alone.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		diff   = flag.Bool("diff", false, "diff two trace files: before.json after.json")
		chrome = flag.String("chrome", "", "re-export the trace's raw spans as Chrome trace_event JSON to this path")
	)
	flag.Parse()
	if err := run(*diff, *chrome, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(diff bool, chrome string, args []string) error {
	if diff {
		if len(args) != 2 {
			return fmt.Errorf("-diff needs exactly two trace files (before, after)")
		}
		a, err := trace.ReadFile(args[0])
		if err != nil {
			return err
		}
		b, err := trace.ReadFile(args[1])
		if err != nil {
			return err
		}
		trace.WriteDiff(os.Stdout, a, b)
		return nil
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: traceview [-diff] [-chrome out.json] <trace.json> [trace2.json]")
	}
	f, err := trace.ReadFile(args[0])
	if err != nil {
		return err
	}
	f.WriteTable(os.Stdout)
	if cov := f.Coverage(); cov > 0 {
		fmt.Printf("coverage: %.3f (trace-reconstructed span / measured latency)\n", cov)
	}
	if f.Breakdown != nil && f.Breakdown.Spans > 0 {
		fmt.Printf("top phases by total time: %s\n", f.Breakdown.Summary())
	}
	if chrome != "" {
		if len(f.Spans) == 0 {
			return fmt.Errorf("%s carries no raw spans (breakdown only); re-capture with livesim -trace-out", args[0])
		}
		out, err := os.Create(chrome)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := f.WriteChrome(out); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s (load in about://tracing)\n", chrome)
	}
	return nil
}
