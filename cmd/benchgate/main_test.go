package main

import (
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

var (
	// gate mirrors the binary's default -gate pattern; keep the two in sync.
	gate   = regexp.MustCompile(`(?:election-sec|allocs)$`)
	higher = regexp.MustCompile(`-per-sec$`)
)

// find returns the row for name, failing the test when absent.
func find(t *testing.T, rows []row, name string) row {
	t.Helper()
	for _, r := range rows {
		if r.name == name {
			return r
		}
	}
	t.Fatalf("no comparison row for %q", name)
	return row{}
}

// TestGateFailsOnLatencyRegression: a gated lower-is-better metric beyond
// the threshold fails; one inside the threshold passes.
func TestGateFailsOnLatencyRegression(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.040,
		"t13/tcp/n=8/election-sec":  0.004,
	}
	current := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.060, // +50%: fail
		"t13/tcp/n=8/election-sec":  0.005, // +25%: within 30%
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if r := find(t, rows, "t13/tcp/n=32/election-sec"); !r.failed || !r.gated {
		t.Errorf("+50%% latency regression not flagged: %+v", r)
	}
	if r := find(t, rows, "t13/tcp/n=8/election-sec"); r.failed {
		t.Errorf("+25%% change failed a 30%% gate: %+v", r)
	}
}

// TestGateFailsOnAllocsRegression: allocation counts are gated by default —
// lower is better, a rise beyond the threshold fails, a drop (the pooling
// win) and a within-threshold rise pass.
func TestGateFailsOnAllocsRegression(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/allocs":     100000,
		"t13/tcp/n=8/allocs":      7000,
		"t15/chan/conc=16/allocs": 20000,
	}
	current := map[string]float64{
		"t13/tcp/n=32/allocs":     140000, // +40%: fail
		"t13/tcp/n=8/allocs":      8000,   // +14%: within 30%
		"t15/chan/conc=16/allocs": 9000,   // pooling win: pass
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if r := find(t, rows, "t13/tcp/n=32/allocs"); !r.failed || !r.gated {
		t.Errorf("+40%% allocs regression not flagged: %+v", r)
	}
	if r := find(t, rows, "t13/tcp/n=8/allocs"); r.failed {
		t.Errorf("+14%% allocs change failed a 30%% gate: %+v", r)
	}
	r := find(t, rows, "t15/chan/conc=16/allocs")
	if r.failed {
		t.Errorf("allocation improvement failed the gate: %+v", r)
	}
	if r.delta > -0.5 {
		t.Errorf("55%% allocs drop reported delta %v, want strongly negative", r.delta)
	}
}

// TestGateDirectionForThroughput: higher-is-better metrics regress when
// they fall, not when they rise — and are only enforced when gated.
func TestGateDirectionForThroughput(t *testing.T) {
	baseline := map[string]float64{"t14/workers=4/elections-per-sec": 100}
	current := map[string]float64{"t14/workers=4/elections-per-sec": 60}
	rows := compare(baseline, current, gate, higher, 0.30)
	r := find(t, rows, "t14/workers=4/elections-per-sec")
	if r.delta < 0.39 || r.delta > 0.41 {
		t.Errorf("throughput drop delta = %v, want +0.40", r.delta)
	}
	if r.failed {
		t.Errorf("ungated throughput metric enforced: %+v", r)
	}
	// Gate it explicitly: now the same drop fails.
	rows = compare(baseline, current, regexp.MustCompile(`elections-per-sec$`), higher, 0.30)
	if r := find(t, rows, "t14/workers=4/elections-per-sec"); !r.failed {
		t.Errorf("gated throughput drop of 40%% passed: %+v", r)
	}
}

// TestImprovementsAndNewMetricsPass: improvements never fail, metrics
// missing from either side are skipped, and a zero baseline never gates.
func TestImprovementsAndNewMetricsPass(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.080,
		"t13/retired/election-sec":  1.0,
		"t13/zero/election-sec":     0.0,
	}
	current := map[string]float64{
		"t13/tcp/n=32/election-sec":     0.035, // 2.3x better
		"t13/brand-new/election-sec":    9.9,   // no baseline: skipped
		"t13/zero/election-sec":         5.0,   // degenerate baseline: never gated
		"t13/tcp/n=32/wire-bytes":       1,     // not shared
		"t14/workers=1/elections-per-s": 1,
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (shared metrics only): %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.failed {
			t.Errorf("row failed unexpectedly: %+v", r)
		}
	}
	if r := find(t, rows, "t13/tcp/n=32/election-sec"); r.delta > -0.5 {
		t.Errorf("2.3x improvement reported delta %v, want strongly negative", r.delta)
	}
}

// TestParseMetricsAllSchemas: the legacy flat metric array, the object form
// with a phases section, and the host-profiled form all load; a JSON object
// without "metrics" or "profiles" is rejected rather than silently read as
// zero metrics. The two legacy generations count as wildcard profiles, so
// they load under any selector.
func TestParseMetricsAllSchemas(t *testing.T) {
	auto := hostSelector{mode: "auto"}
	flat := []byte(`[{"name":"a","value":1},{"name":"b","value":2}]`)
	obj := []byte(`{"metrics":[{"name":"a","value":1}],"phases":[{"meta":{"name":"t13/tcp/n=32"},"breakdown":{"phases":[]}}]}`)
	prof := []byte(`{"profiles":[{"host":{"cores":` + itoa(runtime.NumCPU()) + `,"gomaxprocs":` + itoa(runtime.NumCPU()) +
		`,"goos":"` + runtime.GOOS + `","goarch":"` + runtime.GOARCH + `"},"metrics":[{"name":"p","value":3}],"phases":[]}]}`)
	ms, ok, _, err := parseMetrics(flat, auto)
	if err != nil || !ok || len(ms) != 2 {
		t.Fatalf("flat schema: err=%v ok=%v, %d metrics", err, ok, len(ms))
	}
	ms, ok, _, err = parseMetrics(obj, auto)
	if err != nil || !ok || len(ms) != 1 || ms[0].Name != "a" {
		t.Fatalf("object schema: err=%v ok=%v, metrics=%+v", err, ok, ms)
	}
	ms, ok, _, err = parseMetrics(prof, auto)
	if err != nil || !ok || len(ms) != 1 || ms[0].Name != "p" {
		t.Fatalf("profiled schema: err=%v ok=%v, metrics=%+v", err, ok, ms)
	}
	if _, _, _, err := parseMetrics([]byte(`{"something":"else"}`), auto); err == nil {
		t.Error("object without a metrics or profiles key accepted")
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestHostSelection: profile matching across the three -host modes, the
// no-match skip signal, and the any-mode single-profile requirement.
func TestHostSelection(t *testing.T) {
	// Two profiles, neither shaped like this host (cores counts no real
	// machine has, and a foreign goos for the matching-core one).
	foreign := []byte(`{"profiles":[
		{"host":{"cores":100001,"gomaxprocs":100001,"goos":"linux","goarch":"amd64"},"metrics":[{"name":"x","value":1}]},
		{"host":{"cores":` + itoa(runtime.NumCPU()) + `,"gomaxprocs":` + itoa(runtime.NumCPU()) + `,"goos":"plan9","goarch":"arm"},"metrics":[{"name":"y","value":2}]}]}`)

	// auto finds no profile: not an error, ok=false with a note naming what
	// the file holds — the caller's skip path.
	ms, ok, note, err := parseMetrics(foreign, hostSelector{mode: "auto"})
	if err != nil || ok || ms != nil {
		t.Fatalf("auto vs foreign profiles: err=%v ok=%v ms=%+v", err, ok, ms)
	}
	if !strings.Contains(note, "cores=100001") || !strings.Contains(note, "plan9") {
		t.Errorf("no-match note should list the file's profiles, got %q", note)
	}

	// cores=N selects by core count regardless of goos.
	ms, ok, _, err = parseMetrics(foreign, hostSelector{mode: "cores", cores: 100001})
	if err != nil || !ok || len(ms) != 1 || ms[0].Name != "x" {
		t.Fatalf("cores=100001: err=%v ok=%v ms=%+v", err, ok, ms)
	}

	// any refuses a multi-profile file (which profile would it mean?), but
	// accepts a single-profile file no matter the shape.
	if _, _, _, err := parseMetrics(foreign, hostSelector{mode: "any"}); err == nil {
		t.Error("-host any accepted a two-profile file")
	}
	single := []byte(`{"profiles":[{"host":{"cores":100001,"gomaxprocs":100001,"goos":"plan9","goarch":"arm"},"metrics":[{"name":"x","value":1}]}]}`)
	ms, ok, _, err = parseMetrics(single, hostSelector{mode: "any"})
	if err != nil || !ok || len(ms) != 1 {
		t.Fatalf("-host any vs single profile: err=%v ok=%v ms=%+v", err, ok, ms)
	}

	// auto skips a profile measured under a non-default GOMAXPROCS even on
	// matching hardware: that run was an experiment, selected only explicitly.
	experiment := []byte(`{"profiles":[{"host":{"cores":` + itoa(runtime.NumCPU()) + `,"gomaxprocs":` + itoa(4*runtime.NumCPU()) +
		`,"goos":"` + runtime.GOOS + `","goarch":"` + runtime.GOARCH + `"},"metrics":[{"name":"x","value":1}]}]}`)
	if _, ok, _, err := parseMetrics(experiment, hostSelector{mode: "auto"}); err != nil || ok {
		t.Errorf("auto matched a gomaxprocs!=cores experiment profile: err=%v ok=%v", err, ok)
	}
}

// TestParseHostSelector: flag syntax for the three modes.
func TestParseHostSelector(t *testing.T) {
	for _, good := range []struct {
		in   string
		want hostSelector
	}{
		{"auto", hostSelector{mode: "auto"}},
		{"any", hostSelector{mode: "any"}},
		{"cores=4", hostSelector{mode: "cores", cores: 4}},
	} {
		got, err := parseHostSelector(good.in)
		if err != nil || got != good.want {
			t.Errorf("parseHostSelector(%q) = %+v, %v; want %+v", good.in, got, err, good.want)
		}
	}
	for _, bad := range []string{"", "cores=", "cores=zero", "cores=-1", "cores=0", "everything"} {
		if _, err := parseHostSelector(bad); err == nil {
			t.Errorf("parseHostSelector(%q) accepted", bad)
		}
	}
}

// TestCompareRatios: the paired traced:untraced gate flags bounded
// overhead as passing, 2x overhead as failing, and refuses to run when a
// pair matches nothing or a sibling is missing — a silent no-op gate is
// worse than no gate.
func TestCompareRatios(t *testing.T) {
	current := map[string]float64{
		"t13/tcp-traced/n=32/allocs":       1100,
		"t13/tcp/n=32/allocs":              1000,
		"t13/tcp-traced/n=32/election-sec": 0.036, // outside the allocs ratio gate
		"t13/tcp/n=32/election-sec":        0.030,
		"t15/tcp-traced/conc=16/allocs":    2000,
		"t15/tcp/conc=16/allocs":           1000,
		"t15/zero-traced/conc=1/allocs":    5,
		"t15/zero/conc=1/allocs":           0,
	}
	allocs := regexp.MustCompile(`allocs$`)
	rows, err := compareRatios(current, []string{"t13/tcp-traced:t13/tcp"}, allocs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].failed || rows[0].ratio < 1.09 || rows[0].ratio > 1.11 {
		t.Fatalf("10%% overhead within a 25%% bound flagged: %+v", rows)
	}
	rows, err = compareRatios(current, []string{"t15/tcp-traced:t15/tcp"}, allocs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].failed {
		t.Fatalf("2x overhead passed a 25%% bound: %+v", rows)
	}
	rows, err = compareRatios(current, []string{"t15/zero-traced:t15/zero"}, allocs, 0.25)
	if err != nil || len(rows) != 1 || !rows[0].degenerate || rows[0].failed {
		t.Fatalf("zero-denominator pair should report without gating: err=%v rows=%+v", err, rows)
	}
	if _, err := compareRatios(current, []string{"t99/a:t99/b"}, allocs, 0.25); err == nil {
		t.Error("pair matching no metric accepted")
	}
	if _, err := compareRatios(map[string]float64{"x-traced/allocs": 1}, []string{"x-traced:x"}, allocs, 0.25); err == nil {
		t.Error("missing untraced sibling accepted")
	}
	if _, err := compareRatios(current, []string{"nocolon"}, allocs, 0.25); err == nil {
		t.Error("malformed pair accepted")
	}
}
