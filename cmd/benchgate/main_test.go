package main

import (
	"regexp"
	"testing"
)

var (
	gate   = regexp.MustCompile(`election-sec$`)
	higher = regexp.MustCompile(`-per-sec$`)
)

// find returns the row for name, failing the test when absent.
func find(t *testing.T, rows []row, name string) row {
	t.Helper()
	for _, r := range rows {
		if r.name == name {
			return r
		}
	}
	t.Fatalf("no comparison row for %q", name)
	return row{}
}

// TestGateFailsOnLatencyRegression: a gated lower-is-better metric beyond
// the threshold fails; one inside the threshold passes.
func TestGateFailsOnLatencyRegression(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.040,
		"t13/tcp/n=8/election-sec":  0.004,
	}
	current := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.060, // +50%: fail
		"t13/tcp/n=8/election-sec":  0.005, // +25%: within 30%
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if r := find(t, rows, "t13/tcp/n=32/election-sec"); !r.failed || !r.gated {
		t.Errorf("+50%% latency regression not flagged: %+v", r)
	}
	if r := find(t, rows, "t13/tcp/n=8/election-sec"); r.failed {
		t.Errorf("+25%% change failed a 30%% gate: %+v", r)
	}
}

// TestGateDirectionForThroughput: higher-is-better metrics regress when
// they fall, not when they rise — and are only enforced when gated.
func TestGateDirectionForThroughput(t *testing.T) {
	baseline := map[string]float64{"t14/workers=4/elections-per-sec": 100}
	current := map[string]float64{"t14/workers=4/elections-per-sec": 60}
	rows := compare(baseline, current, gate, higher, 0.30)
	r := find(t, rows, "t14/workers=4/elections-per-sec")
	if r.delta < 0.39 || r.delta > 0.41 {
		t.Errorf("throughput drop delta = %v, want +0.40", r.delta)
	}
	if r.failed {
		t.Errorf("ungated throughput metric enforced: %+v", r)
	}
	// Gate it explicitly: now the same drop fails.
	rows = compare(baseline, current, regexp.MustCompile(`elections-per-sec$`), higher, 0.30)
	if r := find(t, rows, "t14/workers=4/elections-per-sec"); !r.failed {
		t.Errorf("gated throughput drop of 40%% passed: %+v", r)
	}
}

// TestImprovementsAndNewMetricsPass: improvements never fail, metrics
// missing from either side are skipped, and a zero baseline never gates.
func TestImprovementsAndNewMetricsPass(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.080,
		"t13/retired/election-sec":  1.0,
		"t13/zero/election-sec":     0.0,
	}
	current := map[string]float64{
		"t13/tcp/n=32/election-sec":     0.035, // 2.3x better
		"t13/brand-new/election-sec":    9.9,   // no baseline: skipped
		"t13/zero/election-sec":         5.0,   // degenerate baseline: never gated
		"t13/tcp/n=32/wire-bytes":       1,     // not shared
		"t14/workers=1/elections-per-s": 1,
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (shared metrics only): %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.failed {
			t.Errorf("row failed unexpectedly: %+v", r)
		}
	}
	if r := find(t, rows, "t13/tcp/n=32/election-sec"); r.delta > -0.5 {
		t.Errorf("2.3x improvement reported delta %v, want strongly negative", r.delta)
	}
}
