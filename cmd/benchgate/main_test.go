package main

import (
	"regexp"
	"testing"
)

var (
	// gate mirrors the binary's default -gate pattern; keep the two in sync.
	gate   = regexp.MustCompile(`(?:election-sec|allocs)$`)
	higher = regexp.MustCompile(`-per-sec$`)
)

// find returns the row for name, failing the test when absent.
func find(t *testing.T, rows []row, name string) row {
	t.Helper()
	for _, r := range rows {
		if r.name == name {
			return r
		}
	}
	t.Fatalf("no comparison row for %q", name)
	return row{}
}

// TestGateFailsOnLatencyRegression: a gated lower-is-better metric beyond
// the threshold fails; one inside the threshold passes.
func TestGateFailsOnLatencyRegression(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.040,
		"t13/tcp/n=8/election-sec":  0.004,
	}
	current := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.060, // +50%: fail
		"t13/tcp/n=8/election-sec":  0.005, // +25%: within 30%
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if r := find(t, rows, "t13/tcp/n=32/election-sec"); !r.failed || !r.gated {
		t.Errorf("+50%% latency regression not flagged: %+v", r)
	}
	if r := find(t, rows, "t13/tcp/n=8/election-sec"); r.failed {
		t.Errorf("+25%% change failed a 30%% gate: %+v", r)
	}
}

// TestGateFailsOnAllocsRegression: allocation counts are gated by default —
// lower is better, a rise beyond the threshold fails, a drop (the pooling
// win) and a within-threshold rise pass.
func TestGateFailsOnAllocsRegression(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/allocs":     100000,
		"t13/tcp/n=8/allocs":      7000,
		"t15/chan/conc=16/allocs": 20000,
	}
	current := map[string]float64{
		"t13/tcp/n=32/allocs":     140000, // +40%: fail
		"t13/tcp/n=8/allocs":      8000,   // +14%: within 30%
		"t15/chan/conc=16/allocs": 9000,   // pooling win: pass
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if r := find(t, rows, "t13/tcp/n=32/allocs"); !r.failed || !r.gated {
		t.Errorf("+40%% allocs regression not flagged: %+v", r)
	}
	if r := find(t, rows, "t13/tcp/n=8/allocs"); r.failed {
		t.Errorf("+14%% allocs change failed a 30%% gate: %+v", r)
	}
	r := find(t, rows, "t15/chan/conc=16/allocs")
	if r.failed {
		t.Errorf("allocation improvement failed the gate: %+v", r)
	}
	if r.delta > -0.5 {
		t.Errorf("55%% allocs drop reported delta %v, want strongly negative", r.delta)
	}
}

// TestGateDirectionForThroughput: higher-is-better metrics regress when
// they fall, not when they rise — and are only enforced when gated.
func TestGateDirectionForThroughput(t *testing.T) {
	baseline := map[string]float64{"t14/workers=4/elections-per-sec": 100}
	current := map[string]float64{"t14/workers=4/elections-per-sec": 60}
	rows := compare(baseline, current, gate, higher, 0.30)
	r := find(t, rows, "t14/workers=4/elections-per-sec")
	if r.delta < 0.39 || r.delta > 0.41 {
		t.Errorf("throughput drop delta = %v, want +0.40", r.delta)
	}
	if r.failed {
		t.Errorf("ungated throughput metric enforced: %+v", r)
	}
	// Gate it explicitly: now the same drop fails.
	rows = compare(baseline, current, regexp.MustCompile(`elections-per-sec$`), higher, 0.30)
	if r := find(t, rows, "t14/workers=4/elections-per-sec"); !r.failed {
		t.Errorf("gated throughput drop of 40%% passed: %+v", r)
	}
}

// TestImprovementsAndNewMetricsPass: improvements never fail, metrics
// missing from either side are skipped, and a zero baseline never gates.
func TestImprovementsAndNewMetricsPass(t *testing.T) {
	baseline := map[string]float64{
		"t13/tcp/n=32/election-sec": 0.080,
		"t13/retired/election-sec":  1.0,
		"t13/zero/election-sec":     0.0,
	}
	current := map[string]float64{
		"t13/tcp/n=32/election-sec":     0.035, // 2.3x better
		"t13/brand-new/election-sec":    9.9,   // no baseline: skipped
		"t13/zero/election-sec":         5.0,   // degenerate baseline: never gated
		"t13/tcp/n=32/wire-bytes":       1,     // not shared
		"t14/workers=1/elections-per-s": 1,
	}
	rows := compare(baseline, current, gate, higher, 0.30)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2 (shared metrics only): %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.failed {
			t.Errorf("row failed unexpectedly: %+v", r)
		}
	}
	if r := find(t, rows, "t13/tcp/n=32/election-sec"); r.delta > -0.5 {
		t.Errorf("2.3x improvement reported delta %v, want strongly negative", r.delta)
	}
}

// TestParseMetricsBothSchemas: the legacy flat metric array and the object
// form with a phases section both load; a JSON object without "metrics" is
// rejected rather than silently read as zero metrics.
func TestParseMetricsBothSchemas(t *testing.T) {
	flat := []byte(`[{"name":"a","value":1},{"name":"b","value":2}]`)
	obj := []byte(`{"metrics":[{"name":"a","value":1}],"phases":[{"meta":{"name":"t13/tcp/n=32"},"breakdown":{"phases":[]}}]}`)
	ms, err := parseMetrics(flat)
	if err != nil || len(ms) != 2 {
		t.Fatalf("flat schema: err=%v, %d metrics", err, len(ms))
	}
	ms, err = parseMetrics(obj)
	if err != nil || len(ms) != 1 || ms[0].Name != "a" {
		t.Fatalf("object schema: err=%v, metrics=%+v", err, ms)
	}
	if _, err := parseMetrics([]byte(`{"something":"else"}`)); err == nil {
		t.Error("object without a metrics key accepted")
	}
}

// TestCompareRatios: the paired traced:untraced gate flags bounded
// overhead as passing, 2x overhead as failing, and refuses to run when a
// pair matches nothing or a sibling is missing — a silent no-op gate is
// worse than no gate.
func TestCompareRatios(t *testing.T) {
	current := map[string]float64{
		"t13/tcp-traced/n=32/allocs":       1100,
		"t13/tcp/n=32/allocs":              1000,
		"t13/tcp-traced/n=32/election-sec": 0.036, // outside the allocs ratio gate
		"t13/tcp/n=32/election-sec":        0.030,
		"t15/tcp-traced/conc=16/allocs":    2000,
		"t15/tcp/conc=16/allocs":           1000,
		"t15/zero-traced/conc=1/allocs":    5,
		"t15/zero/conc=1/allocs":           0,
	}
	allocs := regexp.MustCompile(`allocs$`)
	rows, err := compareRatios(current, []string{"t13/tcp-traced:t13/tcp"}, allocs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].failed || rows[0].ratio < 1.09 || rows[0].ratio > 1.11 {
		t.Fatalf("10%% overhead within a 25%% bound flagged: %+v", rows)
	}
	rows, err = compareRatios(current, []string{"t15/tcp-traced:t15/tcp"}, allocs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].failed {
		t.Fatalf("2x overhead passed a 25%% bound: %+v", rows)
	}
	rows, err = compareRatios(current, []string{"t15/zero-traced:t15/zero"}, allocs, 0.25)
	if err != nil || len(rows) != 1 || !rows[0].degenerate || rows[0].failed {
		t.Fatalf("zero-denominator pair should report without gating: err=%v rows=%+v", err, rows)
	}
	if _, err := compareRatios(current, []string{"t99/a:t99/b"}, allocs, 0.25); err == nil {
		t.Error("pair matching no metric accepted")
	}
	if _, err := compareRatios(map[string]float64{"x-traced/allocs": 1}, []string{"x-traced:x"}, allocs, 0.25); err == nil {
		t.Error("missing untraced sibling accepted")
	}
	if _, err := compareRatios(current, []string{"nocolon"}, allocs, 0.25); err == nil {
		t.Error("malformed pair accepted")
	}
}
