// Command benchgate compares a freshly generated BENCH_*.json against a
// checked-in baseline and fails (exit 1) on regressions beyond a threshold
// in the gated metrics — the CI bench job's regression gate.
//
// Both files hold the repository's benchmark-metric schema: a JSON array of
// {"name": ..., "value": ...} objects (see docs/BENCH.md). Every metric
// present in both files is printed benchstat-style with its delta; only
// metrics matching -gate are enforced — by default the latency metrics
// (`election-sec`) and the allocation counts (`allocs`), so both a slow
// hot path and a pooling regression fail CI. Direction is inferred from
// the name: metrics matching -higher (throughput-like, "...-per-sec")
// regress when they fall, everything else (latency-like, "...-sec",
// "allocs") regresses when it rises.
//
// Usage:
//
//	benchgate -baseline BENCH_net.baseline.json -current BENCH_net.json \
//	          [-gate '(?:election-sec|allocs)$'] [-higher '-per-sec$'] [-threshold 0.30]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// metric is one row of a BENCH_*.json file.
type metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// row is one comparison line.
type row struct {
	name     string
	old, new float64
	delta    float64 // fractional change, sign-adjusted so positive = worse
	gated    bool
	failed   bool
}

// compare builds the comparison table and flags gated regressions beyond
// threshold. Metrics present in only one file are ignored (new benchmarks
// appear, old ones retire); the gate only ever tightens on shared names.
func compare(baseline, current map[string]float64, gate, higher *regexp.Regexp, threshold float64) []row {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if _, ok := current[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rows := make([]row, 0, len(names))
	for _, name := range names {
		old, new := baseline[name], current[name]
		r := row{name: name, old: old, new: new, gated: gate.MatchString(name)}
		switch {
		case old == 0:
			r.delta = 0 // degenerate baseline: report, never gate
		case higher.MatchString(name):
			r.delta = (old - new) / old // drop in throughput = positive = worse
		default:
			r.delta = (new - old) / old // rise in latency/allocs = positive = worse
		}
		r.failed = r.gated && old != 0 && r.delta > threshold
		rows = append(rows, r)
	}
	return rows
}

func main() {
	baselinePath := flag.String("baseline", "", "checked-in baseline BENCH_*.json")
	currentPath := flag.String("current", "", "freshly generated BENCH_*.json")
	gatePat := flag.String("gate", `(?:election-sec|allocs)$`, "regexp selecting the metrics the gate enforces")
	higherPat := flag.String("higher", `-per-sec$`, "regexp selecting higher-is-better metrics")
	threshold := flag.Float64("threshold", 0.30, "fractional regression beyond which a gated metric fails")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	rows := compare(baseline, current, regexp.MustCompile(*gatePat), regexp.MustCompile(*higherPat), *threshold)
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no shared metrics between baseline and current")
		os.Exit(2)
	}
	failures := 0
	fmt.Printf("%-44s %14s %14s %9s\n", "metric", "old", "new", "delta")
	for _, r := range rows {
		mark := " "
		if r.gated {
			mark = "*"
			if r.failed {
				mark = "!"
				failures++
			}
		}
		fmt.Printf("%-44s %14.6g %14.6g %+8.1f%% %s\n", r.name, r.old, r.new, 100*r.delta, mark)
	}
	fmt.Printf("\n(* gated; ! regression beyond %.0f%%; positive delta = worse)\n", 100**threshold)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated metric(s) regressed beyond %.0f%%\n", failures, 100**threshold)
		os.Exit(1)
	}
}

// load reads one BENCH_*.json metric file.
func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ms []metric
	if err := json.Unmarshal(raw, &ms); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out, nil
}
