// Command benchgate compares a freshly generated BENCH_*.json against a
// checked-in baseline and fails (exit 1) on regressions beyond a threshold
// in the gated metrics — the CI bench job's regression gate.
//
// Both files hold the repository's benchmark-metric schema (docs/BENCH.md):
// either the legacy flat JSON array of {"name": ..., "value": ...} objects,
// or the current object form {"metrics": [...], "phases": [...]} whose
// phases carry per-phase latency-attribution baselines (internal/trace
// breakdowns) alongside the scalar metrics. benchgate gates only the
// scalar metrics; the phases ride along as recorded context for perf PRs.
//
// Every metric present in both files is printed benchstat-style with its
// delta; only metrics matching -gate are enforced — by default the latency
// metrics (`election-sec`) and the allocation counts (`allocs`), so both a
// slow hot path and a pooling regression fail CI. Direction is inferred
// from the name: metrics matching -higher (throughput-like, "...-per-sec")
// regress when they fall, everything else (latency-like, "...-sec",
// "allocs") regresses when it rises.
//
// -ratio gates paired variants inside the *current* file alone: for each
// "traced:untraced" prefix pair, every gated metric of the traced variant
// is divided by its untraced sibling and the ratio must stay within
// -ratio-threshold of 1. This is how CI bounds the flight recorder's
// overhead: the disabled-trace path is gated to zero added allocations via
// the ordinary baseline compare, and the enabled-trace path is gated to a
// bounded delta via the pair ratio — no second baseline file needed.
//
// Usage:
//
//	benchgate -baseline BENCH_net.baseline.json -current BENCH_net.json \
//	          [-gate '(?:election-sec|allocs)$'] [-higher '-per-sec$'] [-threshold 0.30]
//	benchgate -current BENCH_net.json -ratio 't13/tcp-traced:t13/tcp' \
//	          [-ratio-gate 'allocs$'] [-ratio-threshold 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
)

// metric is one row of a BENCH_*.json file.
type metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// row is one comparison line.
type row struct {
	name     string
	old, new float64
	delta    float64 // fractional change, sign-adjusted so positive = worse
	gated    bool
	failed   bool
}

// compare builds the comparison table and flags gated regressions beyond
// threshold. Metrics present in only one file are ignored (new benchmarks
// appear, old ones retire); the gate only ever tightens on shared names.
func compare(baseline, current map[string]float64, gate, higher *regexp.Regexp, threshold float64) []row {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if _, ok := current[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rows := make([]row, 0, len(names))
	for _, name := range names {
		old, new := baseline[name], current[name]
		r := row{name: name, old: old, new: new, gated: gate.MatchString(name)}
		switch {
		case old == 0:
			r.delta = 0 // degenerate baseline: report, never gate
		case higher.MatchString(name):
			r.delta = (old - new) / old // drop in throughput = positive = worse
		default:
			r.delta = (new - old) / old // rise in latency/allocs = positive = worse
		}
		r.failed = r.gated && old != 0 && r.delta > threshold
		rows = append(rows, r)
	}
	return rows
}

func main() {
	baselinePath := flag.String("baseline", "", "checked-in baseline BENCH_*.json (optional when only -ratio gates run)")
	currentPath := flag.String("current", "", "freshly generated BENCH_*.json")
	gatePat := flag.String("gate", `(?:election-sec|allocs)$`, "regexp selecting the metrics the gate enforces")
	higherPat := flag.String("higher", `-per-sec$`, "regexp selecting higher-is-better metrics")
	threshold := flag.Float64("threshold", 0.30, "fractional regression beyond which a gated metric fails")
	ratioPairs := flag.String("ratio", "", "comma-separated traced:untraced prefix pairs gated against each other inside the current file")
	ratioGate := flag.String("ratio-gate", `allocs$`, "regexp selecting the metrics the -ratio pairs gate")
	ratioThreshold := flag.Float64("ratio-threshold", 0.25, "fractional traced/untraced overhead beyond which a -ratio pair fails")
	flag.Parse()
	if *currentPath == "" || (*baselinePath == "" && *ratioPairs == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -current plus -baseline and/or -ratio are required")
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	failures := 0
	if *baselinePath != "" {
		baseline, err := load(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		rows := compare(baseline, current, regexp.MustCompile(*gatePat), regexp.MustCompile(*higherPat), *threshold)
		if len(rows) == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: no shared metrics between baseline and current")
			os.Exit(2)
		}
		fmt.Printf("%-44s %14s %14s %9s\n", "metric", "old", "new", "delta")
		for _, r := range rows {
			mark := " "
			if r.gated {
				mark = "*"
				if r.failed {
					mark = "!"
					failures++
				}
			}
			fmt.Printf("%-44s %14.6g %14.6g %+8.1f%% %s\n", r.name, r.old, r.new, 100*r.delta, mark)
		}
		fmt.Printf("\n(* gated; ! regression beyond %.0f%%; positive delta = worse)\n", 100**threshold)
	}
	if *ratioPairs != "" {
		rows, err := compareRatios(current, strings.Split(*ratioPairs, ","), regexp.MustCompile(*ratioGate), *ratioThreshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("\n%-44s %14s %14s %9s\n", "paired metric (vs sibling)", "traced", "untraced", "ratio")
		for _, r := range rows {
			mark := "*"
			ratio := "-"
			if !r.degenerate {
				ratio = fmt.Sprintf("%.2fx", r.ratio)
				if r.failed {
					mark = "!"
					failures++
				}
			}
			fmt.Printf("%-44s %14.6g %14.6g %9s %s\n", r.name, r.num, r.den, ratio, mark)
		}
		fmt.Printf("\n(paired gate: traced/untraced ratio beyond %.2fx fails)\n", 1+*ratioThreshold)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated metric(s) regressed beyond the threshold\n", failures)
		os.Exit(1)
	}
}

// load reads one BENCH_*.json metric file. Both schema generations parse:
// the legacy flat array of metrics, and the object form whose "metrics"
// key holds the same array next to the "phases" attribution baselines
// (which benchgate ignores — they are context, not gated numbers).
func load(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ms, err := parseMetrics(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(ms))
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out, nil
}

// parseMetrics decodes either BENCH_*.json schema generation.
func parseMetrics(raw []byte) ([]metric, error) {
	var ms []metric
	if err := json.Unmarshal(raw, &ms); err == nil {
		return ms, nil
	}
	var obj struct {
		Metrics []metric `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, err
	}
	if obj.Metrics == nil {
		return nil, fmt.Errorf("neither a metric array nor an object with a \"metrics\" key")
	}
	return obj.Metrics, nil
}

// ratioRow is one paired-variant comparison inside the current file.
type ratioRow struct {
	name       string // the traced variant's metric name
	sibling    string
	num, den   float64
	ratio      float64
	failed     bool
	degenerate bool // zero denominator: report, never gate
}

// compareRatios gates paired variants: for every current metric whose name
// contains the pair's first prefix and matches gate, the metric with the
// prefix swapped for the second must exist, and their ratio must not
// exceed 1+threshold. Pairs are "traced:untraced" prefix strings.
func compareRatios(current map[string]float64, pairs []string, gate *regexp.Regexp, threshold float64) ([]ratioRow, error) {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []ratioRow
	for _, pair := range pairs {
		a, b, ok := strings.Cut(pair, ":")
		if !ok || a == "" || b == "" {
			return nil, fmt.Errorf("ratio pair %q must be \"traced:untraced\"", pair)
		}
		matched := false
		for _, name := range names {
			if !strings.Contains(name, a) || !gate.MatchString(name) {
				continue
			}
			sibling := strings.Replace(name, a, b, 1)
			den, ok := current[sibling]
			if !ok {
				return nil, fmt.Errorf("metric %s has no %s sibling %s", name, b, sibling)
			}
			matched = true
			r := ratioRow{name: name, sibling: sibling, num: current[name], den: den}
			if den == 0 {
				r.degenerate = true
			} else {
				r.ratio = r.num / den
				r.failed = r.ratio > 1+threshold
			}
			rows = append(rows, r)
		}
		if !matched {
			return nil, fmt.Errorf("ratio pair %q matched no gated metric in the current file", pair)
		}
	}
	return rows, nil
}
