// Command benchgate compares a freshly generated BENCH_*.json against a
// checked-in baseline and fails (exit 1) on regressions beyond a threshold
// in the gated metrics — the CI bench job's regression gate.
//
// Both files hold the repository's benchmark-metric schema (docs/BENCH.md).
// Three generations parse: the legacy flat JSON array of {"name": ...,
// "value": ...} objects, the object form {"metrics": [...], "phases":
// [...]}, and the current host-profile form {"profiles": [{"host":
// {cores, gomaxprocs, goos, goarch}, "metrics": [...], "phases": [...]}]}.
// benchgate gates only the scalar metrics; the phases ride along as
// recorded context for perf PRs.
//
// Contention numbers are host-shaped, so profile selection (-host) decides
// which section of a profiled file is compared: "auto" (the default) picks
// the profile measured on a machine like this one (cores, goos, goarch
// equal), "cores=N" picks by core count, and "any" requires the file to
// hold exactly one profile. Legacy files count as one wildcard profile
// matching every host. When the *baseline* holds no matching profile —
// the checked-in numbers came from a different machine shape — the
// baseline compare is skipped with a note and exit 0: comparing a
// single-core container's curve against a many-core runner's would gate
// on hardware, not code. The -ratio gates are unaffected: they pair
// variants inside the current file, where hardware cancels out.
//
// Every metric present in both files is printed benchstat-style with its
// delta; only metrics matching -gate are enforced — by default the latency
// metrics (`election-sec`) and the allocation counts (`allocs`), so both a
// slow hot path and a pooling regression fail CI. Direction is inferred
// from the name: metrics matching -higher (throughput-like, "...-per-sec")
// regress when they fall, everything else (latency-like, "...-sec",
// "allocs") regresses when it rises.
//
// -ratio gates paired variants inside the *current* file alone: for each
// "traced:untraced" prefix pair, every gated metric of the traced variant
// is divided by its untraced sibling and the ratio must stay within
// -ratio-threshold of 1. This is how CI bounds the flight recorder's
// overhead: the disabled-trace path is gated to zero added allocations via
// the ordinary baseline compare, and the enabled-trace path is gated to a
// bounded delta via the pair ratio — no second baseline file needed.
//
// Usage:
//
//	benchgate -baseline BENCH_net.baseline.json -current BENCH_net.json \
//	          [-gate '(?:election-sec|allocs)$'] [-higher '-per-sec$'] [-threshold 0.30]
//	benchgate -current BENCH_net.json -ratio 't13/tcp-traced:t13/tcp' \
//	          [-ratio-gate 'allocs$'] [-ratio-threshold 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// metric is one row of a BENCH_*.json file.
type metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// hostProfile keys one profile section of a BENCH_*.json file: the machine
// shape its numbers were measured on. The zero value is the wildcard
// profile legacy (unprofiled) files are treated as.
type hostProfile struct {
	Cores      int    `json:"cores"`
	Gomaxprocs int    `json:"gomaxprocs"`
	Goos       string `json:"goos"`
	Goarch     string `json:"goarch"`
}

func (h hostProfile) wildcard() bool { return h == hostProfile{} }

func (h hostProfile) String() string {
	if h.wildcard() {
		return "unprofiled (legacy schema, matches any host)"
	}
	return fmt.Sprintf("cores=%d gomaxprocs=%d %s/%s", h.Cores, h.Gomaxprocs, h.Goos, h.Goarch)
}

// hostSelector decides which profile of a file to compare.
type hostSelector struct {
	mode  string // "auto", "any", or "cores"
	cores int    // for mode "cores"
}

// parseHostSelector parses the -host flag.
func parseHostSelector(s string) (hostSelector, error) {
	switch {
	case s == "auto":
		return hostSelector{mode: "auto"}, nil
	case s == "any":
		return hostSelector{mode: "any"}, nil
	case strings.HasPrefix(s, "cores="):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "cores="))
		if err != nil || n <= 0 {
			return hostSelector{}, fmt.Errorf("-host %q: want cores=<positive int>", s)
		}
		return hostSelector{mode: "cores", cores: n}, nil
	default:
		return hostSelector{}, fmt.Errorf("-host %q: want auto, any, or cores=<n>", s)
	}
}

// matches reports whether a profile satisfies the selector. Wildcard
// profiles (legacy files) match everything. "auto" matches on machine
// shape — cores, goos, goarch — but not gomaxprocs: an explicitly lowered
// or raised GOMAXPROCS is an experiment, and its profile is selected
// explicitly (cores=...), never silently.
func (sel hostSelector) matches(h hostProfile) bool {
	if h.wildcard() {
		return true
	}
	switch sel.mode {
	case "auto":
		return h.Cores == runtime.NumCPU() && h.Goos == runtime.GOOS && h.Goarch == runtime.GOARCH &&
			h.Gomaxprocs == h.Cores
	case "cores":
		return h.Cores == sel.cores
	default: // "any"
		return true
	}
}

// row is one comparison line.
type row struct {
	name     string
	old, new float64
	delta    float64 // fractional change, sign-adjusted so positive = worse
	gated    bool
	failed   bool
}

// compare builds the comparison table and flags gated regressions beyond
// threshold. Metrics present in only one file are ignored (new benchmarks
// appear, old ones retire); the gate only ever tightens on shared names.
func compare(baseline, current map[string]float64, gate, higher *regexp.Regexp, threshold float64) []row {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		if _, ok := current[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	rows := make([]row, 0, len(names))
	for _, name := range names {
		old, new := baseline[name], current[name]
		r := row{name: name, old: old, new: new, gated: gate.MatchString(name)}
		switch {
		case old == 0:
			r.delta = 0 // degenerate baseline: report, never gate
		case higher.MatchString(name):
			r.delta = (old - new) / old // drop in throughput = positive = worse
		default:
			r.delta = (new - old) / old // rise in latency/allocs = positive = worse
		}
		r.failed = r.gated && old != 0 && r.delta > threshold
		rows = append(rows, r)
	}
	return rows
}

func main() {
	baselinePath := flag.String("baseline", "", "checked-in baseline BENCH_*.json (optional when only -ratio gates run)")
	currentPath := flag.String("current", "", "freshly generated BENCH_*.json")
	gatePat := flag.String("gate", `(?:election-sec|allocs)$`, "regexp selecting the metrics the gate enforces")
	higherPat := flag.String("higher", `-per-sec$`, "regexp selecting higher-is-better metrics")
	threshold := flag.Float64("threshold", 0.30, "fractional regression beyond which a gated metric fails")
	ratioPairs := flag.String("ratio", "", "comma-separated traced:untraced prefix pairs gated against each other inside the current file")
	ratioGate := flag.String("ratio-gate", `allocs$`, "regexp selecting the metrics the -ratio pairs gate")
	ratioThreshold := flag.Float64("ratio-threshold", 0.25, "fractional traced/untraced overhead beyond which a -ratio pair fails")
	hostFlag := flag.String("host", "auto", "profile selection for profiled files: auto, any, or cores=<n>")
	flag.Parse()
	if *currentPath == "" || (*baselinePath == "" && *ratioPairs == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -current plus -baseline and/or -ratio are required")
		os.Exit(2)
	}
	sel, err := parseHostSelector(*hostFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	current, ok, note, err := load(*currentPath, sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if !ok {
		// The current file is this run's own output; failing to find this
		// host in it means the harness and gate disagree — a real error.
		fmt.Fprintf(os.Stderr, "benchgate: %s: %s\n", *currentPath, note)
		os.Exit(2)
	}
	if note != "" {
		fmt.Printf("current  %s (%s)\n", *currentPath, note)
	}
	failures := 0
	if *baselinePath != "" {
		baseline, ok, note, err := load(*baselinePath, sel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if !ok {
			// The checked-in baseline was measured on a different machine
			// shape: comparing across shapes would gate on hardware, not
			// code. Skip the baseline compare (the -ratio gates below still
			// run — they pair variants inside the current file).
			fmt.Printf("baseline %s: %s\nbaseline compare skipped (no comparable host profile)\n", *baselinePath, note)
			baseline = nil
		}
		if baseline != nil {
			if note != "" {
				fmt.Printf("baseline %s (%s)\n", *baselinePath, note)
			}
			rows := compare(baseline, current, regexp.MustCompile(*gatePat), regexp.MustCompile(*higherPat), *threshold)
			if len(rows) == 0 {
				fmt.Fprintln(os.Stderr, "benchgate: no shared metrics between baseline and current")
				os.Exit(2)
			}
			fmt.Printf("%-44s %14s %14s %9s\n", "metric", "old", "new", "delta")
			for _, r := range rows {
				mark := " "
				if r.gated {
					mark = "*"
					if r.failed {
						mark = "!"
						failures++
					}
				}
				fmt.Printf("%-44s %14.6g %14.6g %+8.1f%% %s\n", r.name, r.old, r.new, 100*r.delta, mark)
			}
			fmt.Printf("\n(* gated; ! regression beyond %.0f%%; positive delta = worse)\n", 100**threshold)
		}
	}
	if *ratioPairs != "" {
		rows, err := compareRatios(current, strings.Split(*ratioPairs, ","), regexp.MustCompile(*ratioGate), *ratioThreshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("\n%-44s %14s %14s %9s\n", "paired metric (vs sibling)", "traced", "untraced", "ratio")
		for _, r := range rows {
			mark := "*"
			ratio := "-"
			if !r.degenerate {
				ratio = fmt.Sprintf("%.2fx", r.ratio)
				if r.failed {
					mark = "!"
					failures++
				}
			}
			fmt.Printf("%-44s %14.6g %14.6g %9s %s\n", r.name, r.num, r.den, ratio, mark)
		}
		fmt.Printf("\n(paired gate: traced/untraced ratio beyond %.2fx fails)\n", 1+*ratioThreshold)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d gated metric(s) regressed beyond the threshold\n", failures)
		os.Exit(1)
	}
}

// load reads one BENCH_*.json metric file and selects the profile the
// selector asks for. All three schema generations parse: the legacy flat
// array of metrics and the {"metrics": [...]} object form become one
// wildcard profile; the {"profiles": [...]} form is searched for a
// matching host. ok is false — with the available profiles described in
// note — when a profiled file holds no match; the caller decides whether
// that is a skip (baseline) or an error (current). The "phases"
// attribution baselines are ignored throughout — context, not gated
// numbers.
func load(path string, sel hostSelector) (out map[string]float64, ok bool, note string, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false, "", err
	}
	ms, ok, note, err := parseMetrics(raw, sel)
	if err != nil {
		return nil, false, "", fmt.Errorf("%s: %w", path, err)
	}
	if !ok {
		return nil, false, note, nil
	}
	out = make(map[string]float64, len(ms))
	for _, m := range ms {
		out[m.Name] = m.Value
	}
	return out, true, note, nil
}

// parseMetrics decodes any BENCH_*.json schema generation and applies the
// profile selector; see load.
func parseMetrics(raw []byte, sel hostSelector) (ms []metric, ok bool, note string, err error) {
	if err := json.Unmarshal(raw, &ms); err == nil {
		return ms, true, "", nil // legacy flat array: wildcard profile
	}
	var obj struct {
		Metrics  []metric `json:"metrics"`
		Profiles []struct {
			Host    hostProfile `json:"host"`
			Metrics []metric    `json:"metrics"`
		} `json:"profiles"`
	}
	if err := json.Unmarshal(raw, &obj); err != nil {
		return nil, false, "", err
	}
	switch {
	case obj.Profiles != nil:
		if sel.mode == "any" && len(obj.Profiles) > 1 {
			return nil, false, "", fmt.Errorf("-host any needs exactly one profile, file holds %d", len(obj.Profiles))
		}
		var hosts []string
		for _, p := range obj.Profiles {
			if sel.matches(p.Host) {
				return p.Metrics, true, fmt.Sprintf("profile: %s", p.Host), nil
			}
			hosts = append(hosts, p.Host.String())
		}
		return nil, false, fmt.Sprintf("no profile matches this host; file holds: %s", strings.Join(hosts, "; ")), nil
	case obj.Metrics != nil:
		return obj.Metrics, true, "", nil // unprofiled object form: wildcard
	default:
		return nil, false, "", fmt.Errorf("neither a metric array nor an object with a \"metrics\" or \"profiles\" key")
	}
}

// ratioRow is one paired-variant comparison inside the current file.
type ratioRow struct {
	name       string // the traced variant's metric name
	sibling    string
	num, den   float64
	ratio      float64
	failed     bool
	degenerate bool // zero denominator: report, never gate
}

// compareRatios gates paired variants: for every current metric whose name
// contains the pair's first prefix and matches gate, the metric with the
// prefix swapped for the second must exist, and their ratio must not
// exceed 1+threshold. Pairs are "traced:untraced" prefix strings.
func compareRatios(current map[string]float64, pairs []string, gate *regexp.Regexp, threshold float64) ([]ratioRow, error) {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []ratioRow
	for _, pair := range pairs {
		a, b, ok := strings.Cut(pair, ":")
		if !ok || a == "" || b == "" {
			return nil, fmt.Errorf("ratio pair %q must be \"traced:untraced\"", pair)
		}
		matched := false
		for _, name := range names {
			if !strings.Contains(name, a) || !gate.MatchString(name) {
				continue
			}
			sibling := strings.Replace(name, a, b, 1)
			den, ok := current[sibling]
			if !ok {
				return nil, fmt.Errorf("metric %s has no %s sibling %s", name, b, sibling)
			}
			matched = true
			r := ratioRow{name: name, sibling: sibling, num: current[name], den: den}
			if den == 0 {
				r.degenerate = true
			} else {
				r.ratio = r.num / den
				r.failed = r.ratio > 1+threshold
			}
			rows = append(rows, r)
		}
		if !matched {
			return nil, fmt.Errorf("ratio pair %q matched no gated metric in the current file", pair)
		}
	}
	return rows, nil
}
