// Sifting: the paper's Section 1 motivation, live.
//
// A sifting round wants to drop as many contenders as possible while keeping
// at least one. The naive approach — flip a biased coin, announce it, drop
// if you see a 1 — is destroyed by a strong adaptive adversary: it watches
// the flips and schedules every 0-flipper to finish before any 1-flipper is
// visible, so nobody ever drops. The PoisonPill technique defeats exactly
// this attack: before flipping, each processor announces Commit ("I am about
// to flip"), and any 0-flipper that sees a Commit without a visible low
// priority kills itself — so the adversary can no longer exploit what it
// learns.
//
// Run with:
//
//	go run ./examples/sifting
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 64
	fmt.Printf("one sifting round over %d processors, flip-aware adversary:\n\n", n)

	naive, err := repro.Sift(
		repro.WithN(n),
		repro.WithAlgorithm(repro.NaiveSift),
		repro.WithSchedule(repro.FlipAware),
		repro.WithSeed(7),
	)
	if err != nil {
		log.Fatalf("naive sift failed: %v", err)
	}
	fmt.Printf("  naive sifting:    %2d/%d survive — the adversary kept everyone alive\n",
		naive.Survivors, n)

	pill, err := repro.Sift(
		repro.WithN(n),
		repro.WithAlgorithm(repro.BasicSift),
		repro.WithSchedule(repro.FlipAware),
		repro.WithSeed(7),
	)
	if err != nil {
		log.Fatalf("poison pill failed: %v", err)
	}
	fmt.Printf("  PoisonPill:       %2d/%d survive — the commit state forced the drop (≈√n)\n",
		pill.Survivors, n)

	het, err := repro.Sift(
		repro.WithN(n),
		repro.WithAlgorithm(repro.HetSift),
		repro.WithSchedule(repro.Fair),
		repro.WithSeed(7),
	)
	if err != nil {
		log.Fatalf("heterogeneous sift failed: %v", err)
	}
	fmt.Printf("  heterogeneous:    %2d/%d survive — view-dependent biases reach O(log²n)\n",
		het.Survivors, n)

	fmt.Println("\nClaim 3.1 holds throughout: at least one processor always survives.")
}
