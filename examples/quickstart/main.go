// Quickstart: elect a leader among 64 processors in the asynchronous
// message-passing model and print the paper's two complexity measures —
// time (max communicate calls per processor, Claim 2.1) and total messages.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 64
	res, err := repro.Elect(
		repro.WithN(n),
		repro.WithSeed(42),
		repro.WithSchedule(repro.Fair),
	)
	if err != nil {
		log.Fatalf("election failed: %v", err)
	}

	fmt.Printf("elected processor %d as leader among %d contenders\n", res.Winner, n)
	fmt.Printf("  rounds:   %d (Theorem A.5 predicts O(log* %d) = very few)\n", res.Rounds, n)
	fmt.Printf("  time:     %d communicate calls by the busiest processor\n", res.Time)
	fmt.Printf("  messages: %d total (O(kn) = O(%d))\n", res.Messages, n*n)

	// Every other participant returned LOSE — leader election (test-and-set)
	// semantics.
	losers := 0
	for id, d := range res.Decisions {
		if id != res.Winner && d.String() == "LOSE" {
			losers++
		}
	}
	fmt.Printf("  losers:   %d of %d\n", losers, n-1)

	// Compare with the tournament baseline the paper improves on.
	tourn, err := repro.Elect(
		repro.WithN(n),
		repro.WithSeed(42),
		repro.WithAlgorithm(repro.Tournament),
		repro.WithSchedule(repro.Fair),
	)
	if err != nil {
		log.Fatalf("tournament failed: %v", err)
	}
	fmt.Printf("\ntournament baseline on the same system: time %d vs %d — \"faster than a tournament\"\n",
		tourn.Time, res.Time)

	// The same election on the real-concurrency backend: actual goroutines,
	// actual contention, wall-clock time. Safety (one winner) is identical;
	// the interleaving — and therefore rounds/messages — varies run to run.
	lv, err := repro.Elect(
		repro.WithN(n),
		repro.WithSeed(42),
		repro.WithBackend(repro.Live),
	)
	if err != nil {
		log.Fatalf("live election failed: %v", err)
	}
	fmt.Printf("\nlive backend (real goroutines): winner=%d time=%d communicate calls, %d messages\n",
		lv.Winner, lv.Time, lv.Messages)
}
