// Renaming: assign the names 1..n to n processors in O(log²n) time and
// O(n²) messages (Section 4), even when an adversary skews the contention
// views the processors act on.
//
// Each processor repeatedly picks a uniformly random name it still believes
// is free and competes for it in a per-name leader election; contention
// knowledge spreads through propagate/collect quorum calls. The StaleViews
// schedule starves half the system of updates, maximising collisions — the
// algorithm must absorb them.
//
// Run with:
//
//	go run ./examples/renaming
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/sim"
)

func main() {
	const n = 32
	for _, tc := range []struct {
		label    string
		schedule repro.Schedule
	}{
		{"fair schedule", repro.Fair},
		{"stale-view adversary", repro.StaleViews},
	} {
		res, err := repro.Rename(
			repro.WithN(n),
			repro.WithSchedule(tc.schedule),
			repro.WithSeed(3),
		)
		if err != nil {
			log.Fatalf("renaming under %s failed: %v", tc.label, err)
		}
		fmt.Printf("%s: %d names assigned, time %d (log²n = %d), messages %d (n² = %d)\n",
			tc.label, len(res.Names), res.Time, 25, res.Messages, n*n)

		ids := make([]sim.ProcID, 0, len(res.Names))
		for id := range res.Names {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Print("  assignment:")
		for _, id := range ids[:8] {
			fmt.Printf(" p%d→%d", id, res.Names[id])
		}
		fmt.Println(" …")

		// Strong renaming: the names are a permutation of 1..n.
		used := map[int]bool{}
		for _, u := range res.Names {
			if u < 1 || u > n || used[u] {
				log.Fatalf("name space violated: %v", res.Names)
			}
			used[u] = true
		}
	}
	fmt.Println("\nboth runs produced a perfect permutation of 1..n (Lemma A.6)")
}
