// Faults: leader election at the crash boundary.
//
// The model tolerates up to t = ⌈n/2⌉−1 crash failures (Section 2): any more
// and quorums stop intersecting. This example runs elections while an
// adversary repeatedly crashes the current front-runner — the participant in
// the highest round — up to the boundary, and shows that the guarantees of
// Theorem A.5 survive: at most one winner ever, and every non-faulty
// participant returns. When every would-be winner is killed the election
// reports ErrNoWinner rather than inventing one.
//
// Run with:
//
//	go run ./examples/faults
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 32
	maxFaults := (n+1)/2 - 1 // 15

	for _, faults := range []int{0, maxFaults / 2, maxFaults} {
		elected, headless := 0, 0
		for seed := int64(0); seed < 10; seed++ {
			res, err := repro.Elect(
				repro.WithN(n),
				repro.WithSchedule(repro.Crashing),
				repro.WithFaults(faults),
				repro.WithSeed(seed),
			)
			switch {
			case err == nil:
				elected++
				if res.Winner < 0 {
					log.Fatal("winner reported without a winner")
				}
			case errors.Is(err, repro.ErrNoWinner):
				// Legal: the front-runner crashed before deciding; all
				// survivors returned LOSE.
				headless++
			default:
				log.Fatalf("faults=%d seed=%d: %v", faults, seed, err)
			}
		}
		fmt.Printf("faults=%2d/%d: %2d/10 runs elected a leader, %2d/10 lost every candidate to crashes\n",
			faults, maxFaults, elected, headless)
	}
	fmt.Println("\nno run ever produced two winners or hung a non-faulty participant (Theorem A.5)")
}
