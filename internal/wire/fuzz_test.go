package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/renaming"
	"repro/internal/rt"
)

// seedCorpus returns encoded frames of every message kind (bodies, without
// the length prefix) — the checked-in starting points for the fuzzers,
// complemented by the files under testdata/fuzz.
func seedCorpus() [][]byte {
	msgs := []*Msg{
		{Kind: KindAck, Election: 1, Call: 2, From: 3},
		{Kind: KindCollect, Election: 1, Call: 7, From: 0, Reg: "elect/door"},
		{Kind: KindPropagate, Election: 4, Call: 1, From: 2, Reg: "elect/round",
			Entries: []rt.Entry{{Reg: "elect/round", Owner: 2, Seq: 5, Val: 3}}},
		{Kind: KindPropagate, Election: 1, Call: 1, From: 1, Reg: "pp",
			Entries: []rt.Entry{{Reg: "pp", Owner: 1, Seq: 1,
				Val: core.Status{Stat: core.HighPri, List: []rt.ProcID{0, 1, 129}}}}},
		{Kind: KindView, Election: 2, Call: 9, From: 6, Reg: "rename/contended",
			Entries: []rt.Entry{
				{Reg: "rename/contended", Owner: 0, Seq: 3, Val: renaming.NewNameSet(70).With(65)},
				{Reg: "rename/contended", Owner: 1, Seq: 1, Val: nil},
				{Reg: "rename/contended", Owner: 2, Seq: 2, Val: "str"},
				{Reg: "rename/contended", Owner: 3, Seq: 4, Val: true},
			}},
	}
	var out [][]byte
	for _, m := range msgs {
		frame, err := Encode(m)
		if err != nil {
			panic(err)
		}
		out = append(out, frame[PrefixSize(m.WireSize()):])
	}
	// Batch bodies: the multi-op frames the coalescing hot path produces.
	for _, batch := range [][]*Msg{msgs[:2], msgs} {
		frame, err := EncodeBatch(batch)
		if err != nil {
			panic(err)
		}
		_, n := binary.Uvarint(frame)
		out = append(out, frame[n:])
	}
	return out
}

// FuzzDecode: no frame body, however corrupt, may panic the decoders
// (single-message Decode and the batch-aware DecodeFrames) or decode into
// messages that do not re-encode to the identical bytes — decode∘encode is
// the identity on both decoders' accepted sets, and the two decoders agree
// wherever their domains overlap.
func FuzzDecode(f *testing.F) {
	for _, body := range seedCorpus() {
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindAck)})
	f.Add([]byte{byte(KindBatch), 2, 5, byte(KindAck), 0, 0, 0, 0, 5, byte(KindAck), 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, body []byte) {
		m, mErr := Decode(body)
		ms, msErr := DecodeFrames(nil, body)
		if mErr == nil {
			// Plain bodies: both decoders must accept and agree.
			if msErr != nil {
				t.Fatalf("Decode accepted what DecodeFrames rejected: %v", msErr)
			}
			if len(ms) != 1 || !reflect.DeepEqual(m, ms[0]) {
				t.Fatalf("decoders disagree on a plain body:\n Decode       %+v\n DecodeFrames %+v", m, ms)
			}
			frame, err := Encode(m)
			if err != nil {
				t.Fatalf("decoded message fails to re-encode: %v (%+v)", err, m)
			}
			if got := frame[PrefixSize(len(body)):]; !bytes.Equal(got, body) {
				t.Fatalf("decode∘encode not identity:\n in  %x\n out %x", body, got)
			}
			if m.WireSize() != len(body) {
				t.Fatalf("WireSize %d != accepted body length %d", m.WireSize(), len(body))
			}
			return
		}
		if msErr != nil {
			return // both rejected is fine; panicking is the bug being hunted
		}
		// Batch bodies: re-encoding the sub-messages must reproduce the
		// accepted bytes exactly (EncodeBatch emits the canonical form).
		if len(ms) < 2 {
			t.Fatalf("DecodeFrames accepted a non-batch body Decode rejected (%v) as %d messages", mErr, len(ms))
		}
		frame, err := EncodeBatch(ms)
		if err != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", err)
		}
		if got := frame[PrefixSize(len(body)):]; !bytes.Equal(got, body) {
			t.Fatalf("batch decode∘encode not identity:\n in  %x\n out %x", body, got)
		}
	})
}

// FuzzRoundTripPropagate: structured fuzzing of the encoder — arbitrary
// field values (identifiers, register names, int payload) must round-trip
// exactly through encode/decode.
func FuzzRoundTripPropagate(f *testing.F) {
	f.Add(uint64(1), uint64(1), 0, "elect/door", uint64(1), 1)
	f.Add(uint64(1<<40), uint64(128), 300, "", uint64(0), -(1 << 40))
	f.Add(uint64(0), uint64(0), 0, "sift/12/pp", uint64(1<<63), 63)
	f.Fuzz(func(t *testing.T, election, call uint64, from int, reg string, seq uint64, val int) {
		if from < 0 {
			from = -from
		}
		m := &Msg{Kind: KindPropagate, Election: election, Call: call, From: rt.ProcID(from), Reg: reg,
			Entries: []rt.Entry{{Reg: reg, Owner: rt.ProcID(from), Seq: seq, Val: val}}}
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := Decode(frame[PrefixSize(m.WireSize()):])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.WireSize() != m.WireSize() {
			t.Fatalf("decoded WireSize %d != computed %d", got.WireSize(), m.WireSize())
		}
		got.size = 0 // the decoder's size memo; hand-built messages lack it
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("round trip mismatch:\n sent %+v\n got  %+v", m, got)
		}
	})
}
