// Package wire is the binary codec of the network subsystem: a compact,
// length-prefixed frame format for the quorum protocol's four message kinds
// (propagate, collect, ack, view) and the register values the paper's
// algorithms propagate.
//
// The format is deliberately minimal — encoding/binary uvarints everywhere,
// one tag byte per value — because the paper's message complexity bound
// O(kn) counts *messages*, and the bit complexity of each is dominated by
// the register entries it carries. Every WireSizer in the repository
// (rt.Entry, core.Status, renaming.NameSet, the quorum-layer messages)
// reports the exact size this codec produces, so the sim backend's
// PayloadBytes statistic and the live backend's byte counters measure the
// same wire format that internal/transport actually puts on TCP sockets.
// See docs/WIRE.md for the byte-level layout.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/renaming"
	"repro/internal/rt"
)

// Kind tags a frame's protocol role.
type Kind uint8

// Frame kinds: the quorum protocol's request/reply message forms.
const (
	// KindPropagate pushes register entries to a server, which merges them
	// and answers with KindAck (the paper's "propagate, v").
	KindPropagate Kind = iota + 1
	// KindCollect requests a server's view of one register array; the
	// server answers with KindView (the paper's "collect, v").
	KindCollect
	// KindAck acknowledges a KindPropagate.
	KindAck
	// KindView carries a register-array snapshot back to a collector.
	KindView
	// KindBatch coalesces two or more messages into one frame: the hot
	// path's multi-op form. The body is a count followed by the standard
	// length-prefixed encoding of each sub-message, so a batch is the
	// concatenation of ordinary frames behind one header and senders can
	// assemble it from pre-encoded frames without re-encoding. Batches do
	// not nest, and a single message is always sent as a plain frame (the
	// canonical form the decoder enforces).
	KindBatch
	// KindBusy answers a KindPropagate the server refused to admit: the
	// election's shard is at its live-instance bound, or the server is
	// draining. It is shaped like an ack (header only, no entries) and is
	// an admission-control signal, not part of the quorum protocol — a
	// client that receives one inside its quorum sheds the election and
	// retries later (electd.BusyError).
	KindBusy
)

func (k Kind) String() string {
	switch k {
	case KindPropagate:
		return "propagate"
	case KindCollect:
		return "collect"
	case KindAck:
		return "ack"
	case KindView:
		return "view"
	case KindBatch:
		return "batch"
	case KindBusy:
		return "busy"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value kind tags. A register value is encoded as one tag byte followed by
// its kind-specific body.
const (
	vNil     = 0 // ⊥ (no body)
	vBool    = 1 // 1 byte, 0 or 1
	vInt     = 2 // zigzag uvarint
	vString  = 3 // uvarint length + bytes
	vStatus  = 4 // core.Status: 1 stat byte + uvarint count + count uvarint ids
	vNameSet = 5 // renaming.NameSet: uvarint word count + 8 little-endian bytes per word
)

// MaxFrame bounds a decoded frame body. Frames carry at most one register
// array (n entries of small values); anything near this bound is corrupt.
const MaxFrame = 1 << 24

// MaxID bounds every processor identifier on the wire (senders, entry
// owners, status-list members). Identifiers are array indices in [0, n);
// the bound keeps a hostile uvarint from overflowing the int-typed
// rt.ProcID.
const MaxID = 1<<31 - 1

// Msg is one protocol message: the decoded form of a frame body.
//
// Election multiplexes independent election instances over one shared
// server set — servers keep disjoint register state per election ID. Call
// correlates a reply with the request it answers; the requester chooses it
// and the server echoes it. From identifies the sender (the participant on
// requests, the answering server on replies). Reg names the register array
// and is carried once per message: the entries of a propagate or view all
// belong to it, and Entry.Reg is restored from it on decode.
type Msg struct {
	Kind     Kind
	Election uint64
	Call     uint64
	From     rt.ProcID
	Reg      string
	Entries  []rt.Entry // KindPropagate payload / KindView snapshot

	// size memoizes the encoded body size for decoded messages: the
	// decoder accepts exactly canonical encodings, so the accepted body
	// length IS the wire size (an invariant the fuzzers pin), and the
	// reply routers' byte accounting needn't re-walk the entries. Zero
	// means "not decoded": WireSize computes. Mutating a decoded message
	// invalidates it; no path in the repository does.
	size int
}

// WireSize returns the exact encoded size of the frame body (the length
// prefix adds PrefixSize of it on the wire). For messages produced by the
// decoder it is the accepted body length, answered without re-walking the
// entries.
func (m *Msg) WireSize() int {
	if m.size != 0 {
		return m.size
	}
	n := 1 + // kind
		rt.UvarintSize(m.Election) +
		rt.UvarintSize(m.Call) +
		rt.UvarintSize(uint64(m.From)) +
		rt.UvarintSize(uint64(len(m.Reg))) + len(m.Reg)
	if m.Kind == KindPropagate || m.Kind == KindView {
		n += rt.UvarintSize(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			n += e.WireSize()
		}
	}
	return n
}

// PrefixSize returns the length of the uvarint frame prefix for a body of
// the given size.
func PrefixSize(body int) int { return rt.UvarintSize(uint64(body)) }

// Append encodes m as one frame (uvarint body length + body) onto dst and
// returns the extended slice. It fails on negative identifiers, on entries
// whose Reg differs from m.Reg, and on values outside the codec's domain.
func Append(dst []byte, m *Msg) ([]byte, error) {
	switch m.Kind {
	case KindPropagate, KindCollect, KindAck, KindView, KindBusy:
	default:
		return dst, fmt.Errorf("wire: cannot encode unknown kind %d", m.Kind)
	}
	if m.From < 0 {
		return dst, fmt.Errorf("wire: negative sender id %d", m.From)
	}
	body := m.WireSize()
	if body > MaxFrame {
		return dst, fmt.Errorf("wire: frame body %d exceeds MaxFrame", body)
	}
	dst = binary.AppendUvarint(dst, uint64(body))
	start := len(dst)
	dst = append(dst, byte(m.Kind))
	dst = binary.AppendUvarint(dst, m.Election)
	dst = binary.AppendUvarint(dst, m.Call)
	dst = binary.AppendUvarint(dst, uint64(m.From))
	dst = appendString(dst, m.Reg)
	if m.Kind == KindPropagate || m.Kind == KindView {
		dst = binary.AppendUvarint(dst, uint64(len(m.Entries)))
		for _, e := range m.Entries {
			if e.Reg != m.Reg {
				return dst, fmt.Errorf("wire: entry register %q differs from message register %q", e.Reg, m.Reg)
			}
			if e.Owner < 0 {
				return dst, fmt.Errorf("wire: negative entry owner %d", e.Owner)
			}
			dst = binary.AppendUvarint(dst, uint64(e.Owner))
			dst = binary.AppendUvarint(dst, e.Seq)
			var err error
			if dst, err = appendValue(dst, e.Val); err != nil {
				return dst, err
			}
		}
	}
	if got := len(dst) - start; got != body {
		// A WireSizer lied about its size; catching it here keeps the frame
		// stream parseable and the bit-accounting honest.
		return dst, fmt.Errorf("wire: encoded %d bytes but WireSize reported %d", got, body)
	}
	return dst, nil
}

// Encode returns m as one freshly allocated frame.
func Encode(m *Msg) ([]byte, error) {
	return Append(make([]byte, 0, PrefixSize(m.WireSize())+m.WireSize()), m)
}

// MaxBatch bounds the sub-message count of one batch frame. The coalescing
// senders batch at most one message per concurrent caller, so anything near
// this bound is corrupt.
const MaxBatch = 1 << 16

// AppendBatchFrame wraps count pre-encoded frames — the concatenation of
// count wire.Append outputs, each carrying its own length prefix — into one
// batch frame appended to dst. This is the coalescing senders' fast path:
// sub-frames are encoded once, at enqueue time, and batching adds only the
// header. count must be at least 2 (a single message travels as the plain
// frame it already is — the canonical form DecodeFrames enforces).
func AppendBatchFrame(dst []byte, count int, frames []byte) ([]byte, error) {
	dst, err := AppendBatchHeader(dst, count, len(frames))
	if err != nil {
		return dst, err
	}
	return append(dst, frames...), nil
}

// AppendBatchHeader appends the framing that turns count concatenated
// pre-encoded frames, size bytes in all, into one batch frame: the outer
// length prefix, the batch kind byte and the sub-frame count. The caller
// appends (or streams) the sub-frames themselves right after — the form
// write loops use to coalesce queued frames without copying them through
// an intermediate buffer.
func AppendBatchHeader(dst []byte, count, size int) ([]byte, error) {
	if count < 2 {
		return dst, fmt.Errorf("wire: batch of %d sub-frames (minimum 2; send singles plain)", count)
	}
	if count > MaxBatch {
		return dst, fmt.Errorf("wire: batch of %d sub-frames exceeds MaxBatch", count)
	}
	body := 1 + rt.UvarintSize(uint64(count)) + size
	if body > MaxFrame {
		return dst, fmt.Errorf("wire: batch body %d exceeds MaxFrame", body)
	}
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, byte(KindBatch))
	return binary.AppendUvarint(dst, uint64(count)), nil
}

// BatchableFrame reports whether an encoded frame may ride inside a batch:
// a well-formed plain frame, not itself a batch (batches do not nest).
// Malformed frames are not batchable either — they travel alone and sever
// the connection at the receiver, as corruption should.
func BatchableFrame(frame []byte) bool {
	size, n := binary.Uvarint(frame)
	return n > 0 && size >= 1 && size == uint64(len(frame)-n) && Kind(frame[n]) != KindBatch
}

// EncodeBatch returns msgs as one freshly allocated frame: a plain frame
// for a single message, a batch frame for two or more.
func EncodeBatch(msgs []*Msg) ([]byte, error) {
	switch len(msgs) {
	case 0:
		return nil, fmt.Errorf("wire: empty batch")
	case 1:
		return Encode(msgs[0])
	}
	var frames []byte
	for _, m := range msgs {
		var err error
		if frames, err = Append(frames, m); err != nil {
			return nil, err
		}
	}
	return AppendBatchFrame(nil, len(msgs), frames)
}

// DecodeFrames parses one frame body — plain or batch — and appends the
// decoded messages to dst: exactly one for a plain frame, the sub-messages
// in order for a batch. Like Decode it is canonical: batches of fewer than
// two sub-messages, nested batches, non-minimal sub-frame prefixes and
// trailing bytes are all rejected, so re-encoding the result (Append per
// message, AppendBatchFrame around them) reproduces the accepted bytes.
func DecodeFrames(dst []*Msg, body []byte) ([]*Msg, error) {
	err := ForEachFrame(body, func(sub []byte) error {
		m, err := Decode(sub)
		if err != nil {
			return err
		}
		dst = append(dst, m)
		return nil
	})
	return dst, err
}

// ForEachFrame walks one frame body's message bodies in order — the body
// itself for a plain frame, each sub-frame's body for a batch — calling fn
// on each and stopping at its first error. It is the streaming form of
// DecodeFrames: read loops decode-and-dispatch one message at a time, so a
// pre-decode filter consulted inside fn sees routing state that is current
// up to the previous message of the same batch. Frame boundaries are
// validated here (count bounds, sub-frame prefixes, trailing bytes); the
// message bodies only by whatever decoding fn chooses to do. The bodies
// passed to fn alias the input.
func ForEachFrame(body []byte, fn func(body []byte) error) error {
	if len(body) == 0 {
		return io.ErrUnexpectedEOF
	}
	if Kind(body[0]) != KindBatch {
		return fn(body)
	}
	d := decoder{b: body[1:]}
	count, err := d.uvarint()
	if err != nil {
		return err
	}
	if count < 2 {
		return fmt.Errorf("wire: batch of %d sub-frames (minimum 2; singles travel plain)", count)
	}
	if count > MaxBatch {
		return fmt.Errorf("wire: batch of %d sub-frames exceeds MaxBatch", count)
	}
	for i := uint64(0); i < count; i++ {
		size, err := d.uvarint()
		if err != nil {
			return err
		}
		if size > uint64(len(d.b)) {
			return fmt.Errorf("wire: sub-frame of %d bytes exceeds remaining %d", size, len(d.b))
		}
		sub := d.b[:size]
		d.b = d.b[size:]
		if err := fn(sub); err != nil {
			return err
		}
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after batch", len(d.b))
	}
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendValue encodes one tagged register value.
func appendValue(dst []byte, v rt.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, vNil), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(dst, vBool, b), nil
	case int:
		dst = append(dst, vInt)
		return binary.AppendUvarint(dst, rt.ZigZag(int64(x))), nil
	case string:
		return appendString(append(dst, vString), x), nil
	case core.Status:
		dst = append(dst, vStatus, byte(x.Stat))
		dst = binary.AppendUvarint(dst, uint64(len(x.List)))
		for _, id := range x.List {
			if id < 0 {
				return dst, fmt.Errorf("wire: negative processor id %d in status list", id)
			}
			dst = binary.AppendUvarint(dst, uint64(id))
		}
		return dst, nil
	case renaming.NameSet:
		dst = append(dst, vNameSet)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, w := range x {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("wire: value type %T is outside the codec's domain", v)
	}
}

// decoder consumes one frame body.
type decoder struct {
	b []byte
}

func (d *decoder) uvarint() (uint64, error) {
	if len(d.b) > 0 && d.b[0] < 0x80 {
		// Single-byte values — almost every id, sequence number, count and
		// length on the hot path — skip the generic decoder.
		v := uint64(d.b[0])
		d.b = d.b[1:]
		return v, nil
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated or overlong uvarint")
	}
	if n > 1 && d.b[n-1] == 0 {
		// Reject non-minimal encodings (a zero terminator byte means the
		// value fit in fewer groups): the codec is canonical, so that
		// decode∘encode is the identity and WireSize always equals the
		// accepted body length. Checking the terminator is equivalent to
		// comparing n against UvarintSize(v), without recomputing it.
		return 0, fmt.Errorf("wire: non-canonical uvarint (%d bytes for %d)", n, v)
	}
	d.b = d.b[n:]
	return v, nil
}

// procID decodes one bounded processor identifier.
func (d *decoder) procID() (rt.ProcID, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > MaxID {
		return 0, fmt.Errorf("wire: processor id %d exceeds MaxID", v)
	}
	return rt.ProcID(v), nil
}

func (d *decoder) byte() (byte, error) {
	if len(d.b) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.b[0]
	d.b = d.b[1:]
	return b, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)) {
		return "", fmt.Errorf("wire: string length %d exceeds remaining %d bytes", n, len(d.b))
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *decoder) value() (rt.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case vNil:
		return nil, nil
	case vBool:
		b, err := d.byte()
		if err != nil {
			return nil, err
		}
		if b > 1 {
			return nil, fmt.Errorf("wire: bool byte %d", b)
		}
		return b == 1, nil
	case vInt:
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return int(int64(u>>1) ^ -int64(u&1)), nil
	case vString:
		return d.string()
	case vStatus:
		stat, err := d.byte()
		if err != nil {
			return nil, err
		}
		count, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if count > uint64(len(d.b)) { // every id takes ≥1 byte
			return nil, fmt.Errorf("wire: status list count %d exceeds remaining %d bytes", count, len(d.b))
		}
		st := core.Status{Stat: core.StatKind(stat)}
		if count > 0 {
			st.List = make([]rt.ProcID, count)
			for i := range st.List {
				id, err := d.procID()
				if err != nil {
					return nil, err
				}
				st.List[i] = id
			}
		}
		return st, nil
	case vNameSet:
		words, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if words > uint64(len(d.b))/8 { // divide, never multiply: words*8 could wrap
			return nil, fmt.Errorf("wire: name-set of %d words exceeds remaining %d bytes", words, len(d.b))
		}
		set := make(renaming.NameSet, words)
		for i := range set {
			set[i] = binary.LittleEndian.Uint64(d.b)
			d.b = d.b[8:]
		}
		return set, nil
	default:
		return nil, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}

// Decode parses one frame body (without its length prefix). The returned
// message comes from the message pool: a terminal consumer — one after
// which nothing references the message — may hand it back with PutMsg,
// making the steady-state hot path allocate only the entry payloads;
// consumers that cannot tell simply let the GC have it.
func Decode(body []byte) (*Msg, error) {
	m := GetMsg()
	if err := m.decode(body); err != nil {
		PutMsg(m)
		return nil, err
	}
	return m, nil
}

func (m *Msg) decode(body []byte) error {
	d := decoder{b: body}
	kind, err := d.byte()
	if err != nil {
		return err
	}
	m.Kind = Kind(kind)
	switch m.Kind {
	case KindPropagate, KindCollect, KindAck, KindView, KindBusy:
	case KindBatch:
		// Batches are containers, not messages: they never nest, and
		// DecodeFrames is the entry point that understands them.
		return fmt.Errorf("wire: batch frame in single-message context")
	default:
		return fmt.Errorf("wire: unknown frame kind %d", kind)
	}
	if m.Election, err = d.uvarint(); err != nil {
		return err
	}
	if m.Call, err = d.uvarint(); err != nil {
		return err
	}
	from, err := d.procID()
	if err != nil {
		return err
	}
	m.From = from
	if m.Reg, err = d.string(); err != nil {
		return err
	}
	if m.Kind == KindPropagate || m.Kind == KindView {
		count, err := d.uvarint()
		if err != nil {
			return err
		}
		if count > uint64(len(d.b)) { // every entry takes ≥3 bytes
			return fmt.Errorf("wire: entry count %d exceeds remaining %d bytes", count, len(d.b))
		}
		if count > 0 {
			// Reuse the entry arena a RecycleMsg left behind when it is big
			// enough; elements in [len, cap) are zero by the recycle
			// contract, and the loop below overwrites [0, count) entirely.
			if uint64(cap(m.Entries)) >= count {
				m.Entries = m.Entries[:count]
			} else {
				m.Entries = make([]rt.Entry, count)
			}
			for i := range m.Entries {
				owner, err := d.procID()
				if err != nil {
					return err
				}
				seq, err := d.uvarint()
				if err != nil {
					return err
				}
				val, err := d.value()
				if err != nil {
					return err
				}
				m.Entries[i] = rt.Entry{Reg: m.Reg, Owner: owner, Seq: seq, Val: val}
			}
		}
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after frame body", len(d.b))
	}
	m.size = len(body)
	return nil
}

// FrameReader is the stream a frame is read from — typically a
// *bufio.Reader wrapping a socket.
type FrameReader interface {
	io.ByteReader
	io.Reader
}

// ReadFrame reads one length-prefixed frame body from r into buf, growing
// it only when the capacity does not suffice, and returns the body. Read
// loops pass the same buffer every call for an allocation-free steady
// state: Decode and DecodeFrames copy everything they return, so the
// buffer is reusable as soon as decoding is done. It returns io.EOF
// cleanly when the stream ends on a frame boundary.
func ReadFrame(r FrameReader, buf []byte) ([]byte, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", size)
	}
	if uint64(cap(buf)) < size {
		buf = make([]byte, size)
	} else {
		buf = buf[:size]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// ReadMsg reads and decodes one length-prefixed frame from r. It returns
// io.EOF cleanly when the stream ends on a frame boundary. Hot read loops
// use ReadFrame with a reused buffer instead.
func ReadMsg(r FrameReader) (*Msg, error) {
	body, err := ReadFrame(r, nil)
	if err != nil {
		return nil, err
	}
	return Decode(body)
}

// AppendEntries encodes a register-array tail — the entry count followed
// by the entries — onto dst: exactly the bytes that follow the header of a
// propagate or view body. Servers cache this encoding per register array
// and splice it into reply frames with AppendReplyFrame, so a snapshot is
// walked once per mutation instead of once per reply. The same validation
// as Append applies.
func AppendEntries(dst []byte, reg string, entries []rt.Entry) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		if e.Reg != reg {
			return dst, fmt.Errorf("wire: entry register %q differs from array register %q", e.Reg, reg)
		}
		if e.Owner < 0 {
			return dst, fmt.Errorf("wire: negative entry owner %d", e.Owner)
		}
		dst = binary.AppendUvarint(dst, uint64(e.Owner))
		dst = binary.AppendUvarint(dst, e.Seq)
		var err error
		if dst, err = appendValue(dst, e.Val); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// AppendReplyFrame assembles one reply frame — ack or view — directly from
// header fields and a pre-encoded tail (AppendEntries output for a view,
// nil for an ack), bypassing Msg construction and entry re-encoding: the
// server hot path. The result is byte-identical to Append of the
// equivalent message.
func AppendReplyFrame(dst []byte, kind Kind, election, call uint64, from rt.ProcID, reg string, tail []byte) ([]byte, error) {
	if from < 0 {
		return dst, fmt.Errorf("wire: negative sender id %d", from)
	}
	body := 1 +
		rt.UvarintSize(election) +
		rt.UvarintSize(call) +
		rt.UvarintSize(uint64(from)) +
		rt.UvarintSize(uint64(len(reg))) + len(reg) +
		len(tail)
	if body > MaxFrame {
		return dst, fmt.Errorf("wire: frame body %d exceeds MaxFrame", body)
	}
	dst = binary.AppendUvarint(dst, uint64(body))
	dst = append(dst, byte(kind))
	dst = binary.AppendUvarint(dst, election)
	dst = binary.AppendUvarint(dst, call)
	dst = binary.AppendUvarint(dst, uint64(from))
	dst = appendString(dst, reg)
	return append(dst, tail...), nil
}

// PeekReply extracts the kind and call id from an encoded message body
// without decoding it — what a reply router's pre-decode filter needs to
// decide whether anyone is still waiting. ok is false when the header does
// not parse; canonicality is not checked here (the full decoder validates
// whatever the filter keeps).
func PeekReply(body []byte) (k Kind, call uint64, ok bool) {
	if len(body) == 0 {
		return 0, 0, false
	}
	k = Kind(body[0])
	rest := body[1:]
	_, n := binary.Uvarint(rest) // election
	if n <= 0 {
		return k, 0, false
	}
	call, n = binary.Uvarint(rest[n:])
	if n <= 0 {
		return k, 0, false
	}
	return k, call, true
}

// PeekReplyFrom additionally extracts the replying server's id — what a
// fault-injecting reply filter needs to sample per-link loss on the reply
// direction, and what reply dedup under retransmission keys on. Same
// contract as PeekReply: header parse only, no canonicality check.
func PeekReplyFrom(body []byte) (k Kind, call uint64, from rt.ProcID, ok bool) {
	if len(body) == 0 {
		return 0, 0, 0, false
	}
	k = Kind(body[0])
	rest := body[1:]
	_, n := binary.Uvarint(rest) // election
	if n <= 0 {
		return k, 0, 0, false
	}
	rest = rest[n:]
	call, n = binary.Uvarint(rest)
	if n <= 0 {
		return k, call, 0, false
	}
	f, n := binary.Uvarint(rest[n:])
	if n <= 0 {
		return k, call, 0, false
	}
	return k, call, rt.ProcID(f), true
}

// SortEntries orders entries by owner, the canonical snapshot order shared
// by both backends' stores and the electd servers.
func SortEntries(entries []rt.Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Owner < entries[j].Owner })
}
