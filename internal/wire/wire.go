// Package wire is the binary codec of the network subsystem: a compact,
// length-prefixed frame format for the quorum protocol's four message kinds
// (propagate, collect, ack, view) and the register values the paper's
// algorithms propagate.
//
// The format is deliberately minimal — encoding/binary uvarints everywhere,
// one tag byte per value — because the paper's message complexity bound
// O(kn) counts *messages*, and the bit complexity of each is dominated by
// the register entries it carries. Every WireSizer in the repository
// (rt.Entry, core.Status, renaming.NameSet, the quorum-layer messages)
// reports the exact size this codec produces, so the sim backend's
// PayloadBytes statistic and the live backend's byte counters measure the
// same wire format that internal/transport actually puts on TCP sockets.
// See docs/WIRE.md for the byte-level layout.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/renaming"
	"repro/internal/rt"
)

// Kind tags a frame's protocol role.
type Kind uint8

// Frame kinds: the quorum protocol's request/reply message forms.
const (
	// KindPropagate pushes register entries to a server, which merges them
	// and answers with KindAck (the paper's "propagate, v").
	KindPropagate Kind = iota + 1
	// KindCollect requests a server's view of one register array; the
	// server answers with KindView (the paper's "collect, v").
	KindCollect
	// KindAck acknowledges a KindPropagate.
	KindAck
	// KindView carries a register-array snapshot back to a collector.
	KindView
)

func (k Kind) String() string {
	switch k {
	case KindPropagate:
		return "propagate"
	case KindCollect:
		return "collect"
	case KindAck:
		return "ack"
	case KindView:
		return "view"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value kind tags. A register value is encoded as one tag byte followed by
// its kind-specific body.
const (
	vNil     = 0 // ⊥ (no body)
	vBool    = 1 // 1 byte, 0 or 1
	vInt     = 2 // zigzag uvarint
	vString  = 3 // uvarint length + bytes
	vStatus  = 4 // core.Status: 1 stat byte + uvarint count + count uvarint ids
	vNameSet = 5 // renaming.NameSet: uvarint word count + 8 little-endian bytes per word
)

// MaxFrame bounds a decoded frame body. Frames carry at most one register
// array (n entries of small values); anything near this bound is corrupt.
const MaxFrame = 1 << 24

// MaxID bounds every processor identifier on the wire (senders, entry
// owners, status-list members). Identifiers are array indices in [0, n);
// the bound keeps a hostile uvarint from overflowing the int-typed
// rt.ProcID.
const MaxID = 1<<31 - 1

// Msg is one protocol message: the decoded form of a frame body.
//
// Election multiplexes independent election instances over one shared
// server set — servers keep disjoint register state per election ID. Call
// correlates a reply with the request it answers; the requester chooses it
// and the server echoes it. From identifies the sender (the participant on
// requests, the answering server on replies). Reg names the register array
// and is carried once per message: the entries of a propagate or view all
// belong to it, and Entry.Reg is restored from it on decode.
type Msg struct {
	Kind     Kind
	Election uint64
	Call     uint64
	From     rt.ProcID
	Reg      string
	Entries  []rt.Entry // KindPropagate payload / KindView snapshot
}

// WireSize returns the exact encoded size of the frame body (the length
// prefix adds PrefixSize of it on the wire).
func (m *Msg) WireSize() int {
	n := 1 + // kind
		rt.UvarintSize(m.Election) +
		rt.UvarintSize(m.Call) +
		rt.UvarintSize(uint64(m.From)) +
		rt.UvarintSize(uint64(len(m.Reg))) + len(m.Reg)
	if m.Kind == KindPropagate || m.Kind == KindView {
		n += rt.UvarintSize(uint64(len(m.Entries)))
		for _, e := range m.Entries {
			n += e.WireSize()
		}
	}
	return n
}

// PrefixSize returns the length of the uvarint frame prefix for a body of
// the given size.
func PrefixSize(body int) int { return rt.UvarintSize(uint64(body)) }

// Append encodes m as one frame (uvarint body length + body) onto dst and
// returns the extended slice. It fails on negative identifiers, on entries
// whose Reg differs from m.Reg, and on values outside the codec's domain.
func Append(dst []byte, m *Msg) ([]byte, error) {
	switch m.Kind {
	case KindPropagate, KindCollect, KindAck, KindView:
	default:
		return dst, fmt.Errorf("wire: cannot encode unknown kind %d", m.Kind)
	}
	if m.From < 0 {
		return dst, fmt.Errorf("wire: negative sender id %d", m.From)
	}
	body := m.WireSize()
	if body > MaxFrame {
		return dst, fmt.Errorf("wire: frame body %d exceeds MaxFrame", body)
	}
	dst = binary.AppendUvarint(dst, uint64(body))
	start := len(dst)
	dst = append(dst, byte(m.Kind))
	dst = binary.AppendUvarint(dst, m.Election)
	dst = binary.AppendUvarint(dst, m.Call)
	dst = binary.AppendUvarint(dst, uint64(m.From))
	dst = appendString(dst, m.Reg)
	if m.Kind == KindPropagate || m.Kind == KindView {
		dst = binary.AppendUvarint(dst, uint64(len(m.Entries)))
		for _, e := range m.Entries {
			if e.Reg != m.Reg {
				return dst, fmt.Errorf("wire: entry register %q differs from message register %q", e.Reg, m.Reg)
			}
			if e.Owner < 0 {
				return dst, fmt.Errorf("wire: negative entry owner %d", e.Owner)
			}
			dst = binary.AppendUvarint(dst, uint64(e.Owner))
			dst = binary.AppendUvarint(dst, e.Seq)
			var err error
			if dst, err = appendValue(dst, e.Val); err != nil {
				return dst, err
			}
		}
	}
	if got := len(dst) - start; got != body {
		// A WireSizer lied about its size; catching it here keeps the frame
		// stream parseable and the bit-accounting honest.
		return dst, fmt.Errorf("wire: encoded %d bytes but WireSize reported %d", got, body)
	}
	return dst, nil
}

// Encode returns m as one freshly allocated frame.
func Encode(m *Msg) ([]byte, error) {
	return Append(make([]byte, 0, PrefixSize(m.WireSize())+m.WireSize()), m)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendValue encodes one tagged register value.
func appendValue(dst []byte, v rt.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, vNil), nil
	case bool:
		b := byte(0)
		if x {
			b = 1
		}
		return append(dst, vBool, b), nil
	case int:
		dst = append(dst, vInt)
		return binary.AppendUvarint(dst, rt.ZigZag(int64(x))), nil
	case string:
		return appendString(append(dst, vString), x), nil
	case core.Status:
		dst = append(dst, vStatus, byte(x.Stat))
		dst = binary.AppendUvarint(dst, uint64(len(x.List)))
		for _, id := range x.List {
			if id < 0 {
				return dst, fmt.Errorf("wire: negative processor id %d in status list", id)
			}
			dst = binary.AppendUvarint(dst, uint64(id))
		}
		return dst, nil
	case renaming.NameSet:
		dst = append(dst, vNameSet)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		for _, w := range x {
			dst = binary.LittleEndian.AppendUint64(dst, w)
		}
		return dst, nil
	default:
		return dst, fmt.Errorf("wire: value type %T is outside the codec's domain", v)
	}
}

// decoder consumes one frame body.
type decoder struct {
	b []byte
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated or overlong uvarint")
	}
	if n != rt.UvarintSize(v) {
		// Reject non-minimal encodings: the codec is canonical, so that
		// decode∘encode is the identity and WireSize always equals the
		// accepted body length.
		return 0, fmt.Errorf("wire: non-canonical uvarint (%d bytes for %d)", n, v)
	}
	d.b = d.b[n:]
	return v, nil
}

// procID decodes one bounded processor identifier.
func (d *decoder) procID() (rt.ProcID, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > MaxID {
		return 0, fmt.Errorf("wire: processor id %d exceeds MaxID", v)
	}
	return rt.ProcID(v), nil
}

func (d *decoder) byte() (byte, error) {
	if len(d.b) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.b[0]
	d.b = d.b[1:]
	return b, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)) {
		return "", fmt.Errorf("wire: string length %d exceeds remaining %d bytes", n, len(d.b))
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

func (d *decoder) value() (rt.Value, error) {
	tag, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case vNil:
		return nil, nil
	case vBool:
		b, err := d.byte()
		if err != nil {
			return nil, err
		}
		if b > 1 {
			return nil, fmt.Errorf("wire: bool byte %d", b)
		}
		return b == 1, nil
	case vInt:
		u, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return int(int64(u>>1) ^ -int64(u&1)), nil
	case vString:
		return d.string()
	case vStatus:
		stat, err := d.byte()
		if err != nil {
			return nil, err
		}
		count, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if count > uint64(len(d.b)) { // every id takes ≥1 byte
			return nil, fmt.Errorf("wire: status list count %d exceeds remaining %d bytes", count, len(d.b))
		}
		st := core.Status{Stat: core.StatKind(stat)}
		if count > 0 {
			st.List = make([]rt.ProcID, count)
			for i := range st.List {
				id, err := d.procID()
				if err != nil {
					return nil, err
				}
				st.List[i] = id
			}
		}
		return st, nil
	case vNameSet:
		words, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if words > uint64(len(d.b))/8 { // divide, never multiply: words*8 could wrap
			return nil, fmt.Errorf("wire: name-set of %d words exceeds remaining %d bytes", words, len(d.b))
		}
		set := make(renaming.NameSet, words)
		for i := range set {
			set[i] = binary.LittleEndian.Uint64(d.b)
			d.b = d.b[8:]
		}
		return set, nil
	default:
		return nil, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}

// Decode parses one frame body (without its length prefix).
func Decode(body []byte) (*Msg, error) {
	d := decoder{b: body}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	m := &Msg{Kind: Kind(kind)}
	switch m.Kind {
	case KindPropagate, KindCollect, KindAck, KindView:
	default:
		return nil, fmt.Errorf("wire: unknown frame kind %d", kind)
	}
	if m.Election, err = d.uvarint(); err != nil {
		return nil, err
	}
	if m.Call, err = d.uvarint(); err != nil {
		return nil, err
	}
	from, err := d.procID()
	if err != nil {
		return nil, err
	}
	m.From = from
	if m.Reg, err = d.string(); err != nil {
		return nil, err
	}
	if m.Kind == KindPropagate || m.Kind == KindView {
		count, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if count > uint64(len(d.b)) { // every entry takes ≥3 bytes
			return nil, fmt.Errorf("wire: entry count %d exceeds remaining %d bytes", count, len(d.b))
		}
		if count > 0 {
			m.Entries = make([]rt.Entry, count)
			for i := range m.Entries {
				owner, err := d.procID()
				if err != nil {
					return nil, err
				}
				seq, err := d.uvarint()
				if err != nil {
					return nil, err
				}
				val, err := d.value()
				if err != nil {
					return nil, err
				}
				m.Entries[i] = rt.Entry{Reg: m.Reg, Owner: owner, Seq: seq, Val: val}
			}
		}
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after frame body", len(d.b))
	}
	return m, nil
}

// ReadMsg reads and decodes one length-prefixed frame from r (typically a
// *bufio.Reader wrapping a socket). It returns io.EOF cleanly when the
// stream ends on a frame boundary.
func ReadMsg(r interface {
	io.ByteReader
	io.Reader
}) (*Msg, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if size > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return Decode(body)
}

// SortEntries orders entries by owner, the canonical snapshot order shared
// by both backends' stores and the electd servers.
func SortEntries(entries []rt.Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Owner < entries[j].Owner })
}
