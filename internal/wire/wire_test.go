package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/renaming"
	"repro/internal/rt"
)

// sampleValues covers every value kind the codec encodes, including the
// uvarint boundary cases.
func sampleValues() []rt.Value {
	big := renaming.NewNameSet(130)
	bigSet := big.With(1).With(64).With(65).With(130)
	return []rt.Value{
		nil,
		true,
		false,
		0,
		1,
		-1,
		63,
		64,
		-64,
		-65,
		1 << 30,
		-(1 << 30),
		"",
		"elect/door",
		core.Status{Stat: core.Commit},
		core.Status{Stat: core.LowPri, List: []rt.ProcID{0, 1, 2}},
		core.Status{Stat: core.HighPri, List: []rt.ProcID{127, 128, 300}},
		renaming.NewNameSet(1),
		bigSet,
	}
}

// sampleMsgs builds one message of every kind plus boundary variants.
func sampleMsgs(t *testing.T) []*Msg {
	t.Helper()
	var entries []rt.Entry
	for i, v := range sampleValues() {
		entries = append(entries, rt.Entry{Reg: "r", Owner: rt.ProcID(i * 17), Seq: uint64(i) * 129, Val: v})
	}
	return []*Msg{
		{Kind: KindAck},
		{Kind: KindAck, Election: 1 << 40, Call: 1 << 20, From: 300},
		{Kind: KindCollect, Reg: "elect/sift/3/pp"},
		{Kind: KindCollect, Election: 7, Call: 128, From: 127, Reg: ""},
		{Kind: KindPropagate, Reg: "r", Entries: entries[:1]},
		{Kind: KindPropagate, Election: 9, Call: 3, From: 2, Reg: "r", Entries: entries},
		{Kind: KindView, Reg: "r"},
		{Kind: KindView, Election: 2, Call: 99, From: 64, Reg: "r", Entries: entries},
		{Kind: KindBusy},
		{Kind: KindBusy, Election: 33, Call: 1 << 18, From: 4},
	}
}

// TestRoundTrip: decode(encode(x)) == x for every message kind and every
// value kind.
func TestRoundTrip(t *testing.T) {
	for i, m := range sampleMsgs(t) {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("msg %d: encode: %v", i, err)
		}
		got, err := ReadMsg(bufio.NewReader(bytes.NewReader(frame)))
		if err != nil {
			t.Fatalf("msg %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(got)) {
			t.Fatalf("msg %d: round trip mismatch:\n sent %+v\n got  %+v", i, m, got)
		}
	}
}

// normalize maps nil and empty entry slices together (the wire cannot
// distinguish them, and no caller does either) and drops the decoder's
// size memo, which hand-built messages lack by construction.
func normalize(m *Msg) *Msg {
	out := *m
	if len(out.Entries) == 0 {
		out.Entries = nil
	}
	out.size = 0
	return &out
}

// TestExactSizes: WireSize is the encoded body size, byte for byte, and
// Entry/Status/NameSet WireSize report their exact encoded cost — the
// contract the sim and live backends' bit-complexity accounting relies on.
func TestExactSizes(t *testing.T) {
	for i, m := range sampleMsgs(t) {
		frame, err := Encode(m)
		if err != nil {
			t.Fatalf("msg %d: encode: %v", i, err)
		}
		body := m.WireSize()
		if got := len(frame); got != PrefixSize(body)+body {
			t.Fatalf("msg %d: frame is %d bytes, WireSize %d + prefix %d", i, got, body, PrefixSize(body))
		}
	}
	// Per-entry exactness: encode a view with and without each entry; the
	// size delta must equal Entry.WireSize.
	for i, v := range sampleValues() {
		e := rt.Entry{Reg: "r", Owner: rt.ProcID(i), Seq: uint64(i), Val: v}
		with := &Msg{Kind: KindView, Reg: "r", Entries: []rt.Entry{e}}
		without := &Msg{Kind: KindView, Reg: "r"}
		delta := with.WireSize() - without.WireSize()
		if delta != e.WireSize() {
			t.Fatalf("value %d (%T): entry delta %d != Entry.WireSize %d", i, v, delta, e.WireSize())
		}
		frame, err := Encode(with)
		if err != nil {
			t.Fatalf("value %d (%T): encode: %v", i, v, err)
		}
		if len(frame) != PrefixSize(with.WireSize())+with.WireSize() {
			t.Fatalf("value %d (%T): encoded %d bytes, sized %d", i, v, len(frame), with.WireSize())
		}
	}
}

// TestValueSizeMatchesEncoder: rt.ValueSize (used by Entry.WireSize without
// importing this package) equals the encoder's output for every codable
// value.
func TestValueSizeMatchesEncoder(t *testing.T) {
	for i, v := range sampleValues() {
		enc, err := appendValue(nil, v)
		if err != nil {
			t.Fatalf("value %d (%T): %v", i, v, err)
		}
		if len(enc) != rt.ValueSize(v) {
			t.Fatalf("value %d (%T): encoded %d bytes, ValueSize says %d", i, v, len(enc), rt.ValueSize(v))
		}
	}
}

// TestEncodeRejects: out-of-domain inputs fail loudly instead of producing
// unparseable frames.
func TestEncodeRejects(t *testing.T) {
	cases := []*Msg{
		{Kind: 0},
		{Kind: 99},
		{Kind: KindAck, From: -1},
		{Kind: KindPropagate, Reg: "a", Entries: []rt.Entry{{Reg: "b", Owner: 0, Seq: 1}}},
		{Kind: KindPropagate, Reg: "a", Entries: []rt.Entry{{Reg: "a", Owner: -2, Seq: 1}}},
		{Kind: KindPropagate, Reg: "a", Entries: []rt.Entry{{Reg: "a", Owner: 1, Seq: 1, Val: 3.14}}},
		{Kind: KindView, Reg: "a", Entries: []rt.Entry{{Reg: "a", Owner: 1, Seq: 1, Val: struct{}{}}}},
	}
	for i, m := range cases {
		if _, err := Encode(m); err == nil {
			t.Fatalf("case %d (%+v): encode accepted an out-of-domain message", i, m)
		}
	}
}

// TestDecodeRejectsCorrupt: truncations and tag corruption of valid frames
// error rather than panic or mis-decode silently.
func TestDecodeRejectsCorrupt(t *testing.T) {
	m := &Msg{Kind: KindPropagate, Election: 5, Call: 9, From: 3, Reg: "reg", Entries: []rt.Entry{
		{Reg: "reg", Owner: 1, Seq: 2, Val: core.Status{Stat: core.HighPri, List: []rt.ProcID{1, 2}}},
	}}
	frame, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	body := frame[PrefixSize(m.WireSize()):]
	for cut := 0; cut < len(body); cut++ {
		if _, err := Decode(body[:cut]); err == nil {
			t.Fatalf("decode accepted a frame truncated to %d of %d bytes", cut, len(body))
		}
	}
	if _, err := Decode(append(append([]byte{}, body...), 0)); err == nil {
		t.Fatal("decode accepted a frame with a trailing byte")
	}
}

// TestDecodeRejectsHostileLengths: declared counts engineered to overflow
// size arithmetic must error, not panic or allocate (regression for the
// name-set words*8 wrap).
func TestDecodeRejectsHostileLengths(t *testing.T) {
	// KindView frame claiming one entry whose value is a name-set of 2^61
	// words: words*8 wraps to 0 in naive checks.
	hostile := []byte{
		byte(KindView), 0, 0, 0, // election, call, from
		1, 'r', // reg "r"
		1,    // one entry
		0, 1, // owner 0, seq 1
		vNameSet,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20, // uvarint 1<<61
	}
	if _, err := Decode(hostile); err == nil {
		t.Fatal("decoder accepted a 2^61-word name-set")
	}
}

// TestReadMsgStream: several frames back to back parse cleanly off one
// buffered stream, the TCP read loop's exact code path.
func TestReadMsgStream(t *testing.T) {
	msgs := sampleMsgs(t)
	var buf bytes.Buffer
	for _, m := range msgs {
		frame, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	r := bufio.NewReader(&buf)
	for i, want := range msgs {
		got, err := ReadMsg(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(want), normalize(got)) {
			t.Fatalf("frame %d: mismatch", i)
		}
	}
	if _, err := ReadMsg(r); err == nil {
		t.Fatal("stream should end after the last frame")
	}
}

// TestBatchRoundTrip: EncodeBatch ∘ DecodeFrames is the identity on every
// sub-message, for batches of every size including the single-message plain
// form.
func TestBatchRoundTrip(t *testing.T) {
	msgs := sampleMsgs(t)
	for count := 1; count <= len(msgs); count++ {
		frame, err := EncodeBatch(msgs[:count])
		if err != nil {
			t.Fatalf("count %d: encode: %v", count, err)
		}
		body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
		if err != nil {
			t.Fatalf("count %d: read: %v", count, err)
		}
		got, err := DecodeFrames(nil, body)
		if err != nil {
			t.Fatalf("count %d: decode: %v", count, err)
		}
		if len(got) != count {
			t.Fatalf("count %d: decoded %d messages", count, len(got))
		}
		for i := range got {
			if !reflect.DeepEqual(normalize(msgs[i]), normalize(got[i])) {
				t.Fatalf("count %d: message %d mismatch:\n sent %+v\n got  %+v", count, i, msgs[i], got[i])
			}
		}
	}
}

// TestBatchFromPreEncodedFrames: AppendBatchFrame over concatenated Append
// outputs — the coalescing senders' zero-re-encode path — produces the same
// bytes as EncodeBatch.
func TestBatchFromPreEncodedFrames(t *testing.T) {
	msgs := sampleMsgs(t)[:3]
	var frames []byte
	var err error
	for _, m := range msgs {
		if frames, err = Append(frames, m); err != nil {
			t.Fatal(err)
		}
	}
	fast, err := AppendBatchFrame(nil, len(msgs), frames)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := EncodeBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fast, slow) {
		t.Fatalf("pre-encoded batch differs from EncodeBatch:\n fast %x\n slow %x", fast, slow)
	}
}

// TestBatchRejects: degenerate and hostile batches fail loudly — empty
// batches, singleton batch frames (singles travel plain), nested batches,
// truncated sub-frames and trailing bytes.
func TestBatchRejects(t *testing.T) {
	if _, err := EncodeBatch(nil); err == nil {
		t.Fatal("EncodeBatch accepted an empty batch")
	}
	if _, err := AppendBatchFrame(nil, 1, []byte{1, byte(KindAck)}); err == nil {
		t.Fatal("AppendBatchFrame accepted a singleton batch")
	}
	ack, err := Encode(&Msg{Kind: KindAck})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := AppendBatchFrame(nil, 2, append(append([]byte{}, ack...), ack...))
	if err != nil {
		t.Fatal(err)
	}
	batchBody := batch[1:] // single-byte prefix at this size
	if _, err := Decode(batchBody); err == nil {
		t.Fatal("Decode accepted a batch frame in single-message context")
	}
	cases := map[string][]byte{
		"count 0":           {byte(KindBatch), 0},
		"count 1":           append([]byte{byte(KindBatch), 1}, ack...),
		"truncated sub":     {byte(KindBatch), 2, 5, byte(KindAck)},
		"trailing bytes":    append(append([]byte{}, batchBody...), 0),
		"nested batch":      append(append([]byte{byte(KindBatch), 2}, batch...), ack...),
		"undeclared frames": batchBody[:len(batchBody)-len(ack)],
	}
	for name, body := range cases {
		if _, err := DecodeFrames(nil, body); err == nil {
			t.Fatalf("%s: DecodeFrames accepted a malformed batch %x", name, body)
		}
	}
}

// TestReadFrameReusesBuffer: a large-enough buffer passed to ReadFrame is
// returned with the body in place, no allocation — the read loops' steady
// state.
func TestReadFrameReusesBuffer(t *testing.T) {
	frame, err := Encode(&Msg{Kind: KindCollect, Election: 3, Call: 4, From: 5, Reg: "r"})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 256)
	body, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &buf[:1][0] != &body[:1][0] {
		t.Fatal("ReadFrame reallocated despite sufficient capacity")
	}
	if m, err := Decode(body); err != nil || m.Reg != "r" {
		t.Fatalf("decode from reused buffer: %v %+v", err, m)
	}
}

// TestBufPool: buffers survive a get/put cycle empty, and oversized buffers
// are dropped rather than pinned.
func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned %d live bytes", len(b))
	}
	PutBuf(append(b, 1, 2, 3))
	if b2 := GetBuf(); len(b2) != 0 {
		t.Fatalf("pooled buffer came back with %d live bytes", len(b2))
	}
	PutBuf(make([]byte, maxPooledBuf+1)) // must not panic; silently dropped
}

// TestCompactness: the headline frames stay small — the codec's reason to
// exist. A doorway propagate (the hot message of every election) fits in a
// dozen-odd bytes.
func TestCompactness(t *testing.T) {
	door := &Msg{Kind: KindPropagate, Election: 1, Call: 1, From: 1, Reg: "elect/door",
		Entries: []rt.Entry{{Reg: "elect/door", Owner: 1, Seq: 1, Val: true}}}
	if s := door.WireSize(); s > 24 {
		t.Fatalf("doorway propagate costs %d bytes; the codec has bloated", s)
	}
	ack := &Msg{Kind: KindAck, Election: 1, Call: 1, From: 1}
	if s := ack.WireSize(); s > 8 {
		t.Fatalf("ack costs %d bytes; the codec has bloated", s)
	}
}

func ExampleMsg_WireSize() {
	m := &Msg{Kind: KindAck, Election: 1, Call: 1, From: 2}
	frame, _ := Encode(m)
	fmt.Println(m.WireSize(), len(frame))
	// Output: 5 6
}
