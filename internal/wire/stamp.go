package wire

import "encoding/binary"

// Trace stamping: when a transport runs with the election flight recorder
// enabled, it may follow every outer frame on a stream with a fixed-size
// send-time stamp, letting the receiving end attribute wire transit time
// to the frame it just read. The stamp is transport framing, not payload:
// it never enters a frame body, is excluded from bit-complexity
// accounting like the length prefix, and both ends of a connection must
// agree on whether stamping is on (the transports enable it per-Network,
// so paired endpoints always match). With tracing off, no stamp bytes
// exist and the stream is byte-identical to an unstamped build.

// StampSize is the wire size of one trace stamp: a fixed-width 64-bit
// big-endian nanosecond timestamp (fixed-width so the reader needs no
// varint scan between frames).
const StampSize = 8

// PutStamp writes t into b, which must be at least StampSize bytes.
func PutStamp(b []byte, t int64) {
	binary.BigEndian.PutUint64(b, uint64(t))
}

// GetStamp reads the stamp written by PutStamp.
func GetStamp(b []byte) int64 {
	return int64(binary.BigEndian.Uint64(b))
}
