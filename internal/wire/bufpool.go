package wire

import "sync"

// The frame-buffer pool: encode scratch shared by every layer of the
// network path. A frame buffer's ownership travels with the bytes — the
// electd pool encodes into a buffer it got here, hands it to a transport
// connection's write queue, and the write loop puts it back after the
// socket write — so the pool must be one package-level instance rather
// than per-layer pools that would drain into each other.
var bufPool = sync.Pool{
	New: func() any { return make([]byte, 0, 512) },
}

// maxPooledBuf keeps one-off giants (a snapshot of a huge register array)
// from pinning memory in the pool; anything larger is left to the GC.
const maxPooledBuf = 1 << 20

// GetBuf returns an empty frame buffer with whatever capacity the pool has
// on hand. Append to it; return it with PutBuf once the bytes are dead.
func GetBuf() []byte {
	return bufPool.Get().([]byte)[:0]
}

// PutBuf recycles a frame buffer. The caller must not touch the slice (or
// any alias of its array) afterwards.
func PutBuf(b []byte) {
	if cap(b) > 0 && cap(b) <= maxPooledBuf {
		bufPool.Put(b[:0]) //nolint:staticcheck // slice headers are cheap next to the frames they save
	}
}

// msgPool recycles decoded messages: Decode draws from it, and terminal
// consumers hand messages back with PutMsg.
var msgPool = sync.Pool{New: func() any { return new(Msg) }}

// GetMsg returns a zeroed message from the message pool.
func GetMsg() *Msg {
	return msgPool.Get().(*Msg)
}

// PutMsg recycles a message. The caller must be its terminal consumer:
// nothing may reference the message afterwards. Slices the message pointed
// to (a view's entries, say) stay valid — recycling drops the references,
// it never reuses their arrays. Consumers that own the entries too should
// use RecycleMsg, which keeps the entry array for the next decode.
func PutMsg(m *Msg) {
	*m = Msg{}
	msgPool.Put(m)
}

// RecycleMsg recycles a message AND its entry storage: the Entries array
// rides back into the pool and the next Decode on this message reuses its
// capacity instead of allocating — the arena that takes per-entry
// allocation out of the server's propagate path and the client's discard
// paths. The bar is higher than PutMsg's: the caller must own everything
// the message references — nothing may retain m.Entries or any sub-slice
// of it. A consumer that hands entries onward (Collect's views keep their
// reply's entries alive) must use PutMsg, which drops the array.
func RecycleMsg(m *Msg) {
	// Clear the whole capacity, not just the live window: a shorter decode
	// shrinks len below an earlier one, and entries parked in [len, cap)
	// would otherwise pin their rt.Values for the arena's lifetime.
	entries := m.Entries[:cap(m.Entries)]
	clear(entries)
	*m = Msg{}
	m.Entries = entries[:0]
	msgPool.Put(m)
}
