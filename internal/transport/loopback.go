package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Loopback is the in-process Network: connections are paired frame queues
// pumped by their own goroutines, so delivery is asynchronous and reorders
// across connections exactly like sockets. Every message still round-trips
// through the wire codec — encode on Send, decode on delivery — so loopback
// runs exercise the exact byte format TCP puts on the network, minus the
// kernel. Use it for deterministic-environment tests and as the conformance
// reference for new Network implementations.
type Loopback struct {
	// Trace, when non-nil, records transport-phase spans (enqueue depth,
	// wire transit via in-frame stamping, decode) on every connection
	// this network creates. Set it before any Listen or Dial. Nil leaves
	// connections untraced and the queued frames byte-identical.
	Trace *trace.Recorder

	mu        sync.Mutex
	next      int
	listeners map[string]*loopListener
}

// NewLoopback creates an empty in-process network.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*loopListener)}
}

// Listen implements Network.
func (lo *Loopback) Listen(h Handler) (Listener, error) {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	addr := fmt.Sprintf("loop:%d", lo.next)
	lo.next++
	l := &loopListener{net: lo, addr: addr, handler: h}
	lo.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (lo *Loopback) Dial(addr string, h Handler) (Conn, error) {
	lo.mu.Lock()
	l := lo.listeners[addr]
	lo.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: no loopback listener at %q", addr)
	}
	return l.accept(h)
}

// loopListener is the accept side of the loopback network.
type loopListener struct {
	net     *Loopback
	addr    string
	handler Handler

	mu      sync.Mutex
	conns   []*loopConn
	crashed bool
	closed  bool
}

func (l *loopListener) Addr() string { return l.addr }

// accept builds a connection pair: the client half is returned to the
// dialer, the server half dispatches to the listener's handler.
func (l *loopListener) accept(h Handler) (Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.crashed {
		return nil, fmt.Errorf("transport: loopback listener %q is down", l.addr)
	}
	client := newLoopConn(h)
	client.rec = l.net.Trace
	server := newLoopConn(func(c Conn, m *wire.Msg) {
		// A crashed node's inbound messages are lost, never handled.
		l.mu.Lock()
		dead := l.crashed || l.closed
		l.mu.Unlock()
		if !dead {
			l.handler(c, m)
		}
	})
	server.rec = l.net.Trace
	client.peer, server.peer = server, client
	go client.pump()
	go server.pump()
	l.conns = append(l.conns, server)
	return client, nil
}

// Crash implements Listener: drop every connection, refuse new ones.
func (l *loopListener) Crash() {
	l.mu.Lock()
	l.crashed = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Recover implements Recoverer: the listener stays registered in the
// network across a Crash, so recovery is just accepting again. Severed
// connections stay severed — clients redial.
func (l *loopListener) Recover() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("transport: loopback listener %q is closed, not crashed", l.addr)
	}
	l.crashed = false
	return nil
}

// Close implements Listener.
func (l *loopListener) Close() error {
	l.mu.Lock()
	l.closed = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	return nil
}

// loopQueueDepth is the per-connection frame queue: deep enough that a
// quorum broadcast never blocks the sender in practice, shallow enough to
// model backpressure under sustained overload, matching the TCP write
// queue.
const loopQueueDepth = 256

// loopConn is one half of a loopback connection: frames enqueued by the
// peer's Send are decoded and dispatched to this half's handler by pump.
type loopConn struct {
	handler   Handler
	filter    atomic.Value    // FrameFilter, installed via SetFilter
	rec       *trace.Recorder // set at accept; nil = untraced, no stamps
	peer      *loopConn
	q         chan []byte
	done      chan struct{}
	closeOnce sync.Once
}

func newLoopConn(h Handler) *loopConn {
	return &loopConn{handler: h, q: make(chan []byte, loopQueueDepth), done: make(chan struct{})}
}

// SetFilter implements FilteredConn.
func (c *loopConn) SetFilter(f FrameFilter) { c.filter.Store(f) }

// loadFilter returns the installed FrameFilter, nil when none.
func (c *loopConn) loadFilter() FrameFilter {
	if f, ok := c.filter.Load().(FrameFilter); ok {
		return f
	}
	return nil
}

// Send implements Conn: encode the frame into a pooled buffer and enqueue
// it at the peer.
func (c *loopConn) Send(m *wire.Msg) error {
	frame, err := wire.Append(wire.GetBuf(), m)
	if err != nil {
		wire.PutBuf(frame)
		return err
	}
	return c.SendEncoded(frame)
}

// SendEncoded implements Conn, taking ownership of frame.
func (c *loopConn) SendEncoded(frame []byte) error {
	p := c.peer
	rawLen := len(frame) // stats count the frame, never the trace stamp
	if c.rec != nil {
		// Traced connections suffix every queued frame with its enqueue
		// stamp — the peer's pump strips it and records queue transit as
		// the wire span. Both halves share the network's recorder, so
		// stamping is always symmetric.
		c.rec.Event(0, 0, trace.PEnqueue, int64(len(p.q)))
		var b [wire.StampSize]byte
		wire.PutStamp(b[:], trace.Now())
		frame = append(frame, b[:]...)
	}
	select {
	case <-c.done:
		wire.PutBuf(frame)
		return ErrClosed
	case <-p.done:
		wire.PutBuf(frame)
		return ErrClosed
	case p.q <- frame:
		countOut(rawLen)
		return nil
	}
}

// pump is the read loop: each wakeup drains every frame already queued and
// dispatches their messages as one group — batch frames message by message,
// consecutive frames back to back — with the replies issued during the
// dispatch coalesced into one frame, exactly the behavior the TCP path
// gets from write-loop coalescing plus batch decode. Frame buffers are
// recycled as they are decoded.
func (c *loopConn) pump() {
	frames := make([][]byte, 0, 16)
	bodies := make([][]byte, 0, 16)
	for {
		select {
		case <-c.done:
			return
		case frame := <-c.q:
			frames = append(frames[:0], frame)
		drain:
			for len(frames) < maxCoalesce {
				select {
				case frame = <-c.q:
					frames = append(frames, frame)
				default:
					break drain
				}
			}
			bodies = bodies[:0]
			var err error
			for _, f := range frames {
				if c.rec != nil && len(f) >= wire.StampSize {
					// Strip the enqueue stamp the traced sender
					// suffixed; queue transit is the wire span.
					sent := wire.GetStamp(f[len(f)-wire.StampSize:])
					f = f[:len(f)-wire.StampSize]
					c.rec.Record(0, 0, trace.PWire, sent, trace.Now()-sent, int64(len(f)))
				}
				var body []byte
				if body, err = frameBody(f); err != nil {
					break
				}
				countIn(len(body))
				bodies = append(bodies, body)
			}
			var decT0 int64
			if c.rec != nil {
				decT0 = trace.Now()
			}
			if err == nil {
				err = dispatchGroup(c, c.handler, c.loadFilter(), bodies...)
			}
			if c.rec != nil {
				c.rec.Record(0, 0, trace.PReadDecode, decT0, trace.Now()-decT0, int64(len(bodies)))
			}
			for _, f := range frames {
				wire.PutBuf(f)
			}
			if err != nil {
				// A corrupt frame on a real socket kills the connection;
				// mirror that.
				c.Close()
				return
			}
		}
	}
}

// Close implements Conn. Closing either half severs both, like a socket.
// Each half's done channel is closed under its own Once, never recursively
// through the peer's Close (which would re-enter this half's Once and
// deadlock).
func (c *loopConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	if p := c.peer; p != nil {
		p.closeOnce.Do(func() { close(p.done) })
	}
	return nil
}

// frameBody strips a frame's length prefix, validating it against the
// actual body — the loopback queues carry whole frames, so a mismatch is a
// framing bug, not a short read.
func frameBody(frame []byte) ([]byte, error) {
	size, n := binary.Uvarint(frame)
	if n <= 0 || size != uint64(len(frame)-n) {
		return nil, fmt.Errorf("transport: malformed frame prefix (%d bytes declared, %d present)", size, len(frame)-n)
	}
	return frame[n:], nil
}
