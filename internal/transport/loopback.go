package transport

import (
	"fmt"
	"sync"

	"repro/internal/wire"
)

// Loopback is the in-process Network: connections are paired frame queues
// pumped by their own goroutines, so delivery is asynchronous and reorders
// across connections exactly like sockets. Every message still round-trips
// through the wire codec — encode on Send, decode on delivery — so loopback
// runs exercise the exact byte format TCP puts on the network, minus the
// kernel. Use it for deterministic-environment tests and as the conformance
// reference for new Network implementations.
type Loopback struct {
	mu        sync.Mutex
	next      int
	listeners map[string]*loopListener
}

// NewLoopback creates an empty in-process network.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*loopListener)}
}

// Listen implements Network.
func (lo *Loopback) Listen(h Handler) (Listener, error) {
	lo.mu.Lock()
	defer lo.mu.Unlock()
	addr := fmt.Sprintf("loop:%d", lo.next)
	lo.next++
	l := &loopListener{net: lo, addr: addr, handler: h}
	lo.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (lo *Loopback) Dial(addr string, h Handler) (Conn, error) {
	lo.mu.Lock()
	l := lo.listeners[addr]
	lo.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: no loopback listener at %q", addr)
	}
	return l.accept(h)
}

// loopListener is the accept side of the loopback network.
type loopListener struct {
	net     *Loopback
	addr    string
	handler Handler

	mu      sync.Mutex
	conns   []*loopConn
	crashed bool
	closed  bool
}

func (l *loopListener) Addr() string { return l.addr }

// accept builds a connection pair: the client half is returned to the
// dialer, the server half dispatches to the listener's handler.
func (l *loopListener) accept(h Handler) (Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.crashed {
		return nil, fmt.Errorf("transport: loopback listener %q is down", l.addr)
	}
	client := newLoopConn(h)
	server := newLoopConn(func(c Conn, m *wire.Msg) {
		// A crashed node's inbound messages are lost, never handled.
		l.mu.Lock()
		dead := l.crashed || l.closed
		l.mu.Unlock()
		if !dead {
			l.handler(c, m)
		}
	})
	client.peer, server.peer = server, client
	go client.pump()
	go server.pump()
	l.conns = append(l.conns, server)
	return client, nil
}

// Crash implements Listener: drop every connection, refuse new ones.
func (l *loopListener) Crash() {
	l.mu.Lock()
	l.crashed = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close implements Listener.
func (l *loopListener) Close() error {
	l.mu.Lock()
	l.closed = true
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	return nil
}

// loopQueueDepth is the per-connection frame queue: deep enough that a
// quorum broadcast never blocks the sender in practice, shallow enough to
// model backpressure under sustained overload, matching the TCP write
// queue.
const loopQueueDepth = 256

// loopConn is one half of a loopback connection: frames enqueued by the
// peer's Send are decoded and dispatched to this half's handler by pump.
type loopConn struct {
	handler   Handler
	peer      *loopConn
	q         chan []byte
	done      chan struct{}
	closeOnce sync.Once
}

func newLoopConn(h Handler) *loopConn {
	return &loopConn{handler: h, q: make(chan []byte, loopQueueDepth), done: make(chan struct{})}
}

// Send implements Conn: encode the frame and enqueue it at the peer.
func (c *loopConn) Send(m *wire.Msg) error {
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	p := c.peer
	select {
	case <-c.done:
		return ErrClosed
	case <-p.done:
		return ErrClosed
	case p.q <- frame:
		return nil
	}
}

// pump is the read loop: decode queued frames and hand them to the handler.
func (c *loopConn) pump() {
	for {
		select {
		case <-c.done:
			return
		case frame := <-c.q:
			m, err := decodeFrame(frame)
			if err != nil {
				// A corrupt frame on a real socket kills the connection;
				// mirror that.
				c.Close()
				return
			}
			c.handler(c, m)
		}
	}
}

// Close implements Conn. Closing either half severs both, like a socket.
// Each half's done channel is closed under its own Once, never recursively
// through the peer's Close (which would re-enter this half's Once and
// deadlock).
func (c *loopConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	if p := c.peer; p != nil {
		p.closeOnce.Do(func() { close(p.done) })
	}
	return nil
}

// decodeFrame strips the length prefix and decodes the body.
func decodeFrame(frame []byte) (*wire.Msg, error) {
	r := frameReader{b: frame}
	return wire.ReadMsg(&r)
}

// frameReader adapts a byte slice to wire.ReadMsg's reader contract.
type frameReader struct{ b []byte }

func (r *frameReader) ReadByte() (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("transport: truncated frame")
	}
	b := r.b[0]
	r.b = r.b[1:]
	return b, nil
}

func (r *frameReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("transport: truncated frame")
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}
