//go:build linux && amd64

package transport

// The stdlib syscall table for linux/amd64 was frozen before sendmmsg
// (kernel 3.0) landed, so its number is pinned here; recvmmsg made the
// freeze and comes from the package. x86-64 syscall numbers are ABI — they
// never change.
const sysSENDMMSG = 307
