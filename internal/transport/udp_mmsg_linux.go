//go:build linux && (amd64 || arm64)

package transport

import (
	"net/netip"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// Batched datagram syscalls: sendmmsg/recvmmsg move a whole packet run per
// kernel crossing, which is where the UDP transport's syscall saving comes
// from — one drain of the write queue is one sendmmsg, one read wakeup
// pulls up to udpRecvBatch datagrams. The stdlib syscall package has the
// syscall numbers but not the mmsghdr plumbing (that lives in x/sys, which
// this repo does not depend on), so the little that is needed is laid out
// here for the 64-bit Linux ports and everything else takes the portable
// path (udp_mmsg_portable.go).

// mmsghdr mirrors the kernel's struct mmsghdr on 64-bit Linux: a msghdr
// plus the per-packet byte count the kernel writes back on receive.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// linuxIO is the mmsg-backed packetIO of one endpoint: the raw fd hook and
// the syscall scratch (headers, iovecs, sockaddr storage), reused across
// calls so the steady state allocates nothing. fellBack flips on the first
// ENOSYS/EOPNOTSUPP — kernels without the mmsg calls — after which the
// portable loops serve.
type linuxIO struct {
	rc syscall.RawConn

	rhdrs  [udpRecvBatch]mmsghdr
	riovs  [udpRecvBatch]syscall.Iovec
	rnames [udpRecvBatch]syscall.RawSockaddrAny

	shdrs  []mmsghdr
	siovs  []syscall.Iovec
	snames []syscall.RawSockaddrAny

	fellBack atomic.Bool
}

func newPacketIO(e *udpEndpoint) (packetIO, error) {
	rc, err := e.pc.SyscallConn()
	if err != nil {
		return nil, err
	}
	return &linuxIO{rc: rc}, nil
}

// sendPackets ships the run with as few sendmmsg calls as the kernel
// accepts. A per-datagram error (ECONNREFUSED from a dead peer, EMSGSIZE,
// ...) is that datagram's loss — skip it and keep going; only a closed
// socket is fatal to the endpoint.
func (lio *linuxIO) sendPackets(e *udpEndpoint, pkts []pkt) error {
	if len(pkts) == 0 {
		return nil
	}
	if lio.fellBack.Load() {
		return sendPacketsGeneric(e, pkts)
	}
	if cap(lio.shdrs) < len(pkts) {
		lio.shdrs = make([]mmsghdr, len(pkts))
		lio.siovs = make([]syscall.Iovec, len(pkts))
		lio.snames = make([]syscall.RawSockaddrAny, len(pkts))
	}
	hdrs := lio.shdrs[:len(pkts)]
	for i := range pkts {
		lio.siovs[i].Base = &pkts[i].buf[0]
		lio.siovs[i].Len = uint64(len(pkts[i].buf))
		h := &hdrs[i]
		*h = mmsghdr{}
		h.hdr.Iov = &lio.siovs[i]
		h.hdr.Iovlen = 1
		if pkts[i].to.IsValid() {
			h.hdr.Name = (*byte)(unsafe.Pointer(&lio.snames[i]))
			h.hdr.Namelen = putRawSockaddr(&lio.snames[i], pkts[i].to)
		}
	}
	sent := 0
	for sent < len(pkts) {
		var n uintptr
		var errno syscall.Errno
		werr := lio.rc.Write(func(fd uintptr) bool {
			for {
				n, _, errno = syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&hdrs[sent])), uintptr(len(pkts)-sent), 0, 0, 0)
				if errno == syscall.EINTR {
					continue
				}
				return errno != syscall.EAGAIN
			}
		})
		if werr != nil {
			return werr // socket closed under the write loop
		}
		switch {
		case errno == 0 && n > 0:
			sent += int(n)
		case errno == syscall.ENOSYS || errno == syscall.EOPNOTSUPP:
			lio.fellBack.Store(true)
			return sendPacketsGeneric(e, pkts[sent:])
		default:
			sent++ // this datagram is loss; move on
		}
	}
	runtime.KeepAlive(pkts)
	return nil
}

// recvPackets blocks until at least one datagram arrives (riding the
// runtime poller through RawConn.Read), then drains up to udpRecvBatch in
// one recvmmsg. Transient socket errors surface to the read loop, which
// treats them as loss.
func (lio *linuxIO) recvPackets(e *udpEndpoint, bufs [][]byte, lens []int, srcs []netip.AddrPort) (int, error) {
	if lio.fellBack.Load() {
		return recvPacketsGeneric(e, bufs, lens, srcs)
	}
	k := len(bufs)
	if k > udpRecvBatch {
		k = udpRecvBatch
	}
	for i := 0; i < k; i++ {
		lio.riovs[i].Base = &bufs[i][0]
		lio.riovs[i].Len = uint64(len(bufs[i]))
		h := &lio.rhdrs[i]
		*h = mmsghdr{}
		h.hdr.Iov = &lio.riovs[i]
		h.hdr.Iovlen = 1
		h.hdr.Name = (*byte)(unsafe.Pointer(&lio.rnames[i]))
		h.hdr.Namelen = uint32(unsafe.Sizeof(lio.rnames[i]))
	}
	var n uintptr
	var errno syscall.Errno
	rerr := lio.rc.Read(func(fd uintptr) bool {
		for {
			n, _, errno = syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
				uintptr(unsafe.Pointer(&lio.rhdrs[0])), uintptr(k), 0, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			return errno != syscall.EAGAIN
		}
	})
	if rerr != nil {
		return 0, rerr // socket closed
	}
	if errno != 0 {
		if errno == syscall.ENOSYS || errno == syscall.EOPNOTSUPP {
			lio.fellBack.Store(true)
			return recvPacketsGeneric(e, bufs, lens, srcs)
		}
		return 0, errno // transient (ICMP unreachable, ...): loss
	}
	for i := 0; i < int(n); i++ {
		lens[i] = int(lio.rhdrs[i].n)
		if e.connected {
			srcs[i] = netip.AddrPort{}
		} else {
			srcs[i] = rawToAddrPort(&lio.rnames[i])
		}
	}
	runtime.KeepAlive(bufs)
	return int(n), nil
}

// putRawSockaddr encodes one destination into sockaddr storage for a
// msghdr, returning the kernel-facing length. Ports travel in network byte
// order inside the raw struct.
func putRawSockaddr(rsa *syscall.RawSockaddrAny, ap netip.AddrPort) uint32 {
	port := ap.Port()
	if a := ap.Addr(); a.Is4() || a.Is4In6() {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		sa.Addr = a.As4()
		return syscall.SizeofSockaddrInet4
	}
	sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(port>>8), byte(port)
	sa.Addr = ap.Addr().As16()
	return syscall.SizeofSockaddrInet6
}

// rawToAddrPort decodes a received datagram's source address.
func rawToAddrPort(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}
