package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/wire"
)

// UDP is the datagram-backed Network: one UDP socket per endpoint, each
// wire frame (plain or batch) riding as one datagram payload. The quorum
// protocol is a natural datagram workload — requests are small, idempotent
// register reads and writes — so the transport keeps datagram semantics
// honestly: no ordering, no delivery guarantee, a corrupt or truncated
// datagram is silently dropped (loss, the model's one link failure), and a
// severed "connection" is just a closed socket. Reliability belongs one
// layer up: the electd client pool retransmits quorum calls and dedups the
// duplicate replies by default on this transport (see electd.NewPool),
// which keeps the reliability machinery strictly below the quorum
// semantics the paper's proofs use.
//
// The write path packs runs of small batchable frames headed for the same
// peer into one batch-frame datagram, bounded by MaxDatagram — the
// datagram analogue of the TCP write loop's coalescing — and ships the
// resulting packets with one sendmmsg call per drain on Linux; the read
// path pulls up to udpRecvBatch datagrams per recvmmsg. Non-Linux builds
// fall back to portable ReadFrom/WriteTo loops (see udp_mmsg_portable.go).
type UDP struct {
	// Host is the bind address for Listen, without a port. Default
	// "127.0.0.1" — loopback datagrams: real sockets, kernel buffers and
	// genuine loss under overrun, no external reachability.
	Host string
	// NoCoalesce disables the write loops' frame packing: every frame is
	// its own datagram. It exists for the benchmarks' unbatched baseline;
	// production paths leave it off.
	NoCoalesce bool
	// Trace, when non-nil, records transport-phase spans on every endpoint
	// this network creates and turns on wire stamping: each datagram ends
	// with a send-time stamp so the receiver records wire transit
	// (trace.PWire). Stamping changes the datagram format, so both
	// endpoints must come from the same traced Network — which they do for
	// in-process clusters, the only place tracing is wired.
	Trace *trace.Recorder
	// MaxDatagram bounds the byte size of one packed datagram; 0 means
	// udpDefaultPack, a conservative single-MTU budget. A lone frame
	// larger than the bound still travels as its own datagram (loopback
	// and jumbo paths carry it); only the merging is bounded.
	MaxDatagram int
}

// NewUDP returns the loopback-UDP network.
func NewUDP() *UDP { return &UDP{Host: "127.0.0.1"} }

// Listen implements Network on an ephemeral port.
func (u *UDP) Listen(h Handler) (Listener, error) {
	host := u.Host
	if host == "" {
		host = "127.0.0.1"
	}
	return listenUDP(net.JoinHostPort(host, "0"), h, u.NoCoalesce, u.Trace, u.MaxDatagram)
}

// Dial implements Network: a connected UDP socket. There is no handshake,
// so dialing succeeds whether or not a server is listening — an unreachable
// server surfaces as message loss, exactly the model's failure mode; only
// address resolution errors fail the dial.
func (u *UDP) Dial(addr string, h Handler) (Conn, error) {
	return dialUDP(addr, h, u.NoCoalesce, u.Trace, u.MaxDatagram)
}

const (
	// udpQueueDepth bounds an endpoint's outbound packet queue; a full
	// queue backpressures Send, mirroring socket buffers (and
	// tcpQueueDepth).
	udpQueueDepth = 256
	// udpRecvBatch is how many datagrams one recvmmsg wakeup may pull.
	udpRecvBatch = 8
	// udpMaxDatagram is the receive-slot size and the largest frame the
	// transport will put on the wire: the UDP payload ceiling rounded to a
	// power of two. A frame beyond it cannot cross this transport and is
	// dropped at Send — loss, reported to the caller.
	udpMaxDatagram = 64 << 10
	// udpDefaultPack is the default packing bound for merged datagrams: a
	// conservative Ethernet-MTU budget, so a packed datagram never
	// fragments on a real network path.
	udpDefaultPack = 1400
	// udpSockBuf is the socket buffer depth requested per endpoint. Quorum
	// bursts are n small datagrams wide per participant, all arriving at
	// once; the kernel grants min(this, rmem_max).
	udpSockBuf = 4 << 20
)

// errFrameTooLarge reports a frame that exceeds the datagram ceiling; the
// caller treats it as message loss, like any dead link.
var errFrameTooLarge = errors.New("transport: frame exceeds the UDP datagram ceiling")

// udpSlab backs one endpoint's receive slots (udpRecvBatch datagram-sized
// buffers carved from one allocation). Slabs are recycled through a pool:
// benchmark and campaign workloads build clusters — dozens of endpoints —
// per election, and re-zeroing half a megabyte per endpoint would dominate
// setup.
var udpSlabPool = sync.Pool{
	New: func() any {
		b := make([]byte, udpRecvBatch*udpMaxDatagram)
		return &b
	},
}

// pkt is one datagram in a batched send or receive: the payload and the
// peer. An invalid (zero) addr means the endpoint's socket is connected
// and the kernel routes.
type pkt struct {
	buf []byte
	to  netip.AddrPort
}

// udpEndpoint is one UDP socket with its write and read loops — the shared
// machinery under both a dialed client conn and a server listener. Sends
// enqueue encoded frames; the write loop drains the queue, packs runs of
// small same-destination frames into batch datagrams, and hands the packet
// run to the platform sender (sendmmsg on Linux). The read loop pulls
// datagram batches (recvmmsg on Linux) and hands each frame body to
// dispatch.
type udpEndpoint struct {
	pc         *net.UDPConn
	io         packetIO
	rec        *trace.Recorder
	noCoalesce bool
	pack       int
	connected  bool
	// dispatch consumes one inbound frame body (length prefix already
	// stripped and validated); src is the datagram's source address. It
	// runs on the read loop.
	dispatch func(src netip.AddrPort, body []byte)
	onClose  func()

	out       chan pkt
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

func newUDPEndpoint(pc *net.UDPConn, connected bool, noCoalesce bool, rec *trace.Recorder, pack int) (*udpEndpoint, error) {
	if pack <= 0 {
		pack = udpDefaultPack
	}
	// Deep socket buffers: a quorum broadcast is a burst of n datagrams per
	// participant, and the stock ~200KiB rcvbuf overruns under n=32 bursts —
	// every overrun is real loss that costs a full retransmit tick to
	// recover. Best-effort: the kernel clamps to its rmem_max/wmem_max.
	pc.SetReadBuffer(udpSockBuf)  //nolint:errcheck
	pc.SetWriteBuffer(udpSockBuf) //nolint:errcheck
	e := &udpEndpoint{
		pc:         pc,
		rec:        rec,
		noCoalesce: noCoalesce,
		pack:       pack,
		connected:  connected,
		out:        make(chan pkt, udpQueueDepth),
		done:       make(chan struct{}),
	}
	io, err := newPacketIO(e)
	if err != nil {
		return nil, err
	}
	e.io = io
	return e, nil
}

func (e *udpEndpoint) start() {
	e.wg.Add(2)
	go e.writeLoop()
	go e.readLoop()
}

// send enqueues one encoded frame for the peer (zero to on a connected
// socket), taking ownership of the buffer.
func (e *udpEndpoint) send(frame []byte, to netip.AddrPort) error {
	limit := udpMaxDatagram
	if e.rec != nil {
		limit -= wire.StampSize
	}
	if len(frame) > limit {
		wire.PutBuf(frame)
		return errFrameTooLarge
	}
	if e.rec != nil {
		e.rec.Event(0, 0, trace.PEnqueue, int64(len(e.out)))
	}
	select {
	case <-e.done:
		wire.PutBuf(frame)
		return ErrClosed
	case e.out <- pkt{buf: frame, to: to}:
		return nil
	}
}

func (e *udpEndpoint) close() {
	e.closeOnce.Do(func() {
		close(e.done)
		e.pc.Close()
		if e.onClose != nil {
			e.onClose()
		}
	})
}

// writeLoop drains the outbound queue onto the socket: each wakeup picks up
// every frame already queued (the queue accumulates exactly while the
// previous syscall is in flight, so the busier the socket, the bigger the
// batches), packs them into datagrams, and ships the whole run with as few
// syscalls as the platform allows.
func (e *udpEndpoint) writeLoop() {
	defer e.wg.Done()
	frames := make([]pkt, 0, 64)
	pkts := make([]pkt, 0, 64)
	for {
		select {
		case <-e.done:
			return
		case p := <-e.out:
			frames = append(frames[:0], p)
		drain:
			for len(frames) < maxCoalesce {
				select {
				case p = <-e.out:
					frames = append(frames, p)
				default:
					break drain
				}
			}
			var drainT0 int64
			if e.rec != nil {
				drainT0 = trace.Now()
			}
			n := len(frames)
			pkts = packDatagrams(pkts[:0], frames, e.pack, e.noCoalesce, e.rec != nil)
			err := e.io.sendPackets(e, pkts)
			for i := range pkts {
				wire.PutBuf(pkts[i].buf)
				pkts[i] = pkt{}
			}
			for i := range frames {
				frames[i] = pkt{}
			}
			if err != nil {
				e.close()
				return
			}
			if e.rec != nil {
				e.rec.Record(0, 0, trace.PWriteDrain, drainT0, trace.Now()-drainT0, int64(n))
			}
		}
	}
}

// packDatagrams turns a drained run of encoded frames into the datagrams to
// send: every maximal run of batchable frames headed for the same peer (two
// or more, fitting the pack bound together) merges into one batch-frame
// datagram — the datagram analogue of coalesceFrames — and everything else
// passes through as its own datagram. Merged sources are recycled
// immediately; every returned packet buffer is owned by the caller. With
// stamp set, each datagram gets its send-time trace stamp appended.
func packDatagrams(dst []pkt, frames []pkt, pack int, noCoalesce bool, stamp bool) []pkt {
	for i := 0; i < len(frames); {
		j, size := i, 0
		if !noCoalesce {
			for j < len(frames) && frames[j].to == frames[i].to &&
				size+len(frames[j].buf) <= pack && wire.BatchableFrame(frames[j].buf) {
				size += len(frames[j].buf)
				j++
			}
		}
		if j-i >= 2 {
			merged, err := wire.AppendBatchHeader(wire.GetBuf(), j-i, size)
			if err != nil {
				// Unreachable under the pack bound; fall through frame by
				// frame rather than dropping the run.
				wire.PutBuf(merged)
				j = i
			} else {
				hdr := len(merged)
				for k := i; k < j; k++ {
					merged = append(merged, frames[k].buf...)
					wire.PutBuf(frames[k].buf)
				}
				countBatchOut(j-i, hdr+size)
				dst = append(dst, pkt{buf: appendStamp(merged, stamp), to: frames[i].to})
				i = j
				continue
			}
		}
		// A lone batchable frame, or an unbatchable one: its own datagram.
		countOut(len(frames[i].buf))
		dst = append(dst, pkt{buf: appendStamp(frames[i].buf, stamp), to: frames[i].to})
		i++
	}
	return dst
}

// appendStamp suffixes one outgoing datagram with its send-time trace
// stamp; a no-op when stamping is off.
func appendStamp(buf []byte, stamp bool) []byte {
	if !stamp {
		return buf
	}
	var b [wire.StampSize]byte
	wire.PutStamp(b[:], trace.Now())
	return append(buf, b[:]...)
}

// readLoop pulls datagram batches off the socket and dispatches each frame
// body. Datagrams are independent, so a corrupt or truncated one is
// dropped alone — loss — rather than severing the endpoint; only a closed
// socket ends the loop. Transient socket errors (an ICMP port-unreachable
// surfacing as ECONNREFUSED on a connected socket, say) are likewise loss:
// the endpoint survives them, which is what lets a client ride out a
// server crash and reach the recovered server on the same socket.
func (e *udpEndpoint) readLoop() {
	defer e.wg.Done()
	slab := udpSlabPool.Get().(*[]byte)
	defer udpSlabPool.Put(slab)
	bufs := make([][]byte, udpRecvBatch)
	for i := range bufs {
		bufs[i] = (*slab)[i*udpMaxDatagram : (i+1)*udpMaxDatagram]
	}
	lens := make([]int, udpRecvBatch)
	srcs := make([]netip.AddrPort, udpRecvBatch)
	for {
		n, err := e.io.recvPackets(e, bufs, lens, srcs)
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				e.close()
				return
			}
			continue // transient: datagram-level loss
		}
		for i := 0; i < n; i++ {
			b := bufs[i][:lens[i]]
			if e.rec != nil {
				if len(b) < wire.StampSize {
					continue // truncated: loss
				}
				sent := wire.GetStamp(b[len(b)-wire.StampSize:])
				b = b[:len(b)-wire.StampSize]
				e.rec.Record(0, 0, trace.PWire, sent, trace.Now()-sent, int64(len(b)))
			}
			// One length-prefixed frame per datagram: the prefix is
			// redundant with the datagram length, which is exactly what
			// makes it a truncation check.
			size, un := binary.Uvarint(b)
			if un <= 0 || int(size) != len(b)-un {
				continue // corrupt or truncated: loss
			}
			body := b[un:]
			countIn(len(body))
			var decT0 int64
			if e.rec != nil {
				decT0 = trace.Now()
			}
			e.dispatch(srcs[i], body)
			if e.rec != nil {
				e.rec.Record(0, 0, trace.PReadDecode, decT0, trace.Now()-decT0, int64(len(body)))
			}
		}
	}
}

// sendPacketsGeneric is the portable packet sender: one WriteTo (or Write,
// on a connected socket) per datagram. Per-datagram errors are loss; only
// a closed socket is fatal.
func sendPacketsGeneric(e *udpEndpoint, pkts []pkt) error {
	for _, p := range pkts {
		var err error
		if p.to.IsValid() {
			_, err = e.pc.WriteToUDPAddrPort(p.buf, p.to)
		} else {
			_, err = e.pc.Write(p.buf)
		}
		if err != nil && errors.Is(err, net.ErrClosed) {
			return err
		}
	}
	return nil
}

// recvPacketsGeneric is the portable packet receiver: one blocking
// ReadFrom per call.
func recvPacketsGeneric(e *udpEndpoint, bufs [][]byte, lens []int, srcs []netip.AddrPort) (int, error) {
	n, addr, err := e.pc.ReadFromUDPAddrPort(bufs[0])
	if err != nil {
		return 0, err
	}
	lens[0], srcs[0] = n, addr
	return 1, nil
}

// udpConn is the dialed (client) side: Conn over one connected socket.
type udpConn struct {
	ep      *udpEndpoint
	handler Handler
	filter  atomic.Value // FrameFilter, installed via SetFilter
}

func dialUDP(addr string, h Handler, noCoalesce bool, rec *trace.Recorder, pack int) (Conn, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	ep, err := newUDPEndpoint(pc, true, noCoalesce, rec, pack)
	if err != nil {
		pc.Close()
		return nil, err
	}
	c := &udpConn{ep: ep, handler: h}
	ep.dispatch = c.dispatchBody
	ep.start()
	return c, nil
}

// SetFilter implements FilteredConn.
func (c *udpConn) SetFilter(f FrameFilter) { c.filter.Store(f) }

func (c *udpConn) loadFilter() FrameFilter {
	if f, ok := c.filter.Load().(FrameFilter); ok {
		return f
	}
	return nil
}

func (c *udpConn) dispatchBody(_ netip.AddrPort, body []byte) {
	// A decode error is one bad datagram, not a broken stream: drop it.
	dispatchGroup(c, c.handler, c.loadFilter(), body) //nolint:errcheck
}

// Send implements Conn.
func (c *udpConn) Send(m *wire.Msg) error {
	frame, err := wire.Append(wire.GetBuf(), m)
	if err != nil {
		wire.PutBuf(frame)
		return err
	}
	return c.SendEncoded(frame)
}

// SendEncoded implements Conn, taking ownership of frame.
func (c *udpConn) SendEncoded(frame []byte) error {
	return c.ep.send(frame, netip.AddrPort{})
}

// Close implements Conn.
func (c *udpConn) Close() error {
	c.ep.close()
	return nil
}

// UDPListener is the server-side UDP endpoint: one socket shared by every
// peer, with a lightweight per-peer Conn materialized per source address so
// handlers reply over "the connection the request arrived on" exactly as
// they do on TCP — for a datagram socket that connection is the listener's
// socket plus the peer's address.
type UDPListener struct {
	handler    Handler
	rec        *trace.Recorder
	noCoalesce bool
	pack       int
	addr       string // resolved listen address, fixed at listen time; Recover rebinds it
	crashed    atomic.Bool

	ep atomic.Pointer[udpEndpoint] // current socket; nil while crashed

	mu      sync.Mutex
	closed  bool
	peers   map[netip.AddrPort]*udpPeerConn
	readErr error         // why the read loop died, nil for Close/Crash; guarded by mu
	done    chan struct{} // closed when the current read loop exits; swapped by Recover
}

// ListenUDP binds addr (host:port; port 0 for ephemeral) and serves inbound
// frames to h, with write-side frame packing on.
func ListenUDP(addr string, h Handler) (*UDPListener, error) {
	return listenUDP(addr, h, false, nil, 0)
}

func listenUDP(addr string, h Handler, noCoalesce bool, rec *trace.Recorder, pack int) (*UDPListener, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	l := &UDPListener{
		handler:    h,
		rec:        rec,
		noCoalesce: noCoalesce,
		pack:       pack,
		addr:       pc.LocalAddr().String(),
		peers:      make(map[netip.AddrPort]*udpPeerConn),
		done:       make(chan struct{}),
	}
	if err := l.arm(pc, l.done); err != nil {
		pc.Close()
		return nil, err
	}
	return l, nil
}

// arm wraps a bound socket in an endpoint and starts its loops; done is
// closed when the endpoint's read loop exits.
func (l *UDPListener) arm(pc *net.UDPConn, done chan struct{}) error {
	ep, err := newUDPEndpoint(pc, false, l.noCoalesce, l.rec, l.pack)
	if err != nil {
		return err
	}
	ep.dispatch = l.dispatchBody
	ep.onClose = func() { close(done) }
	l.ep.Store(ep)
	ep.start()
	return nil
}

// Addr implements Listener. Fixed at listen time (resolved port for
// ephemeral binds), so it stays dialable across Crash/Recover cycles.
func (l *UDPListener) Addr() string { return l.addr }

// Done is closed when the serve loop has exited — after Close or Crash. A
// daemon selects on it; re-read after any Recover, which arms a fresh
// channel.
func (l *UDPListener) Done() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.done
}

// Err reports why the serve loop exited: nil for a deliberate Close or
// Crash. Meaningful once Done is closed.
func (l *UDPListener) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readErr
}

// dispatchBody routes one inbound frame body to the handler via the
// source's peer conn, so replies travel back to the right address (and the
// replies of one inbound batch coalesce into one outbound datagram).
func (l *UDPListener) dispatchBody(src netip.AddrPort, body []byte) {
	if l.crashed.Load() {
		return // a crashed node loses inbound messages silently
	}
	p := l.peer(src)
	dispatchGroup(p, l.handler, nil, body) //nolint:errcheck // one bad datagram is loss, not severance
}

// peer returns the reply conn for one source address, creating it on first
// contact. Peers carry no per-connection state beyond the address, so the
// map is only a reuse cache; Crash clears it.
func (l *UDPListener) peer(src netip.AddrPort) *udpPeerConn {
	l.mu.Lock()
	p := l.peers[src]
	if p == nil {
		p = &udpPeerConn{l: l, to: src}
		l.peers[src] = p
	}
	l.mu.Unlock()
	return p
}

// Crash implements Listener: drop the socket, forget the peers, lose
// anything inbound or queued.
func (l *UDPListener) Crash() {
	l.crashed.Store(true)
	ep := l.ep.Swap(nil)
	l.mu.Lock()
	l.peers = make(map[netip.AddrPort]*udpPeerConn)
	l.mu.Unlock()
	if ep != nil {
		ep.close()
		ep.wg.Wait()
	}
}

// Recover implements Recoverer: rebind the original address and start
// fresh loops. Clients that kept their sockets reach the server again
// immediately; redialing (electd's Pool.Redial) works too. Fails if the
// port was taken meanwhile or the listener was Closed rather than Crashed.
func (l *UDPListener) Recover() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return net.ErrClosed
	}
	l.mu.Unlock()
	laddr, err := net.ResolveUDPAddr("udp", l.addr)
	if err != nil {
		return err
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return err
	}
	done := make(chan struct{})
	l.mu.Lock()
	if l.closed { // Close raced the rebind
		l.mu.Unlock()
		pc.Close()
		return net.ErrClosed
	}
	l.done = done
	l.readErr = nil
	l.mu.Unlock()
	if err := l.arm(pc, done); err != nil {
		pc.Close()
		return err
	}
	l.crashed.Store(false)
	return nil
}

// Close implements Listener: stop serving, drop the socket, wait for the
// loops to drain.
func (l *UDPListener) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	ep := l.ep.Swap(nil)
	if ep != nil {
		ep.close()
		ep.wg.Wait()
	}
	return nil
}

// udpPeerConn is the Conn a server handler replies through: the listener's
// socket aimed at one peer address. Closing it severs nothing — peers have
// no connection state to sever — it just drops the reuse-cache entry.
type udpPeerConn struct {
	l  *UDPListener
	to netip.AddrPort
}

// Send implements Conn.
func (p *udpPeerConn) Send(m *wire.Msg) error {
	frame, err := wire.Append(wire.GetBuf(), m)
	if err != nil {
		wire.PutBuf(frame)
		return err
	}
	return p.SendEncoded(frame)
}

// SendEncoded implements Conn, taking ownership of frame. Replies after a
// crash (or mid-Recover) are loss, like sends on any dead link.
func (p *udpPeerConn) SendEncoded(frame []byte) error {
	ep := p.l.ep.Load()
	if ep == nil {
		wire.PutBuf(frame)
		return ErrClosed
	}
	return ep.send(frame, p.to)
}

// Close implements Conn.
func (p *udpPeerConn) Close() error {
	p.l.mu.Lock()
	delete(p.l.peers, p.to)
	p.l.mu.Unlock()
	return nil
}

// packetIO is the platform seam for batched datagram syscalls: Linux moves
// whole packet runs per syscall via sendmmsg/recvmmsg, everything else
// loops over the portable net.UDPConn calls. recvPackets fills bufs (and
// lens/srcs in parallel) and reports how many datagrams arrived; it blocks
// until at least one does or the socket dies.
type packetIO interface {
	sendPackets(e *udpEndpoint, pkts []pkt) error
	recvPackets(e *udpEndpoint, bufs [][]byte, lens []int, srcs []netip.AddrPort) (int, error)
}
