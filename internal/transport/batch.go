package transport

import (
	"encoding/binary"
	"io"
	"sync"

	"repro/internal/trace"
	"repro/internal/wire"
)

// maxCoalesce bounds one write-loop drain: how many queued frames a single
// wakeup may pick up and coalesce. It caps the latency any one frame can
// accumulate behind its runmates and keeps a drain from starving the flush.
const maxCoalesce = 256

// maxRunBytes bounds the byte size of one coalesced batch, comfortably
// under wire.MaxFrame: a run that would exceed it is split across batches.
const maxRunBytes = 1 << 20

// coalesceFrames writes a drained run of encoded frames onto w, wrapping
// every maximal run of batchable frames (two or more, up to maxRunBytes)
// into one batch frame — the frame-level analogue of the byte-level
// coalescing bufio already gives the write loop. Frames that are already
// batches (no nesting) or malformed pass through untouched, in order; the
// per-connection FIFO is preserved either way. Every frame buffer is
// recycled. The caller flushes w afterwards. With stamp set, every outer
// frame is followed by its send-time trace stamp (see wire.PutStamp);
// the receiving read loop must expect it.
func coalesceFrames(w io.Writer, frames [][]byte, stamp bool) error {
	var hdr []byte
	for i := 0; i < len(frames); {
		j, size := i, 0
		for j < len(frames) && size+len(frames[j]) <= maxRunBytes && wire.BatchableFrame(frames[j]) {
			size += len(frames[j])
			j++
		}
		if j-i >= 2 {
			var err error
			if hdr, err = wire.AppendBatchHeader(hdr[:0], j-i, size); err != nil {
				return err // unreachable under the run caps; defensive
			}
			if _, err := w.Write(hdr); err != nil {
				return err
			}
			countBatchOut(j-i, len(hdr)+size)
			for ; i < j; i++ {
				_, err := w.Write(frames[i])
				wire.PutBuf(frames[i])
				frames[i] = nil
				if err != nil {
					return err
				}
			}
			if err := writeStamp(w, stamp); err != nil {
				return err
			}
			continue
		}
		// A lone batchable frame, or an unbatchable one: as-is.
		countOut(len(frames[i]))
		_, err := w.Write(frames[i])
		wire.PutBuf(frames[i])
		frames[i] = nil
		i++
		if err != nil {
			return err
		}
		if err := writeStamp(w, stamp); err != nil {
			return err
		}
	}
	return nil
}

// writePlain writes a drained run of encoded frames onto w as-is — the
// NoCoalesce write path: per-frame framing untouched, byte-level merging
// left to the buffered writer. Every frame buffer is recycled. With stamp
// set, every frame is followed by its send-time trace stamp.
func writePlain(w io.Writer, frames [][]byte, stamp bool) error {
	for i, f := range frames {
		countOut(len(f))
		_, err := w.Write(f)
		wire.PutBuf(f)
		frames[i] = nil
		if err != nil {
			return err
		}
		if err := writeStamp(w, stamp); err != nil {
			return err
		}
	}
	return nil
}

// writeStamp follows one just-written outer frame with its send-time
// trace stamp; a no-op when stamping is off.
func writeStamp(w io.Writer, stamp bool) error {
	if !stamp {
		return nil
	}
	var b [wire.StampSize]byte
	wire.PutStamp(b[:], trace.Now())
	_, err := w.Write(b[:])
	return err
}

// dispatchGroup streams the messages of a group of frame bodies to h in
// order: each message is filtered (keep may veto its decode — stragglers
// beyond a quorum die here, and because dispatch is streaming, the filter
// sees routing state current up to the previous message), decoded, and
// handed to h before the next one is touched. For anything beyond a single
// plain frame, the Conn the handler sees is a replyCoalescer: every reply
// h sends while the group is dispatched accumulates into one outbound
// batch frame, flushed when the last message returns. That keeps the
// request/reply symmetry of the coalesced hot path — a batched quorum
// broadcast comes back as a batched quorum of replies — without the server
// layer knowing batches exist. The first corrupt body aborts the dispatch
// (already-dispatched messages stand, as on any mid-stream severance).
func dispatchGroup(c Conn, h Handler, keep FrameFilter, bodies ...[]byte) error {
	if len(bodies) == 1 && len(bodies[0]) > 0 && wire.Kind(bodies[0][0]) != wire.KindBatch {
		if keep != nil && !keep(bodies[0]) {
			return nil
		}
		m, err := wire.Decode(bodies[0])
		if err != nil {
			return err
		}
		h(c, m)
		return nil
	}
	rc := replyCoalescer{conn: c}
	var err error
	for _, body := range bodies {
		if err = wire.ForEachFrame(body, func(sub []byte) error {
			if keep != nil && !keep(sub) {
				return nil
			}
			m, err := wire.Decode(sub)
			if err != nil {
				return err
			}
			h(&rc, m)
			return nil
		}); err != nil {
			break
		}
	}
	rc.flush()
	return err
}

// replyCoalescer is the Conn a handler replies through while one inbound
// batch is dispatched: Sends append pre-encoded sub-frames to one buffer,
// and flush forwards them as a single frame — plain for one reply, batch
// for several. After the flush, sends fall through to the underlying
// connection (for the rare handler that replies asynchronously).
type replyCoalescer struct {
	conn Conn

	mu      sync.Mutex
	buf     []byte // concatenated length-prefixed frames, from wire.GetBuf
	count   int
	flushed bool
}

// Send implements Conn: encode now (the caller may reuse m immediately),
// deliver at flush. Encoding errors surface here; delivery errors are
// message loss at flush, as on any closed connection.
func (rc *replyCoalescer) Send(m *wire.Msg) error {
	rc.mu.Lock()
	if rc.flushed {
		rc.mu.Unlock()
		return rc.conn.Send(m)
	}
	if rc.buf == nil {
		rc.buf = wire.GetBuf()
	}
	buf, err := wire.Append(rc.buf, m)
	if err == nil {
		rc.buf = buf
		rc.count++
	}
	rc.mu.Unlock()
	return err
}

// SendEncoded implements Conn.
func (rc *replyCoalescer) SendEncoded(frame []byte) error {
	rc.mu.Lock()
	if rc.flushed {
		rc.mu.Unlock()
		return rc.conn.SendEncoded(frame)
	}
	if rc.buf == nil {
		rc.buf = wire.GetBuf()
	}
	rc.buf = append(rc.buf, frame...)
	rc.count++
	rc.mu.Unlock()
	wire.PutBuf(frame)
	return nil
}

// Close implements Conn, severing the underlying connection (a handler
// closes on protocol violations; pending replies to the violator can drop).
func (rc *replyCoalescer) Close() error { return rc.conn.Close() }

// flush forwards the accumulated replies as one frame and switches the
// coalescer to pass-through.
func (rc *replyCoalescer) flush() {
	rc.mu.Lock()
	buf, count := rc.buf, rc.count
	rc.buf, rc.flushed = nil, true
	rc.mu.Unlock()
	switch {
	case count == 0:
		if buf != nil {
			wire.PutBuf(buf)
		}
	case count == 1:
		// A single length-prefixed frame is already the wire form.
		rc.conn.SendEncoded(buf) //nolint:errcheck // loss, per the model
	default:
		batch := wire.GetBuf()
		batch, err := wire.AppendBatchFrame(batch, count, buf)
		if err != nil {
			// A reply batch too big for one frame (pathological at
			// MaxFrame scale): fall back to sending the accumulated
			// frames one by one — dropping them all would turn the
			// model's transient loss into a deterministic quorum hang.
			wire.PutBuf(batch)
			for rest := buf; len(rest) > 0; {
				size, n := binary.Uvarint(rest)
				end := n + int(size)
				one := append(wire.GetBuf(), rest[:end]...)
				rc.conn.SendEncoded(one) //nolint:errcheck
				rest = rest[end:]
			}
			wire.PutBuf(buf)
			return
		}
		wire.PutBuf(buf)
		rc.conn.SendEncoded(batch) //nolint:errcheck
	}
}
