package transport

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/wire"
)

// TCP is the socket-backed Network: one net.Listener per server, one
// pooled connection per (client, server) pair, length-prefixed wire frames
// on the stream. Listeners bind to Host (default loopback) on an ephemeral
// port, so a test or an in-process cluster can run dozens of nodes without
// address coordination; cmd/electd binds explicit addresses via ListenTCP.
type TCP struct {
	// Host is the bind address for Listen, without a port. Default
	// "127.0.0.1" — loopback TCP: real sockets, kernel scheduling and
	// backpressure, no external reachability.
	Host string
	// NoCoalesce disables the write loops' frame batching on every
	// connection this network creates: each frame is written and flushed
	// on its own, the pre-batching wire behavior. It exists for the
	// benchmarks' unbatched baseline; production paths leave it off.
	NoCoalesce bool
	// Trace, when non-nil, records transport-phase spans (enqueue depth,
	// write-loop drains, read-loop decodes) on every connection this
	// network creates, and turns on wire stamping: each outer frame is
	// followed by a send-time stamp so the receiving end records wire
	// transit (trace.PWire). Stamping changes the stream format, so both
	// endpoints must come from the same traced Network — which they do
	// for in-process clusters, the only place tracing is wired. Nil
	// leaves connections untraced and the stream byte-identical.
	Trace *trace.Recorder
}

// NewTCP returns the loopback-TCP network.
func NewTCP() *TCP { return &TCP{Host: "127.0.0.1"} }

// Listen implements Network on an ephemeral port.
func (t *TCP) Listen(h Handler) (Listener, error) {
	host := t.Host
	if host == "" {
		host = "127.0.0.1"
	}
	return listenTCP(net.JoinHostPort(host, "0"), h, t.NoCoalesce, t.Trace)
}

// Dial implements Network.
func (t *TCP) Dial(addr string, h Handler) (Conn, error) {
	return dialTCP(addr, h, t.NoCoalesce, t.Trace)
}

// TCPListener is a server-side TCP endpoint: an accept loop spawning one
// read loop per inbound connection.
type TCPListener struct {
	handler    Handler
	rec        *trace.Recorder // fixed at listen time; nil = untraced
	noCoalesce bool            // fixed at listen time
	addr       string          // resolved listen address, fixed at listen time; Recover rebinds it
	crashed    atomic.Bool

	mu        sync.Mutex
	ln        net.Listener // swapped by Recover
	closed    bool
	conns     map[*tcpConn]struct{}
	wg        sync.WaitGroup
	acceptErr error // fatal accept failure; guarded by mu, set before done closes

	done chan struct{} // closed when the current accept loop exits; swapped by Recover
}

// ListenTCP binds addr (host:port; port 0 for ephemeral) and serves inbound
// frames to h, with write-side frame coalescing on.
func ListenTCP(addr string, h Handler) (*TCPListener, error) {
	return listenTCP(addr, h, false, nil)
}

func listenTCP(addr string, h Handler, noCoalesce bool, rec *trace.Recorder) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &TCPListener{ln: ln, handler: h, noCoalesce: noCoalesce, rec: rec, addr: ln.Addr().String(), conns: make(map[*tcpConn]struct{}), done: make(chan struct{})}
	l.wg.Add(1)
	go l.accept(ln, l.done)
	return l, nil
}

// Addr implements Listener. The address is fixed at listen time (even for
// ephemeral-port binds it is the resolved port), so it stays dialable
// across Crash/Recover cycles.
func (l *TCPListener) Addr() string { return l.addr }

// Done is closed when the accept loop has exited — after Close or Crash,
// or on a fatal accept error. A daemon selects on it so a listener that
// dies under it becomes an exit, not a silent unreachable server. Recover
// starts a fresh accept loop with a fresh Done channel; re-read it after
// any recovery.
func (l *TCPListener) Done() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.done
}

// Err reports why the accept loop exited: nil for a deliberate Close or
// Crash, the accept error otherwise. Meaningful once Done is closed.
func (l *TCPListener) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acceptErr
}

func (l *TCPListener) accept(ln net.Listener, done chan struct{}) {
	defer l.wg.Done()
	defer close(done)
	for {
		c, err := ln.Accept()
		if err != nil {
			l.mu.Lock()
			if !l.closed && !l.crashed.Load() {
				l.acceptErr = err
			}
			l.mu.Unlock()
			return // listener closed, crashed, or failed
		}
		if l.crashed.Load() {
			c.Close()
			continue
		}
		conn := newTCPConn(c, func(tc Conn, m *wire.Msg) {
			// A crashed node loses inbound messages silently: connections
			// may linger a moment after Crash, but nothing reaches the
			// handler.
			if !l.crashed.Load() {
				l.handler(tc, m)
			}
		})
		conn.noCoalesce = l.noCoalesce
		conn.rec = l.rec
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		conn.onClose = func() {
			l.mu.Lock()
			delete(l.conns, conn)
			l.mu.Unlock()
		}
		l.mu.Unlock()
		conn.start()
	}
}

// Crash implements Listener: refuse new connections, sever established
// ones, drop anything already inbound.
func (l *TCPListener) Crash() {
	l.crashed.Store(true)
	l.mu.Lock()
	ln := l.ln
	conns := make([]*tcpConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Recover implements Recoverer: rebind the original address and start a
// fresh accept loop. Connections severed by the Crash stay severed —
// clients redial (see electd's Pool.Redial). Fails if the port was taken
// meanwhile or the listener was Closed rather than Crashed.
func (l *TCPListener) Recover() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return net.ErrClosed
	}
	l.mu.Unlock()
	// The old accept loop is on its way out (Crash closed its listener);
	// join it so two loops never run at once.
	l.wg.Wait()
	ln, err := net.Listen("tcp", l.addr)
	if err != nil {
		return err
	}
	done := make(chan struct{})
	l.mu.Lock()
	if l.closed { // Close raced the rebind
		l.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	l.ln = ln
	l.done = done
	l.acceptErr = nil
	l.wg.Add(1)
	l.mu.Unlock()
	l.crashed.Store(false)
	go l.accept(ln, done)
	return nil
}

// Close implements Listener: stop accepting, close every connection, wait
// for the accept loop to drain.
func (l *TCPListener) Close() error {
	l.mu.Lock()
	l.closed = true
	ln := l.ln
	conns := make([]*tcpConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	err := ln.Close()
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return err
}

// DialTCP connects to a TCP listener, with write-side frame coalescing
// on; h receives the frames the server sends back on this connection.
func DialTCP(addr string, h Handler) (Conn, error) {
	return dialTCP(addr, h, false, nil)
}

func dialTCP(addr string, h Handler, noCoalesce bool, rec *trace.Recorder) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn := newTCPConn(c, h)
	conn.noCoalesce = noCoalesce
	conn.rec = rec
	conn.start()
	return conn, nil
}

// tcpQueueDepth bounds a connection's outbound frame queue; a full queue
// backpressures Send, mirroring socket buffers.
const tcpQueueDepth = 256

// tcpBufSize sizes the per-connection bufio reader and writer. Large
// enough that a full quorum broadcast's worth of coalesced frames — or a
// register-array snapshot at benchmark sizes — crosses the socket in one
// syscall.
const tcpBufSize = 32 << 10

// Stream buffers are recycled across connections: a cluster of n nodes
// opens O(n) connections per side, and at tcpBufSize per direction the
// bufio buffers would otherwise dominate a short-lived cluster's
// allocations (and their zeroing its CPU).
var (
	readerPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, tcpBufSize) }}
	writerPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, tcpBufSize) }}
)

// tcpConn frames wire messages onto one TCP stream: Send enqueues encoded
// frames to a dedicated write loop (so one slow peer never stalls a
// broadcast mid-loop), and a read loop decodes inbound frames into the
// handler. Frame buffers come from the wire package's pool on Send and
// return to it after the socket write, and the read loop reuses one body
// buffer, so the steady-state stream allocates only what the decoded
// messages themselves need.
type tcpConn struct {
	c          net.Conn
	handler    Handler
	filter     atomic.Value    // FrameFilter, installed via SetFilter
	noCoalesce bool            // set before start; read-only afterwards
	rec        *trace.Recorder // set before start; nil = untraced, no stamps
	out        chan []byte
	done       chan struct{}
	closeOnce  sync.Once
	onClose    func() // set before start; read-only afterwards
}

// newTCPConn wraps an established socket; the read/write loops launch on
// start, after the owner has finished wiring onClose.
func newTCPConn(c net.Conn, h Handler) *tcpConn {
	return &tcpConn{c: c, handler: h, out: make(chan []byte, tcpQueueDepth), done: make(chan struct{})}
}

func (t *tcpConn) start() {
	go t.writeLoop()
	go t.readLoop()
}

// SetFilter implements FilteredConn.
func (t *tcpConn) SetFilter(f FrameFilter) { t.filter.Store(f) }

// loadFilter returns the installed FrameFilter, nil when none.
func (t *tcpConn) loadFilter() FrameFilter {
	if f, ok := t.filter.Load().(FrameFilter); ok {
		return f
	}
	return nil
}

// Send implements Conn.
func (t *tcpConn) Send(m *wire.Msg) error {
	frame, err := wire.Append(wire.GetBuf(), m)
	if err != nil {
		wire.PutBuf(frame)
		return err
	}
	return t.SendEncoded(frame)
}

// SendEncoded implements Conn, taking ownership of frame.
func (t *tcpConn) SendEncoded(frame []byte) error {
	if t.rec != nil {
		t.rec.Event(0, 0, trace.PEnqueue, int64(len(t.out)))
	}
	select {
	case <-t.done:
		wire.PutBuf(frame)
		return ErrClosed
	case t.out <- frame:
		return nil
	}
}

// writeLoop drains the outbound queue onto the socket: each wakeup picks
// up every frame already queued, coalesces runs of them into batch frames
// (the queue accumulates exactly while the previous write is in flight, so
// the busier the socket, the bigger the batches), writes them through the
// buffered writer, and flushes once — no frame waits for a timer, and no
// frame is ever left unflushed on an idle queue.
func (t *tcpConn) writeLoop() {
	w := writerPool.Get().(*bufio.Writer)
	w.Reset(t.c)
	defer func() {
		w.Reset(nil) // drop the conn reference; buffered bytes are dead anyway
		writerPool.Put(w)
	}()
	frames := make([][]byte, 0, 64)
	for {
		select {
		case <-t.done:
			return
		case frame := <-t.out:
			frames = append(frames[:0], frame)
		drain:
			for len(frames) < maxCoalesce {
				select {
				case frame = <-t.out:
					frames = append(frames, frame)
				default:
					break drain
				}
			}
			var drainT0 int64
			if t.rec != nil {
				drainT0 = trace.Now()
			}
			n := len(frames)
			var err error
			if t.noCoalesce {
				// Unbatched baseline: frames keep their own framing; bufio
				// still merges the bytes into one write, as it always did.
				err = writePlain(w, frames, t.rec != nil)
			} else {
				err = coalesceFrames(w, frames, t.rec != nil)
			}
			if err == nil {
				err = w.Flush()
			}
			if err != nil {
				t.Close()
				return
			}
			if t.rec != nil {
				t.rec.Record(0, 0, trace.PWriteDrain, drainT0, trace.Now()-drainT0, int64(n))
			}
		}
	}
}

// readLoop decodes inbound frames — dispatching a batch frame's messages
// back to back with their replies coalesced — reusing one body buffer and
// one message slice across frames. Any stream error — peer close, crash,
// corruption — severs the connection: message loss, the model's one
// failure mode for links.
func (t *tcpConn) readLoop() {
	r := readerPool.Get().(*bufio.Reader)
	r.Reset(t.c)
	defer func() {
		r.Reset(nil)
		readerPool.Put(r)
	}()
	body := wire.GetBuf()
	defer func() { wire.PutBuf(body) }()
	var stamp [wire.StampSize]byte
	for {
		var err error
		if body, err = wire.ReadFrame(r, body); err != nil {
			t.Close()
			return
		}
		if t.rec != nil {
			// A traced peer follows every outer frame with its send
			// stamp; transit from that stamp to here is the wire span.
			if _, err = io.ReadFull(r, stamp[:]); err != nil {
				t.Close()
				return
			}
			sent := wire.GetStamp(stamp[:])
			t.rec.Record(0, 0, trace.PWire, sent, trace.Now()-sent, int64(len(body)))
		}
		countIn(len(body))
		select {
		case <-t.done:
			return
		default:
		}
		var decT0 int64
		if t.rec != nil {
			decT0 = trace.Now()
		}
		if err = dispatchGroup(t, t.handler, t.loadFilter(), body); err != nil {
			t.Close()
			return
		}
		if t.rec != nil {
			t.rec.Record(0, 0, trace.PReadDecode, decT0, trace.Now()-decT0, int64(len(body)))
		}
	}
}

// Close implements Conn.
func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.c.Close()
		if t.onClose != nil {
			t.onClose()
		}
	})
	return nil
}
