package transport

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// TCP is the socket-backed Network: one net.Listener per server, one
// pooled connection per (client, server) pair, length-prefixed wire frames
// on the stream. Listeners bind to Host (default loopback) on an ephemeral
// port, so a test or an in-process cluster can run dozens of nodes without
// address coordination; cmd/electd binds explicit addresses via ListenTCP.
type TCP struct {
	// Host is the bind address for Listen, without a port. Default
	// "127.0.0.1" — loopback TCP: real sockets, kernel scheduling and
	// backpressure, no external reachability.
	Host string
}

// NewTCP returns the loopback-TCP network.
func NewTCP() *TCP { return &TCP{Host: "127.0.0.1"} }

// Listen implements Network on an ephemeral port.
func (t *TCP) Listen(h Handler) (Listener, error) {
	host := t.Host
	if host == "" {
		host = "127.0.0.1"
	}
	return ListenTCP(net.JoinHostPort(host, "0"), h)
}

// Dial implements Network.
func (t *TCP) Dial(addr string, h Handler) (Conn, error) { return DialTCP(addr, h) }

// TCPListener is a server-side TCP endpoint: an accept loop spawning one
// read loop per inbound connection.
type TCPListener struct {
	ln      net.Listener
	handler Handler
	crashed atomic.Bool

	mu     sync.Mutex
	closed bool
	conns  map[*tcpConn]struct{}
	wg     sync.WaitGroup
}

// ListenTCP binds addr (host:port; port 0 for ephemeral) and serves inbound
// frames to h.
func ListenTCP(addr string, h Handler) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &TCPListener{ln: ln, handler: h, conns: make(map[*tcpConn]struct{})}
	l.wg.Add(1)
	go l.accept()
	return l, nil
}

// Addr implements Listener.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

func (l *TCPListener) accept() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return // listener closed or crashed
		}
		if l.crashed.Load() {
			c.Close()
			continue
		}
		conn := newTCPConn(c, func(tc Conn, m *wire.Msg) {
			// A crashed node loses inbound messages silently: connections
			// may linger a moment after Crash, but nothing reaches the
			// handler.
			if !l.crashed.Load() {
				l.handler(tc, m)
			}
		})
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conns[conn] = struct{}{}
		conn.onClose = func() {
			l.mu.Lock()
			delete(l.conns, conn)
			l.mu.Unlock()
		}
		l.mu.Unlock()
		conn.start()
	}
}

// Crash implements Listener: refuse new connections, sever established
// ones, drop anything already inbound.
func (l *TCPListener) Crash() {
	l.crashed.Store(true)
	l.ln.Close()
	l.mu.Lock()
	conns := make([]*tcpConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close implements Listener: stop accepting, close every connection, wait
// for the accept loop to drain.
func (l *TCPListener) Close() error {
	l.mu.Lock()
	l.closed = true
	conns := make([]*tcpConn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return err
}

// DialTCP connects to a TCP listener; h receives the frames the server
// sends back on this connection.
func DialTCP(addr string, h Handler) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	conn := newTCPConn(c, h)
	conn.start()
	return conn, nil
}

// tcpQueueDepth bounds a connection's outbound frame queue; a full queue
// backpressures Send, mirroring socket buffers.
const tcpQueueDepth = 256

// tcpConn frames wire messages onto one TCP stream: Send enqueues encoded
// frames to a dedicated write loop (so one slow peer never stalls a
// broadcast mid-loop), and a read loop decodes inbound frames into the
// handler.
type tcpConn struct {
	c         net.Conn
	handler   Handler
	out       chan []byte
	done      chan struct{}
	closeOnce sync.Once
	onClose   func() // set before start; read-only afterwards
}

// newTCPConn wraps an established socket; the read/write loops launch on
// start, after the owner has finished wiring onClose.
func newTCPConn(c net.Conn, h Handler) *tcpConn {
	return &tcpConn{c: c, handler: h, out: make(chan []byte, tcpQueueDepth), done: make(chan struct{})}
}

func (t *tcpConn) start() {
	go t.writeLoop()
	go t.readLoop()
}

// Send implements Conn.
func (t *tcpConn) Send(m *wire.Msg) error {
	frame, err := wire.Encode(m)
	if err != nil {
		return err
	}
	select {
	case <-t.done:
		return ErrClosed
	case t.out <- frame:
		return nil
	}
}

// writeLoop drains the outbound queue onto the socket, flushing whenever
// the queue momentarily empties (batching consecutive frames into one
// syscall).
func (t *tcpConn) writeLoop() {
	w := bufio.NewWriter(t.c)
	for {
		select {
		case <-t.done:
			return
		case frame := <-t.out:
			if _, err := w.Write(frame); err != nil {
				t.Close()
				return
			}
			if len(t.out) == 0 {
				if err := w.Flush(); err != nil {
					t.Close()
					return
				}
			}
		}
	}
}

// readLoop decodes inbound frames and dispatches them. Any stream error —
// peer close, crash, corruption — severs the connection: message loss, the
// model's one failure mode for links.
func (t *tcpConn) readLoop() {
	r := bufio.NewReader(t.c)
	for {
		m, err := wire.ReadMsg(r)
		if err != nil {
			t.Close()
			return
		}
		select {
		case <-t.done:
			return
		default:
		}
		t.handler(t, m)
	}
}

// Close implements Conn.
func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.c.Close()
		if t.onClose != nil {
			t.onClose()
		}
	})
	return nil
}
