package transport

import (
	"errors"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/wire"
)

// UDP is deliberately absent from networks(): the shared conformance suite
// pins stream semantics — a corrupt frame severs the connection, a crashed
// listener refuses new dials — that a connectionless transport honestly
// cannot provide. This file is the datagram counterpart: the same
// request/reply, codec and batch contracts where they hold, and pinned
// *loss* semantics exactly where the stream suite pins severing. Loopback
// UDP may drop under buffer overrun, so delivery assertions resend rather
// than assume the first datagram lands.

// udpCollect reads replies until `want` distinct call ids arrive, resending
// the not-yet-acked requests every tick (duplicates are legal on a datagram
// transport; the call-id map dedups them, mirroring the electd pool).
func udpCollect(t *testing.T, conn Conn, got <-chan *wire.Msg, reqs map[uint64]*wire.Msg, want int) map[uint64]bool {
	t.Helper()
	seen := map[uint64]bool{}
	resend := time.NewTicker(100 * time.Millisecond)
	defer resend.Stop()
	deadline := time.After(10 * time.Second)
	for len(seen) < want {
		select {
		case m := <-got:
			if m.Kind != wire.KindAck {
				t.Fatalf("bad reply %+v", m)
			}
			seen[m.Call] = true
		case <-resend.C:
			for call, req := range reqs {
				if !seen[call] {
					conn.Send(req) //nolint:errcheck
				}
			}
		case <-deadline:
			t.Fatalf("%d distinct replies after 10s, want %d", len(seen), want)
		}
	}
	return seen
}

func TestUDPRequestReply(t *testing.T) {
	nw := NewUDP()
	ln, err := nw.Listen(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	got := make(chan *wire.Msg, 64)
	conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	reqs := map[uint64]*wire.Msg{}
	for call := uint64(1); call <= 8; call++ {
		req := &wire.Msg{Kind: wire.KindPropagate, Election: 3, Call: call, From: 1, Reg: "r",
			Entries: []rt.Entry{{Reg: "r", Owner: 1, Seq: call, Val: int(call)}}}
		reqs[call] = req
		if err := conn.Send(req); err != nil {
			t.Fatalf("send %d: %v", call, err)
		}
	}
	udpCollect(t, conn, got, reqs, 8)
}

// TestUDPBatchRoundTrip: a batch frame rides as one datagram and is
// dispatched to the server handler message by message, in order — ordering
// *within* one datagram is the one sequencing guarantee UDP does make.
func TestUDPBatchRoundTrip(t *testing.T) {
	nw := NewUDP()
	const calls = 6
	order := make(chan uint64, calls*4)
	ln, err := nw.Listen(func(c Conn, m *wire.Msg) {
		order <- m.Call
		c.Send(&wire.Msg{Kind: wire.KindAck, Election: m.Election, Call: m.Call, From: 9}) //nolint:errcheck
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan *wire.Msg, calls*4)
	conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	sendBatch := func() {
		frames := wire.GetBuf()
		for call := uint64(1); call <= calls; call++ {
			if frames, err = wire.Append(frames, &wire.Msg{
				Kind: wire.KindPropagate, Election: 2, Call: call, From: 1, Reg: "r",
				Entries: []rt.Entry{{Reg: "r", Owner: 1, Seq: call, Val: int(call)}},
			}); err != nil {
				t.Fatal(err)
			}
		}
		batch, err := wire.AppendBatchFrame(wire.GetBuf(), calls, frames)
		wire.PutBuf(frames)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.SendEncoded(batch); err != nil {
			t.Fatal(err)
		}
	}
	sendBatch()

	// The whole batch is one datagram: either all sub-messages dispatch in
	// order or the datagram was dropped and a resend delivers them, again in
	// order. Wait for one full in-order run.
	deadline := time.After(10 * time.Second)
	want := uint64(1)
	resend := time.NewTicker(100 * time.Millisecond)
	defer resend.Stop()
	for want <= calls {
		select {
		case call := <-order:
			if call == want {
				want++
			} else if call == 1 {
				want = 2 // a duplicate delivery restarted the run
			} else {
				t.Fatalf("batch dispatched out of order: got call %d, want %d", call, want)
			}
		case <-resend.C:
			sendBatch()
		case <-deadline:
			t.Fatalf("batch stalled at call %d of %d", want, calls)
		}
	}
	seen := map[uint64]bool{}
	for len(seen) < calls {
		select {
		case m := <-got:
			if m.Kind != wire.KindAck || m.From != 9 {
				t.Fatalf("bad reply %+v", m)
			}
			seen[m.Call] = true
		case <-time.After(10 * time.Second):
			t.Fatalf("%d distinct replies, want %d", len(seen), calls)
		}
	}
}

// TestUDPCorruptDatagramIsLoss: where the stream suite demands a corrupt
// frame sever the connection, the datagram transport must do the opposite —
// drop the one datagram and keep serving. One bad datagram is loss, not a
// broken stream.
func TestUDPCorruptDatagramIsLoss(t *testing.T) {
	nw := NewUDP()
	served := make(chan uint64, 16)
	ln, err := nw.Listen(func(c Conn, m *wire.Msg) {
		served <- m.Call
		c.Send(&wire.Msg{Kind: wire.KindAck, Call: m.Call, From: 7}) //nolint:errcheck
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan *wire.Msg, 16)
	conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// body: batch kind, count 2, then garbage instead of sub-frames — the
	// exact payload the stream suite uses to sever a TCP connection.
	corrupt := append(wire.GetBuf(), 4, byte(wire.KindBatch), 2, 0xFF, 0xFF)
	if err := conn.SendEncoded(corrupt); err != nil {
		t.Fatal(err)
	}

	// The endpoint must still be fully alive: a good request round-trips.
	req := &wire.Msg{Kind: wire.KindPropagate, Call: 42, From: 1, Reg: "r"}
	if err := conn.Send(req); err != nil {
		t.Fatalf("send after corrupt datagram: %v", err)
	}
	udpCollect(t, conn, got, map[uint64]*wire.Msg{42: req}, 1)

	for {
		select {
		case call := <-served:
			if call != 42 {
				t.Fatalf("corrupt frame reached the handler (call %d)", call)
			}
		default:
			return
		}
	}
}

// TestUDPCrashLossAndRecover: Crash loses in-flight and future messages —
// but, unlike every stream transport, dialing a crashed listener still
// succeeds: there is no handshake, and an unreachable server is
// indistinguishable from loss (the model's one failure mode). Recover
// rebinds the same address and serves again; Recover after Close stays an
// error.
func TestUDPCrashLossAndRecover(t *testing.T) {
	nw := NewUDP()
	ln, err := nw.Listen(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	rec, ok := ln.(Recoverer)
	if !ok {
		t.Fatalf("%T does not implement transport.Recoverer", ln)
	}

	got := make(chan *wire.Msg, 16)
	conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &wire.Msg{Kind: wire.KindPropagate, Call: 1, From: 1, Reg: "r"}
	if err := conn.Send(req); err != nil {
		t.Fatal(err)
	}
	udpCollect(t, conn, got, map[uint64]*wire.Msg{1: req}, 1)

	ln.Crash()
	for i := 0; i < 4; i++ {
		conn.Send(&wire.Msg{Kind: wire.KindPropagate, Call: uint64(10 + i), From: 1, Reg: "r"}) //nolint:errcheck
	}
	select {
	case m := <-got:
		t.Fatalf("crashed listener answered: %+v", m)
	case <-time.After(50 * time.Millisecond):
	}
	// The connectionless divergence, pinned: dial succeeds, datagrams just
	// go nowhere.
	dead, err := nw.Dial(ln.Addr(), nil)
	if err != nil {
		t.Fatalf("dial to a crashed UDP listener must succeed (loss, not refusal): %v", err)
	}
	dead.Close()

	if err := rec.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	conn2, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatalf("redial after recover: %v", err)
	}
	defer conn2.Close()
	req2 := &wire.Msg{Kind: wire.KindPropagate, Call: 2, From: 1, Reg: "r"}
	if err := conn2.Send(req2); err != nil {
		t.Fatalf("send after recover: %v", err)
	}
	udpCollect(t, conn2, got, map[uint64]*wire.Msg{2: req2}, 1)

	ln.Close()
	if err := rec.Recover(); err == nil {
		t.Fatal("Recover after Close succeeded; closed must be final")
	}
}

// TestUDPOversizeFrameIsLoss: a frame beyond the datagram ceiling cannot
// cross this transport; Send reports the loss to the caller instead of
// fragmenting or silently truncating.
func TestUDPOversizeFrameIsLoss(t *testing.T) {
	nw := NewUDP()
	ln, err := nw.Listen(echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := nw.Dial(ln.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	huge := append(wire.GetBuf(), make([]byte, udpMaxDatagram+1)...)
	if err := conn.SendEncoded(huge); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversize SendEncoded: got %v, want errFrameTooLarge", err)
	}
	// The endpoint survives the rejected send.
	if err := conn.Send(&wire.Msg{Kind: wire.KindAck}); err != nil {
		t.Fatalf("send after oversize rejection: %v", err)
	}
}
