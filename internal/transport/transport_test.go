package transport

import (
	"bufio"
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/wire"
)

// networks under test: every stream-semantics Network implementation must
// pass the same conformance suite. UDP is excluded on purpose — it cannot
// promise that corrupt frames sever or that crashed listeners refuse dials
// — and gets its own datagram conformance suite in udp_test.go.
func networks() map[string]func() Network {
	return map[string]func() Network{
		"loopback": func() Network { return NewLoopback() },
		"tcp":      func() Network { return NewTCP() },
	}
}

// echoHandler replies to every propagate with an ack carrying the same
// call id.
func echoHandler(c Conn, m *wire.Msg) {
	c.Send(&wire.Msg{Kind: wire.KindAck, Election: m.Election, Call: m.Call, From: 7}) //nolint:errcheck
}

func TestRequestReply(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			ln, err := nw.Listen(echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()

			got := make(chan *wire.Msg, 16)
			conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			for call := uint64(1); call <= 8; call++ {
				req := &wire.Msg{Kind: wire.KindPropagate, Election: 3, Call: call, From: 1, Reg: "r",
					Entries: []rt.Entry{{Reg: "r", Owner: 1, Seq: call, Val: int(call)}}}
				if err := conn.Send(req); err != nil {
					t.Fatalf("send %d: %v", call, err)
				}
			}
			seen := map[uint64]bool{}
			for i := 0; i < 8; i++ {
				select {
				case m := <-got:
					if m.Kind != wire.KindAck || m.Election != 3 || m.From != 7 {
						t.Fatalf("bad reply %+v", m)
					}
					seen[m.Call] = true
				case <-time.After(5 * time.Second):
					t.Fatalf("reply %d never arrived", i)
				}
			}
			if len(seen) != 8 {
				t.Fatalf("%d distinct replies, want 8", len(seen))
			}
		})
	}
}

// TestCodecRoundTripThroughTransport: payload values survive the journey
// byte for byte on every network (loopback encodes/decodes too, by design).
func TestCodecRoundTripThroughTransport(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			got := make(chan *wire.Msg, 1)
			ln, err := nw.Listen(func(_ Conn, m *wire.Msg) { got <- m })
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			conn, err := nw.Dial(ln.Addr(), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			sent := &wire.Msg{Kind: wire.KindPropagate, Election: 5, Call: 9, From: 2, Reg: "pp",
				Entries: []rt.Entry{{Reg: "pp", Owner: 2, Seq: 4, Val: "payload"}}}
			if err := conn.Send(sent); err != nil {
				t.Fatal(err)
			}
			select {
			case m := <-got:
				if m.Reg != "pp" || len(m.Entries) != 1 || m.Entries[0].Val != "payload" || m.Entries[0].Seq != 4 {
					t.Fatalf("message mangled in transit: %+v", m)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("message never arrived")
			}
		})
	}
}

// TestCrashDropsEverything: after Listener.Crash, inbound messages are
// lost (no replies), new dials fail, and Send to severed connections
// reports loss rather than blocking.
func TestCrashDropsEverything(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			ln, err := nw.Listen(echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			got := make(chan *wire.Msg, 16)
			conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			// Sanity: alive before the crash.
			conn.Send(&wire.Msg{Kind: wire.KindPropagate, Call: 1, Reg: "r"}) //nolint:errcheck
			select {
			case <-got:
			case <-time.After(5 * time.Second):
				t.Fatal("no reply before crash")
			}

			ln.Crash()
			// Sends after the crash either error (severed) or vanish; no
			// reply may ever arrive.
			for i := 0; i < 4; i++ {
				conn.Send(&wire.Msg{Kind: wire.KindPropagate, Call: uint64(10 + i), Reg: "r"}) //nolint:errcheck
			}
			select {
			case m := <-got:
				t.Fatalf("crashed node answered: %+v", m)
			case <-time.After(50 * time.Millisecond):
			}
			if _, err := nw.Dial(ln.Addr(), nil); err == nil {
				// TCP may accept briefly in the kernel backlog; but a
				// crashed listener must not complete new connections at the
				// transport level. Loopback rejects outright; for TCP the
				// listener socket is closed, so Dial errors.
				t.Fatal("dial to a crashed listener succeeded")
			}
		})
	}
}

// TestGracefulClose: Close severs connections without panics; subsequent
// sends report ErrClosed-style loss.
func TestGracefulClose(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			ln, err := nw.Listen(echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			conn, err := nw.Dial(ln.Addr(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := ln.Close(); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for {
				if err := conn.Send(&wire.Msg{Kind: wire.KindAck}); err != nil {
					break // severed, as required
				}
				if time.Now().After(deadline) {
					t.Fatal("sends kept succeeding long after listener close")
				}
				time.Sleep(time.Millisecond)
			}
			conn.Close()
		})
	}
}

// TestConcurrentSenders: many goroutines share connections to one server;
// every request is answered exactly once. Run under -race in CI.
func TestConcurrentSenders(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			ln, err := nw.Listen(echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()

			const clients, perClient = 8, 50
			var wg sync.WaitGroup
			errs := make([]error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					got := make(chan *wire.Msg, perClient)
					conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
					if err != nil {
						errs[c] = err
						return
					}
					defer conn.Close()
					for i := 0; i < perClient; i++ {
						if err := conn.Send(&wire.Msg{Kind: wire.KindPropagate, Call: uint64(i), Reg: "r"}); err != nil {
							errs[c] = err
							return
						}
					}
					for i := 0; i < perClient; i++ {
						select {
						case <-got:
						case <-time.After(10 * time.Second):
							errs[c] = fmt.Errorf("client %d: reply %d missing", c, i)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestBatchRoundTripThroughTransport: a batch frame sent with SendEncoded
// is dispatched to the server handler message by message, in order, and the
// replies issued during the dispatch come back coalesced — one inbound
// frame, one outbound frame, n messages each way. Every Network must agree.
func TestBatchRoundTripThroughTransport(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			const calls = 6
			order := make(chan uint64, calls)
			ln, err := nw.Listen(func(c Conn, m *wire.Msg) {
				order <- m.Call
				c.Send(&wire.Msg{Kind: wire.KindAck, Election: m.Election, Call: m.Call, From: 9}) //nolint:errcheck
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			got := make(chan *wire.Msg, calls)
			conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			frames := wire.GetBuf()
			for call := uint64(1); call <= calls; call++ {
				if frames, err = wire.Append(frames, &wire.Msg{
					Kind: wire.KindPropagate, Election: 2, Call: call, From: 1, Reg: "r",
					Entries: []rt.Entry{{Reg: "r", Owner: 1, Seq: call, Val: int(call)}},
				}); err != nil {
					t.Fatal(err)
				}
			}
			batch, err := wire.AppendBatchFrame(wire.GetBuf(), calls, frames)
			wire.PutBuf(frames)
			if err != nil {
				t.Fatal(err)
			}
			if err := conn.SendEncoded(batch); err != nil {
				t.Fatal(err)
			}

			for want := uint64(1); want <= calls; want++ {
				select {
				case call := <-order:
					if call != want {
						t.Fatalf("batch dispatched out of order: got call %d, want %d", call, want)
					}
				case <-time.After(5 * time.Second):
					t.Fatalf("sub-message %d never dispatched", want)
				}
			}
			seen := map[uint64]bool{}
			for i := 0; i < calls; i++ {
				select {
				case m := <-got:
					if m.Kind != wire.KindAck || m.From != 9 {
						t.Fatalf("bad reply %+v", m)
					}
					seen[m.Call] = true
				case <-time.After(5 * time.Second):
					t.Fatalf("reply %d never arrived", i)
				}
			}
			if len(seen) != calls {
				t.Fatalf("%d distinct replies, want %d", len(seen), calls)
			}
		})
	}
}

// TestCorruptFrameSeversConnection: a frame that fails to decode — here a
// declared batch with garbage inside — kills the connection rather than
// being skipped, on every network.
func TestCorruptFrameSeversConnection(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			served := make(chan struct{}, 4)
			ln, err := nw.Listen(func(_ Conn, m *wire.Msg) { served <- struct{}{} })
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			conn, err := nw.Dial(ln.Addr(), nil)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			// body: batch kind, count 2, then garbage instead of sub-frames.
			corrupt := append(wire.GetBuf(), 4, byte(wire.KindBatch), 2, 0xFF, 0xFF)
			if err := conn.SendEncoded(corrupt); err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(5 * time.Second)
			for {
				if err := conn.Send(&wire.Msg{Kind: wire.KindAck}); err != nil {
					break // severed, as required
				}
				if time.Now().After(deadline) {
					t.Fatal("connection survived a corrupt frame")
				}
				time.Sleep(time.Millisecond)
			}
			select {
			case <-served:
				t.Fatal("corrupt frame reached the handler")
			default:
			}
		})
	}
}

// TestCoalesceFrames: the write loops' frame-run coalescer wraps runs of
// plain frames into batch frames without reordering or altering a single
// message, passes pre-batched frames through unbatched (no nesting), and
// actually reduces the frame count — pinned deterministically against an
// in-memory stream.
func TestCoalesceFrames(t *testing.T) {
	mkFrame := func(call uint64) []byte {
		frame, err := wire.Append(wire.GetBuf(), &wire.Msg{Kind: wire.KindAck, Call: call})
		if err != nil {
			t.Fatal(err)
		}
		return frame
	}
	preBatched, err := wire.EncodeBatch([]*wire.Msg{
		{Kind: wire.KindAck, Call: 100},
		{Kind: wire.KindAck, Call: 101},
	})
	if err != nil {
		t.Fatal(err)
	}

	// First drain: a run of 3, a pre-batched frame, then a lone plain frame.
	// Second drain: a run of 2.
	var stream bytes.Buffer
	if err := coalesceFrames(&stream, [][]byte{
		mkFrame(1), mkFrame(2), mkFrame(3),
		append(wire.GetBuf(), preBatched...),
		mkFrame(4),
	}, false); err != nil {
		t.Fatal(err)
	}
	if err := coalesceFrames(&stream, [][]byte{mkFrame(5), mkFrame(6)}, false); err != nil {
		t.Fatal(err)
	}

	r := bufio.NewReader(&stream)
	var wireFrames int
	var calls []uint64
	var body []byte
	for {
		if body, err = wire.ReadFrame(r, body); err != nil {
			break
		}
		wireFrames++
		ms, err := wire.DecodeFrames(nil, body)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			calls = append(calls, m.Call)
		}
	}
	want := []uint64{1, 2, 3, 100, 101, 4, 5, 6}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("messages reordered or lost: got %v, want %v", calls, want)
	}
	// frames on the wire: batch{1,2,3}, pre-batched{100,101}, plain{4},
	// batch{5,6} — the run of 3 and the run of 2 each collapsed.
	if wireFrames != 4 {
		t.Fatalf("%d frames on the wire, want 4 (runs collapsed into batches)", wireFrames)
	}
}

// TestSendDelayed: the fault hook delivers late but does deliver, and the
// inflight group lets shutdown wait for stragglers.
func TestSendDelayed(t *testing.T) {
	nw := NewLoopback()
	got := make(chan *wire.Msg, 2)
	ln, err := nw.Listen(func(_ Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	conn, err := nw.Dial(ln.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var inflight sync.WaitGroup
	start := time.Now()
	SendDelayed(conn, &wire.Msg{Kind: wire.KindAck, Call: 1}, 30*time.Millisecond, &inflight)
	SendDelayed(conn, &wire.Msg{Kind: wire.KindAck, Call: 2}, 0, &inflight) // immediate path
	select {
	case m := <-got:
		if m.Call != 2 {
			t.Fatalf("undelayed message lost the race it should win (got call %d)", m.Call)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("immediate send never arrived")
	}
	inflight.Wait() // must return only after the delayed send is handed off
	select {
	case m := <-got:
		if m.Call != 1 {
			t.Fatalf("unexpected message %+v", m)
		}
		if since := time.Since(start); since < 25*time.Millisecond {
			t.Fatalf("delayed send arrived after %v, wanted ≥ 25ms", since)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delayed send never arrived")
	}
}

// TestCrashRecoverRestoresListener: every network's Listener implements
// Recoverer; after Crash → Recover the same address accepts dials and
// answers again, and Recover after Close is an error — closed is final.
func TestCrashRecoverRestoresListener(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			nw := mk()
			ln, err := nw.Listen(echoHandler)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			rec, ok := ln.(Recoverer)
			if !ok {
				t.Fatalf("%T does not implement transport.Recoverer", ln)
			}

			ln.Crash()
			if _, err := nw.Dial(ln.Addr(), nil); err == nil {
				t.Fatal("dial to a crashed listener succeeded")
			}
			if err := rec.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}

			got := make(chan *wire.Msg, 4)
			conn, err := nw.Dial(ln.Addr(), func(_ Conn, m *wire.Msg) { got <- m })
			if err != nil {
				t.Fatalf("redial after recover: %v", err)
			}
			defer conn.Close()
			if err := conn.Send(&wire.Msg{Kind: wire.KindPropagate, Call: 1, Reg: "r"}); err != nil {
				t.Fatalf("send after recover: %v", err)
			}
			select {
			case m := <-got:
				if m.Kind != wire.KindAck {
					t.Fatalf("bad reply after recover: %+v", m)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("recovered listener never answered")
			}

			ln.Close()
			if err := rec.Recover(); err == nil {
				t.Fatal("Recover after Close succeeded; closed must be final")
			}
		})
	}
}
