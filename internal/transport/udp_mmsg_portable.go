//go:build !linux || (!amd64 && !arm64)

package transport

import "net/netip"

// The portable datagram path: plain net.UDPConn reads and writes, one
// syscall per datagram. Everything above the packetIO seam — packing,
// framing, stamping, the reliability layered on by the electd pool — is
// identical to the Linux build; only the batched-syscall saving is gone.

type genericIO struct{}

func newPacketIO(*udpEndpoint) (packetIO, error) { return genericIO{}, nil }

func (genericIO) sendPackets(e *udpEndpoint, pkts []pkt) error {
	return sendPacketsGeneric(e, pkts)
}

func (genericIO) recvPackets(e *udpEndpoint, bufs [][]byte, lens []int, srcs []netip.AddrPort) (int, error) {
	return recvPacketsGeneric(e, bufs, lens, srcs)
}
