package transport

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Process-wide wire-traffic counters, updated by every Network this package
// implements: the transport-level half of the observability subsystem. One
// atomic add per frame keeps the hot path honest; the counters are global
// (not per-connection) because the admin endpoint reports the process, and
// a per-conn breakdown would cost a registry walk per connection churn.
//
// "Frames" are wire frames as the sockets see them: a coalesced batch is
// one frame out (its sub-messages are counted by MsgsCoalesced), and byte
// counts include framing — these are transport counters, deliberately
// distinct from the payload-byte accounting the paper's bit-complexity
// numbers use (Client.Bytes, Result.Bytes), which this package never
// touches.
var stats struct {
	framesOut  atomic.Int64
	bytesOut   atomic.Int64
	framesIn   atomic.Int64
	bytesIn    atomic.Int64
	batchesOut atomic.Int64
	coalesced  atomic.Int64
}

// Stats is one read of the process's transport counters.
type Stats struct {
	// FramesOut and BytesOut count frames (batches count once) and bytes
	// handed to the write side; FramesIn and BytesIn the inbound mirror.
	FramesOut, BytesOut, FramesIn, BytesIn int64
	// BatchesOut counts the write-loop batch frames assembled and
	// MsgsCoalesced the plain frames wrapped inside them.
	BatchesOut, MsgsCoalesced int64
}

// ReadStats returns the current counter values.
func ReadStats() Stats {
	return Stats{
		FramesOut:     stats.framesOut.Load(),
		BytesOut:      stats.bytesOut.Load(),
		FramesIn:      stats.framesIn.Load(),
		BytesIn:       stats.bytesIn.Load(),
		BatchesOut:    stats.batchesOut.Load(),
		MsgsCoalesced: stats.coalesced.Load(),
	}
}

// RegisterMetrics exposes the transport counters on an obs registry, under
// the transport_ prefix.
func RegisterMetrics(r *obs.Registry) {
	r.NewCounterFunc("transport_frames_out_total", "wire frames written (a batch counts once)", stats.framesOut.Load)
	r.NewCounterFunc("transport_bytes_out_total", "bytes written, framing included", stats.bytesOut.Load)
	r.NewCounterFunc("transport_frames_in_total", "wire frames read (a batch counts once)", stats.framesIn.Load)
	r.NewCounterFunc("transport_bytes_in_total", "frame-body bytes read", stats.bytesIn.Load)
	r.NewCounterFunc("transport_batches_out_total", "write-loop batch frames assembled", stats.batchesOut.Load)
	r.NewCounterFunc("transport_msgs_coalesced_total", "plain frames wrapped into outbound batches", stats.coalesced.Load)
}

// countOut records one outbound wire frame of the given size.
func countOut(size int) {
	stats.framesOut.Add(1)
	stats.bytesOut.Add(int64(size))
}

// countIn records one inbound wire frame with a body of the given size.
func countIn(size int) {
	stats.framesIn.Add(1)
	stats.bytesIn.Add(int64(size))
}

// countBatchOut records one assembled outbound batch wrapping n plain
// frames, size bytes in all (header included).
func countBatchOut(n, size int) {
	stats.batchesOut.Add(1)
	stats.coalesced.Add(int64(n))
	stats.framesOut.Add(1)
	stats.bytesOut.Add(int64(size))
}
