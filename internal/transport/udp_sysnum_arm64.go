//go:build linux && arm64

package transport

import "syscall"

const sysSENDMMSG = syscall.SYS_SENDMMSG
