package transport

import (
	"fmt"

	"repro/internal/trace"
)

// Canonical transport names, shared by every layer that selects a socket
// substrate: live.Config, campaign.Config, the electd spec constructors and
// the commands' -transport flags all spell the choice with these strings.
// The in-process "chan" substrate is not a Network — it lives above this
// package — so it has no name here; layers that accept it resolve it before
// building a Spec.
const (
	// SpecTCP is the stream transport: one (or Shards many) long-lived
	// connections per server, length-prefixed frames, kernel backpressure.
	SpecTCP = "tcp"
	// SpecUDP is the datagram transport: wire frames as UDP payloads with
	// MTU-bounded packing and batched syscalls. The transport itself is
	// lossy by design; the electd client pool layers retransmit-and-dedup
	// on top by default (see electd.NewPool), keeping reliability strictly
	// below the quorum semantics.
	SpecUDP = "udp"
)

// Spec is the one description of a socket transport that every layer
// consumes: a name plus the knobs the layers used to spell three different
// ways (live.Config, campaign.Config and electd's options each had their
// own). The zero value means "TCP, loopback host, one connection per
// server, coalescing on, untraced" — every field's zero is the default.
type Spec struct {
	// Name picks the substrate: SpecTCP (default when empty) or SpecUDP.
	Name string
	// Host is the listeners' bind host, without a port. Default 127.0.0.1.
	Host string
	// Shards is how many connections a client pool dials per server, with
	// elections hashed across them so decode and write loops parallelize
	// (see electd.PoolOptions.ConnShards). 0 or 1 means one connection.
	Shards int
	// NoBatch disables frame coalescing on every connection and in the
	// client pool: each message travels as its own frame, the pre-batching
	// baseline behavior.
	NoBatch bool
	// Trace, when non-nil, threads the election flight recorder through
	// every connection the network creates and turns on wire stamping.
	Trace *trace.Recorder
	// MaxDatagram (SpecUDP only) bounds the packing of small frames into
	// one datagram; 0 means a conservative single-MTU default. Frames
	// larger than the bound still travel, each as its own datagram.
	MaxDatagram int
}

// Network builds the transport the spec describes. An unknown Name is a
// configuration error, reported loudly rather than defaulted.
func (s Spec) Network() (Network, error) {
	switch s.Name {
	case "", SpecTCP:
		t := NewTCP()
		if s.Host != "" {
			t.Host = s.Host
		}
		t.NoCoalesce = s.NoBatch
		t.Trace = s.Trace
		return t, nil
	case SpecUDP:
		u := NewUDP()
		if s.Host != "" {
			u.Host = s.Host
		}
		u.NoCoalesce = s.NoBatch
		u.Trace = s.Trace
		u.MaxDatagram = s.MaxDatagram
		return u, nil
	default:
		return nil, fmt.Errorf("transport: unknown transport %q (want %q or %q)", s.Name, SpecTCP, SpecUDP)
	}
}

// Reliable reports whether the substrate itself guarantees delivery on a
// healthy link. UDP does not — consumers layer retransmit-and-dedup on top
// (the electd pool arms it by default for unreliable specs).
func (s Spec) Reliable() bool { return s.Name != SpecUDP }

// DaemonListener is the server endpoint a long-running daemon needs: the
// base Listener plus the exit-observation pair — Done closes when the
// endpoint's serve loop has exited, Err reports why (nil for a deliberate
// Close or Crash). Both built-in networks' listeners implement it.
type DaemonListener interface {
	Listener
	Done() <-chan struct{}
	Err() error
}

// ListenAddr binds an explicit address (host:port; port 0 for ephemeral)
// under the spec's transport and serves inbound frames to h — the daemon
// path (cmd/electd -serve), where the address comes from a flag rather
// than the ephemeral-port Listen of in-process clusters.
func (s Spec) ListenAddr(addr string, h Handler) (DaemonListener, error) {
	switch s.Name {
	case "", SpecTCP:
		return ListenTCP(addr, h)
	case SpecUDP:
		return ListenUDP(addr, h)
	default:
		return nil, fmt.Errorf("transport: unknown transport %q (want %q or %q)", s.Name, SpecTCP, SpecUDP)
	}
}
