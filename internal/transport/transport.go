// Package transport carries wire frames between the nodes of an election
// cluster: the network boundary beneath internal/electd and the live
// backend's TCP mode.
//
// The abstraction is a message-oriented, connection-based RPC substrate.
// Servers Listen and receive every inbound message together with the Conn
// it arrived on; replies go back over that same connection, so servers need
// no routing state and never dial. Clients Dial each server once and keep
// the connection for the life of the run — the connection pool is the set
// of Conns, each with its own write loop.
//
// Two Networks implement the interface: Loopback (in-process queues that
// still round-trip every message through the internal/wire codec — the
// reference implementation and test double) and TCP (real sockets on the
// host, one listener per server, length-prefixed frames). The fault engine
// plugs in here: a crashed node's Listener drops its connections and stops
// answering (transport.Listener.Crash), and injected link latency rides
// delayed writes (transport.SendDelayed).
package transport

import (
	"errors"
	"sync"
	"time"

	"repro/internal/wire"
)

// ErrClosed is returned by Send on a connection that has been closed —
// locally, by the peer, or by a crash. Senders treat it as message loss,
// exactly what the model prescribes for a dead link.
var ErrClosed = errors.New("transport: connection closed")

// Conn is one bidirectional message stream. Send enqueues a frame for
// asynchronous delivery: it never waits for the peer to process the message
// (backpressure applies only when the write queue is full). The message is
// encoded before Send returns and never retained, so callers may reuse m —
// and everything it references — immediately. Implementations must be safe
// for concurrent Send and SendEncoded.
//
// SendEncoded is the allocation-lean fast path: it enqueues an
// already-encoded frame (plain or batch, built with wire.Append or
// wire.AppendBatchFrame, ideally in a buffer from wire.GetBuf) and takes
// ownership of the slice — the transport recycles it through wire.PutBuf
// once the bytes are on the wire, so the caller must not touch it again.
type Conn interface {
	Send(m *wire.Msg) error
	SendEncoded(frame []byte) error
	Close() error
}

// Handler consumes inbound messages. On the listen side it runs on the
// connection's read loop — replies are sent via c; a handler that blocks
// forever stalls only its own connection. The messages of one inbound
// batch frame are dispatched back to back in batch order, and replies the
// handler sends during that dispatch are coalesced into one outbound batch
// frame. The Conn handed to a handler is only guaranteed valid for the
// duration of the call; do not retain it for replies from other goroutines.
type Handler func(c Conn, m *wire.Msg)

// FrameFilter vetoes the decoding of one inbound message body (see
// wire.DecodeFramesFiltered): return false to drop it before it is decoded
// — the reply router's escape from paying full decode for the stragglers
// beyond a quorum. It runs on the connection's read loop; the body aliases
// the read buffer and must not be retained.
type FrameFilter func(body []byte) bool

// FilteredConn is implemented by connections that accept a pre-decode
// FrameFilter after dialing. Both built-in networks' connections do;
// wrappers and test doubles need not.
type FilteredConn interface {
	SetFilter(f FrameFilter)
}

// Listener is a server-side endpoint accepting connections.
type Listener interface {
	// Addr is the dialable address of this endpoint.
	Addr() string
	// Crash simulates a node failure: every established connection is
	// dropped, new connections are refused, and inbound messages stop
	// reaching the handler. Unlike Close it is abrupt — no draining.
	Crash()
	// Close shuts the endpoint down gracefully.
	Close() error
}

// Recoverer is implemented by listeners that can come back from a Crash:
// Recover re-arms the endpoint at its original address, so clients that
// redial reach the server again — the transport half of crash-recovery.
// Both built-in networks' listeners implement it. Recover after Close is
// an error: Close is teardown, Crash is a fault.
type Recoverer interface {
	Recover() error
}

// Network is a transport implementation: a dialer/listener factory whose
// addresses are mutually reachable.
type Network interface {
	Listen(h Handler) (Listener, error)
	// Dial connects to a listener. h receives the messages the server sends
	// back over this connection; it runs on the connection's read loop.
	Dial(addr string, h Handler) (Conn, error)
}

// SendDelayed delivers m over c after an injected latency d, without
// blocking the caller: the write rides a timer, modelling an adversarially
// delayed link. inflight (optional) is incremented until the delayed write
// has been handed to the connection, so shutdown can wait for stragglers
// instead of racing them. Send errors after the delay are message loss, as
// for every closed connection.
func SendDelayed(c Conn, m *wire.Msg, d time.Duration, inflight *sync.WaitGroup) {
	if d <= 0 {
		c.Send(m) //nolint:errcheck // loss is the model's prerogative
		return
	}
	if inflight != nil {
		inflight.Add(1)
	}
	time.AfterFunc(d, func() {
		if inflight != nil {
			defer inflight.Done()
		}
		c.Send(m) //nolint:errcheck
	})
}
