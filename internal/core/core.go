// Package core implements the leader-election algorithms of Alistarh,
// Gelashvili and Vladu, "How to Elect a Leader Faster than a Tournament"
// (PODC 2015): the PoisonPill technique (Figure 1), the Heterogeneous
// PoisonPill (Figure 2), and the final O(log* k)-time, O(kn)-message leader
// election built from a doorway (Figure 5), pre-rounds (Figure 4) and rounds
// of heterogeneous PoisonPill (Figure 6).
//
// All algorithms run on top of the rt.Comm communicate primitive — the
// runtime seam implemented by both the simulated backend (internal/sim +
// internal/quorum) and the real-goroutine backend (internal/live) — and are
// direct translations of the paper's pseudocode; doc comments cite the
// figure line numbers they implement. Each participant publishes a *State
// through rt.Procer.Publish so that the strong adaptive adversary (on the
// sim backend) can inspect algorithm progress — stage, round, coin flips —
// exactly as the model allows.
package core

import (
	"repro/internal/rt"
)

// Outcome is the result of one sifting round (PoisonPill or heterogeneous
// PoisonPill): the participant either survives into the next round or drops
// out of contention.
type Outcome int

const (
	// Survive: the participant remains in contention.
	Survive Outcome = iota + 1
	// Die: the participant drops out (and will lose the election).
	Die
)

func (o Outcome) String() string {
	switch o {
	case Survive:
		return "SURVIVE"
	case Die:
		return "DIE"
	default:
		return "undecided"
	}
}

// Decision is the result of leader election, and of its internal doorway and
// pre-round sub-protocols (which may also report Proceed).
type Decision int

const (
	// Proceed: the sub-protocol did not decide; continue.
	Proceed Decision = iota + 1
	// Win: the participant is the unique leader.
	Win
	// Lose: the participant is not the leader.
	Lose
)

func (d Decision) String() string {
	switch d {
	case Proceed:
		return "PROCEED"
	case Win:
		return "WIN"
	case Lose:
		return "LOSE"
	default:
		return "undecided"
	}
}

// StatKind is a participant's priority state within one sifting round.
type StatKind int

const (
	// Commit: the participant has taken the poison pill — it is committed
	// to flipping a coin but the outcome is not yet visible (Fig 1 line 2).
	Commit StatKind = iota + 1
	// LowPri: the participant flipped 0 (Fig 1 line 5).
	LowPri
	// HighPri: the participant flipped 1 — the antidote (Fig 1 line 6).
	HighPri
)

func (s StatKind) String() string {
	switch s {
	case Commit:
		return "Commit"
	case LowPri:
		return "Low-Pri"
	case HighPri:
		return "High-Pri"
	default:
		return "⊥"
	}
}

// Status is the register value a participant propagates during a sifting
// round. List is the ℓ list of the heterogeneous variant (Fig 2 lines
// 21-22): the participants whose non-⊥ status the writer had observed when
// it flipped. It is nil in the basic technique.
type Status struct {
	Stat StatKind
	List []rt.ProcID
}

// WireSize implements rt.WireSizer with the status's exact encoded body
// size under the internal/wire codec: one stat byte, the list length and
// each listed processor id as uvarints.
func (s Status) WireSize() int {
	n := 1 + rt.UvarintSize(uint64(len(s.List)))
	for _, id := range s.List {
		n += rt.UvarintSize(uint64(id))
	}
	return n
}

// Stage identifies where in the protocol a participant currently is; it is
// part of the adversary-visible State.
type Stage int

const (
	// StageInit: published, not yet inside any sub-protocol.
	StageInit Stage = iota + 1
	// StageDoorway: executing the doorway (Fig 5).
	StageDoorway
	// StagePreRound: executing a pre-round (Fig 4).
	StagePreRound
	// StageCommit: poison pill taken; propagating/collecting Commit.
	StageCommit
	// StageFlip: paused at the sift coin flip.
	StageFlip
	// StagePriority: propagating priority and collecting statuses.
	StagePriority
	// StageDecideSift: evaluating the survive/die condition.
	StageDecideSift
	// StageDone: the algorithm returned.
	StageDone
)

func (s Stage) String() string {
	switch s {
	case StageInit:
		return "init"
	case StageDoorway:
		return "doorway"
	case StagePreRound:
		return "preround"
	case StageCommit:
		return "commit"
	case StageFlip:
		return "flip"
	case StagePriority:
		return "priority"
	case StageDecideSift:
		return "decide"
	case StageDone:
		return "done"
	default:
		return "unknown"
	}
}

// State is the adversary-visible protocol state of one participant. The
// strong adaptive adversary reads it through sim.Kernel.Published; scheduling
// strategies use Round/Stage/Sifts to build phase-by-phase schedules and
// Flip to react to coin flips.
type State struct {
	// Algorithm names the protocol publishing this state.
	Algorithm string
	// Stage is the participant's current protocol stage.
	Stage Stage
	// Round is the current election round (0 outside rounds).
	Round int
	// Sifts counts completed sifting instances.
	Sifts int
	// Flip is the coin of the sift in progress: -1 before the flip.
	Flip int
	// Ell is |ℓ| for the heterogeneous sift in progress (0 if unknown).
	Ell int
	// Progress increases at every stage transition (monotone counter for
	// schedule construction).
	Progress int
	// Decided and Decision report the election outcome once reached.
	Decided  bool
	Decision Decision
	// LastOutcome is the outcome of the most recent sift.
	LastOutcome Outcome

	// RoundHook, when set, is called at every Round transition with the
	// new round number, on the participant's algorithm goroutine. It is
	// observability plumbing (the live backends use it to stamp election
	// spans with their round) and must not touch protocol state.
	RoundHook func(round int)
}

// SetRound records a round transition, notifying RoundHook if installed.
// Algorithms use it instead of assigning Round directly so observers see
// every transition.
func (s *State) SetRound(r int) {
	s.Round = r
	if s.RoundHook != nil {
		s.RoundHook(r)
	}
}

// NewState publishes a fresh State on p and returns it.
func NewState(p rt.Procer, algorithm string) *State {
	s := &State{Algorithm: algorithm, Stage: StageInit, Flip: -1}
	p.Publish(s)
	return s
}

// setStage records a stage transition.
func (s *State) setStage(st Stage) {
	s.Stage = st
	s.Progress++
}

// noteSift records a completed sift instance.
func (s *State) noteSift(o Outcome) {
	s.LastOutcome = o
	s.Sifts++
	s.Progress++
}

// decide records the final election decision.
func (s *State) decide(d Decision) {
	s.Decided = true
	s.Decision = d
	s.setStage(StageDone)
}

// SetDecided records a final decision from protocols outside this package
// (e.g. the tournament baseline) that reuse State for adversary visibility.
func (s *State) SetDecided(d Decision) { s.decide(d) }

// SiftCount reports completed sift instances; adversary strategies probe for
// this method through a small interface to build phase-by-phase schedules.
func (s *State) SiftCount() int { return s.Sifts }

// CurrentRound reports the election round in progress; adversary strategies
// probe for this method to target the furthest-ahead participant.
func (s *State) CurrentRound() int { return s.Round }
