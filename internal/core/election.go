package core

import (
	"strconv"

	"repro/internal/rt"
)

// doorReg and roundReg name the shared registers of one election instance.
func doorReg(inst string) string  { return inst + "/door" }
func roundReg(inst string) string { return inst + "/round" }

// siftInst names the disjoint heterogeneous-PoisonPill namespace of round r
// ("HeterogeneousPoisonPill protocols for different rounds are completely
// disjoint from each other", Section A.1).
func siftInst(inst string, r int) string {
	return inst + "/sift/" + strconv.Itoa(r)
}

// Doorway executes the doorway procedure (Figure 5). The participant
// collects the door flag from a quorum (line 56) and loses immediately if
// any view reports a closed door (lines 57-58); otherwise it closes the door
// itself and propagates that to a quorum (lines 59-60) before proceeding
// (line 61).
//
// The doorway makes the election linearizable (Lemma A.3): no participant
// can lose before the eventual winner's invocation has started.
func Doorway(c rt.Comm, inst string, s *State) Decision {
	s.setStage(StageDoorway)
	reg := doorReg(inst)
	views := c.Collect(reg) // line 56
	for _, v := range views {
		if len(v.Entries) > 0 { // some Doors[j] = true, lines 57-58
			return Lose
		}
	}
	c.Propagate(reg, true) // lines 59-60
	return Proceed         // line 61
}

// PreRound executes the pre-round procedure (Figure 4) for round r. The
// participant records and propagates its round (lines 45-46), collects the
// rounds of others (line 47) and computes R, the maximum round of any other
// processor in any view (line 48). Following [SSW91]: if r < R it loses
// (lines 49-50), if R < r−1 it wins (lines 51-52), otherwise it proceeds
// (line 53).
func PreRound(c rt.Comm, inst string, r int, s *State) Decision {
	s.setStage(StagePreRound)
	reg := roundReg(inst)
	c.Propagate(reg, r)     // lines 45-46
	views := c.Collect(reg) // line 47

	self := c.Proc().ID()
	maxOther := 0 // rounds start at 1; 0 stands for "no other round seen"
	for _, v := range views {
		for _, e := range v.Entries {
			if e.Owner == self {
				continue // line 48 takes the max over j ≠ i
			}
			if rv, ok := e.Val.(int); ok && rv > maxOther {
				maxOther = rv
			}
		}
	}
	switch {
	case r < maxOther: // lines 49-50
		return Lose
	case maxOther < r-1: // lines 51-52
		return Win
	default:
		return Proceed // line 53
	}
}

// LeaderElect executes the complete leader-election algorithm (Figure 6) for
// the participant behind c on election instance inst. It returns Win for
// exactly one participant and Lose for every other.
//
// The participant passes through the doorway (lines 63-64), then repeats:
// pre-round (line 66), returning if the round numbers already decide the
// outcome (lines 67-68); otherwise one round of heterogeneous PoisonPill
// (line 69), losing if it dies (line 70), and advancing to the next round
// otherwise (line 71).
//
// Guarantees (Theorem A.5): the election is linearizable; with at most
// ⌈n/2⌉−1 crashes every non-faulty participant returns with probability 1;
// with k participants the expected maximum number of communicate calls per
// processor is O(log* k) and the expected total number of messages is
// O(kn).
func LeaderElect(c rt.Comm, inst string) Decision {
	s := NewState(c.Proc(), "leaderelect")
	return LeaderElectWithState(c, inst, s)
}

// LeaderElectWithState is LeaderElect with a caller-supplied published
// state, for protocols (renaming, tournaments) that embed elections and want
// one State per processor.
func LeaderElectWithState(c rt.Comm, inst string, s *State) Decision {
	// Reset per-election fields: embedding protocols (renaming) reuse one
	// published State across several elections.
	s.Decided = false
	s.Decision = 0
	s.SetRound(0)
	if Doorway(c, inst, s) == Lose { // lines 63-64
		s.decide(Lose)
		return Lose
	}
	for r := 1; ; r++ { // lines 65, 71-72
		s.SetRound(r)
		d := PreRound(c, inst, r, s) // line 66
		if d == Win || d == Lose {   // lines 67-68
			s.decide(d)
			return d
		}
		if HetPoisonPill(c, siftInst(inst, r), s) == Die { // line 69
			s.decide(Lose) // line 70
			return Lose
		}
	}
}
