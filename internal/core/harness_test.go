package core

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// electionRun is the result of one simulated election.
type electionRun struct {
	decisions map[sim.ProcID]Decision
	stats     sim.Stats
	err       error
}

// runElection simulates leader election with participants on the first k of
// n processors under the given adversary (nil = built-in fair scheduler).
func runElection(n, k int, seed int64, adv sim.Adversary) electionRun {
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed, MaxFaults: -1})
	stores := quorum.InstallStores(k2)
	decisions := make(map[sim.ProcID]Decision, k)
	for i := 0; i < k; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			decisions[id] = LeaderElect(c, "elect")
		})
	}
	stats, err := k2.Run(adv)
	return electionRun{decisions: decisions, stats: stats, err: err}
}

// runSift simulates one standalone sift instance (basic or heterogeneous)
// with participants on the first k of n processors; it returns the outcome
// per participant.
func runSift(n, k int, seed int64, adv sim.Adversary, het bool) (map[sim.ProcID]Outcome, sim.Stats, error) {
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed, MaxFaults: -1})
	stores := quorum.InstallStores(k2)
	outcomes := make(map[sim.ProcID]Outcome, k)
	for i := 0; i < k; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := NewState(p, "sift")
			if het {
				outcomes[id] = HetPoisonPill(c, "pp", s)
			} else {
				outcomes[id] = PoisonPill(c, "pp", s)
			}
		})
	}
	stats, err := k2.Run(adv)
	return outcomes, stats, err
}

// survivors counts Survive outcomes.
func survivors(outcomes map[sim.ProcID]Outcome) int {
	n := 0
	for _, o := range outcomes {
		if o == Survive {
			n++
		}
	}
	return n
}

// instrumentedSift runs one full-participation sift and returns the kernel,
// outcomes, and each participant's published State.
func instrumentedSift(t *testing.T, n int, seed int64, het bool) (*sim.Kernel, map[sim.ProcID]Outcome, map[sim.ProcID]*State) {
	t.Helper()
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed})
	stores := quorum.InstallStores(k2)
	outcomes := make(map[sim.ProcID]Outcome, n)
	states := make(map[sim.ProcID]*State, n)
	for i := 0; i < n; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := NewState(p, "sift")
			states[id] = s
			if het {
				outcomes[id] = HetPoisonPill(c, "pp", s)
			} else {
				outcomes[id] = PoisonPill(c, "pp", s)
			}
		})
	}
	if _, err := k2.Run(nil); err != nil {
		t.Fatalf("instrumentedSift(n=%d, seed=%d): %v", n, seed, err)
	}
	return k2, outcomes, states
}

// viewEntry is a compact test description of one status observation.
type viewEntry struct {
	owner int
	stat  StatKind
	list  []int
}

// buildViews assembles quorum views, one per entry (a real view holds at
// most one cell per owner, so conflicting observations of the same owner
// live in distinct views).
func buildViews(n int, entries []viewEntry) []quorum.View {
	var views []quorum.View
	for i, e := range entries {
		var list []sim.ProcID
		for _, q := range e.list {
			list = append(list, sim.ProcID(q))
		}
		views = append(views, quorum.View{
			From: sim.ProcID(i % n),
			Entries: []quorum.Entry{{
				Reg:   "pp/status",
				Owner: sim.ProcID(e.owner),
				Seq:   1,
				Val:   Status{Stat: e.stat, List: list},
			}},
		})
	}
	return views
}

// checkElection asserts the fundamental safety properties: every participant
// decided, and exactly one won.
func checkElection(t *testing.T, r electionRun, k int) {
	t.Helper()
	if r.err != nil {
		t.Fatalf("election run failed: %v", r.err)
	}
	if len(r.decisions) != k {
		t.Fatalf("%d of %d participants decided", len(r.decisions), k)
	}
	winners := 0
	for id, d := range r.decisions {
		switch d {
		case Win:
			winners++
		case Lose:
		default:
			t.Fatalf("processor %d returned %v", id, d)
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}
