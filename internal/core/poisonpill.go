package core

import (
	"math"

	"repro/internal/rt"
)

// statusReg names the status register array of a sift instance.
func statusReg(inst string) string { return inst + "/status" }

// PoisonPill executes one instance of the basic PoisonPill technique
// (Figure 1) for the participant behind c, using register namespace inst.
//
// The participant first takes the poison pill — it commits to flipping a
// coin and propagates the Commit status to a quorum (lines 2-3) — then flips
// 1 with probability 1/√n (line 4), adopts low or high priority (lines 5-6),
// propagates the new status (line 7) and collects the statuses seen by a
// quorum (line 8). A low-priority participant dies if some processor j is
// seen committed or with high priority in some view while no view shows j
// with low priority (lines 9-11); everyone else survives (line 12).
//
// Guarantees (Claims 3.1, 3.2): if all participants return, at least one
// survives, and the expected number of survivors is O(√n) under any
// adaptive-adversary schedule.
func PoisonPill(c rt.Comm, inst string, s *State) Outcome {
	// The paper fixes the bias to 1/√n (line 4); Section 3.2 proves this
	// choice optimal for the basic technique.
	return PoisonPillBiased(c, inst, 1/math.Sqrt(float64(c.Proc().N())), s)
}

// PoisonPillBiased is PoisonPill with an explicit probability of flipping 1.
// The survivor guarantee (Claim 3.1) holds for any bias; the O(√n) survivor
// bound (Claim 3.2) is specific to 1/√n. Exposed for the tournament
// baseline, whose two-contender matches use the natural fair bias 1/2.
func PoisonPillBiased(c rt.Comm, inst string, prob float64, s *State) Outcome {
	p := c.Proc()
	reg := statusReg(inst)

	s.setStage(StageCommit)
	c.Propagate(reg, Status{Stat: Commit}) // lines 2-3

	s.setStage(StageFlip)
	s.Flip = -1
	coin := p.Flip(prob) // line 4
	s.Flip = coin

	mine := Status{Stat: LowPri} // line 5
	if coin == 1 {
		mine = Status{Stat: HighPri} // line 6
	}
	s.setStage(StagePriority)
	c.Propagate(reg, mine)  // line 7
	views := c.Collect(reg) // line 8
	s.setStage(StageDecideSift)

	outcome := Survive
	if coin == 0 { // line 9
		if existsStrongWithoutLow(p.N(), views) { // line 10
			outcome = Die // line 11
		}
	}
	s.noteSift(outcome)
	return outcome // line 12
}

// existsStrongWithoutLow evaluates the death condition of Fig 1 line 10:
// ∃ processor j such that some view shows j in {Commit, High-Pri} and no
// view shows j with Low-Pri.
func existsStrongWithoutLow(n int, views []rt.View) bool {
	strong := make([]bool, n)
	low := make([]bool, n)
	for _, v := range views {
		for _, e := range v.Entries {
			st, ok := e.Val.(Status)
			if !ok {
				continue
			}
			switch st.Stat {
			case Commit, HighPri:
				strong[e.Owner] = true
			case LowPri:
				low[e.Owner] = true
			}
		}
	}
	for j := 0; j < n; j++ {
		if strong[j] && !low[j] {
			return true
		}
	}
	return false
}

// HetPoisonPill executes one instance of the Heterogeneous PoisonPill
// (Figure 2) for the participant behind c, using register namespace inst.
//
// After committing (lines 14-15) the participant collects the set ℓ of
// processors it has seen participate (lines 16-17) and derives its coin bias
// from |ℓ|: probability 1 when alone, ln|ℓ|/|ℓ| otherwise (lines 18-19).
// The flip (line 20) decides its priority; the priority is augmented with ℓ
// and propagated (lines 21-23). After collecting again (line 24), a
// low-priority participant computes L — the union of every ℓ list it
// observed plus every processor with a non-⊥ status in its views (lines
// 26-27) — and dies if some j ∈ L has no view reporting low priority
// (lines 28-29); otherwise it survives (line 30).
//
// Guarantees (Lemmas 3.6, 3.7): at least one participant survives, the
// expected number of low-priority survivors is O(log k) and the expected
// number of high-priority survivors is O(log² k) for k participants, under
// any adaptive-adversary schedule.
func HetPoisonPill(c rt.Comm, inst string, s *State) Outcome {
	return HetPoisonPillWithBias(c, inst, PaperBias, s)
}

// BiasFunc maps the observed participant count |ℓ| to the probability of
// flipping 1 (high priority). Figure 2 lines 18-19 use PaperBias; the bias
// is the design choice the paper's Section 3.2 analysis turns on, so the
// ablation experiments swap it out.
type BiasFunc func(ell int) float64

// PaperBias is the paper's choice: 1 for a lone participant, ln|ℓ|/|ℓ|
// otherwise, which makes the probability of |U| processors all flipping 0 at
// most (1 − ln|U|/|U|)^|U| = O(1/|U|) (Claim 3.5).
func PaperBias(ell int) float64 {
	if ell <= 1 {
		return 1
	}
	return math.Log(float64(ell)) / float64(ell)
}

// SqrtBias reduces the heterogeneous round to an adaptive basic PoisonPill:
// flipping 1 with probability 1/√|ℓ| re-creates the Ω(√n) survivor floor of
// Section 3.2 (ablation).
func SqrtBias(ell int) float64 {
	if ell <= 1 {
		return 1
	}
	return 1 / math.Sqrt(float64(ell))
}

// InverseBias flips 1 with probability 1/|ℓ|: too low — the expected number
// of high-priority survivors drops to O(1), but the probability that a large
// prefix flips all zeros (and survives) becomes constant, so low-priority
// survivors blow up (ablation).
func InverseBias(ell int) float64 {
	if ell <= 1 {
		return 1
	}
	return 1 / float64(ell)
}

// FairBias ignores the view and flips a fair coin: half the participants
// keep high priority and survive (ablation).
func FairBias(int) float64 { return 0.5 }

// HetPoisonPillWithBias is HetPoisonPill with a caller-supplied bias
// function; see BiasFunc.
func HetPoisonPillWithBias(c rt.Comm, inst string, bias BiasFunc, s *State) Outcome {
	p := c.Proc()
	reg := statusReg(inst)

	s.setStage(StageCommit)
	c.Propagate(reg, Status{Stat: Commit, List: nil}) // lines 14-15
	views := c.Collect(reg)                           // line 16
	ell := participantsSeen(p.N(), views)             // line 17
	s.Ell = len(ell)

	prob := bias(len(ell)) // lines 18-19
	s.setStage(StageFlip)
	s.Flip = -1
	coin := p.Flip(prob) // line 20
	s.Flip = coin

	mine := Status{Stat: LowPri, List: ell} // line 21
	if coin == 1 {
		mine = Status{Stat: HighPri, List: ell} // line 22
	}
	s.setStage(StagePriority)
	c.Propagate(reg, mine) // line 23
	views = c.Collect(reg) // line 24
	s.setStage(StageDecideSift)

	outcome := Survive
	if coin == 0 { // line 25
		if someInLWithoutLow(p.N(), views) { // lines 26-28
			outcome = Die // line 29
		}
	}
	s.noteSift(outcome)
	return outcome // line 30
}

// participantsSeen implements Fig 2 line 17: the sorted list of processors
// with a non-⊥ status in some view.
func participantsSeen(n int, views []rt.View) []rt.ProcID {
	seen := make([]bool, n)
	for _, v := range views {
		for _, e := range v.Entries {
			seen[e.Owner] = true
		}
	}
	var out []rt.ProcID
	for j := 0; j < n; j++ {
		if seen[j] {
			out = append(out, rt.ProcID(j))
		}
	}
	return out
}

// someInLWithoutLow evaluates the death condition of Fig 2 lines 26-28:
// build L as the union of all observed ℓ lists (line 26) and all processors
// with non-⊥ statuses (line 27), and report whether some j ∈ L has no view
// with a Low-Pri status (line 28).
func someInLWithoutLow(n int, views []rt.View) bool {
	inL := make([]bool, n)
	low := make([]bool, n)
	// The same (owner, seq) cell appears in up to a quorum of views with an
	// identical ℓ list; walk each distinct cell version once. Within one
	// sift instance an owner writes at most twice (Commit, then priority),
	// so two slots per owner suffice.
	type seqPair struct{ a, b uint64 }
	seen := make([]seqPair, n)
	for _, v := range views {
		for _, e := range v.Entries {
			st, ok := e.Val.(Status)
			if !ok {
				continue
			}
			if st.Stat == LowPri {
				low[e.Owner] = true
			}
			sp := &seen[e.Owner]
			switch {
			case sp.a == e.Seq || sp.b == e.Seq:
				continue
			case sp.a == 0:
				sp.a = e.Seq
			case sp.b == 0:
				sp.b = e.Seq
			}
			inL[e.Owner] = true // line 27
			for _, q := range st.List {
				inL[q] = true // line 26
			}
		}
	}
	for j := 0; j < n; j++ {
		if inL[j] && !low[j] {
			return true
		}
	}
	return false
}
