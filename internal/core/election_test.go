package core

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
)

func TestLeaderElectUniqueWinnerFullParticipation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16, 32} {
		for seed := int64(0); seed < 8; seed++ {
			r := runElection(n, n, seed, nil)
			checkElection(t, r, n)
		}
	}
}

func TestLeaderElectUniqueWinnerPartialParticipation(t *testing.T) {
	// Adaptivity: k < n participants, the rest only acknowledge.
	cases := []struct{ n, k int }{
		{8, 1}, {8, 2}, {16, 3}, {32, 5}, {33, 17}, {64, 2},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 5; seed++ {
			r := runElection(tc.n, tc.k, seed, nil)
			checkElection(t, r, tc.k)
		}
	}
}

func TestLeaderElectSoloWinsInTwoRounds(t *testing.T) {
	// A lone participant observes R = 0 and must win in round 2
	// (Theorem A.5's k = 1 case).
	k2 := sim.NewKernel(sim.Config{N: 8, Seed: 1})
	stores := quorum.InstallStores(k2)
	var d Decision
	var st *State
	k2.Spawn(0, func(p *sim.Proc) {
		c := quorum.NewComm(p, stores[0])
		st = NewState(p, "leaderelect")
		d = LeaderElectWithState(c, "elect", st)
	})
	if _, err := k2.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d != Win {
		t.Fatalf("solo participant returned %v, want WIN", d)
	}
	if st.Round != 2 {
		t.Fatalf("solo participant decided in round %d, want 2", st.Round)
	}
}

func TestLeaderElectTimeIsLogStar(t *testing.T) {
	// Theorem A.5: O(log* k) communicate calls per processor. log*(1024)=4;
	// with the protocol's constants (8 calls per round through the doorway,
	// pre-round and four-call sift) a generous deterministic cap is 60.
	for _, k := range []int{4, 16, 64, 256} {
		worst := 0
		for seed := int64(0); seed < 5; seed++ {
			r := runElection(k, k, seed, nil)
			checkElection(t, r, k)
			if mc := r.stats.MaxCommunicateCalls(); mc > worst {
				worst = mc
			}
		}
		if worst > 60 {
			t.Fatalf("k=%d: max communicate calls %d exceed log* bound", k, worst)
		}
	}
}

func TestLeaderElectMessagesLinearInKTimesN(t *testing.T) {
	// Theorem A.5: O(kn) messages. Check messages/(kn) stays below a fixed
	// constant as k scales.
	const n = 128
	for _, k := range []int{8, 32, 128} {
		var worst float64
		for seed := int64(0); seed < 3; seed++ {
			r := runElection(n, k, seed, nil)
			checkElection(t, r, k)
			ratio := float64(r.stats.MessagesSent) / float64(k*n)
			if ratio > worst {
				worst = ratio
			}
		}
		if worst > 40 {
			t.Fatalf("k=%d: messages/(kn) = %.1f blows the O(kn) bound", k, worst)
		}
	}
}

func TestDoorwayClosedDoorLoses(t *testing.T) {
	// A participant that starts strictly after another finished the doorway
	// must observe the closed door and lose (Fig 5 lines 56-58).
	k2 := sim.NewKernel(sim.Config{N: 5, Seed: 1})
	stores := quorum.InstallStores(k2)
	firstThrough := false
	var late Decision
	k2.Spawn(0, func(p *sim.Proc) {
		c := quorum.NewComm(p, stores[0])
		s := NewState(p, "doorway")
		if Doorway(c, "elect", s) != Proceed {
			t.Error("first participant should pass the doorway")
		}
		firstThrough = true
	})
	k2.Spawn(1, func(p *sim.Proc) {
		c := quorum.NewComm(p, stores[1])
		p.Await(func() bool { return firstThrough })
		s := NewState(p, "doorway")
		late = Doorway(c, "elect", s)
	})
	if _, err := k2.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if late != Lose {
		t.Fatalf("late participant returned %v, want LOSE", late)
	}
}

func TestLinearizabilityLateComersLose(t *testing.T) {
	// Lemma A.3's mechanism: if a winner completed its entire execution
	// before another participant is started, the latecomer must lose.
	k2 := sim.NewKernel(sim.Config{N: 6, Seed: 2})
	stores := quorum.InstallStores(k2)
	decisions := make(map[sim.ProcID]Decision)
	for i := 0; i < 2; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			decisions[id] = LeaderElect(c, "elect")
		})
	}
	// Adversary: run participant 0 to completion before starting 1.
	adv := sim.AdversaryFunc(func(k *sim.Kernel) sim.Action {
		if !k.Started(0) {
			return sim.Start{Proc: 0}
		}
		if !k.Done(0) {
			if k.Steppable(0) {
				return sim.Step{Proc: 0}
			}
			return k.FairActionExcludingStarts()
		}
		if !k.Started(1) {
			return sim.Start{Proc: 1}
		}
		return nil
	})
	if _, err := k2.Run(adv); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if decisions[0] != Win {
		t.Fatalf("solo-finishing participant returned %v, want WIN", decisions[0])
	}
	if decisions[1] != Lose {
		t.Fatalf("latecomer returned %v, want LOSE", decisions[1])
	}
}

func TestPreRoundRules(t *testing.T) {
	// Drive PreRound through its three outcomes using two participants with
	// controlled rounds.
	k2 := sim.NewKernel(sim.Config{N: 4, Seed: 3})
	stores := quorum.InstallStores(k2)
	aheadDone := false
	var lateDecision, aheadDecision Decision
	k2.Spawn(0, func(p *sim.Proc) {
		c := quorum.NewComm(p, stores[0])
		s := NewState(p, "preround")
		// Rounds 1..3 solo: R stays 0, so round 1 proceeds (R=0 ≥ r−1=0),
		// and round 2 wins (R=0 < 1).
		if got := PreRound(c, "e", 1, s); got != Proceed {
			t.Errorf("round 1 solo = %v, want PROCEED", got)
		}
		aheadDecision = PreRound(c, "e", 2, s)
		aheadDone = true
	})
	k2.Spawn(1, func(p *sim.Proc) {
		c := quorum.NewComm(p, stores[1])
		p.Await(func() bool { return aheadDone })
		s := NewState(p, "preround")
		lateDecision = PreRound(c, "e", 1, s) // sees R = 2 > 1: lose
	})
	if _, err := k2.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if aheadDecision != Win {
		t.Fatalf("ahead participant round 2 = %v, want WIN", aheadDecision)
	}
	if lateDecision != Lose {
		t.Fatalf("behind participant = %v, want LOSE", lateDecision)
	}
}

func TestElectionDeterministicForSeed(t *testing.T) {
	a := runElection(16, 16, 77, nil)
	b := runElection(16, 16, 77, nil)
	checkElection(t, a, 16)
	checkElection(t, b, 16)
	for id, d := range a.decisions {
		if b.decisions[id] != d {
			t.Fatalf("decision of %d differs across identical runs", id)
		}
	}
	if a.stats.MessagesSent != b.stats.MessagesSent || a.stats.Actions != b.stats.Actions {
		t.Fatal("stats differ across identical runs")
	}
}

func TestElectionSeedsDiffer(t *testing.T) {
	// Different seeds should (generically) produce different executions —
	// guards against accidentally ignoring the seed.
	a := runElection(16, 16, 1, nil)
	b := runElection(16, 16, 2, nil)
	if a.stats.MessagesSent == b.stats.MessagesSent && a.stats.Actions == b.stats.Actions {
		t.Skip("seeds coincidentally identical; acceptable but unexpected")
	}
}
