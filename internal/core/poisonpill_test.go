package core

import (
	"math"
	"testing"
)

func TestPoisonPillAtLeastOneSurvivor(t *testing.T) {
	// Claim 3.1: if all participants return, at least one survives.
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33} {
		for seed := int64(0); seed < 10; seed++ {
			outcomes, _, err := runSift(n, n, seed, nil, false)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if survivors(outcomes) < 1 {
				t.Fatalf("n=%d seed=%d: zero survivors violates Claim 3.1", n, seed)
			}
		}
	}
}

func TestPoisonPillHighPriorityAlwaysSurvives(t *testing.T) {
	// "processors with high priority always survive" (proof of Claim 3.1).
	for seed := int64(0); seed < 20; seed++ {
		const n = 16
		k2, outcomes, states := instrumentedSift(t, n, seed, false)
		_ = k2
		for id, o := range outcomes {
			if states[id].Flip == 1 && o != Survive {
				t.Fatalf("seed=%d: high-priority processor %d died", seed, id)
			}
		}
	}
}

func TestPoisonPillExpectedSurvivorsSqrtN(t *testing.T) {
	// Claim 3.2: E[survivors] = O(√n). Fair schedule, fixed seeds, generous
	// constant so the test is deterministic and robust.
	const n = 256
	const trials = 30
	total := 0
	for seed := int64(0); seed < trials; seed++ {
		outcomes, _, err := runSift(n, n, seed, nil, false)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		total += survivors(outcomes)
	}
	mean := float64(total) / trials
	bound := 4*math.Sqrt(n) + 8
	if mean > bound {
		t.Fatalf("mean survivors %.1f exceeds O(√n) bound %.1f", mean, bound)
	}
	if mean < 1 {
		t.Fatalf("mean survivors %.2f below 1", mean)
	}
}

func TestHetPoisonPillAtLeastOneSurvivor(t *testing.T) {
	// The Claim 3.1 argument carries over to the heterogeneous variant.
	for _, n := range []int{1, 2, 3, 4, 7, 16, 32} {
		for seed := int64(0); seed < 10; seed++ {
			outcomes, _, err := runSift(n, n, seed, nil, true)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if survivors(outcomes) < 1 {
				t.Fatalf("n=%d seed=%d: zero survivors", n, seed)
			}
		}
	}
}

func TestHetPoisonPillPolylogSurvivors(t *testing.T) {
	// Lemmas 3.6 + 3.7: E[survivors] = O(log² k). At k = 256 the bound with
	// a small constant is far below √k = 16, distinguishing it from the
	// basic technique.
	const n = 256
	const trials = 30
	total := 0
	for seed := int64(0); seed < trials; seed++ {
		outcomes, _, err := runSift(n, n, seed, nil, true)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		total += survivors(outcomes)
	}
	mean := float64(total) / trials
	lg := math.Log2(n)
	bound := 2*lg*lg + 8
	if mean > bound {
		t.Fatalf("mean survivors %.1f exceeds O(log²k) bound %.1f", mean, bound)
	}
}

func TestHetPoisonPillSoloParticipantAlwaysSurvives(t *testing.T) {
	// |ℓ| = 1 forces probability 1 (line 18): a lone participant flips high
	// priority and survives deterministically.
	for seed := int64(0); seed < 5; seed++ {
		outcomes, _, err := runSift(8, 1, seed, nil, true)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if outcomes[0] != Survive {
			t.Fatalf("seed=%d: solo participant died", seed)
		}
	}
}

func TestHetPoisonPillEllGrowsWithOrder(t *testing.T) {
	// Claim 3.4: a processor completing the commit propagation later sees at
	// least as many participants. Under the fair (round-robin-ish)
	// scheduler every participant must see at least itself.
	const n = 16
	_, _, states := instrumentedSift(t, n, 3, true)
	for id, st := range states {
		if st.Ell < 1 {
			t.Fatalf("processor %d computed |ℓ| = %d < 1", id, st.Ell)
		}
		if st.Ell > n {
			t.Fatalf("processor %d computed |ℓ| = %d > n", id, st.Ell)
		}
	}
}

func TestSiftStatePublished(t *testing.T) {
	_, outcomes, states := instrumentedSift(t, 8, 1, true)
	for id, st := range states {
		if st.Sifts != 1 {
			t.Fatalf("processor %d recorded %d sifts, want 1", id, st.Sifts)
		}
		if st.Flip != 0 && st.Flip != 1 {
			t.Fatalf("processor %d flip = %d", id, st.Flip)
		}
		if st.LastOutcome != outcomes[id] {
			t.Fatalf("processor %d state outcome %v != returned %v", id, st.LastOutcome, outcomes[id])
		}
	}
}

func TestExistsStrongWithoutLowLogic(t *testing.T) {
	mk := func(owner int, stat StatKind) viewEntry { return viewEntry{owner: owner, stat: stat} }
	cases := []struct {
		name    string
		entries []viewEntry
		want    bool
	}{
		{"empty", nil, false},
		{"only low", []viewEntry{mk(1, LowPri)}, false},
		{"commit alone kills", []viewEntry{mk(1, Commit)}, true},
		{"high alone kills", []viewEntry{mk(1, HighPri)}, true},
		{"commit masked by low", []viewEntry{mk(1, Commit), mk(1, LowPri)}, false},
		{"high masked by low", []viewEntry{mk(1, HighPri), mk(1, LowPri)}, false},
		{"mixed: one masked one not", []viewEntry{mk(1, Commit), mk(1, LowPri), mk(2, HighPri)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			views := buildViews(4, tc.entries)
			if got := existsStrongWithoutLow(4, views); got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSomeInLWithoutLowUsesLists(t *testing.T) {
	// A processor that appears only inside another's ℓ list — never with
	// its own status — must still force death (Fig 2 line 26: L unions the
	// observed lists).
	views := buildViews(4, []viewEntry{{owner: 1, stat: LowPri, list: []int{1, 2}}})
	if !someInLWithoutLow(4, views) {
		t.Fatal("processor 2 is in L via a list and has no low priority: must die")
	}
	// If 2's low priority is also visible, survival is allowed.
	views = buildViews(4, []viewEntry{
		{owner: 1, stat: LowPri, list: []int{1, 2}},
		{owner: 2, stat: LowPri, list: []int{2}},
	})
	if someInLWithoutLow(4, views) {
		t.Fatal("all of L has visible low priority: must survive")
	}
}

func TestParticipantsSeenSortedUnique(t *testing.T) {
	views := buildViews(8, []viewEntry{
		{owner: 5, stat: Commit},
		{owner: 2, stat: Commit},
		{owner: 5, stat: LowPri},
	})
	got := participantsSeen(8, views)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("participantsSeen = %v, want [2 5]", got)
	}
}
