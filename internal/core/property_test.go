package core

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/quorum"
	"repro/internal/sim"
)

func TestClaim34SequentialOrderDeterminesEll(t *testing.T) {
	// Claim 3.4: a processor that completes its Commit propagation no later
	// than p appears in p's ℓ list. Under the strictly sequential schedule
	// processor i runs after processors 0..i−1 finished, so it must compute
	// |ℓ| = i+1 exactly — a sharp, deterministic check of the claim.
	const n = 24
	k2 := sim.NewKernel(sim.Config{N: n, Seed: 4})
	stores := quorum.InstallStores(k2)
	states := make(map[sim.ProcID]*State, n)
	for i := 0; i < n; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := NewState(p, "het")
			states[id] = s
			HetPoisonPill(c, "pp", s)
		})
	}
	if _, err := k2.Run(adversary.NewSequential(nil)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		if got := states[sim.ProcID(i)].Ell; got != i+1 {
			t.Fatalf("sequential processor %d computed |ℓ| = %d, want %d (Claim 3.4)", i, got, i+1)
		}
	}
}

func TestClaim33ClosureOfSurvivorLists(t *testing.T) {
	// Claim 3.3 (closure): let U be the union of the ℓ lists propagated by
	// low-priority survivors. Every processor named in the ℓ list of a
	// member of U must itself have flipped 0. We verify the observable
	// consequence on real executions: every low-priority survivor's ℓ list
	// contains only processors that flipped 0 — a high-priority member
	// would have forced the survivor to die.
	for seed := int64(0); seed < 10; seed++ {
		const n = 32
		k2 := sim.NewKernel(sim.Config{N: n, Seed: seed})
		stores := quorum.InstallStores(k2)
		states := make(map[sim.ProcID]*State, n)
		outcomes := make(map[sim.ProcID]Outcome, n)
		lists := make(map[sim.ProcID][]sim.ProcID, n)
		for i := 0; i < n; i++ {
			id := sim.ProcID(i)
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := NewState(p, "het")
				states[id] = s
				outcomes[id] = HetPoisonPill(c, "pp", s)
				if v, ok := stores[id].Local("pp/status", id); ok {
					if st, ok := v.(Status); ok {
						lists[id] = st.List
					}
				}
			})
		}
		if _, err := k2.Run(nil); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		for id, o := range outcomes {
			if o != Survive || states[id].Flip != 0 {
				continue
			}
			for _, q := range lists[id] {
				if states[q] != nil && states[q].Flip == 1 {
					t.Fatalf("seed=%d: low-priority survivor %d has 1-flipper %d in its ℓ list",
						seed, id, q)
				}
			}
		}
	}
}

func TestElectionPropertyRandomConfigs(t *testing.T) {
	// Property-based sweep: for arbitrary (n, k, seed) the election always
	// has exactly one winner and everyone returns.
	f := func(nRaw, kRaw uint8, seed int64) bool {
		n := int(nRaw)%24 + 1
		k := int(kRaw)%n + 1
		r := runElection(n, k, seed, nil)
		if r.err != nil {
			return false
		}
		winners := 0
		for _, d := range r.decisions {
			if d == Win {
				winners++
			}
		}
		return winners == 1 && len(r.decisions) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSiftPropertyAlwaysOneSurvivor(t *testing.T) {
	// Property-based Claim 3.1 over both sift variants and random sizes.
	f := func(nRaw uint8, seed int64, het bool) bool {
		n := int(nRaw)%20 + 1
		outcomes, _, err := runSift(n, n, seed, nil, het)
		if err != nil {
			return false
		}
		return survivors(outcomes) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusWireSize(t *testing.T) {
	// Exact internal/wire codec body sizes: stat byte + list-length uvarint
	// + one uvarint per listed id. The codec's property tests pin that
	// these match the encoder byte for byte.
	if got := (Status{Stat: Commit}).WireSize(); got != 2 {
		t.Fatalf("commit status = %d bytes, want 2 (stat byte + empty-list uvarint)", got)
	}
	s := Status{Stat: LowPri, List: []sim.ProcID{1, 2, 3}}
	if s.WireSize() != 1+1+3 {
		t.Fatalf("status with 3-entry list = %d bytes, want 5", s.WireSize())
	}
	wide := Status{Stat: HighPri, List: []sim.ProcID{200}} // 200 needs a 2-byte uvarint
	if wide.WireSize() != 1+1+2 {
		t.Fatalf("status listing processor 200 = %d bytes, want 4", wide.WireSize())
	}
}

func TestEnumStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Survive.String(), "SURVIVE"},
		{Die.String(), "DIE"},
		{Outcome(0).String(), "undecided"},
		{Win.String(), "WIN"},
		{Lose.String(), "LOSE"},
		{Proceed.String(), "PROCEED"},
		{Decision(0).String(), "undecided"},
		{Commit.String(), "Commit"},
		{LowPri.String(), "Low-Pri"},
		{HighPri.String(), "High-Pri"},
		{StatKind(0).String(), "⊥"},
		{StageDoorway.String(), "doorway"},
		{StageDone.String(), "done"},
		{Stage(0).String(), "unknown"},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Fatalf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}

func TestStateProgressMonotone(t *testing.T) {
	s := &State{}
	last := s.Progress
	for _, st := range []Stage{StageDoorway, StagePreRound, StageCommit, StageDone} {
		s.setStage(st)
		if s.Progress <= last {
			t.Fatal("Progress not strictly increasing")
		}
		last = s.Progress
	}
}
