// Package fault is the scenario engine of the live backend: declarative
// descriptions of the degraded conditions the paper's model allows — crash
// faults and adversarial message delay — materialized into concrete per-run
// injection plans for internal/live.
//
// The paper's adversary may delay any message arbitrarily and crash up to
// ⌈n/2⌉−1 processors (Section 2); the discrete-event backend realizes that
// adversary exactly, one scheduling decision at a time. The live backend has
// no scheduler to subvert — the OS interleaves goroutines for real — so this
// package attacks it the only way the model permits: by injecting real
// wall-clock latency and real crashes into the channel-backed quorum,
// without touching algorithm code.
//
// A Scenario describes one adversarial environment:
//
//   - crash schedules: up to ⌈n/2⌉−1 processors stop at randomized times
//     (a crashed processor's server drops every request unanswered and its
//     algorithm goroutine is killed at its next backend interaction);
//   - crash recovery: victims' replica halves rejoin at planned times — the
//     participant stays dead (a crash is forever in the model), but its
//     server answers quorum traffic again, so more than ⌈n/2⌉−1 crashes
//     are survivable as long as enough replicas come back;
//   - network partitions: a timed window during which the processor set is
//     split in two and every cross-side link drops its messages; a healing
//     partition ends at a planned time, a non-healing one starves the
//     minority side's clients of a quorum forever;
//   - per-link flaky loss: an asymmetric drop probability per directed
//     (src, dst) link, applied to requests at the send seam and to replies
//     at the transport's pre-decode FrameFilter seam;
//   - per-link delay distributions: fixed, uniform, or heavy-tailed
//     (Pareto) latency added to every quorum message on send;
//   - slow processors: designated processors pay an extra delay on every
//     outgoing message and local coin flip;
//   - reordering: a fraction of messages take an extra randomized delay,
//     explicitly shuffling delivery order relative to program order.
//
// Scenario.Plan materializes a Scenario for one (n, seed) run: victims,
// crash and rejoin times, partition sides, drop matrices and slow sets are
// drawn deterministically from the seed, so a campaign over sharded seeds
// explores the scenario's space reproducibly.
//
// The electability contract: a scenario that does not set NoQuorumOK claims
// every client can always (eventually) assemble a majority quorum — Validate
// enforces that its permanent faults stay under ⌈n/2⌉−1, and a run ending
// without a decision is invalid. A NoQuorumOK scenario may starve clients
// (a non-healing partition's minority side, permanent loss); the backends
// then unwind exactly the starved participants with a typed NoQuorumError —
// Plan.Electable decides, per client, which outcome is the valid one. The
// paper's safety guarantees (unique winner among survivors, at least one
// sift survivor) must hold under every scenario this package can express;
// the conformance suite in internal/live checks that under the race
// detector, and cmd/livesim's chaos grid sweeps the full cross product.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// DistKind selects the shape of a delay distribution.
type DistKind int

const (
	// None: no delay (the zero Dist).
	None DistKind = iota
	// Fixed: exactly Base on every sample.
	Fixed
	// Uniform: Base plus a uniform draw from [0, Jitter).
	Uniform
	// Pareto: Base plus a heavy-tailed Pareto draw with scale Jitter and
	// tail index Alpha — small Alpha (1 < α ≤ 2) gives the occasional
	// extreme straggler that dominates the latency tail.
	Pareto
)

func (k DistKind) String() string {
	switch k {
	case None:
		return "none"
	case Fixed:
		return "fixed"
	case Uniform:
		return "uniform"
	case Pareto:
		return "pareto"
	default:
		return "unknown"
	}
}

// DefaultCap bounds every delay sample whose distribution has an unbounded
// tail and no explicit Cap. It keeps heavy-tailed runs finite: a live run
// must quiesce before Shutdown can close the mailboxes.
const DefaultCap = 25 * time.Millisecond

// Dist is a latency distribution. The zero value samples zero delay.
type Dist struct {
	// Kind selects the shape.
	Kind DistKind
	// Base is the minimum delay of every sample.
	Base time.Duration
	// Jitter is the uniform width (Uniform) or Pareto scale (Pareto).
	Jitter time.Duration
	// Alpha is the Pareto tail index; values ≤ 1 have infinite mean and
	// are clamped to just above 1.
	Alpha float64
	// Cap clamps every sample (0 = DefaultCap for Pareto, uncapped for the
	// bounded kinds).
	Cap time.Duration
}

// Sample draws one delay. rng must be owned by the calling goroutine.
func (d Dist) Sample(rng *rand.Rand) time.Duration {
	var v time.Duration
	switch d.Kind {
	case None:
		return 0
	case Fixed:
		v = d.Base
	case Uniform:
		v = d.Base
		if d.Jitter > 0 {
			v += time.Duration(rng.Int63n(int64(d.Jitter)))
		}
	case Pareto:
		alpha := d.Alpha
		if alpha <= 1 {
			alpha = 1.05
		}
		// Inverse-CDF Pareto with minimum 0: Jitter·(u^(−1/α) − 1).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		v = d.Base + time.Duration(float64(d.Jitter)*(math.Pow(u, -1/alpha)-1))
		cap := d.Cap
		if cap == 0 {
			cap = DefaultCap
		}
		if v > cap {
			v = cap
		}
		return v
	}
	if d.Cap > 0 && v > d.Cap {
		v = d.Cap
	}
	return v
}

// Active reports whether the distribution can produce a nonzero delay.
func (d Dist) Active() bool { return d.Kind != None && (d.Base > 0 || d.Jitter > 0) }

// CrashMax is the sentinel Scenario.Crashes value meaning "as many crashes
// as the model allows": MaxCrashes(n), resolved at Plan time.
const CrashMax = -1

// SlowThirdOfN is the sentinel Scenario.SlowProcs value meaning "one third
// of the system (rounded up)", resolved at Plan time.
const SlowThirdOfN = -1

// MinorityMax is the sentinel PartitionSpec.Minority value meaning "the
// largest minority the model tolerates": MaxCrashes(n), resolved at Plan
// time.
const MinorityMax = -1

// AllLinks is the sentinel Scenario.LossLinks value meaning "every directed
// link", resolved at Plan time.
const AllLinks = -1

// MaxCrashes is the paper's fault bound ⌈n/2⌉−1: any more crashes and a
// majority quorum becomes unreachable, so communicate could block forever.
func MaxCrashes(n int) int { return (n - 1) / 2 }

// DefaultCrashWindow spreads crash times when a Scenario sets none. It sits
// inside the wall-clock span of benchmark-scale elections so crashes land
// mid-protocol rather than after the decision.
const DefaultCrashWindow = 2 * time.Millisecond

// DefaultRetransmitTick paces the quorum waits' retransmission loop when a
// plan needs one (partitions, loss, recovery) and the scenario sets no
// explicit Retransmit period. Requests are idempotent register reads and
// writes, so retransmitting is safe; the tick just has to be short against
// the fault windows it rides out.
const DefaultRetransmitTick = 2 * time.Millisecond

// NoQuorumGrace is how long after a client provably loses its last path to
// a majority (Plan.StarveAt) the backends wait before unwinding it with a
// NoQuorumError. The grace absorbs replies already in flight at the starve
// instant; it only delays runs that genuinely end in a no-quorum outcome.
const NoQuorumGrace = 60 * time.Millisecond

// ClientSide controls which side of a partition the participants land on.
// Participants are, by the backends' convention, the K lowest processor
// ids; the drawing policies below use that to force clients onto a side
// without the plan having to know K.
type ClientSide int

const (
	// SideAny draws the minority uniformly from all n processors; clients
	// may land on either side.
	SideAny ClientSide = iota
	// SideMajority draws the minority from the highest processor ids, so
	// low-id participants (clients) stay on the majority side whenever
	// K ≤ ⌈n/2⌉.
	SideMajority
	// SideMinority seeds the minority with processor 0 (always a
	// participant), isolating at least one client from the majority.
	SideMinority
)

// PartitionSpec declaratively describes a network partition: during
// [Start, Heal) the processor set is split into a minority and a majority
// side, and every message crossing the split is dropped. Heal == 0 means
// the partition never heals — the minority side's clients are then starved
// of a quorum forever, which requires the scenario to set NoQuorumOK.
type PartitionSpec struct {
	// Start is when the partition opens, relative to the run start.
	Start time.Duration
	// Heal is when it closes; 0 = never. A healing partition must satisfy
	// Heal > Start.
	Heal time.Duration
	// Minority is the number of processors on the small side, in
	// [1, ⌈n/2⌉−1] (MinorityMax resolves to that bound) — the majority side
	// always keeps a full quorum of replicas.
	Minority int
	// Clients picks the side the participants land on; see ClientSide.
	Clients ClientSide
}

// NoQuorumError unwinds a participant whose quorum waits can never again
// complete — a client on the wrong side of a non-healing partition, or one
// whose live links fell below a majority for good. The backends recover it
// around the participant's goroutine and report the processor in
// Result.NoQuorum; it is the typed "explicit no-quorum outcome" of the
// electability contract, never a silent hang and never a second winner.
type NoQuorumError struct {
	// Proc is the starved participant.
	Proc int
}

func (e *NoQuorumError) Error() string {
	return fmt.Sprintf("fault: processor %d starved of a majority quorum (partitioned or disconnected for good)", e.Proc)
}

// Scenario declaratively describes one adversarial environment for a live
// run. The zero value is the fault-free scenario (no injection at all).
type Scenario struct {
	// Name labels the scenario in campaign reports and CLI output.
	Name string

	// Crashes is the number of processors to crash, at most ⌈n/2⌉−1
	// (CrashMax resolves to exactly that bound) unless RecoverAfter is set —
	// recovering replicas may exceed the bound, since the bound only limits
	// *permanent* crashes. Victims are drawn uniformly from all n
	// processors at Plan time.
	Crashes int
	// CrashWindow bounds the randomized crash times: each victim stops at
	// a uniform time in [0, CrashWindow). 0 = DefaultCrashWindow.
	CrashWindow time.Duration

	// RecoverAfter, when positive, schedules every crash victim's replica
	// to rejoin RecoverAfter (plus a uniform draw from [0, RecoverJitter))
	// after its crash time: the server half answers quorum traffic again —
	// live backend mailboxes reopen, electd servers restart and their
	// listeners and client connections are redialed — while the
	// participant half stays dead, as the model demands.
	RecoverAfter time.Duration
	// RecoverJitter randomizes the rejoin times; see RecoverAfter.
	RecoverJitter time.Duration

	// Partition, when set, splits the system for a window; see
	// PartitionSpec.
	Partition *PartitionSpec

	// LossProb is the per-message drop probability of each flaky directed
	// link, in [0, 1]. Requests are dropped at the send seam, replies at
	// the transport's pre-decode FrameFilter seam, so the loss is
	// asymmetric per (src, dst) direction.
	LossProb float64
	// LossLinks is the number of directed (src, dst) links afflicted,
	// drawn uniformly at Plan time (AllLinks = every link, counts beyond
	// n·(n−1) are clamped). LossProb and LossLinks must be set together.
	LossLinks int

	// NoQuorumOK declares that the scenario may legitimately starve some
	// clients of a quorum forever (a non-healing partition's minority
	// side, total loss on too many links): starved participants then
	// unwind with a typed NoQuorumError instead of a decision, and a run
	// is valid if every other participant still agrees on at most one
	// winner. Without it the scenario claims electability — Validate
	// rejects configurations whose permanent faults could exceed ⌈n/2⌉−1
	// from any client's point of view.
	NoQuorumOK bool

	// Retransmit overrides the quorum waits' retransmission period for
	// plans that need one (0 = DefaultRetransmitTick).
	Retransmit time.Duration

	// Link is the per-message delay distribution applied to every quorum
	// request on send (the round trip's latency is modelled on the forward
	// path, keeping servers reply-never-block).
	Link Dist

	// SlowProcs designates that many processors (drawn at Plan time;
	// SlowThirdOfN resolves to ⌈n/3⌉) as throttled: every outgoing message
	// and every local coin flip pays an extra Slow delay.
	SlowProcs int
	// Slow is the throttled processors' extra delay distribution.
	Slow Dist

	// ReorderProb is the probability that a message takes an extra Reorder
	// delay, shuffling delivery order relative to program order.
	ReorderProb float64
	// Reorder is the extra delay of reordered messages.
	Reorder Dist
}

// Active reports whether the scenario injects anything at all.
func (s Scenario) Active() bool {
	return s.Crashes != 0 || s.Link.Active() ||
		s.Partition != nil ||
		(s.LossProb > 0 && s.LossLinks != 0) ||
		(s.SlowProcs != 0 && s.Slow.Active()) ||
		(s.ReorderProb > 0 && s.Reorder.Active())
}

// LinkOnly reports whether every fault the scenario injects lives on the
// links or inside this run's own processors — partitions, loss, delays,
// slow sets, reordering — with no crashes. Link-only scenarios are safe on
// a shared multiplexed cluster: the cuts and drops are applied at the
// per-election client seams, so sibling elections never feel them, whereas
// a crash would fail a server every election depends on.
func (s Scenario) LinkOnly() bool { return s.Crashes == 0 }

// Validate checks the scenario against a system of size n.
func (s Scenario) Validate(n int) error {
	if n < 1 {
		return fmt.Errorf("fault: system size %d must be at least 1", n)
	}
	if s.Crashes != CrashMax {
		if s.Crashes < 0 {
			return fmt.Errorf("fault: crash count %d must be ≥ 0 (or CrashMax)", s.Crashes)
		}
		if s.Crashes > n {
			return fmt.Errorf("fault: %d crashes exceed system size %d", s.Crashes, n)
		}
		if max := MaxCrashes(n); s.Crashes > max && s.RecoverAfter <= 0 {
			return fmt.Errorf("fault: %d crashes exceed the model's bound ⌈n/2⌉−1 = %d at n=%d (a majority quorum must stay reachable; set RecoverAfter to exceed the bound with recovering replicas)",
				s.Crashes, max, n)
		}
	}
	if s.RecoverAfter < 0 || s.RecoverJitter < 0 {
		return fmt.Errorf("fault: negative recovery timing (after %v, jitter %v)", s.RecoverAfter, s.RecoverJitter)
	}
	if s.RecoverAfter > 0 && s.Crashes == 0 {
		return fmt.Errorf("fault: RecoverAfter without crashes has nothing to recover")
	}
	if p := s.Partition; p != nil {
		if p.Start < 0 || p.Heal < 0 {
			return fmt.Errorf("fault: negative partition window [%v, %v)", p.Start, p.Heal)
		}
		if p.Heal > 0 && p.Heal <= p.Start {
			return fmt.Errorf("fault: partition heals at %v, before it starts at %v", p.Heal, p.Start)
		}
		m := p.Minority
		if m == MinorityMax {
			m = MaxCrashes(n)
		}
		if m < 1 {
			return fmt.Errorf("fault: partition minority %d must be ≥ 1 (n=%d is too small to split)", p.Minority, n)
		}
		if max := MaxCrashes(n); m > max {
			return fmt.Errorf("fault: partition minority %d exceeds ⌈n/2⌉−1 = %d at n=%d (the majority side must keep a quorum of replicas)",
				m, max, n)
		}
	}
	if s.LossProb < 0 || s.LossProb > 1 {
		return fmt.Errorf("fault: loss probability %v outside [0, 1]", s.LossProb)
	}
	if (s.LossProb > 0) != (s.LossLinks != 0) {
		return fmt.Errorf("fault: LossProb (%v) and LossLinks (%d) must be set together", s.LossProb, s.LossLinks)
	}
	if s.LossLinks != AllLinks && s.LossLinks < 0 {
		return fmt.Errorf("fault: flaky-link count %d must be ≥ 0 (or AllLinks)", s.LossLinks)
	}
	if s.Retransmit < 0 {
		return fmt.Errorf("fault: negative retransmit period %v", s.Retransmit)
	}
	if !s.NoQuorumOK {
		// The electability claim: no client may ever lose its last path to
		// a majority for good. Temporary faults (healing partitions,
		// recovering crashes, sub-1 loss ridden out by retransmission) are
		// fine; permanent ones must stay within the crash bound even when
		// they all land on one client's side of the split.
		if s.Partition != nil && s.Partition.Heal == 0 {
			return fmt.Errorf("fault: a non-healing partition starves its minority side's clients; set NoQuorumOK")
		}
		if s.LossProb >= 1 {
			return fmt.Errorf("fault: total loss (LossProb 1) can sever a client's last quorum path; set NoQuorumOK")
		}
		permanent := 0
		if s.RecoverAfter <= 0 {
			permanent = s.Crashes
			if permanent == CrashMax {
				permanent = MaxCrashes(n)
			}
		}
		minority := 0
		if s.Partition != nil {
			minority = s.Partition.Minority
			if minority == MinorityMax {
				minority = MaxCrashes(n)
			}
		}
		if max := MaxCrashes(n); permanent+minority > max {
			return fmt.Errorf("fault: %d permanent crashes plus a partition minority of %d exceed ⌈n/2⌉−1 = %d at n=%d — a client could starve during the window; set NoQuorumOK or make the faults temporary",
				permanent, minority, max, n)
		}
	}
	if s.SlowProcs != SlowThirdOfN && s.SlowProcs < 0 {
		return fmt.Errorf("fault: slow-processor count %d must be ≥ 0 (or SlowThirdOfN)", s.SlowProcs)
	}
	if s.SlowProcs > n {
		return fmt.Errorf("fault: %d slow processors exceed system size %d", s.SlowProcs, n)
	}
	if s.ReorderProb < 0 || s.ReorderProb > 1 {
		return fmt.Errorf("fault: reorder probability %v outside [0, 1]", s.ReorderProb)
	}
	if s.CrashWindow < 0 {
		return fmt.Errorf("fault: negative crash window %v", s.CrashWindow)
	}
	return nil
}

// Crash schedules one processor's failure: Proc stops at wall-clock time At
// after the run starts.
type Crash struct {
	Proc int
	At   time.Duration
}

// Recovery schedules one crashed processor's replica rejoin: Proc's server
// half answers again from wall-clock time At after the run starts. The
// participant half stays dead — the model has no resurrection.
type Recovery struct {
	Proc int
	At   time.Duration
}

// PartitionPlan is a PartitionSpec materialized for one run: the concrete
// window and side assignment.
type PartitionPlan struct {
	// Start and End bound the window [Start, End) during which cross-side
	// messages are dropped; End == 0 means the partition never heals.
	Start, End time.Duration
	// Minority flags the processors on the small side.
	Minority []bool
}

// Plan is a Scenario materialized for one run: concrete victims, crash and
// rejoin times, partition sides, drop matrices and slow sets, drawn
// deterministically from (n, seed). A nil *Plan is the fault-free plan.
type Plan struct {
	// Scenario is the description this plan realizes.
	Scenario Scenario
	// N is the system size the plan was drawn for.
	N int
	// Crashes lists the victims and their randomized crash times.
	Crashes []Crash
	// Recoveries lists the victims' replica rejoin times, one per crash
	// when the scenario sets RecoverAfter, empty otherwise.
	Recoveries []Recovery
	// Partition is the materialized partition window and sides, nil when
	// the scenario has none.
	Partition *PartitionPlan
	// Drop maps a directed link (src·N + dst) to its per-message drop
	// probability; links absent from the map are lossless.
	Drop map[int]float64
	// Slow flags the throttled processors.
	Slow []bool
}

// Plan materializes the scenario for one run of n processors. It returns
// (nil, nil) for an inactive scenario, so the backend's fault-free hot path
// stays branch-on-nil cheap.
func (s Scenario) Plan(n int, seed int64) (*Plan, error) {
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	if !s.Active() {
		return nil, nil
	}
	// A dedicated PRNG: plan drawing must not perturb the run's coin-flip
	// streams, which the backend derives from the same seed.
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	pl := &Plan{Scenario: s, N: n}

	crashes := s.Crashes
	if crashes == CrashMax {
		crashes = MaxCrashes(n)
	}
	window := s.CrashWindow
	if window == 0 {
		window = DefaultCrashWindow
	}
	if crashes > n {
		crashes = n
	}
	if crashes > 0 {
		for _, victim := range rng.Perm(n)[:crashes] {
			pl.Crashes = append(pl.Crashes, Crash{
				Proc: victim,
				At:   time.Duration(rng.Int63n(int64(window))),
			})
		}
	}
	if s.RecoverAfter > 0 {
		for _, cr := range pl.Crashes {
			at := cr.At + s.RecoverAfter
			if s.RecoverJitter > 0 {
				at += time.Duration(rng.Int63n(int64(s.RecoverJitter)))
			}
			pl.Recoveries = append(pl.Recoveries, Recovery{Proc: cr.Proc, At: at})
		}
	}

	slow := s.SlowProcs
	if slow == SlowThirdOfN {
		slow = (n + 2) / 3
	}
	if slow > n {
		slow = n
	}
	if slow > 0 && s.Slow.Active() {
		pl.Slow = make([]bool, n)
		for _, i := range rng.Perm(n)[:slow] {
			pl.Slow[i] = true
		}
	}

	if p := s.Partition; p != nil {
		m := p.Minority
		if m == MinorityMax {
			m = MaxCrashes(n)
		}
		part := &PartitionPlan{Start: p.Start, End: p.Heal, Minority: make([]bool, n)}
		switch p.Clients {
		case SideMinority:
			// Processor 0 is always a participant; the rest of the minority
			// is drawn from everyone else.
			part.Minority[0] = true
			for _, i := range rng.Perm(n - 1)[:m-1] {
				part.Minority[i+1] = true
			}
		case SideMajority:
			// Draw from the top half of the id space: the minority bound
			// ⌈n/2⌉−1 never exceeds the ⌊n/2⌋ ids there, so low-id
			// participants stay on the majority side.
			high := n - (n+1)/2
			for _, i := range rng.Perm(high)[:m] {
				part.Minority[(n+1)/2+i] = true
			}
		default: // SideAny
			for _, i := range rng.Perm(n)[:m] {
				part.Minority[i] = true
			}
		}
		pl.Partition = part
	}

	if s.LossProb > 0 && s.LossLinks != 0 {
		links := n * (n - 1)
		cnt := s.LossLinks
		if cnt == AllLinks || cnt > links {
			cnt = links
		}
		pl.Drop = make(map[int]float64, cnt)
		for _, idx := range rng.Perm(links)[:cnt] {
			// Enumerate directed pairs (src, dst), src ≠ dst: index
			// src·(n−1)+r with the diagonal skipped.
			src, r := idx/(n-1), idx%(n-1)
			dst := r
			if r >= src {
				dst = r + 1
			}
			pl.Drop[src*n+dst] = s.LossProb
		}
	}
	return pl, nil
}

// IsSlow reports whether processor i is throttled under this plan.
func (pl *Plan) IsSlow(i int) bool {
	return pl != nil && pl.Slow != nil && pl.Slow[i]
}

// SendDelay samples the injected delay for one message from processor
// "from" to processor "to": link latency, plus the slow-processor tax when
// either endpoint is throttled, plus the occasional reorder delay. rng must
// be owned by the sending goroutine.
func (pl *Plan) SendDelay(rng *rand.Rand, from, to int) time.Duration {
	if pl == nil {
		return 0
	}
	d := pl.Scenario.Link.Sample(rng)
	if pl.IsSlow(from) || pl.IsSlow(to) {
		d += pl.Scenario.Slow.Sample(rng)
	}
	if p := pl.Scenario.ReorderProb; p > 0 && rng.Float64() < p {
		d += pl.Scenario.Reorder.Sample(rng)
	}
	return d
}

// StepDelay samples the local-step throttle of processor proc (nonzero only
// for slow processors): the pause it pays at each coin flip.
func (pl *Plan) StepDelay(rng *rand.Rand, proc int) time.Duration {
	if pl == nil || !pl.IsSlow(proc) {
		return 0
	}
	return pl.Scenario.Slow.Sample(rng)
}

// CutAt reports whether the (from, to) link is severed by the partition at
// the given elapsed run time: the endpoints sit on opposite sides and the
// window is open. Self-links and same-side links are never cut.
func (pl *Plan) CutAt(from, to int, elapsed time.Duration) bool {
	if pl == nil || pl.Partition == nil {
		return false
	}
	p := pl.Partition
	if p.Minority[from] == p.Minority[to] {
		return false
	}
	return elapsed >= p.Start && (p.End == 0 || elapsed < p.End)
}

// DropProb returns the flaky-loss probability of the directed (from, to)
// link; 0 for lossless links.
func (pl *Plan) DropProb(from, to int) float64 {
	if pl == nil || pl.Drop == nil {
		return 0
	}
	return pl.Drop[from*pl.N+to]
}

// DropMsg decides the fate of one message on the directed (from, to) link
// at the given elapsed run time: true means the message is lost — severed
// by the partition window or eaten by the link's flaky loss. Both backends
// sample it per message, on requests at the send seam and on replies at
// the receive/filter seam (with from = the replying server), which is what
// makes the loss direction-asymmetric. rng must be owned or locked by the
// calling goroutine.
func (pl *Plan) DropMsg(rng *rand.Rand, from, to int, elapsed time.Duration) bool {
	if pl == nil {
		return false
	}
	if pl.CutAt(from, to, elapsed) {
		return true
	}
	if p := pl.DropProb(from, to); p > 0 && rng.Float64() < p {
		return true
	}
	return false
}

// HasLinkFaults reports whether the plan can drop messages at all
// (partition or flaky links) — the backends install their reply-direction
// filters only when it does.
func (pl *Plan) HasLinkFaults() bool {
	return pl != nil && (pl.Partition != nil || len(pl.Drop) > 0)
}

// NeedsRetransmit reports whether quorum waits must retransmit to stay
// live under this plan: with partitions, flaky links or crash-recovery, a
// request (or its reply) can be lost while its server is — or becomes —
// perfectly able to answer, and the algorithms themselves never resend.
// Pure crash/delay plans keep the retransmission machinery off: quorums
// route around permanently dead servers without it.
func (pl *Plan) NeedsRetransmit() bool {
	return pl != nil && (pl.Partition != nil || len(pl.Drop) > 0 || len(pl.Recoveries) > 0)
}

// RetransmitTick is the quorum waits' resend period under this plan.
func (pl *Plan) RetransmitTick() time.Duration {
	if pl != nil && pl.Scenario.Retransmit > 0 {
		return pl.Scenario.Retransmit
	}
	return DefaultRetransmitTick
}

// RecoveryOf returns processor proc's replica rejoin time, if one is
// planned.
func (pl *Plan) RecoveryOf(proc int) (time.Duration, bool) {
	if pl == nil {
		return 0, false
	}
	for _, rc := range pl.Recoveries {
		if rc.Proc == proc {
			return rc.At, true
		}
	}
	return 0, false
}

// lostForever reports whether the directed path client → server can ever
// carry a quorum exchange again, and if not, from which elapsed time on it
// is gone: a permanently crashed server (no recovery planned), a
// cross-side link of a non-healing partition, or total loss in either
// direction. Temporary faults — healing partitions, recovering crashes,
// sub-1 loss — are survivable by retransmission and never count.
func (pl *Plan) lostForever(client, server int) (time.Duration, bool) {
	if client == server {
		// A processor always reaches its own replica (the chan backend's
		// local quorum member, the owned cluster's paired server); if that
		// replica crashed, so did the client, and starvation is moot.
		return 0, false
	}
	at := time.Duration(math.MaxInt64)
	lost := false
	if p := pl.Partition; p != nil && p.End == 0 && p.Minority[client] != p.Minority[server] {
		at, lost = p.Start, true
	}
	if pl.DropProb(client, server) >= 1 || pl.DropProb(server, client) >= 1 {
		at, lost = 0, true
	}
	if _, recovers := pl.RecoveryOf(server); !recovers {
		for _, cr := range pl.Crashes {
			if cr.Proc == server {
				if cr.At < at {
					at = cr.At
				}
				lost = true
			}
		}
	}
	return at, lost
}

// StarveAt returns the elapsed run time from which client is permanently
// cut off from every majority quorum — fewer than ⌊n/2⌋+1 servers remain
// reachable-forever — and whether that ever happens. The runners arm their
// no-quorum abort timers at StarveAt + NoQuorumGrace; a client with no
// starve time always (eventually) completes every quorum call.
func (pl *Plan) StarveAt(client int) (time.Duration, bool) {
	if pl == nil {
		return 0, false
	}
	quorum := pl.N/2 + 1
	var losses []time.Duration
	for j := 0; j < pl.N; j++ {
		if at, lost := pl.lostForever(client, j); lost {
			losses = append(losses, at)
		}
	}
	if pl.N-len(losses) >= quorum {
		return 0, false
	}
	sort.Slice(losses, func(i, j int) bool { return losses[i] < losses[j] })
	// The loss that tips the reachable-forever count below quorum: after
	// k losses, n−k servers remain, so the (n−quorum+1)-th loss starves.
	return losses[pl.N-quorum], true
}

// Electable reports whether client can always (eventually) assemble a
// majority quorum under this plan. A !Electable client is exactly one the
// runner will abort with a NoQuorumError; a run in which an Electable
// participant fails to decide is invalid.
func (pl *Plan) Electable(client int) bool {
	_, starved := pl.StarveAt(client)
	return !starved
}
