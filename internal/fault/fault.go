// Package fault is the scenario engine of the live backend: declarative
// descriptions of the degraded conditions the paper's model allows — crash
// faults and adversarial message delay — materialized into concrete per-run
// injection plans for internal/live.
//
// The paper's adversary may delay any message arbitrarily and crash up to
// ⌈n/2⌉−1 processors (Section 2); the discrete-event backend realizes that
// adversary exactly, one scheduling decision at a time. The live backend has
// no scheduler to subvert — the OS interleaves goroutines for real — so this
// package attacks it the only way the model permits: by injecting real
// wall-clock latency and real crashes into the channel-backed quorum,
// without touching algorithm code.
//
// A Scenario describes one adversarial environment:
//
//   - crash schedules: up to ⌈n/2⌉−1 processors stop at randomized times
//     (a crashed processor's server drops every request unanswered and its
//     algorithm goroutine is killed at its next backend interaction);
//   - per-link delay distributions: fixed, uniform, or heavy-tailed
//     (Pareto) latency added to every quorum message on send;
//   - slow processors: designated processors pay an extra delay on every
//     outgoing message and local coin flip;
//   - reordering: a fraction of messages take an extra randomized delay,
//     explicitly shuffling delivery order relative to program order.
//
// Scenario.Plan materializes a Scenario for one (n, seed) run: victims,
// crash times and slow sets are drawn deterministically from the seed, so a
// campaign over sharded seeds explores the scenario's space reproducibly.
// The paper's safety guarantees (unique winner among survivors, at least one
// sift survivor) must hold under every scenario this package can express;
// the conformance suite in internal/live checks that under the race
// detector.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DistKind selects the shape of a delay distribution.
type DistKind int

const (
	// None: no delay (the zero Dist).
	None DistKind = iota
	// Fixed: exactly Base on every sample.
	Fixed
	// Uniform: Base plus a uniform draw from [0, Jitter).
	Uniform
	// Pareto: Base plus a heavy-tailed Pareto draw with scale Jitter and
	// tail index Alpha — small Alpha (1 < α ≤ 2) gives the occasional
	// extreme straggler that dominates the latency tail.
	Pareto
)

func (k DistKind) String() string {
	switch k {
	case None:
		return "none"
	case Fixed:
		return "fixed"
	case Uniform:
		return "uniform"
	case Pareto:
		return "pareto"
	default:
		return "unknown"
	}
}

// DefaultCap bounds every delay sample whose distribution has an unbounded
// tail and no explicit Cap. It keeps heavy-tailed runs finite: a live run
// must quiesce before Shutdown can close the mailboxes.
const DefaultCap = 25 * time.Millisecond

// Dist is a latency distribution. The zero value samples zero delay.
type Dist struct {
	// Kind selects the shape.
	Kind DistKind
	// Base is the minimum delay of every sample.
	Base time.Duration
	// Jitter is the uniform width (Uniform) or Pareto scale (Pareto).
	Jitter time.Duration
	// Alpha is the Pareto tail index; values ≤ 1 have infinite mean and
	// are clamped to just above 1.
	Alpha float64
	// Cap clamps every sample (0 = DefaultCap for Pareto, uncapped for the
	// bounded kinds).
	Cap time.Duration
}

// Sample draws one delay. rng must be owned by the calling goroutine.
func (d Dist) Sample(rng *rand.Rand) time.Duration {
	var v time.Duration
	switch d.Kind {
	case None:
		return 0
	case Fixed:
		v = d.Base
	case Uniform:
		v = d.Base
		if d.Jitter > 0 {
			v += time.Duration(rng.Int63n(int64(d.Jitter)))
		}
	case Pareto:
		alpha := d.Alpha
		if alpha <= 1 {
			alpha = 1.05
		}
		// Inverse-CDF Pareto with minimum 0: Jitter·(u^(−1/α) − 1).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		v = d.Base + time.Duration(float64(d.Jitter)*(math.Pow(u, -1/alpha)-1))
		cap := d.Cap
		if cap == 0 {
			cap = DefaultCap
		}
		if v > cap {
			v = cap
		}
		return v
	}
	if d.Cap > 0 && v > d.Cap {
		v = d.Cap
	}
	return v
}

// Active reports whether the distribution can produce a nonzero delay.
func (d Dist) Active() bool { return d.Kind != None && (d.Base > 0 || d.Jitter > 0) }

// CrashMax is the sentinel Scenario.Crashes value meaning "as many crashes
// as the model allows": MaxCrashes(n), resolved at Plan time.
const CrashMax = -1

// SlowThirdOfN is the sentinel Scenario.SlowProcs value meaning "one third
// of the system (rounded up)", resolved at Plan time.
const SlowThirdOfN = -1

// MaxCrashes is the paper's fault bound ⌈n/2⌉−1: any more crashes and a
// majority quorum becomes unreachable, so communicate could block forever.
func MaxCrashes(n int) int { return (n - 1) / 2 }

// DefaultCrashWindow spreads crash times when a Scenario sets none. It sits
// inside the wall-clock span of benchmark-scale elections so crashes land
// mid-protocol rather than after the decision.
const DefaultCrashWindow = 2 * time.Millisecond

// Scenario declaratively describes one adversarial environment for a live
// run. The zero value is the fault-free scenario (no injection at all).
type Scenario struct {
	// Name labels the scenario in campaign reports and CLI output.
	Name string

	// Crashes is the number of processors to crash, at most ⌈n/2⌉−1
	// (CrashMax resolves to exactly that bound). Victims are drawn
	// uniformly from all n processors at Plan time.
	Crashes int
	// CrashWindow bounds the randomized crash times: each victim stops at
	// a uniform time in [0, CrashWindow). 0 = DefaultCrashWindow.
	CrashWindow time.Duration

	// Link is the per-message delay distribution applied to every quorum
	// request on send (the round trip's latency is modelled on the forward
	// path, keeping servers reply-never-block).
	Link Dist

	// SlowProcs designates that many processors (drawn at Plan time;
	// SlowThirdOfN resolves to ⌈n/3⌉) as throttled: every outgoing message
	// and every local coin flip pays an extra Slow delay.
	SlowProcs int
	// Slow is the throttled processors' extra delay distribution.
	Slow Dist

	// ReorderProb is the probability that a message takes an extra Reorder
	// delay, shuffling delivery order relative to program order.
	ReorderProb float64
	// Reorder is the extra delay of reordered messages.
	Reorder Dist
}

// Active reports whether the scenario injects anything at all.
func (s Scenario) Active() bool {
	return s.Crashes != 0 || s.Link.Active() ||
		(s.SlowProcs != 0 && s.Slow.Active()) ||
		(s.ReorderProb > 0 && s.Reorder.Active())
}

// Validate checks the scenario against a system of size n.
func (s Scenario) Validate(n int) error {
	if n < 1 {
		return fmt.Errorf("fault: system size %d must be at least 1", n)
	}
	if s.Crashes != CrashMax {
		if s.Crashes < 0 {
			return fmt.Errorf("fault: crash count %d must be ≥ 0 (or CrashMax)", s.Crashes)
		}
		if max := MaxCrashes(n); s.Crashes > max {
			return fmt.Errorf("fault: %d crashes exceed the model's bound ⌈n/2⌉−1 = %d at n=%d (a majority quorum must stay reachable)",
				s.Crashes, max, n)
		}
	}
	if s.SlowProcs != SlowThirdOfN && s.SlowProcs < 0 {
		return fmt.Errorf("fault: slow-processor count %d must be ≥ 0 (or SlowThirdOfN)", s.SlowProcs)
	}
	if s.SlowProcs > n {
		return fmt.Errorf("fault: %d slow processors exceed system size %d", s.SlowProcs, n)
	}
	if s.ReorderProb < 0 || s.ReorderProb > 1 {
		return fmt.Errorf("fault: reorder probability %v outside [0, 1]", s.ReorderProb)
	}
	if s.CrashWindow < 0 {
		return fmt.Errorf("fault: negative crash window %v", s.CrashWindow)
	}
	return nil
}

// Crash schedules one processor's failure: Proc stops at wall-clock time At
// after the run starts.
type Crash struct {
	Proc int
	At   time.Duration
}

// Plan is a Scenario materialized for one run: concrete victims, crash
// times and slow sets, drawn deterministically from (n, seed). A nil *Plan
// is the fault-free plan.
type Plan struct {
	// Scenario is the description this plan realizes.
	Scenario Scenario
	// N is the system size the plan was drawn for.
	N int
	// Crashes lists the victims and their randomized crash times.
	Crashes []Crash
	// Slow flags the throttled processors.
	Slow []bool
}

// Plan materializes the scenario for one run of n processors. It returns
// (nil, nil) for an inactive scenario, so the backend's fault-free hot path
// stays branch-on-nil cheap.
func (s Scenario) Plan(n int, seed int64) (*Plan, error) {
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	if !s.Active() {
		return nil, nil
	}
	// A dedicated PRNG: plan drawing must not perturb the run's coin-flip
	// streams, which the backend derives from the same seed.
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	pl := &Plan{Scenario: s, N: n}

	crashes := s.Crashes
	if crashes == CrashMax {
		crashes = MaxCrashes(n)
	}
	window := s.CrashWindow
	if window == 0 {
		window = DefaultCrashWindow
	}
	if crashes > 0 {
		for _, victim := range rng.Perm(n)[:crashes] {
			pl.Crashes = append(pl.Crashes, Crash{
				Proc: victim,
				At:   time.Duration(rng.Int63n(int64(window))),
			})
		}
	}

	slow := s.SlowProcs
	if slow == SlowThirdOfN {
		slow = (n + 2) / 3
	}
	if slow > n {
		slow = n
	}
	if slow > 0 && s.Slow.Active() {
		pl.Slow = make([]bool, n)
		for _, i := range rng.Perm(n)[:slow] {
			pl.Slow[i] = true
		}
	}
	return pl, nil
}

// IsSlow reports whether processor i is throttled under this plan.
func (pl *Plan) IsSlow(i int) bool {
	return pl != nil && pl.Slow != nil && pl.Slow[i]
}

// SendDelay samples the injected delay for one message from processor
// "from" to processor "to": link latency, plus the slow-processor tax when
// either endpoint is throttled, plus the occasional reorder delay. rng must
// be owned by the sending goroutine.
func (pl *Plan) SendDelay(rng *rand.Rand, from, to int) time.Duration {
	if pl == nil {
		return 0
	}
	d := pl.Scenario.Link.Sample(rng)
	if pl.IsSlow(from) || pl.IsSlow(to) {
		d += pl.Scenario.Slow.Sample(rng)
	}
	if p := pl.Scenario.ReorderProb; p > 0 && rng.Float64() < p {
		d += pl.Scenario.Reorder.Sample(rng)
	}
	return d
}

// StepDelay samples the local-step throttle of processor proc (nonzero only
// for slow processors): the pause it pays at each coin flip.
func (pl *Plan) StepDelay(rng *rand.Rand, proc int) time.Duration {
	if pl == nil || !pl.IsSlow(proc) {
		return 0
	}
	return pl.Scenario.Slow.Sample(rng)
}
