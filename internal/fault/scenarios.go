package fault

import "time"

// Baseline is the fault-free scenario: no injection, the live backend's
// native behavior. It anchors every scenario matrix.
func Baseline() Scenario {
	return Scenario{Name: "baseline"}
}

// CrashOne crashes a single randomly chosen processor early in the run —
// the smallest fault the model admits.
func CrashOne() Scenario {
	return Scenario{Name: "crash-1", Crashes: 1}
}

// CrashMinority crashes the full fault budget ⌈n/2⌉−1 at randomized times:
// the paper's worst case (Theorem A.5 still promises a unique winner among
// the survivors).
func CrashMinority() Scenario {
	return Scenario{Name: "crash-minority", Crashes: CrashMax}
}

// LAN adds datacenter-like link latency: a small fixed floor with mild
// uniform jitter.
func LAN() Scenario {
	return Scenario{
		Name: "lan",
		Link: Dist{Kind: Uniform, Base: 50 * time.Microsecond, Jitter: 100 * time.Microsecond},
	}
}

// WAN adds wide-area link latency: a larger floor and wide jitter, enough
// to reorder most concurrent quorum traffic.
func WAN() Scenario {
	return Scenario{
		Name: "wan",
		Link: Dist{Kind: Uniform, Base: 300 * time.Microsecond, Jitter: 700 * time.Microsecond},
	}
}

// HeavyTail adds Pareto-distributed link latency (α = 1.2): most messages
// are fast, a few are extreme stragglers — the distribution that separates
// quorum-based protocols from barrier-based ones, since a quorum only ever
// waits for the fastest majority.
func HeavyTail() Scenario {
	return Scenario{
		Name: "heavy-tail",
		Link: Dist{Kind: Pareto, Base: 20 * time.Microsecond, Jitter: 60 * time.Microsecond, Alpha: 1.2},
	}
}

// SlowThird throttles ⌈n/3⌉ processors: every message they send or receive
// and every coin flip they make pays an extra uniform delay. The sub-quorum
// slow set must not stall anyone else — quorums route around it.
func SlowThird() Scenario {
	return Scenario{
		Name:      "slow-third",
		SlowProcs: SlowThirdOfN,
		Slow:      Dist{Kind: Uniform, Base: 100 * time.Microsecond, Jitter: 400 * time.Microsecond},
	}
}

// Reordering delays a third of all messages by a uniform extra amount,
// shuffling delivery order relative to send order without slowing the rest
// of the system.
func Reordering() Scenario {
	return Scenario{
		Name:        "reorder",
		ReorderProb: 1.0 / 3,
		Reorder:     Dist{Kind: Uniform, Jitter: 500 * time.Microsecond},
	}
}

// Chaos combines everything: the full crash budget, heavy-tailed links, a
// slow third and reordering — the widest scenario the engine expresses.
func Chaos() Scenario {
	return Scenario{
		Name:        "chaos",
		Crashes:     CrashMax,
		CrashWindow: 3 * time.Millisecond,
		Link:        Dist{Kind: Pareto, Base: 20 * time.Microsecond, Jitter: 60 * time.Microsecond, Alpha: 1.2},
		SlowProcs:   SlowThirdOfN,
		Slow:        Dist{Kind: Uniform, Base: 50 * time.Microsecond, Jitter: 200 * time.Microsecond},
		ReorderProb: 0.25,
		Reorder:     Dist{Kind: Uniform, Jitter: 300 * time.Microsecond},
	}
}

// PartitionHeal opens a full minority/majority cut early in the run and
// heals it well before any sane deadline: every client must still elect,
// and the winner must be unique — the retransmission loops carry quorum
// calls across the window.
func PartitionHeal() Scenario {
	return Scenario{
		Name: "partition-heal",
		Partition: &PartitionSpec{
			Start:    500 * time.Microsecond,
			Heal:     6 * time.Millisecond,
			Minority: MinorityMax,
		},
	}
}

// PartitionMinority cuts the maximum minority off forever and pins every
// client to the minority side: no client can ever reach a majority, so the
// only valid outcome is the typed no-quorum abort — never a winner, never
// a hang.
func PartitionMinority() Scenario {
	return Scenario{
		Name: "partition-minority",
		Partition: &PartitionSpec{
			Start:    200 * time.Microsecond,
			Minority: MinorityMax,
			Clients:  SideMinority,
		},
		NoQuorumOK: true,
	}
}

// PartitionMajority cuts the maximum minority off forever but keeps every
// client on the majority side: the cut costs only dead retransmissions,
// and a unique winner must still emerge. NoQuorumOK is set because the
// never-healing cut starves the *servers* stranded on the minority side
// of nothing the clients need — but the scenario as declared cannot prove
// per-client electability without knowing the draw, so the plan decides
// per client (and with SideMajority, every client is electable).
func PartitionMajority() Scenario {
	return Scenario{
		Name: "partition-majority",
		Partition: &PartitionSpec{
			Start:    200 * time.Microsecond,
			Minority: MinorityMax,
			Clients:  SideMajority,
		},
		NoQuorumOK: true,
	}
}

// CrashRecovery crashes the full fault budget and brings every victim's
// replica back a few milliseconds later: mid-election the quorum system
// dips to the bare majority, then returns to full strength — recovered
// replicas must answer again (catching up through the quorum reads'
// propagate round), and the winner must be unique.
func CrashRecovery() Scenario {
	return Scenario{
		Name:          "crash-recovery",
		Crashes:       CrashMax,
		CrashWindow:   2 * time.Millisecond,
		RecoverAfter:  5 * time.Millisecond,
		RecoverJitter: 2 * time.Millisecond,
	}
}

// Flaky drops a quarter of all traffic on every link, independently per
// message and direction: no quorum call completes without retransmission,
// but every one eventually does — elections must remain valid, just slow.
func Flaky() Scenario {
	return Scenario{
		Name:      "flaky",
		LossProb:  0.25,
		LossLinks: AllLinks,
	}
}

// FlakyAsym concentrates heavy loss (60%) on a random subset of directed
// links, leaving their reverse directions (and all other links) clean —
// the asymmetric regime where a client can send but not hear, or hear but
// not send. At 6 directed links the subset stays well below total loss on
// any quorum at the sizes the grids run.
func FlakyAsym() Scenario {
	return Scenario{
		Name:      "flaky-asym",
		LossProb:  0.6,
		LossLinks: 6,
	}
}

// ChaosRecovery is the widest scenario the engine now expresses: the full
// crash budget with recovery, a healing partition on top, flaky links
// under that, plus heavy-tailed latency — every fault family at once,
// with a valid election still required.
func ChaosRecovery() Scenario {
	return Scenario{
		Name:          "chaos-recovery",
		Crashes:       CrashMax,
		CrashWindow:   2 * time.Millisecond,
		RecoverAfter:  4 * time.Millisecond,
		RecoverJitter: 2 * time.Millisecond,
		Partition: &PartitionSpec{
			Start:    1 * time.Millisecond,
			Heal:     5 * time.Millisecond,
			Minority: MinorityMax,
		},
		LossProb:  0.15,
		LossLinks: AllLinks,
		Link:      Dist{Kind: Pareto, Base: 20 * time.Microsecond, Jitter: 60 * time.Microsecond, Alpha: 1.2},
	}
}

// Presets returns every named scenario, baseline first — the default
// campaign matrix.
func Presets() []Scenario {
	return []Scenario{
		Baseline(), CrashOne(), CrashMinority(), LAN(), WAN(),
		HeavyTail(), SlowThird(), Reordering(), Chaos(),
		PartitionHeal(), PartitionMinority(), PartitionMajority(),
		CrashRecovery(), Flaky(), FlakyAsym(), ChaosRecovery(),
	}
}

// ChaosGrid returns the chaos runner's default scenario matrix: baseline
// as the control plus every scenario exercising the partition, recovery
// and flaky-link families. cmd/livesim -chaos sweeps it across seeds and
// backends; CI runs it compressed under -race.
func ChaosGrid() []Scenario {
	return []Scenario{
		Baseline(),
		PartitionHeal(), PartitionMinority(), PartitionMajority(),
		CrashRecovery(), Flaky(), FlakyAsym(), ChaosRecovery(),
	}
}

// Names returns the preset names in Presets order.
func Names() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, s := range ps {
		out[i] = s.Name
	}
	return out
}

// Lookup resolves a preset by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
