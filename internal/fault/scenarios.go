package fault

import "time"

// Baseline is the fault-free scenario: no injection, the live backend's
// native behavior. It anchors every scenario matrix.
func Baseline() Scenario {
	return Scenario{Name: "baseline"}
}

// CrashOne crashes a single randomly chosen processor early in the run —
// the smallest fault the model admits.
func CrashOne() Scenario {
	return Scenario{Name: "crash-1", Crashes: 1}
}

// CrashMinority crashes the full fault budget ⌈n/2⌉−1 at randomized times:
// the paper's worst case (Theorem A.5 still promises a unique winner among
// the survivors).
func CrashMinority() Scenario {
	return Scenario{Name: "crash-minority", Crashes: CrashMax}
}

// LAN adds datacenter-like link latency: a small fixed floor with mild
// uniform jitter.
func LAN() Scenario {
	return Scenario{
		Name: "lan",
		Link: Dist{Kind: Uniform, Base: 50 * time.Microsecond, Jitter: 100 * time.Microsecond},
	}
}

// WAN adds wide-area link latency: a larger floor and wide jitter, enough
// to reorder most concurrent quorum traffic.
func WAN() Scenario {
	return Scenario{
		Name: "wan",
		Link: Dist{Kind: Uniform, Base: 300 * time.Microsecond, Jitter: 700 * time.Microsecond},
	}
}

// HeavyTail adds Pareto-distributed link latency (α = 1.2): most messages
// are fast, a few are extreme stragglers — the distribution that separates
// quorum-based protocols from barrier-based ones, since a quorum only ever
// waits for the fastest majority.
func HeavyTail() Scenario {
	return Scenario{
		Name: "heavy-tail",
		Link: Dist{Kind: Pareto, Base: 20 * time.Microsecond, Jitter: 60 * time.Microsecond, Alpha: 1.2},
	}
}

// SlowThird throttles ⌈n/3⌉ processors: every message they send or receive
// and every coin flip they make pays an extra uniform delay. The sub-quorum
// slow set must not stall anyone else — quorums route around it.
func SlowThird() Scenario {
	return Scenario{
		Name:      "slow-third",
		SlowProcs: SlowThirdOfN,
		Slow:      Dist{Kind: Uniform, Base: 100 * time.Microsecond, Jitter: 400 * time.Microsecond},
	}
}

// Reordering delays a third of all messages by a uniform extra amount,
// shuffling delivery order relative to send order without slowing the rest
// of the system.
func Reordering() Scenario {
	return Scenario{
		Name:        "reorder",
		ReorderProb: 1.0 / 3,
		Reorder:     Dist{Kind: Uniform, Jitter: 500 * time.Microsecond},
	}
}

// Chaos combines everything: the full crash budget, heavy-tailed links, a
// slow third and reordering — the widest scenario the engine expresses.
func Chaos() Scenario {
	return Scenario{
		Name:        "chaos",
		Crashes:     CrashMax,
		CrashWindow: 3 * time.Millisecond,
		Link:        Dist{Kind: Pareto, Base: 20 * time.Microsecond, Jitter: 60 * time.Microsecond, Alpha: 1.2},
		SlowProcs:   SlowThirdOfN,
		Slow:        Dist{Kind: Uniform, Base: 50 * time.Microsecond, Jitter: 200 * time.Microsecond},
		ReorderProb: 0.25,
		Reorder:     Dist{Kind: Uniform, Jitter: 300 * time.Microsecond},
	}
}

// Presets returns every named scenario, baseline first — the default
// campaign matrix.
func Presets() []Scenario {
	return []Scenario{
		Baseline(), CrashOne(), CrashMinority(), LAN(), WAN(),
		HeavyTail(), SlowThird(), Reordering(), Chaos(),
	}
}

// Names returns the preset names in Presets order.
func Names() []string {
	ps := Presets()
	out := make([]string, len(ps))
	for i, s := range ps {
		out[i] = s.Name
	}
	return out
}

// Lookup resolves a preset by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
