package fault

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestDistSample: each distribution kind respects its bounds.
func TestDistSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	if d := (Dist{}).Sample(rng); d != 0 {
		t.Errorf("zero Dist sampled %v, want 0", d)
	}
	fixed := Dist{Kind: Fixed, Base: 3 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if d := fixed.Sample(rng); d != 3*time.Millisecond {
			t.Fatalf("fixed sampled %v", d)
		}
	}
	uni := Dist{Kind: Uniform, Base: time.Millisecond, Jitter: 2 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := uni.Sample(rng)
		if d < time.Millisecond || d >= 3*time.Millisecond {
			t.Fatalf("uniform sampled %v outside [1ms, 3ms)", d)
		}
	}
	par := Dist{Kind: Pareto, Base: 10 * time.Microsecond, Jitter: 50 * time.Microsecond, Alpha: 1.2}
	sawTail := false
	for i := 0; i < 5000; i++ {
		d := par.Sample(rng)
		if d < 10*time.Microsecond || d > DefaultCap {
			t.Fatalf("pareto sampled %v outside [10µs, DefaultCap]", d)
		}
		if d > time.Millisecond {
			sawTail = true
		}
	}
	if !sawTail {
		t.Error("5000 pareto(α=1.2) samples produced no >1ms straggler; tail missing")
	}
	capped := Dist{Kind: Pareto, Jitter: 50 * time.Microsecond, Alpha: 1.1, Cap: 200 * time.Microsecond}
	for i := 0; i < 2000; i++ {
		if d := capped.Sample(rng); d > 200*time.Microsecond {
			t.Fatalf("explicit cap violated: %v", d)
		}
	}
}

// TestMaxCrashes: the bound is ⌈n/2⌉−1.
func TestMaxCrashes(t *testing.T) {
	want := map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2, 7: 3, 16: 7, 17: 8}
	for n, m := range want {
		if got := MaxCrashes(n); got != m {
			t.Errorf("MaxCrashes(%d) = %d, want %d", n, got, m)
		}
	}
}

// TestValidate: the crash cap and parameter ranges are enforced.
func TestValidate(t *testing.T) {
	if err := (Scenario{Crashes: 2}).Validate(4); err == nil {
		t.Error("2 crashes at n=4 accepted (cap is 1)")
	}
	if err := (Scenario{Crashes: CrashMax}).Validate(4); err != nil {
		t.Errorf("CrashMax rejected: %v", err)
	}
	if err := (Scenario{Crashes: -2}).Validate(4); err == nil {
		t.Error("negative crash count accepted")
	}
	if err := (Scenario{ReorderProb: 1.5}).Validate(4); err == nil {
		t.Error("reorder probability > 1 accepted")
	}
	if err := (Scenario{SlowProcs: 9}).Validate(4); err == nil {
		t.Error("more slow processors than the system holds accepted")
	}
	for _, s := range Presets() {
		if err := s.Validate(8); err != nil {
			t.Errorf("preset %q invalid at n=8: %v", s.Name, err)
		}
	}
}

// TestPlanDeterminism: the same (scenario, n, seed) draws the same victims,
// times and slow sets; a different seed draws a different plan.
func TestPlanDeterminism(t *testing.T) {
	s := Chaos()
	a, err := s.Plan(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Plan(16, 42)
	if !reflect.DeepEqual(a.Crashes, b.Crashes) || !reflect.DeepEqual(a.Slow, b.Slow) {
		t.Error("equal seeds drew different plans")
	}
	c, _ := s.Plan(16, 43)
	if reflect.DeepEqual(a.Crashes, c.Crashes) {
		t.Error("different seeds drew identical crash schedules")
	}
}

// TestPlanShape: the materialized plan respects the scenario's counts and
// the model's crash cap, with distinct victims inside the crash window.
func TestPlanShape(t *testing.T) {
	const n = 17
	pl, err := CrashMinority().Plan(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Crashes) != MaxCrashes(n) {
		t.Fatalf("CrashMax resolved to %d victims, want %d", len(pl.Crashes), MaxCrashes(n))
	}
	seen := map[int]bool{}
	for _, cr := range pl.Crashes {
		if cr.Proc < 0 || cr.Proc >= n {
			t.Fatalf("victim %d outside [0, %d)", cr.Proc, n)
		}
		if seen[cr.Proc] {
			t.Fatalf("victim %d crashed twice", cr.Proc)
		}
		seen[cr.Proc] = true
		if cr.At < 0 || cr.At >= DefaultCrashWindow {
			t.Fatalf("crash time %v outside the default window", cr.At)
		}
	}

	sl, err := SlowThird().Plan(9, 7)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < 9; i++ {
		if sl.IsSlow(i) {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("SlowThirdOfN at n=9 marked %d processors, want 3", count)
	}
}

// TestInactivePlanIsNil: the fault-free scenario materializes to nil so the
// backend's hot path stays a nil check, and nil plans inject nothing.
func TestInactivePlanIsNil(t *testing.T) {
	pl, err := Baseline().Plan(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl != nil {
		t.Fatalf("baseline plan = %+v, want nil", pl)
	}
	rng := rand.New(rand.NewSource(1))
	if d := pl.SendDelay(rng, 0, 1); d != 0 {
		t.Errorf("nil plan send delay %v", d)
	}
	if d := pl.StepDelay(rng, 0); d != 0 {
		t.Errorf("nil plan step delay %v", d)
	}
	if pl.IsSlow(0) {
		t.Error("nil plan marks processors slow")
	}
}

// TestSendDelayComposition: slow endpoints add their tax on top of link
// latency, in either direction.
func TestSendDelayComposition(t *testing.T) {
	s := Scenario{
		Name:      "compose",
		Link:      Dist{Kind: Fixed, Base: 100 * time.Microsecond},
		SlowProcs: 1,
		Slow:      Dist{Kind: Fixed, Base: time.Millisecond},
	}
	pl, err := s.Plan(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow := -1
	for i := 0; i < 4; i++ {
		if pl.IsSlow(i) {
			slow = i
		}
	}
	if slow < 0 {
		t.Fatal("no slow processor drawn")
	}
	rng := rand.New(rand.NewSource(1))
	fast := (slow + 1) % 4
	if d := pl.SendDelay(rng, fast, (slow+2)%4); d != 100*time.Microsecond {
		t.Errorf("fast→fast delay %v, want pure link latency", d)
	}
	if d := pl.SendDelay(rng, slow, fast); d != 1100*time.Microsecond {
		t.Errorf("slow→fast delay %v, want link+slow", d)
	}
	if d := pl.SendDelay(rng, fast, slow); d != 1100*time.Microsecond {
		t.Errorf("fast→slow delay %v, want link+slow", d)
	}
	if d := pl.StepDelay(rng, slow); d != time.Millisecond {
		t.Errorf("slow step delay %v", d)
	}
	if d := pl.StepDelay(rng, fast); d != 0 {
		t.Errorf("fast step delay %v", d)
	}
}

// TestLookup: every preset resolves by name; unknown names don't.
func TestLookup(t *testing.T) {
	for _, name := range Names() {
		s, ok := Lookup(name)
		if !ok || s.Name != name {
			t.Errorf("Lookup(%q) = (%q, %v)", name, s.Name, ok)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("unknown scenario resolved")
	}
}
