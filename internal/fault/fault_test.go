package fault

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// TestDistSample: each distribution kind respects its bounds.
func TestDistSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	if d := (Dist{}).Sample(rng); d != 0 {
		t.Errorf("zero Dist sampled %v, want 0", d)
	}
	fixed := Dist{Kind: Fixed, Base: 3 * time.Millisecond}
	for i := 0; i < 10; i++ {
		if d := fixed.Sample(rng); d != 3*time.Millisecond {
			t.Fatalf("fixed sampled %v", d)
		}
	}
	uni := Dist{Kind: Uniform, Base: time.Millisecond, Jitter: 2 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		d := uni.Sample(rng)
		if d < time.Millisecond || d >= 3*time.Millisecond {
			t.Fatalf("uniform sampled %v outside [1ms, 3ms)", d)
		}
	}
	par := Dist{Kind: Pareto, Base: 10 * time.Microsecond, Jitter: 50 * time.Microsecond, Alpha: 1.2}
	sawTail := false
	for i := 0; i < 5000; i++ {
		d := par.Sample(rng)
		if d < 10*time.Microsecond || d > DefaultCap {
			t.Fatalf("pareto sampled %v outside [10µs, DefaultCap]", d)
		}
		if d > time.Millisecond {
			sawTail = true
		}
	}
	if !sawTail {
		t.Error("5000 pareto(α=1.2) samples produced no >1ms straggler; tail missing")
	}
	capped := Dist{Kind: Pareto, Jitter: 50 * time.Microsecond, Alpha: 1.1, Cap: 200 * time.Microsecond}
	for i := 0; i < 2000; i++ {
		if d := capped.Sample(rng); d > 200*time.Microsecond {
			t.Fatalf("explicit cap violated: %v", d)
		}
	}
}

// TestMaxCrashes: the bound is ⌈n/2⌉−1.
func TestMaxCrashes(t *testing.T) {
	want := map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2, 7: 3, 16: 7, 17: 8}
	for n, m := range want {
		if got := MaxCrashes(n); got != m {
			t.Errorf("MaxCrashes(%d) = %d, want %d", n, got, m)
		}
	}
}

// TestValidate: the crash cap and parameter ranges are enforced.
func TestValidate(t *testing.T) {
	if err := (Scenario{Crashes: 2}).Validate(4); err == nil {
		t.Error("2 crashes at n=4 accepted (cap is 1)")
	}
	if err := (Scenario{Crashes: CrashMax}).Validate(4); err != nil {
		t.Errorf("CrashMax rejected: %v", err)
	}
	if err := (Scenario{Crashes: -2}).Validate(4); err == nil {
		t.Error("negative crash count accepted")
	}
	if err := (Scenario{ReorderProb: 1.5}).Validate(4); err == nil {
		t.Error("reorder probability > 1 accepted")
	}
	if err := (Scenario{SlowProcs: 9}).Validate(4); err == nil {
		t.Error("more slow processors than the system holds accepted")
	}
	for _, s := range Presets() {
		if err := s.Validate(8); err != nil {
			t.Errorf("preset %q invalid at n=8: %v", s.Name, err)
		}
	}
}

// TestPlanDeterminism: the same (scenario, n, seed) draws the same victims,
// times and slow sets; a different seed draws a different plan.
func TestPlanDeterminism(t *testing.T) {
	s := Chaos()
	a, err := s.Plan(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Plan(16, 42)
	if !reflect.DeepEqual(a.Crashes, b.Crashes) || !reflect.DeepEqual(a.Slow, b.Slow) {
		t.Error("equal seeds drew different plans")
	}
	c, _ := s.Plan(16, 43)
	if reflect.DeepEqual(a.Crashes, c.Crashes) {
		t.Error("different seeds drew identical crash schedules")
	}
}

// TestPlanShape: the materialized plan respects the scenario's counts and
// the model's crash cap, with distinct victims inside the crash window.
func TestPlanShape(t *testing.T) {
	const n = 17
	pl, err := CrashMinority().Plan(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Crashes) != MaxCrashes(n) {
		t.Fatalf("CrashMax resolved to %d victims, want %d", len(pl.Crashes), MaxCrashes(n))
	}
	seen := map[int]bool{}
	for _, cr := range pl.Crashes {
		if cr.Proc < 0 || cr.Proc >= n {
			t.Fatalf("victim %d outside [0, %d)", cr.Proc, n)
		}
		if seen[cr.Proc] {
			t.Fatalf("victim %d crashed twice", cr.Proc)
		}
		seen[cr.Proc] = true
		if cr.At < 0 || cr.At >= DefaultCrashWindow {
			t.Fatalf("crash time %v outside the default window", cr.At)
		}
	}

	sl, err := SlowThird().Plan(9, 7)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i := 0; i < 9; i++ {
		if sl.IsSlow(i) {
			count++
		}
	}
	if count != 3 {
		t.Fatalf("SlowThirdOfN at n=9 marked %d processors, want 3", count)
	}
}

// TestInactivePlanIsNil: the fault-free scenario materializes to nil so the
// backend's hot path stays a nil check, and nil plans inject nothing.
func TestInactivePlanIsNil(t *testing.T) {
	pl, err := Baseline().Plan(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pl != nil {
		t.Fatalf("baseline plan = %+v, want nil", pl)
	}
	rng := rand.New(rand.NewSource(1))
	if d := pl.SendDelay(rng, 0, 1); d != 0 {
		t.Errorf("nil plan send delay %v", d)
	}
	if d := pl.StepDelay(rng, 0); d != 0 {
		t.Errorf("nil plan step delay %v", d)
	}
	if pl.IsSlow(0) {
		t.Error("nil plan marks processors slow")
	}
}

// TestSendDelayComposition: slow endpoints add their tax on top of link
// latency, in either direction.
func TestSendDelayComposition(t *testing.T) {
	s := Scenario{
		Name:      "compose",
		Link:      Dist{Kind: Fixed, Base: 100 * time.Microsecond},
		SlowProcs: 1,
		Slow:      Dist{Kind: Fixed, Base: time.Millisecond},
	}
	pl, err := s.Plan(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	slow := -1
	for i := 0; i < 4; i++ {
		if pl.IsSlow(i) {
			slow = i
		}
	}
	if slow < 0 {
		t.Fatal("no slow processor drawn")
	}
	rng := rand.New(rand.NewSource(1))
	fast := (slow + 1) % 4
	if d := pl.SendDelay(rng, fast, (slow+2)%4); d != 100*time.Microsecond {
		t.Errorf("fast→fast delay %v, want pure link latency", d)
	}
	if d := pl.SendDelay(rng, slow, fast); d != 1100*time.Microsecond {
		t.Errorf("slow→fast delay %v, want link+slow", d)
	}
	if d := pl.SendDelay(rng, fast, slow); d != 1100*time.Microsecond {
		t.Errorf("fast→slow delay %v, want link+slow", d)
	}
	if d := pl.StepDelay(rng, slow); d != time.Millisecond {
		t.Errorf("slow step delay %v", d)
	}
	if d := pl.StepDelay(rng, fast); d != 0 {
		t.Errorf("fast step delay %v", d)
	}
}

// TestLookup: every preset resolves by name; unknown names don't.
func TestLookup(t *testing.T) {
	for _, name := range Names() {
		s, ok := Lookup(name)
		if !ok || s.Name != name {
			t.Errorf("Lookup(%q) = (%q, %v)", name, s.Name, ok)
		}
	}
	if _, ok := Lookup("no-such-scenario"); ok {
		t.Error("unknown scenario resolved")
	}
}

// TestChaosGridPlanDeterminism: for every chaos-grid scenario, equal
// (n, seed) pairs materialize byte-identical plans — partition windows and
// sides, crash and rejoin times, drop matrices, everything — which is what
// lets the chaos runner re-derive the exact plan a run executed under and
// validate its outcome against it.
func TestChaosGridPlanDeterminism(t *testing.T) {
	for _, sc := range ChaosGrid() {
		a, err := sc.Plan(16, 99)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		b, _ := sc.Plan(16, 99)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: equal seeds drew different plans", sc.Name)
		}
	}
	// And seeds actually matter: the drop matrix of the asymmetric flaky
	// scenario re-rolls (6 of 240 links colliding across two seeds would
	// mean the seed is not reaching the PRNG).
	a, _ := FlakyAsym().Plan(16, 1)
	c, _ := FlakyAsym().Plan(16, 2)
	if reflect.DeepEqual(a.Drop, c.Drop) {
		t.Error("flaky-asym: different seeds drew identical drop matrices")
	}
}

// TestChaosGridPlanBounds: every materialized plan of the grid respects the
// declarative scenario's bounds — minority sizes, side constraints, rejoin
// ordering, drop-probability domain — across seeds.
func TestChaosGridPlanBounds(t *testing.T) {
	const n = 16
	for _, sc := range ChaosGrid() {
		for seed := int64(1); seed <= 20; seed++ {
			pl, err := sc.Plan(n, seed)
			if err != nil {
				t.Fatalf("%s seed %d: %v", sc.Name, seed, err)
			}
			if pl == nil {
				continue // baseline
			}
			if part := pl.Partition; part != nil {
				m := 0
				for _, b := range part.Minority {
					if b {
						m++
					}
				}
				if m < 1 || m > MaxCrashes(n) {
					t.Errorf("%s seed %d: minority size %d outside [1, %d]", sc.Name, seed, m, MaxCrashes(n))
				}
				if part.End != 0 && part.End <= part.Start {
					t.Errorf("%s seed %d: partition window [%v, %v) empty", sc.Name, seed, part.Start, part.End)
				}
				switch sc.Partition.Clients {
				case SideMinority:
					if !part.Minority[0] {
						t.Errorf("%s seed %d: SideMinority left processor 0 on the majority side", sc.Name, seed)
					}
				case SideMajority:
					for i := 0; i < (n+1)/2; i++ {
						if part.Minority[i] {
							t.Errorf("%s seed %d: SideMajority put low id %d on the minority side", sc.Name, seed, i)
						}
					}
				}
			}
			if sc.RecoverAfter > 0 {
				if len(pl.Recoveries) != len(pl.Crashes) {
					t.Fatalf("%s seed %d: %d recoveries for %d crashes", sc.Name, seed, len(pl.Recoveries), len(pl.Crashes))
				}
				crashAt := map[int]time.Duration{}
				for _, cr := range pl.Crashes {
					crashAt[cr.Proc] = cr.At
				}
				for _, rc := range pl.Recoveries {
					at, ok := crashAt[rc.Proc]
					if !ok {
						t.Fatalf("%s seed %d: recovery of uncrashed %d", sc.Name, seed, rc.Proc)
					}
					if rc.At < at+sc.RecoverAfter || rc.At >= at+sc.RecoverAfter+sc.RecoverJitter+1 {
						t.Errorf("%s seed %d: proc %d rejoins at %v, crash %v + after %v + jitter %v",
							sc.Name, seed, rc.Proc, rc.At, at, sc.RecoverAfter, sc.RecoverJitter)
					}
					if got, ok := pl.RecoveryOf(rc.Proc); !ok || got != rc.At {
						t.Errorf("%s seed %d: RecoveryOf(%d) = (%v, %v)", sc.Name, seed, rc.Proc, got, ok)
					}
				}
			}
			if len(pl.Drop) > n*(n-1) {
				t.Errorf("%s seed %d: %d flaky links exceed n(n-1)", sc.Name, seed, len(pl.Drop))
			}
			for key, p := range pl.Drop {
				src, dst := key/n, key%n
				if src == dst || src < 0 || src >= n || dst < 0 || dst >= n {
					t.Errorf("%s seed %d: drop key %d is not a directed link", sc.Name, seed, key)
				}
				if p <= 0 || p > 1 {
					t.Errorf("%s seed %d: drop probability %v outside (0, 1]", sc.Name, seed, p)
				}
			}
			if (pl.Partition != nil || len(pl.Drop) > 0 || len(pl.Recoveries) > 0) && !pl.NeedsRetransmit() {
				t.Errorf("%s seed %d: lossy plan does not ask for retransmission", sc.Name, seed)
			}
			// Electable and StarveAt must agree, for every client.
			for i := 0; i < n; i++ {
				at, starved := pl.StarveAt(i)
				if pl.Electable(i) == starved {
					t.Errorf("%s seed %d: Electable(%d)=%v but StarveAt starved=%v", sc.Name, seed, i, pl.Electable(i), starved)
				}
				if starved && at < 0 {
					t.Errorf("%s seed %d: negative starvation time %v", sc.Name, seed, at)
				}
			}
		}
	}
}

// TestElectabilityContract: Validate rejects scenarios whose permanent
// faults could starve a client of quorums forever unless the scenario
// declares NoQuorumOK, and the materialized plan pinpoints exactly which
// clients are cut off.
func TestElectabilityContract(t *testing.T) {
	never := Scenario{Name: "cut", Partition: &PartitionSpec{Start: time.Millisecond, Minority: MinorityMax}}
	if err := never.Validate(8); err == nil {
		t.Error("never-healing partition validated without NoQuorumOK")
	}
	never.NoQuorumOK = true
	if err := never.Validate(8); err != nil {
		t.Errorf("NoQuorumOK partition rejected: %v", err)
	}

	blackout := Scenario{Name: "blackout", LossProb: 1, LossLinks: AllLinks}
	if err := blackout.Validate(8); err == nil {
		t.Error("total loss validated without NoQuorumOK")
	}
	blackout.NoQuorumOK = true
	if err := blackout.Validate(8); err != nil {
		t.Errorf("NoQuorumOK blackout rejected: %v", err)
	}
	pl, err := blackout.Plan(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if pl.Electable(i) {
			t.Errorf("client %d electable under total permanent loss", i)
		}
		if at, starved := pl.StarveAt(i); !starved || at != 0 {
			t.Errorf("client %d starves at %v (%v), want 0 (true)", i, at, starved)
		}
	}

	// A minority-side client of a never-healing partition is starved from
	// the partition's start; majority-side clients stay electable.
	cut := Scenario{Name: "cut", NoQuorumOK: true,
		Partition: &PartitionSpec{Start: 200 * time.Microsecond, Minority: MinorityMax, Clients: SideMinority}}
	cpl, err := cut.Plan(8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cpl.Electable(0) {
		t.Error("processor 0 electable on the minority side of a permanent cut")
	}
	if at, starved := cpl.StarveAt(0); !starved || at != cut.Partition.Start {
		t.Errorf("processor 0 starves at %v (%v), want %v", at, starved, cut.Partition.Start)
	}
	for i := 0; i < 8; i++ {
		if !cpl.Partition.Minority[i] && !cpl.Electable(i) {
			t.Errorf("majority-side processor %d not electable", i)
		}
	}
}
