// Package baseline implements the comparison algorithms discussed by
// "How to Elect a Leader Faster than a Tournament":
//
//   - the tournament-tree leader election of Afek, Gafni, Tromp and Vitányi
//     [AGTV92], the decades-old Θ(log n)-time upper bound the paper beats
//     (Tournament);
//   - the naive sifting strawman from the paper's introduction — flip a
//     visible coin, then drop if somebody flipped 1 — which the adaptive
//     adversary defeats by scheduling all 0-flippers to finish their phase
//     before any 1-flipper is seen (NaiveSift);
//   - the random-scan renaming of [AAG+10], where each processor tries names
//     in uniformly random order; it is message-light but takes Ω(n) time for
//     a late processor (RandomScanRename).
//
// All baselines run on the same kernel, quorum layer and (for tournament
// matches) SSW round racing as the paper's algorithm, so comparisons measure
// the algorithms, not the substrate.
package baseline

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/rt"
)

// NaiveSift is the strawman sifting round from the paper's introduction:
// flip a biased coin (1 with probability 1/√n), tell everyone, collect, and
// die if you flipped 0 while somebody else is seen with a 1.
//
// Unlike PoisonPill there is no commit state hiding the flip: the adaptive
// adversary sees every coin before its owner communicates, so it can
// schedule all 0-flippers to complete their phase before any 1-flipper
// propagates — and then nobody dies. The paper's Section 1 uses exactly this
// failure to motivate the poison-pill mechanism.
func NaiveSift(c rt.Comm, inst string, prob float64, s *core.State) core.Outcome {
	p := c.Proc()
	reg := inst + "/flip"

	s.Stage = core.StageFlip
	coin := p.Flip(prob)
	s.Flip = coin

	s.Stage = core.StagePriority
	c.Propagate(reg, coin)
	views := c.Collect(reg)

	s.Stage = core.StageDecideSift
	outcome := core.Survive
	if coin == 0 {
		self := p.ID()
	scan:
		for _, v := range views {
			for _, e := range v.Entries {
				if e.Owner != self {
					if flip, ok := e.Val.(int); ok && flip == 1 {
						outcome = core.Die
						break scan
					}
				}
			}
		}
	}
	s.LastOutcome = outcome
	s.Sifts++
	return outcome
}

// matchInst names the register namespace of the match at a tournament level
// and bracket group.
func matchInst(inst string, level, group int) string {
	return inst + "/m/" + strconv.Itoa(level) + "/" + strconv.Itoa(group)
}

// matchRounds bounds the SSW race of a single two-contender match; the race
// terminates in expected O(1) rounds, and the budget only exists to surface
// scheduler bugs as an explicit panic rather than an endless run.
const matchRounds = 1 << 20

// playMatch races the participant against (at most one) opponent from the
// sibling subtree, using the paper's own round mechanism: PreRound decides
// Win when the contender is two rounds ahead of everything it can see and
// Lose when it is behind (Figure 4 / [SSW91]); between rounds, a
// two-participant basic PoisonPill with fair coin bias sifts the pair so the
// race makes progress. A walkover (no opponent ever shows up) is decided by
// the R < r−1 rule after two rounds, exactly like a solo election.
func playMatch(c rt.Comm, inst string, s *core.State) core.Decision {
	for r := 1; r <= matchRounds; r++ {
		s.SetRound(r)
		d := core.PreRound(c, inst, r, s)
		if d != core.Proceed {
			return d
		}
		// Fair-bias pair sift: at least one of the two survives (Claim 3.1
		// holds for any participant count), and with constant probability
		// exactly one does, so the race decides in expected O(1) rounds.
		if pairSift(c, inst+"/sift/"+strconv.Itoa(r), s) == core.Die {
			return core.Lose
		}
	}
	panic("baseline: tournament match failed to decide within its round budget")
}

// pairSift is the basic PoisonPill round with probability 1/2 (the natural
// bias for two contenders) on a match-private register namespace.
func pairSift(c rt.Comm, inst string, s *core.State) core.Outcome {
	return core.PoisonPillBiased(c, inst, 0.5, s)
}

// Tournament runs the [AGTV92] tournament-tree leader election for the
// participant behind c. Leaf positions are the processor IDs; the winner of
// the match at level l proceeds to level l+1, for ⌈log₂ n⌉ levels. A global
// doorway preserves linearizability, as in the paper's construction.
//
// With the SSW race as the two-processor decision procedure, each match
// costs expected O(1) communicate calls, so a contender performs expected
// Θ(log n) communicate calls — the bound the paper's algorithm improves to
// O(log* k).
func Tournament(c rt.Comm, inst string) core.Decision {
	s := core.NewState(c.Proc(), "tournament")
	return TournamentWithState(c, inst, s)
}

// TournamentWithState is Tournament with a caller-supplied published state.
func TournamentWithState(c rt.Comm, inst string, s *core.State) core.Decision {
	if core.Doorway(c, inst, s) == core.Lose {
		s.SetDecided(core.Lose)
		return core.Lose
	}
	n := c.Proc().N()
	levels := 0
	for 1<<levels < n {
		levels++
	}
	pos := int(c.Proc().ID())
	for l := 0; l < levels; l++ {
		group := pos >> (l + 1)
		if d := playMatch(c, matchInst(inst, l, group), s); d == core.Lose {
			s.SetDecided(core.Lose)
			return core.Lose
		}
	}
	s.SetDecided(core.Win)
	return core.Win
}

// TournamentLevels returns the number of match levels a full tournament over
// n processors has: ⌈log₂ n⌉.
func TournamentLevels(n int) int {
	levels := 0
	for 1<<levels < n {
		levels++
	}
	return levels
}
