package baseline

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/renaming"
	"repro/internal/rt"
)

// RandomScanState is the experiment-visible progress of one random-scan
// renaming participant.
type RandomScanState struct {
	// Trials counts the names the participant has competed for.
	Trials int
	// Picks lists those names in order.
	Picks []int
	// Acquired is the returned name (0 until decided).
	Acquired int
	// Election is the published state of the embedded leader elections.
	Election *core.State
}

// scanContendedReg mirrors the contention register of the paper's renaming
// algorithm, so both renaming algorithms expose the same information to
// schedulers and measurements.
const scanContendedReg = "scan/contended"

func scanElectInst(u int) string { return "scan/elect/" + strconv.Itoa(u) }

// RandomScanRename implements the renaming strategy of [AAG+10] discussed in
// the paper's related work: each processor tries all n names in a private
// uniformly random order, skipping names it has already seen contended, and
// competes for each tried name with leader election until it wins one.
//
// The approach is message-light but slow: a processor that starts late may
// have to walk past Ω(n) taken names before finding a free one, giving Ω(n)
// expected time — the bound the paper's balls-into-bins renaming improves to
// O(log² n). The function returns the acquired name in [1, n].
func RandomScanRename(c rt.Comm, s *RandomScanState) int {
	p := c.Proc()
	n := p.N()
	es := &core.State{Algorithm: "scan/elect", Stage: core.StageInit, Flip: -1}
	s.Election = es
	p.Publish(s)

	order := p.Rand().Perm(n) // private random name order
	mine := renaming.NewNameSet(n)
	for _, idx := range order {
		u := idx + 1
		// Refresh contention knowledge, as the paper's Figure 3 does at the
		// top of each iteration (lines 33-37).
		views := c.Collect(scanContendedReg)
		for _, v := range views {
			for _, e := range v.Entries {
				if set, ok := e.Val.(renaming.NameSet); ok {
					mine = mine.Union(set)
				}
			}
		}
		if mine.Has(u) {
			continue // already contended: trying it would just lose
		}
		mine = mine.With(u)
		s.Trials++
		s.Picks = append(s.Picks, u)
		c.Propagate(scanContendedReg, mine)
		if core.LeaderElectWithState(c, scanElectInst(u), es) == core.Win {
			s.Acquired = u
			return u
		}
	}
	// Unreachable for k ≤ n participants: each name is won by at most one
	// processor and a solo contender always wins, so a processor that tried
	// every name must have won one.
	panic("baseline: random-scan renaming exhausted all names")
}
