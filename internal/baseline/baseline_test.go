package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
)

// runTournament simulates the tournament baseline with participants on the
// first k of n processors.
func runTournament(t *testing.T, n, k int, seed int64, adv sim.Adversary) (map[sim.ProcID]core.Decision, sim.Stats) {
	t.Helper()
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed, MaxFaults: -1})
	stores := quorum.InstallStores(k2)
	decisions := make(map[sim.ProcID]core.Decision, k)
	for i := 0; i < k; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			decisions[id] = Tournament(c, "tourn")
		})
	}
	stats, err := k2.Run(adv)
	if err != nil {
		t.Fatalf("tournament run (n=%d k=%d seed=%d): %v", n, k, seed, err)
	}
	return decisions, stats
}

func checkUniqueWinner(t *testing.T, decisions map[sim.ProcID]core.Decision, k int) {
	t.Helper()
	if len(decisions) != k {
		t.Fatalf("%d of %d participants decided", len(decisions), k)
	}
	winners := 0
	for id, d := range decisions {
		switch d {
		case core.Win:
			winners++
		case core.Lose:
		default:
			t.Fatalf("processor %d returned %v", id, d)
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}

func TestTournamentUniqueWinner(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 9, 16} {
		for seed := int64(0); seed < 5; seed++ {
			decisions, _ := runTournament(t, n, n, seed, nil)
			checkUniqueWinner(t, decisions, n)
		}
	}
}

func TestTournamentPartialParticipation(t *testing.T) {
	cases := []struct{ n, k int }{{8, 1}, {8, 2}, {16, 3}, {16, 7}, {17, 5}}
	for _, tc := range cases {
		for seed := int64(0); seed < 3; seed++ {
			decisions, _ := runTournament(t, tc.n, tc.k, seed, nil)
			checkUniqueWinner(t, decisions, tc.k)
		}
	}
}

func TestTournamentTimeGrowsLogarithmically(t *testing.T) {
	// The winner plays ⌈log₂ n⌉ matches, each costing a constant expected
	// number of communicate calls — so doubling n adds roughly a constant.
	// Sanity-check the trend: max calls at n=64 must exceed max calls at
	// n=8, and the per-level cost must be bounded.
	maxAt := func(n int) int {
		worst := 0
		for seed := int64(0); seed < 3; seed++ {
			_, stats := runTournament(t, n, n, seed, nil)
			if mc := stats.MaxCommunicateCalls(); mc > worst {
				worst = mc
			}
		}
		return worst
	}
	at8, at64 := maxAt(8), maxAt(64)
	if at64 <= at8 {
		t.Fatalf("tournament time did not grow: %d calls at n=8, %d at n=64", at8, at64)
	}
	if at64 > 60*TournamentLevels(64) {
		t.Fatalf("tournament cost per level too high: %d calls over %d levels", at64, TournamentLevels(64))
	}
}

func TestTournamentLevels(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4}, {1024, 10},
	} {
		if got := TournamentLevels(tc.n); got != tc.want {
			t.Fatalf("TournamentLevels(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestTournamentLatecomerLoses(t *testing.T) {
	// Doorway linearizability applies to the baseline too: a participant
	// started after the winner finished must lose.
	k2 := sim.NewKernel(sim.Config{N: 4, Seed: 3})
	stores := quorum.InstallStores(k2)
	decisions := make(map[sim.ProcID]core.Decision)
	for i := 0; i < 2; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			decisions[id] = Tournament(c, "tourn")
		})
	}
	adv := sim.AdversaryFunc(func(k *sim.Kernel) sim.Action {
		if !k.Started(0) {
			return sim.Start{Proc: 0}
		}
		if !k.Done(0) {
			if k.Steppable(0) {
				return sim.Step{Proc: 0}
			}
			return k.FairActionExcludingStarts()
		}
		if !k.Started(1) {
			return sim.Start{Proc: 1}
		}
		return nil
	})
	if _, err := k2.Run(adv); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if decisions[0] != core.Win || decisions[1] != core.Lose {
		t.Fatalf("decisions = %v, want 0 wins and 1 loses", decisions)
	}
}

// runNaive runs one naive sifting round over all n processors with the basic
// PoisonPill bias.
func runNaive(t *testing.T, n int, seed int64, adv sim.Adversary) map[sim.ProcID]core.Outcome {
	t.Helper()
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed})
	stores := quorum.InstallStores(k2)
	outcomes := make(map[sim.ProcID]core.Outcome, n)
	prob := 1 / float64(intSqrt(n))
	for i := 0; i < n; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := core.NewState(p, "naive")
			outcomes[id] = NaiveSift(c, "nv", prob, s)
		})
	}
	if _, err := k2.Run(adv); err != nil {
		t.Fatalf("naive run: %v", err)
	}
	return outcomes
}

func intSqrt(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

func TestNaiveSiftDropsUnderFairSchedule(t *testing.T) {
	// Under a benign schedule the naive sifter does work: 0-flippers that
	// see a 1 die. With n = 64 and bias 1/8 there is at least one 1-flipper
	// with overwhelming probability, so across seeds some processors die.
	died := 0
	for seed := int64(0); seed < 5; seed++ {
		outcomes := runNaive(t, 64, seed, nil)
		for _, o := range outcomes {
			if o == core.Die {
				died++
			}
		}
	}
	if died == 0 {
		t.Fatal("naive sifter never dropped anyone under a fair schedule")
	}
}

func TestNaiveSiftAtLeastOneSurvivorAnySeed(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		outcomes := runNaive(t, 32, seed, nil)
		alive := 0
		for _, o := range outcomes {
			if o == core.Survive {
				alive++
			}
		}
		if alive == 0 {
			t.Fatalf("seed=%d: naive sifter killed everyone", seed)
		}
	}
}

func TestPairSiftNeverKillsBoth(t *testing.T) {
	// The tournament's per-round pair sift inherits Claim 3.1: the two
	// match contenders can never both die.
	for seed := int64(0); seed < 20; seed++ {
		k2 := sim.NewKernel(sim.Config{N: 5, Seed: seed})
		stores := quorum.InstallStores(k2)
		outcomes := make(map[sim.ProcID]core.Outcome, 2)
		for i := 0; i < 2; i++ {
			id := sim.ProcID(i)
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := core.NewState(p, "pair")
				outcomes[id] = pairSift(c, "m", s)
			})
		}
		if _, err := k2.Run(nil); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if outcomes[0] == core.Die && outcomes[1] == core.Die {
			t.Fatalf("seed=%d: both match contenders died", seed)
		}
	}
}

// runRandomScan simulates the random-scan renaming baseline.
func runRandomScan(t *testing.T, n, k int, seed int64) (map[sim.ProcID]int, map[sim.ProcID]*RandomScanState, sim.Stats) {
	t.Helper()
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed, MaxFaults: -1})
	stores := quorum.InstallStores(k2)
	names := make(map[sim.ProcID]int, k)
	states := make(map[sim.ProcID]*RandomScanState, k)
	for i := 0; i < k; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := &RandomScanState{}
			states[id] = s
			names[id] = RandomScanRename(c, s)
		})
	}
	stats, err := k2.Run(nil)
	if err != nil {
		t.Fatalf("random-scan run: %v", err)
	}
	return names, states, stats
}

func TestRandomScanUniqueNames(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		for seed := int64(0); seed < 3; seed++ {
			names, _, _ := runRandomScan(t, n, n, seed)
			seen := make(map[int]bool, n)
			for id, u := range names {
				if u < 1 || u > n {
					t.Fatalf("processor %d returned out-of-range name %d", id, u)
				}
				if seen[u] {
					t.Fatalf("duplicate name %d", u)
				}
				seen[u] = true
			}
		}
	}
}

func TestRandomScanTrialsBounded(t *testing.T) {
	_, states, _ := runRandomScan(t, 16, 16, 2)
	for id, s := range states {
		if s.Trials < 1 || s.Trials > 16 {
			t.Fatalf("processor %d made %d trials", id, s.Trials)
		}
		if s.Acquired == 0 {
			t.Fatalf("processor %d state has no acquired name", id)
		}
	}
}
