// Breakdown aggregation, trace-file serialization, the attribution
// table, Chrome trace_event export, and trace diffing. Everything here
// is offline analysis — it runs after a campaign, never on a hot path.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// PhaseStat summarises every span of one phase.
type PhaseStat struct {
	Phase string `json:"phase"`
	Layer string `json:"layer"`
	// Count is the number of spans.
	Count int64 `json:"count"`
	// TotalNs is the summed duration.
	TotalNs int64 `json:"total_ns"`
	// MeanNs, P50Ns and P99Ns describe the duration distribution.
	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	// MeanDetail is the mean of the phase's Detail payload (queue
	// depth, frames per drain, snapshot hit rate, ...).
	MeanDetail float64 `json:"mean_detail"`
}

// Breakdown is the per-phase latency attribution of one traced run.
type Breakdown struct {
	// Phases holds one entry per phase that recorded at least one
	// span, in declaration (layer) order.
	Phases []PhaseStat `json:"phases"`
	// Elections is the number of distinct election IDs seen.
	Elections int64 `json:"elections"`
	// Spans is the number of spans aggregated.
	Spans int64 `json:"spans"`
	// Dropped is how many spans the ring evicted before snapshot.
	Dropped uint64 `json:"dropped"`
	// MeanExtentNs is the mean, over elections, of the extent of the
	// election's client-layer spans: latest span end minus earliest span
	// start. Client spans tile each participant's time inside communicate
	// calls, so the extent reconstructs the election's wall-clock duration
	// from the trace alone — the number the attribution table reconciles
	// against the measured election latency. Ring eviction truncates the
	// extent of the oldest elections; size the ring for the run when the
	// reconciliation matters.
	MeanExtentNs int64 `json:"mean_extent_ns,omitempty"`
}

// Stat returns the stat for the named phase, if present.
func (b *Breakdown) Stat(phase string) (PhaseStat, bool) {
	for _, s := range b.Phases {
		if s.Phase == phase {
			return s, true
		}
	}
	return PhaseStat{}, false
}

// ClientSumNs returns the mean summed duration of the sequential
// client-layer phases (encode + send + quorum-wait) per span-group: the
// per-communicate client latency the attribution table reconciles
// against measured election time. The denominator is the number of
// quorum-wait spans (one per communicate call).
func (b *Breakdown) ClientSumNs() int64 {
	var total, calls int64
	for _, s := range b.Phases {
		switch s.Phase {
		case phaseNames[PEncode], phaseNames[PSend], phaseNames[PQuorumWait]:
			total += s.TotalNs
		}
		if s.Phase == phaseNames[PQuorumWait] {
			calls = s.Count
		}
	}
	if calls == 0 {
		return 0
	}
	return total / calls
}

// ComputeBreakdown aggregates spans into a Breakdown. Deterministic:
// the result depends only on the multiset of spans, not their order.
func ComputeBreakdown(spans []Span, dropped uint64) *Breakdown {
	durs := make([][]int64, numPhases)
	details := make([]float64, numPhases)
	totals := make([]int64, numPhases)
	type window struct{ min, max int64 }
	elections := map[uint64]*window{}
	for _, sp := range spans {
		if sp.Phase == PNone || sp.Phase >= numPhases {
			continue
		}
		durs[sp.Phase] = append(durs[sp.Phase], sp.Dur)
		details[sp.Phase] += float64(sp.Detail)
		totals[sp.Phase] += sp.Dur
		if sp.Election == 0 || sp.Phase.Layer() != "client" {
			continue
		}
		w := elections[sp.Election]
		if w == nil {
			w = &window{min: sp.Start, max: sp.Start + sp.Dur}
			elections[sp.Election] = w
			continue
		}
		if sp.Start < w.min {
			w.min = sp.Start
		}
		if end := sp.Start + sp.Dur; end > w.max {
			w.max = end
		}
	}
	b := &Breakdown{Elections: int64(len(elections)), Dropped: dropped}
	if len(elections) > 0 {
		var extent int64
		for _, w := range elections {
			extent += w.max - w.min
		}
		b.MeanExtentNs = extent / int64(len(elections))
	}
	for p := PEncode; p < numPhases; p++ {
		d := durs[p]
		if len(d) == 0 {
			continue
		}
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		n := int64(len(d))
		b.Spans += n
		b.Phases = append(b.Phases, PhaseStat{
			Phase:      p.String(),
			Layer:      p.Layer(),
			Count:      n,
			TotalNs:    totals[p],
			MeanNs:     totals[p] / n,
			P50Ns:      quantile(d, 0.50),
			P99Ns:      quantile(d, 0.99),
			MeanDetail: details[p] / float64(n),
		})
	}
	return b
}

// quantile reads the q-quantile from an ascending slice (nearest rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Meta describes the run a trace file was captured from, so the
// attribution table can reconcile phase sums against measured latency.
type Meta struct {
	// Name labels the run (e.g. "t13/tcp/n=32").
	Name string `json:"name"`
	// Transport is the backend ("chan", "tcp", ...).
	Transport string `json:"transport,omitempty"`
	// N and K are cluster size and contenders.
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`
	// Elections and Participants scope the span population.
	Elections    int `json:"elections,omitempty"`
	Participants int `json:"participants,omitempty"`
	// MeanElectionSec is the measured mean wall-clock election
	// latency the phase sum is reconciled against (0 if unknown).
	MeanElectionSec float64 `json:"mean_election_sec,omitempty"`
	// MeanRounds and MeanMsgs are per-election protocol-shape
	// observations (paper: O(log* k) rounds, O(kn) messages).
	MeanRounds float64 `json:"mean_rounds,omitempty"`
	MeanMsgs   float64 `json:"mean_msgs,omitempty"`
}

// File is the on-disk trace format: run metadata, the aggregated
// breakdown, and (optionally) the raw spans for Chrome export.
type File struct {
	Meta      Meta       `json:"meta"`
	Breakdown *Breakdown `json:"breakdown"`
	Spans     []Span     `json:"spans,omitempty"`
}

// WriteFile serializes f as indented JSON to path.
func WriteFile(path string, f *File) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads a trace file written by WriteFile.
func ReadFile(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("trace: parse %s: %w", path, err)
	}
	return &f, nil
}

// WriteTable renders the attribution table — the "33ms = X encode +
// Y send + Z quorum-wait" answer. Client-layer phases are sequential
// within a communicate call, so their per-call sum is reconciled
// against the measured election latency; transport and server phases
// attribute time *inside* the quorum wait and are listed below it,
// not added to the sum.
func (f *File) WriteTable(w io.Writer) {
	b := f.Breakdown
	if b == nil || len(b.Phases) == 0 {
		fmt.Fprintln(w, "trace: no spans recorded")
		return
	}
	fmt.Fprintf(w, "trace %s: %d spans, %d elections", f.Meta.Name, b.Spans, b.Elections)
	if b.Dropped > 0 {
		fmt.Fprintf(w, " (%d spans evicted by ring wrap)", b.Dropped)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %-10s %-12s %10s %12s %12s %12s %10s\n",
		"layer", "phase", "count", "mean", "p50", "p99", "detail")
	lastLayer := ""
	for _, s := range b.Phases {
		layer := s.Layer
		if layer == lastLayer {
			layer = ""
		} else {
			lastLayer = s.Layer
		}
		fmt.Fprintf(w, "  %-10s %-12s %10d %12s %12s %12s %10.1f\n",
			layer, s.Phase, s.Count,
			fmtNs(s.MeanNs), fmtNs(s.P50Ns), fmtNs(s.P99Ns), s.MeanDetail)
	}
	sum := b.ClientSumNs()
	if sum > 0 {
		fmt.Fprintf(w, "  client phase sum (encode+send+quorum-wait): %s per communicate call\n", fmtNs(sum))
	}
	if f.Meta.MeanElectionSec > 0 && b.MeanExtentNs > 0 {
		meas := f.Meta.MeanElectionSec * 1e9
		cov := float64(b.MeanExtentNs) / meas * 100
		fmt.Fprintf(w, "  trace-reconstructed election span: %s — %.1f%% of measured %s latency\n",
			fmtNs(b.MeanExtentNs), cov, fmtNs(int64(meas)))
	}
	if f.Meta.MeanRounds > 0 {
		fmt.Fprintf(w, "  shape: %.2f rounds/election, %.1f msgs/election\n",
			f.Meta.MeanRounds, f.Meta.MeanMsgs)
	}
}

// Coverage returns the trace-reconstructed election span (mean extent of
// each election's client-layer spans) as a fraction of the measured mean
// election latency (0 when either side is unknown). A healthy traced run
// sits near 1.0 — the phase table attributes what the extent covers — and
// the acceptance bar is |1-coverage| ≤ 0.10. Undersized rings drag the
// ratio down: evicted spans shrink the oldest elections' extents.
func (f *File) Coverage() float64 {
	if f.Breakdown == nil || f.Meta.MeanElectionSec <= 0 {
		return 0
	}
	if f.Breakdown.MeanExtentNs == 0 {
		return 0
	}
	return float64(f.Breakdown.MeanExtentNs) / (f.Meta.MeanElectionSec * 1e9)
}

// WriteDiff renders a per-phase comparison of two trace files: mean
// duration before → after with the ratio, for spotting which phase a
// perf PR actually moved.
func WriteDiff(w io.Writer, a, b *File) {
	fmt.Fprintf(w, "trace diff: %s -> %s\n", a.Meta.Name, b.Meta.Name)
	fmt.Fprintf(w, "  %-12s %12s %12s %8s\n", "phase", "before", "after", "ratio")
	for p := PEncode; p < numPhases; p++ {
		name := p.String()
		sa, oka := stat(a, name)
		sb, okb := stat(b, name)
		if !oka && !okb {
			continue
		}
		ratio := "-"
		if oka && okb && sa.MeanNs > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(sb.MeanNs)/float64(sa.MeanNs))
		}
		fmt.Fprintf(w, "  %-12s %12s %12s %8s\n",
			name, fmtStatNs(sa, oka), fmtStatNs(sb, okb), ratio)
	}
	if a.Meta.MeanElectionSec > 0 && b.Meta.MeanElectionSec > 0 {
		fmt.Fprintf(w, "  election latency: %s -> %s (%.2fx)\n",
			fmtNs(int64(a.Meta.MeanElectionSec*1e9)),
			fmtNs(int64(b.Meta.MeanElectionSec*1e9)),
			b.Meta.MeanElectionSec/a.Meta.MeanElectionSec)
	}
}

func stat(f *File, phase string) (PhaseStat, bool) {
	if f.Breakdown == nil {
		return PhaseStat{}, false
	}
	return f.Breakdown.Stat(phase)
}

func fmtStatNs(s PhaseStat, ok bool) string {
	if !ok {
		return "-"
	}
	return fmtNs(s.MeanNs)
}

// fmtNs renders a nanosecond duration human-readably (ns/µs/ms/s).
func fmtNs(ns int64) string {
	switch {
	case ns < 1e3:
		return fmt.Sprintf("%dns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}

// chromeEvent is one entry of the Chrome trace_event JSON array
// (about://tracing "X" complete events; ts/dur in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the file's raw spans in Chrome trace_event format
// (load in about://tracing or Perfetto). Layers map to pids, elections
// to tids, so one election's client/transport/server work lines up on
// adjacent tracks. Requires the file to carry raw spans.
func (f *File) WriteChrome(w io.Writer) error {
	layerPid := map[string]int{"client": 1, "transport": 2, "server": 3}
	events := make([]chromeEvent, 0, len(f.Spans)+3)
	for layer, pid := range layerPid {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": layer},
		})
	}
	// Metadata events sort by pid for a stable export.
	sort.Slice(events, func(i, j int) bool { return events[i].Pid < events[j].Pid })
	for _, sp := range f.Spans {
		ph := "X"
		if sp.Dur == 0 {
			ph = "i"
		}
		events = append(events, chromeEvent{
			Name: sp.Phase.String(),
			Cat:  sp.Phase.Layer(),
			Ph:   ph,
			Ts:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.Dur) / 1e3,
			Pid:  layerPid[sp.Phase.Layer()],
			Tid:  sp.Election,
			Args: map[string]any{"round": sp.Round, "detail": sp.Detail},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Summary returns a one-line digest for logs: top phases by total time.
func (b *Breakdown) Summary() string {
	type kv struct {
		name  string
		total int64
	}
	items := make([]kv, 0, len(b.Phases))
	var sum int64
	for _, s := range b.Phases {
		items = append(items, kv{s.Phase, s.TotalNs})
		sum += s.TotalNs
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].total != items[j].total {
			return items[i].total > items[j].total
		}
		return items[i].name < items[j].name
	})
	if len(items) > 4 {
		items = items[:4]
	}
	parts := make([]string, 0, len(items))
	for _, it := range items {
		pct := 0.0
		if sum > 0 {
			pct = float64(it.total) / float64(sum) * 100
		}
		parts = append(parts, fmt.Sprintf("%s %.0f%%", it.name, pct))
	}
	return strings.Join(parts, ", ")
}
