package trace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestRecordAndSpans(t *testing.T) {
	r := NewRecorder(64)
	r.Record(7, 2, PEncode, 100, 50, 0)
	r.Record(7, 2, PQuorumWait, 150, 900, 0)
	r.Event(7, 2, PStraggler, 3)
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Phase != PEncode || spans[0].Dur != 50 || spans[0].Election != 7 || spans[0].Round != 2 {
		t.Fatalf("bad first span: %+v", spans[0])
	}
	if spans[2].Phase != PStraggler || spans[2].Dur != 0 || spans[2].Detail != 3 {
		t.Fatalf("bad event span: %+v", spans[2])
	}
	if r.Recorded() != 3 || r.Dropped() != 0 {
		t.Fatalf("recorded=%d dropped=%d", r.Recorded(), r.Dropped())
	}
}

// TestOverflowEvictsOldest checks the ring never blocks and silently
// drops the oldest spans when it wraps.
func TestOverflowEvictsOldest(t *testing.T) {
	r := NewRecorder(16)
	const total = 100
	for i := 0; i < total; i++ {
		r.Record(uint64(i+1), 1, PMerge, int64(i), 1, 0)
	}
	spans := r.Spans()
	if len(spans) != 16 {
		t.Fatalf("got %d spans, want ring capacity 16", len(spans))
	}
	// Survivors must be exactly the newest 16, oldest first.
	for i, sp := range spans {
		want := uint64(total - 16 + i + 1)
		if sp.Election != want {
			t.Fatalf("span %d: election %d, want %d (oldest-first eviction)", i, sp.Election, want)
		}
	}
	if got := r.Dropped(); got != total-16 {
		t.Fatalf("dropped=%d, want %d", got, total-16)
	}
	if r.Recorded() != total {
		t.Fatalf("recorded=%d, want %d", r.Recorded(), total)
	}
}

// TestConcurrentRecordRace hammers the ring from many writers while a
// reader snapshots, relying on -race to flag any unsynchronized access
// and on seqlock validation to discard torn slots.
func TestConcurrentRecordRace(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	const writers, per = 8, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(uint64(w+1), int32(i%7), Phase(1+i%int(numPhases-1)), int64(i), int64(i%97), int64(w))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, sp := range r.Spans() {
				if sp.Phase == PNone || sp.Phase >= numPhases {
					t.Errorf("torn span leaked: %+v", sp)
					return
				}
				if sp.Election == 0 || sp.Election > writers {
					t.Errorf("corrupt election in span: %+v", sp)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Recorded() != writers*per {
		t.Fatalf("recorded=%d, want %d", r.Recorded(), writers*per)
	}
	if got := len(r.Spans()); got != 128 {
		t.Fatalf("final snapshot has %d spans, want full ring 128", got)
	}
}

// TestNilRecorderZeroAlloc locks in the disabled-tracing contract:
// recording into a nil recorder is a no-op and allocates nothing.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(1, 1, PEncode, 0, 1, 0)
		r.Event(1, 1, PStraggler, 0)
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocated %.1f per op, want 0", allocs)
	}
	if r.Enabled() || r.Cap() != 0 || r.Recorded() != 0 || r.Dropped() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder must report empty state")
	}
}

// TestRecordZeroAlloc locks in the enabled-path contract: appending a
// span allocates nothing.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(64)
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(1, 1, PQuorumWait, 10, 20, 0)
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f per op, want 0", allocs)
	}
}

// synthSpans builds a deterministic seeded span population.
func synthSpans(seed int64, n int) []Span {
	rng := rand.New(rand.NewSource(seed))
	spans := make([]Span, n)
	for i := range spans {
		spans[i] = Span{
			Election: uint64(1 + rng.Intn(20)),
			Round:    int32(rng.Intn(4)),
			Phase:    Phase(1 + rng.Intn(int(numPhases)-1)),
			Start:    int64(i) * 10,
			Dur:      int64(rng.Intn(100000)),
			Detail:   int64(rng.Intn(8)),
		}
	}
	return spans
}

// TestBreakdownDeterminism checks that aggregation depends only on the
// span multiset: two identically seeded populations — one shuffled —
// produce byte-identical breakdowns.
func TestBreakdownDeterminism(t *testing.T) {
	a := synthSpans(42, 5000)
	b := synthSpans(42, 5000)
	rand.New(rand.NewSource(7)).Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	ba := ComputeBreakdown(a, 3)
	bb := ComputeBreakdown(b, 3)
	if !reflect.DeepEqual(ba, bb) {
		t.Fatalf("breakdowns differ across identical seeded runs:\n%+v\nvs\n%+v", ba, bb)
	}
	ja, _ := json.Marshal(ba)
	jb, _ := json.Marshal(bb)
	if !bytes.Equal(ja, jb) {
		t.Fatal("breakdown JSON differs across identical seeded runs")
	}
	if ba.Spans != 5000 || ba.Dropped != 3 {
		t.Fatalf("spans=%d dropped=%d", ba.Spans, ba.Dropped)
	}
}

func TestBreakdownStats(t *testing.T) {
	spans := []Span{
		{Election: 1, Phase: PQuorumWait, Dur: 100},
		{Election: 1, Phase: PQuorumWait, Dur: 300},
		{Election: 2, Phase: PQuorumWait, Dur: 200},
		{Election: 2, Phase: PEncode, Dur: 10},
		{Election: 2, Phase: PSnapshot, Dur: 5, Detail: 1},
		{Election: 2, Phase: PSnapshot, Dur: 5, Detail: 0},
	}
	b := ComputeBreakdown(spans, 0)
	if b.Elections != 2 {
		t.Fatalf("elections=%d, want 2", b.Elections)
	}
	qw, ok := b.Stat("quorum-wait")
	if !ok || qw.Count != 3 || qw.TotalNs != 600 || qw.MeanNs != 200 || qw.P50Ns != 200 {
		t.Fatalf("bad quorum-wait stat: %+v", qw)
	}
	snap, ok := b.Stat("snapshot")
	if !ok || snap.MeanDetail != 0.5 {
		t.Fatalf("bad snapshot stat: %+v", snap)
	}
	// Client sum: (10 + 600) / 3 quorum-wait calls.
	if got := b.ClientSumNs(); got != 203 {
		t.Fatalf("client sum=%d, want 203", got)
	}
}

func TestFileRoundTripAndTable(t *testing.T) {
	spans := synthSpans(1, 500)
	f := &File{
		Meta: Meta{
			Name: "t13/tcp/n=32", Transport: "tcp", N: 32, K: 32,
			Elections: 20, MeanElectionSec: 0.033, MeanRounds: 1.5, MeanMsgs: 200,
		},
		Breakdown: ComputeBreakdown(spans, 0),
		Spans:     spans,
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Breakdown, g.Breakdown) || g.Meta != f.Meta || len(g.Spans) != len(f.Spans) {
		t.Fatal("trace file did not round-trip")
	}
	var tbl bytes.Buffer
	g.WriteTable(&tbl)
	out := tbl.String()
	for _, want := range []string{"quorum-wait", "trace-reconstructed election span", "of measured"} {
		if !bytes.Contains(tbl.Bytes(), []byte(want)) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	var diff bytes.Buffer
	WriteDiff(&diff, g, g)
	if !bytes.Contains(diff.Bytes(), []byte("1.00x")) {
		t.Fatalf("self-diff should show 1.00x ratios:\n%s", diff.String())
	}
}

func TestChromeExport(t *testing.T) {
	spans := []Span{
		{Election: 3, Round: 1, Phase: PEncode, Start: 1000, Dur: 500},
		{Election: 3, Round: 1, Phase: PStraggler, Start: 2000, Dur: 0, Detail: 4},
		{Election: 3, Round: 1, Phase: PMerge, Start: 1500, Dur: 200},
	}
	f := &File{Meta: Meta{Name: "x"}, Breakdown: ComputeBreakdown(spans, 0), Spans: spans}
	var buf bytes.Buffer
	if err := f.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	// 3 process_name metadata events + 3 spans.
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	var complete, instant int
	for _, e := range events {
		switch e["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	if complete != 2 || instant != 1 {
		t.Fatalf("complete=%d instant=%d, want 2/1", complete, instant)
	}
}

func TestPhaseNamesAndParse(t *testing.T) {
	for _, p := range Phases() {
		if p.String() == "unknown" || p.String() == "none" {
			t.Fatalf("phase %d has no name", p)
		}
		if p.Layer() == "" {
			t.Fatalf("phase %s has no layer", p)
		}
		q, ok := ParsePhase(p.String())
		if !ok || q != p {
			t.Fatalf("ParsePhase(%q) = %v, %v", p.String(), q, ok)
		}
	}
	if _, ok := ParsePhase("bogus"); ok {
		t.Fatal("ParsePhase accepted bogus name")
	}
}

func TestEnableMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRecorder(32)
	r.EnableMetrics(reg)
	r.Record(1, 1, PQuorumWait, 0, 5_000_000, 0) // 5ms = 5000µs
	snap := reg.Snapshot()
	found := false
	for _, h := range snap.Histograms {
		if h.Name != "trace_phase_us" {
			continue
		}
		for _, l := range h.Labels {
			if l.Key == "phase" && l.Value == "quorum-wait" && h.Count == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("quorum-wait histogram did not receive the observation")
	}
}

func TestCoverage(t *testing.T) {
	// One election whose client spans tile [0, 33ms): the reconstructed
	// extent must match the measured 33ms latency, regardless of how the
	// time splits across phases. Server spans outside the window must not
	// stretch it.
	spans := []Span{
		{Election: 1, Phase: PEncode, Start: 0, Dur: 1e6},
		{Election: 1, Phase: PSend, Start: 1e6, Dur: 2e6},
		{Election: 1, Phase: PQuorumWait, Start: 3e6, Dur: 30e6},
		{Election: 1, Phase: PMerge, Start: 50e6, Dur: 1e6}, // server layer: ignored
	}
	f := &File{
		Meta:      Meta{MeanElectionSec: 0.033},
		Breakdown: ComputeBreakdown(spans, 0),
	}
	if got := f.Breakdown.MeanExtentNs; got != 33e6 {
		t.Fatalf("MeanExtentNs=%d, want 33e6", got)
	}
	cov := f.Coverage()
	if cov < 0.99 || cov > 1.01 {
		t.Fatalf("coverage=%f, want ~1.0", cov)
	}
}
