// Package trace is the election flight recorder: a low-overhead,
// ring-buffered span store that attributes every microsecond of a live
// election to a phase across the three layers of the network stack —
// client pool (encode, send, quorum wait), transport (queue, drain,
// decode, wire transit) and server (shard wait, merge, snapshot, reply).
//
// The recorder is built for hot paths. Appending a span is a handful of
// atomic stores into a fixed ring — no locks, no allocation, no blocking;
// when the ring wraps, the oldest spans are silently evicted (the Dropped
// counter says how many). All methods are nil-safe: a nil *Recorder
// records nothing, so instrumented code guards with `if rec != nil` and
// the untraced path stays byte- and alloc-identical to an uninstrumented
// build.
//
// Concurrency model: each ring slot is a seqlock. A writer claims a
// globally unique ticket with one atomic add, zeroes the slot's sequence
// word, stores the payload fields, then publishes the ticket as the new
// sequence. A reader snapshots the sequence, copies the fields, and
// re-checks the sequence — a torn slot (sequence changed, or zero) is
// discarded. Tickets are monotonic, so a reader can never confuse two
// generations of the same slot (no ABA), and every field is accessed
// atomically, so the scheme is clean under the race detector.
//
// Tracing sits entirely outside the quorum protocol: spans never alter
// what is sent, when it is sent, or how replies are counted. See
// docs/TRACE.md for the span model and phase taxonomy.
package trace

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Phase identifies what a span's duration was spent on. Phases are grouped
// by layer; Layer reports the grouping.
type Phase uint8

const (
	// PNone is the zero phase; recorded spans never carry it.
	PNone Phase = iota

	// Client-layer phases (electd.Client.rpc / live chan comm). These
	// three are sequential within one communicate call, so their sum
	// approximates the per-round client latency.

	// PEncode is request encoding: building the canonical wire frame.
	PEncode
	// PSend is the broadcast: handing one encoded frame to every
	// server link (coalescer enqueue or direct conn send).
	PSend
	// PQuorumWait is the wait from broadcast until a majority of
	// replies has arrived.
	PQuorumWait
	// PStraggler counts replies dropped pre-decode because their call
	// already completed (Detail = sender ID). Duration is zero.
	PStraggler
	// PRetransmit counts retransmit ticks fired while waiting for a
	// quorum under lossy plans (Detail = attempt number).
	PRetransmit

	// Transport-layer phases.

	// PEnqueue is the handoff of an encoded frame to the conn's
	// outbound queue (Detail = queue depth observed at enqueue).
	PEnqueue
	// PWriteDrain is one write-loop drain: collecting queued frames,
	// coalescing and flushing them (Detail = frames drained).
	PWriteDrain
	// PReadDecode is one read-loop iteration: reading a frame off the
	// socket and dispatching it (Detail = frame bytes).
	PReadDecode
	// PWire is frame transit time from sender enqueue to receiver
	// read, measured by stamping send time after the frame
	// (Detail = frame bytes). Requires stamping enabled on both ends.
	PWire

	// Server-layer phases (electd.Server.Handle).

	// PShardWait is the wait to acquire the election's shard lock.
	PShardWait
	// PMerge is a propagate merge into the register array.
	PMerge
	// PSnapshot is a collect snapshot (Detail = 1 for a cache hit,
	// 0 for a rebuild).
	PSnapshot
	// PReply is reply assembly and handoff to the transport.
	PReply

	numPhases
)

var phaseNames = [numPhases]string{
	PNone:       "none",
	PEncode:     "encode",
	PSend:       "send",
	PQuorumWait: "quorum-wait",
	PStraggler:  "straggler",
	PRetransmit: "retransmit",
	PEnqueue:    "enqueue",
	PWriteDrain: "write-drain",
	PReadDecode: "read-decode",
	PWire:       "wire",
	PShardWait:  "shard-wait",
	PMerge:      "merge",
	PSnapshot:   "snapshot",
	PReply:      "reply",
}

var phaseLayers = [numPhases]string{
	PNone:       "",
	PEncode:     "client",
	PSend:       "client",
	PQuorumWait: "client",
	PStraggler:  "client",
	PRetransmit: "client",
	PEnqueue:    "transport",
	PWriteDrain: "transport",
	PReadDecode: "transport",
	PWire:       "transport",
	PShardWait:  "server",
	PMerge:      "server",
	PSnapshot:   "server",
	PReply:      "server",
}

// String returns the phase's short name (e.g. "quorum-wait").
func (p Phase) String() string {
	if p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Layer reports which stack layer the phase belongs to: "client",
// "transport" or "server".
func (p Phase) Layer() string {
	if p >= numPhases {
		return ""
	}
	return phaseLayers[p]
}

// NumPhases is the number of defined phases (including PNone).
const NumPhases = int(numPhases)

// Phases lists every recordable phase in declaration order.
func Phases() []Phase {
	out := make([]Phase, 0, numPhases-1)
	for p := PEncode; p < numPhases; p++ {
		out = append(out, p)
	}
	return out
}

// ParsePhase maps a short name back to its Phase; ok is false for
// unknown names.
func ParsePhase(name string) (Phase, bool) {
	for p := PEncode; p < numPhases; p++ {
		if phaseNames[p] == name {
			return p, true
		}
	}
	return PNone, false
}

// Span is one recorded interval (or point event, Dur==0) of an election.
type Span struct {
	// Election is the election ID the span belongs to (0 when the
	// layer cannot attribute the work to one election, e.g. a write
	// drain batching frames from many elections).
	Election uint64 `json:"election"`
	// Round is the protocol round in progress (0 outside rounds or
	// when unknown at the recording layer).
	Round int32 `json:"round"`
	// Phase is what the time was spent on.
	Phase Phase `json:"phase"`
	// Start is the span start in nanoseconds on the process-wide
	// monotonic trace clock (see Now).
	Start int64 `json:"start"`
	// Dur is the span duration in nanoseconds (0 for point events).
	Dur int64 `json:"dur"`
	// Detail is a phase-specific payload (queue depth, frame count,
	// cache hit flag, sender ID — see the Phase docs).
	Detail int64 `json:"detail"`
}

// epoch anchors the process-wide monotonic trace clock. All spans —
// client, transport and server side — share it, so in-process wire
// stamping yields directly comparable times.
var epoch = time.Now()

// Now returns the current time on the trace clock: nanoseconds since the
// process's trace epoch, monotonic.
func Now() int64 { return int64(time.Since(epoch)) }

// slot is one seqlock-protected ring entry. seq==0 means "being written
// or never written"; otherwise seq is the monotonic ticket of the span
// the slot holds.
type slot struct {
	seq      atomic.Uint64
	election atomic.Uint64
	meta     atomic.Uint64 // phase | round<<8
	start    atomic.Int64
	dur      atomic.Int64
	detail   atomic.Int64
}

// Recorder is a fixed-capacity, lock-free span ring. The zero value is
// unusable; construct with NewRecorder. A nil Recorder is a valid no-op
// recorder (every method is nil-safe), which is how tracing is disabled.
type Recorder struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64 // tickets issued; slot index = (ticket-1) & mask

	// hists, when non-nil, mirrors span durations into per-phase obs
	// histograms (µs buckets) so /metrics shows live phase latency.
	hists [numPhases]*obs.Histogram
}

// NewRecorder returns a recorder holding the most recent capacity spans.
// Capacity is rounded up to a power of two (minimum 16).
func NewRecorder(capacity int) *Recorder {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Recorder{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap reports the ring capacity in spans.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Enabled reports whether the recorder actually records (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Record appends one span, evicting the oldest if the ring is full.
// Never blocks, never allocates; no-op on a nil recorder. start is a
// trace-clock time (Now), dur and detail are per the Phase docs.
func (r *Recorder) Record(election uint64, round int32, phase Phase, start, dur, detail int64) {
	if r == nil {
		return
	}
	t := r.next.Add(1)
	s := &r.slots[(t-1)&r.mask]
	s.seq.Store(0) // invalidate before mutating payload
	s.election.Store(election)
	s.meta.Store(uint64(phase) | uint64(uint32(round))<<8)
	s.start.Store(start)
	s.dur.Store(dur)
	s.detail.Store(detail)
	s.seq.Store(t)
	if h := r.hists[phase]; h != nil {
		h.Observe(dur / 1e3) // µs
	}
}

// Event records a zero-duration point event at time Now().
func (r *Recorder) Event(election uint64, round int32, phase Phase, detail int64) {
	if r == nil {
		return
	}
	r.Record(election, round, phase, Now(), 0, detail)
}

// Recorded reports how many spans were ever appended (including evicted
// ones).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Dropped reports how many spans were evicted by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if c := uint64(len(r.slots)); n > c {
		return n - c
	}
	return 0
}

// Spans returns a snapshot of the ring's current contents, oldest first.
// Slots being concurrently rewritten are skipped (their span is counted
// as dropped by the next snapshot anyway). Safe to call while writers
// are active.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	hi := r.next.Load()
	if hi == 0 {
		return nil
	}
	lo := uint64(1)
	if c := uint64(len(r.slots)); hi > c {
		lo = hi - c + 1
	}
	out := make([]Span, 0, hi-lo+1)
	for t := lo; t <= hi; t++ {
		s := &r.slots[(t-1)&r.mask]
		seq := s.seq.Load()
		if seq == 0 {
			continue // mid-write
		}
		sp := Span{
			Election: s.election.Load(),
			Start:    s.start.Load(),
			Dur:      s.dur.Load(),
			Detail:   s.detail.Load(),
		}
		meta := s.meta.Load()
		if s.seq.Load() != seq {
			continue // torn: overwritten while copying
		}
		sp.Phase = Phase(meta & 0xff)
		sp.Round = int32(uint32(meta >> 8))
		if sp.Phase == PNone || sp.Phase >= numPhases {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// EnableMetrics registers one µs-bucketed histogram per phase
// ("trace_phase_us" labeled phase=<name>) on reg and mirrors every
// subsequent Record into it. Call once, before concurrent recording
// starts. No-op on a nil recorder.
func (r *Recorder) EnableMetrics(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	bounds := obs.ExpBuckets(1, 4, 12) // 1µs .. ~4.2s
	for p := PEncode; p < numPhases; p++ {
		r.hists[p] = reg.NewHistogram("trace_phase_us",
			"per-phase span durations (µs)", bounds,
			obs.L("phase", p.String()), obs.L("layer", p.Layer()))
	}
}
