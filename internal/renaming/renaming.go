// Package renaming implements the strong (tight) renaming algorithm of
// Alistarh, Gelashvili and Vladu (Section 4, Figure 3): n processors acquire
// distinct names 1..n in expected O(log² n) time and O(n²) messages by
// repeatedly picking a uniformly random name they see as uncontended and
// competing for it in a per-name leader election.
//
// Contention information is a register array "contended": each processor's
// cell holds the (monotonically growing) set of names it knows to be
// contended, encoded as a bitset. A name is contended when any cell's set
// contains it — matching the paper's Contended[j] boolean array, which any
// processor may set to true.
package renaming

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/rt"
)

// NameSet is a bitset over names 1..n (bit i-1 ↔ name i). It is the register
// value processors propagate; once propagated it must not be mutated, so all
// updates go through Clone-and-set.
type NameSet []uint64

// NewNameSet returns an empty set with capacity for n names.
func NewNameSet(n int) NameSet { return make(NameSet, (n+63)/64) }

// Has reports whether name u (1-based) is in the set.
func (s NameSet) Has(u int) bool {
	i := u - 1
	w := i / 64
	if w >= len(s) {
		return false
	}
	return s[w]&(1<<(i%64)) != 0
}

// set adds name u (1-based) in place; unexported because shared sets are
// immutable — use Clone first.
func (s NameSet) set(u int) {
	i := u - 1
	s[i/64] |= 1 << (i % 64)
}

// Clone returns a mutable copy.
func (s NameSet) Clone() NameSet { return append(NameSet(nil), s...) }

// With returns a copy of s with name u added.
func (s NameSet) With(u int) NameSet {
	out := s.Clone()
	out.set(u)
	return out
}

// Union returns a copy of s with all of t's names added, or s itself when t
// adds nothing.
func (s NameSet) Union(t NameSet) NameSet {
	changed := false
	for w := range t {
		if t[w]&^s[w] != 0 {
			changed = true
			break
		}
	}
	if !changed {
		return s
	}
	out := s.Clone()
	for w := range t {
		out[w] |= t[w]
	}
	return out
}

// Count returns the number of names in the set.
func (s NameSet) Count() int {
	c := 0
	for _, w := range s {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// WireSize implements rt.WireSizer with the set's exact encoded body size
// under the internal/wire codec: the word count as a uvarint plus eight
// bytes per bitset word.
func (s NameSet) WireSize() int { return rt.UvarintSize(uint64(len(s))) + 8*len(s) }

// State is the adversary- and experiment-visible progress of one renaming
// participant.
type State struct {
	// Iterations counts started while-loop iterations (Fig 3 line 32).
	Iterations int
	// Contending is the name currently being competed for (0 if none).
	Contending int
	// Picks lists every name the participant competed for, in order; the
	// contention-distribution experiments (F3) derive per-name contender
	// counts from it.
	Picks []int
	// Acquired is the returned name (0 until decided).
	Acquired int
	// Election is the published state of the embedded leader elections.
	Election *core.State
}

// contendedReg is the register array holding contention sets.
const contendedReg = "rename/contended"

// electInst names the leader-election instance for one name.
func electInst(u int) string { return "rename/elect/" + strconv.Itoa(u) }

// GetName executes the renaming algorithm (Figure 3) for the participant
// behind c and returns its acquired name in [1, n].
//
// Each loop iteration collects contention information from a quorum (line
// 33), merges it (lines 34-36), propagates the merged set (line 37), picks
// a uniformly random name it still sees as uncontended (line 38), marks it
// contended (line 39), competes for it in that name's leader election (line
// 40), propagates the contention (line 41) and returns the name upon winning
// (lines 42-43).
//
// Guarantees (Lemma A.6, Theorems 4.2 and A.13): no two processors return
// the same name; with fewer than half the processors faulty every non-faulty
// participant returns with probability 1; expected message complexity is
// O(n²) and expected time complexity O(log² n).
func GetName(c rt.Comm, s *State) int {
	p := c.Proc()
	n := p.N()
	es := &core.State{Algorithm: "rename/elect", Stage: core.StageInit, Flip: -1}
	s.Election = es
	p.Publish(s)

	mine := NewNameSet(n) // Contended[n] = {false}, all-local view
	for {                 // line 32
		s.Iterations++
		views := c.Collect(contendedReg) // line 33
		for _, v := range views {        // lines 34-36
			for _, e := range v.Entries {
				if set, ok := e.Val.(NameSet); ok {
					mine = mine.Union(set)
				}
			}
		}
		c.Propagate(contendedReg, mine) // line 37

		spot := pickUncontended(p, n, mine) // line 38
		if spot == 0 {
			// Every name looks contended in this (transient) view; names
			// are freed only logically as elections resolve, so re-collect.
			// Termination follows from Lemma A.6: eventually some name the
			// participant can win is visible as uncontended.
			continue
		}
		mine = mine.With(spot) // line 39
		s.Contending = spot
		s.Picks = append(s.Picks, spot)

		outcome := core.LeaderElectWithState(c, electInst(spot), es) // line 40
		c.Propagate(contendedReg, mine)                              // line 41
		s.Contending = 0
		if outcome == core.Win { // lines 42-43
			s.Acquired = spot
			return spot
		}
	}
}

// pickUncontended implements line 38: a uniformly random name among those
// the caller's view reports uncontended, or 0 when none remain.
func pickUncontended(p rt.Procer, n int, contended NameSet) int {
	free := n - contended.Count()
	if free <= 0 {
		return 0
	}
	idx := p.Rand().Intn(free)
	for u := 1; u <= n; u++ {
		if contended.Has(u) {
			continue
		}
		if idx == 0 {
			return u
		}
		idx--
	}
	return 0
}
