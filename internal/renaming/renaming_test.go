package renaming

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// runRenaming simulates renaming with participants on the first k of n
// processors and returns name per participant, states, stats.
func runRenaming(t *testing.T, n, k int, seed int64, adv sim.Adversary) (map[sim.ProcID]int, map[sim.ProcID]*State, sim.Stats) {
	t.Helper()
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed, MaxFaults: -1})
	stores := quorum.InstallStores(k2)
	names := make(map[sim.ProcID]int, k)
	states := make(map[sim.ProcID]*State, k)
	for i := 0; i < k; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := &State{}
			states[id] = s
			names[id] = GetName(c, s)
		})
	}
	stats, err := k2.Run(adv)
	if err != nil {
		t.Fatalf("renaming run (n=%d k=%d seed=%d): %v", n, k, seed, err)
	}
	return names, states, stats
}

// checkNames asserts strong renaming: every participant got a distinct name
// in [1, n].
func checkNames(t *testing.T, names map[sim.ProcID]int, n, k int) {
	t.Helper()
	if len(names) != k {
		t.Fatalf("%d of %d participants returned", len(names), k)
	}
	seen := make(map[int]sim.ProcID, k)
	for id, u := range names {
		if u < 1 || u > n {
			t.Fatalf("processor %d returned name %d outside [1,%d]", id, u, n)
		}
		if prev, dup := seen[u]; dup {
			t.Fatalf("processors %d and %d both returned name %d", prev, id, u)
		}
		seen[u] = id
	}
}

func TestRenamingUniqueNamesFullParticipation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 8, 16, 32} {
		for seed := int64(0); seed < 5; seed++ {
			names, _, _ := runRenaming(t, n, n, seed, nil)
			checkNames(t, names, n, n)
		}
	}
}

func TestRenamingPartialParticipation(t *testing.T) {
	cases := []struct{ n, k int }{{8, 1}, {8, 3}, {16, 5}, {32, 9}, {33, 16}}
	for _, tc := range cases {
		for seed := int64(0); seed < 3; seed++ {
			names, _, _ := runRenaming(t, tc.n, tc.k, seed, nil)
			checkNames(t, names, tc.n, tc.k)
		}
	}
}

func TestRenamingTimePolylog(t *testing.T) {
	// Theorem A.13: O(log² n) communicate calls per processor. Generous
	// deterministic constant; at n = 64, log²₂ n = 36.
	for _, n := range []int{8, 16, 32, 64} {
		worst := 0
		for seed := int64(0); seed < 3; seed++ {
			_, _, stats := runRenaming(t, n, n, seed, nil)
			if mc := stats.MaxCommunicateCalls(); mc > worst {
				worst = mc
			}
		}
		lg := math.Log2(float64(n))
		bound := int(12*lg*lg) + 40
		if worst > bound {
			t.Fatalf("n=%d: max communicate calls %d exceed O(log²n) bound %d", n, worst, bound)
		}
	}
}

func TestRenamingMessagesQuadratic(t *testing.T) {
	// Theorem 4.2: O(n²) messages. The ratio messages/n² must stay below a
	// fixed constant as n grows.
	for _, n := range []int{16, 32, 64} {
		var worst float64
		for seed := int64(0); seed < 3; seed++ {
			_, _, stats := runRenaming(t, n, n, seed, nil)
			ratio := float64(stats.MessagesSent) / float64(n*n)
			if ratio > worst {
				worst = ratio
			}
		}
		if worst > 60 {
			t.Fatalf("n=%d: messages/n² = %.1f blows the O(n²) bound", n, worst)
		}
	}
}

func TestRenamingIterationsRecorded(t *testing.T) {
	_, states, _ := runRenaming(t, 16, 16, 4, nil)
	for id, s := range states {
		if s.Iterations < 1 {
			t.Fatalf("processor %d recorded %d iterations", id, s.Iterations)
		}
		if s.Acquired < 1 || s.Acquired > 16 {
			t.Fatalf("processor %d state acquired = %d", id, s.Acquired)
		}
		if s.Contending != 0 {
			t.Fatalf("processor %d still marked contending after return", id)
		}
	}
}

func TestRenamingDeterministicForSeed(t *testing.T) {
	a, _, sa := runRenaming(t, 12, 12, 9, nil)
	b, _, sb := runRenaming(t, 12, 12, 9, nil)
	for id, u := range a {
		if b[id] != u {
			t.Fatalf("name of %d differs across identical runs", id)
		}
	}
	if sa.MessagesSent != sb.MessagesSent {
		t.Fatal("message counts differ across identical runs")
	}
}

func TestNameSetBasics(t *testing.T) {
	s := NewNameSet(130)
	if s.Has(1) || s.Has(130) {
		t.Fatal("fresh set non-empty")
	}
	s2 := s.With(1).With(64).With(65).With(130)
	for _, u := range []int{1, 64, 65, 130} {
		if !s2.Has(u) {
			t.Fatalf("name %d missing", u)
		}
	}
	if s.Has(1) {
		t.Fatal("With mutated the receiver")
	}
	if s2.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s2.Count())
	}
	if s2.Has(2) || s2.Has(131) || s2.Has(500) {
		t.Fatal("phantom membership")
	}
}

func TestNameSetUnion(t *testing.T) {
	a := NewNameSet(64).With(3)
	b := NewNameSet(64).With(7)
	u := a.Union(b)
	if !u.Has(3) || !u.Has(7) {
		t.Fatal("union missing members")
	}
	if a.Has(7) {
		t.Fatal("union mutated the receiver")
	}
	// No-op unions return the receiver unchanged (no copy).
	same := u.Union(a)
	if &same[0] != &u[0] {
		t.Fatal("no-op union should return the receiver")
	}
}

func TestNameSetQuickProperties(t *testing.T) {
	// Property: for any pair of small sets, Union is commutative in
	// membership and Count, and With(u) adds exactly u.
	f := func(xs, ys []uint8, u uint8) bool {
		const n = 256
		a := NewNameSet(n)
		for _, x := range xs {
			a = a.With(int(x)%n + 1)
		}
		b := NewNameSet(n)
		for _, y := range ys {
			b = b.With(int(y)%n + 1)
		}
		ab, ba := a.Union(b), b.Union(a)
		for v := 1; v <= n; v++ {
			if ab.Has(v) != ba.Has(v) {
				return false
			}
			if ab.Has(v) != (a.Has(v) || b.Has(v)) {
				return false
			}
		}
		name := int(u)%n + 1
		w := a.With(name)
		if !w.Has(name) {
			return false
		}
		extra := 1
		if a.Has(name) {
			extra = 0
		}
		return w.Count() == a.Count()+extra
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNameSetWireSize(t *testing.T) {
	// Exact internal/wire codec body sizes: word-count uvarint + 8 bytes
	// per bitset word.
	if (NewNameSet(64)).WireSize() != 1+8 {
		t.Fatalf("WireSize(64 names) = %d, want 9", NewNameSet(64).WireSize())
	}
	if (NewNameSet(65)).WireSize() != 1+16 {
		t.Fatalf("WireSize(65 names) = %d, want 17", NewNameSet(65).WireSize())
	}
}

func TestPickUncontendedDistribution(t *testing.T) {
	// pickUncontended must return only free names and cover all of them.
	k2 := sim.NewKernel(sim.Config{N: 1, Seed: 5})
	counts := make(map[int]int)
	k2.Spawn(0, func(p *sim.Proc) {
		contended := NewNameSet(8).With(2).With(5)
		for i := 0; i < 400; i++ {
			u := pickUncontended(p, 8, contended)
			if u == 2 || u == 5 || u < 1 || u > 8 {
				t.Errorf("picked contended or out-of-range name %d", u)
				return
			}
			counts[u]++
		}
	})
	if _, err := k2.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(counts) != 6 {
		t.Fatalf("random picks covered %d of 6 free names", len(counts))
	}
}

func TestPickUncontendedAllTaken(t *testing.T) {
	k2 := sim.NewKernel(sim.Config{N: 1, Seed: 5})
	k2.Spawn(0, func(p *sim.Proc) {
		full := NewNameSet(4).With(1).With(2).With(3).With(4)
		if u := pickUncontended(p, 4, full); u != 0 {
			t.Errorf("pick from full set = %d, want 0", u)
		}
	})
	if _, err := k2.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
