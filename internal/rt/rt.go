package rt

import "math/rand"

// ProcID identifies one of the n processors, in the range [0, n).
// sim.ProcID is an alias of this type.
type ProcID int

// Value is the content of a register cell. Values must be treated as
// immutable once propagated: stores hand out references, not copies. On the
// live backend immutability is what makes sharing across goroutines safe.
type Value any

// WireSizer is implemented by payloads that can report their size in bytes
// for bit-complexity accounting. For values that travel through the
// internal/wire codec, WireSize must equal the codec's encoded body size
// exactly — internal/wire's property tests pin that contract.
type WireSizer interface {
	WireSize() int
}

// UvarintSize returns the encoded length in bytes of v as an unsigned
// varint, the integer representation of the internal/wire codec
// (encoding/binary's uvarint). It is exported so WireSizer implementations
// outside internal/wire can account sizes without importing the codec.
func UvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ZigZag maps a signed integer to the unsigned representation the codec
// encodes signed values with (small magnitudes stay small: 0→0, -1→1, 1→2).
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// ValueSize returns the exact encoded size of a register value under the
// internal/wire codec: one kind tag byte plus the value body. Natively
// codable kinds (⊥, bool, int, string) are sized here; every other value
// must implement WireSizer and report its encoded body size (core.Status and
// renaming.NameSet do). Values that do neither cannot cross the wire; they
// are charged a coarse 8-byte body so sim-backend accounting of ad-hoc test
// payloads stays monotone.
func ValueSize(v Value) int {
	switch x := v.(type) {
	case nil:
		return 1
	case bool:
		return 1 + 1
	case int:
		return 1 + UvarintSize(ZigZag(int64(x)))
	case string:
		return 1 + UvarintSize(uint64(len(x))) + len(x)
	default:
		if s, ok := v.(WireSizer); ok {
			return 1 + s.WireSize()
		}
		return 1 + 8
	}
}

// Entry is one register cell in transit or in a view: the cell of register
// array Reg owned by Owner, at write version Seq.
type Entry struct {
	Reg   string
	Owner ProcID
	Seq   uint64
	Val   Value
}

// WireSize implements WireSizer with the entry's exact encoded size under
// the internal/wire codec: owner and sequence number as uvarints plus the
// tagged value. The register name is not part of an entry's wire cost —
// frames carry it once per message, not once per entry.
func (e Entry) WireSize() int {
	return UvarintSize(uint64(e.Owner)) + UvarintSize(e.Seq) + ValueSize(e.Val)
}

// View is one processor's register-array snapshot returned by Comm.Collect:
// the non-⊥ cells of one register array at replier From. In the paper's
// notation, Views[k][j] is Get(j) on the k-th returned View.
type View struct {
	From    ProcID
	Entries []Entry
}

// Get returns the value of owner j's cell in this view; ok is false when the
// view holds ⊥ for j.
func (v View) Get(j ProcID) (Value, bool) {
	for _, e := range v.Entries {
		if e.Owner == j {
			return e.Val, true
		}
	}
	return nil, false
}

// Procer is a processor handle: the surface of sim.Proc that algorithm code
// uses. All methods must be called from the processor's own algorithm
// goroutine.
type Procer interface {
	// ID returns the processor's identifier.
	ID() ProcID
	// N returns the system size.
	N() int
	// Rand returns the processor's private PRNG. The PRNG is owned by the
	// algorithm goroutine and must not be shared.
	Rand() *rand.Rand
	// Send transmits a message to processor "to". Delivery order and timing
	// are backend-specific: the sim backend hands them to the adversary, the
	// live backend to the OS scheduler.
	Send(to ProcID, payload any)
	// Await parks the algorithm until cond() holds. The condition must be a
	// pure function of processor-local state; the backend re-evaluates it at
	// its own scheduling points.
	Await(cond func() bool)
	// Pause yields to the backend's scheduler without a condition.
	Pause()
	// Flip performs a biased local coin flip: 1 with probability prob, else
	// 0. On the sim backend the outcome is published to the adversary before
	// the algorithm can act on it (the strong-adversary model); the live
	// backend yields to the OS scheduler instead.
	Flip(prob float64) int
	// Publish registers a view of the algorithm's local state, readable by
	// the sim adversary at any point and by runners after the run completes.
	Publish(state any)
}

// Comm is the communicate primitive handle for one processor: the surface of
// quorum.Comm that algorithm code uses. Both operations block until at least
// ⌊n/2⌋+1 processors (the caller included) have acknowledged, so any two
// calls intersect in at least one processor — the property every proof in
// the paper relies on.
type Comm interface {
	// Proc returns the processor handle behind this Comm.
	Proc() Procer
	// QuorumSize returns ⌊n/2⌋+1, the number of acknowledgments every
	// communicate call waits for.
	QuorumSize() int
	// Propagate performs communicate(propagate, reg[self] = val): bump the
	// caller's cell of register reg to val and push it to a quorum.
	Propagate(reg string, val Value)
	// Collect performs communicate(collect, reg): gather the register-array
	// views of a quorum (the caller's own included) and return them.
	//
	// The returned slice is arena scratch owned by the Comm: it is valid
	// only until the caller's next communicate call on the same handle,
	// when the backend may reuse its backing array. The View entries
	// themselves are shared immutable snapshots and stay valid. Every
	// algorithm in this repository consumes views before communicating
	// again; callers that need them longer must copy the slice.
	Collect(reg string) []View
}
