// Package rt defines the runtime seam between the leader-election
// algorithms (internal/core, internal/baseline, internal/renaming) and the
// execution backends that run them. The algorithms are written once against
// two small interfaces:
//
//   - Procer: a processor handle — identity, system size, private
//     randomness, message primitives and adversary-visible publication
//     (the Send/Await/Flip/Publish/Rand surface of sim.Proc);
//   - Comm: the communicate primitive of Attiya, Bar-Noy and Dolev as the
//     paper uses it — Propagate and Collect against named register arrays,
//     each waiting for a majority quorum (the surface of quorum.Comm).
//
// Two backends implement the seam:
//
//   - internal/sim + internal/quorum: the deterministic discrete-event
//     kernel with a strong adaptive adversary (the paper's model, exactly);
//   - internal/live: real OS-scheduled goroutines with channel-backed
//     best-effort broadcast and majority-quorum collect (wall-clock runs
//     with genuine contention), optionally degraded by the fault/latency
//     scenarios of internal/fault.
//
// The shared data types (ProcID, Entry, View) live here so that views
// collected on either backend are interchangeable and the algorithm code is
// backend-blind. Keeping algorithms backend-blind is what lets one
// implementation be checked two ways — exhaustively against the model's
// adversary in simulation, and empirically under real contention, faults
// and latency on live hardware.
package rt
