package explore

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
)

// siftFactory builds an n-participant basic or heterogeneous PoisonPill
// round with the Claim 3.1 invariant (≥1 survivor).
func siftFactory(n int, seed int64, het bool) Factory {
	return func() *Instance {
		k := sim.NewKernel(sim.Config{N: n, Seed: seed})
		stores := quorum.InstallStores(k)
		outcomes := make(map[sim.ProcID]core.Outcome, n)
		for i := 0; i < n; i++ {
			id := sim.ProcID(i)
			k.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := core.NewState(p, "sift")
				if het {
					outcomes[id] = core.HetPoisonPill(c, "pp", s)
				} else {
					outcomes[id] = core.PoisonPill(c, "pp", s)
				}
			})
		}
		return &Instance{
			Kernel: k,
			Check: func() error {
				if len(outcomes) != n {
					return fmt.Errorf("only %d of %d participants returned", len(outcomes), n)
				}
				for _, o := range outcomes {
					if o == core.Survive {
						return nil
					}
				}
				return errors.New("all participants died (Claim 3.1 violated)")
			},
		}
	}
}

// electionFactory builds an n-participant leader election with the
// unique-winner invariant.
func electionFactory(n int, seed int64) Factory {
	return func() *Instance {
		k := sim.NewKernel(sim.Config{N: n, Seed: seed})
		stores := quorum.InstallStores(k)
		decisions := make(map[sim.ProcID]core.Decision, n)
		for i := 0; i < n; i++ {
			id := sim.ProcID(i)
			k.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				decisions[id] = core.LeaderElect(c, "e")
			})
		}
		return &Instance{
			Kernel: k,
			Check: func() error {
				winners := 0
				for _, d := range decisions {
					if d == core.Win {
						winners++
					}
				}
				if winners != 1 {
					return fmt.Errorf("%d winners", winners)
				}
				if len(decisions) != n {
					return fmt.Errorf("only %d of %d decided", len(decisions), n)
				}
				return nil
			},
		}
	}
}

func TestExhaustiveTwoProcessorBasicSift(t *testing.T) {
	// Full exploration (no depth cap) of every yield-granular interleaving
	// of a 2-participant basic PoisonPill round, across several coin seeds:
	// Claim 3.1 must hold on every schedule.
	for seed := int64(0); seed < 4; seed++ {
		rep, err := Run(siftFactory(2, seed, false), Config{})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed=%d: %d violations, first: prefix=%v err=%v",
				seed, len(rep.Violations), rep.Violations[0].Prefix, rep.Violations[0].Err)
		}
		if rep.Truncated {
			t.Fatalf("seed=%d: exploration truncated at %d nodes", seed, rep.Nodes)
		}
		if rep.Leaves == 0 || rep.Nodes <= rep.Leaves {
			t.Fatalf("seed=%d: degenerate exploration: %d nodes, %d leaves", seed, rep.Nodes, rep.Leaves)
		}
	}
}

func TestExhaustiveTwoProcessorHetSift(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		rep, err := Run(siftFactory(2, seed, true), Config{})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed=%d: violation on prefix %v: %v",
				seed, rep.Violations[0].Prefix, rep.Violations[0].Err)
		}
	}
}

func TestBoundedThreeProcessorSift(t *testing.T) {
	// Depth-bounded exploration of the 3-participant round: every prefix of
	// 7 choices, each completed fairly.
	rep, err := Run(siftFactory(3, 1, false), Config{MaxDepth: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("violation on prefix %v: %v", rep.Violations[0].Prefix, rep.Violations[0].Err)
	}
	if rep.DepthCapped == 0 {
		t.Fatal("expected some depth-capped paths at MaxDepth 7")
	}
}

func TestBoundedTwoProcessorElection(t *testing.T) {
	// The full election (doorway + pre-rounds + sifts) for two processors,
	// exhaustive over the first 8 choices: exactly one winner on every
	// explored schedule.
	for seed := int64(0); seed < 2; seed++ {
		rep, err := Run(electionFactory(2, seed), Config{MaxDepth: 8})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed=%d: violation on prefix %v: %v",
				seed, rep.Violations[0].Prefix, rep.Violations[0].Err)
		}
		if rep.Nodes < 50 {
			t.Fatalf("seed=%d: suspiciously small exploration (%d nodes)", seed, rep.Nodes)
		}
	}
}

func TestMaxNodesTruncates(t *testing.T) {
	rep, err := Run(siftFactory(3, 2, false), Config{MaxNodes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("MaxNodes did not truncate")
	}
	if rep.Nodes > 10 {
		t.Fatalf("explored %d nodes past the cap", rep.Nodes)
	}
}

func TestViolationDetection(t *testing.T) {
	// A deliberately broken invariant must be caught and reported with a
	// reproducible prefix.
	factory := func() *Instance {
		k := sim.NewKernel(sim.Config{N: 2, Seed: 1})
		k.Spawn(0, func(p *sim.Proc) { p.Pause() })
		k.Spawn(1, func(p *sim.Proc) {})
		return &Instance{
			Kernel: k,
			Check:  func() error { return errors.New("always fails") },
		}
	}
	rep, err := Run(factory, Config{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("violations not detected")
	}
	if len(rep.Violations) != rep.Nodes {
		t.Fatalf("%d violations over %d nodes, want one per node", len(rep.Violations), rep.Nodes)
	}
}

func TestDeterministicReplayOfPrefix(t *testing.T) {
	// Running the same prefix twice yields identical frontier options: the
	// foundation of the exploration's soundness.
	f := siftFactory(2, 3, false)
	rep := &Report{}
	opts1, err := runOne(f, []int{0, 0, 1}, rep)
	if err != nil {
		t.Fatal(err)
	}
	opts2, err := runOne(f, []int{0, 0, 1}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts1) != len(opts2) {
		t.Fatalf("options differ: %v vs %v", opts1, opts2)
	}
	for i := range opts1 {
		if opts1[i] != opts2[i] {
			t.Fatalf("options differ: %v vs %v", opts1, opts2)
		}
	}
}
