// Package explore systematically enumerates adversary schedules for small
// systems and checks safety invariants over every explored execution — a
// bounded model checker for the protocols in this repository.
//
// Randomized testing samples schedules; the theorems quantify over all of
// them. For tiny configurations the gap can be closed: explore drives the
// deterministic kernel through every interleaving of participant progress at
// *yield granularity* (each choice advances one participant to its next
// yield point — communicate-call boundary, coin flip, or return — using the
// canonical micro-scheduler of adversary.Driver). The choice tree is walked
// exhaustively up to a configurable depth; beyond it, each frontier run is
// completed with the fair scheduler, so every explored node still ends in a
// checked terminal state.
//
// The reduction is explicit: schedules differing only in how a single
// advancement's deliveries are micro-ordered are represented by one
// canonical path, and coin flips are fixed by the seed (exploration covers
// scheduling nondeterminism; randomness is swept by running multiple seeds).
// Within that space the exploration is exhaustive.
package explore

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// Instance is one freshly constructed system to execute: a kernel with
// participants spawned, and an invariant to evaluate after the run
// terminates.
type Instance struct {
	// Kernel is ready to run (participants spawned, services installed).
	Kernel *sim.Kernel
	// Check is evaluated after the run completes; a non-nil error is a
	// safety violation for this schedule.
	Check func() error
}

// Factory builds a fresh Instance per explored schedule. It must be
// deterministic: exploration assumes every instance behaves identically
// under identical action sequences.
type Factory func() *Instance

// Config bounds the exploration.
type Config struct {
	// MaxDepth is the exhaustive choice depth; paths longer than this are
	// completed by the fair scheduler rather than branched. 0 means
	// unlimited (full exhaustive exploration — feasible only for the
	// smallest systems).
	MaxDepth int
	// MaxNodes caps the total number of executed schedules, guarding
	// against accidental blow-ups. 0 means DefaultMaxNodes.
	MaxNodes int
}

// DefaultMaxNodes bounds an exploration unless overridden.
const DefaultMaxNodes = 200_000

// Violation records a schedule whose terminal state failed the invariant.
type Violation struct {
	// Prefix is the participant-advancement choice sequence reproducing the
	// failing schedule.
	Prefix []int
	// Err is the invariant failure.
	Err error
}

// Report summarises one exploration.
type Report struct {
	// Nodes is the number of schedules executed (tree nodes).
	Nodes int
	// Leaves counts schedules that terminated with no further choice
	// available (complete interleavings).
	Leaves int
	// DepthCapped counts schedules cut at MaxDepth and fair-completed.
	DepthCapped int
	// Truncated is set when MaxNodes stopped the exploration early.
	Truncated bool
	// Violations lists every invariant failure found.
	Violations []Violation
}

// Failed reports whether any violation was found.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Run explores the schedule space of the factory's system and returns the
// report. It only returns an error for harness-level failures (an instance
// whose kernel run fails for reasons other than the invariant); invariant
// violations are collected in the report.
func Run(factory Factory, cfg Config) (*Report, error) {
	maxNodes := cfg.MaxNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	rep := &Report{}
	// Iterative DFS over choice prefixes.
	stack := [][]int{{}}
	for len(stack) > 0 {
		if rep.Nodes >= maxNodes {
			rep.Truncated = true
			break
		}
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		rep.Nodes++

		options, err := runOne(factory, prefix, rep)
		if err != nil {
			return rep, fmt.Errorf("explore: prefix %v: %w", prefix, err)
		}
		switch {
		case len(options) == 0:
			rep.Leaves++
		case cfg.MaxDepth > 0 && len(prefix) >= cfg.MaxDepth:
			rep.DepthCapped++
		default:
			// Push in reverse so lower-numbered participants are explored
			// first (deterministic order).
			for i := len(options) - 1; i >= 0; i-- {
				child := make([]int, len(prefix)+1)
				copy(child, prefix)
				child[len(prefix)] = options[i]
				stack = append(stack, child)
			}
		}
	}
	return rep, nil
}

// runOne executes one schedule: follow the prefix choices, record the
// options available at the frontier, fair-complete the run, and check the
// invariant.
func runOne(factory Factory, prefix []int, rep *Report) ([]int, error) {
	inst := factory()
	adv := &prefixAdversary{prefix: prefix}
	if _, err := inst.Kernel.Run(adv); err != nil {
		return nil, err
	}
	if inst.Check != nil {
		if err := inst.Check(); err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Prefix: append([]int(nil), prefix...),
				Err:    err,
			})
		}
	}
	return adv.options, nil
}

// prefixAdversary follows a choice prefix — each choice advances one
// participant (by index into Kernel.Participants()) to its next yield point
// — then records the remaining options and hands the run to the fair
// scheduler.
type prefixAdversary struct {
	prefix []int
	pos    int

	parts []sim.ProcID
	drv   adversary.Driver

	advancing   bool
	target      sim.ProcID
	startYields int
	guard       int

	options []int
}

// advanceBudget bounds the micro-actions spent advancing one participant by
// one yield; it exists to convert scheduler bugs into visible failures
// rather than unbounded loops.
const advanceBudget = 1 << 16

// Next implements sim.Adversary.
func (a *prefixAdversary) Next(k *sim.Kernel) sim.Action {
	if a.parts == nil {
		a.parts = k.Participants()
	}
	for {
		if a.advancing {
			if a.reachedYield(k) {
				a.advancing = false
				a.drv = adversary.Driver{}
				continue
			}
			a.guard++
			if a.guard > advanceBudget {
				panic("explore: advancement budget exhausted (scheduler bug)")
			}
			if act := a.drv.Progress(k, a.target); act != nil {
				return act
			}
			// The participant cannot advance in isolation (it waits on
			// quorum replies that only other participants' progress can
			// trigger). Treat the advancement as complete.
			a.advancing = false
			a.drv = adversary.Driver{}
			continue
		}
		if a.pos >= len(a.prefix) {
			a.options = a.available(k)
			return sim.Halt{}
		}
		choice := a.prefix[a.pos]
		a.pos++
		if choice < 0 || choice >= len(a.parts) {
			panic(fmt.Sprintf("explore: choice %d out of range", choice))
		}
		a.target = a.parts[choice]
		if k.Done(a.target) || k.Crashed(a.target) {
			continue // no-op advancement of a finished participant
		}
		a.startYields = k.YieldCount(a.target)
		a.advancing = true
		a.guard = 0
	}
}

// reachedYield reports whether the target advanced by at least one yield (or
// finished).
func (a *prefixAdversary) reachedYield(k *sim.Kernel) bool {
	if k.Done(a.target) || k.Crashed(a.target) {
		return true
	}
	if k.Ready(a.target) {
		return false // not even started yet
	}
	return k.YieldCount(a.target) > a.startYields
}

// available lists the indices of participants that are still unfinished —
// the branching options at this node.
func (a *prefixAdversary) available(k *sim.Kernel) []int {
	var out []int
	for i, id := range a.parts {
		if !k.Done(id) && !k.Crashed(id) {
			out = append(out, i)
		}
	}
	return out
}
