package obs_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestCounterGaugeBasics: direct and func-backed instruments read back what
// was written, and Total sums across label sets.
func TestCounterGaugeBasics(t *testing.T) {
	r := obs.NewRegistry()
	c0 := r.NewCounter("reqs_total", "requests", obs.L("server", "0"))
	c1 := r.NewCounter("reqs_total", "requests", obs.L("server", "1"))
	g := r.NewGauge("live", "live elections")
	var fnVal int64 = 7
	r.NewGaugeFunc("depth", "queue depth", func() int64 { return fnVal })

	c0.Add(3)
	c0.Inc()
	c1.Add(10)
	g.Set(5)
	g.Add(-2)

	if got := c0.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	s := r.Snapshot()
	if got := s.Total("reqs_total"); got != 14 {
		t.Fatalf("Total(reqs_total) = %d, want 14", got)
	}
	if got := s.Total("depth"); got != 7 {
		t.Fatalf("Total(depth) = %d, want 7", got)
	}
	if got := s.Total("missing"); got != 0 {
		t.Fatalf("Total(missing) = %d, want 0", got)
	}
}

// TestNilInstrumentsAreNoOps: un-wired subsystems hold nil instruments and
// must be able to update them freely.
func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *obs.Counter
	var g *obs.Gauge
	var h *obs.Histogram
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(3)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments returned nonzero values")
	}
}

// TestHistogramBucketsAndQuantile: observations land in the right buckets,
// the overflow bucket catches values beyond the last bound, and quantile
// estimates interpolate sanely.
func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := obs.NewRegistry()
	h := r.NewHistogram("lat_usec", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 50, 99, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	hp, ok := s.Histogram("lat_usec")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCounts := []int64{3, 2, 1, 1} // <=10, <=100, <=1000, overflow
	for i, w := range wantCounts {
		if hp.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, hp.Counts[i], w, hp.Counts)
		}
	}
	if hp.Count != 7 || hp.Sum != 1+5+10+50+99+500+5000 {
		t.Fatalf("count=%d sum=%d", hp.Count, hp.Sum)
	}
	if q := hp.Quantile(0.5); q <= 0 || q > 100 {
		t.Fatalf("p50 = %d, want within (0, 100]", q)
	}
	// The p99 falls in the overflow bucket and clamps to the last bound.
	if q := hp.Quantile(0.99); q != 1000 {
		t.Fatalf("p99 = %d, want clamped 1000", q)
	}
}

// TestHistogramSelfDescribingBuckets: the snapshot's JSON exposition pairs
// every count with its upper bound ("+Inf" for the overflow), so a scrape
// is interpretable without the instrument's bound table.
func TestHistogramSelfDescribingBuckets(t *testing.T) {
	r := obs.NewRegistry()
	h := r.NewHistogram("lat_usec", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 50, 99, 500, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	check := func(hp obs.HistPoint, where string) {
		t.Helper()
		want := []obs.Bucket{{LE: "10", Count: 3}, {LE: "100", Count: 2}, {LE: "1000", Count: 1}, {LE: "+Inf", Count: 1}}
		if !reflect.DeepEqual(hp.Buckets, want) {
			t.Fatalf("%s buckets = %+v, want %+v", where, hp.Buckets, want)
		}
	}
	check(s.Histograms[0], "snapshot")
	merged, ok := s.Histogram("lat_usec")
	if !ok {
		t.Fatal("histogram missing")
	}
	check(merged, "merged")
	// The pairs survive a JSON round trip — the format consumers see.
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	check(back.Histograms[0], "round-tripped")
}

// TestHistogramMergesAcrossLabels: Snapshot.Histogram sums same-name series.
func TestHistogramMergesAcrossLabels(t *testing.T) {
	r := obs.NewRegistry()
	h0 := r.NewHistogram("batch", "batch sizes", []int64{1, 8}, obs.L("server", "0"))
	h1 := r.NewHistogram("batch", "batch sizes", []int64{1, 8}, obs.L("server", "1"))
	h0.Observe(1)
	h1.Observe(4)
	h1.Observe(100)
	s := r.Snapshot()
	hp, ok := s.Histogram("batch")
	if !ok {
		t.Fatal("histogram missing")
	}
	if hp.Count != 3 || hp.Counts[0] != 1 || hp.Counts[1] != 1 || hp.Counts[2] != 1 {
		t.Fatalf("merged counts wrong: %+v", hp)
	}
}

// TestConcurrentUpdates: instruments are safe under parallel writers (run
// with -race) and lose nothing.
func TestConcurrentUpdates(t *testing.T) {
	r := obs.NewRegistry()
	c := r.NewCounter("n_total", "")
	h := r.NewHistogram("v", "", obs.ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 700))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Total("n_total"); got != workers*per {
		t.Fatalf("counter lost updates: %d of %d", got, workers*per)
	}
	if hp, _ := s.Histogram("v"); hp.Count != workers*per {
		t.Fatalf("histogram lost updates: %d of %d", hp.Count, workers*per)
	}
}

// TestExpBuckets: geometric bound construction.
func TestExpBuckets(t *testing.T) {
	got := obs.ExpBuckets(50, 4, 5)
	want := []int64{50, 200, 800, 3200, 12800}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestJSONAndPrometheusExposition: both formats render, JSON round-trips,
// and the Prometheus text carries TYPE headers, labeled samples and
// cumulative histogram buckets ending at +Inf.
func TestJSONAndPrometheusExposition(t *testing.T) {
	r := obs.NewRegistry()
	r.NewCounter("served_total", "requests served", obs.L("server", "2")).Add(9)
	r.NewGauge("live", "live").Set(4)
	h := r.NewHistogram("lat_usec", "latency", []int64{10, 100})
	h.Observe(5)
	h.Observe(5000)
	s := r.Snapshot()

	var jbuf bytes.Buffer
	if err := s.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var decoded obs.Snapshot
	if err := json.Unmarshal(jbuf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Total("served_total") != 9 {
		t.Fatalf("decoded total = %d, want 9", decoded.Total("served_total"))
	}

	var pbuf bytes.Buffer
	if err := s.WritePrometheus(&pbuf); err != nil {
		t.Fatal(err)
	}
	text := pbuf.String()
	for _, want := range []string{
		"# TYPE served_total counter",
		`served_total{server="2"} 9`,
		"# TYPE live gauge",
		"live 4",
		"# TYPE lat_usec histogram",
		`lat_usec_bucket{le="10"} 1`,
		`lat_usec_bucket{le="+Inf"} 2`,
		"lat_usec_sum 5005",
		"lat_usec_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

// TestHTTPHandler: the admin endpoint serves JSON by default and the
// Prometheus text form on request; unknown formats are 400s.
func TestHTTPHandler(t *testing.T) {
	r := obs.NewRegistry()
	r.NewCounter("hits_total", "").Inc()
	obs.RegisterRuntime(r)
	h := obs.Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
	var s obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("default body not JSON: %v", err)
	}
	if s.Total("go_heap_alloc_bytes") == 0 {
		t.Fatal("runtime collector contributed nothing")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=prometheus", nil))
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("prometheus body missing sample:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=xml", nil))
	if rec.Code != 400 {
		t.Fatalf("unknown format served %d, want 400", rec.Code)
	}
}
