package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/metrics"
	"strings"
)

// WriteJSON writes the snapshot as one indented JSON document.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promLabels renders a label set (plus an optional extra pair, for
// histogram le labels) in Prometheus exposition form: `{k="v",...}`, empty
// for no labels.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers once per metric name, counters
// and gauges as single samples, histograms as cumulative _bucket series
// plus _sum and _count.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	headed := map[string]bool{}
	head := func(name, typ, help string) {
		if headed[name] {
			return
		}
		headed[name] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	// Help text is not carried in the snapshot (it lives on the registry);
	// headers still need TYPE lines for scrapers to classify the series.
	for _, p := range s.Counters {
		head(p.Name, "counter", "")
		if _, err := fmt.Fprintf(w, "%s%s %d\n", p.Name, promLabels(p.Labels, "", ""), p.Value); err != nil {
			return err
		}
	}
	for _, p := range s.Gauges {
		head(p.Name, "gauge", "")
		if _, err := fmt.Fprintf(w, "%s%s %d\n", p.Name, promLabels(p.Labels, "", ""), p.Value); err != nil {
			return err
		}
	}
	for i := range s.Histograms {
		p := &s.Histograms[i]
		head(p.Name, "histogram", "")
		cum := int64(0)
		for j, bound := range p.Bounds {
			cum += p.Counts[j]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				p.Name, promLabels(p.Labels, "le", fmt.Sprintf("%d", bound)), cum); err != nil {
				return err
			}
		}
		cum += p.Counts[len(p.Bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, promLabels(p.Labels, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %d\n", p.Name, promLabels(p.Labels, "", ""), p.Sum)
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, "", ""), p.Count); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry over HTTP: JSON by default, Prometheus text
// with ?format=prometheus (or an Accept header preferring text/plain) —
// the /metrics endpoint of an admin mux.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := r.Snapshot()
		format := req.URL.Query().Get("format")
		if format == "" && strings.Contains(req.Header.Get("Accept"), "text/plain") {
			format = "prometheus"
		}
		switch format {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			s.WriteJSON(w) //nolint:errcheck // a broken scrape socket is the scraper's problem
		case "prometheus", "prom", "text":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			s.WritePrometheus(w) //nolint:errcheck
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (json, prometheus)", format), http.StatusBadRequest)
		}
	})
}

// mutexWaitSample is the runtime/metrics sample RegisterRuntime re-reads
// per scrape: the process-wide cumulative time goroutines have spent
// blocked on sync.Mutex/RWMutex. Unlike the pprof mutex profile it needs
// no sampling fraction armed — the runtime maintains it always — so it is
// the scrape-able contended-ns number perf PRs diff before/after.
var mutexWaitName = "/sync/mutex/wait/total:seconds"

// RegisterRuntime adds the Go runtime's health gauges to the registry via
// one collector (a single ReadMemStats per scrape): heap bytes/objects,
// cumulative allocation, GC runs, live goroutines — the counters the
// soak harness's flat-heap assertion reads from the outside — plus the
// cumulative mutex-contention wait (go_mutex_wait_ns_total), the measured
// before/after number of the lock-free register-store work.
func RegisterRuntime(r *Registry) {
	sample := []metrics.Sample{{Name: mutexWaitName}}
	r.RegisterCollector(func(s *Snapshot) {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		s.Gauges = append(s.Gauges,
			Point{Name: "go_heap_alloc_bytes", Value: int64(m.HeapAlloc)},
			Point{Name: "go_heap_objects", Value: int64(m.HeapObjects)},
			Point{Name: "go_goroutines", Value: int64(runtime.NumGoroutine())},
		)
		s.Counters = append(s.Counters,
			Point{Name: "go_alloc_bytes_total", Value: int64(m.TotalAlloc)},
			Point{Name: "go_gc_runs_total", Value: int64(m.NumGC)},
		)
		metrics.Read(sample)
		if sample[0].Value.Kind() == metrics.KindFloat64 {
			s.Counters = append(s.Counters,
				Point{Name: "go_mutex_wait_ns_total", Value: int64(sample[0].Value.Float64() * 1e9)})
		}
	})
}
