// Package obs is the observability subsystem: dependency-free metrics for
// the long-running halves of the repository — atomic counters, gauges and
// fixed-bucket histograms behind a Registry with a consistent snapshot API,
// exposable as JSON or Prometheus text over an admin HTTP endpoint.
//
// The package exists to make the paper's resource bounds *watchable* on a
// live cluster: the theorems are statements about messages, bytes and
// rounds per election, and a daemon multiplexing thousands of elections
// needs to report those quantities from the outside without perturbing
// them. Everything here is stdlib-only and allocation-free on the hot path:
// an instrument update is one or three atomic adds, never a lock, never a
// map lookup — instruments are resolved to pointers at registration time
// and updated directly.
//
// Instruments are nil-safe: every update method on a nil receiver is a
// no-op, so instrumented code paths need no "metrics enabled?" branches —
// an un-wired subsystem simply holds nil instruments.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair qualifying a metric (e.g. server="0").
// Labels distinguish the per-replica instruments of one process; queries
// that want the process total sum across them (Snapshot.Total).
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the registry's instrument records.
type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

// metric is one registered instrument: either direct atomic storage (v),
// a read-at-snapshot function (fn — for values another subsystem already
// tracks, like a sharded server's summed counters), or histogram state.
type metric struct {
	kind   metricKind
	name   string
	help   string
	labels []Label
	v      atomic.Int64
	fn     func() int64
	hist   *histState
}

// value reads the instrument's current value (counters and gauges).
func (m *metric) value() int64 {
	if m.fn != nil {
		return m.fn()
	}
	return m.v.Load()
}

// Registry holds a process's instruments and takes consistent-enough
// snapshots of them (each value is read atomically; the set is read under
// the registration lock, so a scrape never sees a half-registered
// instrument).
type Registry struct {
	mu         sync.Mutex
	metrics    []*metric
	collectors []func(*Snapshot)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// RegisterCollector adds a snapshot-time hook that may append points to the
// snapshot — the escape hatch for metric families whose values are only
// cheap to read together (runtime memory stats, for one).
func (r *Registry) RegisterCollector(fn func(*Snapshot)) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Counter is a monotonically increasing instrument.
type Counter struct{ m *metric }

// NewCounter registers a counter. By convention names end in _total.
func (r *Registry) NewCounter(name, help string, labels ...Label) *Counter {
	m := &metric{kind: counterKind, name: name, help: help, labels: labels}
	r.register(m)
	return &Counter{m: m}
}

// NewCounterFunc registers a counter whose value is read from fn at
// snapshot time — for totals another subsystem already tracks. fn must be
// monotonic and safe to call from any goroutine.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{kind: counterKind, name: name, help: help, labels: labels, fn: fn})
}

// Add increases the counter by d (non-negative by convention; not checked).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.m.v.Add(d)
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.m.value()
}

// Gauge is an instrument whose value may go up and down.
type Gauge struct{ m *metric }

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string, labels ...Label) *Gauge {
	m := &metric{kind: gaugeKind, name: name, help: help, labels: labels}
	r.register(m)
	return &Gauge{m: m}
}

// NewGaugeFunc registers a gauge read from fn at snapshot time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(&metric{kind: gaugeKind, name: name, help: help, labels: labels, fn: fn})
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.m.v.Store(v)
}

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.m.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.m.value()
}

// histState is a histogram's storage: counts[i] counts observations
// v <= bounds[i] (the first matching bucket); counts[len(bounds)] is the
// overflow bucket. Observations are int64 in whatever unit the name
// documents (microseconds for latencies, plain counts for sizes).
type histState struct {
	bounds []int64
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Histogram is a fixed-bucket distribution instrument.
type Histogram struct{ m *metric }

// NewHistogram registers a histogram over the given ascending bucket upper
// bounds (an implicit +Inf bucket is added). The bounds slice is retained.
func (r *Registry) NewHistogram(name, help string, bounds []int64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	h := &histState{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	m := &metric{kind: histogramKind, name: name, help: help, labels: labels, hist: h}
	r.register(m)
	return &Histogram{m: m}
}

// Observe records one value: three atomic adds, no lock. The bucket scan is
// linear — bound lists are short by design.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	st := h.m.hist
	i := 0
	for i < len(st.bounds) && v > st.bounds[i] {
		i++
	}
	st.counts[i].Add(1)
	st.count.Add(1)
	st.sum.Add(v)
}

// ExpBuckets builds count ascending bounds starting at start, each factor
// times the previous — the standard shape for latency histograms.
func ExpBuckets(start, factor int64, count int) []int64 {
	out := make([]int64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Point is one counter or gauge sample in a snapshot.
type Point struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// Bucket is one self-describing histogram bucket in a snapshot: the
// bucket's inclusive upper bound, rendered the way Prometheus renders it
// ("+Inf" for the overflow bucket), and the non-cumulative count of
// observations that landed in it.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistPoint is one histogram sample in a snapshot: per-bucket (non-
// cumulative) counts, with Counts[len(Bounds)] the overflow bucket.
// Buckets carries the same data zipped into (upper bound, count) pairs so
// the JSON exposition is interpretable without knowing the instrument's
// bound table; the Prometheus exposition derives its cumulative buckets
// from Bounds/Counts as before.
type HistPoint struct {
	Name    string   `json:"name"`
	Labels  []Label  `json:"labels,omitempty"`
	Bounds  []int64  `json:"bounds"`
	Counts  []int64  `json:"counts"`
	Buckets []Bucket `json:"buckets"`
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
}

// fillBuckets derives the self-describing bucket pairs from Bounds and
// Counts; the slot past the last bound becomes the "+Inf" overflow.
func (p *HistPoint) fillBuckets() {
	p.Buckets = make([]Bucket, 0, len(p.Counts))
	for i, c := range p.Counts {
		le := "+Inf"
		if i < len(p.Bounds) {
			le = strconv.FormatInt(p.Bounds[i], 10)
		}
		p.Buckets = append(p.Buckets, Bucket{LE: le, Count: c})
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts by
// linear interpolation within the winning bucket; observations beyond the
// last bound report that bound (the histogram cannot see past it).
func (p *HistPoint) Quantile(q float64) int64 {
	if p.Count == 0 {
		return 0
	}
	rank := q * float64(p.Count)
	cum := int64(0)
	for i, c := range p.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(p.Bounds) { // overflow bucket: clamp to the last bound
			if len(p.Bounds) == 0 {
				return 0
			}
			return p.Bounds[len(p.Bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = p.Bounds[i-1]
		}
		hi := p.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + int64(frac*float64(hi-lo))
	}
	return p.Bounds[len(p.Bounds)-1]
}

// Snapshot is one consistent read of a registry, in registration order.
type Snapshot struct {
	At         time.Time   `json:"at"`
	Counters   []Point     `json:"counters"`
	Gauges     []Point     `json:"gauges"`
	Histograms []HistPoint `json:"histograms"`
}

// Snapshot reads every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	collectors := make([]func(*Snapshot), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	s := Snapshot{At: time.Now()}
	for _, m := range metrics {
		switch m.kind {
		case counterKind:
			s.Counters = append(s.Counters, Point{Name: m.name, Labels: m.labels, Value: m.value()})
		case gaugeKind:
			s.Gauges = append(s.Gauges, Point{Name: m.name, Labels: m.labels, Value: m.value()})
		case histogramKind:
			st := m.hist
			hp := HistPoint{
				Name: m.name, Labels: m.labels,
				Bounds: st.bounds,
				Counts: make([]int64, len(st.counts)),
				Count:  st.count.Load(),
				Sum:    st.sum.Load(),
			}
			for i := range st.counts {
				hp.Counts[i] = st.counts[i].Load()
			}
			hp.fillBuckets()
			s.Histograms = append(s.Histograms, hp)
		}
	}
	for _, fn := range collectors {
		fn(&s)
	}
	// Collectors build HistPoints by hand; derive their bucket pairs too
	// so every histogram in the snapshot is self-describing.
	for i := range s.Histograms {
		if s.Histograms[i].Buckets == nil {
			s.Histograms[i].fillBuckets()
		}
	}
	return s
}

// Total sums every counter and gauge point with the given name across its
// label sets — the "whole process" view of a per-replica instrument.
func (s *Snapshot) Total(name string) int64 {
	var sum int64
	for _, p := range s.Counters {
		if p.Name == name {
			sum += p.Value
		}
	}
	for _, p := range s.Gauges {
		if p.Name == name {
			sum += p.Value
		}
	}
	return sum
}

// Histogram returns the merged histogram points with the given name (bucket
// counts summed across label sets; bounds must agree, which registration
// convention guarantees). ok is false when no such histogram exists.
func (s *Snapshot) Histogram(name string) (HistPoint, bool) {
	var out HistPoint
	found := false
	for i := range s.Histograms {
		p := &s.Histograms[i]
		if p.Name != name {
			continue
		}
		if !found {
			out = HistPoint{Name: p.Name, Bounds: p.Bounds, Counts: append([]int64(nil), p.Counts...),
				Count: p.Count, Sum: p.Sum}
			found = true
			continue
		}
		for j := range p.Counts {
			out.Counts[j] += p.Counts[j]
		}
		out.Count += p.Count
		out.Sum += p.Sum
	}
	if found {
		out.fillBuckets()
	}
	return out, found
}

// Names returns the distinct metric names in the snapshot, sorted — handy
// for tests and debugging dumps.
func (s *Snapshot) Names() []string {
	seen := map[string]bool{}
	for _, p := range s.Counters {
		seen[p.Name] = true
	}
	for _, p := range s.Gauges {
		seen[p.Name] = true
	}
	for _, p := range s.Histograms {
		seen[p.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
