// Package campaign is the parallel campaign engine: it fans thousands of
// independent election runs across a pool of workers and aggregates
// wall-clock latency percentiles and throughput. A campaign answers the
// production question the single-run harnesses cannot: how many elections
// per second does the machine sustain, and what does the latency tail look
// like, for a given algorithm, system size and backend?
//
// Runs are independent by construction — each gets its own system (a sim
// kernel or a live goroutine set) and a sharded PRNG seed — so the engine
// scales with GOMAXPROCS until the hardware saturates. Both backends fan
// out: the sim backend runs many single-threaded kernels in parallel; the
// live backend's elections are internally concurrent as well, so its
// sweet spot is fewer workers at larger n. Live campaigns do not build a
// goroutine system per run: workers check processor sets out of a shared
// live.SystemPool (reset in place, mailbox goroutines parked between
// runs), and TCP campaigns multiplex every election onto one shared,
// shard-locked electd cluster — so the marginal election costs its
// protocol work, not its setup.
//
// # Scenario matrices
//
// RunMatrix crosses a list of fault/latency scenarios (internal/fault) with
// the campaign's seed set and fans every (scenario, seed) cell across the
// same shared worker pool, so the matrix finishes in one pool-saturating
// pass rather than scenario by scenario. Each scenario row reports its own
// latency percentiles, the paper's time metric, and election-validity
// counts: how many runs elected a unique surviving winner, how many ended
// winnerless because the linearized winner crashed, and how many
// participants the crash schedules killed in total. Run is the
// single-scenario special case (Config.Scenario; the zero value is
// fault-free).
package campaign
