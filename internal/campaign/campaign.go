package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/electd"
	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Backend selects the execution backend elections run on.
type Backend string

// Backends understood by the engine.
const (
	// BackendSim is the deterministic discrete-event kernel (virtual time,
	// adversary schedules available).
	BackendSim Backend = "sim"
	// BackendLive is the real-concurrency goroutine runtime (wall-clock
	// time, OS scheduling).
	BackendLive Backend = "live"
)

// shardSeed derives run idx's seed from the base seed with the full
// splitmix64 step (stride + finalizer). The finalizer matters: the live
// backend internally strides per-processor seeds by the same golden-ratio
// constant (live.SeedStride), so plain Base+idx·stride would hand
// processor i of run r and processor i−1 of run r+1 identical PRNG
// streams. Hashing decorrelates the runs, keeping campaign statistics
// over genuinely independent samples.
func shardSeed(base int64, idx int) int64 {
	z := uint64(base) + uint64(idx)*live.SeedStride
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Config parameterises one campaign.
type Config struct {
	// Runs is the number of elections to execute. Default 128.
	Runs int
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// N is the system size; K the participants (0 means K = N).
	N, K int
	// BaseSeed anchors the sharded per-run seeds; equal base seeds re-run
	// the same seed set. Run i uses splitmix64(BaseSeed, i).
	BaseSeed int64
	// Algorithm picks the protocol (default live.AlgoPoisonPill).
	Algorithm live.Algorithm
	// Backend picks the runtime (default BackendLive).
	Backend Backend
	// Schedule picks the adversary for BackendSim runs (default fair).
	// BackendLive has no adversary; setting this errors there.
	Schedule expt.Schedule
	// Scenario injects faults and latency into BackendLive runs (crash
	// schedules, link-delay distributions, slow processors, reordering;
	// see internal/fault). The zero value is fault-free. Active scenarios
	// require BackendLive: the sim backend's adversary schedules already
	// control delay and crashes. For a cross product of scenarios, use
	// RunMatrix.
	Scenario fault.Scenario
	// Transport picks the BackendLive comm substrate: live.TransportChan
	// (default), live.TransportTCP or live.TransportUDP. Over a networked
	// transport a fault-free campaign shares one electd cluster — n
	// loopback servers — and multiplexes its elections onto it by election
	// ID, so hundreds of runs exercise a single set of listening servers
	// like traffic on a deployed service. Link-only fault scenarios
	// (partitions, drops, latency) share the cluster too — their injection
	// is client-side and scoped per election. Campaigns with crash
	// scenarios run one cluster per election instead: crashing a shared
	// server would leak faults across runs.
	Transport live.Transport
	// NoBatch (networked transports only) disables the client pools' frame
	// coalescing for the whole campaign — shared cluster and per-run
	// clusters alike — the unbatched baseline the benchmarks compare
	// against.
	NoBatch bool
	// ConnShards (networked transports only) is how many connections each
	// client pool dials per server, elections hashed across them — shared
	// cluster and per-run clusters alike. 0 or 1 means one connection.
	ConnShards int
	// Trace, when non-nil, records phase-level spans for every run into the
	// given flight recorder: client pool, transport and server spans on the
	// TCP substrate (shared cluster and per-run clusters alike), send and
	// quorum-wait spans on the channel substrate. Nil keeps every hot path
	// byte-identical to an untraced campaign.
	Trace *trace.Recorder

	// cluster is the campaign-owned shared server set of a TCP campaign.
	cluster *electd.Cluster
	// spool recycles whole live Systems across the campaign's runs: workers
	// check systems out instead of paying NewSystem/Shutdown per election.
	spool *live.SystemPool
}

// Latency summarises a campaign's per-election wall-clock latencies.
type Latency struct {
	Mean, P50, P90, P99, Max time.Duration
}

// Shape relates a campaign's measured round and message means to the
// paper's asymptotic predictions (Theorem A.5): with k participants an
// election takes O(log* k) rounds per processor and O(kn) total messages.
// The ratios are diagnostics, not pass/fail gates — the constants hidden
// by the O notation are modest but real — yet a ratio that grows with k
// or n signals a regression toward tournament (Θ(log k)) behaviour.
type Shape struct {
	// K and N echo the campaign's participant count and system size.
	K, N int
	// LogStarK is log* k, the paper's round-shape; RoundsRatio divides
	// the measured mean max-round by log* k + 2 (the +2 absorbs the
	// final solo rounds a winner needs to notice it is alone).
	LogStarK    int
	RoundsRatio float64
	// KN is k·n, the paper's message-shape; MsgsRatio divides the
	// measured mean message count by it.
	KN        int
	MsgsRatio float64
}

// shapeOf computes the paper-shape diagnostics from measured means.
func shapeOf(k, n int, meanRounds, meanMsgs float64) Shape {
	s := Shape{K: k, N: n, LogStarK: expt.LogStar(float64(k)), KN: k * n}
	s.RoundsRatio = meanRounds / float64(s.LogStarK+2)
	if s.KN > 0 {
		s.MsgsRatio = meanMsgs / float64(s.KN)
	}
	return s
}

// Report aggregates one campaign.
type Report struct {
	// Runs and Workers echo the effective configuration.
	Runs, Workers int
	// Elapsed is the campaign's wall-clock duration.
	Elapsed time.Duration
	// Throughput is elections completed per second of wall-clock time.
	Throughput float64
	// Latency summarises per-election wall-clock latencies.
	Latency Latency
	// MeanTime is the mean of the paper's time metric (max communicate
	// calls per processor) across runs — comparable across backends.
	MeanTime float64
	// MaxRounds is the highest election round reached in any run.
	MaxRounds int
	// MeanRounds is the mean of the per-run maximum election round, and
	// MeanMsgs the mean point-to-point message count per run. Together with
	// Shape they let a report check the paper's complexity claims: Theorem
	// A.5 bounds rounds by O(log* k) and total messages by O(kn).
	MeanRounds float64
	MeanMsgs   float64
	// Shape compares the measured means against the paper's predicted
	// asymptotic shape for this campaign's k and n.
	Shape Shape
	// Elected counts runs that ended with a unique surviving winner,
	// WinnerCrashed those in which every survivor lost because the
	// linearized winner crashed first, and NoQuorum those in which no
	// participant crashed yet none could assemble majority quorums —
	// possible only under NoQuorumOK scenarios (never-healing partitions)
	// where every client aborted with a typed fault.NoQuorumError. The
	// three always sum to Runs. Crashed totals the participants killed
	// across all runs and Starved those that aborted quorumless. All are
	// scenario-driven: a fault-free campaign reports Elected == Runs.
	Elected, WinnerCrashed, NoQuorum, Crashed, Starved int
}

// ScenarioReport is one row of a matrix campaign: the aggregate of one
// scenario's runs.
type ScenarioReport struct {
	// Scenario is the injected environment this row measured.
	Scenario fault.Scenario
	// Runs is the number of elections executed under the scenario.
	Runs int
	// Latency summarises the scenario's per-election wall-clock latencies.
	Latency Latency
	// MeanTime is the mean of the paper's time metric across the
	// scenario's runs.
	MeanTime float64
	// MaxRounds is the highest election round reached under the scenario.
	MaxRounds int
	// MeanRounds and MeanMsgs mirror Report's paper-shape counters for the
	// scenario's runs.
	MeanRounds float64
	MeanMsgs   float64
	// Elected, WinnerCrashed, NoQuorum, Crashed and Starved are the
	// election-validity counts; see Report.
	Elected, WinnerCrashed, NoQuorum, Crashed, Starved int
}

// MatrixReport aggregates a scenario-matrix campaign.
type MatrixReport struct {
	// Runs is the total number of elections across every scenario;
	// Workers is the shared worker-pool size.
	Runs, Workers int
	// Elapsed is the whole matrix's wall-clock duration and Throughput
	// its overall elections per second (scenarios interleave on the one
	// pool, so per-scenario throughput is not separable).
	Elapsed    time.Duration
	Throughput float64
	// Scenarios holds one report per scenario, in input order.
	Scenarios []ScenarioReport
}

func (cfg *Config) normalize() error {
	if cfg.Runs == 0 {
		cfg.Runs = 128
	}
	if cfg.Runs < 1 {
		return fmt.Errorf("campaign: runs %d must be positive", cfg.Runs)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("campaign: workers %d must be positive", cfg.Workers)
	}
	if cfg.N < 1 {
		return fmt.Errorf("campaign: system size %d must be at least 1", cfg.N)
	}
	if cfg.K == 0 {
		cfg.K = cfg.N
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		return fmt.Errorf("campaign: participants %d must be in [1, %d]", cfg.K, cfg.N)
	}
	switch cfg.Algorithm {
	case "":
		cfg.Algorithm = live.AlgoPoisonPill
	case live.AlgoPoisonPill, live.AlgoTournament:
	default:
		return fmt.Errorf("campaign: %q is not an election algorithm", cfg.Algorithm)
	}
	switch cfg.Backend {
	case "":
		cfg.Backend = BackendLive
	case BackendSim, BackendLive:
	default:
		return fmt.Errorf("campaign: unknown backend %q", cfg.Backend)
	}
	if cfg.Backend == BackendLive && cfg.Schedule != "" && cfg.Schedule != expt.SchedFair {
		return fmt.Errorf("campaign: adversary schedule %q requires the sim backend", cfg.Schedule)
	}
	if cfg.Backend == BackendSim && cfg.Schedule == "" {
		cfg.Schedule = expt.SchedFair
	}
	switch cfg.Transport {
	case "":
		cfg.Transport = live.TransportChan
	case live.TransportChan:
	case live.TransportTCP, live.TransportUDP:
		if cfg.Backend != BackendLive {
			return fmt.Errorf("campaign: the %s transport requires the live backend", cfg.Transport)
		}
	default:
		return fmt.Errorf("campaign: unknown transport %q", cfg.Transport)
	}
	if cfg.NoBatch && !cfg.Transport.Networked() {
		return fmt.Errorf("campaign: NoBatch tunes a networked transport's client pools; transport %q has no frames to batch", cfg.Transport)
	}
	if cfg.ConnShards != 0 && !cfg.Transport.Networked() {
		return fmt.Errorf("campaign: ConnShards shards a networked transport's connections; transport %q has none", cfg.Transport)
	}
	return nil
}

// checkScenario validates one scenario against the campaign configuration.
func (cfg *Config) checkScenario(sc fault.Scenario) error {
	if !sc.Active() {
		return nil
	}
	if cfg.Backend != BackendLive {
		return fmt.Errorf("campaign: scenario %q requires the live backend (sim runs are controlled by adversary schedules)", sc.Name)
	}
	if err := sc.Validate(cfg.N); err != nil {
		return fmt.Errorf("campaign: scenario %q: %w", sc.Name, err)
	}
	return nil
}

// runStats reports one completed election run to the aggregator.
type runStats struct {
	lat     time.Duration
	time    int
	rounds  int
	msgs    int64 // point-to-point messages the run exchanged
	elected bool  // a unique surviving winner decided Win
	crashed int   // participants the scenario killed
	starved int   // participants that aborted with fault.NoQuorumError
}

// runOne executes election run idx under scenario sc.
func (cfg *Config) runOne(sc fault.Scenario, idx int) (runStats, error) {
	seed := shardSeed(cfg.BaseSeed, idx)
	switch cfg.Backend {
	case BackendLive:
		lcfg := live.Config{
			N: cfg.N, K: cfg.K, Seed: seed, Algorithm: cfg.Algorithm, Scenario: sc,
			Transport: cfg.Transport, Pool: cfg.spool, Trace: cfg.Trace,
		}
		if cfg.cluster == nil {
			// Owned clusters (per-run, under fault scenarios) inherit the
			// campaign's batching and sharding choices; a shared cluster
			// was already dialed with them.
			lcfg.NoBatch = cfg.NoBatch
			lcfg.ConnShards = cfg.ConnShards
		}
		if cfg.cluster != nil {
			lcfg.Cluster = cfg.cluster
			lcfg.ElectionID = cfg.cluster.NextElectionID()
			// The instance is over once Elect returns (every participant
			// joined); evict its register state so a long campaign doesn't
			// accumulate one store per election on the shared servers.
			defer cfg.cluster.RemoveElection(lcfg.ElectionID)
		}
		res, err := live.Elect(lcfg)
		if err != nil {
			return runStats{}, fmt.Errorf("run %d (seed %d, scenario %q): %w", idx, seed, sc.Name, err)
		}
		return runStats{
			lat: res.Elapsed, time: res.Time, rounds: res.Rounds,
			msgs:    res.Messages,
			elected: res.Winner >= 0, crashed: len(res.Crashed),
			starved: len(res.NoQuorum),
		}, nil
	default: // BackendSim
		start := time.Now()
		r := expt.Run(expt.Config{
			N: cfg.N, K: cfg.K, Seed: seed,
			Algorithm: expt.Algorithm(cfg.Algorithm), Schedule: cfg.Schedule,
		})
		elapsed := time.Since(start)
		if r.Err != nil {
			return runStats{}, fmt.Errorf("run %d (seed %d): %w", idx, seed, r.Err)
		}
		if w := r.Winners(); w != 1 {
			return runStats{}, fmt.Errorf("run %d (seed %d): %d winners", idx, seed, w)
		}
		return runStats{
			lat: elapsed, time: r.Stats.MaxCommunicateCalls(),
			rounds: r.MaxRound, msgs: int64(r.Stats.MessagesSent),
			elected: true,
		}, nil
	}
}

// Run executes the campaign — under Config.Scenario when set — and
// aggregates its report. The first run error aborts the campaign
// (remaining queued runs are skipped). It is the single-scenario special
// case of RunMatrix.
func Run(cfg Config) (Report, error) {
	m, err := RunMatrix(cfg, []fault.Scenario{cfg.Scenario})
	if err != nil {
		return Report{}, err
	}
	s := m.Scenarios[0]
	k, n := cfg.K, cfg.N
	if k == 0 {
		k = n
	}
	return Report{
		Runs: m.Runs, Workers: m.Workers,
		Elapsed: m.Elapsed, Throughput: m.Throughput,
		Latency: s.Latency, MeanTime: s.MeanTime, MaxRounds: s.MaxRounds,
		MeanRounds: s.MeanRounds, MeanMsgs: s.MeanMsgs,
		Shape:   shapeOf(k, n, s.MeanRounds, s.MeanMsgs),
		Elected: s.Elected, WinnerCrashed: s.WinnerCrashed,
		NoQuorum: s.NoQuorum, Crashed: s.Crashed, Starved: s.Starved,
	}, nil
}

// RunMatrix executes the cross product scenarios × Config.Runs seeds on one
// shared worker pool and aggregates a per-scenario report. Job (s, i) uses
// the sharded seed of flat index s·Runs + i, so every cell of the matrix
// runs a decorrelated PRNG stream and a single-scenario matrix reproduces
// Run's seed set exactly. Config.Scenario is ignored — the explicit list
// governs. The first run error aborts the whole matrix.
func RunMatrix(cfg Config, scenarios []fault.Scenario) (MatrixReport, error) {
	if err := cfg.normalize(); err != nil {
		return MatrixReport{}, err
	}
	if len(scenarios) == 0 {
		return MatrixReport{}, fmt.Errorf("campaign: empty scenario matrix")
	}
	for _, sc := range scenarios {
		if err := cfg.checkScenario(sc); err != nil {
			return MatrixReport{}, err
		}
	}
	if cfg.Backend == BackendLive {
		// One system pool for the whole matrix: workers check processor
		// sets (goroutine mailboxes, PRNGs, register maps) out per run and
		// park them again instead of building and tearing down a System per
		// election. Crash-scenario runs ride the same pool — checkout fully
		// resets a recycled system, and crashed slots are only dropped
		// flags, their serve goroutines never exit.
		cfg.spool = live.NewSystemPool(cfg.N, !cfg.Transport.Networked())
		defer cfg.spool.Close()
	}
	if cfg.Backend == BackendLive && cfg.Transport.Networked() {
		// One shared server set for the whole matrix: every run multiplexes
		// onto it under a fresh election ID. Crash scenarios preclude the
		// sharing — crashing a shared server would leak faults across
		// elections — so those matrices fall back to one cluster per run.
		// Link-only scenarios (partitions, flaky links, latency: no crash
		// schedule) keep the shared cluster: their faults are injected on
		// the client side of the pool, scoped to one election's clients, so
		// a partitioned run's siblings never feel it — the blast radius the
		// chaos grid measures.
		shared := true
		for _, sc := range scenarios {
			if sc.Active() && !sc.LinkOnly() {
				shared = false
				break
			}
		}
		if shared {
			spec := transport.Spec{
				Name:    string(cfg.Transport),
				Shards:  cfg.ConnShards,
				NoBatch: cfg.NoBatch,
				Trace:   cfg.Trace,
			}
			cluster, err := electd.NewClusterSpec(spec, cfg.N, electd.ClusterOptions{
				Server: electd.ServerOptions{Trace: cfg.Trace},
			})
			if err != nil {
				return MatrixReport{}, fmt.Errorf("campaign: start electd cluster: %w", err)
			}
			defer cluster.Close()
			cfg.cluster = cluster
		}
	}
	total := len(scenarios) * cfg.Runs

	// Per-worker, per-scenario accumulators: no shared state on the hot
	// path except the abort flag, which lets the first error stop every
	// worker instead of letting the survivors grind through the remaining
	// queued runs.
	type acc struct {
		lats           []time.Duration
		times          int64
		rounds         int
		roundSum       int64 // sum of per-run max rounds, for the shape mean
		msgs           int64 // sum of per-run message counts
		elected, crash int
		noquorum       int // runs in which every participant starved
		starved        int // participants that aborted quorumless
	}
	accs := make([][]acc, cfg.Workers)
	errs := make([]error, cfg.Workers)
	for w := range accs {
		accs[w] = make([]acc, len(scenarios))
	}
	var abort atomic.Bool
	next := make(chan int, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for job := range next {
				if abort.Load() {
					continue // keep draining so the feeder never blocks
				}
				s := job / cfg.Runs
				st, err := cfg.runOne(scenarios[s], job)
				if err != nil {
					errs[w] = err
					abort.Store(true)
					continue
				}
				a := &accs[w][s]
				a.lats = append(a.lats, st.lat)
				a.times += int64(st.time)
				a.roundSum += int64(st.rounds)
				a.msgs += st.msgs
				if st.rounds > a.rounds {
					a.rounds = st.rounds
				}
				if st.elected {
					a.elected++
				} else if st.crashed == 0 && st.starved > 0 {
					// Nobody won and nobody crashed: the partition starved
					// every client of quorums — a no-quorum run, not a
					// winner-crashed one. (A run with both crashes and
					// starvation counts as winner-crashed: the linearized
					// winner was among the crash victims.)
					a.noquorum++
				}
				a.crash += st.crashed
				a.starved += st.starved
			}
		}(w)
	}
	for job := 0; job < total; job++ {
		next <- job
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	rep := MatrixReport{Runs: total, Workers: cfg.Workers, Elapsed: elapsed}
	for _, err := range errs {
		if err != nil {
			return rep, fmt.Errorf("campaign: %w", err)
		}
	}
	completed := 0
	for s, sc := range scenarios {
		row := ScenarioReport{Scenario: sc, Runs: cfg.Runs}
		var lats []time.Duration
		var times, roundSum, msgs int64
		for w := range accs {
			a := &accs[w][s]
			lats = append(lats, a.lats...)
			times += a.times
			roundSum += a.roundSum
			msgs += a.msgs
			if a.rounds > row.MaxRounds {
				row.MaxRounds = a.rounds
			}
			row.Elected += a.elected
			row.NoQuorum += a.noquorum
			row.Crashed += a.crash
			row.Starved += a.starved
		}
		completed += len(lats)
		if len(lats) == cfg.Runs {
			row.WinnerCrashed = cfg.Runs - row.Elected - row.NoQuorum
			row.MeanTime = float64(times) / float64(cfg.Runs)
			row.MeanRounds = float64(roundSum) / float64(cfg.Runs)
			row.MeanMsgs = float64(msgs) / float64(cfg.Runs)
			row.Latency = summarize(lats)
		}
		rep.Scenarios = append(rep.Scenarios, row)
	}
	if completed != total {
		return rep, fmt.Errorf("campaign: %d of %d runs completed", completed, total)
	}
	rep.Throughput = float64(total) / elapsed.Seconds()
	return rep, nil
}

// summarize sorts a non-empty latency sample and extracts the headline
// percentiles (nearest-rank).
func summarize(lats []time.Duration) Latency {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return Latency{
		Mean: sum / time.Duration(len(lats)),
		P50:  rank(0.50),
		P90:  rank(0.90),
		P99:  rank(0.99),
		Max:  lats[len(lats)-1],
	}
}

// ScanWorkers runs the same campaign at each worker count and reports one
// Report per count, in order — the scaling curve cmd/livesim prints and
// BenchmarkT12CampaignThroughput summarises.
func ScanWorkers(cfg Config, workers []int) ([]Report, error) {
	out := make([]Report, 0, len(workers))
	for _, w := range workers {
		c := cfg
		c.Workers = w
		rep, err := Run(c)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
