// Package campaign is the parallel campaign engine: it fans thousands of
// independent election runs across a pool of workers and aggregates
// wall-clock latency percentiles and throughput. A campaign answers the
// production question the single-run harnesses cannot: how many elections
// per second does the machine sustain, and what does the latency tail look
// like, for a given algorithm, system size and backend?
//
// Runs are independent by construction — each gets its own system (a sim
// kernel or a live goroutine set) and a sharded PRNG seed — so the engine
// scales with GOMAXPROCS until the hardware saturates. Both backends fan
// out: the sim backend runs many single-threaded kernels in parallel; the
// live backend's elections are internally concurrent as well, so its
// sweet spot is fewer workers at larger n.
package campaign

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expt"
	"repro/internal/live"
)

// Backend selects the execution backend elections run on.
type Backend string

// Backends understood by the engine.
const (
	// BackendSim is the deterministic discrete-event kernel (virtual time,
	// adversary schedules available).
	BackendSim Backend = "sim"
	// BackendLive is the real-concurrency goroutine runtime (wall-clock
	// time, OS scheduling).
	BackendLive Backend = "live"
)

// shardSeed derives run idx's seed from the base seed with the full
// splitmix64 step (stride + finalizer). The finalizer matters: the live
// backend internally strides per-processor seeds by the same golden-ratio
// constant (live.SeedStride), so plain Base+idx·stride would hand
// processor i of run r and processor i−1 of run r+1 identical PRNG
// streams. Hashing decorrelates the runs, keeping campaign statistics
// over genuinely independent samples.
func shardSeed(base int64, idx int) int64 {
	z := uint64(base) + uint64(idx)*live.SeedStride
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Config parameterises one campaign.
type Config struct {
	// Runs is the number of elections to execute. Default 128.
	Runs int
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// N is the system size; K the participants (0 means K = N).
	N, K int
	// BaseSeed anchors the sharded per-run seeds; equal base seeds re-run
	// the same seed set. Run i uses splitmix64(BaseSeed, i).
	BaseSeed int64
	// Algorithm picks the protocol (default live.AlgoPoisonPill).
	Algorithm live.Algorithm
	// Backend picks the runtime (default BackendLive).
	Backend Backend
	// Schedule picks the adversary for BackendSim runs (default fair).
	// BackendLive has no adversary; setting this errors there.
	Schedule expt.Schedule
}

// Latency summarises a campaign's per-election wall-clock latencies.
type Latency struct {
	Mean, P50, P90, P99, Max time.Duration
}

// Report aggregates one campaign.
type Report struct {
	// Runs and Workers echo the effective configuration.
	Runs, Workers int
	// Elapsed is the campaign's wall-clock duration.
	Elapsed time.Duration
	// Throughput is elections completed per second of wall-clock time.
	Throughput float64
	// Latency summarises per-election wall-clock latencies.
	Latency Latency
	// MeanTime is the mean of the paper's time metric (max communicate
	// calls per processor) across runs — comparable across backends.
	MeanTime float64
	// MaxRounds is the highest election round reached in any run.
	MaxRounds int
}

func (cfg *Config) normalize() error {
	if cfg.Runs == 0 {
		cfg.Runs = 128
	}
	if cfg.Runs < 1 {
		return fmt.Errorf("campaign: runs %d must be positive", cfg.Runs)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return fmt.Errorf("campaign: workers %d must be positive", cfg.Workers)
	}
	if cfg.N < 1 {
		return fmt.Errorf("campaign: system size %d must be at least 1", cfg.N)
	}
	if cfg.K == 0 {
		cfg.K = cfg.N
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		return fmt.Errorf("campaign: participants %d must be in [1, %d]", cfg.K, cfg.N)
	}
	switch cfg.Algorithm {
	case "":
		cfg.Algorithm = live.AlgoPoisonPill
	case live.AlgoPoisonPill, live.AlgoTournament:
	default:
		return fmt.Errorf("campaign: %q is not an election algorithm", cfg.Algorithm)
	}
	switch cfg.Backend {
	case "":
		cfg.Backend = BackendLive
	case BackendSim, BackendLive:
	default:
		return fmt.Errorf("campaign: unknown backend %q", cfg.Backend)
	}
	if cfg.Backend == BackendLive && cfg.Schedule != "" && cfg.Schedule != expt.SchedFair {
		return fmt.Errorf("campaign: adversary schedule %q requires the sim backend", cfg.Schedule)
	}
	if cfg.Backend == BackendSim && cfg.Schedule == "" {
		cfg.Schedule = expt.SchedFair
	}
	return nil
}

// runOne executes election run idx and returns its latency, time metric and
// max round.
func (cfg *Config) runOne(idx int) (time.Duration, int, int, error) {
	seed := shardSeed(cfg.BaseSeed, idx)
	switch cfg.Backend {
	case BackendLive:
		res, err := live.Elect(live.Config{
			N: cfg.N, K: cfg.K, Seed: seed, Algorithm: cfg.Algorithm,
		})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("run %d (seed %d): %w", idx, seed, err)
		}
		return res.Elapsed, res.Time, res.Rounds, nil
	default: // BackendSim
		start := time.Now()
		r := expt.Run(expt.Config{
			N: cfg.N, K: cfg.K, Seed: seed,
			Algorithm: expt.Algorithm(cfg.Algorithm), Schedule: cfg.Schedule,
		})
		elapsed := time.Since(start)
		if r.Err != nil {
			return 0, 0, 0, fmt.Errorf("run %d (seed %d): %w", idx, seed, r.Err)
		}
		if w := r.Winners(); w != 1 {
			return 0, 0, 0, fmt.Errorf("run %d (seed %d): %d winners", idx, seed, w)
		}
		return elapsed, r.Stats.MaxCommunicateCalls(), r.MaxRound, nil
	}
}

// Run executes the campaign and aggregates its report. The first run error
// aborts the campaign (remaining queued runs are skipped).
func Run(cfg Config) (Report, error) {
	if err := cfg.normalize(); err != nil {
		return Report{}, err
	}
	// Per-worker accumulators: no shared state on the hot path except the
	// abort flag, which lets the first error stop every worker instead of
	// letting the survivors grind through the remaining queued runs.
	type acc struct {
		lats   []time.Duration
		times  int64
		rounds int
		err    error
	}
	accs := make([]acc, cfg.Workers)
	var abort atomic.Bool
	next := make(chan int, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(a *acc) {
			defer wg.Done()
			for idx := range next {
				if abort.Load() {
					continue // keep draining so the feeder never blocks
				}
				lat, tm, rounds, err := cfg.runOne(idx)
				if err != nil {
					a.err = err
					abort.Store(true)
					continue
				}
				a.lats = append(a.lats, lat)
				a.times += int64(tm)
				if rounds > a.rounds {
					a.rounds = rounds
				}
			}
		}(&accs[w])
	}
	for i := 0; i < cfg.Runs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	var lats []time.Duration
	var times int64
	rep := Report{Runs: cfg.Runs, Workers: cfg.Workers, Elapsed: elapsed}
	for i := range accs {
		if err := accs[i].err; err != nil {
			return rep, fmt.Errorf("campaign: %w", err)
		}
		lats = append(lats, accs[i].lats...)
		times += accs[i].times
		if accs[i].rounds > rep.MaxRounds {
			rep.MaxRounds = accs[i].rounds
		}
	}
	if len(lats) != cfg.Runs {
		return rep, fmt.Errorf("campaign: %d of %d runs completed", len(lats), cfg.Runs)
	}
	rep.Throughput = float64(cfg.Runs) / elapsed.Seconds()
	rep.MeanTime = float64(times) / float64(cfg.Runs)
	rep.Latency = summarize(lats)
	return rep, nil
}

// summarize sorts a non-empty latency sample and extracts the headline
// percentiles (nearest-rank).
func summarize(lats []time.Duration) Latency {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return Latency{
		Mean: sum / time.Duration(len(lats)),
		P50:  rank(0.50),
		P90:  rank(0.90),
		P99:  rank(0.99),
		Max:  lats[len(lats)-1],
	}
}

// ScanWorkers runs the same campaign at each worker count and reports one
// Report per count, in order — the scaling curve cmd/livesim prints and
// BenchmarkT12CampaignThroughput summarises.
func ScanWorkers(cfg Config, workers []int) ([]Report, error) {
	out := make([]Report, 0, len(workers))
	for _, w := range workers {
		c := cfg
		c.Workers = w
		rep, err := Run(c)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}
