package campaign

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/internal/fault"
	"repro/internal/live"
)

// TestCampaignLive: a live-backend campaign completes every run, reports
// coherent aggregates, and its percentiles are ordered.
func TestCampaignLive(t *testing.T) {
	rep, err := Run(Config{Runs: 24, Workers: 4, N: 8, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 24 || rep.Workers != 4 {
		t.Fatalf("report echoes runs=%d workers=%d", rep.Runs, rep.Workers)
	}
	if rep.Throughput <= 0 {
		t.Error("non-positive throughput")
	}
	if rep.MeanTime <= 0 {
		t.Error("non-positive mean time metric")
	}
	l := rep.Latency
	if l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
		t.Errorf("unordered percentiles: %+v", l)
	}
	if l.Mean <= 0 {
		t.Error("non-positive mean latency")
	}
}

// TestCampaignSim: the same engine fans sim-kernel elections across
// workers, optionally under an adversary schedule.
func TestCampaignSim(t *testing.T) {
	rep, err := Run(Config{
		Runs: 8, Workers: 2, N: 8, BaseSeed: 5,
		Backend: BackendSim, Schedule: expt.SchedLockStep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 || rep.MeanTime <= 0 {
		t.Errorf("degenerate sim campaign report: %+v", rep)
	}
}

// TestCampaignTournament: the baseline algorithm runs through the engine.
func TestCampaignTournament(t *testing.T) {
	rep, err := Run(Config{Runs: 6, Workers: 3, N: 4, BaseSeed: 2, Algorithm: live.AlgoTournament})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRounds < 1 {
		t.Error("tournament campaign reached no rounds")
	}
}

// TestCampaignValidation: bad configurations error instead of hanging.
func TestCampaignValidation(t *testing.T) {
	if _, err := Run(Config{Runs: 1, N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(Config{Runs: 1, N: 4, K: 9}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Run(Config{Runs: 1, N: 4, Backend: "quantum"}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := Run(Config{Runs: 1, N: 4, Schedule: expt.SchedFlipAware}); err == nil {
		t.Error("adversary schedule accepted on the live backend")
	}
	if _, err := Run(Config{Runs: 1, N: 4, Algorithm: "nonsense"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	// Sift algorithms are rejected eagerly — and with Runs far above the
	// worker count, so a regression to lazily erroring workers would show
	// up as the feeder deadlock this guards against.
	if _, err := Run(Config{Runs: 64, Workers: 2, N: 4, Algorithm: live.AlgoHetSift}); err == nil {
		t.Error("sift algorithm accepted by the election campaign")
	}
}

// TestScanWorkers: the scaling sweep returns one report per worker count.
func TestScanWorkers(t *testing.T) {
	counts := []int{1, 2}
	reps, err := ScanWorkers(Config{Runs: 8, N: 4, BaseSeed: 3}, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(counts) {
		t.Fatalf("%d reports for %d worker counts", len(reps), len(counts))
	}
	for i, rep := range reps {
		if rep.Workers != counts[i] {
			t.Errorf("report %d has workers=%d, want %d", i, rep.Workers, counts[i])
		}
	}
}

// TestDefaultWorkers: Workers=0 resolves to GOMAXPROCS.
func TestDefaultWorkers(t *testing.T) {
	rep, err := Run(Config{Runs: 4, N: 4, BaseSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", rep.Workers, runtime.GOMAXPROCS(0))
	}
}

// TestSeedSharding: distinct runs get distinct seeds, and — because the
// live backend strides per-processor seeds by the same golden-ratio
// constant internally — adjacent runs must not produce seeds one stride
// apart (which would alias whole processor PRNG streams across runs).
func TestSeedSharding(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		var prev int64
		for i := 0; i < 64; i++ {
			s := shardSeed(base, i)
			if seen[s] {
				t.Fatalf("seed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
			if i > 0 {
				if d := uint64(s) - uint64(prev); d%live.SeedStride == 0 {
					t.Fatalf("adjacent runs %d,%d are stride-aligned (d=%#x): processor streams alias", i-1, i, d)
				}
			}
			prev = s
		}
	}
}

// TestRunMatrix: the scenario matrix runs every cell, keeps rows in input
// order, and its validity counts balance (Elected + WinnerCrashed = Runs
// per scenario).
func TestRunMatrix(t *testing.T) {
	scenarios := []fault.Scenario{
		fault.Baseline(),
		{Name: "crash", Crashes: fault.CrashMax, CrashWindow: 300 * time.Microsecond},
		fault.HeavyTail(),
	}
	m, err := RunMatrix(Config{Runs: 12, Workers: 4, N: 8, BaseSeed: 3}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 36 {
		t.Fatalf("matrix ran %d elections, want 36", m.Runs)
	}
	if len(m.Scenarios) != 3 {
		t.Fatalf("%d scenario rows, want 3", len(m.Scenarios))
	}
	for i, row := range m.Scenarios {
		if row.Scenario.Name != scenarios[i].Name {
			t.Errorf("row %d is %q, want %q", i, row.Scenario.Name, scenarios[i].Name)
		}
		if row.Elected+row.WinnerCrashed != row.Runs {
			t.Errorf("%s: elected %d + winner-crashed %d != runs %d",
				row.Scenario.Name, row.Elected, row.WinnerCrashed, row.Runs)
		}
		l := row.Latency
		if l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
			t.Errorf("%s: unordered percentiles %+v", row.Scenario.Name, l)
		}
		if row.MeanTime <= 0 {
			t.Errorf("%s: non-positive mean time", row.Scenario.Name)
		}
	}
	base := m.Scenarios[0]
	if base.Elected != base.Runs || base.Crashed != 0 {
		t.Errorf("baseline row reports faults: %+v", base)
	}
	if m.Throughput <= 0 {
		t.Error("non-positive matrix throughput")
	}
}

// TestRunMatrixTCPSharedCluster: a fault-free scenario matrix over the TCP
// transport multiplexes every cell onto one shared electd server set —
// scenarios × seeds riding one quorum system over real sockets, batched by
// default — and still elects a unique winner in every run. Run under -race
// in CI.
func TestRunMatrixTCPSharedCluster(t *testing.T) {
	scenarios := []fault.Scenario{
		fault.Baseline(),
		{Name: "also-fault-free"},
	}
	m, err := RunMatrix(Config{
		Runs: 6, Workers: 4, N: 5, BaseSeed: 21, Transport: live.TransportTCP,
	}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 12 {
		t.Fatalf("matrix ran %d elections, want 12", m.Runs)
	}
	for _, row := range m.Scenarios {
		if row.Elected != row.Runs || row.Crashed != 0 {
			t.Errorf("%q: fault-free TCP row reports faults: %+v", row.Scenario.Name, row)
		}
		if row.MeanTime <= 0 {
			t.Errorf("%q: non-positive mean time", row.Scenario.Name)
		}
	}
}

// TestRunMatrixTCPScenarios: an active scenario forces the TCP matrix onto
// one owned cluster per election (faults must not leak across runs); mixed
// with a fault-free row, both shapes must hold their validity accounting.
// Run under -race in CI.
func TestRunMatrixTCPScenarios(t *testing.T) {
	scenarios := []fault.Scenario{
		fault.Baseline(),
		{Name: "crash-tcp", Crashes: fault.CrashMax, CrashWindow: 300 * time.Microsecond},
	}
	m, err := RunMatrix(Config{
		Runs: 4, Workers: 2, N: 5, BaseSeed: 7, Transport: live.TransportTCP,
	}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m.Scenarios {
		if row.Elected+row.WinnerCrashed != row.Runs {
			t.Errorf("%q: elected %d + winner-crashed %d != runs %d",
				row.Scenario.Name, row.Elected, row.WinnerCrashed, row.Runs)
		}
	}
	if base := m.Scenarios[0]; base.Elected != base.Runs || base.Crashed != 0 {
		t.Errorf("baseline row reports faults: %+v", base)
	}
}

// TestCampaignTCPNoBatch: the unbatched TCP baseline still elects across a
// shared cluster, and NoBatch is rejected off the TCP transport.
func TestCampaignTCPNoBatch(t *testing.T) {
	rep, err := Run(Config{
		Runs: 6, Workers: 3, N: 5, BaseSeed: 4,
		Transport: live.TransportTCP, NoBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elected != rep.Runs {
		t.Errorf("unbatched TCP campaign elected %d of %d", rep.Elected, rep.Runs)
	}
	if _, err := Run(Config{Runs: 1, N: 4, NoBatch: true}); err == nil {
		t.Error("NoBatch accepted on the chan transport")
	}
}

// TestRunWithScenario: Config.Scenario routes a single-scenario campaign
// through Run, and fault-free campaigns report full validity.
func TestRunWithScenario(t *testing.T) {
	rep, err := Run(Config{
		Runs: 10, Workers: 4, N: 9, BaseSeed: 11,
		Scenario: fault.Scenario{Name: "crash", Crashes: 2, CrashWindow: 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elected+rep.WinnerCrashed != rep.Runs {
		t.Errorf("elected %d + winner-crashed %d != runs %d", rep.Elected, rep.WinnerCrashed, rep.Runs)
	}

	plain, err := Run(Config{Runs: 6, Workers: 2, N: 4, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Elected != 6 || plain.WinnerCrashed != 0 || plain.Crashed != 0 {
		t.Errorf("fault-free campaign reports faults: %+v", plain)
	}
}

// TestScenarioRequiresLiveBackend: active scenarios are rejected on the sim
// backend, as are scenarios exceeding the crash cap.
func TestScenarioRequiresLiveBackend(t *testing.T) {
	if _, err := Run(Config{
		Runs: 2, N: 4, Backend: BackendSim,
		Scenario: fault.HeavyTail(),
	}); err == nil {
		t.Error("sim backend accepted a latency scenario")
	}
	if _, err := Run(Config{
		Runs: 2, N: 4,
		Scenario: fault.Scenario{Name: "too-many", Crashes: 2},
	}); err == nil {
		t.Error("crash count above ⌈n/2⌉−1 accepted")
	}
	if _, err := RunMatrix(Config{Runs: 2, N: 4}, nil); err == nil {
		t.Error("empty scenario matrix accepted")
	}
}

// TestRunMatrixLinkOnlySharedCluster: link-only scenarios (partitions,
// flaky links — no crash schedule) keep the shared TCP cluster: their
// faults are injected client-side, scoped per election, so the matrix
// multiplexes chaos rows and the fault-free control onto one server set
// and every row still holds its validity accounting. Run under -race in CI.
func TestRunMatrixLinkOnlySharedCluster(t *testing.T) {
	scenarios := []fault.Scenario{
		fault.Baseline(),
		fault.PartitionHeal(),
		fault.FlakyAsym(),
	}
	for _, sc := range scenarios[1:] {
		if !sc.LinkOnly() {
			t.Fatalf("%q is not link-only; the test premise is broken", sc.Name)
		}
	}
	m, err := RunMatrix(Config{
		Runs: 4, Workers: 4, N: 5, BaseSeed: 31, Transport: live.TransportTCP,
	}, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m.Scenarios {
		if row.Elected != row.Runs {
			t.Errorf("%q: elected %d of %d on the shared cluster (noquorum=%d crashed=%d starved=%d)",
				row.Scenario.Name, row.Elected, row.Runs, row.NoQuorum, row.Crashed, row.Starved)
		}
	}
}

// TestRunNoQuorumReporting: a scenario that provably starves every client
// (total permanent loss, NoQuorumOK) yields all-no-quorum runs, and the
// report books them apart from winner-crashed: Elected + WinnerCrashed +
// NoQuorum = Runs, with the starved-participant total matching.
func TestRunNoQuorumReporting(t *testing.T) {
	rep, err := Run(Config{
		Runs: 4, Workers: 4, N: 5, BaseSeed: 13,
		Scenario: fault.Scenario{Name: "blackout", LossProb: 1, LossLinks: fault.AllLinks, NoQuorumOK: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoQuorum != rep.Runs || rep.Elected != 0 || rep.WinnerCrashed != 0 {
		t.Errorf("blackout campaign books elected=%d winner-crashed=%d noquorum=%d of %d runs",
			rep.Elected, rep.WinnerCrashed, rep.NoQuorum, rep.Runs)
	}
	if rep.Elected+rep.WinnerCrashed+rep.NoQuorum != rep.Runs {
		t.Errorf("validity counts do not sum to runs: %+v", rep)
	}
	if rep.Starved != rep.Runs*5 {
		t.Errorf("starved %d participants, want %d", rep.Starved, rep.Runs*5)
	}
	if rep.Crashed != 0 {
		t.Errorf("blackout campaign reports %d crashes", rep.Crashed)
	}
}
