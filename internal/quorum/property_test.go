package quorum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestMergeConvergesRegardlessOfOrder(t *testing.T) {
	// Property: applying the same set of entries in any order yields the
	// same store state (merge is commutative and idempotent) — the reason
	// stale retransmissions are harmless.
	f := func(seqs []uint8, perm int64) bool {
		const n = 4
		var entries []Entry
		for i, s := range seqs {
			owner := i % n
			seq := uint64(s%8) + 1
			// In the real protocol (owner, seq) determines the value: the
			// cell has a single writer that bumps seq on every write. Keep
			// the generated entries consistent with that.
			entries = append(entries, Entry{
				Reg:   "r",
				Owner: sim.ProcID(owner),
				Seq:   seq,
				Val:   int(seq)*10 + owner,
			})
		}
		a := NewStore(0, n)
		for _, e := range entries {
			a.merge(e)
		}
		b := NewStore(0, n)
		rng := rand.New(rand.NewSource(perm))
		for _, i := range rng.Perm(len(entries)) {
			b.merge(entries[i])
		}
		// Apply twice to b: idempotence.
		for _, e := range entries {
			b.merge(e)
		}
		for j := 0; j < n; j++ {
			av, aok := a.Local("r", sim.ProcID(j))
			bv, bok := b.Local("r", sim.ProcID(j))
			if aok != bok || (aok && av != bv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCacheInvalidation(t *testing.T) {
	s := NewStore(0, 3)
	s.merge(Entry{Reg: "r", Owner: 1, Seq: 1, Val: "a"})
	snap1 := s.Snapshot("r")
	snap1b := s.Snapshot("r")
	if &snap1[0] != &snap1b[0] {
		t.Fatal("unchanged store should reuse the cached snapshot")
	}
	// An ineffective merge (stale seq) must not invalidate the cache.
	s.merge(Entry{Reg: "r", Owner: 1, Seq: 1, Val: "stale"})
	if snapCached := s.Snapshot("r"); &snapCached[0] != &snap1[0] {
		t.Fatal("stale merge invalidated the cache")
	}
	// An effective merge must.
	s.merge(Entry{Reg: "r", Owner: 2, Seq: 1, Val: "b"})
	snap2 := s.Snapshot("r")
	if len(snap2) != 2 {
		t.Fatalf("snapshot after write has %d entries, want 2", len(snap2))
	}
}

func TestSnapshotSizeTracksEntries(t *testing.T) {
	s := NewStore(0, 3)
	s.merge(Entry{Reg: "r", Owner: 1, Seq: 1, Val: 5})
	entries, size := s.snapshotSized("r")
	want := 0
	for _, e := range entries {
		want += e.WireSize()
	}
	if size != want {
		t.Fatalf("snapshotSized = %d, want %d", size, want)
	}
	if _, size := s.snapshotSized("missing"); size != 0 {
		t.Fatal("missing register should have zero size")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		payload any
		want    MsgKind
	}{
		{propagateMsg{}, KindPropagate},
		{ackMsg{}, KindPropagateAck},
		{collectMsg{}, KindCollect},
		{collectAck{}, KindCollectAck},
		{"other", KindOther},
		{42, KindOther},
	}
	for _, tc := range cases {
		if got := Classify(tc.payload); got != tc.want {
			t.Fatalf("Classify(%T) = %v, want %v", tc.payload, got, tc.want)
		}
	}
}

func TestRegularityUnderAdversarialDelivery(t *testing.T) {
	// Regular-register property through the full stack: a Collect that
	// begins after a Propagate completes must return the written value (or
	// newer) in at least one view, under a randomized adversary. Many seeds.
	for seed := int64(0); seed < 25; seed++ {
		const n = 7
		k := sim.NewKernel(sim.Config{N: n, Seed: seed})
		stores := InstallStores(k)
		writerDone := false
		sawFresh := false
		k.Spawn(0, func(p *sim.Proc) {
			c := NewComm(p, stores[0])
			c.Propagate("x", "v1")
			c.Propagate("x", "v2")
			writerDone = true
		})
		k.Spawn(3, func(p *sim.Proc) {
			c := NewComm(p, stores[3])
			p.Await(func() bool { return writerDone })
			for _, v := range c.Collect("x") {
				if val, ok := v.Get(0); ok && val == "v2" {
					sawFresh = true
				}
			}
		})
		// Randomized delivery order.
		rng := rand.New(rand.NewSource(seed * 31))
		adv := sim.AdversaryFunc(func(k *sim.Kernel) sim.Action {
			if k.InflightCount() > 0 && rng.Intn(3) == 0 {
				if id, ok := k.RandomInflight(rng); ok {
					return sim.Deliver{Msg: id}
				}
			}
			return k.FairAction()
		})
		if _, err := k.Run(adv); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if !sawFresh {
			t.Fatalf("seed=%d: collect after completed write missed v2 (regularity violated)", seed)
		}
	}
}
