// Package quorum implements the communicate primitive of Attiya, Bar-Noy and
// Dolev [ABND95] as used by "How to Elect a Leader Faster than a Tournament"
// (Section 2): communicate(m) sends m to all n processors and waits for at
// least ⌊n/2⌋+1 acknowledgments before proceeding. Its key property — relied
// on by every proof in the paper — is that any two communicate calls
// intersect in at least one recipient.
//
// State is organised as register arrays: a register array is a named vector
// with one cell per processor, and each cell is written only by its owner
// with a monotonically increasing sequence number (so stale propagations
// never overwrite fresh ones). Two operations are provided, matching the
// paper's two message forms:
//
//   - Propagate (the paper's "propagate, v"): write the caller's own cell and
//     push it to a quorum;
//   - Collect (the paper's "collect, v"): gather the register array views of
//     at least ⌊n/2⌋+1 processors and return them.
//
// Both count as one communicate call for time accounting (Claim 2.1), and
// both cost O(n) messages.
package quorum

import (
	"fmt"

	"repro/internal/rt"
	"repro/internal/sim"
)

// Value, Entry and View are aliases of the backend-neutral types of the
// runtime seam (internal/rt), so views collected on this backend and on the
// live backend are interchangeable and algorithm code is backend-blind.
type (
	// Value is the content of a register cell. Values must be treated as
	// immutable once propagated: stores hand out references, not copies.
	Value = rt.Value

	// Entry is one register cell in transit or in a view: the cell of
	// register array Reg owned by Owner, at write version Seq.
	Entry = rt.Entry

	// View is one processor's register-array snapshot returned by Collect:
	// the non-⊥ cells of register Reg at replier From. In the paper's
	// notation, Views[k][j] is Get(j) on the k-th returned View.
	View = rt.View
)

// Message payloads exchanged by the layer.
type (
	// propagateMsg pushes register cells to a recipient, who merges them
	// and acknowledges.
	propagateMsg struct {
		Call    int64
		From    sim.ProcID
		Entries []Entry
	}
	// ackMsg acknowledges a propagateMsg.
	ackMsg struct {
		Call int64
		From sim.ProcID
	}
	// collectMsg requests the recipient's view of one register array.
	collectMsg struct {
		Call int64
		From sim.ProcID
		Reg  string
	}
	// collectAck carries the recipient's view back to the caller.
	collectAck struct {
		Call    int64
		From    sim.ProcID
		Entries []Entry

		entriesSize int // precomputed WireSize of Entries (0 = unknown)
	}
)

// The WireSize methods report the exact frame-body sizes of each payload's
// internal/wire equivalent, so the sim kernel's PayloadBytes statistic and
// the live backend's byte counters account the identical wire format. The
// arithmetic mirrors wire.Msg.WireSize: kind byte, election/call/from
// uvarints (election is 0 on this backend — a run is one instance), the
// register name once per message, then the entries. entriesReg returns
// that per-message register name.
func entriesReg(entries []Entry) string {
	if len(entries) == 0 {
		return ""
	}
	return entries[0].Reg
}

// msgOverhead is the shared frame-body header: kind byte + election uvarint
// + call uvarint + from uvarint + register-name length and bytes.
func msgOverhead(call int64, from sim.ProcID, reg string) int {
	return 1 + rt.UvarintSize(0) + rt.UvarintSize(uint64(call)) +
		rt.UvarintSize(uint64(from)) + rt.UvarintSize(uint64(len(reg))) + len(reg)
}

// WireSize implements sim.WireSizer.
func (m propagateMsg) WireSize() int {
	reg := entriesReg(m.Entries)
	n := msgOverhead(m.Call, m.From, reg) + rt.UvarintSize(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		n += e.WireSize()
	}
	return n
}

// WireSize implements sim.WireSizer.
func (m ackMsg) WireSize() int { return msgOverhead(m.Call, m.From, "") }

// WireSize implements sim.WireSizer.
func (m collectMsg) WireSize() int { return msgOverhead(m.Call, m.From, m.Reg) }

// WireSize implements sim.WireSizer.
func (m collectAck) WireSize() int {
	reg := entriesReg(m.Entries)
	n := msgOverhead(m.Call, m.From, reg) + rt.UvarintSize(uint64(len(m.Entries)))
	if m.entriesSize > 0 || len(m.Entries) == 0 {
		return n + m.entriesSize
	}
	for _, e := range m.Entries {
		n += e.WireSize()
	}
	return n
}

// pendingCall tracks one outstanding communicate call on the caller side.
// Slots are recycled through the store's one-deep freelist: a processor has
// at most one call outstanding (communicate blocks), so the slot — and the
// views backing array Collect hands to the algorithm — is reused on the
// next call, which is what makes Collect's results valid only until then
// (the rt.Comm contract).
type pendingCall struct {
	acks  int
	views []View
}

// Store is the per-processor state of the layer: the local view of every
// register array plus the bookkeeping for the processor's own outstanding
// communicate calls. It implements sim.Service and must be installed on all
// n processors (participants or not) so that everyone acknowledges, per the
// model's standing assumption.
type Store struct {
	id   sim.ProcID
	n    int
	regs map[string]*regArray // register name -> cells indexed by owner

	nextCall int64
	pending  map[int64]*pendingCall
	free     *pendingCall // one-deep recycled-slot freelist; see pendingCall
}

type cell struct {
	seq uint64
	val Value
}

// regArray holds one register array plus a published version-tagged
// snapshot: collect replies during a quiescent spell share one immutable
// entry slice instead of re-copying the array per reply, which dominates
// large-n runs. The shape — immutable snapshot bundle behind a pointer,
// lazily invalidated by the write version — deliberately mirrors the
// lock-free stores of the live backend and the electd server; the sim
// kernel is deterministic and single-threaded, so the pointer needs no
// atomics, but keeping the same publication discipline keeps the three
// backends line-for-line comparable.
type regArray struct {
	cells   []cell
	version uint64    // bumped on every effective write
	snap    *snapshot // published snapshot; nil or stale ⇒ rebuild
}

// snapshot is one published register-array view: the non-⊥ cells in owner
// order plus their precomputed total WireSize, valid at array version ver.
// Published snapshots are immutable — a winning merge makes them stale,
// never different.
type snapshot struct {
	ver     uint64
	entries []Entry
	size    int
}

// NewStore creates the store for processor id in a system of n processors.
func NewStore(id sim.ProcID, n int) *Store {
	return &Store{
		id:      id,
		n:       n,
		regs:    make(map[string]*regArray),
		pending: make(map[int64]*pendingCall),
	}
}

// array returns the register array for reg, creating it on first use.
func (s *Store) array(reg string) *regArray {
	arr := s.regs[reg]
	if arr == nil {
		arr = &regArray{cells: make([]cell, s.n)}
		s.regs[reg] = arr
	}
	return arr
}

// InstallStores equips every processor of the kernel with a fresh Store and
// returns them indexed by processor.
func InstallStores(k *sim.Kernel) []*Store {
	n := k.N()
	stores := make([]*Store, n)
	for i := 0; i < n; i++ {
		stores[i] = NewStore(sim.ProcID(i), n)
		k.SetService(sim.ProcID(i), stores[i])
	}
	return stores
}

// HandleMessage implements sim.Service.
func (s *Store) HandleMessage(from sim.ProcID, payload any) (any, bool) {
	switch m := payload.(type) {
	case propagateMsg:
		for _, e := range m.Entries {
			s.merge(e)
		}
		return ackMsg{Call: m.Call, From: s.id}, true
	case collectMsg:
		entries, size := s.snapshotSized(m.Reg)
		return collectAck{Call: m.Call, From: s.id, Entries: entries, entriesSize: size}, true
	case ackMsg:
		if c, ok := s.pending[m.Call]; ok {
			c.acks++
		}
		return nil, false
	case collectAck:
		if c, ok := s.pending[m.Call]; ok {
			c.acks++
			c.views = append(c.views, View{From: m.From, Entries: m.Entries})
		}
		return nil, false
	default:
		// Unknown payloads are ignored: the layer shares the network with
		// nothing else, but stays robust.
		return nil, false
	}
}

// merge applies an entry if it is newer than the local cell (writer
// versioning: higher sequence numbers win; owners never regress).
func (s *Store) merge(e Entry) {
	arr := s.array(e.Reg)
	if e.Seq > arr.cells[e.Owner].seq {
		arr.cells[e.Owner] = cell{seq: e.Seq, val: e.Val}
		arr.version++
	}
}

// Snapshot returns the non-⊥ cells of a register array as entries, in owner
// order. The slice belongs to the published snapshot, shared across callers
// of the same version: it and the values it references must be treated as
// immutable.
func (s *Store) Snapshot(reg string) []Entry {
	entries, _ := s.snapshotSized(reg)
	return entries
}

// snapshotSized returns the published snapshot together with its total wire
// size, so per-ack accounting does not re-walk the entries. A stale (or
// absent) publication is rebuilt from the cells and republished.
func (s *Store) snapshotSized(reg string) ([]Entry, int) {
	arr := s.regs[reg]
	if arr == nil {
		return nil, 0
	}
	if sn := arr.snap; sn != nil && sn.ver == arr.version {
		return sn.entries, sn.size
	}
	out := make([]Entry, 0, s.n)
	size := 0
	for owner, c := range arr.cells {
		if c.seq > 0 {
			e := Entry{Reg: reg, Owner: sim.ProcID(owner), Seq: c.seq, Val: c.val}
			size += e.WireSize()
			out = append(out, e)
		}
	}
	arr.snap = &snapshot{ver: arr.version, entries: out, size: size}
	return out, size
}

// Local returns this store's current value for owner j's cell of register
// reg; ok is false for ⊥.
func (s *Store) Local(reg string, j sim.ProcID) (Value, bool) {
	arr := s.regs[reg]
	if arr == nil || arr.cells[j].seq == 0 {
		return nil, false
	}
	return arr.cells[j].val, true
}

// Comm is the algorithm-side handle for issuing communicate calls from one
// processor. It pairs the processor's kernel handle with its store.
type Comm struct {
	p  *sim.Proc
	st *Store
}

// NewComm builds the communicate handle for an algorithm running on p, using
// the store installed on p's processor.
func NewComm(p *sim.Proc, st *Store) *Comm {
	if st.id != p.ID() {
		panic(fmt.Sprintf("quorum: store of processor %d attached to processor %d", st.id, p.ID()))
	}
	return &Comm{p: p, st: st}
}

// Proc returns the processor handle behind this Comm, as the backend-neutral
// rt.Procer of the runtime seam. The concrete handle is the *sim.Proc passed
// to NewComm.
func (c *Comm) Proc() rt.Procer { return c.p }

// Store returns the processor's local store.
func (c *Comm) Store() *Store { return c.st }

// QuorumSize returns ⌊n/2⌋+1, the number of acknowledgments every
// communicate call waits for.
func (c *Comm) QuorumSize() int { return c.st.n/2 + 1 }

// Propagate performs communicate(propagate, reg[self] = val): it bumps the
// caller's cell of register reg to val and pushes it to at least a quorum.
// One communicate call; blocks until ⌊n/2⌋+1 acks (self included) arrive.
func (c *Comm) Propagate(reg string, val Value) {
	arr := c.st.array(reg)
	self := c.p.ID()
	arr.cells[self] = cell{seq: arr.cells[self].seq + 1, val: val}
	arr.version++
	entry := Entry{Reg: reg, Owner: self, Seq: arr.cells[self].seq, Val: val}
	c.broadcast(propagateEntriesCall{entries: []Entry{entry}})
}

// PropagateEntries pushes an arbitrary set of already-versioned entries
// (typically a snapshot of cells learned from others) to a quorum. It is
// used by the renaming algorithm's line 37, which relays contention
// information originating at other processors. One communicate call.
func (c *Comm) PropagateEntries(entries []Entry) {
	// Relayed entries are merged locally first so the self-ack is honest:
	// the caller's store reflects everything the call pushes.
	for _, e := range entries {
		c.st.merge(e)
	}
	c.broadcast(propagateEntriesCall{entries: entries})
}

// Collect performs communicate(collect, reg): it gathers the views of at
// least ⌊n/2⌋+1 processors (the caller's own store included) and returns
// them. One communicate call. The returned slice is recycled scratch: it
// is valid until this processor's next communicate call (the entries
// inside are shared immutable snapshots and stay valid).
func (c *Comm) Collect(reg string) []View {
	call := c.newCall()
	pc := c.st.pending[call]
	// The caller's own view counts as one of the ⌊n/2⌋+1.
	pc.acks++
	pc.views = append(pc.views, View{From: c.p.ID(), Entries: c.st.Snapshot(reg)})
	for i := 0; i < c.st.n; i++ {
		if sim.ProcID(i) == c.p.ID() {
			continue
		}
		c.p.Send(sim.ProcID(i), collectMsg{Call: call, From: c.p.ID(), Reg: reg})
	}
	c.await(call)
	views := pc.views
	c.endCall(call, pc)
	return views
}

type propagateEntriesCall struct {
	entries []Entry
}

// broadcast implements the shared send-and-await-quorum path for propagate
// calls.
func (c *Comm) broadcast(pcall propagateEntriesCall) {
	call := c.newCall()
	pc := c.st.pending[call]
	pc.acks++ // self-ack: the local store is updated synchronously
	msg := propagateMsg{Call: call, From: c.p.ID(), Entries: pcall.entries}
	for i := 0; i < c.st.n; i++ {
		if sim.ProcID(i) == c.p.ID() {
			continue
		}
		c.p.Send(sim.ProcID(i), msg)
	}
	c.await(call)
	c.endCall(call, c.st.pending[call])
}

func (c *Comm) newCall() int64 {
	c.st.nextCall++
	call := c.st.nextCall
	pc := c.st.free
	if pc != nil {
		c.st.free = nil
		pc.acks = 0
		pc.views = pc.views[:0]
	} else {
		pc = &pendingCall{}
	}
	c.st.pending[call] = pc
	return call
}

// endCall retires a completed call, recycling its slot (and the views
// backing array) for the processor's next communicate call.
func (c *Comm) endCall(call int64, pc *pendingCall) {
	delete(c.st.pending, call)
	c.st.free = pc
}

// await blocks the algorithm until the call has a quorum of acks, counting
// the call for time complexity.
func (c *Comm) await(call int64) {
	c.p.NoteCommunicate()
	need := c.QuorumSize()
	pc := c.st.pending[call]
	if pc.acks >= need {
		// Quorum already satisfied (n == 1): still yield once so the
		// adversary keeps scheduling control at every communicate call.
		c.p.Pause()
		return
	}
	c.p.Await(func() bool { return pc.acks >= need })
}

// MsgKind classifies layer payloads for adversary strategies, which hold or
// prioritise messages by role (e.g. delaying propagations while letting
// acknowledgments through). The strong adversary may inspect payloads, so
// exposing the classification is within the model.
type MsgKind int

const (
	// KindOther: not a quorum-layer payload.
	KindOther MsgKind = iota + 1
	// KindPropagate: a propagate request carrying register cells.
	KindPropagate
	// KindPropagateAck: an acknowledgment of a propagate request.
	KindPropagateAck
	// KindCollect: a collect request.
	KindCollect
	// KindCollectAck: a collect reply carrying a register-array view.
	KindCollectAck
)

// Classify reports the protocol role of a message payload.
func Classify(payload any) MsgKind {
	switch payload.(type) {
	case propagateMsg:
		return KindPropagate
	case ackMsg:
		return KindPropagateAck
	case collectMsg:
		return KindCollect
	case collectAck:
		return KindCollectAck
	default:
		return KindOther
	}
}
