package quorum

import (
	"testing"

	"repro/internal/sim"
)

// runOn builds an n-processor kernel with stores installed, spawns the given
// algorithms (indexed by processor), runs with the fair scheduler and
// returns the stats.
func runOn(t *testing.T, n int, seed int64, algos map[sim.ProcID]func(*Comm)) sim.Stats {
	t.Helper()
	k := sim.NewKernel(sim.Config{N: n, Seed: seed})
	stores := InstallStores(k)
	for id, fn := range algos {
		id, fn := id, fn
		k.Spawn(id, func(p *sim.Proc) {
			fn(NewComm(p, stores[id]))
		})
	}
	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

func TestPropagateReachesQuorumAndCollectSeesIt(t *testing.T) {
	const n = 5
	var views []View
	runOn(t, n, 1, map[sim.ProcID]func(*Comm){
		0: func(c *Comm) {
			c.Propagate("r", "hello")
			views = c.Collect("r")
		},
	})
	if len(views) < n/2+1 {
		t.Fatalf("collected %d views, want >= %d", len(views), n/2+1)
	}
	// The caller's own view must show the write.
	found := false
	for _, v := range views {
		if val, ok := v.Get(0); ok {
			if val != "hello" {
				t.Fatalf("view of cell 0 = %v, want hello", val)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no collected view contains the propagated value")
	}
}

func TestTwoCallsIntersect(t *testing.T) {
	// The fundamental property: a Collect that starts after a Propagate
	// completed must observe the propagated value in at least one view —
	// under any schedule. We drive an adversarial schedule that serves the
	// two calls from complementary halves as much as legality permits.
	const n = 5
	k := sim.NewKernel(sim.Config{N: n, Seed: 7})
	stores := InstallStores(k)

	sawIt := false
	propagateDone := false
	k.Spawn(0, func(p *sim.Proc) {
		c := NewComm(p, stores[0])
		c.Propagate("x", 42)
		propagateDone = true
		p.Pause()
	})
	k.Spawn(1, func(p *sim.Proc) {
		c := NewComm(p, stores[1])
		p.Await(func() bool { return propagateDone })
		views := c.Collect("x")
		for _, v := range views {
			if val, ok := v.Get(0); ok && val == 42 {
				sawIt = true
			}
		}
	})
	if _, err := k.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sawIt {
		t.Fatal("collect after completed propagate missed the write: quorum intersection violated")
	}
}

func TestSeqNewerWinsOlderIgnored(t *testing.T) {
	s := NewStore(0, 3)
	s.merge(Entry{Reg: "r", Owner: 1, Seq: 2, Val: "new"})
	s.merge(Entry{Reg: "r", Owner: 1, Seq: 1, Val: "old"})
	got, ok := s.Local("r", 1)
	if !ok || got != "new" {
		t.Fatalf("Local = %v,%v want new,true", got, ok)
	}
	s.merge(Entry{Reg: "r", Owner: 1, Seq: 3, Val: "newest"})
	if got, _ := s.Local("r", 1); got != "newest" {
		t.Fatalf("Local after newer merge = %v, want newest", got)
	}
}

func TestSnapshotSparseAndOrdered(t *testing.T) {
	s := NewStore(0, 4)
	s.merge(Entry{Reg: "r", Owner: 3, Seq: 1, Val: "c"})
	s.merge(Entry{Reg: "r", Owner: 1, Seq: 1, Val: "a"})
	snap := s.Snapshot("r")
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2 (sparse)", len(snap))
	}
	if snap[0].Owner != 1 || snap[1].Owner != 3 {
		t.Fatalf("snapshot order %v, want owner order", snap)
	}
	if s.Snapshot("missing") != nil {
		t.Fatal("snapshot of unknown register should be nil")
	}
}

func TestViewGet(t *testing.T) {
	v := View{From: 2, Entries: []Entry{{Reg: "r", Owner: 1, Seq: 1, Val: "x"}}}
	if got, ok := v.Get(1); !ok || got != "x" {
		t.Fatalf("Get(1) = %v,%v", got, ok)
	}
	if _, ok := v.Get(0); ok {
		t.Fatal("Get(0) should be ⊥")
	}
}

func TestPropagateOverwritesOwnCell(t *testing.T) {
	var final Value
	runOn(t, 3, 2, map[sim.ProcID]func(*Comm){
		0: func(c *Comm) {
			c.Propagate("r", "first")
			c.Propagate("r", "second")
			views := c.Collect("r")
			for _, v := range views {
				if v.From == 0 {
					final, _ = v.Get(0)
				}
			}
		},
	})
	if final != "second" {
		t.Fatalf("own cell = %v, want second", final)
	}
}

func TestCommunicateCallCounting(t *testing.T) {
	stats := runOn(t, 5, 3, map[sim.ProcID]func(*Comm){
		0: func(c *Comm) {
			c.Propagate("r", 1)                         // 1
			c.Collect("r")                              // 2
			c.PropagateEntries(c.Store().Snapshot("r")) // 3
		},
	})
	if stats.CommCalls[0] != 3 {
		t.Fatalf("CommCalls[0] = %d, want 3", stats.CommCalls[0])
	}
}

func TestMessageCostLinearPerCall(t *testing.T) {
	const n = 9
	stats := runOn(t, n, 4, map[sim.ProcID]func(*Comm){
		0: func(c *Comm) {
			c.Propagate("r", 1)
		},
	})
	// One propagate: n-1 requests; every processor that is stepped with the
	// request replies once. Bounded by 2(n-1).
	if stats.MessagesSent > int64(2*(n-1)) {
		t.Fatalf("MessagesSent = %d, want <= %d", stats.MessagesSent, 2*(n-1))
	}
	if stats.MessagesSent < int64(n-1+n/2) {
		t.Fatalf("MessagesSent = %d suspiciously low", stats.MessagesSent)
	}
}

func TestConcurrentCollectsFromAllProcessors(t *testing.T) {
	const n = 7
	counts := make([]int, n)
	algos := map[sim.ProcID]func(*Comm){}
	for i := 0; i < n; i++ {
		i := i
		algos[sim.ProcID(i)] = func(c *Comm) {
			c.Propagate("r", i)
			views := c.Collect("r")
			counts[i] = len(views)
		}
	}
	runOn(t, n, 5, algos)
	for i, got := range counts {
		if got < n/2+1 {
			t.Fatalf("processor %d collected %d views, want >= %d", i, got, n/2+1)
		}
	}
}

func TestCollectSurvivesMinorityCrash(t *testing.T) {
	// With ⌈n/2⌉−1 = 2 crashed processors out of 5, communicate calls must
	// still complete: a quorum of 3 is alive.
	const n = 5
	k := sim.NewKernel(sim.Config{N: n, Seed: 6, MaxFaults: -1})
	stores := InstallStores(k)
	var got []View
	k.Spawn(0, func(p *sim.Proc) {
		c := NewComm(p, stores[0])
		c.Propagate("r", "v")
		got = c.Collect("r")
	})
	crashed := 0
	adv := sim.AdversaryFunc(func(k *sim.Kernel) sim.Action {
		if crashed < 2 {
			crashed++
			return sim.Crash{Proc: sim.ProcID(crashed + 2), DropOutgoing: true}
		}
		return nil
	})
	if _, err := k.Run(adv); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) < 3 {
		t.Fatalf("collected %d views, want >= 3", len(got))
	}
}

func TestStaleAcksIgnored(t *testing.T) {
	// An ack for a finished call must not satisfy a later call's quorum.
	s := NewStore(0, 5)
	s.pending[1] = &pendingCall{}
	s.HandleMessage(1, ackMsg{Call: 1})
	if s.pending[1].acks != 1 {
		t.Fatal("live ack not recorded")
	}
	delete(s.pending, 1)
	// Late ack after the call completed: dropped silently.
	s.HandleMessage(2, ackMsg{Call: 1})
	s.pending[2] = &pendingCall{}
	s.HandleMessage(3, ackMsg{Call: 99})
	if s.pending[2].acks != 0 {
		t.Fatal("mismatched ack credited to the wrong call")
	}
}

func TestUnknownPayloadIgnored(t *testing.T) {
	s := NewStore(0, 3)
	if reply, ok := s.HandleMessage(1, "garbage"); ok || reply != nil {
		t.Fatal("unknown payload should be ignored without a reply")
	}
}

func TestNEqualsOne(t *testing.T) {
	var views []View
	runOn(t, 1, 8, map[sim.ProcID]func(*Comm){
		0: func(c *Comm) {
			c.Propagate("r", "solo")
			views = c.Collect("r")
		},
	})
	if len(views) != 1 {
		t.Fatalf("views = %d, want 1", len(views))
	}
	if v, ok := views[0].Get(0); !ok || v != "solo" {
		t.Fatalf("solo view = %v,%v", v, ok)
	}
}

func TestPropagateEntriesRelaysOtherOwners(t *testing.T) {
	// Processor 1 relays what it learned about processor 0's cell; a later
	// collect by processor 2 must be able to see it even if processor 0
	// never speaks again.
	const n = 5
	k := sim.NewKernel(sim.Config{N: n, Seed: 9})
	stores := InstallStores(k)
	stage := 0
	var seen Value
	k.Spawn(0, func(p *sim.Proc) {
		c := NewComm(p, stores[0])
		c.Propagate("r", "origin")
		stage = 1
	})
	k.Spawn(1, func(p *sim.Proc) {
		c := NewComm(p, stores[1])
		p.Await(func() bool { return stage == 1 })
		c.Collect("r")
		c.PropagateEntries(c.Store().Snapshot("r"))
		stage = 2
	})
	k.Spawn(2, func(p *sim.Proc) {
		c := NewComm(p, stores[2])
		p.Await(func() bool { return stage == 2 })
		views := c.Collect("r")
		for _, v := range views {
			if val, ok := v.Get(0); ok {
				seen = val
			}
		}
	})
	if _, err := k.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if seen != "origin" {
		t.Fatalf("relayed value not visible: %v", seen)
	}
}

func TestWireSizes(t *testing.T) {
	e := Entry{Reg: "r", Owner: 1, Seq: 1, Val: 5}
	if e.WireSize() <= 0 {
		t.Fatal("entry wire size must be positive")
	}
	if (propagateMsg{Entries: []Entry{e}}).WireSize() <= e.WireSize() {
		t.Fatal("propagate must cost more than its entries")
	}
	if (ackMsg{}).WireSize() <= 0 || (collectMsg{Reg: "r"}).WireSize() <= 0 {
		t.Fatal("control messages must have positive size")
	}
	if (collectAck{Entries: []Entry{e}}).WireSize() <= 0 {
		t.Fatal("collect ack must have positive size")
	}
}

func TestQuorumSize(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {6, 4}, {7, 4}, {100, 51},
	} {
		s := NewStore(0, tc.n)
		k := sim.NewKernel(sim.Config{N: tc.n, Seed: 1})
		done := make(chan int, 1)
		k.Spawn(0, func(p *sim.Proc) {
			c := NewComm(p, s)
			done <- c.QuorumSize()
		})
		k.SetService(0, s)
		if _, err := k.Run(nil); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if got := <-done; got != tc.want {
			t.Fatalf("QuorumSize(n=%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}
