package adversary

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/renaming"
	"repro/internal/sim"
)

// siftAlgo selects which single-round sifter a test run uses.
type siftAlgo int

const (
	algoPoisonPill siftAlgo = iota + 1
	algoNaive
)

// runSift runs one sifting round over all n processors under the given
// adversary and returns survivor count and per-processor outcomes.
func runSift(t *testing.T, algo siftAlgo, n int, seed int64, adv sim.Adversary) (int, map[sim.ProcID]core.Outcome) {
	t.Helper()
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed})
	stores := quorum.InstallStores(k2)
	outcomes := make(map[sim.ProcID]core.Outcome, n)
	prob := 1 / math.Sqrt(float64(n))
	for i := 0; i < n; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := core.NewState(p, "sift")
			switch algo {
			case algoPoisonPill:
				outcomes[id] = core.PoisonPill(c, "pp", s)
			case algoNaive:
				outcomes[id] = baseline.NaiveSift(c, "nv", prob, s)
			}
		})
	}
	if _, err := k2.Run(adv); err != nil {
		t.Fatalf("sift run (n=%d seed=%d): %v", n, seed, err)
	}
	alive := 0
	for _, o := range outcomes {
		if o == core.Survive {
			alive++
		}
	}
	return alive, outcomes
}

func TestSequentialForcesSqrtNSurvivorsInPoisonPill(t *testing.T) {
	// Section 3.2's lower-bound schedule: run participants one at a time.
	// Expected survivors = (0-flippers before the first 1-flipper) + (all
	// 1-flippers) ≈ 2√n. Check the mean is Ω(√n) — well above the polylog
	// a heterogeneous round achieves — and that at least one survives.
	const n = 256
	const trials = 15
	total := 0
	for seed := int64(0); seed < trials; seed++ {
		alive, _ := runSift(t, algoPoisonPill, n, seed, NewSequential(nil))
		if alive < 1 {
			t.Fatalf("seed=%d: zero survivors", seed)
		}
		total += alive
	}
	mean := float64(total) / trials
	if mean < math.Sqrt(n)/2 {
		t.Fatalf("sequential schedule achieved only %.1f mean survivors, want Ω(√n) ≈ %.0f",
			mean, math.Sqrt(n))
	}
	if mean > 6*math.Sqrt(n) {
		t.Fatalf("mean survivors %.1f exceed the O(√n) upper bound", mean)
	}
}

func TestFlipAwareBreaksNaiveSifting(t *testing.T) {
	// The Section 1 attack: with flips visible before any communication,
	// the adversary completes all 0-flippers first and *nobody* dies —
	// naive sifting makes no progress at all.
	const n = 64
	for seed := int64(0); seed < 10; seed++ {
		alive, _ := runSift(t, algoNaive, n, seed, NewFlipAware())
		if alive != n {
			t.Fatalf("seed=%d: flip-aware adversary let %d/%d survive; the attack should keep everyone alive",
				seed, alive, n)
		}
	}
}

func TestFlipAwareDefeatedByPoisonPill(t *testing.T) {
	// The same attack against PoisonPill fails: the commit state forces the
	// adversary to let everyone announce Commit before seeing any flip, so
	// completing 0-flippers observe committed processors and die. Survivors
	// collapse to roughly the 1-flippers, O(√n) on average.
	const n = 64
	const trials = 10
	total := 0
	for seed := int64(0); seed < trials; seed++ {
		alive, outcomes := runSift(t, algoPoisonPill, n, seed, NewFlipAware())
		if alive < 1 {
			t.Fatalf("seed=%d: zero survivors", seed)
		}
		if alive == len(outcomes) {
			t.Fatalf("seed=%d: everyone survived PoisonPill under flip-aware attack", seed)
		}
		total += alive
	}
	mean := float64(total) / trials
	if mean > 4*math.Sqrt(n)+8 {
		t.Fatalf("mean survivors %.1f exceed O(√n) under flip-aware attack", mean)
	}
}

func TestFairAndLockStepTerminateElections(t *testing.T) {
	for _, adv := range []sim.Adversary{NewFair(11), LockStep{}} {
		k2 := sim.NewKernel(sim.Config{N: 16, Seed: 3})
		stores := quorum.InstallStores(k2)
		decisions := make(map[sim.ProcID]core.Decision, 16)
		for i := 0; i < 16; i++ {
			id := sim.ProcID(i)
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				decisions[id] = core.LeaderElect(c, "e")
			})
		}
		if _, err := k2.Run(adv); err != nil {
			t.Fatalf("Run: %v", err)
		}
		winners := 0
		for _, d := range decisions {
			if d == core.Win {
				winners++
			}
		}
		if winners != 1 {
			t.Fatalf("winners = %d under %T", winners, adv)
		}
	}
}

func TestSequentialRoundsElectionSafety(t *testing.T) {
	// The per-round sequential schedule must not break the election: unique
	// winner, everyone returns.
	for seed := int64(0); seed < 5; seed++ {
		k2 := sim.NewKernel(sim.Config{N: 24, Seed: seed})
		stores := quorum.InstallStores(k2)
		decisions := make(map[sim.ProcID]core.Decision, 24)
		for i := 0; i < 24; i++ {
			id := sim.ProcID(i)
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				decisions[id] = core.LeaderElect(c, "e")
			})
		}
		if _, err := k2.Run(NewSequentialRounds()); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		winners := 0
		for id, d := range decisions {
			switch d {
			case core.Win:
				winners++
			case core.Lose:
			default:
				t.Fatalf("seed=%d: processor %d returned %v", seed, id, d)
			}
		}
		if winners != 1 {
			t.Fatalf("seed=%d: winners = %d", seed, winners)
		}
	}
}

func TestCrashTargetedElectionSafety(t *testing.T) {
	// Crash up to the model maximum while targeting the front-runner: every
	// surviving participant must still return, with at most one winner.
	const n = 16
	for _, faults := range []int{1, 3, 7} { // ⌈16/2⌉−1 = 7
		for seed := int64(0); seed < 5; seed++ {
			k2 := sim.NewKernel(sim.Config{N: n, Seed: seed, MaxFaults: -1})
			stores := quorum.InstallStores(k2)
			decisions := make(map[sim.ProcID]core.Decision, n)
			for i := 0; i < n; i++ {
				id := sim.ProcID(i)
				k2.Spawn(id, func(p *sim.Proc) {
					c := quorum.NewComm(p, stores[id])
					decisions[id] = core.LeaderElect(c, "e")
				})
			}
			adv := NewCrashTargeted(faults, 200, true, seed)
			if _, err := k2.Run(adv); err != nil {
				t.Fatalf("faults=%d seed=%d: %v", faults, seed, err)
			}
			winners := 0
			for _, d := range decisions {
				if d == core.Win {
					winners++
				}
			}
			if winners > 1 {
				t.Fatalf("faults=%d seed=%d: %d winners", faults, seed, winners)
			}
			if len(decisions)+adv.Crashed() < n {
				t.Fatalf("faults=%d seed=%d: %d decided + %d crashed < %d participants",
					faults, seed, len(decisions), adv.Crashed(), n)
			}
		}
	}
}

func TestCrashTargetedRenamingSafety(t *testing.T) {
	const n = 16
	for seed := int64(0); seed < 3; seed++ {
		k2 := sim.NewKernel(sim.Config{N: n, Seed: seed, MaxFaults: -1})
		stores := quorum.InstallStores(k2)
		names := make(map[sim.ProcID]int, n)
		for i := 0; i < n; i++ {
			id := sim.ProcID(i)
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				names[id] = renaming.GetName(c, &renaming.State{})
			})
		}
		adv := NewCrashTargeted(5, 300, false, seed)
		if _, err := k2.Run(adv); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		seen := make(map[int]bool)
		for id, u := range names {
			if u < 1 || u > n {
				t.Fatalf("seed=%d: processor %d returned name %d", seed, id, u)
			}
			if seen[u] {
				t.Fatalf("seed=%d: duplicate name %d", seed, u)
			}
			seen[u] = true
		}
	}
}

func TestBubbleForcesQuadraticMessages(t *testing.T) {
	// Theorem B.2's construction: bubbled participants must accumulate
	// ≥ n/4 buffered messages before being freed, so the run carries
	// Ω(kn) messages in total and the election still completes correctly.
	const n = 64
	k2 := sim.NewKernel(sim.Config{N: n, Seed: 7})
	stores := quorum.InstallStores(k2)
	decisions := make(map[sim.ProcID]core.Decision, n)
	for i := 0; i < n; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			decisions[id] = core.LeaderElect(c, "e")
		})
	}
	b := NewBubble()
	stats, err := k2.Run(b)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	winners := 0
	for _, d := range decisions {
		if d == core.Win {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d under bubble", winners)
	}
	if len(b.Members()) != n/4 {
		t.Fatalf("bubble held %d members, want %d", len(b.Members()), n/4)
	}
	// Every member must have been freed by the threshold (not the fallback)
	// in a healthy run, and each carried ≥ n/4 messages.
	perMember := int64(0)
	for _, cnt := range b.FreedCounts {
		perMember += int64(cnt)
	}
	if perMember < int64(len(b.Members())*b.Threshold()/2) {
		t.Fatalf("buffered message mass %d too small for %d members at threshold %d",
			perMember, len(b.Members()), b.Threshold())
	}
	if stats.MessagesSent < int64(n*n/16) {
		t.Fatalf("total messages %d below the Ω(kn) shape", stats.MessagesSent)
	}
}

func TestStaleViewsRenamingSafety(t *testing.T) {
	// The stale-view schedule skews contention views; renaming must still
	// assign unique names and terminate.
	const n = 16
	for seed := int64(0); seed < 3; seed++ {
		k2 := sim.NewKernel(sim.Config{N: n, Seed: seed})
		stores := quorum.InstallStores(k2)
		names := make(map[sim.ProcID]int, n)
		for i := 0; i < n; i++ {
			id := sim.ProcID(i)
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				names[id] = renaming.GetName(c, &renaming.State{})
			})
		}
		if _, err := k2.Run(NewStaleViews()); err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		seen := make(map[int]bool)
		for _, u := range names {
			if seen[u] {
				t.Fatalf("seed=%d: duplicate name %d", seed, u)
			}
			seen[u] = true
		}
	}
}

func TestSequentialElectionLetsFirstWin(t *testing.T) {
	// Fully sequential execution of a whole election: participant 0 runs
	// solo to completion and must win; everyone after must lose.
	const n = 12
	k2 := sim.NewKernel(sim.Config{N: n, Seed: 5})
	stores := quorum.InstallStores(k2)
	decisions := make(map[sim.ProcID]core.Decision, n)
	for i := 0; i < n; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			decisions[id] = core.LeaderElect(c, "e")
		})
	}
	if _, err := k2.Run(NewSequential(nil)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if decisions[0] != core.Win {
		t.Fatalf("first sequential participant returned %v, want WIN", decisions[0])
	}
	for i := 1; i < n; i++ {
		if decisions[sim.ProcID(i)] != core.Lose {
			t.Fatalf("participant %d returned %v, want LOSE", i, decisions[sim.ProcID(i)])
		}
	}
}

func TestDriverAdvancesIsolatedProcessor(t *testing.T) {
	// The driver must be able to carry a single participant through a full
	// communicate round-trip without touching other participants' algorithms.
	const n = 8
	k2 := sim.NewKernel(sim.Config{N: n, Seed: 2})
	stores := quorum.InstallStores(k2)
	done := false
	k2.Spawn(0, func(p *sim.Proc) {
		c := quorum.NewComm(p, stores[0])
		c.Propagate("r", 1)
		c.Collect("r")
		done = true
	})
	k2.Spawn(5, func(p *sim.Proc) {
		p.Pause() // must never be started by the driver
	})
	var d Driver
	adv := sim.AdversaryFunc(func(k *sim.Kernel) sim.Action {
		if !k.Done(0) {
			if a := d.Progress(k, 0); a != nil {
				return a
			}
		}
		return nil
	})
	if _, err := k2.Run(adv); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("driver failed to complete the round-trip")
	}
}

func TestUntilDonePredicate(t *testing.T) {
	k2 := sim.NewKernel(sim.Config{N: 2, Seed: 1})
	k2.Spawn(0, func(p *sim.Proc) {})
	if UntilDone(k2, 0) {
		t.Fatal("unstarted participant reported done")
	}
	if _, err := k2.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !UntilDone(k2, 0) {
		t.Fatal("finished participant not reported done")
	}
}
