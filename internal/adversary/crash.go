package adversary

import (
	"math/rand"

	"repro/internal/sim"
)

// CrashTargeted crashes up to Faults participants at staggered points,
// always targeting the participant that is furthest ahead (highest published
// round, breaking ties by communicate count) — the most damaging choice,
// since it repeatedly kills the likely winner mid-protocol. Between crashes
// it schedules fairly with seeded random reordering.
//
// It drives the fault-tolerance experiments (T11): with at most ⌈n/2⌉−1
// crashes, every surviving participant must still return, with a unique
// winner (Theorem A.5) or unique names (Lemma A.6).
type CrashTargeted struct {
	faults       int
	gap          int64
	dropOutgoing bool
	rng          *rand.Rand

	crashed   int
	nextCrash int64
}

// NewCrashTargeted builds the strategy: up to faults crashes, one every gap
// actions (gap ≤ 0 selects a default spacing), dropping the victims'
// undelivered outgoing messages when dropOutgoing is set.
func NewCrashTargeted(faults int, gap int64, dropOutgoing bool, seed int64) *CrashTargeted {
	if gap <= 0 {
		gap = 500
	}
	return &CrashTargeted{
		faults:       faults,
		gap:          gap,
		dropOutgoing: dropOutgoing,
		rng:          rand.New(rand.NewSource(seed)),
		nextCrash:    gap,
	}
}

// roundOf reads the published election round of a participant, if any.
func roundOf(k *sim.Kernel, id sim.ProcID) int {
	type rounder interface{ CurrentRound() int }
	if st, ok := k.Published(id).(rounder); ok {
		return st.CurrentRound()
	}
	return 0
}

// victim picks the started, unfinished participant that is furthest ahead.
func (c *CrashTargeted) victim(k *sim.Kernel) (sim.ProcID, bool) {
	best := sim.ProcID(-1)
	bestRound, bestCalls := -1, -1
	for _, id := range k.Participants() {
		if !k.Started(id) || k.Done(id) || k.Crashed(id) {
			continue
		}
		r := roundOf(k, id)
		calls := k.CommCallsOf(id)
		if r > bestRound || (r == bestRound && calls > bestCalls) {
			best, bestRound, bestCalls = id, r, calls
		}
	}
	return best, best >= 0
}

// Next implements sim.Adversary.
func (c *CrashTargeted) Next(k *sim.Kernel) sim.Action {
	if c.crashed < c.faults && k.FaultBudget() > 0 && k.ActionCount() >= c.nextCrash {
		if id, ok := c.victim(k); ok {
			c.crashed++
			c.nextCrash = k.ActionCount() + c.gap
			return sim.Crash{Proc: id, DropOutgoing: c.dropOutgoing}
		}
	}
	if k.InflightCount() > 0 && c.rng.Intn(2) == 0 {
		if id, ok := k.RandomInflight(c.rng); ok {
			return sim.Deliver{Msg: id}
		}
	}
	return k.FairAction()
}

// Crashed reports how many participants the strategy has crashed so far.
func (c *CrashTargeted) Crashed() int { return c.crashed }
