package adversary

import "repro/internal/sim"

// filteredFair is a fair scheduler that respects a message filter: held
// messages (filter returns false) are never delivered, while starts, steps
// and permitted deliveries proceed in rotation. Strategies that embargo
// parts of the traffic (Bubble, StaleViews, FlipAware) build on it.
type filteredFair struct {
	participants []sim.ProcID
	startPos     int
	cursor       int
}

// next returns one fair action among those the filter permits, or nil when
// nothing is enabled (the caller decides whether that means releasing the
// embargo or halting).
func (f *filteredFair) next(k *sim.Kernel, allow func(*sim.Message) bool) sim.Action {
	if f.participants == nil {
		f.participants = k.Participants()
	}
	// Starts first, as the kernel's fair scheduler does.
	for f.startPos < len(f.participants) {
		id := f.participants[f.startPos]
		if k.Ready(id) {
			return sim.Start{Proc: id}
		}
		f.startPos++
	}
	n := k.N()
	// Permitted deliveries, rotating over recipients so no channel starves.
	for i := 0; i < n; i++ {
		q := sim.ProcID((f.cursor + i) % n)
		var pick sim.MsgID
		found := false
		k.EachInflightTo(q, func(m *sim.Message) bool {
			if allow == nil || allow(m) {
				pick = m.ID
				found = true
				return false
			}
			return true
		})
		if found {
			f.cursor = (int(q) + 1) % n
			return sim.Deliver{Msg: pick}
		}
	}
	// Steps, rotating over processors.
	for i := 0; i < n; i++ {
		q := sim.ProcID((f.cursor + i) % n)
		if k.Steppable(q) {
			f.cursor = (int(q) + 1) % n
			return sim.Step{Proc: q}
		}
	}
	return nil
}
