package adversary

import (
	"repro/internal/quorum"
	"repro/internal/sim"
)

// FlipAware is the Section 1 attack on visible coin flips, generalised to
// any single-sift protocol. The adaptive adversary watches every coin flip
// and then completes all 0-flippers before any 1-flipper's value can reach
// them, by embargoing the 1-flippers' outgoing information:
//
//  1. every participant is run just past its first coin flip (for the naive
//     sifter this requires no communication at all — the flip is the first
//     step — so the adversary learns all coins for free);
//  2. the 0-flippers are completed one at a time; messages that could carry
//     a 1 to them are held: no propagation from a 1-flipper is delivered
//     (acknowledgments are fine) and no collect request is handed to a
//     1-flipper (its reply would expose its own register cell);
//  3. the embargo is lifted and the fair scheduler finishes the run.
//
// Against the naive sifter this keeps every participant alive: 0-flippers
// observe only zeros and survive, 1-flippers survive by definition — sifting
// achieves nothing. Against PoisonPill the same strategy fails exactly as
// Claim 3.2 proves: to learn the flips the adversary first had to let every
// participant propagate its Commit status (step 1 blocks inside the first
// communicate call until then), so a completing 0-flipper sees committed
// processors with no visible low priority and dies. The contrast is
// experiment T10.
type FlipAware struct {
	drv   Driver
	ff    filteredFair
	stage int // 0: flip everyone; 1: finish 0-flippers; 2: release
	order []sim.ProcID
	pos   int
	zeros []sim.ProcID
}

// NewFlipAware builds the flip-aware strategy.
func NewFlipAware() *FlipAware { return &FlipAware{} }

// tainted reports whether a processor has flipped 1 already (its outgoing
// protocol information must be embargoed while 0-flippers finish).
func tainted(k *sim.Kernel, id sim.ProcID) bool {
	v, c := k.LastFlip(id)
	return c >= 1 && v == 1
}

// allow is the embargo filter of stage 1.
func (fa *FlipAware) allow(k *sim.Kernel) func(*sim.Message) bool {
	return func(m *sim.Message) bool {
		switch quorum.Classify(m.Payload) {
		case quorum.KindPropagate:
			// Propagations from a 1-flipper carry (or could carry) its high
			// status: hold them.
			return !tainted(k, m.From)
		case quorum.KindCollect:
			// A 1-flipper's collect reply would expose its own cell: do not
			// hand collect requests to 1-flippers.
			return !tainted(k, m.To)
		case quorum.KindCollectAck:
			return !tainted(k, m.From)
		default:
			// Acknowledgments and unknown payloads carry no register state.
			return true
		}
	}
}

// Next implements sim.Adversary.
func (fa *FlipAware) Next(k *sim.Kernel) sim.Action {
	if fa.order == nil {
		fa.order = k.Participants()
	}
	switch fa.stage {
	case 0:
		// Run every participant just past its first flip. Deliveries here
		// follow the embargo filter too, so no early 1 leaks to a
		// participant that has not yet flipped.
		for fa.pos < len(fa.order) {
			active := fa.order[fa.pos]
			_, flips := k.LastFlip(active)
			if flips >= 1 || UntilDone(k, active) {
				fa.pos++
				fa.drv = Driver{}
				continue
			}
			if a := fa.drv.ProgressFiltered(k, active, fa.allow(k)); a != nil {
				return a
			}
			// Cannot reach this participant's flip under the embargo
			// (should not happen before any flip exists); move on.
			fa.pos++
			fa.drv = Driver{}
		}
		for _, id := range fa.order {
			if v, c := k.LastFlip(id); c >= 1 && v == 0 {
				fa.zeros = append(fa.zeros, id)
			}
		}
		fa.stage = 1
		fa.pos = 0
		return fa.Next(k)
	case 1:
		for fa.pos < len(fa.zeros) {
			active := fa.zeros[fa.pos]
			if UntilDone(k, active) {
				fa.pos++
				fa.drv = Driver{}
				continue
			}
			if a := fa.drv.ProgressFiltered(k, active, fa.allow(k)); a != nil {
				return a
			}
			// The embargo leaves too few responders for this 0-flipper
			// (fewer than a quorum of untainted processors): skip it; the
			// release stage will let it finish.
			fa.pos++
			fa.drv = Driver{}
		}
		fa.stage = 2
		return fa.Next(k)
	default:
		return sim.Halt{}
	}
}
