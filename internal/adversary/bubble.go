package adversary

import (
	"repro/internal/sim"
)

// Bubble is the adversarial construction from the message-complexity lower
// bound (Theorem B.2 / Corollary B.3): a set S of participants is placed in
// a "bubble" — all of a member's incoming and outgoing messages are
// suspended in a buffer — and a member is freed only once at least
// `Threshold` of its messages are buffered. The theorem shows that since no
// processor can decide without communication, every bubbled processor must
// eventually be freed, which forces it to send or receive Θ(n) messages;
// with |S| = Θ(k) the total is Ω(kn).
//
// The experiment (T8) runs leader election and renaming under this strategy
// and checks that each freed member indeed accumulated ≥ Threshold messages
// and that total messages are Ω(kn).
type Bubble struct {
	// Members is the bubbled set; NewBubble picks the first ⌈k/4⌉
	// participants by default.
	members map[sim.ProcID]bool
	// threshold is the buffered-message count that frees a member
	// (the theorem's n/4).
	threshold int

	ff          filteredFair
	initialized bool
	freed       map[sim.ProcID]bool
	// FreedCounts records, per freed member, how many messages were
	// buffered at release time (for the Ω(n) per-member check).
	FreedCounts map[sim.ProcID]int
	sinceCheck  int
}

// NewBubble builds the bubble strategy with the theorem's parameters:
// members = first ⌈k/4⌉ participants (chosen at the first scheduling
// decision), threshold = ⌈n/4⌉ buffered messages.
func NewBubble() *Bubble {
	return &Bubble{
		members:     make(map[sim.ProcID]bool),
		freed:       make(map[sim.ProcID]bool),
		FreedCounts: make(map[sim.ProcID]int),
	}
}

// bubbled reports whether a processor is currently inside the bubble.
func (b *Bubble) bubbled(id sim.ProcID) bool {
	return b.members[id] && !b.freed[id]
}

// allow holds every message to or from a bubbled member.
func (b *Bubble) allow(m *sim.Message) bool {
	return !b.bubbled(m.From) && !b.bubbled(m.To)
}

// buffered counts the suspended messages of one member (incoming plus
// outgoing in-flight).
func (b *Bubble) buffered(k *sim.Kernel, id sim.ProcID) int {
	n := 0
	k.EachInflightTo(id, func(*sim.Message) bool { n++; return true })
	k.EachInflightFrom(id, func(*sim.Message) bool { n++; return true })
	return n
}

// Next implements sim.Adversary.
func (b *Bubble) Next(k *sim.Kernel) sim.Action {
	if !b.initialized {
		b.initialized = true
		parts := k.Participants()
		size := (len(parts) + 3) / 4
		for _, id := range parts[:size] {
			b.members[id] = true
		}
		if b.threshold == 0 {
			b.threshold = (k.N() + 3) / 4
		}
	}
	// Periodically check the release condition (an exact per-send hook is
	// not needed: the count only grows).
	b.sinceCheck++
	if b.sinceCheck >= 16 {
		b.sinceCheck = 0
		for id := range b.members {
			if b.freed[id] {
				continue
			}
			if n := b.buffered(k, id); n >= b.threshold {
				b.freed[id] = true
				b.FreedCounts[id] = n
			}
		}
	}
	if a := b.ff.next(k, b.allow); a != nil {
		return a
	}
	// Nothing deliverable outside the bubble: the run cannot finish until
	// the remaining members are freed. Free the member with the most
	// buffered traffic (the model requires eventual delivery; the theorem's
	// count argument has already been served by then).
	var best sim.ProcID
	bestCount := -1
	for id := range b.members {
		if b.freed[id] {
			continue
		}
		if n := b.buffered(k, id); n > bestCount {
			best, bestCount = id, n
		}
	}
	if bestCount >= 0 {
		b.freed[best] = true
		b.FreedCounts[best] = bestCount
		return b.ff.next(k, b.allow)
	}
	return sim.Halt{}
}

// Members returns the bubbled set (available after the first action).
func (b *Bubble) Members() []sim.ProcID {
	out := make([]sim.ProcID, 0, len(b.members))
	for id := range b.members {
		out = append(out, id)
	}
	return out
}

// Threshold returns the release threshold in messages.
func (b *Bubble) Threshold() int { return b.threshold }
