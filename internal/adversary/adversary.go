package adversary

import (
	"math/rand"

	"repro/internal/sim"
)

// Fair schedules uniformly at random among delivering a random in-flight
// message (note: random, so channels reorder freely) and the kernel's fair
// fallback. It is the "benign asynchrony" baseline of the experiments.
type Fair struct {
	rng *rand.Rand
}

// NewFair builds a fair random scheduler with its own seeded PRNG.
func NewFair(seed int64) *Fair {
	return &Fair{rng: rand.New(rand.NewSource(seed))}
}

// Next implements sim.Adversary.
func (f *Fair) Next(k *sim.Kernel) sim.Action {
	if k.InflightCount() > 0 && f.rng.Intn(2) == 0 {
		if id, ok := k.RandomInflight(f.rng); ok {
			return sim.Deliver{Msg: id}
		}
	}
	return k.FairAction()
}

// LockStep is the kernel's deterministic fair schedule as an explicit
// strategy: start everyone, deliver in send order, step in rotation. It
// approximates a synchronous execution and is the fastest schedule for
// large-scale measurements.
type LockStep struct{}

// Next implements sim.Adversary.
func (LockStep) Next(k *sim.Kernel) sim.Action { return k.FairAction() }

// Driver incrementally advances one designated processor, producing one
// action per call:
//
//  1. step the processor when a step would do work;
//  2. otherwise deliver the oldest message addressed to it;
//  3. otherwise deliver the oldest message it has sent and then step the
//     recipient, so the recipient's reactive half produces the pending
//     acknowledgment (a recipient whose own algorithm is parked at a
//     satisfied wait will also resume — exactly what a computation step
//     means in the model).
//
// When none of these applies the processor cannot be advanced further by
// local means and Progress returns nil.
//
// Driver is the canonical micro-scheduler shared by the sequential and
// flip-aware strategies and by the explore package's schedule enumeration.
type Driver struct {
	pending []sim.Action
}

// Progress returns the next action advancing the active processor, or nil
// when it cannot be advanced in isolation.
func (d *Driver) Progress(k *sim.Kernel, active sim.ProcID) sim.Action {
	return d.ProgressFiltered(k, active, nil)
}

// ProgressFiltered is Progress under a message embargo: messages for which
// allow reports false are treated as if they were not in flight.
func (d *Driver) ProgressFiltered(k *sim.Kernel, active sim.ProcID, allow func(*sim.Message) bool) sim.Action {
	if len(d.pending) > 0 {
		a := d.pending[0]
		d.pending = d.pending[1:]
		return a
	}
	if k.Ready(active) {
		return sim.Start{Proc: active}
	}
	if k.Steppable(active) {
		return sim.Step{Proc: active}
	}
	if m := oldestAllowed(k.EachInflightTo, active, allow); m != nil {
		d.pending = append(d.pending, sim.Step{Proc: active})
		return sim.Deliver{Msg: m.ID}
	}
	if m := oldestAllowed(k.EachInflightFrom, active, allow); m != nil {
		if !k.Crashed(m.To) {
			d.pending = append(d.pending, sim.Step{Proc: m.To})
		}
		return sim.Deliver{Msg: m.ID}
	}
	return nil
}

// oldestAllowed returns the oldest in-flight message of a per-processor
// queue that passes the filter, or nil.
func oldestAllowed(each func(sim.ProcID, func(*sim.Message) bool), id sim.ProcID, allow func(*sim.Message) bool) *sim.Message {
	var found *sim.Message
	each(id, func(m *sim.Message) bool {
		if allow == nil || allow(m) {
			found = m
			return false
		}
		return true
	})
	return found
}

// PhasePredicate reports whether a participant has reached the boundary the
// sequential schedule is driving it to, given its published state (which may
// be nil before the algorithm publishes).
type PhasePredicate func(k *sim.Kernel, id sim.ProcID) bool

// UntilDone is the phase predicate "the participant has returned".
func UntilDone(k *sim.Kernel, id sim.ProcID) bool {
	return k.Done(id) || k.Crashed(id)
}

// Sequential executes participants strictly one at a time, in ID order: the
// active participant runs until its phase predicate holds before the next
// one takes a single step. Acknowledgments for the active participant's
// communicate calls come from processors that are either finished or not yet
// started, which is precisely the schedule of Section 3.2: against the basic
// PoisonPill it forces expected Ω(√n) survivors (all high-priority flippers
// plus every low-priority flipper sequenced before the first high one).
type Sequential struct {
	until PhasePredicate
	drv   Driver
	order []sim.ProcID
	pos   int
}

// NewSequential builds the sequential strategy; until defaults to UntilDone.
func NewSequential(until PhasePredicate) *Sequential {
	if until == nil {
		until = UntilDone
	}
	return &Sequential{until: until}
}

// Next implements sim.Adversary.
func (s *Sequential) Next(k *sim.Kernel) sim.Action {
	if s.order == nil {
		s.order = k.Participants()
	}
	for s.pos < len(s.order) {
		active := s.order[s.pos]
		if s.until(k, active) {
			s.pos++
			s.drv = Driver{}
			continue
		}
		if a := s.drv.Progress(k, active); a != nil {
			return a
		}
		// The active participant cannot be advanced in isolation (it may
		// need quorum replies from processors we must not disturb, or it is
		// genuinely stuck); hand the rest of the run to the fair scheduler.
		return sim.Halt{}
	}
	return sim.Halt{}
}

// SequentialRounds sweeps participants one at a time through one sift
// instance per pass: pass t runs every unfinished participant until it has
// completed t sifts (or decided). It is the per-round extension of
// Sequential for the multi-round leader election, keeping every round
// maximally sequential while still letting all participants advance.
type SequentialRounds struct {
	drv   Driver
	order []sim.ProcID
	pos   int
	sweep int
}

// NewSequentialRounds builds the per-round sequential strategy.
func NewSequentialRounds() *SequentialRounds {
	return &SequentialRounds{sweep: 1}
}

// siftsOf reads the published sift counter of a participant's State.
func siftsOf(k *sim.Kernel, id sim.ProcID) (int, bool) {
	type sifter interface{ SiftCount() int }
	if st, ok := k.Published(id).(sifter); ok {
		return st.SiftCount(), true
	}
	return 0, false
}

// Next implements sim.Adversary.
func (s *SequentialRounds) Next(k *sim.Kernel) sim.Action {
	if s.order == nil {
		s.order = k.Participants()
	}
	for {
		if s.pos >= len(s.order) {
			if k.UnfinishedParticipants() == 0 {
				return sim.Halt{}
			}
			s.pos = 0
			s.sweep++
			continue
		}
		active := s.order[s.pos]
		done := UntilDone(k, active)
		if !done {
			if n, ok := siftsOf(k, active); ok && n >= s.sweep {
				done = true
			}
		}
		if done {
			s.pos++
			s.drv = Driver{}
			continue
		}
		if a := s.drv.Progress(k, active); a != nil {
			return a
		}
		return sim.Halt{}
	}
}
