// Package adversary implements strong adaptive scheduling strategies against
// the algorithms of "How to Elect a Leader Faster than a Tournament".
//
// No experiment can quantify over every adversary, so this package provides
// the extremal strategies the paper's analysis identifies, plus benign
// baselines:
//
//   - Fair: seeded random schedule with message reordering (benign baseline);
//   - LockStep: the kernel's deterministic fair schedule;
//   - Sequential: runs participants one at a time to a phase boundary — the
//     schedule of Section 3.2 that forces Ω(√n) survivors out of the basic
//     PoisonPill;
//   - SequentialRounds: the per-round variant for multi-round elections;
//   - FlipAware: observes every coin flip and completes all 0-flippers
//     before any 1-flipper's value can be seen — the Section 1 schedule that
//     makes naive sifting keep every participant alive, and against which
//     PoisonPill's commit state is the defense;
//   - CrashTargeted: crashes up to f leaders-in-the-making at staggered
//     times (fault-tolerance experiments, Theorem A.5);
//   - Bubble: the Theorem B.2 construction — buffers all traffic of a set of
//     processors until each has Θ(n) messages pending, forcing Ω(kn) total
//     messages;
//   - StaleViews: starves a fixed half of the system of propagations so
//     collect views are as stale as quorum intersection allows (renaming
//     collision experiments).
//
// Every strategy is deterministic given its seed and guarantees liveness:
// once its malicious structure is exhausted it falls back to the kernel's
// fair scheduler.
//
// These strategies exist only on the sim backend, where the kernel asks the
// adversary for every next action. The live backend's counterpart is the
// scenario engine of internal/fault, which recovers the same adversarial
// powers — arbitrary message delay and ⌈n/2⌉−1 crashes — as wall-clock
// injection rather than scheduling choices.
package adversary
