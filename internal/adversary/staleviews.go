package adversary

import (
	"repro/internal/quorum"
	"repro/internal/sim"
)

// StaleViews keeps the register views of a "dark" half of the system
// out-of-date: every propagation addressed to a dark processor is embargoed
// for a fixed lag (measured in global message sends) before it may be
// delivered, while everything else flows fairly. Collect calls served by
// dark processors therefore return views that trail the bright half by the
// lag — as stale as quorum intersection allows without starving anyone.
//
// This is the renaming experiments' skew strategy: Section 4 discusses how
// "out-of-date or incoherent views can lead to wasted trials and increased
// contention on the bins"; under StaleViews, concurrent processors pick
// colliding names more often, and the O(n²)-message / O(log²n)-time bounds
// must absorb it.
//
// The lag-based embargo (rather than an unbounded hold) keeps the strategy
// linear-time — the held prefix of any delivery queue is bounded by the
// number of messages sent within one lag window — and makes liveness
// structural: every message becomes deliverable after its lag expires.
type StaleViews struct {
	ff   filteredFair
	dark func(sim.ProcID) bool
	// lag is the embargo length in message sends; 0 picks 4n at first use.
	lag int64
}

// NewStaleViews builds the strategy; processors with ID ≥ ⌊n/2⌋+1 form the
// dark set (the largest set whose starvation still lets every communicate
// call assemble a quorum from bright processors).
func NewStaleViews() *StaleViews { return &StaleViews{} }

// allow embargoes propagations to dark processors until their lag expires.
func (s *StaleViews) allow(k *sim.Kernel) func(*sim.Message) bool {
	sent := k.MessagesSent()
	return func(m *sim.Message) bool {
		if !s.dark(m.To) || quorum.Classify(m.Payload) != quorum.KindPropagate {
			return true
		}
		return sent > int64(m.ID)+s.lag
	}
}

// scanBudget bounds the in-flight prefix examined per action when the
// global head is embargoed; it trades a slightly weaker embargo for
// linear-time scheduling.
const scanBudget = 64

// Next implements sim.Adversary.
func (s *StaleViews) Next(k *sim.Kernel) sim.Action {
	if s.dark == nil {
		n := k.N()
		bright := n/2 + 1
		s.dark = func(id sim.ProcID) bool { return int(id) >= bright }
		if s.lag == 0 {
			s.lag = int64(4 * n)
		}
	}
	// Deliver the oldest permitted message, scanning at most scanBudget
	// entries past embargoed ones.
	allow := s.allow(k)
	var pick sim.MsgID
	found := false
	scanned := 0
	k.EachInflight(func(m *sim.Message) bool {
		scanned++
		if allow(m) {
			pick = m.ID
			found = true
			return false
		}
		return scanned < scanBudget
	})
	if found {
		return sim.Deliver{Msg: pick}
	}
	// No permitted delivery in the scanned prefix: let computation advance.
	if a := k.FairStepAction(); a != nil {
		return a
	}
	// Nothing to step either: release the oldest message (its embargo is
	// the nearest to expiry) or fall back for starts.
	if id, ok := k.OldestInflight(); ok {
		return sim.Deliver{Msg: id}
	}
	if a := k.FairAction(); a != nil {
		return a
	}
	return sim.Halt{}
}
