package expt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/renaming"
	"repro/internal/sim"
)

// Algorithm selects the protocol under test.
type Algorithm string

// Algorithms understood by the runners.
const (
	// AlgoPoisonPill is the paper's leader election (Figure 6).
	AlgoPoisonPill Algorithm = "poisonpill"
	// AlgoTournament is the [AGTV92] tournament baseline.
	AlgoTournament Algorithm = "tournament"
	// AlgoBasicSift is one round of the basic PoisonPill (Figure 1).
	AlgoBasicSift Algorithm = "basic-sift"
	// AlgoHetSift is one round of the heterogeneous PoisonPill (Figure 2).
	AlgoHetSift Algorithm = "het-sift"
	// AlgoNaiveSift is the introduction's broken sifting strawman.
	AlgoNaiveSift Algorithm = "naive-sift"
	// AlgoHetSqrtBias, AlgoHetInverseBias and AlgoHetFairBias are bias
	// ablations of the heterogeneous round (design-choice experiments).
	AlgoHetSqrtBias    Algorithm = "het-sift-sqrt"
	AlgoHetInverseBias Algorithm = "het-sift-inv"
	AlgoHetFairBias    Algorithm = "het-sift-fair"
	// AlgoRenaming is the paper's renaming algorithm (Figure 3).
	AlgoRenaming Algorithm = "renaming"
	// AlgoRandomScan is the [AAG+10] random-scan renaming baseline.
	AlgoRandomScan Algorithm = "random-scan"
)

// Schedule selects the adversary strategy.
type Schedule string

// Schedules understood by the runners.
const (
	SchedFair       Schedule = "fair"
	SchedLockStep   Schedule = "lockstep"
	SchedSequential Schedule = "sequential"
	SchedSeqRounds  Schedule = "seqrounds"
	SchedFlipAware  Schedule = "flipaware"
	SchedCrash      Schedule = "crash"
	SchedBubble     Schedule = "bubble"
	SchedStaleViews Schedule = "staleviews"
)

// Config parameterises one simulated run.
type Config struct {
	// N is the system size; K the number of participants (0 means K = N).
	N, K int
	// Seed drives all randomness in the run.
	Seed int64
	// Algorithm and Schedule pick the protocol and the adversary.
	Algorithm Algorithm
	Schedule  Schedule
	// Faults is the crash budget for SchedCrash.
	Faults int
	// Budget overrides the kernel action budget (0 = default).
	Budget int64
}

// Result captures everything the experiments need from one run.
type Result struct {
	Config Config
	Stats  sim.Stats
	// Decisions per participant (leader election algorithms).
	Decisions map[sim.ProcID]core.Decision
	// Outcomes per participant (single-sift algorithms).
	Outcomes map[sim.ProcID]core.Outcome
	// Names per participant (renaming algorithms).
	Names map[sim.ProcID]int
	// Flips records each participant's first-sift coin (single-sift runs).
	Flips map[sim.ProcID]int
	// MaxRound is the highest election round any participant reached.
	MaxRound int
	// RoundCounts[r-1] is the number of participants whose election reached
	// round r (the Claim A.4 decay series).
	RoundCounts []int
	// Iterations per participant (renaming: while-loop trips; random-scan:
	// trials).
	Iterations map[sim.ProcID]int
	// Picks per participant: the names each one competed for, in order
	// (renaming algorithms).
	Picks map[sim.ProcID][]int
	// Err is the run error, if any (callers decide whether it is fatal).
	Err error
}

// Winners counts Win decisions.
func (r *Result) Winners() int {
	w := 0
	for _, d := range r.Decisions {
		if d == core.Win {
			w++
		}
	}
	return w
}

// Survivors counts Survive outcomes.
func (r *Result) Survivors() int {
	s := 0
	for _, o := range r.Outcomes {
		if o == core.Survive {
			s++
		}
	}
	return s
}

// buildAdversary instantiates the configured schedule.
func buildAdversary(cfg Config) sim.Adversary {
	switch cfg.Schedule {
	case SchedFair:
		return adversary.NewFair(cfg.Seed ^ 0x5eed)
	case SchedLockStep, "":
		return adversary.LockStep{}
	case SchedSequential:
		return adversary.NewSequential(nil)
	case SchedSeqRounds:
		return adversary.NewSequentialRounds()
	case SchedFlipAware:
		return adversary.NewFlipAware()
	case SchedCrash:
		return adversary.NewCrashTargeted(cfg.Faults, 0, true, cfg.Seed^0xc4a5)
	case SchedBubble:
		return adversary.NewBubble()
	case SchedStaleViews:
		return adversary.NewStaleViews()
	default:
		panic(fmt.Sprintf("expt: unknown schedule %q", cfg.Schedule))
	}
}

// Run executes one configured run and returns its result.
func Run(cfg Config) Result {
	if cfg.K == 0 {
		cfg.K = cfg.N
	}
	if cfg.K > cfg.N {
		panic(fmt.Sprintf("expt: k=%d exceeds n=%d", cfg.K, cfg.N))
	}
	res := Result{
		Config:     cfg,
		Decisions:  make(map[sim.ProcID]core.Decision),
		Outcomes:   make(map[sim.ProcID]core.Outcome),
		Names:      make(map[sim.ProcID]int),
		Flips:      make(map[sim.ProcID]int),
		Iterations: make(map[sim.ProcID]int),
		Picks:      make(map[sim.ProcID][]int),
	}
	maxFaults := 0
	if cfg.Schedule == SchedCrash {
		maxFaults = -1
	}
	k2 := sim.NewKernel(sim.Config{N: cfg.N, Seed: cfg.Seed, Budget: cfg.Budget, MaxFaults: maxFaults})
	stores := quorum.InstallStores(k2)
	states := make(map[sim.ProcID]*core.State, cfg.K)

	for i := 0; i < cfg.K; i++ {
		id := sim.ProcID(i)
		switch cfg.Algorithm {
		case AlgoPoisonPill:
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := core.NewState(p, "leaderelect")
				states[id] = s
				res.Decisions[id] = core.LeaderElectWithState(c, "elect", s)
			})
		case AlgoTournament:
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := core.NewState(p, "tournament")
				states[id] = s
				res.Decisions[id] = baseline.TournamentWithState(c, "tourn", s)
			})
		case AlgoBasicSift:
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := core.NewState(p, "basic-sift")
				states[id] = s
				res.Outcomes[id] = core.PoisonPill(c, "pp", s)
			})
		case AlgoHetSift, AlgoHetSqrtBias, AlgoHetInverseBias, AlgoHetFairBias:
			bias := core.PaperBias
			switch cfg.Algorithm {
			case AlgoHetSqrtBias:
				bias = core.SqrtBias
			case AlgoHetInverseBias:
				bias = core.InverseBias
			case AlgoHetFairBias:
				bias = core.FairBias
			}
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := core.NewState(p, "het-sift")
				states[id] = s
				res.Outcomes[id] = core.HetPoisonPillWithBias(c, "pp", bias, s)
			})
		case AlgoNaiveSift:
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := core.NewState(p, "naive-sift")
				states[id] = s
				prob := 1 / math.Sqrt(float64(p.N()))
				res.Outcomes[id] = baseline.NaiveSift(c, "nv", prob, s)
			})
		case AlgoRenaming:
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := &renaming.State{}
				res.Names[id] = renaming.GetName(c, s)
				res.Iterations[id] = s.Iterations
				res.Picks[id] = s.Picks
			})
		case AlgoRandomScan:
			k2.Spawn(id, func(p *sim.Proc) {
				c := quorum.NewComm(p, stores[id])
				s := &baseline.RandomScanState{}
				res.Names[id] = baseline.RandomScanRename(c, s)
				res.Iterations[id] = s.Trials
				res.Picks[id] = s.Picks
			})
		default:
			panic(fmt.Sprintf("expt: unknown algorithm %q", cfg.Algorithm))
		}
	}

	stats, err := k2.Run(buildAdversary(cfg))
	res.Stats = stats
	res.Err = err
	for id, s := range states {
		res.Flips[id] = s.Flip
		if s.Round > res.MaxRound {
			res.MaxRound = s.Round
		}
	}
	if res.MaxRound > 0 {
		res.RoundCounts = make([]int, res.MaxRound)
		for _, s := range states {
			for r := 1; r <= s.Round; r++ {
				res.RoundCounts[r-1]++
			}
		}
	}
	return res
}

// runCustomSift runs one basic PoisonPill round with an explicit coin bias
// under the Section 3.2 sequential schedule (the bias-ablation fixture).
func runCustomSift(n int, seed int64, prob float64) Result {
	res := Result{
		Outcomes: make(map[sim.ProcID]core.Outcome, n),
		Flips:    make(map[sim.ProcID]int, n),
	}
	k2 := sim.NewKernel(sim.Config{N: n, Seed: seed})
	stores := quorum.InstallStores(k2)
	states := make(map[sim.ProcID]*core.State, n)
	for i := 0; i < n; i++ {
		id := sim.ProcID(i)
		k2.Spawn(id, func(p *sim.Proc) {
			c := quorum.NewComm(p, stores[id])
			s := core.NewState(p, "basic-sift")
			states[id] = s
			res.Outcomes[id] = core.PoisonPillBiased(c, "pp", prob, s)
		})
	}
	stats, err := k2.Run(adversary.NewSequential(nil))
	res.Stats = stats
	res.Err = err
	for id, s := range states {
		res.Flips[id] = s.Flip
	}
	return res
}

// Summary aggregates a sample of measurements.
type Summary struct {
	Mean, Min, Max, P50 float64
	N                   int
}

// Summarize computes mean, min, max and median of a non-empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		Mean: sum / float64(len(sorted)),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  sorted[len(sorted)/2],
		N:    len(sorted),
	}
}

// LogLogSlope fits the least-squares slope of log(y) against log(x): the
// empirical scaling exponent of y = c·x^slope. Points with non-positive
// coordinates are skipped.
func LogLogSlope(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	n := float64(len(lx))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// LogStar computes the iterated logarithm (base 2), the paper's time bound.
func LogStar(n float64) int {
	s := 0
	for n > 1 {
		n = math.Log2(n)
		s++
	}
	return s
}
