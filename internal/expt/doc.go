// Package expt is the experiment harness: it wires algorithms, adversary
// strategies and the kernel into runnable experiments, aggregates multi-seed
// sweeps, fits scaling exponents and renders the tables recorded in
// EXPERIMENTS.md. Every table and claim-figure of the paper's evaluation has
// a generator here, driven by cmd/reproduce and bench_test.go.
//
// The harness runs on the sim backend exclusively: its experiments quantify
// the paper's claims under the model's strong adaptive adversary, where
// virtual time and deterministic replay make every number reproducible from
// a seed. Wall-clock questions — throughput, latency percentiles, behavior
// under injected faults and latency — belong to internal/campaign and the
// scenario engine of internal/fault, which run on the live backend.
package expt
