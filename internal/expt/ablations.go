package expt

import (
	"fmt"
	"math"
	"strings"
)

// This file holds the ablation experiments for the design choices DESIGN.md
// calls out, plus the self-check of the time metric (Claim 2.1). They go
// beyond the paper's stated results: each one removes or replaces one
// ingredient of the construction and shows the bound degrading exactly the
// way the paper's analysis says it must.

// A1BiasAblation sweeps the coin bias of the basic PoisonPill under the
// sequential schedule of Section 3.2. The paper argues 1/√n is provably
// optimal there: a larger probability leaves too many high-priority
// survivors, a smaller one lets too long a prefix of low-priority
// participants survive. The sweep shows the U-shape around 1/√n.
func A1BiasAblation(sc Scale) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: basic PoisonPill coin bias under the sequential schedule",
		Claim:  "Section 3.2: Pr[flip 1] = 1/√n is optimal; any other bias leaves more expected survivors",
		Header: []string{"n", "bias", "mean survivors", "√n"},
	}
	n := sc.MaxN
	for _, exp := range []struct {
		label string
		prob  float64
	}{
		{"n^-1/4", math.Pow(float64(n), -0.25)},
		{"1/√n (paper)", 1 / math.Sqrt(float64(n))},
		{"n^-3/4", math.Pow(float64(n), -0.75)},
		{"1/n", 1 / float64(n)},
	} {
		vals := make([]float64, 0, sc.Seeds)
		for s := 0; s < sc.Seeds; s++ {
			r := runBiasedBasicSift(n, int64(s)*6151+11, exp.prob)
			if r.Err != nil {
				panic(fmt.Sprintf("expt: A1 run failed: %v", r.Err))
			}
			vals = append(vals, float64(r.Survivors()))
		}
		s := Summarize(vals)
		t.AddRow(d(n), exp.label, f1(s.Mean), f1(math.Sqrt(float64(n))))
	}
	t.Notes = append(t.Notes,
		"biases above 1/√n keep extra high-priority flippers; biases below keep a longer all-zero prefix — the minimum sits at the paper's choice")
	return t
}

// A2HetBiasAblation swaps the heterogeneous round's view-dependent bias
// ln|ℓ|/|ℓ| for the alternatives it beats: 1/√|ℓ| (reduces to the basic
// technique's Θ(√k)), 1/|ℓ| (all-zero prefixes survive with constant
// probability) and a fair coin (half the field keeps high priority).
func A2HetBiasAblation(sc Scale) *Table {
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: heterogeneous PoisonPill bias function",
		Claim:  "Lemmas 3.6 + 3.7 rely on Pr[1] = ln|ℓ|/|ℓ|; alternative biases lose the polylog bound",
		Header: []string{"k", "bias", "schedule", "mean survivors", "log²k", "√k"},
	}
	k := sc.MaxN
	lg := math.Log2(float64(k))
	for _, variant := range []struct {
		label string
		algo  Algorithm
	}{
		{"ln l/l (paper)", AlgoHetSift},
		{"1/√l", AlgoHetSqrtBias},
		{"1/l", AlgoHetInverseBias},
		{"1/2", AlgoHetFairBias},
	} {
		for _, sched := range []Schedule{SchedLockStep, SchedSequential} {
			vals := meanOver(Config{N: k, Algorithm: variant.algo, Schedule: sched}, sc.Seeds,
				func(r Result) float64 { return float64(r.Survivors()) })
			s := Summarize(vals)
			t.AddRow(d(k), variant.label, string(sched), f1(s.Mean), f1(lg*lg), f1(math.Sqrt(float64(k))))
		}
	}
	return t
}

// T12TimeMetric checks Claim 2.1 itself: the virtual (t1,t2)-makespan with
// t1 = t2 = 1 must track the max-communicate-calls metric within a small
// constant (each call costs 2t1 + 2t2 = 4 units on the critical path).
func T12TimeMetric(sc Scale) *Table {
	t := &Table{
		ID:     "T12",
		Title:  "Claim 2.1 self-check: virtual makespan vs communicate calls",
		Claim:  "Claim 2.1: T communicate calls ⇒ O(T·(t1+t2)) time; with t1=t2=1 each call is 4 units",
		Header: []string{"k", "algorithm", "mean calls", "mean makespan", "makespan/calls"},
	}
	for _, algo := range []Algorithm{AlgoPoisonPill, AlgoRenaming} {
		for _, k := range sc.sizes() {
			if k > 128 && algo == AlgoRenaming {
				continue
			}
			calls := meanOver(Config{N: k, Algorithm: algo, Schedule: SchedLockStep}, sc.Seeds,
				func(r Result) float64 { return float64(r.Stats.MaxCommunicateCalls()) })
			spans := meanOver(Config{N: k, Algorithm: algo, Schedule: SchedLockStep}, sc.Seeds,
				func(r Result) float64 { return float64(r.Stats.VirtualTime) })
			cs, ss := Summarize(calls), Summarize(spans)
			t.AddRow(d(k), string(algo), f1(cs.Mean), f1(ss.Mean), f2(ss.Mean/cs.Mean))
		}
	}
	t.Notes = append(t.Notes,
		"a makespan/calls ratio bounded by a small constant (≈4-6) is Claim 2.1; unrelated work never inflates it because replies are bounded by arrival + t2")
	return t
}

// T13RoundDecaySeries prints the Claim A.4 decay itself: how many
// participants reach each round of one large election, per schedule.
func T13RoundDecaySeries(sc Scale) *Table {
	t := &Table{
		ID:     "T13",
		Title:  "Participants per round (Claim A.4 decay series)",
		Claim:  "Claim A.4: the expected number of participants drops by a constant fraction every two rounds",
		Header: []string{"k", "schedule", "participants reaching rounds 1,2,3,…"},
	}
	k := sc.MaxN
	for _, sched := range []Schedule{SchedLockStep, SchedFair, SchedSeqRounds} {
		// Average the per-round counts across seeds.
		var acc []float64
		for s := 0; s < sc.Seeds; s++ {
			r := Run(Config{N: k, Algorithm: AlgoPoisonPill, Schedule: sched, Seed: int64(s)*401 + 13})
			if r.Err != nil {
				panic(fmt.Sprintf("expt: T13 run failed: %v", r.Err))
			}
			for len(acc) < len(r.RoundCounts) {
				acc = append(acc, 0)
			}
			for i, c := range r.RoundCounts {
				acc[i] += float64(c)
			}
		}
		cells := make([]string, len(acc))
		for i := range acc {
			cells[i] = f1(acc[i] / float64(sc.Seeds))
		}
		t.AddRow(d(k), string(sched), strings.Join(cells, " → "))
	}
	return t
}

// runBiasedBasicSift runs one basic PoisonPill round with an explicit bias
// under the sequential schedule (the A1 ablation's fixture).
func runBiasedBasicSift(n int, seed int64, prob float64) Result {
	return runCustomSift(n, seed, prob)
}
