package expt

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a rendered experiment: a title, the paper claim it reproduces,
// column headers and formatted rows. cmd/reproduce prints these and
// EXPERIMENTS.md records them.
type Table struct {
	ID     string // experiment identifier, e.g. "T1"
	Title  string
	Claim  string // the paper statement being reproduced
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "  claim: %s\n", t.Claim)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  "+strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, "  "+strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as a GitHub-flavored markdown table (used to
// regenerate EXPERIMENTS.md).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "*Paper claim:* %s\n\n", t.Claim)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "*%s*\n\n", n)
	}
}

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// d formats an int.
func d(x int) string { return fmt.Sprintf("%d", x) }

// d64 formats an int64.
func d64(x int64) string { return fmt.Sprintf("%d", x) }
