package expt

import (
	"strconv"
	"strings"
	"testing"
)

// Every experiment generator is smoke-tested at tiny scale: the tables must
// be well-formed (consistent column counts, parseable numerics) and their
// headline invariants must hold even at small sizes. These tests are the
// regression net for the reproduction itself.

// checkTable asserts structural well-formedness.
func checkTable(t *testing.T, tab *Table) {
	t.Helper()
	if tab.ID == "" || tab.Title == "" || tab.Claim == "" {
		t.Fatalf("table metadata incomplete: %+v", tab)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("table has no rows")
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tab.Header))
		}
	}
}

// cell parses a numeric table cell.
func cell(t *testing.T, row []string, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", row[col], err)
	}
	return v
}

func TestT1Generator(t *testing.T) {
	tab := T1PoisonPillSurvivors(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		if s := cell(t, row, 2); s < 1 {
			t.Fatalf("row %v: mean survivors below 1 (Claim 3.1)", row)
		}
		if minS := cell(t, row, 3); minS < 1 {
			t.Fatalf("row %v: some run had zero survivors (Claim 3.1)", row)
		}
	}
}

func TestT2Generator(t *testing.T) {
	tab := T2HetSurvivors(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		if s := cell(t, row, 2); s < 1 {
			t.Fatalf("row %v: mean survivors below 1", row)
		}
	}
}

func TestT3Generator(t *testing.T) {
	tab := T3ElectionTime(tiny)
	checkTable(t, tab)
	// At the largest k under lockstep, the tournament must be slower.
	var pp, tn float64
	for _, row := range tab.Rows {
		if row[0] == "32" && row[2] == "lockstep" {
			if row[1] == string(AlgoPoisonPill) {
				pp = cell(t, row, 3)
			}
			if row[1] == string(AlgoTournament) {
				tn = cell(t, row, 3)
			}
		}
	}
	if pp == 0 || tn == 0 {
		t.Fatal("missing k=32 lockstep rows")
	}
	if tn <= pp {
		t.Fatalf("tournament (%.1f) not slower than poisonpill (%.1f) at k=32", tn, pp)
	}
}

func TestT4Generator(t *testing.T) {
	tab := T4ElectionMessages(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		if ratio := cell(t, row, 4); ratio > 100 {
			t.Fatalf("row %v: messages/(kn) = %.1f blows the O(kn) bound", row, ratio)
		}
	}
}

func TestT5Generator(t *testing.T) {
	tab := T5Adaptivity(tiny)
	checkTable(t, tab)
	// Time for k=1 must be the minimum of the column (adaptivity).
	first := cell(t, tab.Rows[0], 2)
	for _, row := range tab.Rows[1:] {
		if cell(t, row, 2) < first {
			t.Fatalf("k=1 time %.1f is not minimal", first)
		}
	}
}

func TestT6Generator(t *testing.T) {
	tab := T6RenamingMessages(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		if ratio := cell(t, row, 3); ratio > 120 {
			t.Fatalf("row %v: messages/n² = %.1f blows O(n²)", row, ratio)
		}
	}
}

func TestT7Generator(t *testing.T) {
	tab := T7RenamingTime(tiny)
	checkTable(t, tab)
}

func TestT8Generator(t *testing.T) {
	tab := T8LowerBound(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		msgs := cell(t, row, 2)
		n, _ := strconv.Atoi(row[0])
		if msgs < float64(n*n)/16 {
			t.Fatalf("row %v: %v messages below the kn/16 floor", row, msgs)
		}
	}
}

func TestT9Generator(t *testing.T) {
	tab := T9RoundDecay(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		if worst := cell(t, row, 2); worst > 12 {
			t.Fatalf("row %v: max round %.0f far beyond log*", row, worst)
		}
	}
}

func TestT11Generator(t *testing.T) {
	tab := T11FaultTolerance(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		if v := cell(t, row, 4); v != 0 {
			t.Fatalf("row %v: safety violations under crashes", row)
		}
	}
}

func TestT12Generator(t *testing.T) {
	tab := T12TimeMetric(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		ratio := cell(t, row, 4)
		if ratio < 1 || ratio > 10 {
			t.Fatalf("row %v: makespan/calls = %.2f outside the Claim 2.1 band", row, ratio)
		}
	}
}

func TestT13Generator(t *testing.T) {
	tab := T13RoundDecaySeries(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		// The series must be non-increasing: participants only drop out.
		parts := strings.Split(row[2], " → ")
		prev := 1e18
		for _, p := range parts {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				t.Fatalf("bad series cell %q", p)
			}
			if v > prev {
				t.Fatalf("row %v: participants increased across rounds", row)
			}
			prev = v
		}
		// Under concurrent schedules everyone passes the doorway and enters
		// round 1; under seqrounds the doorway eliminates every late
		// starter, so only the first participant has a round at all.
		first, _ := strconv.ParseFloat(parts[0], 64)
		switch row[1] {
		case string(SchedSeqRounds):
			if first != 1 {
				t.Fatalf("row %v: sequential starts should leave exactly 1 doorway survivor", row)
			}
		default:
			if first != 32 {
				t.Fatalf("row %v: round 1 should have all 32 participants", row)
			}
		}
	}
}

func TestA1Generator(t *testing.T) {
	tab := A1BiasAblation(tiny)
	checkTable(t, tab)
	// The paper's bias must not be beaten by a large margin by any
	// alternative (it is the minimizer up to constants and noise).
	var paper float64
	low := 1e18
	for _, row := range tab.Rows {
		v := cell(t, row, 2)
		if strings.Contains(row[1], "paper") {
			paper = v
		}
		if v < low {
			low = v
		}
	}
	if paper > 3*low+5 {
		t.Fatalf("paper bias survivors %.1f far above best alternative %.1f", paper, low)
	}
}

func TestA2Generator(t *testing.T) {
	tab := A2HetBiasAblation(tiny)
	checkTable(t, tab)
	// The fair-coin ablation must keep ≈half the field alive — much more
	// than the paper's bias — under lockstep.
	var paper, fair float64
	for _, row := range tab.Rows {
		if row[2] != "lockstep" {
			continue
		}
		switch {
		case strings.Contains(row[1], "paper"):
			paper = cell(t, row, 3)
		case row[1] == "1/2":
			fair = cell(t, row, 3)
		}
	}
	if fair <= paper {
		t.Fatalf("fair bias (%.1f survivors) should keep more alive than the paper bias (%.1f)", fair, paper)
	}
}

func TestF2Generator(t *testing.T) {
	tab := F2SurvivorHistogram(tiny)
	checkTable(t, tab)
}

func TestF3Generator(t *testing.T) {
	tab := F3RenamingDistributions(tiny)
	checkTable(t, tab)
	for _, row := range tab.Rows {
		if mx := cell(t, row, 5); mx < 1 {
			t.Fatalf("row %v: no name had any contender", row)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10",
		"T11", "T12", "T13", "A1", "A2", "F1", "F2", "F3"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, exp := range reg {
		if exp.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, exp.ID, want[i])
		}
		if exp.Gen == nil {
			t.Fatalf("registry[%d] has nil generator", i)
		}
	}
}

func TestRunCustomSiftRespectsBias(t *testing.T) {
	// prob = 1: everyone flips high priority and survives; prob = 0 with a
	// sequential schedule: everyone flips 0 and the early prefix survives.
	r := runCustomSift(8, 1, 1.0)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Survivors() != 8 {
		t.Fatalf("prob=1: %d survivors, want all 8", r.Survivors())
	}
	for _, f := range r.Flips {
		if f != 1 {
			t.Fatal("prob=1 produced a zero flip")
		}
	}
	r = runCustomSift(8, 1, 0.0)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Survivors() < 1 {
		t.Fatal("prob=0: no survivors (Claim 3.1)")
	}
	for _, f := range r.Flips {
		if f != 0 {
			t.Fatal("prob=0 produced a one flip")
		}
	}
}
