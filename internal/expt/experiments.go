package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Scale controls experiment sizes so the same generators serve quick tests,
// benchmarks and the full reproduction run.
type Scale struct {
	// Seeds is the number of independent runs per configuration.
	Seeds int
	// MaxN caps the largest system size of the sweeps.
	MaxN int
}

// Standard scales.
var (
	// Quick keeps every experiment in seconds (benchmarks, CI).
	Quick = Scale{Seeds: 5, MaxN: 128}
	// Standard is the EXPERIMENTS.md reproduction scale.
	Standard = Scale{Seeds: 10, MaxN: 256}
	// Large pushes the sweeps out another doubling for the curves.
	Large = Scale{Seeds: 10, MaxN: 512}
)

// sizes returns the doubling sweep {16, 32, ..., MaxN}.
func (s Scale) sizes() []int {
	var out []int
	for n := 16; n <= s.MaxN; n *= 2 {
		out = append(out, n)
	}
	return out
}

// meanOver runs cfg for seeds seeds and returns the per-seed values of f.
func meanOver(cfg Config, seeds int, f func(Result) float64) []float64 {
	out := make([]float64, 0, seeds)
	for s := 0; s < seeds; s++ {
		cfg.Seed = int64(s)*7919 + 17
		r := Run(cfg)
		if r.Err != nil {
			panic(fmt.Sprintf("expt: run %+v failed: %v", cfg, r.Err))
		}
		out = append(out, f(r))
	}
	return out
}

// T1PoisonPillSurvivors reproduces Claims 3.1 and 3.2: one basic PoisonPill
// round has at least one survivor and O(√n) expected survivors under benign
// and adversarial schedules; the sequential schedule of Section 3.2 forces
// Ω(√n), showing the bias is tight for the basic technique.
func T1PoisonPillSurvivors(sc Scale) *Table {
	t := &Table{
		ID:     "T1",
		Title:  "Basic PoisonPill survivors per round (Figure 1)",
		Claim:  "Claims 3.1 + 3.2: ≥1 survivor always; E[survivors] = Θ(√n) — O(√n) for any schedule, Ω(√n) under the sequential schedule",
		Header: []string{"n", "schedule", "mean", "min", "max", "√n", "mean/√n"},
	}
	for _, sched := range []Schedule{SchedLockStep, SchedFair, SchedSequential} {
		var xs, ys []float64
		for _, n := range sc.sizes() {
			vals := meanOver(Config{N: n, Algorithm: AlgoBasicSift, Schedule: sched}, sc.Seeds,
				func(r Result) float64 { return float64(r.Survivors()) })
			s := Summarize(vals)
			t.AddRow(d(n), string(sched), f1(s.Mean), f1(s.Min), f1(s.Max),
				f1(math.Sqrt(float64(n))), f2(s.Mean/math.Sqrt(float64(n))))
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope %.2f (√n predicts 0.50)",
			sched, LogLogSlope(xs, ys)))
	}
	return t
}

// T2HetSurvivors reproduces Lemmas 3.6 and 3.7: a heterogeneous PoisonPill
// round keeps only O(log² k) participants in expectation, under any
// schedule — the paper's second algorithmic idea.
func T2HetSurvivors(sc Scale) *Table {
	t := &Table{
		ID:     "T2",
		Title:  "Heterogeneous PoisonPill survivors per round (Figure 2)",
		Claim:  "Lemmas 3.6 + 3.7: E[survivors] = O(log²k); compare against √k of the basic technique",
		Header: []string{"k", "schedule", "mean", "max", "log²k", "√k", "mean/log²k"},
	}
	for _, sched := range []Schedule{SchedLockStep, SchedFair, SchedSequential} {
		var xs, ys []float64
		for _, k := range sc.sizes() {
			vals := meanOver(Config{N: k, Algorithm: AlgoHetSift, Schedule: sched}, sc.Seeds,
				func(r Result) float64 { return float64(r.Survivors()) })
			s := Summarize(vals)
			lg := math.Log2(float64(k))
			t.AddRow(d(k), string(sched), f1(s.Mean), f1(s.Max), f1(lg*lg),
				f1(math.Sqrt(float64(k))), f2(s.Mean/(lg*lg)))
			xs = append(xs, float64(k))
			ys = append(ys, s.Mean)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope %.2f (polylog predicts ≈0; √k would be 0.50)",
			sched, LogLogSlope(xs, ys)))
	}
	return t
}

// T3ElectionTime reproduces the headline of Theorem A.5: leader election in
// O(log* k) communicate calls per processor, against the tournament's
// Θ(log k).
func T3ElectionTime(sc Scale) *Table {
	t := &Table{
		ID:     "T3",
		Title:  "Leader election time: PoisonPill vs tournament",
		Claim:  "Theorem A.5: O(log*k) communicate calls per processor; tournament baseline is Θ(log k)",
		Header: []string{"k", "algorithm", "schedule", "mean time", "max time", "log*k", "log₂k"},
	}
	for _, algo := range []Algorithm{AlgoPoisonPill, AlgoTournament} {
		for _, sched := range []Schedule{SchedLockStep, SchedFair} {
			var xs, ys []float64
			for _, k := range sc.sizes() {
				vals := meanOver(Config{N: k, Algorithm: algo, Schedule: sched}, sc.Seeds,
					func(r Result) float64 { return float64(r.Stats.MaxCommunicateCalls()) })
				s := Summarize(vals)
				t.AddRow(d(k), string(algo), string(sched), f1(s.Mean), f1(s.Max),
					d(LogStar(float64(k))), f1(math.Log2(float64(k))))
				xs = append(xs, float64(k))
				ys = append(ys, s.Mean)
			}
			t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: time grows ×%.2f per doubling over the sweep",
				algo, sched, growthPerDoubling(xs, ys)))
		}
	}
	return t
}

// growthPerDoubling reports the average multiplicative growth of y per
// doubling of x (1.00 = flat; a log curve shows additive growth, i.e. a
// ratio that tends to 1 from above as x grows).
func growthPerDoubling(xs, ys []float64) float64 {
	if len(ys) < 2 {
		return 1
	}
	prod := 1.0
	for i := 1; i < len(ys); i++ {
		prod *= ys[i] / ys[i-1]
	}
	return math.Pow(prod, 1/float64(len(ys)-1))
}

// T4ElectionMessages reproduces the O(kn) message bound of Theorem A.5.
func T4ElectionMessages(sc Scale) *Table {
	t := &Table{
		ID:     "T4",
		Title:  "Leader election message complexity",
		Claim:  "Theorem A.5: O(kn) messages in expectation",
		Header: []string{"n", "k", "mean messages", "kn", "messages/(kn)"},
	}
	n := sc.MaxN
	for k := 16; k <= n; k *= 4 {
		vals := meanOver(Config{N: n, K: k, Algorithm: AlgoPoisonPill, Schedule: SchedLockStep}, sc.Seeds,
			func(r Result) float64 { return float64(r.Stats.MessagesSent) })
		s := Summarize(vals)
		t.AddRow(d(n), d(k), f1(s.Mean), d(k*n), f2(s.Mean/float64(k*n)))
	}
	t.Notes = append(t.Notes,
		"a flat messages/(kn) column is the O(kn) claim; most participants drop in the first round of broadcast")
	return t
}

// T5Adaptivity shows complexity depends on the contention k, not the system
// size n ("it is adaptive: if k ≤ n processors participate, its complexity
// becomes O(log*k)").
func T5Adaptivity(sc Scale) *Table {
	t := &Table{
		ID:     "T5",
		Title:  "Contention adaptivity at fixed n",
		Claim:  "Theorem A.5: with k participants, time is O(log*k) and messages O(kn) — independent of n",
		Header: []string{"n", "k", "mean time", "log*k", "mean messages", "messages/(kn)"},
	}
	n := sc.MaxN
	for _, k := range []int{1, 4, 16, 64, n} {
		if k > n {
			continue
		}
		times := meanOver(Config{N: n, K: k, Algorithm: AlgoPoisonPill, Schedule: SchedLockStep}, sc.Seeds,
			func(r Result) float64 { return float64(r.Stats.MaxCommunicateCalls()) })
		msgs := meanOver(Config{N: n, K: k, Algorithm: AlgoPoisonPill, Schedule: SchedLockStep}, sc.Seeds,
			func(r Result) float64 { return float64(r.Stats.MessagesSent) })
		ts, ms := Summarize(times), Summarize(msgs)
		t.AddRow(d(n), d(k), f1(ts.Mean), d(LogStar(float64(k))), f1(ms.Mean), f2(ms.Mean/float64(k*n)))
	}
	return t
}

// T6RenamingMessages reproduces Theorem 4.2: the renaming algorithm sends
// O(n²) messages, message-optimal by Corollary B.3.
func T6RenamingMessages(sc Scale) *Table {
	t := &Table{
		ID:     "T6",
		Title:  "Renaming message complexity vs random-scan baseline",
		Claim:  "Theorem 4.2: expected O(n²) messages (optimal); random-scan is also O(n²)-message but pays Ω(n) time (T7)",
		Header: []string{"n", "algorithm", "mean messages", "messages/n²"},
	}
	for _, algo := range []Algorithm{AlgoRenaming, AlgoRandomScan} {
		var xs, ys []float64
		for _, n := range sc.sizes() {
			if n > 128 && algo == AlgoRandomScan {
				continue // the baseline's Ω(n) time makes big sweeps pointless
			}
			vals := meanOver(Config{N: n, Algorithm: algo, Schedule: SchedLockStep}, sc.Seeds,
				func(r Result) float64 { return float64(r.Stats.MessagesSent) })
			s := Summarize(vals)
			t.AddRow(d(n), string(algo), f1(s.Mean), f2(s.Mean/float64(n*n)))
			xs = append(xs, float64(n))
			ys = append(ys, s.Mean)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: log-log slope %.2f (n² predicts 2.00)",
			algo, LogLogSlope(xs, ys)))
	}
	return t
}

// T7RenamingTime reproduces Theorem A.13 (O(log² n) time) and the related-
// work claim that random-scan renaming needs Ω(n) time for late processors.
func T7RenamingTime(sc Scale) *Table {
	t := &Table{
		ID:     "T7",
		Title:  "Renaming time complexity vs random-scan baseline",
		Claim:  "Theorem A.13: O(log²n) communicate calls per processor; [AAG+10] random-scan takes Ω(n)",
		Header: []string{"n", "algorithm", "schedule", "mean time", "max time", "log²n"},
	}
	for _, algo := range []Algorithm{AlgoRenaming, AlgoRandomScan} {
		scheds := []Schedule{SchedLockStep, SchedStaleViews}
		if algo == AlgoRandomScan {
			scheds = []Schedule{SchedLockStep}
		}
		for _, sched := range scheds {
			var xs, ys []float64
			for _, n := range sc.sizes() {
				if n > 128 && algo == AlgoRandomScan {
					continue
				}
				vals := meanOver(Config{N: n, Algorithm: algo, Schedule: sched}, sc.Seeds,
					func(r Result) float64 { return float64(r.Stats.MaxCommunicateCalls()) })
				s := Summarize(vals)
				lg := math.Log2(float64(n))
				t.AddRow(d(n), string(algo), string(sched), f1(s.Mean), f1(s.Max), f1(lg*lg))
				xs = append(xs, float64(n))
				ys = append(ys, s.Mean)
			}
			t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: log-log slope %.2f (polylog ≈ 0.3-0.6 over this range; linear would be 1.00)",
				algo, sched, LogLogSlope(xs, ys)))
		}
	}
	return t
}

// T8LowerBound runs the Theorem B.2 bubble construction and checks the
// Ω(αkn) message shape of Corollary B.3 on both problems.
func T8LowerBound(sc Scale) *Table {
	t := &Table{
		ID:     "T8",
		Title:  "Message-complexity lower bound (bubble adversary)",
		Claim:  "Theorem B.2 / Corollary B.3: Ω(kn) expected messages for leader election and renaming",
		Header: []string{"n=k", "problem", "mean messages", "kn/16", "messages/(kn)"},
	}
	for _, algo := range []Algorithm{AlgoPoisonPill, AlgoRenaming} {
		for _, n := range sc.sizes() {
			if n > 128 {
				continue
			}
			vals := meanOver(Config{N: n, Algorithm: algo, Schedule: SchedBubble}, sc.Seeds,
				func(r Result) float64 { return float64(r.Stats.MessagesSent) })
			s := Summarize(vals)
			t.AddRow(d(n), string(algo), f1(s.Mean), d(n*n/16), f2(s.Mean/float64(n*n)))
		}
	}
	t.Notes = append(t.Notes,
		"every run stays above the kn/16 floor the bubble forces; our algorithms meet the bound within a constant, i.e. they are message-optimal")
	return t
}

// T9RoundDecay reproduces Claim A.4: the expected number of participants
// falls by a constant factor every two rounds, so the round in which the
// election decides stays O(log* k).
func T9RoundDecay(sc Scale) *Table {
	t := &Table{
		ID:     "T9",
		Title:  "Election rounds until decision",
		Claim:  "Claim A.4 / Theorem A.5: participants decay geometrically; max round is O(log*k)",
		Header: []string{"k", "mean max-round", "worst max-round", "log*k + 2"},
	}
	for _, k := range sc.sizes() {
		vals := meanOver(Config{N: k, Algorithm: AlgoPoisonPill, Schedule: SchedFair}, sc.Seeds,
			func(r Result) float64 { return float64(r.MaxRound) })
		s := Summarize(vals)
		t.AddRow(d(k), f1(s.Mean), f1(s.Max), d(LogStar(float64(k))+2))
	}
	return t
}

// T10NaiveVsPoisonPill reproduces the Section 1 motivation: the flip-aware
// adversary makes naive sifting useless (everyone survives), while the
// poison pill's commit state defeats the same attack.
func T10NaiveVsPoisonPill(sc Scale) *Table {
	t := &Table{
		ID:     "T10",
		Title:  "Flip-aware adversary: naive sifting vs PoisonPill",
		Claim:  "Section 1: a strong adversary sees the flips and schedules 0-flippers first, breaking naive sifting; the poison pill's catch-22 prevents it",
		Header: []string{"n", "algorithm", "mean survivors", "survivors/n", "√n"},
	}
	for _, algo := range []Algorithm{AlgoNaiveSift, AlgoBasicSift} {
		for _, n := range sc.sizes() {
			vals := meanOver(Config{N: n, Algorithm: algo, Schedule: SchedFlipAware}, sc.Seeds,
				func(r Result) float64 { return float64(r.Survivors()) })
			s := Summarize(vals)
			t.AddRow(d(n), string(algo), f1(s.Mean), f2(s.Mean/float64(n)), f1(math.Sqrt(float64(n))))
		}
	}
	t.Notes = append(t.Notes,
		"naive-sift keeps survivors/n = 1.00 (no progress); basic-sift collapses to ≈ the 1-flippers, O(√n)")
	return t
}

// T11FaultTolerance sweeps crash faults to the model maximum and checks the
// termination and uniqueness guarantees of Theorem A.5 and Lemma A.6.
func T11FaultTolerance(sc Scale) *Table {
	t := &Table{
		ID:     "T11",
		Title:  "Fault tolerance at up to ⌈n/2⌉−1 crashes",
		Claim:  "Theorem A.5 / Lemma A.6: non-faulty participants terminate with probability 1; unique winner / unique names",
		Header: []string{"n", "problem", "faults", "runs", "violations"},
	}
	n := 32
	for _, algo := range []Algorithm{AlgoPoisonPill, AlgoRenaming} {
		for _, f := range []int{1, n / 4, (n+1)/2 - 1} {
			violations := 0
			for s := 0; s < sc.Seeds; s++ {
				r := Run(Config{N: n, Algorithm: algo, Schedule: SchedCrash, Faults: f, Seed: int64(s)*131 + 7})
				if r.Err != nil {
					violations++
					continue
				}
				switch algo {
				case AlgoPoisonPill:
					if r.Winners() > 1 {
						violations++
					}
					if len(r.Decisions)+r.Stats.Crashes < n {
						violations++ // a non-faulty participant failed to return
					}
				case AlgoRenaming:
					seen := map[int]bool{}
					for _, u := range r.Names {
						if u < 1 || u > n || seen[u] {
							violations++
						}
						seen[u] = true
					}
					if len(r.Names)+r.Stats.Crashes < n {
						violations++
					}
				}
			}
			t.AddRow(d(n), string(algo), d(f), d(sc.Seeds), d(violations))
		}
	}
	return t
}

// F1HeadlineCurve emits the paper's headline comparison as a series:
// election time versus k for PoisonPill and the tournament.
func F1HeadlineCurve(sc Scale) *Table {
	t := &Table{
		ID:     "F1",
		Title:  "Headline curve: time vs k (series for plotting)",
		Claim:  "electing a leader faster than a tournament: O(log*k) vs Θ(log k)",
		Header: []string{"k", "poisonpill mean time", "tournament mean time", "tournament/poisonpill"},
	}
	for k := 2; k <= sc.MaxN; k *= 2 {
		pp := Summarize(meanOver(Config{N: k, Algorithm: AlgoPoisonPill, Schedule: SchedLockStep}, sc.Seeds,
			func(r Result) float64 { return float64(r.Stats.MaxCommunicateCalls()) }))
		tn := Summarize(meanOver(Config{N: k, Algorithm: AlgoTournament, Schedule: SchedLockStep}, sc.Seeds,
			func(r Result) float64 { return float64(r.Stats.MaxCommunicateCalls()) }))
		t.AddRow(d(k), f1(pp.Mean), f1(tn.Mean), f2(tn.Mean/pp.Mean))
	}
	return t
}

// F2SurvivorHistogram emits the survivor-count distribution of the two sift
// variants at a fixed size, the shape behind Claims 3.2 / Lemmas 3.6-3.7.
func F2SurvivorHistogram(sc Scale) *Table {
	t := &Table{
		ID:     "F2",
		Title:  "Survivor distribution per sift round",
		Claim:  "basic concentrates near √n; heterogeneous near log²n",
		Header: []string{"algorithm", "n", "min", "p50", "mean", "max"},
	}
	n := sc.MaxN
	for _, algo := range []Algorithm{AlgoBasicSift, AlgoHetSift} {
		vals := meanOver(Config{N: n, Algorithm: algo, Schedule: SchedFair}, sc.Seeds*3,
			func(r Result) float64 { return float64(r.Survivors()) })
		s := Summarize(vals)
		t.AddRow(string(algo), d(n), f1(s.Min), f1(s.P50), f1(s.Mean), f1(s.Max))
	}
	return t
}

// F3RenamingDistributions emits the renaming trial distribution: how many
// while-loop iterations processors need, and how contended names get.
func F3RenamingDistributions(sc Scale) *Table {
	t := &Table{
		ID:     "F3",
		Title:  "Renaming trials per processor and contention per name",
		Claim:  "Section 4: trials and per-name contention stay small despite adversarial view skew (the balls-into-bins process is robust)",
		Header: []string{"n", "schedule", "mean trials", "p50", "max trials", "max contenders/name"},
	}
	n := 64
	for _, sched := range []Schedule{SchedLockStep, SchedFair, SchedStaleViews} {
		var all []float64
		maxContention := 0
		for s := 0; s < sc.Seeds; s++ {
			r := Run(Config{N: n, Algorithm: AlgoRenaming, Schedule: sched, Seed: int64(s)*997 + 3})
			if r.Err != nil {
				panic(fmt.Sprintf("expt: F3 run failed: %v", r.Err))
			}
			for _, it := range r.Iterations {
				all = append(all, float64(it))
			}
			contenders := make(map[int]int, n)
			for _, picks := range r.Picks {
				for _, u := range picks {
					contenders[u]++
				}
			}
			for _, c := range contenders {
				if c > maxContention {
					maxContention = c
				}
			}
		}
		s := Summarize(all)
		t.AddRow(d(n), string(sched), f1(s.Mean), f1(s.P50), f1(s.Max), d(maxContention))
	}
	return t
}

// Experiment pairs an experiment ID with its table generator.
type Experiment struct {
	ID  string
	Gen func(Scale) *Table
}

// Registry returns every experiment in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{"T1", T1PoisonPillSurvivors},
		{"T2", T2HetSurvivors},
		{"T3", T3ElectionTime},
		{"T4", T4ElectionMessages},
		{"T5", T5Adaptivity},
		{"T6", T6RenamingMessages},
		{"T7", T7RenamingTime},
		{"T8", T8LowerBound},
		{"T9", T9RoundDecay},
		{"T10", T10NaiveVsPoisonPill},
		{"T11", T11FaultTolerance},
		{"T12", T12TimeMetric},
		{"T13", T13RoundDecaySeries},
		{"A1", A1BiasAblation},
		{"A2", A2HetBiasAblation},
		{"F1", F1HeadlineCurve},
		{"F2", F2SurvivorHistogram},
		{"F3", F3RenamingDistributions},
	}
}

// sanity check that the decision type is exercised by the linker (keeps the
// core import honest even if experiments change).
var _ = core.Win
