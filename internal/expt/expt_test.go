package expt

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// tiny keeps generator tests fast.
var tiny = Scale{Seeds: 2, MaxN: 32}

func TestRunAllAlgorithmsUnderLockStep(t *testing.T) {
	for _, algo := range []Algorithm{
		AlgoPoisonPill, AlgoTournament, AlgoBasicSift, AlgoHetSift,
		AlgoNaiveSift, AlgoRenaming, AlgoRandomScan,
	} {
		r := Run(Config{N: 16, Algorithm: algo, Schedule: SchedLockStep, Seed: 1})
		if r.Err != nil {
			t.Fatalf("%s: %v", algo, r.Err)
		}
		switch algo {
		case AlgoPoisonPill, AlgoTournament:
			if r.Winners() != 1 {
				t.Fatalf("%s: winners = %d", algo, r.Winners())
			}
		case AlgoBasicSift, AlgoHetSift, AlgoNaiveSift:
			if r.Survivors() < 1 {
				t.Fatalf("%s: no survivors", algo)
			}
		case AlgoRenaming, AlgoRandomScan:
			if len(r.Names) != 16 {
				t.Fatalf("%s: %d names", algo, len(r.Names))
			}
		}
		if r.Stats.MessagesSent == 0 {
			t.Fatalf("%s: no messages recorded", algo)
		}
	}
}

func TestRunAllSchedulesElectLeader(t *testing.T) {
	for _, sched := range []Schedule{
		SchedFair, SchedLockStep, SchedSequential, SchedSeqRounds,
		SchedFlipAware, SchedBubble, SchedStaleViews,
	} {
		r := Run(Config{N: 16, Algorithm: AlgoPoisonPill, Schedule: sched, Seed: 2})
		if r.Err != nil {
			t.Fatalf("%s: %v", sched, r.Err)
		}
		if r.Winners() != 1 {
			t.Fatalf("%s: winners = %d", sched, r.Winners())
		}
	}
}

func TestRunCrashSchedule(t *testing.T) {
	r := Run(Config{N: 16, Algorithm: AlgoPoisonPill, Schedule: SchedCrash, Faults: 3, Seed: 3})
	if r.Err != nil {
		t.Fatalf("crash run: %v", r.Err)
	}
	if r.Winners() > 1 {
		t.Fatalf("winners = %d", r.Winners())
	}
	if len(r.Decisions)+r.Stats.Crashes < 16 {
		t.Fatalf("decided %d + crashed %d < 16", len(r.Decisions), r.Stats.Crashes)
	}
}

func TestRunDefaultsKToN(t *testing.T) {
	r := Run(Config{N: 8, Algorithm: AlgoPoisonPill, Schedule: SchedLockStep, Seed: 1})
	if len(r.Decisions) != 8 {
		t.Fatalf("defaulted K wrong: %d decisions", len(r.Decisions))
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.P50 != 2 || s.N != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty Summarize = %+v", z)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x² must fit slope 2; y = 7 must fit slope 0.
	xs := []float64{2, 4, 8, 16}
	var quad, flat []float64
	for _, x := range xs {
		quad = append(quad, x*x)
		flat = append(flat, 7)
	}
	if got := LogLogSlope(xs, quad); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slope of x² = %v", got)
	}
	if got := LogLogSlope(xs, flat); math.Abs(got) > 1e-9 {
		t.Fatalf("slope of constant = %v", got)
	}
	if got := LogLogSlope([]float64{1}, []float64{1}); got != 0 {
		t.Fatalf("degenerate slope = %v", got)
	}
}

func TestLogStar(t *testing.T) {
	for _, tc := range []struct {
		n    float64
		want int
	}{
		{1, 0}, {2, 1}, {4, 2}, {16, 3}, {256, 4}, {65536, 4}, {1 << 20, 5},
	} {
		if got := LogStar(tc.n); got != tc.want {
			t.Fatalf("LogStar(%v) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestGrowthPerDoubling(t *testing.T) {
	// Doubling sequence y = x gives ratio 2; constant gives 1.
	if got := growthPerDoubling([]float64{2, 4, 8}, []float64{2, 4, 8}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("growth of linear = %v", got)
	}
	if got := growthPerDoubling([]float64{2, 4, 8}, []float64{5, 5, 5}); math.Abs(got-1) > 1e-9 {
		t.Fatalf("growth of constant = %v", got)
	}
}

func TestTableRenderAndMarkdown(t *testing.T) {
	tab := &Table{
		ID:     "TX",
		Title:  "demo",
		Claim:  "claim text",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "2")
	tab.Notes = append(tab.Notes, "note text")

	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"TX — demo", "claim text", "a", "1", "note text"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q in:\n%s", want, out)
		}
	}
	sb.Reset()
	tab.Markdown(&sb)
	md := sb.String()
	for _, want := range []string{"### TX — demo", "| a | b |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown missing %q in:\n%s", want, md)
		}
	}
}

func TestT10GeneratorShape(t *testing.T) {
	// One full generator end-to-end at tiny scale: the flip-aware contrast
	// must show naive survivors/n = 1.00 on every row.
	tab := T10NaiveVsPoisonPill(tiny)
	if len(tab.Rows) == 0 {
		t.Fatal("empty table")
	}
	for _, row := range tab.Rows {
		if row[1] == string(AlgoNaiveSift) && row[3] != "1.00" {
			t.Fatalf("naive sift row %v: survivors/n != 1.00", row)
		}
	}
}

func TestT11GeneratorNoViolations(t *testing.T) {
	tab := T11FaultTolerance(tiny)
	for _, row := range tab.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("fault-tolerance violations in row %v", row)
		}
	}
}

func TestF1GeneratorRatioAboveOneAtScale(t *testing.T) {
	tab := F1HeadlineCurve(Scale{Seeds: 3, MaxN: 64})
	last := tab.Rows[len(tab.Rows)-1]
	// tournament/poisonpill at the largest k must exceed 1: the paper's
	// headline (faster than a tournament).
	ratio, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatalf("parse ratio %q: %v", last[3], err)
	}
	if ratio <= 1.0 {
		t.Fatalf("tournament/poisonpill ratio %.2f at k=%s: not faster than a tournament", ratio, last[0])
	}
}
