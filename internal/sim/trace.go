package sim

// Replay is an Adversary that re-issues a recorded action sequence. Together
// with Config.Record it supports replay debugging and the determinism tests:
// running the same protocol with the same seed under a recorded trace
// reproduces the original execution exactly.
type Replay struct {
	actions []Action
	pos     int
}

// NewReplay builds a replay adversary over a recorded trace. The trace slice
// is copied.
func NewReplay(actions []Action) *Replay {
	return &Replay{actions: append([]Action(nil), actions...)}
}

// Next implements Adversary, returning the recorded actions in order and
// Halt once the trace is exhausted.
func (r *Replay) Next(*Kernel) Action {
	if r.pos >= len(r.actions) {
		return Halt{}
	}
	a := r.actions[r.pos]
	r.pos++
	return a
}

// Remaining reports how many recorded actions have not yet been replayed.
func (r *Replay) Remaining() int { return len(r.actions) - r.pos }
