package sim

import "testing"

func TestMsgQueueFIFOWithLazyDeletion(t *testing.T) {
	live := map[MsgID]bool{1: true, 2: true, 3: true}
	alive := func(id MsgID) bool { return live[id] }
	var q msgQueue
	q.push(1)
	q.push(2)
	q.push(3)

	if id, ok := q.front(alive); !ok || id != 1 {
		t.Fatalf("front = %d,%v want 1,true", id, ok)
	}
	delete(live, 1)
	delete(live, 2)
	if id, ok := q.front(alive); !ok || id != 3 {
		t.Fatalf("front after deletions = %d,%v want 3,true", id, ok)
	}
	if n := q.countLive(alive); n != 1 {
		t.Fatalf("countLive = %d, want 1", n)
	}
	delete(live, 3)
	if _, ok := q.front(alive); ok {
		t.Fatal("front on drained queue should report empty")
	}
	// Reusable after drain.
	live[4] = true
	q.push(4)
	if id, ok := q.front(alive); !ok || id != 4 {
		t.Fatalf("front after reuse = %d,%v want 4,true", id, ok)
	}
}

func TestMsgQueueEachStopsEarly(t *testing.T) {
	live := map[MsgID]bool{1: true, 2: true, 3: true}
	alive := func(id MsgID) bool { return live[id] }
	var q msgQueue
	q.push(1)
	q.push(2)
	q.push(3)
	var seen []MsgID
	q.each(alive, func(id MsgID) bool {
		seen = append(seen, id)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("each visited %v, want [1 2]", seen)
	}
}

func TestDeriveSeedStreamsDiffer(t *testing.T) {
	a := deriveSeed(42, 1)
	b := deriveSeed(42, 2)
	c := deriveSeed(43, 1)
	if a == b || a == c {
		t.Fatalf("seed streams collide: %d %d %d", a, b, c)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	r1 := newRand(7, 3)
	r2 := newRand(7, 3)
	for i := 0; i < 10; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("same seed/stream produced different values")
		}
	}
}
