package sim

import (
	"fmt"
	"math/rand"
)

// procState tracks where a processor's algorithm is in its lifecycle.
type procState int

const (
	// stateIdle: no algorithm attached (pure reactive processor).
	stateIdle procState = iota + 1
	// stateReady: algorithm spawned, invocation not yet started.
	stateReady
	// stateBlocked: algorithm parked at a yield point.
	stateBlocked
	// stateDone: algorithm returned.
	stateDone
	// stateCrashed: processor failed.
	stateCrashed
)

func (s procState) String() string {
	switch s {
	case stateIdle:
		return "idle"
	case stateReady:
		return "ready"
	case stateBlocked:
		return "blocked"
	case stateDone:
		return "done"
	case stateCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("procState(%d)", int(s))
	}
}

// killedSignal unwinds an algorithm goroutine when its processor crashes or
// the kernel shuts down. It never escapes the package: Proc.run recovers it.
type killedSignal struct{}

// yieldEvent is the algorithm goroutine's half of the rendezvous: it is sent
// to the kernel whenever the goroutine parks or finishes, returning control.
type yieldEvent struct {
	proc *Proc
	done bool
}

// Proc is a processor's handle into the kernel. Algorithm code receives a
// *Proc and interacts with the system exclusively through it. All methods
// must be called from the algorithm goroutine unless documented otherwise.
type Proc struct {
	id      ProcID
	k       *Kernel
	rng     *rand.Rand
	service Service

	algo    AlgoFunc
	state   procState
	wait    func() bool // nil while paused: resumable at any step
	resume  chan struct{}
	killed  bool
	failure error // panic captured from algorithm code

	mailbox []*Message

	// enableAt is the virtual arrival time of the message that first
	// satisfied the current wait condition during this step's mailbox
	// consumption; -1 when the condition was not newly enabled.
	enableAt int64

	// Adversary-visible state.
	published  any
	lastFlip   int
	flipCount  int
	yieldCount int
}

// ID returns the processor's identifier. Safe from any context.
func (p *Proc) ID() ProcID { return p.id }

// N returns the system size. Safe from any context.
func (p *Proc) N() int { return p.k.n }

// Rand returns the processor's deterministic private PRNG.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Send transmits a message to processor "to". The message becomes in-flight;
// the adversary decides when (and, after a crash with DropOutgoing, whether)
// it is delivered. Sending to self is delivered immediately into the local
// mailbox: a processor always sees its own writes at its next step.
func (p *Proc) Send(to ProcID, payload any) {
	p.k.send(p.id, to, payload)
}

// Await parks the algorithm until cond() holds. The condition is evaluated
// by the kernel at each of the processor's computation steps, after the
// mailbox has been consumed; it must be a pure function of processor-local
// state. Await is the only blocking primitive: every communicate call in the
// quorum layer reduces to Send + Await.
func (p *Proc) Await(cond func() bool) {
	if cond == nil {
		panic("sim: Await requires a non-nil condition; use Pause")
	}
	p.yield(cond)
}

// Pause yields to the scheduler without a condition: the algorithm resumes
// at the processor's next scheduled step. Pause creates the scheduling
// points that make local transitions (such as coin flips) visible to the
// adaptive adversary before the algorithm can act on them.
func (p *Proc) Pause() {
	p.yield(nil)
}

// Flip performs a biased local coin flip: 1 with probability prob, else 0.
// The outcome is published to the adversary and the processor pauses before
// the value is returned, so the adaptive adversary observes every flip
// before the algorithm can react to it (Section 2's adversary model).
func (p *Proc) Flip(prob float64) int {
	v := 0
	if p.rng.Float64() < prob {
		v = 1
	}
	p.lastFlip = v
	p.flipCount++
	p.Pause()
	return v
}

// Publish registers an adversary-visible view of the algorithm's local
// state. The strong adversary may inspect it at any point through
// Kernel.Published. Algorithms typically publish a pointer to a state struct
// once and mutate it as they progress.
func (p *Proc) Publish(state any) {
	p.published = state
}

// NoteCommunicate records one communicate call for time-complexity
// accounting (Claim 2.1). Called by the quorum layer.
func (p *Proc) NoteCommunicate() {
	p.k.stats.CommCalls[p.id]++
}

// yield parks the goroutine and hands control to the kernel.
func (p *Proc) yield(wait func() bool) {
	p.wait = wait
	p.k.yieldCh <- yieldEvent{proc: p}
	<-p.resume
	if p.killed {
		panic(killedSignal{})
	}
}

// run is the algorithm goroutine's entry point. It executes the algorithm
// body and guarantees a final done-yield so the kernel never deadlocks, even
// if the body panics (the panic is captured as a failure and surfaced from
// Kernel.Run) or the processor is killed.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedSignal); !ok {
				p.failure = fmt.Errorf("sim: processor %d algorithm panicked: %v", p.id, r)
				if p.k.failure == nil {
					p.k.failure = p.failure
				}
			}
		}
		p.k.yieldCh <- yieldEvent{proc: p, done: true}
	}()
	p.algo(p)
}
