package sim

import "math/rand"

// This file is the adaptive adversary's window into the system: the strong
// adversary of Section 2 "can examine the system state, including the
// outcomes of random coin flips, and adjust the scheduling accordingly".
// Every query is read-only.

// Started reports whether processor id's protocol invocation has begun.
func (k *Kernel) Started(id ProcID) bool {
	s := k.procs[id].state
	return s == stateBlocked || s == stateDone || (s == stateCrashed && k.procs[id].algo != nil)
}

// Ready reports whether processor id is a spawned participant whose
// invocation has not yet been started.
func (k *Kernel) Ready(id ProcID) bool { return k.procs[id].state == stateReady }

// Done reports whether processor id's algorithm has returned.
func (k *Kernel) Done(id ProcID) bool { return k.procs[id].state == stateDone }

// Crashed reports whether processor id has failed.
func (k *Kernel) Crashed(id ProcID) bool { return k.procs[id].state == stateCrashed }

// Blocked reports whether processor id's algorithm is parked at a yield
// point.
func (k *Kernel) Blocked(id ProcID) bool { return k.procs[id].state == stateBlocked }

// Resumable reports whether a Step of processor id would resume its
// algorithm right now (parked with a satisfied — or absent — wait
// condition).
func (k *Kernel) Resumable(id ProcID) bool {
	p := k.procs[id]
	return p.state == stateBlocked && (p.wait == nil || p.wait())
}

// Steppable reports whether a Step of processor id would do any work:
// non-empty mailbox or a resumable algorithm.
func (k *Kernel) Steppable(id ProcID) bool {
	p := k.procs[id]
	if p.state == stateCrashed {
		return false
	}
	return len(p.mailbox) > 0 || k.Resumable(id)
}

// MailboxLen returns the number of delivered-but-unconsumed messages at
// processor id.
func (k *Kernel) MailboxLen(id ProcID) int { return len(k.procs[id].mailbox) }

// Participants lists the processors that were spawned with algorithms, in ID
// order.
func (k *Kernel) Participants() []ProcID {
	out := make([]ProcID, 0, k.participants)
	for _, p := range k.procs {
		if p.algo != nil {
			out = append(out, p.id)
		}
	}
	return out
}

// UnfinishedParticipants returns the number of participants that have
// neither returned nor crashed.
func (k *Kernel) UnfinishedParticipants() int {
	return k.participants - k.doneCount - k.crashedAlgos
}

// Published returns the adversary-visible state registered by processor id's
// algorithm via Proc.Publish, or nil.
func (k *Kernel) Published(id ProcID) any { return k.procs[id].published }

// LastFlip returns the value of processor id's most recent coin flip and the
// total number of flips it has performed. count is 0 before the first flip.
func (k *Kernel) LastFlip(id ProcID) (value, count int) {
	p := k.procs[id]
	return p.lastFlip, p.flipCount
}

// YieldCount reports how many times processor id's algorithm has parked at
// a yield point. Schedule explorers use it to advance algorithms one yield
// at a time.
func (k *Kernel) YieldCount(id ProcID) int { return k.procs[id].yieldCount }

// InflightCount returns the number of in-flight (sent, undelivered)
// messages.
func (k *Kernel) InflightCount() int { return len(k.liveIDs) }

// OldestInflight returns the globally oldest in-flight message ID.
func (k *Kernel) OldestInflight() (MsgID, bool) { return k.global.front(k.alive) }

// OldestInflightTo returns the oldest in-flight message addressed to
// processor id.
func (k *Kernel) OldestInflightTo(id ProcID) (MsgID, bool) {
	return k.toProc[id].front(k.alive)
}

// OldestInflightFrom returns the oldest in-flight message sent by processor
// id.
func (k *Kernel) OldestInflightFrom(id ProcID) (MsgID, bool) {
	return k.fromProc[id].front(k.alive)
}

// RandomInflight returns a uniformly random in-flight message ID, using the
// supplied PRNG. ok is false when nothing is in flight.
func (k *Kernel) RandomInflight(rng *rand.Rand) (MsgID, bool) {
	if len(k.liveIDs) == 0 {
		return 0, false
	}
	return k.liveIDs[rng.Intn(len(k.liveIDs))], true
}

// Inflight returns the message with the given ID, or nil if it is not in
// flight. The adversary may read the payload; it must not mutate it.
func (k *Kernel) Inflight(id MsgID) *Message { return k.msgs[id] }

// EachInflight visits every in-flight message in send order until fn returns
// false.
func (k *Kernel) EachInflight(fn func(*Message) bool) {
	k.global.each(k.alive, func(id MsgID) bool {
		return fn(k.msgs[id])
	})
}

// EachInflightTo visits the in-flight messages addressed to id, oldest
// first, until fn returns false.
func (k *Kernel) EachInflightTo(id ProcID, fn func(*Message) bool) {
	k.toProc[id].each(k.alive, func(mid MsgID) bool {
		return fn(k.msgs[mid])
	})
}

// EachInflightFrom visits the in-flight messages sent by id, oldest first,
// until fn returns false.
func (k *Kernel) EachInflightFrom(id ProcID, fn func(*Message) bool) {
	k.fromProc[id].each(k.alive, func(mid MsgID) bool {
		return fn(k.msgs[mid])
	})
}

// Stats returns a snapshot of the run statistics so far. It deep-copies the
// per-processor slices; adversaries polling a single counter every action
// should use the cheap accessors below instead.
func (k *Kernel) Stats() Stats { return k.stats.clone() }

// MessagesSent returns the total number of messages sent so far (cheap).
func (k *Kernel) MessagesSent() int64 { return k.stats.MessagesSent }

// ActionCount returns the number of adversary actions applied so far
// (cheap).
func (k *Kernel) ActionCount() int64 { return k.stats.Actions }

// CommCallsOf returns processor id's communicate-call count so far (cheap).
func (k *Kernel) CommCallsOf(id ProcID) int { return k.stats.CommCalls[id] }

// FaultBudget returns how many additional crashes the model permits.
func (k *Kernel) FaultBudget() int { return k.maxFaults - k.stats.Crashes }

// FairAction exposes the kernel's built-in fair scheduling decision so
// adversary strategies can fall back to it for the parts of the schedule
// they do not care about. Returns nil when nothing is enabled.
func (k *Kernel) FairAction() Action { return k.fairAction() }

// FairActionExcludingStarts is FairAction restricted to deliveries and
// steps: it never starts a participant's invocation, leaving invocation
// timing to the adversary. Returns nil when nothing else is enabled.
func (k *Kernel) FairActionExcludingStarts() Action { return k.fairActionNoStart() }

// FairStepAction returns a fair Step action only — no deliveries, no starts
// — or nil when no processor has step work. Strategies that filter
// deliveries themselves use it to schedule computation without the kernel
// delivering embargoed messages on their behalf.
func (k *Kernel) FairStepAction() Action { return k.fairStepAction() }
