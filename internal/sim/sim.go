// Package sim implements the asynchronous message-passing model of
// Alistarh, Gelashvili and Vladu, "How to Elect a Leader Faster than a
// Tournament" (PODC 2015), Section 2.
//
// The model: n processors communicate through point-to-point channels, one
// in each direction between every pair. Messages can be arbitrarily delayed
// and reordered, but are not corrupted. Computation proceeds in steps that a
// strong adaptive adversary schedules: the adversary picks every message
// delivery, every computation step, every protocol invocation, and may crash
// up to ⌈n/2⌉−1 processors, all while inspecting the full system state —
// including the outcome of every local coin flip.
//
// The package is a deterministic discrete-event kernel. Algorithm code runs
// on goroutines in direct, blocking style, but only one goroutine (either
// the kernel or a single processor) executes at any instant; the handoff is
// a strict rendezvous over unbuffered channels. Combined with seeded
// per-processor PRNGs this makes executions fully reproducible: the same
// seed and the same adversary decisions yield the same trace.
//
// Each processor has two halves:
//
//   - a reactive service that handles incoming messages and produces
//     replies. It runs at computation steps on every processor — including
//     processors that do not participate in the protocol and processors that
//     have already returned — implementing the paper's standing assumption
//     that "all non-faulty processors always take part in the computation by
//     replying to the messages";
//   - an optional algorithm goroutine (the protocol participant), started by
//     an explicit Start action so that invocation times are under adversary
//     control, as the contention-adaptive analysis requires.
//
// Coin flips are scheduling points: Proc.Flip records the outcome where the
// adversary can read it and yields before the algorithm can act on the
// value, exactly matching the strong-adversary model.
package sim

import (
	"errors"

	"repro/internal/rt"
)

// ProcID identifies one of the n processors, in the range [0, n). It is an
// alias of rt.ProcID, the backend-neutral identifier of the runtime seam.
type ProcID = rt.ProcID

// MsgID uniquely identifies an in-flight message within a kernel run.
type MsgID int64

// Message is a point-to-point message travelling from one processor to
// another. The adversary may read Payload: the strong adversary inspects all
// state.
type Message struct {
	ID      MsgID
	From    ProcID
	To      ProcID
	Payload any

	livePos int   // index in the kernel's live-ID slice
	sentAt  int64 // sender's virtual clock at send time (t1/t2 accounting)
}

// Service is the reactive half of a processor. HandleMessage is invoked for
// every message consumed at a computation step; if ok is true, reply is sent
// back to the sender as a new message.
//
// HandleMessage runs on the kernel goroutine and must not block.
type Service interface {
	HandleMessage(from ProcID, payload any) (reply any, ok bool)
}

// AlgoFunc is the body of a protocol participant. It runs on a dedicated
// goroutine under the kernel's strict one-at-a-time rendezvous and may only
// interact with the system through the Proc handle.
type AlgoFunc func(p *Proc)

// WireSizer is implemented by payloads that can report their size in bytes
// for bit-complexity accounting (the paper's Section 6 mentions bit
// complexity as an open direction; the kernel tracks it when payloads
// cooperate). Alias of rt.WireSizer so both backends share one protocol.
type WireSizer = rt.WireSizer

// Action is one adversary decision. Exactly one of the concrete types
// Deliver, Step, Start, Crash, or Halt.
type Action interface {
	isAction()
}

// Deliver moves an in-flight message into its recipient's mailbox. The
// recipient does not observe it until its next Step.
type Deliver struct {
	Msg MsgID
}

// Step schedules a computation step of a processor: the processor consumes
// every message in its mailbox (reactive service replies are sent), and then
// its algorithm resumes if it is blocked on a satisfied wait condition (or
// on a plain pause).
type Step struct {
	Proc ProcID
}

// Start invokes the protocol on a spawned participant: its algorithm
// goroutine begins executing and runs until its first yield point. Start
// models the arrival of the participant's operation invocation, which the
// adversary controls.
type Start struct {
	Proc ProcID
}

// Crash fails a processor. A crashed processor takes no further steps and
// its algorithm goroutine is unwound. If DropOutgoing is set, the
// processor's undelivered outgoing messages are discarded (the model allows
// messages sent by faulty processors to be lost). At most MaxFaults
// processors may be crashed.
type Crash struct {
	Proc         ProcID
	DropOutgoing bool
}

// Halt relinquishes adversary control: the kernel finishes the run with its
// built-in fair scheduler.
type Halt struct{}

func (Deliver) isAction() {}
func (Step) isAction()    {}
func (Start) isAction()   {}
func (Crash) isAction()   {}
func (Halt) isAction()    {}

// Adversary schedules the execution. Next is called before every action and
// may inspect the entire kernel state (the strong adaptive adversary of
// Section 2). Returning nil delegates the single next action to the
// kernel's built-in fair scheduler.
type Adversary interface {
	Next(k *Kernel) Action
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(k *Kernel) Action

// Next implements Adversary.
func (f AdversaryFunc) Next(k *Kernel) Action { return f(k) }

// Errors returned by Kernel.Run.
var (
	// ErrBudget is returned when the run exceeds its action budget,
	// indicating a livelocked schedule or a runaway protocol.
	ErrBudget = errors.New("sim: action budget exhausted")

	// ErrStuck is returned when no participant can make progress: no
	// in-flight messages, no pending mailboxes, and every live algorithm
	// is blocked on an unsatisfiable condition.
	ErrStuck = errors.New("sim: execution stuck with participants unfinished")

	// ErrIllegalAction is wrapped by errors describing an adversary action
	// that violates the model (delivering a non-existent message, stepping
	// a crashed processor, exceeding the fault budget, ...).
	ErrIllegalAction = errors.New("sim: illegal adversary action")
)
