package sim

import "testing"

// The virtual clock implements the paper's Section 2 timing with t1 = t2 = 1:
// a delivery arrives one unit after its send, a computation step completes
// one unit after its causes. The canonical pattern the paper computes below
// Claim 2.1 — request out (t1), processed (t2), ack back (t1), resume (t2) —
// must cost 4 units per communicate round-trip.

func TestVirtualTimeSingleRoundTrip(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	k.SetService(1, serviceFunc(func(from ProcID, payload any) (any, bool) {
		return "ack", true
	}))
	acks := 0
	k.SetService(0, serviceFunc(func(from ProcID, payload any) (any, bool) {
		acks++
		return nil, false
	}))
	k.Spawn(0, func(p *Proc) {
		p.Send(1, "req")
		p.Await(func() bool { return acks >= 1 })
	})
	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Start step (1) + request in flight (arrives 2) + responder step (3,
	// reply stamped at 3) + reply arrives (4) + resume step (5).
	if stats.VirtualTime != 5 {
		t.Fatalf("VirtualTime = %d, want 5", stats.VirtualTime)
	}
}

func TestVirtualTimeRepliesDoNotChainThroughResponderBatching(t *testing.T) {
	// Two requests to the same responder, delivered and stepped one at a
	// time: the second reply's timing must depend on its own request, not
	// on how many steps the responder took in between (the model bounds a
	// reply by arrival + t2 regardless of adversary batching).
	build := func() (*Kernel, *int) {
		k := NewKernel(Config{N: 3, Seed: 1})
		k.SetService(2, serviceFunc(func(from ProcID, payload any) (any, bool) {
			return "ack", true
		}))
		acks := new(int)
		k.SetService(0, serviceFunc(func(from ProcID, payload any) (any, bool) {
			*acks++
			return nil, false
		}))
		k.Spawn(0, func(p *Proc) {
			p.Send(2, "a")
			p.Send(2, "b")
			p.Await(func() bool { return *acks >= 2 })
		})
		return k, acks
	}

	// Batched: deliver both, one responder step.
	kBatched, _ := build()
	statsBatched, err := kBatched.Run(nil)
	if err != nil {
		t.Fatalf("batched run: %v", err)
	}

	// Serialized: deliver one, step, deliver the other, step.
	kSerial, _ := build()
	serialOrder := []Action{
		Start{Proc: 0},
		Deliver{Msg: 0}, Step{Proc: 2},
		Deliver{Msg: 1}, Step{Proc: 2},
	}
	pos := 0
	adv := AdversaryFunc(func(k *Kernel) Action {
		if pos < len(serialOrder) {
			a := serialOrder[pos]
			pos++
			return a
		}
		return nil
	})
	statsSerial, err := kSerial.Run(adv)
	if err != nil {
		t.Fatalf("serialized run: %v", err)
	}
	if statsSerial.VirtualTime != statsBatched.VirtualTime {
		t.Fatalf("batching changed the makespan: serial %d vs batched %d",
			statsSerial.VirtualTime, statsBatched.VirtualTime)
	}
}

func TestVirtualTimeChainsThroughAlgorithmSteps(t *testing.T) {
	// A purely local chain of pauses costs one unit per resumption: the
	// algorithm's own steps do causally chain.
	k := NewKernel(Config{N: 1, Seed: 1})
	k.Spawn(0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Pause()
		}
	})
	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Start (1) + 5 resumes.
	if stats.VirtualTime != 6 {
		t.Fatalf("VirtualTime = %d, want 6", stats.VirtualTime)
	}
}

func TestVirtualTimeParallelismIsFree(t *testing.T) {
	// Two independent request/response pairs in parallel must cost the same
	// makespan as one: time is the longest chain, not the event count.
	run := func(pairs int) int64 {
		k := NewKernel(Config{N: 2 * pairs, Seed: 1})
		acks := make([]int, pairs)
		for i := 0; i < pairs; i++ {
			i := i
			client, server := ProcID(2*i), ProcID(2*i+1)
			k.SetService(server, serviceFunc(func(from ProcID, payload any) (any, bool) {
				return "ack", true
			}))
			k.SetService(client, serviceFunc(func(from ProcID, payload any) (any, bool) {
				acks[i]++
				return nil, false
			}))
			k.Spawn(client, func(p *Proc) {
				p.Send(server, "req")
				p.Await(func() bool { return acks[i] >= 1 })
			})
		}
		stats, err := k.Run(nil)
		if err != nil {
			t.Fatalf("Run(%d pairs): %v", pairs, err)
		}
		return stats.VirtualTime
	}
	if one, four := run(1), run(4); one != four {
		t.Fatalf("parallel pairs changed makespan: %d vs %d", one, four)
	}
}

func TestVirtualTimeCustomT1T2(t *testing.T) {
	// One round-trip with t1 = 10, t2 = 3: start (3) + delivery (13) +
	// responder step / reply stamp (16) + reply arrival (26) + resume (29).
	k := NewKernel(Config{N: 2, Seed: 1, T1: 10, T2: 3})
	k.SetService(1, serviceFunc(func(from ProcID, payload any) (any, bool) {
		return "ack", true
	}))
	acks := 0
	k.SetService(0, serviceFunc(func(from ProcID, payload any) (any, bool) {
		acks++
		return nil, false
	}))
	k.Spawn(0, func(p *Proc) {
		p.Send(1, "req")
		p.Await(func() bool { return acks >= 1 })
	})
	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.VirtualTime != 29 {
		t.Fatalf("VirtualTime = %d, want 29 (= 2·t1 + 3·t2)", stats.VirtualTime)
	}
}

func TestVirtualTimeScalesLinearlyInT1PlusT2(t *testing.T) {
	// The paper's definition: time complexity O(T·(t1+t2)). Doubling both
	// bounds must exactly double the makespan of the same schedule.
	run := func(t1, t2 int64) int64 {
		k := NewKernel(Config{N: 2, Seed: 5, T1: t1, T2: t2})
		k.SetService(1, serviceFunc(func(from ProcID, payload any) (any, bool) {
			return "ack", true
		}))
		acks := 0
		k.SetService(0, serviceFunc(func(from ProcID, payload any) (any, bool) {
			acks++
			return nil, false
		}))
		k.Spawn(0, func(p *Proc) {
			for i := 0; i < 4; i++ {
				p.Send(1, i)
				want := i + 1
				p.Await(func() bool { return acks >= want })
			}
		})
		stats, err := k.Run(nil)
		if err != nil {
			t.Fatalf("Run(t1=%d,t2=%d): %v", t1, t2, err)
		}
		return stats.VirtualTime
	}
	base, doubled := run(1, 1), run(2, 2)
	if doubled != 2*base {
		t.Fatalf("makespan did not scale: %d at (1,1) vs %d at (2,2)", base, doubled)
	}
}
