package sim

// msgQueue is a FIFO of message IDs with lazy deletion: delivered or dropped
// messages are skipped when encountered rather than removed eagerly, keeping
// every queue operation amortised O(1). Liveness of an ID is checked against
// the kernel's in-flight map.
type msgQueue struct {
	ids  []MsgID
	head int
}

func (q *msgQueue) push(id MsgID) {
	q.ids = append(q.ids, id)
}

// front returns the oldest live ID, compacting dead prefix entries.
// ok is false when the queue holds no live message.
func (q *msgQueue) front(alive func(MsgID) bool) (MsgID, bool) {
	for q.head < len(q.ids) {
		id := q.ids[q.head]
		if alive(id) {
			return id, true
		}
		q.head++
	}
	// Fully drained: reset storage so the backing array can be reused.
	q.ids = q.ids[:0]
	q.head = 0
	return 0, false
}

// each visits every live ID in FIFO order until fn returns false.
func (q *msgQueue) each(alive func(MsgID) bool, fn func(MsgID) bool) {
	for i := q.head; i < len(q.ids); i++ {
		id := q.ids[i]
		if !alive(id) {
			continue
		}
		if !fn(id) {
			return
		}
	}
}

// countLive reports the number of live messages in the queue. O(len).
func (q *msgQueue) countLive(alive func(MsgID) bool) int {
	n := 0
	q.each(alive, func(MsgID) bool { n++; return true })
	return n
}
