package sim

import (
	"errors"
	"testing"
)

// echoService replies "ack" to every "ping" and records what it saw.
type echoService struct {
	got []any
}

func (s *echoService) HandleMessage(from ProcID, payload any) (any, bool) {
	s.got = append(s.got, payload)
	if payload == "ping" {
		return "ack", true
	}
	return nil, false
}

// collector counts acks for a simple quorum-like wait.
type collector struct {
	acks int
}

func (c *collector) HandleMessage(from ProcID, payload any) (any, bool) {
	if payload == "ack" {
		c.acks++
	}
	return nil, false
}

func TestSendDeliverStepReply(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	svc := &echoService{}
	k.SetService(1, svc)
	recv := &collector{}
	k.SetService(0, recv)
	k.Spawn(0, func(p *Proc) {
		p.Send(1, "ping")
		p.Await(func() bool { return recv.acks == 1 })
	})

	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(svc.got) != 1 || svc.got[0] != "ping" {
		t.Fatalf("service saw %v, want [ping]", svc.got)
	}
	if recv.acks != 1 {
		t.Fatalf("acks = %d, want 1", recv.acks)
	}
	if stats.MessagesSent != 2 {
		t.Fatalf("MessagesSent = %d, want 2 (ping + ack)", stats.MessagesSent)
	}
	if stats.SentBy[0] != 1 || stats.SentBy[1] != 1 {
		t.Fatalf("SentBy = %v, want one message each", stats.SentBy)
	}
	if stats.ReceivedBy[0] != 1 || stats.ReceivedBy[1] != 1 {
		t.Fatalf("ReceivedBy = %v, want one delivery each", stats.ReceivedBy)
	}
}

func TestSelfSendDeliversImmediately(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 1})
	svc := &echoService{}
	k.SetService(0, svc)
	k.Spawn(0, func(p *Proc) {
		p.Send(0, "note")
		p.Await(func() bool { return len(svc.got) == 1 })
	})
	if _, err := k.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(svc.got) != 1 || svc.got[0] != "note" {
		t.Fatalf("self-send not observed: %v", svc.got)
	}
}

func TestAlgorithmDoesNotRunBeforeStart(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	ran := false
	k.Spawn(0, func(p *Proc) { ran = true })
	k.Spawn(1, func(p *Proc) {})

	// Drive manually: step and deliver must not start proc 0's algorithm.
	if err := k.apply(Step{Proc: 0}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if ran {
		t.Fatal("algorithm ran before Start action")
	}
	if !k.Ready(0) {
		t.Fatal("processor should still be ready")
	}
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if !ran {
		t.Fatal("algorithm did not run at Start")
	}
	if !k.Done(0) {
		t.Fatal("trivial algorithm should be done after Start")
	}
}

func TestAwaitBlocksUntilConditionAndStep(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 1})
	cond := false
	resumed := false
	k.Spawn(0, func(p *Proc) {
		p.Await(func() bool { return cond })
		resumed = true
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := k.apply(Step{Proc: 0}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if resumed {
		t.Fatal("resumed with unsatisfied condition")
	}
	cond = true
	if resumed {
		t.Fatal("resumed without a step")
	}
	if err := k.apply(Step{Proc: 0}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if !resumed {
		t.Fatal("did not resume on satisfied condition")
	}
	k.shutdown()
}

func TestPauseResumesOnAnyStep(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 1})
	stage := 0
	k.Spawn(0, func(p *Proc) {
		stage = 1
		p.Pause()
		stage = 2
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if stage != 1 {
		t.Fatalf("stage = %d after Start, want 1", stage)
	}
	if !k.Resumable(0) {
		t.Fatal("paused processor should be resumable")
	}
	if err := k.apply(Step{Proc: 0}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if stage != 2 {
		t.Fatalf("stage = %d after Step, want 2", stage)
	}
}

func TestFlipPublishesAndYields(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 42})
	var got int
	k.Spawn(0, func(p *Proc) {
		got = p.Flip(1.0) // always 1
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// The algorithm must be paused at the flip, with the outcome visible.
	v, c := k.LastFlip(0)
	if c != 1 || v != 1 {
		t.Fatalf("LastFlip = (%d,%d), want (1,1)", v, c)
	}
	if k.Done(0) {
		t.Fatal("algorithm should be paused at the flip, not done")
	}
	if err := k.apply(Step{Proc: 0}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if got != 1 {
		t.Fatalf("flip returned %d, want 1", got)
	}
}

func TestFlipZeroProbability(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 7})
	var got int
	k.Spawn(0, func(p *Proc) { got = p.Flip(0.0) })
	if _, err := k.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got != 0 {
		t.Fatalf("flip(0.0) = %d, want 0", got)
	}
}

func TestCrashUnwindsBlockedGoroutine(t *testing.T) {
	k := NewKernel(Config{N: 3, Seed: 1, MaxFaults: 1})
	reached := false
	k.Spawn(0, func(p *Proc) {
		p.Await(func() bool { return false })
		reached = true // must never run
	})
	k.Spawn(1, func(p *Proc) {})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := k.apply(Crash{Proc: 0}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if reached {
		t.Fatal("crashed algorithm continued past Await")
	}
	if !k.Crashed(0) {
		t.Fatal("processor not marked crashed")
	}
	if err := k.apply(Step{Proc: 0}); !errors.Is(err, ErrIllegalAction) {
		t.Fatalf("step of crashed processor: err = %v, want ErrIllegalAction", err)
	}
}

func TestCrashDropOutgoing(t *testing.T) {
	k := NewKernel(Config{N: 3, Seed: 1, MaxFaults: 1})
	k.Spawn(0, func(p *Proc) {
		p.Send(1, "x")
		p.Send(2, "y")
		p.Pause()
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if k.InflightCount() != 2 {
		t.Fatalf("InflightCount = %d, want 2", k.InflightCount())
	}
	if err := k.apply(Crash{Proc: 0, DropOutgoing: true}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if k.InflightCount() != 0 {
		t.Fatalf("InflightCount after drop = %d, want 0", k.InflightCount())
	}
}

func TestCrashFaultBudget(t *testing.T) {
	k := NewKernel(Config{N: 5, Seed: 1, MaxFaults: -1}) // ⌈5/2⌉−1 = 2
	if err := k.apply(Crash{Proc: 0}); err != nil {
		t.Fatalf("crash 0: %v", err)
	}
	if err := k.apply(Crash{Proc: 1}); err != nil {
		t.Fatalf("crash 1: %v", err)
	}
	if err := k.apply(Crash{Proc: 2}); !errors.Is(err, ErrIllegalAction) {
		t.Fatalf("third crash: err = %v, want ErrIllegalAction", err)
	}
	if k.FaultBudget() != 0 {
		t.Fatalf("FaultBudget = %d, want 0", k.FaultBudget())
	}
}

func TestDeliverToCrashedIsNoop(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1, MaxFaults: 1})
	k.Spawn(0, func(p *Proc) {
		p.Send(1, "late")
		p.Pause()
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := k.apply(Crash{Proc: 1}); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	id, ok := k.OldestInflight()
	if !ok {
		t.Fatal("expected an in-flight message")
	}
	if err := k.apply(Deliver{Msg: id}); err != nil {
		t.Fatalf("Deliver to crashed: %v", err)
	}
	if k.MailboxLen(1) != 0 {
		t.Fatal("crashed processor accumulated mailbox")
	}
}

func TestIllegalActions(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	k.Spawn(0, func(p *Proc) {})
	cases := []struct {
		name string
		a    Action
	}{
		{"deliver unknown", Deliver{Msg: 999}},
		{"step out of range", Step{Proc: 17}},
		{"start non-participant", Start{Proc: 1}},
		{"start out of range", Start{Proc: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := k.apply(tc.a); !errors.Is(err, ErrIllegalAction) {
				t.Fatalf("err = %v, want ErrIllegalAction", err)
			}
		})
	}
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("legal start: %v", err)
	}
	if err := k.apply(Start{Proc: 0}); !errors.Is(err, ErrIllegalAction) {
		t.Fatalf("double start: err = %v, want ErrIllegalAction", err)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 1, Budget: 10})
	k.Spawn(0, func(p *Proc) {
		for {
			p.Pause() // spin forever
		}
	})
	if _, err := k.Run(nil); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestStuckDetection(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	k.Spawn(0, func(p *Proc) {
		p.Await(func() bool { return false }) // unsatisfiable
	})
	if _, err := k.Run(nil); !errors.Is(err, ErrStuck) {
		t.Fatalf("err = %v, want ErrStuck", err)
	}
}

func TestAlgorithmPanicSurfaces(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 1})
	k.Spawn(0, func(p *Proc) {
		panic("boom")
	})
	_, err := k.Run(nil)
	if err == nil {
		t.Fatal("expected error from panicking algorithm")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	k := NewKernel(Config{N: 1, Seed: 1})
	k.Spawn(0, func(p *Proc) {})
	if _, err := k.Run(nil); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := k.Run(nil); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestHaltFallsBackToFairScheduler(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	recv := &collector{}
	k.SetService(0, recv)
	k.SetService(1, &echoService{})
	k.Spawn(0, func(p *Proc) {
		p.Send(1, "ping")
		p.Await(func() bool { return recv.acks == 1 })
	})
	adv := AdversaryFunc(func(k *Kernel) Action { return Halt{} })
	if _, err := k.Run(adv); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestPublishedStateVisible(t *testing.T) {
	type st struct{ Phase int }
	k := NewKernel(Config{N: 1, Seed: 1})
	s := &st{}
	k.Spawn(0, func(p *Proc) {
		p.Publish(s)
		s.Phase = 3
		p.Pause()
		s.Phase = 7
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	got, ok := k.Published(0).(*st)
	if !ok || got.Phase != 3 {
		t.Fatalf("Published = %#v, want Phase 3", k.Published(0))
	}
	if err := k.apply(Step{Proc: 0}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if got.Phase != 7 {
		t.Fatalf("Phase = %d, want 7", got.Phase)
	}
}

func TestNoteCommunicateCountsPerProcessor(t *testing.T) {
	k := NewKernel(Config{N: 3, Seed: 1})
	k.Spawn(2, func(p *Proc) {
		p.NoteCommunicate()
		p.NoteCommunicate()
	})
	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.CommCalls[2] != 2 {
		t.Fatalf("CommCalls[2] = %d, want 2", stats.CommCalls[2])
	}
	if stats.MaxCommunicateCalls() != 2 {
		t.Fatalf("MaxCommunicateCalls = %d, want 2", stats.MaxCommunicateCalls())
	}
	if stats.TotalCommunicateCalls() != 2 {
		t.Fatalf("TotalCommunicateCalls = %d, want 2", stats.TotalCommunicateCalls())
	}
}

func TestInflightQueries(t *testing.T) {
	k := NewKernel(Config{N: 3, Seed: 1})
	k.Spawn(0, func(p *Proc) {
		p.Send(1, "a")
		p.Send(2, "b")
		p.Send(1, "c")
		p.Pause()
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if got := k.InflightCount(); got != 3 {
		t.Fatalf("InflightCount = %d, want 3", got)
	}
	id, ok := k.OldestInflightTo(1)
	if !ok || k.Inflight(id).Payload != "a" {
		t.Fatalf("OldestInflightTo(1) wrong: ok=%v", ok)
	}
	var seen []any
	k.EachInflightFrom(0, func(m *Message) bool {
		seen = append(seen, m.Payload)
		return true
	})
	if len(seen) != 3 || seen[0] != "a" || seen[1] != "b" || seen[2] != "c" {
		t.Fatalf("EachInflightFrom order = %v", seen)
	}
	if err := k.apply(Deliver{Msg: id}); err != nil {
		t.Fatalf("Deliver: %v", err)
	}
	id2, ok := k.OldestInflightTo(1)
	if !ok || k.Inflight(id2).Payload != "c" {
		t.Fatal("queue did not skip the delivered message")
	}
	if k.Inflight(id) != nil {
		t.Fatal("delivered message still reported in flight")
	}
}

func TestRandomInflightUniformAndLive(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 3})
	k.Spawn(0, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Send(1, i)
		}
		p.Pause()
	})
	if err := k.apply(Start{Proc: 0}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	rng := newRand(99, 1)
	seen := map[MsgID]bool{}
	for i := 0; i < 200; i++ {
		id, ok := k.RandomInflight(rng)
		if !ok {
			t.Fatal("no in-flight message")
		}
		if k.Inflight(id) == nil {
			t.Fatal("RandomInflight returned dead message")
		}
		seen[id] = true
	}
	if len(seen) < 8 {
		t.Fatalf("random picks covered only %d of 10 messages", len(seen))
	}
}

func TestParticipantsAndUnfinished(t *testing.T) {
	k := NewKernel(Config{N: 4, Seed: 1})
	k.Spawn(1, func(p *Proc) {})
	k.Spawn(3, func(p *Proc) {})
	ps := k.Participants()
	if len(ps) != 2 || ps[0] != 1 || ps[1] != 3 {
		t.Fatalf("Participants = %v", ps)
	}
	if k.UnfinishedParticipants() != 2 {
		t.Fatalf("UnfinishedParticipants = %d, want 2", k.UnfinishedParticipants())
	}
	if _, err := k.Run(nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.UnfinishedParticipants() != 0 {
		t.Fatalf("UnfinishedParticipants = %d, want 0", k.UnfinishedParticipants())
	}
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestPayloadBytesAccounting(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	k.Spawn(0, func(p *Proc) {
		p.Send(1, sized{n: 10})
		p.Send(1, sized{n: 5})
		p.Send(1, "unsized")
	})
	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.PayloadBytes != 15 {
		t.Fatalf("PayloadBytes = %d, want 15", stats.PayloadBytes)
	}
}

func TestStatsCloneIsDeep(t *testing.T) {
	k := NewKernel(Config{N: 2, Seed: 1})
	k.Spawn(0, func(p *Proc) { p.NoteCommunicate() })
	stats, err := k.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	stats.CommCalls[0] = 999
	if k.stats.CommCalls[0] == 999 {
		t.Fatal("Stats aliases kernel-owned slice")
	}
}

func TestCrashedParticipantEndsRun(t *testing.T) {
	// A run whose only participant crashes should finish, not hang.
	k := NewKernel(Config{N: 3, Seed: 1, MaxFaults: 1})
	k.Spawn(0, func(p *Proc) {
		p.Await(func() bool { return false })
	})
	crashed := false
	adv := AdversaryFunc(func(k *Kernel) Action {
		if !crashed {
			if k.Ready(0) {
				return Start{Proc: 0}
			}
			crashed = true
			return Crash{Proc: 0}
		}
		return nil
	})
	if _, err := k.Run(adv); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
