package sim

// Stats aggregates the complexity measures of one kernel run.
//
// MessagesSent is the paper's message-complexity metric: every point-to-point
// message, including acknowledgments, is counted once when sent. The time
// metric follows Claim 2.1: an algorithm whose processors each perform at
// most T communicate calls has time complexity O(T), so MaxCommunicateCalls
// is the reported time measure. Communicate calls are recorded by the quorum
// layer through Proc.NoteCommunicate.
type Stats struct {
	// N is the system size (total processors, participants or not).
	N int

	// Participants is the number of spawned protocol participants (the
	// paper's k).
	Participants int

	// MessagesSent counts every message sent, acknowledgments included.
	MessagesSent int64

	// PayloadBytes accumulates WireSize over all sent payloads that
	// implement WireSizer (bit-complexity accounting).
	PayloadBytes int64

	// Deliveries and Steps count the adversary's Deliver and Step actions.
	Deliveries int64
	Steps      int64

	// Starts counts protocol invocations performed so far.
	Starts int

	// Crashes counts failed processors.
	Crashes int

	// CommCalls is the number of communicate calls performed by each
	// processor (indexed by ProcID).
	CommCalls []int

	// SentBy and ReceivedBy count messages sent and delivered per processor
	// (indexed by ProcID). Used by the lower-bound experiments, which argue
	// about the per-processor send+receive load (Theorem B.2).
	SentBy     []int64
	ReceivedBy []int64

	// Actions is the total number of adversary actions applied.
	Actions int64

	// VirtualTime is the execution makespan under the paper's timing model
	// (Section 2) with t1 = t2 = 1: message delivery costs one unit, each
	// computation step one unit, and the total is the longest causal chain
	// of the scheduled execution. Claim 2.1 predicts VirtualTime = Θ(max
	// communicate calls) for quorum-based algorithms; the kernel reports
	// both so the claim itself is checkable.
	VirtualTime int64
}

// MaxCommunicateCalls returns the maximum number of communicate calls any
// single processor performed: the time-complexity measure of Claim 2.1.
func (s *Stats) MaxCommunicateCalls() int {
	maxCalls := 0
	for _, c := range s.CommCalls {
		if c > maxCalls {
			maxCalls = c
		}
	}
	return maxCalls
}

// TotalCommunicateCalls returns the sum of communicate calls over all
// processors.
func (s *Stats) TotalCommunicateCalls() int {
	total := 0
	for _, c := range s.CommCalls {
		total += c
	}
	return total
}

// clone returns a deep copy so callers cannot alias kernel-owned slices
// (slices are copied at API boundaries).
func (s *Stats) clone() Stats {
	out := *s
	out.CommCalls = append([]int(nil), s.CommCalls...)
	out.SentBy = append([]int64(nil), s.SentBy...)
	out.ReceivedBy = append([]int64(nil), s.ReceivedBy...)
	return out
}
