package sim

import "testing"

// spawnPingPong wires a deterministic two-processor protocol for replay
// tests: proc 0 sends pings and waits for echoes, flipping coins in between.
func spawnPingPong(k *Kernel) {
	acks := 0
	k.SetService(1, serviceFunc(func(from ProcID, payload any) (any, bool) {
		return "echo", true
	}))
	k.SetService(0, serviceFunc(func(from ProcID, payload any) (any, bool) {
		acks++
		return nil, false
	}))
	k.Spawn(0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Flip(0.5)
			p.Send(1, "ping")
			want := i + 1
			p.Await(func() bool { return acks >= want })
		}
	})
}

type serviceFunc func(ProcID, any) (any, bool)

func (f serviceFunc) HandleMessage(from ProcID, payload any) (any, bool) {
	return f(from, payload)
}

func TestRecordAndReplayReproducesRun(t *testing.T) {
	k1 := NewKernel(Config{N: 2, Seed: 99, Record: true})
	spawnPingPong(k1)
	stats1, err := k1.Run(nil)
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	trace := k1.Trace()
	if len(trace) == 0 {
		t.Fatal("no trace recorded")
	}

	k2 := NewKernel(Config{N: 2, Seed: 99, Record: true})
	spawnPingPong(k2)
	stats2, err := k2.Run(NewReplay(trace))
	if err != nil {
		t.Fatalf("replayed run: %v", err)
	}
	if stats1.MessagesSent != stats2.MessagesSent ||
		stats1.Deliveries != stats2.Deliveries ||
		stats1.Steps != stats2.Steps ||
		stats1.Actions != stats2.Actions {
		t.Fatalf("replay diverged: %+v vs %+v", stats1, stats2)
	}
	// The replayed trace must match the recorded one action for action.
	trace2 := k2.Trace()
	if len(trace2) != len(trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trace), len(trace2))
	}
	for i := range trace {
		if trace[i] != trace2[i] {
			t.Fatalf("action %d differs: %#v vs %#v", i, trace[i], trace2[i])
		}
	}
}

func TestReplayRemainingAndHalt(t *testing.T) {
	r := NewReplay([]Action{Step{Proc: 0}, Deliver{Msg: 1}})
	if r.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", r.Remaining())
	}
	if a := r.Next(nil); a != (Step{Proc: 0}) {
		t.Fatalf("first action = %#v", a)
	}
	if a := r.Next(nil); a != (Deliver{Msg: 1}) {
		t.Fatalf("second action = %#v", a)
	}
	if a := r.Next(nil); a != (Halt{}) {
		t.Fatalf("exhausted replay returned %#v, want Halt", a)
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining after exhaustion = %d", r.Remaining())
	}
}

func TestReplayCopiesTrace(t *testing.T) {
	actions := []Action{Step{Proc: 0}}
	r := NewReplay(actions)
	actions[0] = Step{Proc: 9}
	if a := r.Next(nil); a != (Step{Proc: 0}) {
		t.Fatal("replay aliased the caller's slice")
	}
}

func TestFlipSequenceDeterministicPerSeed(t *testing.T) {
	flipsOf := func(seed int64) []int {
		k := NewKernel(Config{N: 1, Seed: seed})
		var flips []int
		k.Spawn(0, func(p *Proc) {
			for i := 0; i < 20; i++ {
				flips = append(flips, p.Flip(0.5))
			}
		})
		if _, err := k.Run(nil); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return flips
	}
	a, b, c := flipsOf(5), flipsOf(5), flipsOf(6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different flips")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical 20-flip sequences (suspicious)")
	}
}
