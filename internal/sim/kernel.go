package sim

import (
	"fmt"
	"math/rand"
)

// DefaultBudget is the default bound on adversary actions per run; it exists
// to convert livelocked schedules into ErrBudget instead of hangs.
const DefaultBudget = 200_000_000

// Config parameterises a kernel run.
type Config struct {
	// N is the system size (number of processors). Required, N >= 1.
	N int

	// Seed drives every PRNG in the run (processors and the fair
	// scheduler). Two runs with equal seeds, spawns, and adversary
	// decisions are identical.
	Seed int64

	// Budget bounds the total number of adversary actions; 0 means
	// DefaultBudget.
	Budget int64

	// MaxFaults bounds Crash actions. Negative means the model maximum
	// ⌈n/2⌉−1; 0 disallows crashes.
	MaxFaults int

	// T1 and T2 are the virtual-clock bounds of the Section 2 timing model:
	// the maximum message delay and the maximum gap between consecutive
	// computation steps. Zero values default to 1 each, making
	// Stats.VirtualTime the unit-latency makespan.
	T1, T2 int64

	// Record enables trace recording (see Kernel.Trace).
	Record bool
}

// Kernel is the deterministic discrete-event executor of the asynchronous
// message-passing model. Adversaries inspect it through the exported query
// methods; algorithms interact through Proc handles.
type Kernel struct {
	n         int
	seed      int64
	budget    int64
	maxFaults int
	t1, t2    int64

	procs []*Proc

	msgs     []*Message // indexed by MsgID; nil = no longer in flight
	inflight int
	nextMsg  MsgID
	global   msgQueue
	toProc   []msgQueue
	fromProc []msgQueue
	liveIDs  []MsgID // for O(1) uniform random picks

	yieldCh chan yieldEvent
	fairRng *rand.Rand
	cursor  int // fair-scheduler rotation cursor

	// stepQueue holds processors that plausibly have step work (mailbox
	// deliveries or fresh yields); the fair scheduler consumes it to avoid
	// an O(n) scan per action. A full scan remains as fallback for wait
	// predicates satisfied by out-of-band state changes.
	stepQueue   []ProcID
	inStepQueue []bool
	readyQueue  []ProcID // spawned participants not yet started

	stats        Stats
	participants int
	doneCount    int
	crashedAlgos int

	// Virtual (t1,t2)-clock with t1 = t2 = 1 (Section 2's time definition):
	// a delivery completes one unit after its send, a computation step one
	// unit after the processor's previous activity. clock[p] is processor
	// p's local completion time; msgTime[m] the earliest arrival of m.
	clocks []int64

	trace    []Action
	record   bool
	finished bool
	failure  error // first algorithm panic, surfaced from Run
}

// NewKernel builds a kernel with n processors and no participants. Attach
// reactive services with SetService and participants with Spawn before Run.
func NewKernel(cfg Config) *Kernel {
	if cfg.N < 1 {
		panic(fmt.Sprintf("sim: invalid system size %d", cfg.N))
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = DefaultBudget
	}
	maxFaults := cfg.MaxFaults
	if maxFaults < 0 {
		maxFaults = (cfg.N+1)/2 - 1
	}
	t1, t2 := cfg.T1, cfg.T2
	if t1 <= 0 {
		t1 = 1
	}
	if t2 <= 0 {
		t2 = 1
	}
	k := &Kernel{
		n:           cfg.N,
		seed:        cfg.Seed,
		budget:      budget,
		maxFaults:   maxFaults,
		t1:          t1,
		t2:          t2,
		procs:       make([]*Proc, cfg.N),
		toProc:      make([]msgQueue, cfg.N),
		fromProc:    make([]msgQueue, cfg.N),
		yieldCh:     make(chan yieldEvent),
		fairRng:     newRand(cfg.Seed, 0xFA1),
		record:      cfg.Record,
		inStepQueue: make([]bool, cfg.N),
		clocks:      make([]int64, cfg.N),
		stats: Stats{
			N:          cfg.N,
			CommCalls:  make([]int, cfg.N),
			SentBy:     make([]int64, cfg.N),
			ReceivedBy: make([]int64, cfg.N),
		},
	}
	for i := range k.procs {
		k.procs[i] = &Proc{
			id:     ProcID(i),
			k:      k,
			rng:    newRand(cfg.Seed, 0x9000+uint64(i)),
			state:  stateIdle,
			resume: make(chan struct{}),
		}
	}
	return k
}

// N returns the system size.
func (k *Kernel) N() int { return k.n }

// SetService installs the reactive message handler for processor id. Every
// processor that should acknowledge protocol messages needs one; the quorum
// layer installs its store on all n processors.
func (k *Kernel) SetService(id ProcID, s Service) {
	k.procs[id].service = s
}

// Spawn attaches a protocol participant to processor id. The algorithm does
// not begin executing until the adversary issues a Start action (or the fair
// scheduler does so on its behalf).
func (k *Kernel) Spawn(id ProcID, fn AlgoFunc) {
	p := k.procs[id]
	if p.algo != nil {
		panic(fmt.Sprintf("sim: processor %d already has an algorithm", id))
	}
	if fn == nil {
		panic("sim: Spawn requires a non-nil algorithm")
	}
	p.algo = fn
	p.state = stateReady
	k.readyQueue = append(k.readyQueue, id)
	k.participants++
	k.stats.Participants = k.participants
}

// Run drives the execution: it repeatedly asks the adversary for the next
// action and applies it, until every participant has returned (nil error),
// the budget is exhausted (ErrBudget), no progress is possible (ErrStuck),
// an action is illegal (wrapping ErrIllegalAction), or an algorithm body
// panicked. Run must be called exactly once per kernel. The returned Stats
// are a snapshot owned by the caller.
func (k *Kernel) Run(adv Adversary) (Stats, error) {
	if k.finished {
		return k.stats.clone(), fmt.Errorf("sim: kernel already ran")
	}
	defer k.shutdown()
	for k.doneCount+k.crashedAlgos < k.participants {
		if k.stats.Actions >= k.budget {
			return k.stats.clone(), ErrBudget
		}
		var a Action
		if adv != nil {
			a = adv.Next(k)
		}
		if _, halt := a.(Halt); halt {
			adv = nil // fair scheduler finishes the run
			continue
		}
		if a == nil {
			a = k.fairAction()
			if a == nil {
				return k.stats.clone(), ErrStuck
			}
		}
		if err := k.apply(a); err != nil {
			return k.stats.clone(), err
		}
		if k.record {
			k.trace = append(k.trace, a)
		}
		k.stats.Actions++
		if err := k.collectFailures(); err != nil {
			return k.stats.clone(), err
		}
	}
	k.finished = true
	return k.stats.clone(), nil
}

// collectFailures surfaces algorithm panics as run errors.
func (k *Kernel) collectFailures() error {
	return k.failure
}

// apply executes one adversary action, validating model legality.
func (k *Kernel) apply(a Action) error {
	switch act := a.(type) {
	case Deliver:
		return k.doDeliver(act.Msg)
	case Step:
		return k.doStep(act.Proc)
	case Start:
		return k.doStart(act.Proc)
	case Crash:
		return k.doCrash(act.Proc, act.DropOutgoing)
	default:
		return fmt.Errorf("%w: unknown action %T", ErrIllegalAction, a)
	}
}

func (k *Kernel) checkProc(id ProcID) error {
	if id < 0 || int(id) >= k.n {
		return fmt.Errorf("%w: processor %d out of range", ErrIllegalAction, id)
	}
	return nil
}

func (k *Kernel) doDeliver(id MsgID) error {
	m := k.lookup(id)
	if m == nil {
		return fmt.Errorf("%w: message %d is not in flight", ErrIllegalAction, id)
	}
	k.removeInflight(id)
	k.stats.Deliveries++
	k.stats.ReceivedBy[m.To]++
	dst := k.procs[m.To]
	if dst.state == stateCrashed {
		return nil // delivered into the void: crashed processors never step
	}
	dst.mailbox = append(dst.mailbox, m)
	k.noteSteppable(m.To)
	return nil
}

func (k *Kernel) doStep(id ProcID) error {
	if err := k.checkProc(id); err != nil {
		return err
	}
	p := k.procs[id]
	if p.state == stateCrashed {
		return fmt.Errorf("%w: step of crashed processor %d", ErrIllegalAction, id)
	}
	k.stats.Steps++
	// A resumption is timed by the arrival of the message that *enabled*
	// the wait condition, not by unrelated co-delivered traffic: the model
	// forces a step within t2 of any delivery, so a satisfied condition
	// cannot sit unprocessed behind later messages. consumeMailbox records
	// the enabling arrival.
	p.enableAt = -1
	waitPending := p.state == stateBlocked && p.wait != nil && !p.wait()
	k.consumeMailbox(p)
	if p.state == stateBlocked && (p.wait == nil || p.wait()) {
		t := k.clocks[p.id]
		if waitPending && p.enableAt > t {
			t = p.enableAt
		}
		k.clocks[p.id] = t + k.t2
		k.noteVirtualTime(t + k.t2)
		p.wait = nil
		p.resume <- struct{}{}
		k.awaitYield()
	}
	return nil
}

// noteVirtualTime tracks the execution makespan.
func (k *Kernel) noteVirtualTime(t int64) {
	if t > k.stats.VirtualTime {
		k.stats.VirtualTime = t
	}
}

func (k *Kernel) doStart(id ProcID) error {
	if err := k.checkProc(id); err != nil {
		return err
	}
	p := k.procs[id]
	if p.state != stateReady {
		return fmt.Errorf("%w: start of processor %d in state %v", ErrIllegalAction, id, p.state)
	}
	k.stats.Starts++
	k.clocks[id] += k.t2
	k.noteVirtualTime(k.clocks[id])
	go p.run()
	k.awaitYield()
	return nil
}

func (k *Kernel) doCrash(id ProcID, dropOutgoing bool) error {
	if err := k.checkProc(id); err != nil {
		return err
	}
	p := k.procs[id]
	if p.state == stateCrashed {
		return fmt.Errorf("%w: processor %d already crashed", ErrIllegalAction, id)
	}
	if k.stats.Crashes >= k.maxFaults {
		return fmt.Errorf("%w: fault budget %d exhausted", ErrIllegalAction, k.maxFaults)
	}
	k.stats.Crashes++
	if p.state == stateBlocked {
		k.kill(p)
	}
	if p.algo != nil && p.state != stateDone {
		k.crashedAlgos++
	}
	p.state = stateCrashed
	p.mailbox = nil
	if dropOutgoing {
		k.fromProc[id].each(k.alive, func(mid MsgID) bool {
			k.removeInflight(mid)
			return true
		})
	}
	return nil
}

// consumeMailbox delivers every pending message to the reactive service in
// arrival order, sending replies.
func (k *Kernel) consumeMailbox(p *Proc) {
	waitUnsatisfied := p.state == stateBlocked && p.wait != nil && !p.wait()
	for len(p.mailbox) > 0 {
		mb := p.mailbox
		p.mailbox = nil
		for _, m := range mb {
			if p.service == nil {
				continue
			}
			reply, ok := p.service.HandleMessage(m.From, m.Payload)
			if waitUnsatisfied && p.wait() {
				// This message satisfied the algorithm's wait condition:
				// its arrival bounds the resumption time.
				p.enableAt = m.sentAt + k.t1
				waitUnsatisfied = false
			}
			if ok {
				// The model bounds a reactive reply by arrival + t2: the
				// recipient's next step consumes the message no matter how
				// the adversary interleaves (Section 2); replies therefore
				// never chain through unrelated steps of the responder.
				at := m.sentAt + k.t1 + k.t2
				k.noteVirtualTime(at)
				k.sendAt(p.id, m.From, reply, at)
			}
		}
	}
}

// awaitYield blocks until the currently running algorithm goroutine parks or
// finishes, re-establishing the single-runner invariant.
func (k *Kernel) awaitYield() {
	ev := <-k.yieldCh
	if ev.done {
		if ev.proc.state != stateCrashed {
			ev.proc.state = stateDone
			k.doneCount++
		}
		return
	}
	ev.proc.state = stateBlocked
	ev.proc.yieldCount++
	k.noteSteppable(ev.proc.id)
}

// kill unwinds a parked algorithm goroutine (crash or shutdown).
func (k *Kernel) kill(p *Proc) {
	p.killed = true
	p.resume <- struct{}{}
	ev := <-k.yieldCh
	if !ev.done {
		panic("sim: killed goroutine yielded without finishing")
	}
}

// shutdown releases every parked goroutine so runs never leak them.
func (k *Kernel) shutdown() {
	for _, p := range k.procs {
		if p.state == stateBlocked {
			k.kill(p)
			p.state = stateCrashed
		}
	}
}

// send creates an in-flight message. Self-sends are delivered immediately
// into the local mailbox: a processor always observes its own state.
func (k *Kernel) send(from, to ProcID, payload any) {
	k.sendAt(from, to, payload, k.clocks[from])
}

// sendAt is send with an explicit virtual send time (reactive replies carry
// the arrival-derived time of the request they answer).
func (k *Kernel) sendAt(from, to ProcID, payload any, at int64) {
	k.stats.MessagesSent++
	k.stats.SentBy[from]++
	if sz, ok := payload.(WireSizer); ok {
		k.stats.PayloadBytes += int64(sz.WireSize())
	}
	m := &Message{ID: k.nextMsg, From: from, To: to, Payload: payload, sentAt: at}
	k.nextMsg++
	if from == to {
		k.msgs = append(k.msgs, nil) // keep msgs indexed by MsgID
		k.stats.Deliveries++
		k.stats.ReceivedBy[to]++
		k.procs[to].mailbox = append(k.procs[to].mailbox, m)
		k.noteSteppable(to)
		return
	}
	k.msgs = append(k.msgs, m)
	k.inflight++
	k.global.push(m.ID)
	k.toProc[to].push(m.ID)
	k.fromProc[from].push(m.ID)
	m.livePos = len(k.liveIDs)
	k.liveIDs = append(k.liveIDs, m.ID)
}

// lookup returns the in-flight message with the given ID, or nil. msgs is
// indexed directly by MsgID (self-sends occupy a nil placeholder slot).
func (k *Kernel) lookup(id MsgID) *Message {
	if id < 0 || int64(id) >= int64(len(k.msgs)) {
		return nil
	}
	return k.msgs[id]
}

// removeInflight drops a message from the live set and index structures.
func (k *Kernel) removeInflight(id MsgID) {
	m := k.msgs[id]
	if m == nil {
		return
	}
	k.msgs[id] = nil
	k.inflight--
	last := len(k.liveIDs) - 1
	k.liveIDs[m.livePos] = k.liveIDs[last]
	if mm := k.lookup(k.liveIDs[m.livePos]); mm != nil {
		mm.livePos = m.livePos
	}
	k.liveIDs = k.liveIDs[:last]
}

func (k *Kernel) alive(id MsgID) bool {
	return k.lookup(id) != nil
}

// fairAction computes the kernel's built-in fair fallback action: start any
// unstarted participant, otherwise deliver the globally oldest message,
// otherwise step (in rotating order) a processor with pending mailbox work
// or a resumable algorithm. Returns nil when nothing is enabled.
func (k *Kernel) fairAction() Action {
	for len(k.readyQueue) > 0 {
		id := k.readyQueue[0]
		if k.procs[id].state != stateReady {
			k.readyQueue = k.readyQueue[1:]
			continue
		}
		return Start{Proc: id}
	}
	return k.fairActionNoStart()
}

// fairActionNoStart is the fair fallback restricted to deliveries and steps.
func (k *Kernel) fairActionNoStart() Action {
	if id, ok := k.global.front(k.alive); ok {
		return Deliver{Msg: id}
	}
	return k.fairStepAction()
}

// fairStepAction returns a fair Step action only (no deliveries, no starts).
func (k *Kernel) fairStepAction() Action {
	for len(k.stepQueue) > 0 {
		id := k.stepQueue[0]
		k.stepQueue = k.stepQueue[1:]
		k.inStepQueue[id] = false
		if k.stepWouldWork(id) {
			return Step{Proc: id}
		}
	}
	// Fallback scan: catches wait predicates satisfied by state changes the
	// queue cannot observe (e.g. another processor's local variable).
	for i := 0; i < k.n; i++ {
		p := k.procs[(k.cursor+i)%k.n]
		if p.state == stateCrashed {
			continue
		}
		if k.stepWouldWork(p.id) {
			k.cursor = (int(p.id) + 1) % k.n
			return Step{Proc: p.id}
		}
	}
	return nil
}

// noteSteppable marks a processor as a step candidate for the fair
// scheduler.
func (k *Kernel) noteSteppable(id ProcID) {
	if !k.inStepQueue[id] {
		k.inStepQueue[id] = true
		k.stepQueue = append(k.stepQueue, id)
	}
}

// stepWouldWork reports whether a Step of id would consume mail or resume
// the algorithm.
func (k *Kernel) stepWouldWork(id ProcID) bool {
	p := k.procs[id]
	if p.state == stateCrashed {
		return false
	}
	return len(p.mailbox) > 0 || (p.state == stateBlocked && (p.wait == nil || p.wait()))
}

// Trace returns the recorded action sequence (Config.Record must be set).
// The slice is a copy.
func (k *Kernel) Trace() []Action {
	return append([]Action(nil), k.trace...)
}
