package sim

import "math/rand"

// splitmix64 advances the classic SplitMix64 generator once. It is used only
// to derive well-separated seeds for the per-processor and adversary PRNGs
// from the single kernel seed, so that streams do not correlate.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// deriveSeed produces a deterministic sub-seed for a named stream.
func deriveSeed(seed int64, stream uint64) int64 {
	return int64(splitmix64(uint64(seed) ^ splitmix64(stream)))
}

// newRand builds a deterministic PRNG for one stream of a kernel run.
func newRand(seed int64, stream uint64) *rand.Rand {
	return rand.New(rand.NewSource(deriveSeed(seed, stream)))
}
