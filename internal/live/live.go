package live

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/wire"
)

// SeedStride separates per-processor PRNG streams: consecutive processor
// seeds are spread across the 64-bit space by the splitmix64 golden-ratio
// increment, so sharded seeds never collide for realistic run counts.
// Exported because the campaign engine's run-level seed sharding must
// avoid aliasing with exactly this constant.
const SeedStride uint64 = 0x9E3779B97F4A7C15

// msgKind tags a quorum request.
type msgKind uint8

const (
	// propagateReq pushes register cells to the recipient, who merges them
	// and acknowledges (the paper's "propagate, v" message).
	propagateReq msgKind = iota + 1
	// collectReq requests the recipient's view of one register array (the
	// paper's "collect, v" message).
	collectReq
)

// request is one quorum message travelling to a server goroutine.
type request struct {
	kind    msgKind
	call    uint64       // caller's communicate-call ordinal (byte accounting)
	entries []rt.Entry   // propagateReq payload (treated as immutable)
	reg     string       // collectReq target register array
	reply   chan<- reply // per-call buffered channel; never blocks the server
}

// reply answers a request: an ack for propagateReq, a view for collectReq.
// from identifies the replying server — what reply-direction fault sampling
// keys on, and what dedups the duplicate replies retransmission induces.
type reply struct {
	from rt.ProcID
	view rt.View
}

// cellSlot is one register-array slot — a CAS cell holding the freshest
// entry written for its owner (owner-versioned: higher sequence numbers
// win; nil is ⊥, never written). Slots are allocated once per array (the
// backend knows n) and only the entry pointer moves. The pointed-to
// entries are *adopted*, never allocated: a propagate's one-entry payload
// is already allocated per call and shared immutably with every server
// goroutine (see Comm.Propagate), so the cell points into that payload
// and the whole merge path adds zero allocations.
type cellSlot struct {
	v atomic.Pointer[rt.Entry]
}

// regArray is one named register array with a CAS cell per processor
// beneath an RCU-published snapshot, the live-backend twin of the electd
// server's store (see internal/electd/regstore.go for the full memory-model
// argument): merges CAS the owner's cell and bump version; collects load
// the published snapshot with one atomic read and rebuild + republish only
// when a merge has won since it was built. Collect replies during a
// quiescent spell therefore share one immutable entry slice (and its
// precomputed wire size), and neither the server goroutine nor the
// algorithm goroutine ever takes a lock for register state — the paper's
// atomic-register model, made literal.
type regArray struct {
	version atomic.Uint64
	cells   []cellSlot // fixed length n; slots never move
	snap    atomic.Pointer[liveSnap]
}

// liveSnap is the RCU-published snapshot of one array: non-⊥ cells in
// owner order plus their precomputed total WireSize, valid at array
// version ver. Published snapshots are immutable.
type liveSnap struct {
	ver     uint64
	entries []rt.Entry
	size    int
}

// regDir is the immutable published register directory of one processor
// (name → array). Adding an array — once per register name — copies the
// directory and CASes the pointer.
type regDir = map[string]*regArray

// crashSignal unwinds a crashed processor's algorithm goroutine: the
// backend panics with it at the processor's next interaction (communicate,
// flip, await) after its crash time, and the runner recovers it — the
// algorithm code itself never observes the crash, exactly as in the model.
type crashSignal struct{ id rt.ProcID }

// System is one live run's processor set. Construct with NewSystem (or
// NewScenarioSystem to inject faults), run algorithm goroutines against
// Comm handles, then Shutdown.
type System struct {
	n        int
	plan     *fault.Plan
	procs    []*Proc
	serving  bool
	servers  sync.WaitGroup
	inflight sync.WaitGroup // delayed message deliveries still sleeping
	reqs     sync.WaitGroup // mailbox requests handed off but not yet served
	messages atomic.Int64
	bytes    atomic.Int64 // wire-codec bytes of all quorum traffic

	// rec is the election flight recorder of the current run (nil =
	// untraced) and traceID the election ID its spans carry; both are
	// installed by the runner before the algorithm goroutines start and
	// read only from those goroutines, so pooled reuse is race-free.
	rec     *trace.Recorder
	traceID uint64

	// start anchors the run's fault clock (UnixNano): partition windows are
	// elapsed-time checks, sampled on whatever goroutine is sending, so the
	// anchor is an atomic — message data flow gives the race detector no
	// happens-before edge to hang a plain field on. Stamped by StartClock
	// when the algorithms launch.
	start atomic.Int64
}

// NewSystem creates n processors, each with a running server goroutine, and
// deterministic per-processor PRNG streams derived from seed.
func NewSystem(n int, seed int64) *System {
	return NewScenarioSystem(n, seed, nil)
}

// NewScenarioSystem is NewSystem with a fault-injection plan (nil = none):
// the materialized crash schedule, link-delay distributions and slow sets
// of a fault.Scenario. Crash times are armed by the runner, not here — the
// clock starts when the algorithms do.
func NewScenarioSystem(n int, seed int64, plan *fault.Plan) *System {
	return newSystem(n, seed, plan, true)
}

// newSystem optionally skips the server goroutines: a TCP-transport run
// replaces the channel-backed quorum with electd servers, leaving the
// in-process mailboxes unused.
func newSystem(n int, seed int64, plan *fault.Plan, serve bool) *System {
	sys := &System{n: n, plan: plan, serving: serve, procs: make([]*Proc, n)}
	for i := 0; i < n; i++ {
		p := &Proc{
			id:  rt.ProcID(i),
			sys: sys,
			rng: rand.New(rand.NewSource(int64(uint64(seed) + uint64(i)*SeedStride))),
			// Capacity n absorbs the common case (each of ≤n participants
			// has one outstanding communicate call), but a descheduled
			// server can accumulate more: requests from calls that already
			// reached quorum elsewhere linger here. A full mailbox then
			// throttles broadcasting callers. That is backpressure, not a
			// deadlock risk — servers drain unconditionally and their
			// replies go to buffered per-call channels, so every send
			// eventually completes.
			inbox: make(chan request, n),
		}
		dir := regDir{}
		p.regs.Store(&dir)
		if plan != nil {
			// A separate delay-sampling PRNG, also algorithm-goroutine
			// owned: injected latency must not perturb the coin-flip
			// stream, so equal seeds keep equal flips across scenarios.
			p.frng = rand.New(rand.NewSource(int64(uint64(seed)+uint64(i)*SeedStride) ^ faultStreamSalt))
		}
		p.cond = sync.NewCond(&p.mu)
		sys.procs[i] = p
	}
	// A default fault-clock anchor; runners re-stamp it as the algorithms
	// launch so partition windows align with the crash timers.
	sys.start.Store(time.Now().UnixNano())
	if serve {
		for _, p := range sys.procs {
			sys.servers.Add(1)
			go p.serve()
		}
	}
	return sys
}

// faultStreamSalt decorrelates a processor's delay-sampling PRNG stream
// from its coin-flip stream (both are derived from the same sharded seed).
const faultStreamSalt = 0x3C6EF372FE94F82A

// replyStreamSalt seeds a client's reply-direction loss-sampling stream on
// the TCP transport: it is drawn on the pool's connection read loops —
// concurrent goroutines, behind a per-client mutex — so it cannot share
// the goroutine-owned frng, and the salt keeps it decorrelated from both
// the coin-flip and the send-side fault streams.
const replyStreamSalt uint64 = 0x94D049BB133111EB

// N returns the system size.
func (sys *System) N() int { return sys.n }

// Plan returns the system's fault-injection plan (nil when fault-free).
func (sys *System) Plan() *fault.Plan { return sys.plan }

// Crash fails processor id: its server goroutine keeps draining its mailbox
// but drops every request unanswered (messages to a crashed processor are
// lost), and its algorithm goroutine — if any — is unwound by a crashSignal
// panic at its next backend interaction. Quorum liveness is unaffected as
// long as at most ⌈n/2⌉−1 processors crash: every communicate call can
// still assemble ⌊n/2⌋+1 acknowledgments from the survivors.
func (sys *System) Crash(id rt.ProcID) {
	p := sys.procs[id]
	p.crashed.Store(true)
	p.down.Store(true)
	// Broadcast under the mutex so an algorithm goroutine between its
	// Await check and its cond.Wait cannot miss the wakeup.
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Recover revives processor id's replica half: its server goroutine
// resumes answering with whatever register state it held at the crash —
// the crash-recovery model of durable state surviving. The participant
// half stays dead: a crashed algorithm goroutine has unwound and a
// recovered processor does not re-enter an election it left, it only
// serves quorums again.
func (sys *System) Recover(id rt.ProcID) {
	sys.procs[id].down.Store(false)
}

// Crashed reports whether processor id has crashed.
func (sys *System) Crashed(id rt.ProcID) bool { return sys.procs[id].crashed.Load() }

// StartClock anchors the fault clock: partition windows and starvation
// deadlines count elapsed time from here. The runner stamps it as the
// algorithms launch.
func (sys *System) StartClock(t time.Time) { sys.start.Store(t.UnixNano()) }

// elapsed is the fault-clock reading; safe from any goroutine.
func (sys *System) elapsed() time.Duration {
	return time.Duration(time.Now().UnixNano() - sys.start.Load())
}

// Proc returns the handle of processor id.
func (sys *System) Proc(id rt.ProcID) *Proc { return sys.procs[id] }

// Messages returns the total number of point-to-point messages sent so far
// (requests and replies, as in the sim backend's accounting).
func (sys *System) Messages() int64 { return sys.messages.Load() }

// Bytes returns the total wire-codec payload bytes of all quorum traffic so
// far — the same internal/wire frame-body accounting as the sim backend's
// PayloadBytes statistic and the TCP transport's byte counters.
func (sys *System) Bytes() int64 { return sys.bytes.Load() }

// Shutdown stops the server goroutines and waits for them to drain. It must
// only be called after every algorithm goroutine has returned: closing the
// mailboxes while a communicate call is still broadcasting would panic.
// Deliveries still sleeping out an injected delay are waited for first, for
// the same reason — the servers outlive every in-flight message.
func (sys *System) Shutdown() {
	sys.inflight.Wait()
	for _, p := range sys.procs {
		close(p.inbox)
	}
	if sys.serving {
		sys.servers.Wait()
	}
}

// Proc is a processor handle of the live backend; it implements rt.Procer.
// Algorithm-facing methods must be called from the processor's single
// algorithm goroutine; the server goroutine touches only the lock-free
// register store and the mutex-guarded raw mailbox.
type Proc struct {
	id  rt.ProcID
	sys *System
	rng *rand.Rand
	// frng samples fault decisions (delays, request-direction loss) on the
	// algorithm goroutine; non-nil iff sys.plan is.
	frng *rand.Rand
	// crashed is the participant half of a crash: the algorithm goroutine
	// unwinds at its next step. down is the replica half: the server
	// goroutine drops requests. Crash sets both; Recover clears only down —
	// a recovered replica answers again, a crashed participant stays gone.
	crashed atomic.Bool
	down    atomic.Bool
	// noq, when non-nil, is closed once this processor is provably starved
	// of majority quorums and its grace period has run out; communicate
	// aborts with a fault.NoQuorumError. Installed by the runner before the
	// algorithm goroutine starts.
	noq   <-chan struct{}
	inbox chan request

	// regs is the RCU register directory: lock-free for every reader and
	// writer (see regArray). It lives outside the mutex — register state
	// is not Await-visible; see Await.
	regs atomic.Pointer[regDir]

	mu        sync.Mutex
	cond      *sync.Cond // broadcast whenever guarded state changes
	raw       []any      // generic Send mailbox, consumed via Await conditions
	published any

	commCalls int // algorithm-goroutine-local; read after the run joins
}

// ID implements rt.Procer.
func (p *Proc) ID() rt.ProcID { return p.id }

// N implements rt.Procer.
func (p *Proc) N() int { return p.sys.n }

// Rand implements rt.Procer: the processor's private PRNG, owned by the
// algorithm goroutine.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Send implements rt.Procer: it delivers payload into the recipient's raw
// mailbox and wakes any Await blocked there. Quorum traffic does not pass
// through here — Comm uses dedicated request/reply channels — but the
// primitive keeps the seam complete for algorithms written directly against
// Send/Await.
func (p *Proc) Send(to rt.ProcID, payload any) {
	t := p.sys.procs[to]
	t.mu.Lock()
	t.raw = append(t.raw, payload)
	t.cond.Broadcast()
	t.mu.Unlock()
	p.sys.messages.Add(1)
}

// Raw drains and returns the processor's raw mailbox. Call from the
// algorithm goroutine, typically after an Await on RawLen.
func (p *Proc) Raw() []any {
	p.mu.Lock()
	out := p.raw
	p.raw = nil
	p.mu.Unlock()
	return out
}

// rawLen returns the number of pending raw messages. It does not lock, so
// it is usable inside Await conditions (which run under the mutex).
func (p *Proc) rawLen() int { return len(p.raw) }

// AwaitRaw parks until at least want raw messages are pending.
func (p *Proc) AwaitRaw(want int) {
	p.Await(func() bool { return p.rawLen() >= want })
}

// Await implements rt.Procer: it parks the algorithm goroutine until cond()
// holds. The condition is evaluated under the processor's mutex and
// re-checked whenever guarded state changes (raw-message arrival, crash),
// so it must be a pure function of mutex-guarded processor-local state and
// must not itself take the mutex. Register state is NOT guarded state:
// merges are lock-free and wake nobody, so a condition must never read the
// register store — none of the paper's algorithms do (their only waiting
// primitive is the quorum wait inside communicate, which has its own
// channel-based signalling).
func (p *Proc) Await(cond func() bool) {
	if cond == nil {
		panic("live: Await requires a non-nil condition; use Pause")
	}
	p.mu.Lock()
	for !cond() {
		if p.crashed.Load() {
			p.mu.Unlock()
			panic(crashSignal{p.id})
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// maybeCrash unwinds the algorithm goroutine if the processor has crashed.
// Every algorithm-facing primitive calls it, so a crash becomes effective
// at the processor's next step — between steps the model cannot observe a
// crash anyway.
func (p *Proc) maybeCrash() {
	if p.crashed.Load() {
		panic(crashSignal{p.id})
	}
}

// Pause implements rt.Procer: on the live backend it simply yields the OS
// thread, inviting the scheduler to interleave other goroutines — the
// real-concurrency analogue of handing control to the adversary.
func (p *Proc) Pause() {
	p.maybeCrash()
	runtime.Gosched()
}

// Flip implements rt.Procer: a biased local coin flip, 1 with probability
// prob. Where the sim backend publishes the outcome to the adversary and
// yields, the live backend yields to the OS scheduler, preserving the
// "flip, then lose control" shape of the model. Under a scenario plan a
// slow processor sleeps out its step delay here — the flip is the
// algorithms' only purely local step.
func (p *Proc) Flip(prob float64) int {
	p.maybeCrash()
	if pl := p.sys.plan; pl != nil {
		if d := pl.StepDelay(p.frng, int(p.id)); d > 0 {
			time.Sleep(d)
		}
	}
	v := 0
	if p.rng.Float64() < prob {
		v = 1
	}
	runtime.Gosched()
	return v
}

// Publish implements rt.Procer. The mutex guards only the pointer swap:
// the published value's *fields* are still mutated by the algorithm
// goroutine without synchronization, so the contents (e.g. a *core.State's
// Round or Stage) must only be read after the run joins — there is no
// adversary on this backend to read them mid-run.
func (p *Proc) Publish(state any) {
	p.mu.Lock()
	p.published = state
	p.mu.Unlock()
}

// Published returns the last value passed to Publish. See Publish for the
// synchronization caveat on reading the value's fields mid-run.
func (p *Proc) Published() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.published
}

// CommCalls reports the number of communicate calls the processor has made;
// valid once its algorithm goroutine has returned.
func (p *Proc) CommCalls() int { return p.commCalls }

// array returns the register array for reg, creating and publishing it on
// first use. Lock-free: creation copies the directory and CASes the
// pointer, retrying if a concurrent creator won (and adopting its array).
func (p *Proc) array(reg string) *regArray {
	for {
		dirp := p.regs.Load()
		if arr := (*dirp)[reg]; arr != nil {
			return arr
		}
		next := make(regDir, len(*dirp)+1)
		for k, v := range *dirp {
			next[k] = v
		}
		arr := &regArray{cells: make([]cellSlot, p.sys.n)}
		next[reg] = arr
		if p.regs.CompareAndSwap(dirp, &next) {
			return arr
		}
	}
}

// merge applies an entry if it is newer than the local cell (writer
// versioning, identical to the sim backend's store), via a CAS retry loop
// on the owner's cell. Lock-free; safe from any goroutine. The entry is
// adopted by reference — e must stay valid and unmutated forever (request
// payloads satisfy this: they are allocated per propagate call and never
// reused), which is what keeps the merge path allocation-free.
func (p *Proc) merge(e *rt.Entry) {
	arr := p.array(e.Reg)
	s := &arr.cells[e.Owner]
	for {
		cur := s.v.Load()
		if cur != nil && e.Seq <= cur.Seq {
			return // stale: a newer (or equal) write already holds the cell
		}
		if s.v.CompareAndSwap(cur, e) {
			arr.version.Add(1)
			return
		}
	}
}

// snapshot returns the non-⊥ cells of reg as entries in owner order. The
// returned slice is an RCU-published immutable snapshot shared with every
// other reader of the same version — a winning merge replaces it rather
// than mutating it, so handing it to concurrent repliers is safe.
// Lock-free; safe from any goroutine.
func (p *Proc) snapshot(reg string) []rt.Entry {
	entries, _ := p.snapshotSized(reg)
	return entries
}

// snapshotSized is snapshot plus the snapshot's total entry WireSize,
// cached alongside it so per-reply byte accounting never re-walks the
// entries. The common case is one atomic load of the published snapshot;
// after a winning merge the caller rebuilds from the CAS cells and
// re-publishes. Version is loaded before the cells are gathered, so a
// snapshot tagged V contains every merge version V counted (Go atomics
// are sequentially consistent); at worst a build is fresher than its tag
// and the next reader rebuilds once more.
func (p *Proc) snapshotSized(reg string) ([]rt.Entry, int) {
	dirp := p.regs.Load()
	arr := (*dirp)[reg]
	if arr == nil {
		return nil, 0
	}
	ver := arr.version.Load()
	old := arr.snap.Load()
	if old != nil && old.ver == ver {
		return old.entries, old.size
	}
	// Sized for the worst case (every cell non-⊥) so the gather never
	// reallocates mid-append — one slice allocation per rebuild.
	entries := make([]rt.Entry, 0, len(arr.cells))
	size := 0
	for owner := range arr.cells {
		if ep := arr.cells[owner].v.Load(); ep != nil {
			entries = append(entries, *ep)
			size += ep.WireSize()
		}
	}
	if len(entries) == 0 {
		entries = nil
	}
	snap := &liveSnap{ver: ver, entries: entries, size: size}
	// Publish unless a fresher snapshot already landed: CAS from the
	// observed old value so concurrent rebuilds never clobber each other;
	// a lost race costs nothing — this build still serves this reply.
	if old == nil || old.ver <= ver {
		arr.snap.CompareAndSwap(old, snap)
	}
	return entries, size
}

// serve is the server goroutine: the reactive half of the processor. It
// drains the mailbox until Shutdown closes it, merging propagations and
// answering collects; between runs of a pooled system it simply parks on
// the empty mailbox. Replies go to per-call buffered channels sized for
// all n−1 repliers, so the server never blocks and the system cannot
// deadlock. A crashed processor's server keeps draining — senders must
// never block on a dead peer — but drops every request unanswered. Every
// drained request is marked served on sys.reqs, crashed or not, so
// quiescence (Reset, pool checkout) can wait for the mailboxes to empty.
// Reply sends are non-blocking: the per-call channels are buffered for all
// n−1 distinct repliers, so on a fault-free run a send never finds them
// full — but a retransmitted request (fault plans with partitions, flaky
// links or recovery) can draw a second reply from the same server, and an
// overflowing duplicate is simply dropped: loss, the model's prerogative,
// recovered by the next retransmission.
func (p *Proc) serve() {
	defer p.sys.servers.Done()
	for req := range p.inbox {
		if p.down.Load() {
			p.sys.reqs.Done()
			continue // crashed: the message is lost, no acknowledgment
		}
		switch req.kind {
		case propagateReq:
			for i := range req.entries {
				p.merge(&req.entries[i])
			}
			select {
			case req.reply <- reply{from: p.id}:
			default:
			}
			p.sys.bytes.Add(int64((&wire.Msg{Kind: wire.KindAck, Call: req.call, From: p.id}).WireSize()))
		case collectReq:
			entries, size := p.snapshotSized(req.reg)
			select {
			case req.reply <- reply{from: p.id, view: rt.View{From: p.id, Entries: entries}}:
			default:
			}
			// The reply's wire size from cached parts: the header of its
			// internal/wire equivalent plus the snapshot's cached entry
			// bytes — identical arithmetic to wire.Msg.WireSize without
			// re-walking the entries.
			p.sys.bytes.Add(int64(viewReplySize(req.call, p.id, req.reg, len(entries), size)))
		}
		p.sys.messages.Add(1) // the reply
		p.sys.reqs.Done()
	}
}

// viewReplySize is the exact internal/wire frame-body size of a KindView
// reply whose entries total entrySize bytes — wire.Msg.WireSize's formula
// with the entry walk replaced by the snapshot cache's precomputed sum.
func viewReplySize(call uint64, from rt.ProcID, reg string, entryCount, entrySize int) int {
	return 1 + // kind
		rt.UvarintSize(0) + // election (single-instance backend)
		rt.UvarintSize(call) +
		rt.UvarintSize(uint64(from)) +
		rt.UvarintSize(uint64(len(reg))) + len(reg) +
		rt.UvarintSize(uint64(entryCount)) + entrySize
}
