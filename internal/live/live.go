// Package live is the real-concurrency execution backend of the runtime
// seam (internal/rt): it runs the same leader-election algorithms as the
// deterministic discrete-event kernel (internal/sim + internal/quorum), but
// on real OS-scheduled goroutines with channel-backed best-effort broadcast
// and majority-quorum collect.
//
// Where the sim backend hands every interleaving decision to a strong
// adaptive adversary and measures virtual time, the live backend lets the Go
// scheduler interleave n server goroutines and k participant goroutines for
// real, and measures wall-clock time. The paper's safety guarantees (unique
// winner, at least one sift survivor) hold under *any* schedule, so they
// must — and do — survive genuine hardware contention; the conformance
// suite checks exactly that, under the race detector.
//
// Topology: every processor runs a server goroutine draining a buffered
// mailbox of quorum requests (the reactive half — the paper's standing
// assumption that all processors always reply). Participants additionally
// run an algorithm goroutine that issues communicate calls through Comm:
// a request is broadcast to all n−1 peers and the caller blocks until
// ⌊n/2⌋+1 processors (itself included) have answered, so any two
// communicate calls intersect — the quorum property every proof in the
// paper relies on. Replies beyond the quorum arrive late into an abandoned
// buffered channel, naturally reproducing the stale-view behaviour the
// adversary model abstracts.
package live

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rt"
)

// SeedStride separates per-processor PRNG streams: consecutive processor
// seeds are spread across the 64-bit space by the splitmix64 golden-ratio
// increment, so sharded seeds never collide for realistic run counts.
// Exported because the campaign engine's run-level seed sharding must
// avoid aliasing with exactly this constant.
const SeedStride uint64 = 0x9E3779B97F4A7C15

// msgKind tags a quorum request.
type msgKind uint8

const (
	// propagateReq pushes register cells to the recipient, who merges them
	// and acknowledges (the paper's "propagate, v" message).
	propagateReq msgKind = iota + 1
	// collectReq requests the recipient's view of one register array (the
	// paper's "collect, v" message).
	collectReq
)

// request is one quorum message travelling to a server goroutine.
type request struct {
	kind    msgKind
	entries []rt.Entry   // propagateReq payload (treated as immutable)
	reg     string       // collectReq target register array
	reply   chan<- reply // per-call buffered channel; never blocks the server
}

// reply answers a request: an ack for propagateReq, a view for collectReq.
type reply struct {
	view rt.View
}

// cell is one register-array slot: owner-versioned so stale propagations
// never overwrite fresh ones (higher sequence numbers win).
type cell struct {
	seq uint64
	val rt.Value
}

// regArray is one named register array with a cell per processor.
type regArray struct {
	cells []cell
}

// System is one live run's processor set. Construct with NewSystem, run
// algorithm goroutines against Comm handles, then Shutdown.
type System struct {
	n        int
	procs    []*Proc
	servers  sync.WaitGroup
	messages atomic.Int64
}

// NewSystem creates n processors, each with a running server goroutine, and
// deterministic per-processor PRNG streams derived from seed.
func NewSystem(n int, seed int64) *System {
	sys := &System{n: n, procs: make([]*Proc, n)}
	for i := 0; i < n; i++ {
		p := &Proc{
			id:  rt.ProcID(i),
			sys: sys,
			rng: rand.New(rand.NewSource(int64(uint64(seed) + uint64(i)*SeedStride))),
			// Capacity n absorbs the common case (each of ≤n participants
			// has one outstanding communicate call), but a descheduled
			// server can accumulate more: requests from calls that already
			// reached quorum elsewhere linger here. A full mailbox then
			// throttles broadcasting callers. That is backpressure, not a
			// deadlock risk — servers drain unconditionally and their
			// replies go to buffered per-call channels, so every send
			// eventually completes.
			inbox: make(chan request, n),
			regs:  make(map[string]*regArray),
		}
		p.cond = sync.NewCond(&p.mu)
		sys.procs[i] = p
	}
	for _, p := range sys.procs {
		sys.servers.Add(1)
		go p.serve()
	}
	return sys
}

// N returns the system size.
func (sys *System) N() int { return sys.n }

// Proc returns the handle of processor id.
func (sys *System) Proc(id rt.ProcID) *Proc { return sys.procs[id] }

// Messages returns the total number of point-to-point messages sent so far
// (requests and replies, as in the sim backend's accounting).
func (sys *System) Messages() int64 { return sys.messages.Load() }

// Shutdown stops the server goroutines and waits for them to drain. It must
// only be called after every algorithm goroutine has returned: closing the
// mailboxes while a communicate call is still broadcasting would panic.
func (sys *System) Shutdown() {
	for _, p := range sys.procs {
		close(p.inbox)
	}
	sys.servers.Wait()
}

// Proc is a processor handle of the live backend; it implements rt.Procer.
// Algorithm-facing methods must be called from the processor's single
// algorithm goroutine; the server goroutine only touches the mutex-guarded
// store and raw mailbox.
type Proc struct {
	id    rt.ProcID
	sys   *System
	rng   *rand.Rand
	inbox chan request

	mu        sync.Mutex
	cond      *sync.Cond // broadcast whenever guarded state changes
	regs      map[string]*regArray
	raw       []any // generic Send mailbox, consumed via Await conditions
	published any

	commCalls int // algorithm-goroutine-local; read after the run joins
}

// ID implements rt.Procer.
func (p *Proc) ID() rt.ProcID { return p.id }

// N implements rt.Procer.
func (p *Proc) N() int { return p.sys.n }

// Rand implements rt.Procer: the processor's private PRNG, owned by the
// algorithm goroutine.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Send implements rt.Procer: it delivers payload into the recipient's raw
// mailbox and wakes any Await blocked there. Quorum traffic does not pass
// through here — Comm uses dedicated request/reply channels — but the
// primitive keeps the seam complete for algorithms written directly against
// Send/Await.
func (p *Proc) Send(to rt.ProcID, payload any) {
	t := p.sys.procs[to]
	t.mu.Lock()
	t.raw = append(t.raw, payload)
	t.cond.Broadcast()
	t.mu.Unlock()
	p.sys.messages.Add(1)
}

// Raw drains and returns the processor's raw mailbox. Call from the
// algorithm goroutine, typically after an Await on RawLen.
func (p *Proc) Raw() []any {
	p.mu.Lock()
	out := p.raw
	p.raw = nil
	p.mu.Unlock()
	return out
}

// rawLen returns the number of pending raw messages. It does not lock, so
// it is usable inside Await conditions (which run under the mutex).
func (p *Proc) rawLen() int { return len(p.raw) }

// AwaitRaw parks until at least want raw messages are pending.
func (p *Proc) AwaitRaw(want int) {
	p.Await(func() bool { return p.rawLen() >= want })
}

// Await implements rt.Procer: it parks the algorithm goroutine until cond()
// holds. The condition is evaluated under the processor's mutex and
// re-checked whenever guarded state changes (message arrival, register
// merge), so it must be a pure function of processor-local state and must
// not itself take the mutex.
func (p *Proc) Await(cond func() bool) {
	if cond == nil {
		panic("live: Await requires a non-nil condition; use Pause")
	}
	p.mu.Lock()
	for !cond() {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Pause implements rt.Procer: on the live backend it simply yields the OS
// thread, inviting the scheduler to interleave other goroutines — the
// real-concurrency analogue of handing control to the adversary.
func (p *Proc) Pause() { runtime.Gosched() }

// Flip implements rt.Procer: a biased local coin flip, 1 with probability
// prob. Where the sim backend publishes the outcome to the adversary and
// yields, the live backend yields to the OS scheduler, preserving the
// "flip, then lose control" shape of the model.
func (p *Proc) Flip(prob float64) int {
	v := 0
	if p.rng.Float64() < prob {
		v = 1
	}
	runtime.Gosched()
	return v
}

// Publish implements rt.Procer. The mutex guards only the pointer swap:
// the published value's *fields* are still mutated by the algorithm
// goroutine without synchronization, so the contents (e.g. a *core.State's
// Round or Stage) must only be read after the run joins — there is no
// adversary on this backend to read them mid-run.
func (p *Proc) Publish(state any) {
	p.mu.Lock()
	p.published = state
	p.mu.Unlock()
}

// Published returns the last value passed to Publish. See Publish for the
// synchronization caveat on reading the value's fields mid-run.
func (p *Proc) Published() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.published
}

// CommCalls reports the number of communicate calls the processor has made;
// valid once its algorithm goroutine has returned.
func (p *Proc) CommCalls() int { return p.commCalls }

// array returns the register array for reg, creating it on first use.
// Callers must hold p.mu.
func (p *Proc) array(reg string) *regArray {
	arr := p.regs[reg]
	if arr == nil {
		arr = &regArray{cells: make([]cell, p.sys.n)}
		p.regs[reg] = arr
	}
	return arr
}

// merge applies an entry if it is newer than the local cell (writer
// versioning, identical to the sim backend's store). Callers must hold p.mu.
func (p *Proc) merge(e rt.Entry) {
	arr := p.array(e.Reg)
	if e.Seq > arr.cells[e.Owner].seq {
		arr.cells[e.Owner] = cell{seq: e.Seq, val: e.Val}
	}
}

// snapshotLocked copies the non-⊥ cells of reg into a fresh entry slice, in
// owner order. Callers must hold p.mu; the returned slice is private to the
// caller and its values are shared immutables.
func (p *Proc) snapshotLocked(reg string) []rt.Entry {
	arr := p.regs[reg]
	if arr == nil {
		return nil
	}
	var out []rt.Entry
	for owner, c := range arr.cells {
		if c.seq > 0 {
			out = append(out, rt.Entry{Reg: reg, Owner: rt.ProcID(owner), Seq: c.seq, Val: c.val})
		}
	}
	return out
}

// serve is the server goroutine: the reactive half of the processor. It
// drains the mailbox until Shutdown closes it, merging propagations and
// answering collects. Replies go to per-call buffered channels sized for
// all n−1 repliers, so the server never blocks and the system cannot
// deadlock.
func (p *Proc) serve() {
	defer p.sys.servers.Done()
	for req := range p.inbox {
		switch req.kind {
		case propagateReq:
			p.mu.Lock()
			for _, e := range req.entries {
				p.merge(e)
			}
			p.cond.Broadcast()
			p.mu.Unlock()
			req.reply <- reply{}
		case collectReq:
			p.mu.Lock()
			v := rt.View{From: p.id, Entries: p.snapshotLocked(req.reg)}
			p.mu.Unlock()
			req.reply <- reply{view: v}
		}
		p.sys.messages.Add(1) // the reply
	}
}
