package live

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rt"
)

// TestSystemPoolRecyclesAndResets: Put/Get hands back the same System,
// fully reset — registers empty, call counters zeroed, crash flags down —
// with its server goroutines still parked on their mailboxes.
func TestSystemPoolRecyclesAndResets(t *testing.T) {
	const n = 4
	pool := NewSystemPool(n, true)
	defer pool.Close()

	sys := pool.Get(1, nil)
	c := NewComm(sys.Proc(0))
	c.Propagate("r", "dirty")
	views := c.Collect("r")
	if len(views) != n/2+1 {
		t.Fatalf("collect returned %d views, want %d", len(views), n/2+1)
	}
	sys.Crash(1)
	pool.Put(sys)
	if pool.Idle() != 1 {
		t.Fatalf("Idle() = %d, want 1", pool.Idle())
	}

	got := pool.Get(2, nil)
	if got != sys {
		t.Fatal("pool built a fresh system instead of recycling")
	}
	if pool.Idle() != 0 {
		t.Fatalf("Idle() after checkout = %d, want 0", pool.Idle())
	}
	if got.Crashed(1) {
		t.Fatal("crash flag survived the reset")
	}
	if calls := got.Proc(0).CommCalls(); calls != 0 {
		t.Fatalf("CommCalls after reset = %d, want 0", calls)
	}
	// The recycled system's registers must be construction-fresh: a collect
	// on the previously dirtied register sees only empty views.
	c2 := NewComm(got.Proc(2))
	for _, v := range c2.Collect("r") {
		if len(v.Entries) != 0 {
			t.Fatalf("recycled system leaked register state: %+v", v.Entries)
		}
	}
	pool.Put(got)
}

// TestResetMatchesFreshSeeding: a recycled system's PRNG streams are
// indistinguishable from a freshly constructed system's — equal seeds give
// equal coin flips whether the System came from NewSystem or the pool, so
// pooling never perturbs campaign statistics.
func TestResetMatchesFreshSeeding(t *testing.T) {
	const n, seed = 3, 42
	fresh := NewSystem(n, seed)
	defer fresh.Shutdown()

	pool := NewSystemPool(n, true)
	defer pool.Close()
	sys := pool.Get(7, nil) // a different seed first, to dirty the streams
	for i := 0; i < n; i++ {
		sys.Proc(rt.ProcID(i)).Rand().Int63()
	}
	pool.Put(sys)
	sys = pool.Get(seed, nil)
	defer pool.Put(sys)

	for i := 0; i < n; i++ {
		want := fresh.Proc(rt.ProcID(i)).Rand()
		got := sys.Proc(rt.ProcID(i)).Rand()
		for d := 0; d < 16; d++ {
			if w, g := want.Int63(), got.Int63(); w != g {
				t.Fatalf("proc %d draw %d: pooled %d != fresh %d", i, d, g, w)
			}
		}
	}
}

// TestPooledElectionsWithCrashScenario: crash-plan runs ride the pool too —
// checkout fully resets a recycled system (crashed slots are dropped flags,
// their serve goroutines never exited), so consecutive faulty elections on
// one pooled system stay safe and live.
func TestPooledElectionsWithCrashScenario(t *testing.T) {
	const n = 5
	pool := NewSystemPool(n, true)
	defer pool.Close()
	sawCrash := false
	for i := 0; i < 6; i++ {
		res, err := Elect(Config{N: n, Seed: int64(i + 1), Scenario: fault.CrashOne(), Pool: pool})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(res.Crashed) > 0 {
			sawCrash = true
			if res.Winner >= 0 && res.Decisions[res.Winner] != core.Win {
				t.Fatalf("run %d: inconsistent winner bookkeeping: %+v", i, res)
			}
		} else if res.Winner < 0 {
			t.Fatalf("run %d: no winner without crashes", i)
		}
	}
	if pool.Idle() != 1 {
		t.Fatalf("Idle() = %d, want 1 (every run reused one system)", pool.Idle())
	}
	_ = sawCrash // crash timing is scheduling-dependent; liveness is the assertion
}

// TestPoolConfigValidation: a pool that does not match the run's size or
// substrate is rejected before anything runs.
func TestPoolConfigValidation(t *testing.T) {
	pool := NewSystemPool(3, true)
	defer pool.Close()
	if _, err := Elect(Config{N: 4, Seed: 1, Pool: pool}); err == nil {
		t.Fatal("size-mismatched pool accepted")
	}
	if _, err := Elect(Config{N: 3, Seed: 1, Transport: TransportTCP, Pool: pool}); err == nil {
		t.Fatal("substrate-mismatched pool accepted")
	}
}
