package live_test

// Chaos-family conformance: partitions, crash-recovery and flaky links on
// both transports. The contract under test is the one the chaos grid
// enforces in CI — a unique winner among the survivors, typed no-quorum
// aborts only for clients the fault plan provably starved, and fault
// injection scoped to its own election on shared clusters. CI runs this
// file under the race detector.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/electd"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/rt"
	"repro/internal/transport"
)

// transports under chaos test. UDP rides its default retransmit/dedup
// reliability layer here: injected loss stacks on top of real datagram
// loss, so these are the liveness tests for retransmission itself.
var chaosTransports = []live.Transport{live.TransportChan, live.TransportTCP, live.TransportUDP}

// electValid runs one election and applies the chaos validity contract:
// no error (two winners or an undecided return would be one), every
// participant accounted for, and no electable participant starved.
func electValid(t *testing.T, cfg live.Config) live.Result {
	t.Helper()
	res, err := live.Elect(cfg)
	if err != nil {
		t.Fatalf("%s/%s seed %d: %v", cfg.Scenario.Name, cfg.Transport, cfg.Seed, err)
	}
	k := cfg.K
	if k == 0 {
		k = cfg.N
	}
	if got := len(res.Decisions) + len(res.Crashed) + len(res.NoQuorum); got != k {
		t.Fatalf("%s/%s seed %d: %d of %d participants accounted for",
			cfg.Scenario.Name, cfg.Transport, cfg.Seed, got, k)
	}
	plan, err := cfg.Scenario.Plan(cfg.N, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range res.NoQuorum {
		if plan == nil || plan.Electable(int(id)) {
			t.Fatalf("%s/%s seed %d: electable participant %d aborted with NoQuorumError",
				cfg.Scenario.Name, cfg.Transport, cfg.Seed, id)
		}
	}
	return res
}

// TestChaosPartitionHeals: a partition that heals within the run must not
// cost the election — retransmission carries the cut-off clients over the
// window, and every participant decides: unique winner, nobody starved.
func TestChaosPartitionHeals(t *testing.T) {
	for _, tr := range chaosTransports {
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				res := electValid(t, live.Config{
					N: 8, Seed: seed, Scenario: fault.PartitionHeal(), Transport: tr,
				})
				if res.Winner < 0 {
					t.Fatalf("seed %d: no winner under a healing partition (crashed=%v starved=%v)",
						seed, res.Crashed, res.NoQuorum)
				}
				if len(res.NoQuorum) > 0 {
					t.Fatalf("seed %d: participants %v starved under a healing partition", seed, res.NoQuorum)
				}
			}
		})
	}
}

// TestChaosPartitionMinorityTyped: a never-healing partition with the
// client on the minority side. Processor 0 is pinned there by SideMinority,
// so it must surface the typed no-quorum outcome — and never a second
// winner (electValid fails on Elect's two-winner error) nor a silent hang.
func TestChaosPartitionMinorityTyped(t *testing.T) {
	sc := fault.Scenario{Name: "cut-minority", NoQuorumOK: true,
		Partition: &fault.PartitionSpec{Start: 100 * time.Microsecond,
			Minority: fault.MinorityMax, Clients: fault.SideMinority}}
	for _, tr := range chaosTransports {
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				res := electValid(t, live.Config{N: 8, Seed: seed, Scenario: sc, Transport: tr})
				inNoQuorum := false
				for _, id := range res.NoQuorum {
					if id == 0 {
						inNoQuorum = true
					}
				}
				// Processor 0 is provably starved from Start on; unless it
				// finished the whole election inside the first 100µs (it
				// then decided before the cut — still valid), it must land
				// in NoQuorum, not hang and not decide late.
				if !inNoQuorum {
					if _, decided := res.Decisions[0]; !decided {
						t.Fatalf("seed %d: minority client 0 neither decided nor typed-aborted", seed)
					}
				}
			}
		})
	}
}

// TestChaosPartitionMajorityElects: the complementary conformance case — a
// never-healing partition whose minority is drawn from the high ids only
// (SideMajority). With k=4 participants on an n=8 system every client sits
// on the majority side, so all of them decide and one wins: the partition
// is invisible to electability, only to the dead replicas.
func TestChaosPartitionMajorityElects(t *testing.T) {
	for _, tr := range chaosTransports {
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				res := electValid(t, live.Config{
					N: 8, K: 4, Seed: seed, Scenario: fault.PartitionMajority(), Transport: tr,
				})
				if len(res.NoQuorum) > 0 {
					t.Fatalf("seed %d: majority-side clients %v starved", seed, res.NoQuorum)
				}
				if res.Winner < 0 {
					t.Fatalf("seed %d: no winner among majority-side clients", seed)
				}
				if len(res.Decisions) != 4 {
					t.Fatalf("seed %d: %d of 4 clients decided", seed, len(res.Decisions))
				}
			}
		})
	}
}

// TestChaosCrashRecovery: crash victims' replicas rejoin mid-run; the
// election must complete validly with the recovered quorum members
// answering retransmitted requests.
func TestChaosCrashRecovery(t *testing.T) {
	for _, tr := range chaosTransports {
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				res := electValid(t, live.Config{
					N: 8, Seed: seed, Scenario: fault.CrashRecovery(), Transport: tr,
				})
				if res.Winner < 0 && len(res.Crashed) == 0 {
					t.Fatalf("seed %d: no winner and no crashes", seed)
				}
				if len(res.NoQuorum) > 0 {
					t.Fatalf("seed %d: participants %v starved under recovering crashes", seed, res.NoQuorum)
				}
			}
		})
	}
}

// TestChaosFlakyLinks: per-link asymmetric loss on both transports —
// requests dropped at the send seam, replies at the receive seam — must
// never cost safety or liveness: retransmission redraws the coin until the
// quorum assembles.
func TestChaosFlakyLinks(t *testing.T) {
	for _, sc := range []fault.Scenario{fault.Flaky(), fault.FlakyAsym()} {
		for _, tr := range chaosTransports {
			t.Run(fmt.Sprintf("%s/%s", sc.Name, tr), func(t *testing.T) {
				t.Parallel()
				for seed := int64(1); seed <= 3; seed++ {
					res := electValid(t, live.Config{N: 8, Seed: seed, Scenario: sc, Transport: tr})
					if res.Winner < 0 {
						t.Fatalf("seed %d: no winner under flaky links", seed)
					}
					if len(res.NoQuorum) > 0 {
						t.Fatalf("seed %d: participants %v starved under sub-certain loss", seed, res.NoQuorum)
					}
				}
			})
		}
	}
}

// TestChaosSharedClusterBlastRadius: a partitioned election multiplexed on
// a shared electd cluster must not perturb its siblings — the partition is
// injected at the client side, scoped to one election ID, so concurrent
// fault-free elections on the same servers all elect cleanly.
func TestChaosSharedClusterBlastRadius(t *testing.T) {
	const n, siblings = 8, 3
	nw := transport.NewTCP()
	cluster, err := electd.NewCluster(nw, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	sc := fault.Scenario{Name: "cut-minority", NoQuorumOK: true,
		Partition: &fault.PartitionSpec{Start: 100 * time.Microsecond,
			Minority: fault.MinorityMax, Clients: fault.SideMinority}}

	type out struct {
		label string
		res   live.Result
		err   error
	}
	results := make(chan out, siblings+1)
	var wg sync.WaitGroup
	launch := func(label string, cfg live.Config) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := live.Elect(cfg)
			results <- out{label, res, err}
		}()
	}
	launch("chaos", live.Config{
		N: n, Seed: 11, Scenario: sc, Transport: live.TransportTCP,
		Cluster: cluster, ElectionID: cluster.NextElectionID(),
	})
	for j := 0; j < siblings; j++ {
		launch(fmt.Sprintf("sibling-%d", j), live.Config{
			N: n, Seed: int64(100 + j), Transport: live.TransportTCP,
			Cluster: cluster, ElectionID: cluster.NextElectionID(),
		})
	}
	wg.Wait()
	close(results)

	for o := range results {
		if o.err != nil {
			t.Fatalf("%s: %v", o.label, o.err)
		}
		if o.label == "chaos" {
			// The partitioned election obeys its own contract; its minority
			// clients may starve, the rest agree on at most one winner.
			plan, _ := sc.Plan(n, 11)
			for _, id := range o.res.NoQuorum {
				if plan.Electable(int(id)) {
					t.Fatalf("chaos: electable participant %d starved", id)
				}
			}
			continue
		}
		// Siblings share only the servers, not the faults: each must elect
		// a winner with zero crashes and zero starvation.
		if o.res.Winner < 0 || len(o.res.Crashed) > 0 || len(o.res.NoQuorum) > 0 {
			t.Fatalf("%s: broken by a sibling's partition: winner=%d crashed=%v starved=%v",
				o.label, o.res.Winner, o.res.Crashed, o.res.NoQuorum)
		}
	}
}

// TestChaosNoQuorumIsTyped: under total permanent loss every client owes
// the caller a typed outcome — all K participants land in NoQuorum, the
// error is fault.NoQuorumError (not a hang, not a mystery panic), and the
// run still returns cleanly within the grace window's order of magnitude.
func TestChaosNoQuorumIsTyped(t *testing.T) {
	blackout := fault.Scenario{Name: "blackout", LossProb: 1, LossLinks: fault.AllLinks, NoQuorumOK: true}
	for _, tr := range chaosTransports {
		t.Run(string(tr), func(t *testing.T) {
			t.Parallel()
			res, err := live.Elect(live.Config{N: 5, Seed: 2, Scenario: blackout, Transport: tr})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.NoQuorum) != 5 {
				t.Fatalf("NoQuorum=%v, want all 5 participants", res.NoQuorum)
			}
			if res.Winner != -1 || len(res.Decisions) != 0 || len(res.Crashed) != 0 {
				t.Fatalf("blackout run produced winner=%d decisions=%v crashed=%v",
					res.Winner, res.Decisions, res.Crashed)
			}
			for i, id := range res.NoQuorum {
				if id != rt.ProcID(i) {
					t.Fatalf("NoQuorum not in id order: %v", res.NoQuorum)
				}
			}
		})
	}
}
