package live

import (
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Comm is the live backend's communicate handle; it implements rt.Comm for
// one processor. Each call broadcasts a request to all n−1 peers' server
// mailboxes and blocks until a majority quorum (the caller included) has
// answered, exactly mirroring the [ABND95] primitive the paper builds on.
// Methods must be called from the processor's algorithm goroutine.
type Comm struct {
	p     *Proc
	round int32 // current protocol round, for span attribution (SetRound)

	// Single-goroutine arena, reused across communicate calls: the reply
	// collection scratch, the views Collect hands back, and the per-call
	// replier-dedup bitmap the fault path uses. Collect's return value is
	// valid until the processor's next communicate call, per the rt.Comm
	// contract — the entries inside stay valid, they are shared immutable
	// snapshots.
	out   []reply
	views []rt.View
	seen  []bool
}

// NewComm builds the communicate handle for an algorithm running on p.
func NewComm(p *Proc) *Comm { return &Comm{p: p} }

// Proc implements rt.Comm.
func (c *Comm) Proc() rt.Procer { return c.p }

// SetRound records the protocol round in progress, so subsequent spans
// carry it. Tracing metadata only — never read by the quorum protocol.
// Must be called from the processor's algorithm goroutine.
func (c *Comm) SetRound(r int) { c.round = int32(r) }

// QuorumSize implements rt.Comm: ⌊n/2⌋+1.
func (c *Comm) QuorumSize() int { return c.p.sys.n/2 + 1 }

// Propagate implements rt.Comm: bump the caller's own cell of reg to val,
// then push the new cell to a quorum. One communicate call. The own-cell
// bump is a CAS like any other merge — the algorithm goroutine is the only
// writer that *increments* its own sequence, but a retransmitted propagate
// of an older own entry can race in through the server goroutine, and the
// CAS keeps writer versioning exact either way.
func (c *Comm) Propagate(reg string, val rt.Value) {
	p := c.p
	arr := p.array(reg)
	s := &arr.cells[p.id]
	// The one-entry payload is allocated per call on purpose, and it is the
	// *only* allocation of the whole merge path: requests travel to the
	// server goroutines by reference, a straggler server may read the
	// entries long after this call returned, and the own cell below (plus
	// any peer cell this entry wins) adopts a pointer into this very slice —
	// so the backing array must never be reused across calls.
	payload := []rt.Entry{{Reg: reg, Owner: p.id, Seq: 1, Val: val}}
	e := &payload[0]
	for {
		cur := s.v.Load()
		if cur != nil {
			// Mutating the unpublished entry is safe: nobody can see it
			// until the CAS below wins.
			e.Seq = cur.Seq + 1
		}
		if s.v.CompareAndSwap(cur, e) {
			arr.version.Add(1)
			break
		}
	}
	c.communicate(request{kind: propagateReq, reg: reg, entries: payload})
}

// Collect implements rt.Comm: gather the register-array views of a quorum,
// the caller's own store included, and return them. One communicate call.
// The returned slice is scratch reused by this handle: it is valid until
// the processor's next communicate call.
func (c *Comm) Collect(reg string) []rt.View {
	p := c.p
	own := rt.View{From: p.id, Entries: p.snapshot(reg)}
	c.views = c.views[:0]
	c.views = append(c.views, own)
	for _, r := range c.communicate(request{kind: collectReq, reg: reg}) {
		c.views = append(c.views, r.view)
	}
	return c.views
}

// communicate broadcasts req to every peer and waits for quorum−1 replies
// (the caller's local effect is the quorum's first member). The reply
// channel is buffered for all n−1 eventual repliers: the quorum wait reads
// only the first quorum−1, and stragglers land in the abandoned buffer
// without ever blocking a server — that asymmetry is what gives live runs
// their stale-view, adversary-like interleavings. The returned reply slice
// is scratch, valid until the next communicate call.
//
// Under a scenario plan each outgoing message may carry an injected delay
// (link latency, slow-processor tax, reordering); the delivery then rides a
// helper goroutine so one slow link never stalls the rest of the broadcast.
// With only crashes and delays the quorum wait needs no fault handling:
// at most ⌈n/2⌉−1 crashes leave at least ⌊n/2⌋ live peers answering every
// delivered request, exactly the quorum−1 replies awaited here. Partitions,
// flaky links and crash-recovery break that arithmetic — a message (or its
// reply) can be lost while its server is, or becomes, able to answer — so
// under those plans the wait retransmits the request on the plan's tick,
// dedups the duplicate replies by sender, samples reply-direction loss at
// receipt (the chan analogue of dropping a reply on the wire), and aborts
// with a typed fault.NoQuorumError once the plan has provably starved this
// processor of majority quorums and the grace period has passed.
func (c *Comm) communicate(req request) []reply {
	p := c.p
	p.maybeCrash()
	p.commCalls++
	req.call = uint64(p.commCalls)
	n := p.sys.n
	need := c.QuorumSize() - 1
	if need == 0 {
		// Single-processor system: the local effect already is a quorum.
		// Still yield once so solo runs keep a scheduling point per call,
		// as the sim backend does.
		runtime.Gosched()
		return nil
	}
	ch := make(chan reply, n-1)
	req.reply = ch
	// Byte accounting uses the request's internal/wire equivalent, so the
	// channel backend reports the same bit complexity the codec would put
	// on a socket (and the sim kernel's PayloadBytes measures).
	wk := wire.KindCollect
	if req.kind == propagateReq {
		wk = wire.KindPropagate
	}
	reqSize := int64((&wire.Msg{Kind: wk, Call: req.call, From: p.id, Reg: req.reg, Entries: req.entries}).WireSize())
	pl := p.sys.plan
	rec := p.sys.rec
	broadcast := func() {
		for j := 0; j < n; j++ {
			if rt.ProcID(j) == p.id {
				continue
			}
			inbox := p.sys.procs[j].inbox
			p.sys.messages.Add(1)
			p.sys.bytes.Add(reqSize)
			if pl.DropMsg(p.frng, int(p.id), j, p.sys.elapsed()) {
				continue // lost on the wire: sent, never delivered
			}
			// Booked as outstanding before the hand-off (delayed or not), so
			// quiescence waits never miss a request that is still in flight.
			p.sys.reqs.Add(1)
			if d := pl.SendDelay(p.frng, int(p.id), j); d > 0 {
				// Delayed delivery. The inflight group lets Shutdown wait for
				// stragglers before closing the mailboxes.
				p.sys.inflight.Add(1)
				go func() {
					defer p.sys.inflight.Done()
					time.Sleep(d)
					inbox <- req
				}()
				continue
			}
			inbox <- req
		}
	}
	var sendT0, waitT0 int64
	if rec != nil {
		sendT0 = trace.Now()
	}
	broadcast()
	if rec != nil {
		waitT0 = trace.Now()
		rec.Record(p.sys.traceID, c.round, trace.PSend, sendT0, waitT0-sendT0, int64(n-1))
	}
	if !pl.NeedsRetransmit() && p.noq == nil {
		// The bare wait: every reply counts, nothing to resend or abort.
		if cap(c.out) < need {
			c.out = make([]reply, need)
		}
		out := c.out[:need]
		for i := range out {
			out[i] = <-ch
		}
		if rec != nil {
			rec.Record(p.sys.traceID, c.round, trace.PQuorumWait, waitT0, trace.Now()-waitT0, int64(need))
		}
		p.maybeCrash()
		return out
	}

	var tickC <-chan time.Time
	if pl.NeedsRetransmit() {
		tick := time.NewTicker(pl.RetransmitTick())
		defer tick.Stop()
		tickC = tick.C
	}
	if cap(c.seen) < n {
		c.seen = make([]bool, n)
	}
	seen := c.seen[:n]
	for i := range seen {
		seen[i] = false
	}
	out := c.out[:0]
	for len(out) < need {
		select {
		case r := <-ch:
			f := int(r.from)
			if seen[f] {
				continue // duplicate answer drawn by a retransmission
			}
			// Reply-direction loss, sampled at receipt — where the reply
			// would have vanished on a real wire. An undropped reply from a
			// dropped server can still arrive later via retransmission.
			if pl.DropMsg(p.frng, f, int(p.id), p.sys.elapsed()) {
				continue
			}
			seen[f] = true
			out = append(out, r)
		case <-tickC:
			if rec != nil {
				rec.Event(p.sys.traceID, c.round, trace.PRetransmit, int64(n-1))
			}
			broadcast()
		case <-p.noq:
			panic(&fault.NoQuorumError{Proc: int(p.id)})
		}
	}
	if rec != nil {
		rec.Record(p.sys.traceID, c.round, trace.PQuorumWait, waitT0, trace.Now()-waitT0, int64(need))
	}
	c.out = out // keep the grown scratch for the next call
	p.maybeCrash()
	return out
}
