package live_test

// TCP-transport conformance: the same elections that run over the
// in-process channel substrate must elect a unique winner when every
// communicate call crosses loopback TCP sockets to electd quorum servers —
// including under the fault presets, which is the acceptance bar of the
// network subsystem: crash-minority over real connections, race-clean.
// CI runs this file under the race detector with a short timeout
// (go test -race -run TestTCP ./internal/live/).

import (
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/transport"
)

// TestTCPConformanceElection: unique-winner safety over loopback TCP across
// the size grid, for both election algorithms.
func TestTCPConformanceElection(t *testing.T) {
	grid := []struct{ n, k int }{
		{1, 0}, {2, 0}, {3, 0}, {5, 0}, {8, 0}, {13, 0}, {8, 3},
	}
	for _, algo := range []live.Algorithm{live.AlgoPoisonPill, live.AlgoTournament} {
		for _, g := range grid {
			if algo == live.AlgoTournament && g.n > 8 {
				continue // tournament matches are costlier per round
			}
			for _, seed := range []int64{1, 2} {
				k := g.k
				if k == 0 {
					k = g.n
				}
				label := fmt.Sprintf("%s n=%d k=%d seed=%d", algo, g.n, k, seed)
				res, err := live.Elect(live.Config{
					N: g.n, K: g.k, Seed: seed, Algorithm: algo, Transport: live.TransportTCP,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				winners := 0
				for id, d := range res.Decisions {
					if d == core.Win {
						winners++
						if id != res.Winner {
							t.Fatalf("%s: winner %d but %d decided WIN", label, res.Winner, id)
						}
					}
				}
				if winners != 1 || len(res.Decisions) != k {
					t.Fatalf("%s: winners=%d decisions=%d", label, winners, len(res.Decisions))
				}
				if res.Time <= 0 || res.Messages <= 0 || res.Bytes <= 0 {
					t.Fatalf("%s: degenerate metrics time=%d messages=%d bytes=%d",
						label, res.Time, res.Messages, res.Bytes)
				}
			}
		}
	}
}

// TestTCPCrashMinorityPreset is the subsystem's acceptance test: an
// election over loopback TCP — electd servers plus participant goroutines
// speaking the wire codec over real sockets — under the crash-minority
// fault preset (the full ⌈n/2⌉−1 budget at randomized times, crashing
// server connections and participants alike) still elects a unique winner
// among the survivors, and a winnerless run implies the linearized winner
// itself crashed.
func TestTCPCrashMinorityPreset(t *testing.T) {
	sc := fault.CrashMinority()
	sc.CrashWindow = 1500 * time.Microsecond // inside TCP-run wall-clock span
	for _, n := range []int{3, 5, 8, 9} {
		for _, seed := range []int64{1, 2, 3} {
			label := fmt.Sprintf("n=%d seed=%d", n, seed)
			res, err := live.Elect(live.Config{
				N: n, Seed: seed, Scenario: sc, Transport: live.TransportTCP,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(res.Crashed) > fault.MaxCrashes(n) {
				t.Fatalf("%s: %d crashed participants exceed the budget %d",
					label, len(res.Crashed), fault.MaxCrashes(n))
			}
			if got := len(res.Decisions) + len(res.Crashed); got != n {
				t.Fatalf("%s: %d decisions + %d crashed != %d participants",
					label, len(res.Decisions), len(res.Crashed), n)
			}
			winners := 0
			for id, d := range res.Decisions {
				switch d {
				case core.Win:
					winners++
					if id != res.Winner {
						t.Fatalf("%s: winner %d but %d decided WIN", label, res.Winner, id)
					}
				case core.Lose:
				default:
					t.Fatalf("%s: survivor %d undecided (%v)", label, id, d)
				}
			}
			if winners > 1 {
				t.Fatalf("%s: %d winners among survivors", label, winners)
			}
			if winners == 0 && len(res.Crashed) == 0 {
				t.Fatalf("%s: no winner yet nobody crashed", label)
			}
		}
	}
}

// TestTCPLatencyScenario: link-delay injection rides the transport's
// delayed writes; heavy-tailed latency must not break safety.
func TestTCPLatencyScenario(t *testing.T) {
	sc := fault.Scenario{
		Name: "tail-lite",
		Link: fault.Dist{Kind: fault.Pareto, Jitter: 40 * time.Microsecond, Alpha: 1.3, Cap: 2 * time.Millisecond},
	}
	for _, seed := range []int64{1, 2} {
		res, err := live.Elect(live.Config{N: 8, Seed: seed, Scenario: sc, Transport: live.TransportTCP})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Winner < 0 {
			t.Fatalf("seed %d: no winner without crashes", seed)
		}
	}
}

// TestTCPSharedClusterCampaign: many elections multiplex onto one shared
// electd server set by election ID, through the campaign engine.
func TestTCPSharedClusterCampaign(t *testing.T) {
	rep, err := campaign.Run(campaign.Config{
		Runs: 24, Workers: 4, N: 8, BaseSeed: 5, Transport: live.TransportTCP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elected != rep.Runs {
		t.Fatalf("%d of %d multiplexed elections elected a winner", rep.Elected, rep.Runs)
	}
	if rep.MeanTime <= 0 {
		t.Fatal("time metric lost on the TCP transport")
	}
}

// TestTCPSharedClusterDirect: live.Elect onto a caller-owned shared
// cluster, with distinct election IDs isolating the instances.
func TestTCPSharedClusterDirect(t *testing.T) {
	cluster, err := electd.NewCluster(transport.NewTCP(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for e := uint64(1); e <= 4; e++ {
		res, err := live.Elect(live.Config{
			N: 5, Seed: int64(e), Transport: live.TransportTCP,
			Cluster: cluster, ElectionID: e,
		})
		if err != nil {
			t.Fatalf("election %d: %v", e, err)
		}
		if res.Winner < 0 {
			t.Fatalf("election %d: no winner", e)
		}
	}
	// Scenario + shared cluster must be refused: faults would leak across
	// elections.
	if _, err := live.Elect(live.Config{
		N: 5, Seed: 1, Transport: live.TransportTCP, Cluster: cluster, ElectionID: 9,
		Scenario: fault.CrashOne(),
	}); err == nil {
		t.Fatal("crash scenario accepted on a shared cluster")
	}
}

// TestTCPSift: the standalone sifting rounds hold their survivor guarantee
// over the network boundary too.
func TestTCPSift(t *testing.T) {
	for _, algo := range []live.Algorithm{live.AlgoBasicSift, live.AlgoHetSift} {
		res, err := live.Sift(live.Config{N: 8, Seed: 3, Algorithm: algo, Transport: live.TransportTCP})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		survivors := 0
		for _, o := range res.Outcomes {
			if o == core.Survive {
				survivors++
			}
		}
		if survivors < 1 {
			t.Fatalf("%s: no survivor over TCP", algo)
		}
	}
}

// TestTCPFacade: the transport is reachable through the public repro API,
// via WithTransport and the BackendTCP shorthand, and misconfigurations are
// refused loudly.
func TestTCPFacade(t *testing.T) {
	res, err := repro.Elect(repro.WithN(5), repro.WithSeed(4),
		repro.WithBackend(repro.Live), repro.WithTransport(repro.TCPTransport))
	if err != nil {
		t.Fatalf("WithTransport: %v", err)
	}
	if res.Winner < 0 || res.PayloadBytes <= 0 {
		t.Fatalf("WithTransport: winner=%d payload=%d", res.Winner, res.PayloadBytes)
	}
	if _, err := repro.Elect(repro.WithN(5), repro.WithSeed(4), repro.WithBackend(repro.BackendTCP)); err != nil {
		t.Fatalf("BackendTCP: %v", err)
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithTransport(repro.TCPTransport)); err == nil {
		t.Error("TCP transport accepted on the sim backend")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Live),
		repro.WithTransport(repro.Transport("carrier-pigeon"))); err == nil {
		t.Error("unknown transport accepted")
	}
	rep, err := repro.Campaign(repro.WithN(6), repro.WithRuns(6), repro.WithWorkers(2),
		repro.WithSeed(9), repro.WithBackend(repro.BackendTCP))
	if err != nil {
		t.Fatalf("BackendTCP campaign: %v", err)
	}
	if rep.Elected != rep.Runs {
		t.Fatalf("BackendTCP campaign: %d of %d elected", rep.Elected, rep.Runs)
	}
	// Scenario campaigns over TCP run one cluster per election (a shared
	// cluster would leak faults across runs) and must still balance their
	// validity counts.
	screp, err := repro.Campaign(repro.WithN(5), repro.WithRuns(4), repro.WithWorkers(2),
		repro.WithSeed(3), repro.WithBackend(repro.BackendTCP), repro.WithScenario("crash-1"))
	if err != nil {
		t.Fatalf("BackendTCP crash campaign: %v", err)
	}
	if screp.Elected+screp.WinnerCrashed != screp.Runs {
		t.Errorf("BackendTCP crash campaign counts don't balance: %+v", screp)
	}
}

// TestChanByteAccounting: the chan substrate reports nonzero wire-codec
// bytes, and sim/live/TCP all report the same order of magnitude for the
// same configuration — the accounting is one format, not three estimates.
func TestChanByteAccounting(t *testing.T) {
	simRes, err := repro.Elect(repro.WithN(8), repro.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := repro.Elect(repro.WithN(8), repro.WithSeed(5), repro.WithBackend(repro.Live))
	if err != nil {
		t.Fatal(err)
	}
	tcpRes, err := repro.Elect(repro.WithN(8), repro.WithSeed(5), repro.WithBackend(repro.BackendTCP))
	if err != nil {
		t.Fatal(err)
	}
	for name, bytes := range map[string]int64{"sim": simRes.PayloadBytes, "live": liveRes.PayloadBytes, "tcp": tcpRes.PayloadBytes} {
		if bytes <= 0 {
			t.Fatalf("%s backend reports no payload bytes", name)
		}
	}
	// Bytes per message must agree across backends to within a small
	// factor: same codec, different run lengths and quorum asymmetries.
	simPer := float64(simRes.PayloadBytes) / float64(simRes.Messages)
	livePer := float64(liveRes.PayloadBytes) / float64(liveRes.Messages)
	tcpPer := float64(tcpRes.PayloadBytes) / float64(tcpRes.Messages)
	for name, per := range map[string]float64{"live": livePer, "tcp": tcpPer} {
		if ratio := per / simPer; ratio < 0.25 || ratio > 4 {
			t.Fatalf("%s bytes/message %.1f diverges from sim %.1f (ratio %.2f)", name, per, simPer, ratio)
		}
	}
}
