package live_test

// UDP-transport conformance: the elections that pass over loopback TCP
// must also elect a unique winner when every communicate call rides
// datagram sockets — where the substrate itself may drop, duplicate or
// reorder frames. The client pool's default retransmit period plus the
// reply router's sender dedup are the reliability layer under test; they
// sit strictly below the quorum semantics, so every safety property is
// the same as TCP's. CI runs this file under the race detector
// (go test -race -run TestUDP ./internal/live/); the chaos family in
// chaos_test.go additionally runs the fault presets over UDP.

import (
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/transport"
)

// TestUDPConformanceElection: unique-winner safety over loopback datagrams
// across the size grid, for both election algorithms.
func TestUDPConformanceElection(t *testing.T) {
	grid := []struct{ n, k int }{
		{1, 0}, {2, 0}, {3, 0}, {5, 0}, {8, 0}, {13, 0}, {8, 3},
	}
	for _, algo := range []live.Algorithm{live.AlgoPoisonPill, live.AlgoTournament} {
		for _, g := range grid {
			if algo == live.AlgoTournament && g.n > 8 {
				continue // tournament matches are costlier per round
			}
			for _, seed := range []int64{1, 2} {
				k := g.k
				if k == 0 {
					k = g.n
				}
				label := fmt.Sprintf("%s n=%d k=%d seed=%d", algo, g.n, k, seed)
				res, err := live.Elect(live.Config{
					N: g.n, K: g.k, Seed: seed, Algorithm: algo, Transport: live.TransportUDP,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				winners := 0
				for id, d := range res.Decisions {
					if d == core.Win {
						winners++
						if id != res.Winner {
							t.Fatalf("%s: winner %d but %d decided WIN", label, res.Winner, id)
						}
					}
				}
				if winners != 1 || len(res.Decisions) != k {
					t.Fatalf("%s: winners=%d decisions=%d", label, winners, len(res.Decisions))
				}
				if res.Time <= 0 || res.Messages <= 0 || res.Bytes <= 0 {
					t.Fatalf("%s: degenerate metrics time=%d messages=%d bytes=%d",
						label, res.Time, res.Messages, res.Bytes)
				}
			}
		}
	}
}

// TestUDPCrashMinorityPreset: the crash-minority budget over datagram
// sockets. A crashed server here closes its socket mid-run, so requests in
// flight die as real datagram loss — the retransmit layer must carry the
// survivors' calls to the recovering quorum without inventing winners.
func TestUDPCrashMinorityPreset(t *testing.T) {
	sc := fault.CrashMinority()
	sc.CrashWindow = 1500 * time.Microsecond // inside UDP-run wall-clock span
	for _, n := range []int{3, 5, 8, 9} {
		for _, seed := range []int64{1, 2, 3} {
			label := fmt.Sprintf("n=%d seed=%d", n, seed)
			res, err := live.Elect(live.Config{
				N: n, Seed: seed, Scenario: sc, Transport: live.TransportUDP,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if len(res.Crashed) > fault.MaxCrashes(n) {
				t.Fatalf("%s: %d crashed participants exceed the budget %d",
					label, len(res.Crashed), fault.MaxCrashes(n))
			}
			if got := len(res.Decisions) + len(res.Crashed); got != n {
				t.Fatalf("%s: %d decisions + %d crashed != %d participants",
					label, len(res.Decisions), len(res.Crashed), n)
			}
			winners := 0
			for id, d := range res.Decisions {
				switch d {
				case core.Win:
					winners++
					if id != res.Winner {
						t.Fatalf("%s: winner %d but %d decided WIN", label, res.Winner, id)
					}
				case core.Lose:
				default:
					t.Fatalf("%s: survivor %d undecided (%v)", label, id, d)
				}
			}
			if winners > 1 {
				t.Fatalf("%s: %d winners among survivors", label, winners)
			}
			if winners == 0 && len(res.Crashed) == 0 {
				t.Fatalf("%s: no winner yet nobody crashed", label)
			}
		}
	}
}

// TestUDPFlakyLoss: injected 25% symmetric loss stacked on top of the real
// datagram substrate — the sharpest test of the retransmit/dedup layer,
// since duplicate replies from resent requests cross real sockets and must
// be deduplicated by sender before they can stand in for quorum members.
func TestUDPFlakyLoss(t *testing.T) {
	for _, sc := range []fault.Scenario{fault.Flaky(), fault.FlakyAsym()} {
		for _, seed := range []int64{1, 2, 3} {
			res, err := live.Elect(live.Config{N: 8, Seed: seed, Scenario: sc, Transport: live.TransportUDP})
			if err != nil {
				t.Fatalf("%s seed %d: %v", sc.Name, seed, err)
			}
			if res.Winner < 0 {
				t.Fatalf("%s seed %d: no winner under flaky links", sc.Name, seed)
			}
			if len(res.NoQuorum) > 0 {
				t.Fatalf("%s seed %d: participants %v starved under sub-certain loss",
					sc.Name, seed, res.NoQuorum)
			}
		}
	}
}

// TestUDPSharedClusterCampaign: many elections multiplex onto one shared
// electd server set — one datagram socket per server, elections separated
// by ID — through the campaign engine.
func TestUDPSharedClusterCampaign(t *testing.T) {
	rep, err := campaign.Run(campaign.Config{
		Runs: 24, Workers: 4, N: 8, BaseSeed: 5, Transport: live.TransportUDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Elected != rep.Runs {
		t.Fatalf("%d of %d multiplexed elections elected a winner", rep.Elected, rep.Runs)
	}
	if rep.MeanTime <= 0 {
		t.Fatal("time metric lost on the UDP transport")
	}
}

// TestUDPSharedClusterDirect: live.Elect onto a caller-owned shared
// cluster built through the spec constructor — the redesigned API's
// one-stop entry — with distinct election IDs isolating the instances.
func TestUDPSharedClusterDirect(t *testing.T) {
	cluster, err := electd.NewClusterSpec(transport.Spec{Name: transport.SpecUDP}, 5, electd.ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for e := uint64(1); e <= 4; e++ {
		res, err := live.Elect(live.Config{
			N: 5, Seed: int64(e), Transport: live.TransportUDP,
			Cluster: cluster, ElectionID: e,
		})
		if err != nil {
			t.Fatalf("election %d: %v", e, err)
		}
		if res.Winner < 0 {
			t.Fatalf("election %d: no winner", e)
		}
	}
}

// TestUDPConnShards: the election-hashed connection shards apply to
// datagram sockets too — each shard is its own socket with its own write
// loop — and replies still route to the right calls.
func TestUDPConnShards(t *testing.T) {
	for _, tr := range []live.Transport{live.TransportTCP, live.TransportUDP} {
		res, err := live.Elect(live.Config{N: 8, Seed: 7, Transport: tr, ConnShards: 3})
		if err != nil {
			t.Fatalf("%s: %v", tr, err)
		}
		if res.Winner < 0 {
			t.Fatalf("%s: no winner over sharded connections", tr)
		}
	}
	// Sharding is a networked-transport knob; the chan substrate has no
	// connections to shard and must refuse it loudly.
	if _, err := live.Elect(live.Config{N: 4, Seed: 1, ConnShards: 2}); err == nil {
		t.Error("ConnShards accepted on the chan transport")
	}
}

// TestUDPSift: the standalone sifting rounds hold their survivor guarantee
// over datagrams too.
func TestUDPSift(t *testing.T) {
	for _, algo := range []live.Algorithm{live.AlgoBasicSift, live.AlgoHetSift} {
		res, err := live.Sift(live.Config{N: 8, Seed: 3, Algorithm: algo, Transport: live.TransportUDP})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		survivors := 0
		for _, o := range res.Outcomes {
			if o == core.Survive {
				survivors++
			}
		}
		if survivors < 1 {
			t.Fatalf("%s: no survivor over UDP", algo)
		}
	}
}

// TestUDPFacade: the transport is reachable through the public repro API
// via WithTransport(UDPTransport), and misconfigurations are refused.
func TestUDPFacade(t *testing.T) {
	res, err := repro.Elect(repro.WithN(5), repro.WithSeed(4),
		repro.WithBackend(repro.Live), repro.WithTransport(repro.UDPTransport))
	if err != nil {
		t.Fatalf("WithTransport: %v", err)
	}
	if res.Winner < 0 || res.PayloadBytes <= 0 {
		t.Fatalf("WithTransport: winner=%d payload=%d", res.Winner, res.PayloadBytes)
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithTransport(repro.UDPTransport)); err == nil {
		t.Error("UDP transport accepted on the sim backend")
	}
	rep, err := repro.Campaign(repro.WithN(6), repro.WithRuns(6), repro.WithWorkers(2),
		repro.WithSeed(9), repro.WithBackend(repro.Live), repro.WithTransport(repro.UDPTransport))
	if err != nil {
		t.Fatalf("UDP campaign: %v", err)
	}
	if rep.Elected != rep.Runs {
		t.Fatalf("UDP campaign: %d of %d elected", rep.Elected, rep.Runs)
	}
}
