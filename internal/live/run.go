package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/fault"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Algorithm selects the protocol a live run executes. The values match the
// expt harness's names so configurations translate across backends.
type Algorithm string

// Algorithms understood by the live runners.
const (
	// AlgoPoisonPill is the paper's O(log* k) election (Figure 6).
	AlgoPoisonPill Algorithm = "poisonpill"
	// AlgoTournament is the Θ(log n) tournament baseline of [AGTV92].
	AlgoTournament Algorithm = "tournament"
	// AlgoBasicSift is one standalone basic PoisonPill round (Figure 1).
	AlgoBasicSift Algorithm = "basic-sift"
	// AlgoHetSift is one standalone heterogeneous round (Figure 2).
	AlgoHetSift Algorithm = "het-sift"
)

// Transport selects the comm substrate a live run's quorum traffic crosses.
type Transport string

// Transports understood by the live runners.
const (
	// TransportChan is the in-process substrate: server-goroutine mailboxes
	// and channel broadcast (the default).
	TransportChan Transport = "chan"
	// TransportTCP routes every communicate call through electd servers
	// over loopback TCP sockets: real network boundary, kernel scheduling,
	// wire-codec frames. Algorithms run unchanged behind rt.Comm.
	TransportTCP Transport = "tcp"
	// TransportUDP routes quorum traffic through electd servers over
	// loopback UDP datagrams: the same wire frames, packed MTU-bounded into
	// datagrams with batched syscalls, with the client pool's default
	// retransmit-and-dedup as the reliability layer (strictly below the
	// quorum semantics — see electd.PoolOptions.Retransmit).
	TransportUDP Transport = "udp"
)

// Networked reports whether the transport crosses real sockets through an
// electd cluster (TCP or UDP), as opposed to the in-process chan substrate.
func (t Transport) Networked() bool { return t == TransportTCP || t == TransportUDP }

// Config parameterises one live run.
type Config struct {
	// N is the system size; K the number of participants (0 means K = N).
	N, K int
	// Seed shards the per-processor PRNG streams; equal seeds give equal
	// coin-flip sequences (the interleaving still varies run to run — that
	// is the point of the backend).
	Seed int64
	// Algorithm picks the protocol. Default AlgoPoisonPill.
	Algorithm Algorithm
	// Scenario injects faults and latency into the run: crash schedules,
	// per-link delay distributions, slow processors, reordering. The zero
	// value is fault-free. See internal/fault.
	Scenario fault.Scenario
	// Timeout aborts a run that has not completed in time (0 = a generous
	// default). A fired timeout reports an error and leaks the run's
	// goroutines: it is a diagnostic for liveness bugs, not a control path.
	Timeout time.Duration
	// Transport picks the comm substrate: TransportChan (default),
	// TransportTCP or TransportUDP.
	Transport Transport
	// Cluster (networked transports only) reuses an already-running electd
	// server set instead of building one per run; the run then multiplexes
	// onto it under ElectionID. Crash scenarios are rejected with a shared
	// cluster — they would fail servers other elections depend on.
	Cluster *electd.Cluster
	// ElectionID namespaces this run's register state on a shared Cluster.
	// Ignored (an owned cluster hosts exactly one election) otherwise.
	ElectionID uint64
	// NoBatch (networked transports with an owned cluster only) disables
	// the client pool's frame coalescing: every quorum message travels as
	// its own wire frame, the pre-batching behavior the benchmarks compare
	// against. On a shared Cluster the pool's own options govern.
	NoBatch bool
	// ConnShards (networked transports with an owned cluster only) is how
	// many connections the client pool dials per server, elections hashed
	// across them; 0 or 1 means one. On a shared Cluster the pool's own
	// options govern.
	ConnShards int
	// Pool recycles whole Systems across runs instead of building and
	// tearing one down per run — the campaign engine's high-throughput
	// path. The pool's size and substrate shape must match the run (N and
	// Transport); runs with crash scenarios are supported, the checked-out
	// system is always reset to construction state. Nil builds a fresh
	// system per run, as before.
	Pool *SystemPool
	// Trace, when non-nil, is the election flight recorder: the run's
	// client, transport and server layers record per-phase spans into it
	// (see internal/trace). On an owned TCP cluster the recorder is
	// threaded through the pool, the servers and the network (enabling
	// wire stamping); on a shared Cluster the cluster's own options
	// govern the pool/server/transport layers and only the chan-side or
	// round attribution here applies. Nil — the default — leaves every
	// hot path untraced and byte- and alloc-identical to before tracing
	// existed.
	Trace *trace.Recorder
}

// DefaultTimeout bounds a live run when Config.Timeout is zero. The
// algorithms terminate with probability 1 in milliseconds at benchmark
// sizes; a run hitting this bound indicates a liveness bug.
const DefaultTimeout = 2 * time.Minute

// ErrTimeout is returned when a live run exceeds its timeout.
var ErrTimeout = errors.New("live: run timed out (liveness bug?)")

// ErrNoWinner is returned when a fault-free election run completes with no
// Win decision. It cannot happen without crashes unless the algorithm or
// the backend is broken. Under a crash scenario a winnerless outcome is
// legitimate — the linearized winner may have crashed after taking the
// election but before returning — and is reported as Winner == -1 with a
// nil error and a non-empty Crashed list.
var ErrNoWinner = errors.New("live: election completed without a winner")

// Result reports one live run.
type Result struct {
	// Winner is the elected processor; -1 for sift algorithms, and for
	// elections in which every potential winner crashed (possible only
	// under a crash scenario).
	Winner rt.ProcID
	// Decisions maps every returning participant to WIN/LOSE (election
	// algorithms). Participants crashed by the scenario do not return and
	// are listed in Crashed instead.
	Decisions map[rt.ProcID]core.Decision
	// Outcomes maps every returning participant to SURVIVE/DIE (sift
	// algorithms).
	Outcomes map[rt.ProcID]core.Outcome
	// Crashed lists the participants the scenario killed mid-protocol, in
	// id order. Crashed non-participants (silent servers) are not listed:
	// they affect only message loss, not decisions.
	Crashed []rt.ProcID
	// NoQuorum lists the participants that aborted with a typed
	// fault.NoQuorumError: the plan provably cut them off from every
	// majority quorum (a never-healing partition's minority side, total
	// loss, too many unrecovered crashes) and the grace period ran out.
	// From the protocol's perspective an aborted participant is a crash —
	// it vanishes mid-election and the safety argument is unchanged — but
	// the runner reports the two causes apart, and a run in which an
	// electable participant lands here is invalid.
	NoQuorum []rt.ProcID
	// Rounds is the highest election round any participant reached.
	Rounds int
	// Time is the maximum number of communicate calls any processor made —
	// the paper's time metric, comparable with the sim backend's.
	Time int
	// Messages is the total number of point-to-point messages exchanged.
	Messages int64
	// Bytes is the total wire-codec payload size of those messages — the
	// exact internal/wire frame-body bytes, comparable with the sim
	// backend's PayloadBytes statistic. On a shared TCP cluster it counts
	// only this run's traffic.
	Bytes int64
	// Elapsed is the run's wall-clock duration.
	Elapsed time.Duration
}

func (cfg *Config) normalize() error {
	if cfg.N < 1 {
		return fmt.Errorf("live: system size %d must be at least 1", cfg.N)
	}
	if cfg.K == 0 {
		cfg.K = cfg.N
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		return fmt.Errorf("live: participants %d must be in [1, %d]", cfg.K, cfg.N)
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoPoisonPill
	}
	if err := cfg.Scenario.Validate(cfg.N); err != nil {
		return err
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	switch cfg.Transport {
	case "":
		cfg.Transport = TransportChan
	case TransportChan, TransportTCP, TransportUDP:
	default:
		return fmt.Errorf("live: unknown transport %q", cfg.Transport)
	}
	if !cfg.Transport.Networked() {
		if cfg.Cluster != nil {
			return fmt.Errorf("live: an electd cluster requires a networked transport (tcp or udp)")
		}
		if cfg.ElectionID != 0 {
			return fmt.Errorf("live: election IDs exist only on networked transports")
		}
		if cfg.NoBatch {
			return fmt.Errorf("live: NoBatch tunes a networked transport's client pool; the %q transport has no frames to batch", cfg.Transport)
		}
		if cfg.ConnShards != 0 {
			return fmt.Errorf("live: ConnShards shards a networked transport's connections; the %q transport has none", cfg.Transport)
		}
	} else if cfg.Cluster != nil {
		if cfg.NoBatch {
			return fmt.Errorf("live: NoBatch cannot apply to a shared cluster (its pool is already dialed); configure the cluster instead")
		}
		if cfg.ConnShards != 0 {
			return fmt.Errorf("live: ConnShards cannot apply to a shared cluster (its pool is already dialed); configure the cluster instead")
		}
		if cfg.Cluster.N() != cfg.N {
			return fmt.Errorf("live: shared cluster has %d servers, run wants n=%d", cfg.Cluster.N(), cfg.N)
		}
		if cfg.Scenario.Active() && !cfg.Scenario.LinkOnly() {
			return fmt.Errorf("live: scenario %q cannot run on a shared cluster (crash faults would fail servers other elections depend on); omit Cluster", cfg.Scenario.Name)
		}
	}
	if cfg.Pool != nil {
		if cfg.Pool.N() != cfg.N {
			return fmt.Errorf("live: system pool holds %d-processor systems, run wants n=%d", cfg.Pool.N(), cfg.N)
		}
		if want := !cfg.Transport.Networked(); cfg.Pool.Serving() != want {
			return fmt.Errorf("live: system pool serving=%v does not match transport %q", cfg.Pool.Serving(), cfg.Transport)
		}
	}
	return nil
}

// Elect runs one leader election on real goroutines and returns the winner
// and complexity measures. Exactly one participant wins; every other
// returns LOSE — under any interleaving the Go scheduler produces.
func Elect(cfg Config) (Result, error) {
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	var body func(c rt.Comm, s *core.State) core.Decision
	switch cfg.Algorithm {
	case AlgoPoisonPill:
		body = func(c rt.Comm, s *core.State) core.Decision {
			return core.LeaderElectWithState(c, "elect", s)
		}
	case AlgoTournament:
		body = func(c rt.Comm, s *core.State) core.Decision {
			return baseline.TournamentWithState(c, "tourn", s)
		}
	default:
		return Result{}, fmt.Errorf("live: %q is not an election algorithm", cfg.Algorithm)
	}

	decisions := make([]core.Decision, cfg.K)
	states := make([]*core.State, cfg.K)
	res, err := run(cfg, func(p *Proc, c rt.Comm, i int) {
		s := core.NewState(p, string(cfg.Algorithm))
		states[i] = s
		if cfg.Trace != nil {
			// Round transitions stamp the comm's subsequent spans; both
			// substrates' handles expose SetRound through the wrapper.
			if rs, ok := c.(interface{ SetRound(int) }); ok {
				s.RoundHook = rs.SetRound
			}
		}
		decisions[i] = body(c, s)
	})
	if err != nil {
		return res, err
	}

	crashed := make(map[rt.ProcID]bool, len(res.Crashed))
	for _, id := range res.Crashed {
		crashed[id] = true
	}
	starved := make(map[rt.ProcID]bool, len(res.NoQuorum))
	for _, id := range res.NoQuorum {
		starved[id] = true
	}
	res.Winner = -1
	res.Decisions = make(map[rt.ProcID]core.Decision, cfg.K)
	for i, d := range decisions {
		id := rt.ProcID(i)
		if s := states[i]; s.Round > res.Rounds {
			res.Rounds = s.Round
		}
		if crashed[id] || starved[id] {
			continue // killed or starved mid-protocol; no decision to report
		}
		switch d {
		case core.Win:
			if res.Winner >= 0 {
				return res, fmt.Errorf("live: safety violation: processors %d and %d both won", res.Winner, id)
			}
			res.Winner = id
		case core.Lose:
		default:
			return res, fmt.Errorf("live: participant %d returned undecided without crashing", id)
		}
		res.Decisions[id] = d
	}
	if res.Winner < 0 {
		if len(res.Crashed) == 0 && len(res.NoQuorum) == 0 {
			return res, ErrNoWinner
		}
		// Every survivor lost: the linearized winner is among the crashed
		// or starved (Theorem A.5 allows this — the election is a
		// test-and-set, and the processor that "took" it vanished before
		// returning; an abort is a crash from the protocol's perspective).
	}
	return res, nil
}

// Sift runs one standalone sifting round (AlgoBasicSift or AlgoHetSift) on
// real goroutines. At least one participant always survives.
func Sift(cfg Config) (Result, error) {
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoBasicSift
	}
	if err := cfg.normalize(); err != nil {
		return Result{}, err
	}
	var body func(c rt.Comm, s *core.State) core.Outcome
	switch cfg.Algorithm {
	case AlgoBasicSift:
		body = func(c rt.Comm, s *core.State) core.Outcome {
			return core.PoisonPill(c, "pp", s)
		}
	case AlgoHetSift:
		body = func(c rt.Comm, s *core.State) core.Outcome {
			return core.HetPoisonPill(c, "pp", s)
		}
	default:
		return Result{}, fmt.Errorf("live: %q is not a sifting algorithm", cfg.Algorithm)
	}

	outcomes := make([]core.Outcome, cfg.K)
	res, err := run(cfg, func(p *Proc, c rt.Comm, i int) {
		s := core.NewState(p, string(cfg.Algorithm))
		outcomes[i] = body(c, s)
	})
	if err != nil {
		return res, err
	}

	gone := make(map[rt.ProcID]bool, len(res.Crashed)+len(res.NoQuorum))
	for _, id := range res.Crashed {
		gone[id] = true
	}
	for _, id := range res.NoQuorum {
		gone[id] = true
	}
	res.Winner = -1
	res.Outcomes = make(map[rt.ProcID]core.Outcome, cfg.K)
	survivors := 0
	for i, o := range outcomes {
		if gone[rt.ProcID(i)] {
			continue
		}
		res.Outcomes[rt.ProcID(i)] = o
		if o == core.Survive {
			survivors++
		}
	}
	// Claim 3.1 guarantees a survivor only when every participant returns;
	// with crashed or starved participants an empty survivor set is
	// legitimate.
	if survivors == 0 && len(res.Crashed) == 0 && len(res.NoQuorum) == 0 {
		return res, fmt.Errorf("live: safety violation: no sift survivor (Claim 3.1)")
	}
	return res, nil
}

// countedComm books a participant's communicate calls into its Proc (for
// the paper's time metric) and gives crashes their unwind points, wrapping
// comm substrates — the electd TCP client — that do not have access to the
// Proc's internals. The chan substrate's own Comm does both natively.
type countedComm struct {
	p     *Proc
	inner rt.Comm
}

func (c *countedComm) Proc() rt.Procer { return c.p }
func (c *countedComm) QuorumSize() int { return c.inner.QuorumSize() }

// SetRound forwards round-transition stamps to comm substrates that trace
// (the electd client); a no-op wrapper target otherwise.
func (c *countedComm) SetRound(r int) {
	if rs, ok := c.inner.(interface{ SetRound(int) }); ok {
		rs.SetRound(r)
	}
}
func (c *countedComm) Propagate(reg string, val rt.Value) {
	c.p.maybeCrash()
	c.p.commCalls++
	c.inner.Propagate(reg, val)
	c.p.maybeCrash()
}
func (c *countedComm) Collect(reg string) []rt.View {
	c.p.maybeCrash()
	c.p.commCalls++
	views := c.inner.Collect(reg)
	c.p.maybeCrash()
	return views
}

// run builds a system (materializing the scenario's fault plan, if any),
// executes algo on the first K processors concurrently, joins them, shuts
// the substrate down and reports the shared measures.
//
// On TransportChan the quorum runs over the in-process server goroutines;
// on TransportTCP it runs over an electd cluster — cfg.Cluster when shared,
// otherwise a cluster of n loopback-TCP servers owned by this run — with
// scenario link delays injected as delayed writes at the transport and
// crashes dropping the victim's server connections. Scenario crashes are
// armed as wall-clock timers when the algorithms start; a crashed
// participant's goroutine unwinds via crashSignal and is recorded in
// Result.Crashed. The timeout path leaves the run's goroutines behind by
// design: there is no safe way to interrupt them, and the caller is about
// to fail anyway.
func run(cfg Config, algo func(p *Proc, c rt.Comm, i int)) (Result, error) {
	plan, err := cfg.Scenario.Plan(cfg.N, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	var sys *System
	if cfg.Pool != nil {
		sys = cfg.Pool.Get(cfg.Seed, plan)
	} else {
		sys = newSystem(cfg.N, cfg.Seed, plan, !cfg.Transport.Networked())
	}
	// Installed before any algorithm goroutine starts (pooled systems
	// carry the previous run's recorder otherwise). The chan substrate
	// and traced owned TCP clusters have no protocol-level election ID,
	// so their spans carry a seed-derived odd tag — nonzero, and never
	// colliding with the counter-issued IDs of shared TCP clusters for
	// realistic campaign sizes.
	sys.rec = cfg.Trace
	sys.traceID = uint64(cfg.Seed)*2 + 1
	if cfg.Transport.Networked() && (cfg.Cluster != nil || cfg.ElectionID != 0) {
		sys.traceID = cfg.ElectionID
	}

	// Participants the plan provably starves of quorums get an abort
	// channel, installed before their goroutines start; its close timer is
	// armed with the crash timers below, once the fault clock is stamped.
	var noq []chan struct{}
	if plan != nil {
		for i := 0; i < cfg.K; i++ {
			if _, isStarved := plan.StarveAt(i); isStarved {
				if noq == nil {
					noq = make([]chan struct{}, cfg.K)
				}
				noq[i] = make(chan struct{})
				sys.procs[i].noq = noq[i]
			}
		}
	}

	var cluster *electd.Cluster
	var clients []*electd.Client
	comms := make([]rt.Comm, cfg.K)
	if cfg.Transport.Networked() {
		cluster = cfg.Cluster
		election := cfg.ElectionID
		if cluster == nil && cfg.Trace != nil && election == 0 {
			// An owned cluster hosts exactly one election, so ID 0 works on
			// the wire — but spans keyed by election 0 cannot be grouped per
			// election in the breakdown. Tag traced owned-cluster runs with
			// the same seed-derived odd ID the chan substrate uses; the
			// namespace is private to this cluster, and untraced runs keep
			// ID 0 so their frames stay byte-identical.
			election = sys.traceID
		}
		if cluster == nil {
			spec := transport.Spec{
				Name:    string(cfg.Transport),
				Shards:  cfg.ConnShards,
				NoBatch: cfg.NoBatch,
				Trace:   cfg.Trace,
			}
			cluster, err = electd.NewClusterSpec(spec, cfg.N, electd.ClusterOptions{
				Server: electd.ServerOptions{Trace: cfg.Trace},
			})
			if err != nil {
				if cfg.Pool != nil {
					cfg.Pool.Put(sys) // nothing ran; the system is clean
				}
				return Result{}, fmt.Errorf("live: start electd cluster: %w", err)
			}
			defer cluster.Close()
		}
		clients = make([]*electd.Client, cfg.K)
		for i := 0; i < cfg.K; i++ {
			p := sys.procs[i]
			var delay func(int) time.Duration
			if plan != nil {
				// Sampled on the algorithm goroutine, which owns p.frng.
				delay = func(to int) time.Duration {
					return plan.SendDelay(p.frng, int(p.id), to)
				}
			}
			clients[i] = cluster.NewComm(p, election, delay)
			if plan != nil && (plan.HasLinkFaults() || plan.NeedsRetransmit() || (noq != nil && noq[i] != nil)) {
				fp := electd.FaultProfile{Proc: i}
				if plan.HasLinkFaults() {
					// Request-direction loss samples on the algorithm
					// goroutine (rpc broadcasts and retransmits there), so
					// the goroutine-owned frng is safe. Reply-direction loss
					// samples on the pool's connection read loops, which run
					// concurrently — it gets its own salted, mutex-guarded
					// stream so concurrent sampling stays deterministic-ish
					// per client without perturbing the coin-flip streams.
					fp.Drop = func(to int) bool {
						return plan.DropMsg(p.frng, int(p.id), to, sys.elapsed())
					}
					rrng := rand.New(rand.NewSource(int64((uint64(cfg.Seed) + uint64(i)*SeedStride) ^ replyStreamSalt)))
					var rmu sync.Mutex
					pid := int(p.id)
					fp.ReplyDrop = func(from int) bool {
						rmu.Lock()
						d := plan.DropMsg(rrng, from, pid, sys.elapsed())
						rmu.Unlock()
						return d
					}
				}
				if plan.NeedsRetransmit() {
					fp.Retransmit = plan.RetransmitTick()
				}
				if noq != nil && noq[i] != nil {
					fp.NoQuorum = noq[i]
				}
				clients[i].SetFaults(fp)
			}
			comms[i] = &countedComm{p: p, inner: clients[i]}
		}
	} else {
		for i := 0; i < cfg.K; i++ {
			comms[i] = NewComm(sys.procs[i])
		}
	}

	crashed := make([]bool, cfg.K)
	starved := make([]bool, cfg.K)
	var wg sync.WaitGroup
	start := time.Now()
	sys.StartClock(start)
	// Crash timers race run completion: a timer that fires between the last
	// decision and its Stop call must not mutate the system — with pooling
	// it may already be hosting someone else's run. The guard mutex plus
	// the finished flag make "the run is over" and "the crash lands"
	// mutually exclusive.
	var crashMu sync.Mutex
	finished := false
	if plan != nil {
		// A recovery always follows its paired crash in *timer* order
		// (RecoverAfter > 0), but AfterFunc callbacks run on independent
		// goroutines: on an oversubscribed host both timers can expire
		// before either callback is scheduled, and the recovery can then
		// run first — Restart would wait for a listener whose crash is
		// blocked behind crashMu, a deadlock. landed records which crashes
		// have actually executed (guarded by crashMu) so a too-early
		// recovery can step aside and retry instead.
		landed := make([]bool, cfg.N)
		timers := make([]*time.Timer, 0, len(plan.Crashes)+len(plan.Recoveries)+len(noq))
		for _, cr := range plan.Crashes {
			id := rt.ProcID(cr.Proc)
			timers = append(timers, time.AfterFunc(cr.At, func() {
				crashMu.Lock()
				defer crashMu.Unlock()
				if finished {
					return // the run outlived this crash; it didn't happen
				}
				sys.Crash(id)
				if cluster != nil {
					// An owned cluster pairs server i with processor i, so a
					// crash fails both halves, as on the chan substrate.
					// (Shared clusters admit only link faults at normalize.)
					cluster.Crash(id)
				}
				landed[int(id)] = true
			}))
		}
		for _, rc := range plan.Recoveries {
			id := rt.ProcID(rc.Proc)
			var rejoin func()
			rejoin = func() {
				crashMu.Lock()
				defer crashMu.Unlock()
				if finished {
					return
				}
				if !landed[int(id)] {
					// Fired before the paired crash landed (see above) —
					// let the crash through and come back. The retry timer
					// escapes the Stop sweep below on purpose: once the
					// run finishes, the finished guard makes it a no-op.
					time.AfterFunc(time.Millisecond, rejoin)
					return
				}
				// Only the replica half rejoins: the crashed participant's
				// goroutine has unwound and stays gone; what recovers is the
				// quorum member. On TCP that is the full Restart sequence —
				// replica, listener, pool redial; a failed rebind is the
				// recovery itself failing, which the model treats as the
				// replica staying down.
				if cluster != nil {
					cluster.Restart(id) //nolint:errcheck // best-effort rejoin
				} else {
					sys.Recover(id)
				}
			}
			timers = append(timers, time.AfterFunc(rc.At, rejoin))
		}
		for i, ch := range noq {
			if ch == nil {
				continue
			}
			at, _ := plan.StarveAt(i)
			chn := ch
			timers = append(timers, time.AfterFunc(at+fault.NoQuorumGrace, func() {
				// No finished-guard: closing after the run completed (or
				// after the pool re-issued the system — Reset clears p.noq
				// first) wakes nobody.
				close(chn)
			}))
		}
		// Pending crashes are cancelled once the run completes: a crash
		// scheduled after the last decision didn't happen, as far as the
		// run's results are concerned. Same for recoveries and starvation
		// deadlines.
		defer func() {
			for _, t := range timers {
				t.Stop()
			}
		}()
	}
	for i := 0; i < cfg.K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case crashSignal:
						crashed[i] = true
					case *fault.NoQuorumError:
						starved[i] = true
					default:
						panic(r)
					}
				}
			}()
			algo(sys.procs[i], comms[i], i)
		}(i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(cfg.Timeout):
		return Result{}, fmt.Errorf("%w after %v (n=%d k=%d algorithm=%s transport=%s scenario=%q)",
			ErrTimeout, cfg.Timeout, cfg.N, cfg.K, cfg.Algorithm, cfg.Transport, cfg.Scenario.Name)
	}
	elapsed := time.Since(start)
	crashMu.Lock()
	finished = true // late-firing crash timers are now no-ops
	crashMu.Unlock()
	if cfg.Pool != nil {
		// Pooled systems stay alive: wait out in-flight mailbox traffic so
		// the counters below are final, return the system after the results
		// have been read from it.
		sys.quiesce()
	} else {
		sys.Shutdown()
	}

	res := Result{Elapsed: elapsed, Messages: sys.Messages(), Bytes: sys.Bytes()}
	if clients != nil {
		// TCP traffic is booked per participant, so a shared cluster still
		// reports this run's own messages and bytes.
		res.Messages, res.Bytes = 0, 0
		for _, cl := range clients {
			res.Messages += cl.Messages()
			res.Bytes += cl.Bytes()
		}
	}
	for i := 0; i < cfg.K; i++ {
		if crashed[i] {
			res.Crashed = append(res.Crashed, rt.ProcID(i))
		}
		if starved[i] {
			res.NoQuorum = append(res.NoQuorum, rt.ProcID(i))
		}
		if c := sys.procs[i].CommCalls(); c > res.Time {
			res.Time = c
		}
	}
	if cfg.Pool != nil {
		cfg.Pool.Put(sys)
	}
	return res, nil
}
