package live

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/fault"
)

// quiesce blocks until the system is idle: every delayed delivery has been
// handed to its mailbox and every mailbox request has been served (or
// dropped by a crashed server). Only call it after all of the run's
// algorithm goroutines have returned — they are the only source of new
// requests.
func (sys *System) quiesce() {
	sys.inflight.Wait()
	sys.reqs.Wait()
}

// Reset reinitializes the system in place for a new run with the given seed
// and fault plan, the recycling path of SystemPool: server goroutines stay
// parked on their mailboxes (nothing is torn down or respawned — a crashed
// processor is only a dropped flag here, its serve loop never exited, so
// reviving it is clearing that flag), while every piece of per-run state is
// restored to exactly what NewScenarioSystem(n, seed, plan) would build:
// per-processor PRNG streams reseeded on the same splitmix64 sharding,
// register arrays zeroed with their snapshot caches dropped, raw mailboxes,
// published state, call counters and crash flags cleared, and the system's
// message/byte counters rewound. It must only be called on a quiescent
// system whose previous run has fully joined.
func (sys *System) Reset(seed int64, plan *fault.Plan) {
	sys.quiesce()
	sys.plan = plan
	sys.messages.Store(0)
	sys.bytes.Store(0)
	for i, p := range sys.procs {
		base := int64(uint64(seed) + uint64(i)*SeedStride)
		p.rng.Seed(base)
		if plan != nil {
			if p.frng == nil {
				p.frng = rand.New(rand.NewSource(base ^ faultStreamSalt))
			} else {
				p.frng.Seed(base ^ faultStreamSalt)
			}
		} else {
			p.frng = nil
		}
		p.crashed.Store(false)
		p.down.Store(false)
		p.noq = nil
		for _, arr := range *p.regs.Load() {
			// Keep the allocated arrays — register names repeat across runs
			// of the same algorithm — but restore construction state. The
			// system is quiescent, but the stores stay atomic so the race
			// detector sees the same access discipline the hot path uses.
			for i := range arr.cells {
				arr.cells[i].v.Store(nil)
			}
			arr.version.Store(0)
			arr.snap.Store(nil)
		}
		p.mu.Lock()
		p.raw = nil
		p.published = nil
		p.mu.Unlock()
		p.commCalls = 0
	}
}

// SystemPool recycles whole Systems across runs: the n server goroutines
// and their mailboxes, the processor handles, their PRNGs and register
// maps are built once and then parked between runs instead of torn down —
// under many concurrent elections the per-run NewSystem/Shutdown cycle
// (n goroutine spawns, n PRNG states, every register map) is setup cost
// that dominates the actual O(log* k) protocol work. Get checks a system
// out, Reset-ing a recycled one in place; Put returns it after the run has
// joined. The pool is safe for concurrent use by many campaign workers.
type SystemPool struct {
	n     int
	serve bool

	mu   sync.Mutex
	free []*System
}

// NewSystemPool creates a pool of n-processor systems. serving selects the
// substrate shape, matching the runs the systems will host: true for the
// chan substrate (in-process server mailboxes), false for runs whose
// quorum traffic goes through an electd cluster instead (TransportTCP).
func NewSystemPool(n int, serving bool) *SystemPool {
	return &SystemPool{n: n, serve: serving}
}

// N returns the pooled systems' size.
func (sp *SystemPool) N() int { return sp.n }

// Serving reports whether pooled systems run in-process server goroutines.
func (sp *SystemPool) Serving() bool { return sp.serve }

// Idle reports how many systems are parked in the pool.
func (sp *SystemPool) Idle() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.free)
}

// Get checks a system out of the pool, reset in place for the given seed
// and plan — indistinguishable from NewScenarioSystem(n, seed, plan) — or
// builds a fresh one when the pool is empty.
func (sp *SystemPool) Get(seed int64, plan *fault.Plan) *System {
	sp.mu.Lock()
	var sys *System
	if k := len(sp.free); k > 0 {
		sys, sp.free = sp.free[k-1], sp.free[:k-1]
	}
	sp.mu.Unlock()
	if sys == nil {
		return newSystem(sp.n, seed, plan, sp.serve)
	}
	sys.Reset(seed, plan)
	return sys
}

// Put parks a system for reuse. The caller must have joined every algorithm
// goroutine of its run; Put waits out whatever mailbox traffic is still in
// flight, so the parked system is quiescent. Systems from timed-out runs
// must not be returned — their goroutines are still live.
func (sp *SystemPool) Put(sys *System) {
	if sys.n != sp.n || sys.serving != sp.serve {
		panic(fmt.Sprintf("live: pooling a %d-processor system (serving=%v) in a %d-processor pool (serving=%v)",
			sys.n, sys.serving, sp.n, sp.serve))
	}
	sys.quiesce()
	sp.mu.Lock()
	sp.free = append(sp.free, sys)
	sp.mu.Unlock()
}

// Close shuts down every parked system. Systems still checked out are the
// caller's to shut down; a pool is typically closed after its campaign has
// joined every run.
func (sp *SystemPool) Close() {
	sp.mu.Lock()
	free := sp.free
	sp.free = nil
	sp.mu.Unlock()
	for _, sys := range free {
		sys.Shutdown()
	}
}
