// Package live is the real-concurrency execution backend of the runtime
// seam (internal/rt): it runs the same leader-election algorithms as the
// deterministic discrete-event kernel (internal/sim + internal/quorum), but
// on real OS-scheduled goroutines with channel-backed best-effort broadcast
// and majority-quorum collect.
//
// Where the sim backend hands every interleaving decision to a strong
// adaptive adversary and measures virtual time, the live backend lets the Go
// scheduler interleave n server goroutines and k participant goroutines for
// real, and measures wall-clock time. The paper's safety guarantees (unique
// winner, at least one sift survivor) hold under *any* schedule, so they
// must — and do — survive genuine hardware contention; the conformance
// suite checks exactly that, under the race detector.
//
// # Topology
//
// Every processor runs a server goroutine draining a buffered mailbox of
// quorum requests (the reactive half — the paper's standing assumption that
// all processors always reply). Participants additionally run an algorithm
// goroutine that issues communicate calls through Comm: a request is
// broadcast to all n−1 peers and the caller blocks until ⌊n/2⌋+1 processors
// (itself included) have answered, so any two communicate calls intersect —
// the quorum property every proof in the paper relies on. Replies beyond
// the quorum arrive late into an abandoned buffered channel, naturally
// reproducing the stale-view behaviour the adversary model abstracts.
//
// # Fault and latency injection
//
// The model's remaining adversarial powers — delaying messages arbitrarily
// and crashing up to ⌈n/2⌉−1 processors — are recovered through the
// scenario engine (internal/fault). Config.Scenario materializes into a
// per-run plan; the backend injects it without touching algorithm code:
//
//   - message delays (link distributions, slow-processor taxes, reorder
//     jitter) are sampled on the sending side and ride helper goroutines,
//     so one slow link never stalls the rest of a broadcast, and Shutdown
//     waits for stragglers before closing mailboxes;
//   - a crashed processor's server keeps draining its mailbox but drops
//     every request unanswered (messages to the dead are lost, senders
//     never block), and its algorithm goroutine is unwound by a recovered
//     panic at its next backend interaction;
//   - quorum liveness is preserved by construction: with at most ⌈n/2⌉−1
//     crashes, every communicate call still assembles its ⌊n/2⌋+1
//     acknowledgments from the survivors.
//
// Crashed participants appear in Result.Crashed rather than Decisions; an
// election whose every survivor lost is reported with Winner == -1 — the
// linearized winner died holding the election, exactly the outcome Theorem
// A.5 permits.
//
// # System recycling
//
// High-throughput callers (the campaign engine) recycle whole systems
// through SystemPool instead of paying NewSystem/Shutdown per run: server
// goroutines park on their empty mailboxes between runs, and checkout
// resets PRNG streams, register arrays, counters and crash flags in place
// — indistinguishable from a fresh construction, including for runs with
// crash plans (a crashed slot here is only a dropped flag; its serve loop
// never exited). Config.Pool opts a run in.
package live
