package live_test

// Cross-backend conformance: for a grid of (n, k, seed, algorithm)
// configurations, the sim backend and the live backend must both satisfy
// the paper's safety properties — exactly one winner, every other
// participant loses. The crash-scenario tests additionally check Theorem
// A.5's fault-tolerant form across the fault-injection matrix: with up to
// ⌈n/2⌉−1 crashes, every surviving participant that decides agrees on a
// unique leader (a winnerless run is legitimate only when the linearized
// winner itself crashed). CI runs this file under the race detector
// (go test -race ./internal/live/...), so the live half also proves the
// backend memory-safe under real interleavings, faults included.

import (
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/live"
	"repro/internal/sim"
)

// grid is the conformance configuration set. k == 0 means k = n.
var grid = []struct {
	n, k int
}{
	{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {8, 0}, {13, 0}, {16, 0},
	{8, 3}, {16, 5},
}

var seeds = []int64{1, 2, 3}

// checkElection asserts the safety contract shared by both backends.
func checkElection(t *testing.T, label string, k int, res repro.ElectionResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(res.Decisions) != k {
		t.Fatalf("%s: %d decisions, want %d", label, len(res.Decisions), k)
	}
	winners := 0
	for id, d := range res.Decisions {
		switch d {
		case core.Win:
			winners++
			if id != res.Winner {
				t.Fatalf("%s: winner %d but %d decided WIN", label, res.Winner, id)
			}
		case core.Lose:
		default:
			t.Fatalf("%s: processor %d has undecided outcome %v", label, id, d)
		}
	}
	if winners != 1 {
		t.Fatalf("%s: %d winners, want exactly 1", label, winners)
	}
	if res.Time <= 0 {
		t.Fatalf("%s: non-positive time metric %d", label, res.Time)
	}
}

// TestConformanceElection runs the PoisonPill election across the grid on
// both backends through the public repro API.
func TestConformanceElection(t *testing.T) {
	for _, g := range grid {
		for _, seed := range seeds {
			k := g.k
			if k == 0 {
				k = g.n
			}
			opts := []repro.Option{
				repro.WithN(g.n), repro.WithParticipants(k), repro.WithSeed(seed),
			}
			label := fmt.Sprintf("n=%d k=%d seed=%d", g.n, k, seed)

			simRes, err := repro.Elect(opts...)
			checkElection(t, "sim "+label, k, simRes, err)

			liveRes, err := repro.Elect(append(opts, repro.WithBackend(repro.Live))...)
			checkElection(t, "live "+label, k, liveRes, err)
		}
	}
}

// TestConformanceTournament runs the tournament baseline across a smaller
// grid on both backends (tournament matches are costlier per round).
func TestConformanceTournament(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, seed := range seeds {
			opts := []repro.Option{
				repro.WithN(n), repro.WithSeed(seed),
				repro.WithAlgorithm(repro.Tournament),
			}
			label := fmt.Sprintf("n=%d seed=%d", n, seed)

			simRes, err := repro.Elect(opts...)
			checkElection(t, "sim tournament "+label, n, simRes, err)

			liveRes, err := repro.Elect(append(opts, repro.WithBackend(repro.Live))...)
			checkElection(t, "live tournament "+label, n, liveRes, err)
		}
	}
}

// TestConformanceSift: both backends guarantee at least one sift survivor
// (Claim 3.1 / Lemma 3.6).
func TestConformanceSift(t *testing.T) {
	for _, algo := range []repro.Algorithm{repro.BasicSift, repro.HetSift} {
		for _, n := range []int{2, 8, 16} {
			for _, seed := range seeds {
				label := fmt.Sprintf("%s n=%d seed=%d", algo, n, seed)
				opts := []repro.Option{
					repro.WithN(n), repro.WithSeed(seed), repro.WithAlgorithm(algo),
				}
				simRes, err := repro.Sift(opts...)
				if err != nil {
					t.Fatalf("sim %s: %v", label, err)
				}
				if simRes.Survivors < 1 {
					t.Fatalf("sim %s: no survivors", label)
				}
				liveRes, err := repro.Sift(append(opts, repro.WithBackend(repro.Live))...)
				if err != nil {
					t.Fatalf("live %s: %v", label, err)
				}
				if liveRes.Survivors < 1 {
					t.Fatalf("live %s: no survivors", label)
				}
			}
		}
	}
}

// scenarioMatrix is the fault-injection conformance matrix: tight crash
// windows so crashes land mid-protocol, alone and combined with link
// latency, slowness and reordering. Delay magnitudes are kept small — the
// suite runs under the race detector.
var scenarioMatrix = []fault.Scenario{
	{Name: "crash-1", Crashes: 1, CrashWindow: 300 * time.Microsecond},
	{Name: "crash-minority", Crashes: fault.CrashMax, CrashWindow: 300 * time.Microsecond},
	{
		Name: "crash-jitter", Crashes: fault.CrashMax, CrashWindow: 500 * time.Microsecond,
		Link: fault.Dist{Kind: fault.Uniform, Jitter: 200 * time.Microsecond},
	},
	{
		Name: "chaos-lite", Crashes: fault.CrashMax, CrashWindow: 500 * time.Microsecond,
		Link:      fault.Dist{Kind: fault.Pareto, Jitter: 30 * time.Microsecond, Alpha: 1.3, Cap: 2 * time.Millisecond},
		SlowProcs: fault.SlowThirdOfN,
		Slow:      fault.Dist{Kind: fault.Uniform, Jitter: 100 * time.Microsecond},

		ReorderProb: 0.25,
		Reorder:     fault.Dist{Kind: fault.Uniform, Jitter: 150 * time.Microsecond},
	},
}

// TestConformanceCrashScenarios: across the scenario matrix, every
// surviving participant decides, decisions partition into at most one WIN
// and the rest LOSE, and a winnerless election implies the winner crashed.
func TestConformanceCrashScenarios(t *testing.T) {
	grid := []struct{ n, k int }{
		{3, 0}, {4, 0}, {5, 0}, {8, 0}, {9, 0}, {16, 0}, {8, 5},
	}
	for _, sc := range scenarioMatrix {
		for _, g := range grid {
			k := g.k
			if k == 0 {
				k = g.n
			}
			for _, seed := range seeds {
				label := fmt.Sprintf("%s n=%d k=%d seed=%d", sc.Name, g.n, k, seed)
				res, err := live.Elect(live.Config{N: g.n, K: g.k, Seed: seed, Scenario: sc})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(res.Crashed) > fault.MaxCrashes(g.n) {
					t.Fatalf("%s: %d participants crashed, model caps crashes at %d",
						label, len(res.Crashed), fault.MaxCrashes(g.n))
				}
				if got := len(res.Decisions) + len(res.Crashed); got != k {
					t.Fatalf("%s: %d decisions + %d crashed != %d participants",
						label, len(res.Decisions), len(res.Crashed), k)
				}
				winners := 0
				for id, d := range res.Decisions {
					switch d {
					case core.Win:
						winners++
						if id != res.Winner {
							t.Fatalf("%s: winner %d but %d decided WIN", label, res.Winner, id)
						}
					case core.Lose:
					default:
						t.Fatalf("%s: surviving processor %d has undecided outcome %v", label, id, d)
					}
				}
				if winners > 1 {
					t.Fatalf("%s: %d winners among survivors, want at most 1", label, winners)
				}
				if winners == 0 && len(res.Crashed) == 0 {
					t.Fatalf("%s: no winner yet nobody crashed", label)
				}
				if winners == 0 && res.Winner >= 0 {
					t.Fatalf("%s: Winner=%d reported without a WIN decision", label, res.Winner)
				}
			}
		}
	}
}

// TestConformanceSiftUnderCrashes: a sift round under the full crash budget
// still never kills every *returning* participant — an empty survivor set
// is legitimate only when some participant crashed.
func TestConformanceSiftUnderCrashes(t *testing.T) {
	sc := fault.Scenario{Name: "crash-minority", Crashes: fault.CrashMax, CrashWindow: 200 * time.Microsecond}
	for _, algo := range []live.Algorithm{live.AlgoBasicSift, live.AlgoHetSift} {
		for _, n := range []int{3, 8, 16} {
			for _, seed := range seeds {
				label := fmt.Sprintf("%s n=%d seed=%d", algo, n, seed)
				res, err := live.Sift(live.Config{N: n, Seed: seed, Algorithm: algo, Scenario: sc})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				survivors := 0
				for _, o := range res.Outcomes {
					if o == core.Survive {
						survivors++
					}
				}
				if survivors == 0 && len(res.Crashed) == 0 {
					t.Fatalf("%s: no survivor and no crash (Claim 3.1 violated)", label)
				}
			}
		}
	}
}

// TestScenarioThroughFacade: WithScenario works end to end through the
// public API, and is refused on the sim backend and for unknown names.
func TestScenarioThroughFacade(t *testing.T) {
	res, err := repro.Elect(repro.WithN(8), repro.WithSeed(2),
		repro.WithBackend(repro.Live), repro.WithScenario("crash-minority"))
	if err != nil && err != repro.ErrNoWinner {
		t.Fatalf("scenario election: %v", err)
	}
	if err == repro.ErrNoWinner && len(res.Crashed) == 0 {
		t.Error("ErrNoWinner without any crashed participant")
	}
	if _, err := repro.Elect(repro.WithN(8), repro.WithScenario("heavy-tail")); err == nil {
		t.Error("sim backend accepted a scenario")
	}
	if _, err := repro.Elect(repro.WithN(8), repro.WithBackend(repro.Live),
		repro.WithScenario("no-such-scenario")); err == nil {
		t.Error("unknown scenario name accepted")
	}
	rep, err := repro.Campaign(repro.WithN(8), repro.WithRuns(8), repro.WithWorkers(2),
		repro.WithSeed(3), repro.WithScenario("crash-1"))
	if err != nil {
		t.Fatalf("scenario campaign: %v", err)
	}
	if rep.Elected+rep.WinnerCrashed != rep.Runs {
		t.Errorf("campaign validity counts don't balance: %+v", rep)
	}
	if _, err := repro.Campaign(repro.WithN(8), repro.WithRuns(2), repro.WithBackend(repro.Sim),
		repro.WithSchedule(repro.Crashing), repro.WithFaults(3)); err == nil {
		t.Error("campaign silently accepted WithFaults (it would run fault-free)")
	}
}

// TestLiveBackendRejectsAdversaryOptions: adversary schedules and crash
// faults are sim-only concepts; the live backend must refuse them loudly
// rather than silently ignore them.
func TestLiveBackendRejectsAdversaryOptions(t *testing.T) {
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Live),
		repro.WithSchedule(repro.FlipAware)); err == nil {
		t.Error("live backend accepted an adversary schedule")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Live),
		repro.WithSchedule(repro.Crashing), repro.WithFaults(1)); err == nil {
		t.Error("live backend accepted crash faults")
	}
	if _, err := repro.Rename(repro.WithN(4), repro.WithBackend(repro.Live)); err == nil {
		t.Error("live backend accepted renaming (unsupported)")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Live),
		repro.WithBudget(100)); err == nil {
		t.Error("live backend accepted a kernel action budget")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Backend("quantum"))); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestLiveDirectAPI exercises internal/live.Elect without the repro façade,
// including k < n systems, so the conformance suite also covers the
// subsystem's own entry points.
func TestLiveDirectAPI(t *testing.T) {
	for _, g := range grid {
		res, err := live.Elect(live.Config{N: g.n, K: g.k, Seed: 11})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", g.n, g.k, err)
		}
		k := g.k
		if k == 0 {
			k = g.n
		}
		winners := 0
		for _, d := range res.Decisions {
			if d == core.Win {
				winners++
			}
		}
		if winners != 1 || len(res.Decisions) != k {
			t.Fatalf("n=%d k=%d: winners=%d decisions=%d", g.n, g.k, winners, len(res.Decisions))
		}
		if res.Winner < 0 || res.Winner >= sim.ProcID(k) {
			t.Fatalf("n=%d k=%d: winner %d outside participant range", g.n, g.k, res.Winner)
		}
	}
}
