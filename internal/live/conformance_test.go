package live_test

// Cross-backend conformance: for a grid of (n, k, seed, algorithm)
// configurations, the sim backend and the live backend must both satisfy
// the paper's safety properties — exactly one winner, every other
// participant loses. CI runs this file under the race detector
// (go test -race ./internal/live/...), so the live half also proves the
// backend memory-safe under real interleavings.

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/sim"
)

// grid is the conformance configuration set. k == 0 means k = n.
var grid = []struct {
	n, k int
}{
	{1, 0}, {2, 0}, {3, 0}, {4, 0}, {5, 0}, {8, 0}, {13, 0}, {16, 0},
	{8, 3}, {16, 5},
}

var seeds = []int64{1, 2, 3}

// checkElection asserts the safety contract shared by both backends.
func checkElection(t *testing.T, label string, k int, res repro.ElectionResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(res.Decisions) != k {
		t.Fatalf("%s: %d decisions, want %d", label, len(res.Decisions), k)
	}
	winners := 0
	for id, d := range res.Decisions {
		switch d {
		case core.Win:
			winners++
			if id != res.Winner {
				t.Fatalf("%s: winner %d but %d decided WIN", label, res.Winner, id)
			}
		case core.Lose:
		default:
			t.Fatalf("%s: processor %d has undecided outcome %v", label, id, d)
		}
	}
	if winners != 1 {
		t.Fatalf("%s: %d winners, want exactly 1", label, winners)
	}
	if res.Time <= 0 {
		t.Fatalf("%s: non-positive time metric %d", label, res.Time)
	}
}

// TestConformanceElection runs the PoisonPill election across the grid on
// both backends through the public repro API.
func TestConformanceElection(t *testing.T) {
	for _, g := range grid {
		for _, seed := range seeds {
			k := g.k
			if k == 0 {
				k = g.n
			}
			opts := []repro.Option{
				repro.WithN(g.n), repro.WithParticipants(k), repro.WithSeed(seed),
			}
			label := fmt.Sprintf("n=%d k=%d seed=%d", g.n, k, seed)

			simRes, err := repro.Elect(opts...)
			checkElection(t, "sim "+label, k, simRes, err)

			liveRes, err := repro.Elect(append(opts, repro.WithBackend(repro.Live))...)
			checkElection(t, "live "+label, k, liveRes, err)
		}
	}
}

// TestConformanceTournament runs the tournament baseline across a smaller
// grid on both backends (tournament matches are costlier per round).
func TestConformanceTournament(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		for _, seed := range seeds {
			opts := []repro.Option{
				repro.WithN(n), repro.WithSeed(seed),
				repro.WithAlgorithm(repro.Tournament),
			}
			label := fmt.Sprintf("n=%d seed=%d", n, seed)

			simRes, err := repro.Elect(opts...)
			checkElection(t, "sim tournament "+label, n, simRes, err)

			liveRes, err := repro.Elect(append(opts, repro.WithBackend(repro.Live))...)
			checkElection(t, "live tournament "+label, n, liveRes, err)
		}
	}
}

// TestConformanceSift: both backends guarantee at least one sift survivor
// (Claim 3.1 / Lemma 3.6).
func TestConformanceSift(t *testing.T) {
	for _, algo := range []repro.Algorithm{repro.BasicSift, repro.HetSift} {
		for _, n := range []int{2, 8, 16} {
			for _, seed := range seeds {
				label := fmt.Sprintf("%s n=%d seed=%d", algo, n, seed)
				opts := []repro.Option{
					repro.WithN(n), repro.WithSeed(seed), repro.WithAlgorithm(algo),
				}
				simRes, err := repro.Sift(opts...)
				if err != nil {
					t.Fatalf("sim %s: %v", label, err)
				}
				if simRes.Survivors < 1 {
					t.Fatalf("sim %s: no survivors", label)
				}
				liveRes, err := repro.Sift(append(opts, repro.WithBackend(repro.Live))...)
				if err != nil {
					t.Fatalf("live %s: %v", label, err)
				}
				if liveRes.Survivors < 1 {
					t.Fatalf("live %s: no survivors", label)
				}
			}
		}
	}
}

// TestLiveBackendRejectsAdversaryOptions: adversary schedules and crash
// faults are sim-only concepts; the live backend must refuse them loudly
// rather than silently ignore them.
func TestLiveBackendRejectsAdversaryOptions(t *testing.T) {
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Live),
		repro.WithSchedule(repro.FlipAware)); err == nil {
		t.Error("live backend accepted an adversary schedule")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Live),
		repro.WithSchedule(repro.Crashing), repro.WithFaults(1)); err == nil {
		t.Error("live backend accepted crash faults")
	}
	if _, err := repro.Rename(repro.WithN(4), repro.WithBackend(repro.Live)); err == nil {
		t.Error("live backend accepted renaming (unsupported)")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Live),
		repro.WithBudget(100)); err == nil {
		t.Error("live backend accepted a kernel action budget")
	}
	if _, err := repro.Elect(repro.WithN(4), repro.WithBackend(repro.Backend("quantum"))); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestLiveDirectAPI exercises internal/live.Elect without the repro façade,
// including k < n systems, so the conformance suite also covers the
// subsystem's own entry points.
func TestLiveDirectAPI(t *testing.T) {
	for _, g := range grid {
		res, err := live.Elect(live.Config{N: g.n, K: g.k, Seed: 11})
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", g.n, g.k, err)
		}
		k := g.k
		if k == 0 {
			k = g.n
		}
		winners := 0
		for _, d := range res.Decisions {
			if d == core.Win {
				winners++
			}
		}
		if winners != 1 || len(res.Decisions) != k {
			t.Fatalf("n=%d k=%d: winners=%d decisions=%d", g.n, g.k, winners, len(res.Decisions))
		}
		if res.Winner < 0 || res.Winner >= sim.ProcID(k) {
			t.Fatalf("n=%d k=%d: winner %d outside participant range", g.n, g.k, res.Winner)
		}
	}
}
