package live

import (
	"sync"
	"testing"

	"repro/internal/rt"
)

// TestQuorumIntersection: Propagate followed by a Collect on another
// processor must observe the write — the two majorities intersect.
func TestQuorumIntersection(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		sys := NewSystem(n, 1)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			NewComm(sys.Proc(0)).Propagate("reg", "hello")
		}()
		wg.Wait()

		// The writer reached a quorum; any later quorum collect intersects
		// it, so at least one view must carry the cell.
		var views []rt.View
		wg.Add(1)
		go func() {
			defer wg.Done()
			views = NewComm(sys.Proc(rt.ProcID(n - 1))).Collect("reg")
		}()
		wg.Wait()
		sys.Shutdown()

		if len(views) != n/2+1 {
			t.Fatalf("n=%d: collect returned %d views, want quorum %d", n, len(views), n/2+1)
		}
		found := false
		for _, v := range views {
			if val, ok := v.Get(0); ok && val == "hello" {
				found = true
			}
		}
		if !found {
			t.Fatalf("n=%d: completed propagate invisible to a later collect", n)
		}
	}
}

// TestWriterVersioning: a processor's later write must shadow its earlier
// one in every view that carries the cell.
func TestWriterVersioning(t *testing.T) {
	const n = 4
	sys := NewSystem(n, 1)
	var wg sync.WaitGroup
	var views []rt.View
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := NewComm(sys.Proc(0))
		c.Propagate("reg", 1)
		c.Propagate("reg", 2)
		views = NewComm(sys.Proc(0)).Collect("reg")
	}()
	wg.Wait()
	sys.Shutdown()
	for _, v := range views {
		if val, ok := v.Get(0); ok && val != 2 {
			t.Fatalf("view from %d shows stale value %v after overwrite", v.From, val)
		}
	}
}

// TestSendAwait: the generic Send/Await primitives of the seam work across
// goroutines.
func TestSendAwait(t *testing.T) {
	sys := NewSystem(2, 1)
	var wg sync.WaitGroup
	var got []any
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			sys.Proc(0).Send(1, i)
		}
	}()
	go func() {
		defer wg.Done()
		p := sys.Proc(1)
		p.AwaitRaw(3)
		got = p.Raw()
	}()
	wg.Wait()
	sys.Shutdown()
	if len(got) != 3 {
		t.Fatalf("received %d raw messages, want 3", len(got))
	}
}

// TestConcurrentPropagateCollect hammers one register array from every
// processor at once; under -race this doubles as the memory-safety check
// for the store and snapshot paths.
func TestConcurrentPropagateCollect(t *testing.T) {
	const n = 8
	sys := NewSystem(n, 7)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id rt.ProcID) {
			defer wg.Done()
			c := NewComm(sys.Proc(id))
			for round := 0; round < 20; round++ {
				c.Propagate("shared", round)
				views := c.Collect("shared")
				if len(views) < n/2+1 {
					t.Errorf("proc %d: %d views, want ≥ %d", id, len(views), n/2+1)
					return
				}
			}
		}(rt.ProcID(i))
	}
	wg.Wait()
	sys.Shutdown()
}

// TestSiftSurvivors: Claim 3.1 (at least one survivor) must hold on the
// live backend for both sift variants, at several sizes.
func TestSiftSurvivors(t *testing.T) {
	for _, algo := range []Algorithm{AlgoBasicSift, AlgoHetSift} {
		for _, n := range []int{1, 2, 7, 16} {
			res, err := Sift(Config{N: n, Seed: int64(n), Algorithm: algo})
			if err != nil {
				t.Fatalf("%s n=%d: %v", algo, n, err)
			}
			survivors := 0
			for _, o := range res.Outcomes {
				if o.String() == "SURVIVE" {
					survivors++
				}
			}
			if survivors < 1 {
				t.Fatalf("%s n=%d: no survivors", algo, n)
			}
		}
	}
}

// TestElectValidation: config errors are reported, not panicked.
func TestElectValidation(t *testing.T) {
	if _, err := Elect(Config{N: 0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Elect(Config{N: 4, K: 5}); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := Elect(Config{N: 4, Algorithm: AlgoBasicSift}); err == nil {
		t.Error("sift algorithm accepted by Elect")
	}
	if _, err := Sift(Config{N: 4, Algorithm: AlgoTournament}); err == nil {
		t.Error("election algorithm accepted by Sift")
	}
}

// TestMessagesAccounted: a two-processor election exchanges a plausible
// number of messages and reports a positive time metric.
func TestMessagesAccounted(t *testing.T) {
	res, err := Elect(Config{N: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages <= 0 {
		t.Error("no messages accounted for a 2-processor election")
	}
	if res.Time <= 0 {
		t.Error("zero communicate calls in an election")
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed wall-clock time")
	}
}
