package electd

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// discardConn is a transport.Conn stub that recycles reply frames, for
// driving Server.Handle from internal tests.
type discardConn struct{}

func (discardConn) Send(*wire.Msg) error { return nil }
func (discardConn) SendEncoded(frame []byte) error {
	wire.PutBuf(frame)
	return nil
}
func (discardConn) Close() error { return nil }

var _ transport.Conn = discardConn{}

// propagateFrame builds one single-entry propagate request.
func propagateFrame(election uint64, reg string, owner rt.ProcID, seq uint64, val rt.Value) *wire.Msg {
	return &wire.Msg{
		Kind: wire.KindPropagate, Election: election, Call: seq, From: owner, Reg: reg,
		Entries: []rt.Entry{{Reg: reg, Owner: owner, Seq: seq, Val: val}},
	}
}

// sameShardElections returns count distinct election IDs that all hash to
// one shard, so a churn test concentrates every operation on a single
// stripe instead of spreading across sixteen.
func sameShardElections(count int) []uint64 {
	want := electionShard(1)
	ids := make([]uint64, 0, count)
	for id := uint64(1); len(ids) < count; id++ {
		if electionShard(id) == want {
			ids = append(ids, id)
		}
	}
	return ids
}

// TestSteadyStateHotPathTakesNoLock is the acceptance check of the
// lock-free pass, stated as a counted fact rather than a claim: once an
// election instance exists, concurrent propagates and collects — the
// steady state — acquire the shard mutex exactly zero times. LockedOps
// counts every request-path acquisition (instance admission only), so a
// zero delta across the hammering window is the assertion.
func TestSteadyStateHotPathTakesNoLock(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	srv := NewServer(0)
	conn := discardConn{}

	const elections = 8
	for e := uint64(1); e <= elections; e++ {
		srv.Handle(conn, propagateFrame(e, "r", 1, 1, 0))
	}
	created := srv.LockedOps()
	if created != elections {
		t.Fatalf("LockedOps after creating %d instances = %d, want %d", elections, created, elections)
	}

	const workers = 8
	const opsPerWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := rt.ProcID(w + 2)
			for i := 0; i < opsPerWorker; i++ {
				e := uint64(1 + (w+i)%elections)
				if i%3 == 0 {
					srv.Handle(conn, &wire.Msg{Kind: wire.KindCollect, Election: e, Call: uint64(i), From: owner, Reg: "r"})
				} else {
					srv.Handle(conn, propagateFrame(e, "r", owner, uint64(i+2), i))
				}
			}
		}(w)
	}
	wg.Wait()

	if got := srv.LockedOps(); got != created {
		t.Fatalf("steady-state hot path acquired the shard mutex %d time(s); want 0 (LockedOps %d → %d)", got-created, created, got)
	}
	if got := srv.Served(); got < int64(elections+workers*opsPerWorker) {
		t.Fatalf("Served() = %d, want ≥ %d", got, elections+workers*opsPerWorker)
	}
}

// TestSnapshotImmutableUnderWinningMerge pins the RCU contract: a
// published snapshot handed to a reader never changes afterwards, no
// matter how many winning merges race with and follow the read. The
// retained encoding must stay byte-identical to the copy taken at read
// time, while fresh reads must observe the new writes.
func TestSnapshotImmutableUnderWinningMerge(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	st := newStore()
	for owner := rt.ProcID(0); owner < 4; owner++ {
		st.merge(rt.Entry{Reg: "r", Owner: owner, Seq: 1, Val: int(owner)})
	}
	tail, _ := st.snapshotTail("r")
	retained := tail
	pinned := append([]byte(nil), tail...)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(owner rt.ProcID) {
			defer wg.Done()
			for seq := uint64(2); seq < 400; seq++ {
				st.merge(rt.Entry{Reg: "r", Owner: owner, Seq: seq, Val: int(seq)})
				if seq%16 == 0 {
					st.snapshotTail("r") // concurrent rebuild/republish traffic
				}
			}
		}(rt.ProcID(w))
	}
	wg.Wait()

	if !bytes.Equal(retained, pinned) {
		t.Fatalf("published snapshot mutated under racing merges:\n  at read: %x\n  now:     %x", pinned, retained)
	}
	fresh, _ := st.snapshotTail("r")
	if bytes.Equal(fresh, pinned) {
		t.Fatalf("snapshot after %d winning merges is byte-identical to the pre-merge one", 4*398)
	}
	// The fresh snapshot must carry the final sequence numbers.
	snap := st.array("r").snap.Load()
	if snap == nil {
		t.Fatal("no published snapshot after collects")
	}
	for _, e := range snap.entries {
		if e.Seq != 399 {
			t.Fatalf("entry owner=%d seq=%d after merges up to 399", e.Owner, e.Seq)
		}
	}
}

// TestOneShardChurnCollectPropagateEvictRestart aims every operation the
// server supports at a single shard at once: steady-state propagates and
// collects, instance creation, explicit removal, TTL/LRU sweeping, and
// crash/restart — the lifecycle half mutating the published map under the
// shard mutex while the hot path reads it lock-free. Run under -race this
// is the memory-model check for the RCU map; the invariant checked here
// is merely that nothing deadlocks, panics, or loses the shard's served
// accounting.
func TestOneShardChurnCollectPropagateEvictRestart(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	srv := NewServerOpts(0, ServerOptions{
		TTL:             2 * time.Millisecond,
		SweepInterval:   time.Millisecond,
		MaxLivePerShard: 8,
	})
	defer srv.Close()
	conn := discardConn{}
	ids := sameShardElections(16)

	stop := make(chan struct{})
	time.AfterFunc(150*time.Millisecond, func() { close(stop) })
	var wg sync.WaitGroup

	// Steady-state + creation traffic: propagates recreate whatever the
	// sweeper or the evictor goroutine tears down.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := rt.ProcID(w + 1)
			for seq := uint64(1); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				e := ids[int(seq)%len(ids)]
				srv.Handle(conn, propagateFrame(e, "r", owner, seq, w))
				srv.Handle(conn, &wire.Msg{Kind: wire.KindCollect, Election: e, Call: seq, From: owner, Reg: "r"})
			}
		}(w)
	}
	// Eviction churn: explicit removal racing the sweeper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			srv.RemoveElection(ids[i%len(ids)])
		}
	}()
	// Restart churn: the crash flag flips while requests are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			srv.Crash()
			srv.Restart()
		}
	}()
	wg.Wait()

	srv.Restart()
	served := srv.Served()
	srv.Handle(conn, &wire.Msg{Kind: wire.KindCollect, Election: ids[0], Call: 1, From: 1, Reg: "r"})
	if got := srv.Served(); got != served+1 {
		t.Fatalf("served accounting drifted: %d → %d after one request", served, got)
	}
	if srv.Started() == 0 || srv.Evicted()+srv.removed.Load() == 0 {
		t.Fatalf("churn test exercised nothing: started=%d evicted=%d removed=%d",
			srv.Started(), srv.Evicted(), srv.removed.Load())
	}
}

// TestAdmissionControlExactUnderRace: MaxLivePerShard is enforced with an
// exact count even when many creators race for the last slots — the one
// job the remaining request-path lock exists to do.
func TestAdmissionControlExactUnderRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const bound = 4
	srv := NewServerOpts(0, ServerOptions{MaxLivePerShard: bound})
	defer srv.Close()
	conn := discardConn{}
	ids := sameShardElections(32)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(owner rt.ProcID) {
			defer wg.Done()
			for _, e := range ids {
				srv.Handle(conn, propagateFrame(e, "r", owner, 1, 0))
			}
		}(rt.ProcID(w + 1))
	}
	wg.Wait()

	if got := srv.Elections(); got != bound {
		t.Fatalf("shard holds %d instances, want exactly the bound %d", got, bound)
	}
	if srv.Shed() == 0 {
		t.Fatal("no propagate was shed despite 32 elections racing for 4 slots")
	}
}
