package electd_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/electd"
	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// electOnce runs one k-participant leader election on the cluster under the
// given election ID and returns the decisions.
func electOnce(t *testing.T, cl *electd.Cluster, election uint64, k int, seed int64) []core.Decision {
	t.Helper()
	decisions := make([]core.Decision, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := electd.NewParticipant(rt.ProcID(i), cl.N(), seed+int64(i)*1e6)
			c := cl.NewComm(p, election, nil)
			s := core.NewState(p, "leaderelect")
			decisions[i] = core.LeaderElectWithState(c, "elect", s)
		}(i)
	}
	wg.Wait()
	return decisions
}

// uniqueWinner asserts the safety contract on one election's decisions.
func uniqueWinner(t *testing.T, label string, decisions []core.Decision) rt.ProcID {
	t.Helper()
	winner := rt.ProcID(-1)
	for i, d := range decisions {
		switch d {
		case core.Win:
			if winner >= 0 {
				t.Fatalf("%s: processors %d and %d both won", label, winner, i)
			}
			winner = rt.ProcID(i)
		case core.Lose:
		default:
			t.Fatalf("%s: participant %d undecided (%v)", label, i, d)
		}
	}
	if winner < 0 {
		t.Fatalf("%s: no winner", label)
	}
	return winner
}

// TestElectionOverLoopback: the full PoisonPill election through servers,
// pool and codec on the in-process network, across sizes and seeds.
func TestElectionOverLoopback(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			cl, err := electd.NewCluster(transport.NewLoopback(), n)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("n=%d seed=%d", n, seed)
			uniqueWinner(t, label, electOnce(t, cl, 1, n, seed))
			cl.Close()
		}
	}
}

// TestMultiplexedElections: many elections share one server set
// concurrently, each with its own ID; every instance elects a unique
// winner and the servers host disjoint per-instance state.
func TestMultiplexedElections(t *testing.T) {
	const n, k, elections = 5, 4, 24
	cl, err := electd.NewCluster(transport.NewLoopback(), n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	var wg sync.WaitGroup
	results := make([][]core.Decision, elections)
	for e := 0; e < elections; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			results[e] = electOnce(t, cl, cl.NextElectionID(), k, int64(e+1))
		}(e)
	}
	wg.Wait()
	for e, decisions := range results {
		uniqueWinner(t, fmt.Sprintf("election %d", e), decisions)
	}
	for i := 0; i < n; i++ {
		if got := cl.Server(rt.ProcID(i)).Elections(); got == 0 {
			t.Fatalf("server %d hosted no election state", i)
		}
	}
	// Finished instances must be evictable: retention is caller-driven
	// (the campaign engine drops each election as its run completes).
	for e := uint64(1); e <= elections; e++ {
		cl.RemoveElection(e)
	}
	for i := 0; i < n; i++ {
		if got := cl.Server(rt.ProcID(i)).Elections(); got != 0 {
			t.Fatalf("server %d still hosts %d elections after RemoveElection", i, got)
		}
	}
}

// TestClientServerSplitOverTCP: participants in a "separate process" shape —
// their own DialPool over real TCP sockets, servers behind listeners — with
// more participants than servers (clients are not replicas).
func TestClientServerSplitOverTCP(t *testing.T) {
	const n, k = 3, 7
	nw := transport.NewTCP()
	cl, err := electd.NewCluster(nw, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A second, independent client pool, as a separate participant process
	// would build — the cluster's own pool is not used.
	pool, err := electd.DialPool(nw, cl.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	decisions := make([]core.Decision, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := electd.NewParticipant(rt.ProcID(i), k, int64(i+1))
			c := pool.NewComm(p, 42, nil)
			s := core.NewState(p, "leaderelect")
			decisions[i] = core.LeaderElectWithState(c, "elect", s)
		}(i)
	}
	wg.Wait()
	uniqueWinner(t, "tcp split", decisions)
}

// TestQuorumSurvivesServerCrashes: with ⌈n/2⌉−1 servers crashed, elections
// still complete with a unique winner — participants only ever wait for the
// majority that stays up.
func TestQuorumSurvivesServerCrashes(t *testing.T) {
	for _, n := range []int{3, 5, 9} {
		cl, err := electd.NewCluster(transport.NewLoopback(), n)
		if err != nil {
			t.Fatal(err)
		}
		crashes := (n - 1) / 2
		for i := 0; i < crashes; i++ {
			cl.Crash(rt.ProcID(i))
		}
		label := fmt.Sprintf("n=%d crashed=%d", n, crashes)
		uniqueWinner(t, label, electOnce(t, cl, 1, n, 7))
		cl.Close()
	}
}

// TestDialToleratesDeadMinority: a client pool must come up with up to
// ⌈n/2⌉−1 servers unreachable at dial time (the same fault as a later
// crash) and still elect; one server short of a majority must fail loudly.
func TestDialToleratesDeadMinority(t *testing.T) {
	const n = 5
	nw := transport.NewLoopback()
	cl, err := electd.NewCluster(nw, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addrs := cl.Addrs()
	addrs[1] = "loop:9991" // never listened
	addrs[3] = "loop:9993"
	pool, err := electd.DialPool(nw, addrs)
	if err != nil {
		t.Fatalf("dial with a dead minority: %v", err)
	}
	defer pool.Close()
	decisions := make([]core.Decision, 3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := electd.NewParticipant(rt.ProcID(i), 3, int64(i+1))
			s := core.NewState(p, "leaderelect")
			decisions[i] = core.LeaderElectWithState(pool.NewComm(p, 8, nil), "elect", s)
		}(i)
	}
	wg.Wait()
	uniqueWinner(t, "dead minority", decisions)

	addrs[0] = "loop:9990" // three dead: majority impossible
	if _, err := electd.DialPool(nw, addrs); err == nil {
		t.Fatal("pool came up without a reachable majority")
	}
}

// countingNetwork wraps a Network and counts the connections it hands out
// and the Closes they receive — the instrumentation for pinning connection
// lifecycle contracts.
type countingNetwork struct {
	transport.Network
	dialed atomic.Int64
	closed atomic.Int64
}

func (n *countingNetwork) Dial(addr string, h transport.Handler) (transport.Conn, error) {
	c, err := n.Network.Dial(addr, h)
	if err != nil {
		return nil, err
	}
	n.dialed.Add(1)
	return &countingConn{Conn: c, net: n}, nil
}

type countingConn struct {
	transport.Conn
	net  *countingNetwork
	once sync.Once
}

func (c *countingConn) Close() error {
	c.once.Do(func() { c.net.closed.Add(1) })
	return c.Conn.Close()
}

// TestDialFailureClosesDialedConns: when DialPool gives up because a
// majority is unreachable, the minority of connections it did establish
// must be closed, not leaked — a client retrying startup in a loop would
// otherwise accumulate sockets.
func TestDialFailureClosesDialedConns(t *testing.T) {
	const n = 5
	lo := transport.NewLoopback()
	cl, err := electd.NewCluster(lo, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addrs := cl.Addrs()
	addrs[1] = "loop:9991" // three dead: majority impossible
	addrs[2] = "loop:9992"
	addrs[3] = "loop:9993"
	nw := &countingNetwork{Network: lo}
	if _, err := electd.DialPool(nw, addrs); err == nil {
		t.Fatal("pool came up without a reachable majority")
	}
	if d := nw.dialed.Load(); d != 2 {
		t.Fatalf("dialed %d connections, want 2", d)
	}
	if c := nw.closed.Load(); c != 2 {
		t.Fatalf("startup failure closed %d of 2 dialed connections — the rest leaked", c)
	}
}

// failAfterNetwork counts dials through countingNetwork but fails every
// dial after the first ok successes — the instrument for a mid-link shard
// failure, where a server's connection set is only partially established.
type failAfterNetwork struct {
	countingNetwork
	ok       int64
	attempts atomic.Int64
}

func (n *failAfterNetwork) Dial(addr string, h transport.Handler) (transport.Conn, error) {
	if n.attempts.Add(1) > n.ok {
		return nil, fmt.Errorf("induced dial failure to %s", addr)
	}
	return n.countingNetwork.Dial(addr, h)
}

// TestDialFailureClosesShardedConns: the startup-failure contract with
// connection sharding on. Every shard of every server that did answer must
// be closed — including a link's partial shard set when the failure lands
// mid-link — so a retry loop never accumulates sockets, on TCP or UDP.
func TestDialFailureClosesShardedConns(t *testing.T) {
	const n = 5
	lo := transport.NewLoopback()
	cl, err := electd.NewCluster(lo, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Dials 1–3 succeed; dial 4 — server 1's second shard — and everything
	// after it fail. Server 0 connects whole (2 shards), server 1 half-
	// connects, servers 2–4 never do: majority impossible, and all 3
	// established connections must come back closed.
	nw := &failAfterNetwork{countingNetwork: countingNetwork{Network: lo}, ok: 3}
	if _, err := electd.DialPoolOpts(nw, cl.Addrs(), electd.PoolOptions{ConnShards: 2}); err == nil {
		t.Fatal("pool came up with four of five servers undialable")
	}
	if d := nw.dialed.Load(); d != 3 {
		t.Fatalf("dialed %d connections, want 3", d)
	}
	if c := nw.closed.Load(); c != 3 {
		t.Fatalf("startup failure closed %d of 3 dialed connections — the rest leaked", c)
	}
}

// TestDialFailureClosesUDPSockets: the same contract on the real datagram
// transport. A UDP dial to a dead port succeeds (connectionless), so the
// unreachable majority here is unresolvable addresses — the failure mode
// UDP startup actually has — and the bound sockets of the resolvable
// minority must be closed, not leaked.
func TestDialFailureClosesUDPSockets(t *testing.T) {
	const n = 5
	udp := transport.NewUDP()
	cl, err := electd.NewCluster(udp, n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	addrs := cl.Addrs()
	addrs[1] = "%%%unresolvable"
	addrs[2] = "%%%unresolvable"
	addrs[3] = "%%%unresolvable"
	nw := &countingNetwork{Network: udp}
	if _, err := electd.DialPool(nw, addrs); err == nil {
		t.Fatal("pool came up without a resolvable majority")
	}
	if d := nw.dialed.Load(); d != 2 {
		t.Fatalf("dialed %d sockets, want 2", d)
	}
	if c := nw.closed.Load(); c != 2 {
		t.Fatalf("startup failure closed %d of 2 bound sockets — the rest leaked", c)
	}
}

// TestCoalescedElectionsBatchFrames: concurrent elections multiplexed over
// one pool must elect correctly AND actually coalesce — fewer wire frames
// than messages — while a NoCoalesce pool sends frame-per-message and
// reports zero coalescer traffic. Byte accounting must agree between the
// two modes: batching is transport framing, not payload.
func TestCoalescedElectionsBatchFrames(t *testing.T) {
	const n, k, elections = 5, 4, 8
	run := func(opts electd.PoolOptions) (msgs, frames, bytes int64) {
		cl, err := electd.NewClusterOpts(transport.NewLoopback(), n, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		var wg sync.WaitGroup
		results := make([][]core.Decision, elections)
		clients := make([][]*electd.Client, elections)
		for e := 0; e < elections; e++ {
			wg.Add(1)
			go func(e int) {
				defer wg.Done()
				decisions := make([]core.Decision, k)
				cls := make([]*electd.Client, k)
				var inner sync.WaitGroup
				for i := 0; i < k; i++ {
					inner.Add(1)
					go func(i int) {
						defer inner.Done()
						p := electd.NewParticipant(rt.ProcID(i), k, int64(e*100+i+1))
						c := cl.NewComm(p, uint64(e+1), nil)
						cls[i] = c
						s := core.NewState(p, "leaderelect")
						decisions[i] = core.LeaderElectWithState(c, "elect", s)
					}(i)
				}
				inner.Wait()
				results[e], clients[e] = decisions, cls
			}(e)
		}
		wg.Wait()
		for e, decisions := range results {
			uniqueWinner(t, fmt.Sprintf("election %d", e), decisions)
			for _, c := range clients[e] {
				bytes += c.Bytes()
			}
		}
		msgs, frames = cl.Pool().CoalesceStats()
		return msgs, frames, bytes
	}

	msgs, frames, batchedBytes := run(electd.PoolOptions{})
	if msgs == 0 {
		t.Fatal("coalescers saw no traffic")
	}
	if frames > msgs {
		t.Fatalf("impossible stats: %d messages in %d frames", msgs, frames)
	}
	// Pool-level multi-op coalescing is opportunistic (it needs enqueues to
	// overlap a flush, which scheduling may or may not produce here — the
	// deterministic guarantee is pinned by TestCoalescerBatchesUnderLoad,
	// and the transport write loops batch again downstream), so the ratio
	// is reported rather than asserted.
	t.Logf("pool coalesced %d messages into %d frames (%.2fx)", msgs, frames, float64(msgs)/float64(frames))

	plainMsgs, plainFrames, plainBytes := run(electd.PoolOptions{NoCoalesce: true})
	if plainMsgs != 0 || plainFrames != 0 {
		t.Fatalf("NoCoalesce pool reported coalescer traffic: %d msgs, %d frames", plainMsgs, plainFrames)
	}
	if batchedBytes == 0 || plainBytes == 0 {
		t.Fatal("byte accounting went silent")
	}
}

// TestReadYourWrites: a client's completed Propagate is visible to every
// subsequent Collect by anyone — the regular-register property through the
// client/server split (quorum intersection).
func TestReadYourWrites(t *testing.T) {
	const n = 5
	cl, err := electd.NewCluster(transport.NewLoopback(), n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	writer := cl.NewComm(electd.NewParticipant(0, n, 1), 1, nil)
	reader := cl.NewComm(electd.NewParticipant(1, n, 2), 1, nil)
	writer.Propagate("r", 41)
	writer.Propagate("r", 42)
	found := false
	for _, v := range reader.Collect("r") {
		if val, ok := v.Get(0); ok {
			if val != 42 {
				t.Fatalf("stale value %v (writer versioning broken)", val)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("completed propagate invisible to a subsequent collect")
	}
	if writer.Calls() != 2 || reader.Calls() != 1 {
		t.Fatalf("communicate-call counts: writer %d (want 2), reader %d (want 1)", writer.Calls(), reader.Calls())
	}
	if writer.Messages() == 0 || writer.Bytes() == 0 {
		t.Fatal("traffic counters stayed zero")
	}
}

// TestInjectedDelayStillElects: per-link delay samplers (the scenario
// engine's hook) slow elections down without breaking them.
func TestInjectedDelayStillElects(t *testing.T) {
	const n = 4
	cl, err := electd.NewCluster(transport.NewLoopback(), n)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	decisions := make([]core.Decision, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := electd.NewParticipant(rt.ProcID(i), n, int64(i+1))
			delay := func(to int) time.Duration {
				if to%2 == 0 {
					return 200 * time.Microsecond
				}
				return 0
			}
			c := cl.NewComm(p, 1, delay)
			s := core.NewState(p, "leaderelect")
			decisions[i] = core.LeaderElectWithState(c, "elect", s)
		}(i)
	}
	wg.Wait()
	uniqueWinner(t, "delayed", decisions)
}

// TestServerIgnoresNoise: replies and unknown kinds arriving at a server
// must not corrupt state or crash it.
func TestServerIgnoresNoise(t *testing.T) {
	srv := electd.NewServer(0)
	nw := transport.NewLoopback()
	ln, err := nw.Listen(srv.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan *wire.Msg, 4)
	conn, err := nw.Dial(ln.Addr(), func(_ transport.Conn, m *wire.Msg) { got <- m })
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	conn.Send(&wire.Msg{Kind: wire.KindAck, Call: 1, From: 3})                            //nolint:errcheck
	conn.Send(&wire.Msg{Kind: wire.KindView, Call: 2, From: 3})                           //nolint:errcheck
	conn.Send(&wire.Msg{Kind: wire.KindCollect, Election: 1, Call: 3, From: 3, Reg: "r"}) //nolint:errcheck
	select {
	case m := <-got:
		if m.Kind != wire.KindView || m.Call != 3 {
			t.Fatalf("expected the collect's view, got %+v", m)
		}
		if len(m.Entries) != 0 {
			t.Fatalf("noise messages materialised state: %+v", m.Entries)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server stopped answering after noise")
	}
}
