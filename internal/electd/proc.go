package electd

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/rt"
)

// Participant is a minimal rt.Procer for running the election algorithms
// as a pure network client — one goroutine, a private PRNG, no backend
// kernel. It is what cmd/electd and client-only processes hand to
// core.LeaderElect next to a Pool client; live-backend runs use the richer
// live.Proc (crash unwinding, scenario throttling) instead.
//
// The algorithms built on rt.Comm communicate exclusively through the
// quorum layer, so Send and Await exist only to complete the interface:
// Send drops (there are no peer mailboxes in a client process) and Await
// spin-yields on its condition.
type Participant struct {
	id  rt.ProcID
	n   int
	rng *rand.Rand

	mu        sync.Mutex
	published any
}

// NewParticipant creates participant id with a deterministic private PRNG.
// ids is the participant id space — the "n" the algorithms see: every
// participant id in the election must lie in [0, ids), since the paper's
// algorithms size their bookkeeping (and the PoisonPill coin bias 1/√n) by
// it. It is independent of the server count: in the client/server split the
// quorum size comes from the Pool, not from here.
func NewParticipant(id rt.ProcID, ids int, seed int64) *Participant {
	return &Participant{id: id, n: ids, rng: rand.New(rand.NewSource(seed))}
}

// ID implements rt.Procer.
func (p *Participant) ID() rt.ProcID { return p.id }

// N implements rt.Procer: the participant id space.
func (p *Participant) N() int { return p.n }

// Rand implements rt.Procer: the participant's private PRNG, owned by its
// algorithm goroutine.
func (p *Participant) Rand() *rand.Rand { return p.rng }

// Send implements rt.Procer by dropping the message: a client-only process
// has no peer mailboxes, and the rt.Comm algorithms never use Send.
func (p *Participant) Send(to rt.ProcID, payload any) {}

// Await implements rt.Procer by yielding until cond holds. Conditions in a
// client process can only be flipped by other local goroutines.
func (p *Participant) Await(cond func() bool) {
	for !cond() {
		runtime.Gosched()
	}
}

// Pause implements rt.Procer.
func (p *Participant) Pause() { runtime.Gosched() }

// Flip implements rt.Procer: a biased local coin flip followed by a yield,
// preserving the "flip, then lose control" shape of the model.
func (p *Participant) Flip(prob float64) int {
	v := 0
	if p.rng.Float64() < prob {
		v = 1
	}
	runtime.Gosched()
	return v
}

// Publish implements rt.Procer.
func (p *Participant) Publish(state any) {
	p.mu.Lock()
	p.published = state
	p.mu.Unlock()
}

// Published returns the last published state.
func (p *Participant) Published() any {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.published
}
