package electd

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/transport"
)

// Soak is the service-endurance harness: hundreds of thousands of short
// elections over ONE long-running cluster with TTL eviction on, proving
// that a standalone electd deployment neither leaks election state nor
// drifts its heap — the property a benchmark (fresh cluster per run) can
// never witness. It is shared by the soak test, the CI smoke job, and
// `electd -soak`.
//
// The run is batched: elections execute in waves of bounded concurrency,
// and between waves the harness forces a GC and samples the live heap.
// Post-GC HeapAlloc is the honest signal — it excludes garbage awaiting
// collection and pool slack, so a monotonic rise means retained state.

// SoakConfig parameterizes one soak run. Zero fields take the defaults
// noted on each.
type SoakConfig struct {
	N         int // servers; default 3
	K         int // participants per election; default 4
	Elections int // total elections; default 2000
	Workers   int // concurrent elections per wave; default 8

	// Server lifecycle under test. TTL defaults to 100ms with a 20ms sweep
	// — short enough that eviction happens constantly during the run —
	// and MaxLivePerShard to 512 (a backstop; the soak should never hit it).
	TTL             time.Duration
	SweepInterval   time.Duration
	MaxLivePerShard int

	// HeapSamples is how many post-GC heap samples to take; default 16.
	// One extra warmup wave runs before sampling starts, so pools and
	// caches reach steady state off the record.
	HeapSamples int

	// Network defaults to in-process loopback; pass transport.NewTCP() to
	// soak real sockets.
	Network transport.Network

	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

func (cfg *SoakConfig) defaults() {
	if cfg.N <= 0 {
		cfg.N = 3
	}
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Elections <= 0 {
		cfg.Elections = 2000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 100 * time.Millisecond
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = 20 * time.Millisecond
	}
	if cfg.MaxLivePerShard <= 0 {
		cfg.MaxLivePerShard = 512
	}
	if cfg.HeapSamples <= 0 {
		cfg.HeapSamples = 16
	}
	if cfg.Network == nil {
		cfg.Network = transport.NewLoopback()
	}
}

// SoakReport is one run's evidence: what ran, what the service counted,
// what the heap did. Check turns it into a verdict.
type SoakReport struct {
	Elections int // elections completed (warmup included)
	Invalid   int // elections without a unique winner — must be 0
	Shed      int // election attempts aborted by busy replies and retried

	// Server-side accounting, summed across replicas at the end.
	Served     int64 // requests answered
	StartedSrv int64 // election instances created
	Evicted    int64 // instances the sweeper reclaimed
	FinalLive  int   // instances still live at the end

	// Client-side accounting, summed over every participant.
	ClientMsgs  int64
	ClientBytes int64

	// HeapAlloc are the post-GC samples, in run order.
	HeapAlloc []uint64
	// FirstQMean and LastQMean are the means of the first and last
	// quartile of samples — the flatness comparison Check applies.
	FirstQMean, LastQMean float64

	// Snapshot is the final metrics scrape, for the artifact and the
	// metrics-vs-own-counts cross-checks.
	Snapshot obs.Snapshot
}

// heapSlack is the absolute give Check allows on top of the 10% relative
// bar: tiny heaps jitter proportionally, and half a megabyte of pool or
// runtime noise is not a leak at any scale this harness runs.
const heapSlack = 512 << 10

// Check applies the acceptance invariants and returns the first violation:
// every election valid, eviction actually running, live state not
// accumulating, the heap's last quartile within 10% (plus absolute slack)
// of its first, and the metrics agreeing with the service's own counters.
func (r *SoakReport) Check() error {
	if r.Invalid != 0 {
		return fmt.Errorf("soak: %d of %d elections had no unique winner", r.Invalid, r.Elections)
	}
	if r.Evicted == 0 {
		return fmt.Errorf("soak: TTL sweeper evicted nothing across %d elections — eviction is not running", r.Elections)
	}
	if int64(r.FinalLive) >= r.StartedSrv {
		return fmt.Errorf("soak: %d instances live at the end of %d started — election state accumulates", r.FinalLive, r.StartedSrv)
	}
	if r.LastQMean > r.FirstQMean*1.10+heapSlack {
		return fmt.Errorf("soak: heap grew %.0f → %.0f bytes (first vs last quartile mean, +%.1f%%) — leak",
			r.FirstQMean, r.LastQMean, 100*(r.LastQMean-r.FirstQMean)/r.FirstQMean)
	}
	if got := r.Snapshot.Total("electd_requests_served_total"); got != r.Served {
		return fmt.Errorf("soak: /metrics served total %d != servers' own count %d", got, r.Served)
	}
	if got := r.Snapshot.Total("electd_elections_started_total"); got != r.StartedSrv {
		return fmt.Errorf("soak: /metrics started total %d != servers' own count %d", got, r.StartedSrv)
	}
	if got := r.Snapshot.Total("electd_elections_evicted_total"); got != r.Evicted {
		return fmt.Errorf("soak: /metrics evicted total %d != servers' own count %d", got, r.Evicted)
	}
	if r.ClientMsgs == 0 || r.ClientBytes == 0 {
		return fmt.Errorf("soak: client traffic accounting went silent (msgs=%d bytes=%d)", r.ClientMsgs, r.ClientBytes)
	}
	return nil
}

// Soak runs one endurance pass and returns its report; err is non-nil only
// for harness failures (cluster startup), never for invariant violations —
// those are the report's to tell, via Check.
func Soak(cfg SoakConfig) (*SoakReport, error) {
	cfg.defaults()
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	transport.RegisterMetrics(reg)
	cl, err := NewClusterWith(cfg.Network, cfg.N, ClusterOptions{
		Pool: PoolOptions{Metrics: reg},
		Server: ServerOptions{
			TTL:             cfg.TTL,
			SweepInterval:   cfg.SweepInterval,
			MaxLivePerShard: cfg.MaxLivePerShard,
			Metrics:         reg,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	rep := &SoakReport{}
	var invalid, shed, elections atomic.Int64
	var clientMsgs, clientBytes atomic.Int64

	// runOne runs a single election to a valid conclusion, retrying (with a
	// fresh instance ID) attempts that a busy server sheds. Seeds derive
	// from the run index so reruns are reproducible.
	runOne := func(run int) {
		for attempt := 0; ; attempt++ {
			id := cl.NextElectionID()
			decisions := make([]core.Decision, cfg.K)
			busy := make([]bool, cfg.K)
			var wg sync.WaitGroup
			for i := 0; i < cfg.K; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					seed := int64(run)*1_000_003 + int64(attempt)*7919 + int64(i) + 1
					p := NewParticipant(rt.ProcID(i), cfg.K, seed)
					c := cl.NewComm(p, id, nil)
					err := CatchBusy(func() {
						s := core.NewState(p, "leaderelect")
						decisions[i] = core.LeaderElectWithState(c, "elect", s)
					})
					busy[i] = err != nil
					clientMsgs.Add(c.Messages())
					clientBytes.Add(c.Bytes())
				}(i)
			}
			wg.Wait()
			wasShed := false
			for _, b := range busy {
				wasShed = wasShed || b
			}
			if wasShed {
				// The attempt was refused admission somewhere; its partial
				// state is the TTL sweeper's to reclaim. Back off and rerun
				// the whole election under a fresh ID.
				shed.Add(1)
				if attempt < 50 {
					time.Sleep(time.Duration(attempt+1) * time.Millisecond)
					continue
				}
				invalid.Add(1) // persistent refusal counts against the run
			} else {
				winners := 0
				for _, d := range decisions {
					if d == core.Win {
						winners++
					}
				}
				if winners != 1 {
					invalid.Add(1)
				}
			}
			elections.Add(1)
			return
		}
	}

	// runWave runs count elections at the configured concurrency.
	runWave := func(first, count int) {
		idx := make(chan int, count)
		for i := 0; i < count; i++ {
			idx <- first + i
		}
		close(idx)
		workers := cfg.Workers
		if workers > count {
			workers = count
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for run := range idx {
					runOne(run)
				}
			}()
		}
		wg.Wait()
	}

	wave := cfg.Elections / cfg.HeapSamples
	if wave < 1 {
		wave = 1
	}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	runWave(0, wave) // warmup: steady-state the pools off the record
	next := wave
	for s := 0; s < cfg.HeapSamples && next < cfg.Elections+wave; s++ {
		runWave(next, wave)
		next += wave
		rep.HeapAlloc = append(rep.HeapAlloc, heapSample())
		logf("soak: %d elections, heap %d KiB, %d live instances",
			elections.Load(), rep.HeapAlloc[len(rep.HeapAlloc)-1]>>10, cl.Server(0).Elections())
	}

	// Quiescent point: everything client-side has returned. Stop the
	// sweepers before reading, so the counters cannot move between the
	// servers' own reads and the metrics snapshot they are checked against.
	for i := 0; i < cl.N(); i++ {
		cl.Server(rt.ProcID(i)).Close() //nolint:errcheck // always nil
	}
	rep.Elections = int(elections.Load())
	rep.Invalid = int(invalid.Load())
	rep.Shed = int(shed.Load())
	rep.ClientMsgs = clientMsgs.Load()
	rep.ClientBytes = clientBytes.Load()
	for i := 0; i < cl.N(); i++ {
		srv := cl.Server(rt.ProcID(i))
		rep.Served += srv.Served()
		rep.StartedSrv += srv.Started()
		rep.Evicted += srv.Evicted()
		rep.FinalLive += srv.Elections()
	}
	rep.FirstQMean, rep.LastQMean = quartileMeans(rep.HeapAlloc)
	rep.Snapshot = reg.Snapshot()
	return rep, nil
}

// heapSample forces a collection and reads the live heap.
func heapSample() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// quartileMeans returns the means of the first and last quarter of the
// samples (at least one sample each).
func quartileMeans(samples []uint64) (first, last float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	q := len(samples) / 4
	if q < 1 {
		q = 1
	}
	for _, v := range samples[:q] {
		first += float64(v)
	}
	for _, v := range samples[len(samples)-q:] {
		last += float64(v)
	}
	return first / float64(q), last / float64(q)
}
