package electd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// callShards is the number of lock stripes the pool's pending-call table
// splits into — a power of two so routing a reply is one mask. Call IDs
// come from a single counter, so consecutive calls (the concurrent ones,
// under load) land on consecutive stripes and two elections in flight at
// once practically never serialize on a call-table lock.
const callShards = 16

// coalShards is the number of independent group-commit coalescers per
// server connection. Elections are pinned to a coalescer by election-ID
// hash: participants of one election still batch together (their messages
// are the ones that naturally travel as one wave), while unrelated
// elections enqueue on different locks and flush in parallel.
const (
	coalShardBits = 3
	coalShards    = 1 << coalShardBits
)

// coalShardOf maps an election ID to its coalescer stripe, with the same
// Fibonacci hash as the server side (see electionShard).
func coalShardOf(election uint64) int {
	return int((election * 0x9E3779B97F4A7C15) >> (64 - coalShardBits))
}

// callShard is one stripe of the pending-call table, padded so stripes'
// locks sit on distinct cache lines.
type callShard struct {
	mu    sync.Mutex
	calls map[uint64]*pending

	_ [48]byte // pad the 16 mutex+map bytes to a full 64-byte cache line
}

// Pool is a client process's connection pool over the n election servers:
// one pooled transport connection per server, shared by every participant
// and election instance in the process, with a call table routing replies
// back to the communicate call that is waiting for them.
//
// The pool is the coalescing and routing point of the quorum hot path, and
// both roles are sharded so concurrent elections scale with cores instead
// of convoying on one mutex: the pending-call table is striped by call ID,
// and each server connection carries coalShards group-commit coalescers
// striped by election ID — two elections never touch the same lock on
// either path. Each request frame is encoded once, not once per server,
// and pending-call slots and their reply channels are recycled, so a
// steady-state election allocates only its payload entries.
type Pool struct {
	n int
	// links holds one slot per server, each an atomically swappable
	// connection + coalescer bundle: sends load the slot lock-free, and
	// Redial swaps in a fresh bundle when a crashed server recovers — the
	// transport half of crash-recovery. A nil slot is an undialed server.
	links []atomic.Pointer[serverLink]

	// Redial context, fixed at dial time.
	nw         transport.Network
	addrs      []string
	noCoalesce bool
	connShards int // connections dialed per server; ≥ 1

	// defaultRetransmit arms every NewComm client with a baseline resend
	// period (PoolOptions.Retransmit) — the reliability layer under lossy
	// transports. Zero on reliable transports.
	defaultRetransmit time.Duration

	shards [callShards]callShard
	next   atomic.Uint64
	pend   sync.Pool // recycled pending slots with quorum-capacity channels

	// Coalescer totals of links retired by Redial, folded in so
	// CoalesceStats stays monotonic across recoveries.
	retiredMsgs   atomic.Int64
	retiredFrames atomic.Int64

	// inflight tracks delayed (fault-injected) sends still riding timers,
	// so Close can wait for stragglers instead of racing them.
	inflight sync.WaitGroup

	// Observability, installed by registerMetrics when PoolOptions.Metrics
	// is set; all nil/zero (and unused) on a bare pool. The histograms are
	// nil-safe, but rpc still checks before observing to keep the bare hot
	// path free of even the no-op call.
	busy      atomic.Int64 // quorum calls aborted by a busy reply
	rpcHist   *obs.Histogram
	batchHist *obs.Histogram

	// trace, when non-nil, is the election flight recorder: rpc records
	// encode/send/quorum-wait spans and straggler/retransmit events into
	// it. Nil on an untraced pool — every recording site is guarded, so
	// the untraced hot path is unchanged.
	trace *trace.Recorder
}

// PoolOptions tunes a Pool at dial time. Every field's zero value is the
// default — one connection per server, coalescing on, no default
// retransmit, unobserved, untraced — so PoolOptions{} is always valid;
// NewPool folds a transport.Spec's knobs into the zero fields.
type PoolOptions struct {
	// NoCoalesce disables per-server frame batching: every message travels
	// as its own frame and is encoded per connection, the pre-batching wire
	// behavior. It exists for the benchmarks' unbatched baseline and for
	// debugging frame-level traces; production paths leave it off.
	NoCoalesce bool

	// ConnShards is how many connections the pool dials per server, with
	// elections hashed across them (the same Fibonacci hash as the
	// coalescer stripes) so concurrent elections' decode and write loops
	// parallelize instead of funneling through one read loop per server.
	// 0 or 1 means one connection per server, the pre-sharding behavior.
	ConnShards int

	// Retransmit arms every client of this pool with a default quorum-wait
	// resend period, as if a fault plan demanded it: rpc rebroadcasts on
	// that tick and the router dedups the duplicate replies by sender.
	// This is the reliability layer of lossy transports — NewPool defaults
	// it to fault.DefaultRetransmitTick on UDP — kept strictly below the
	// quorum semantics. 0 means no default; a fault plan's SetFaults can
	// still arm its own period (it never disarms this one).
	Retransmit time.Duration

	// Metrics, when non-nil, registers the pool's client-side instruments
	// (pending-call depth, coalescing totals, quorum round-trip latency,
	// batch-size distribution, busy sheds) on the registry.
	Metrics *obs.Registry

	// Trace, when non-nil, records per-call client-phase spans (encode,
	// send, quorum-wait) and straggler/retransmit events into the
	// flight recorder. Nil leaves the hot path untraced and unchanged.
	Trace *trace.Recorder
}

// serverLink is one server's connection bundle: its connShards transport
// connections (elections hash across them, so two elections in flight
// ride different read and write loops) and the coalescer stripes (nil
// when coalescing is off; stripe s writes connection s mod connShards, so
// an election's coalescer and connection choices agree). Immutable once
// published in a Pool slot; Redial replaces the whole bundle.
type serverLink struct {
	conns []transport.Conn // [connShards]
	cos   []*coalescer     // [coalShards]; nil when coalescing off
}

// conn returns the connection an election's coalescer stripe rides.
func (l *serverLink) conn(cshard int) transport.Conn {
	if len(l.conns) == 1 {
		return l.conns[0]
	}
	return l.conns[cshard%len(l.conns)]
}

// pending is one outstanding communicate call awaiting quorum replies.
type pending struct {
	ch     chan *wire.Msg
	cli    *Client
	routed int    // replies routed so far, guarded by the call's shard mutex
	seen   []bool // [server]; dedups retransmission-induced duplicate replies
}

// callShardOf routes a call ID to its stripe. Plain masking is the right
// hash here: IDs are consecutive, so concurrent calls occupy distinct
// stripes by construction.
func (pl *Pool) callShardOf(call uint64) *callShard {
	return &pl.shards[call&(callShards-1)]
}

// DialPool connects to every server address over the given network, with
// frame coalescing on. The address slice is indexed by server id; its
// length is the quorum system size n. Unreachable servers are tolerated up
// to the model's fault budget ⌈n/2⌉−1 — a dead replica at dial time is the
// same fault as one that crashes later, and quorum calls route around it;
// only when a majority cannot be reached does DialPool fail, closing every
// connection it had already established.
func DialPool(nw transport.Network, addrs []string) (*Pool, error) {
	return DialPoolOpts(nw, addrs, PoolOptions{})
}

// mergeSpec folds a transport spec's pool-facing knobs into options whose
// corresponding fields are still zero: sharding and batching follow the
// spec, the flight recorder threads through, and an unreliable substrate
// arms the default retransmit period — the client-side reliability layer
// that sits strictly below the quorum semantics (dedup lives in the reply
// router; see pending.seen).
func mergeSpec(spec transport.Spec, opts PoolOptions) PoolOptions {
	opts.NoCoalesce = opts.NoCoalesce || spec.NoBatch
	if opts.ConnShards == 0 {
		opts.ConnShards = spec.Shards
	}
	if opts.Trace == nil {
		opts.Trace = spec.Trace
	}
	if opts.Retransmit == 0 && !spec.Reliable() {
		opts.Retransmit = DefaultDatagramRetransmit
	}
	return opts
}

// DefaultDatagramRetransmit is the resend period mergeSpec arms on
// unreliable substrates. It is deliberately above fault.DefaultRetransmitTick
// (which is tuned for the simulator's artificial loss rates): on a real
// datagram socket the common case is zero loss, so the first resend should
// fire past the p99 of a loaded quorum round-trip, not in the middle of it —
// resending a call that is merely slow floods every server with duplicates.
const DefaultDatagramRetransmit = 5 * time.Millisecond

// NewPool dials a client pool under the given transport spec — the one
// entry point that keeps the spec's knobs (sharding, batching, tracing,
// reliability) consistent between the transport and the pool on top of it.
// DialPool/DialPoolOpts remain for callers that build a Network themselves.
func NewPool(spec transport.Spec, addrs []string, opts PoolOptions) (*Pool, error) {
	nw, err := spec.Network()
	if err != nil {
		return nil, err
	}
	return DialPoolOpts(nw, addrs, mergeSpec(spec, opts))
}

// DialPoolOpts is DialPool with explicit options.
func DialPoolOpts(nw transport.Network, addrs []string, opts PoolOptions) (*Pool, error) {
	shards := opts.ConnShards
	if shards < 1 {
		shards = 1
	}
	pl := &Pool{
		n:                 len(addrs),
		links:             make([]atomic.Pointer[serverLink], len(addrs)),
		nw:                nw,
		addrs:             append([]string(nil), addrs...),
		noCoalesce:        opts.NoCoalesce,
		connShards:        shards,
		defaultRetransmit: opts.Retransmit,
		trace:             opts.Trace,
	}
	for i := range pl.shards {
		pl.shards[i].calls = make(map[uint64]*pending)
	}
	pl.pend.New = func() any {
		return &pending{ch: make(chan *wire.Msg, pl.n), seen: make([]bool, pl.n)}
	}
	var down []string
	for i, addr := range addrs {
		conns, err := pl.dialLink(addr)
		if err != nil {
			down = append(down, fmt.Sprintf("server %d at %s: %v", i, addr, err))
			continue
		}
		pl.links[i].Store(pl.newLink(conns))
	}
	if len(down) > (len(addrs)-1)/2 {
		// Startup failure must not leak the minority that did answer:
		// every already-dialed connection is closed before reporting.
		pl.closeConns()
		return nil, fmt.Errorf("electd: %d of %d servers unreachable — a majority quorum is impossible (%s)",
			len(down), len(addrs), strings.Join(down, "; "))
	}
	if opts.Metrics != nil {
		pl.registerMetrics(opts.Metrics)
	}
	return pl, nil
}

// N returns the quorum system size.
func (pl *Pool) N() int { return pl.n }

// dialLink dials the connShards connections of one server. A server is
// connected whole or not at all: if any shard fails, the partial set is
// closed before the error is reported, so a failed dial never leaks
// bound sockets (the same discipline DialPool applies across servers).
func (pl *Pool) dialLink(addr string) ([]transport.Conn, error) {
	conns := make([]transport.Conn, pl.connShards)
	for s := range conns {
		c, err := pl.nw.Dial(addr, pl.handle)
		if err != nil {
			for _, d := range conns[:s] {
				d.Close()
			}
			return nil, err
		}
		conns[s] = c
	}
	return conns, nil
}

// newLink dials nothing: it wraps established connections in a link
// bundle — fresh coalescers (hist pre-installed when metrics are on), the
// straggler/fault reply filter armed on every shard. Shared by dial time
// and Redial.
func (pl *Pool) newLink(conns []transport.Conn) *serverLink {
	link := &serverLink{conns: conns}
	if !pl.noCoalesce {
		link.cos = make([]*coalescer, coalShards)
		for s := range link.cos {
			// Stripe s flushes on connection s mod connShards — the same
			// reduction serverLink.conn applies — so one election's
			// messages always ride one connection, batched or not.
			link.cos[s] = &coalescer{conn: conns[s%len(conns)], hist: pl.batchHist}
		}
	}
	for _, c := range conns {
		if fc, ok := c.(transport.FilteredConn); ok {
			// Drop straggler replies — answers to calls that already
			// reached quorum — before they are decoded: at n servers per
			// broadcast, almost half of all view replies are stragglers,
			// and their decode (entries, statuses, allocations) is the
			// single largest avoidable cost on the client's read loops.
			// Under a fault plan the same filter also samples
			// reply-direction link loss (see keepReply).
			fc.SetFilter(pl.keepReply)
		}
	}
	return link
}

// Redial reconnects the pool to server j — the client half of
// crash-recovery, called after the server's listener Recovered. The old
// connection (severed by the crash anyway) is closed and its link slot
// atomically replaced, so in-flight broadcasts resolve either bundle,
// never a torn one; retransmitting calls pick up the fresh connection on
// their next tick. The retired coalescers' totals fold into the pool's so
// CoalesceStats stays monotonic.
func (pl *Pool) Redial(j int) error {
	if j < 0 || j >= pl.n {
		return fmt.Errorf("electd: redial server %d of a %d-server pool", j, pl.n)
	}
	conns, err := pl.dialLink(pl.addrs[j])
	if err != nil {
		return fmt.Errorf("electd: redial server %d at %s: %w", j, pl.addrs[j], err)
	}
	old := pl.links[j].Swap(pl.newLink(conns))
	if old != nil {
		for _, co := range old.cos {
			pl.retiredMsgs.Add(co.msgs.Load())
			pl.retiredFrames.Add(co.frames.Load())
		}
		for _, c := range old.conns {
			c.Close()
		}
	}
	return nil
}

// CoalesceStats reports the pool's batching effectiveness: msgs is the
// number of messages that went through the coalescers, frames the number
// of wire frames they were sent in. frames < msgs means multi-op batching
// happened; a NoCoalesce pool reports zeros.
func (pl *Pool) CoalesceStats() (msgs, frames int64) {
	msgs, frames = pl.retiredMsgs.Load(), pl.retiredFrames.Load()
	for j := range pl.links {
		link := pl.links[j].Load()
		if link == nil {
			continue
		}
		for _, co := range link.cos {
			msgs += co.msgs.Load()
			frames += co.frames.Load()
		}
	}
	return msgs, frames
}

// keepReply is the pool's pre-decode filter (transport.FrameFilter): a
// reply is a straggler — nobody will ever read it — once its call is no
// longer pending or a full quorum has already been routed, and stragglers
// are dropped before their decode. With streaming dispatch the routed
// count is current up to the previous reply of the same inbound batch, so
// at n replies per broadcast almost half of all view decodes (entries,
// statuses, their allocations) simply never happen. Anything that is not a
// well-formed reply header passes through to the full decoder, which is
// the arbiter of validity. The filter is advisory and racy by design: a
// call completing between this check and the router's is dropped there
// instead, and the reverse race cannot happen (calls are registered before
// any request is sent).
// When the waiting client carries a fault plan, the filter is also the
// reply-direction loss seam: the reply's sender id is peeked from the
// header and the client's replyDrop hook — concurrency-safe, it runs on
// every connection's read loop — decides whether this reply died on the
// (server → client) link. Dropping here, before decode, is exactly where
// a lost reply would have vanished on a real wire.
func (pl *Pool) keepReply(body []byte) bool {
	k, call, from, ok := wire.PeekReplyFrom(body)
	if !ok || (k != wire.KindAck && k != wire.KindView && k != wire.KindBusy) {
		return true
	}
	sh := pl.callShardOf(call)
	sh.mu.Lock()
	p := sh.calls[call]
	keep := p != nil && p.routed < pl.n/2+1
	var drop func(int) bool
	if keep {
		drop = p.cli.replyDrop
	}
	var el uint64
	if pl.trace != nil && p != nil {
		el = p.cli.election // read under the shard lock; gone calls trace as election 0
	}
	sh.mu.Unlock()
	if keep && drop != nil && drop(int(from)) {
		return false
	}
	if !keep && pl.trace != nil {
		pl.trace.Event(el, 0, trace.PStraggler, int64(from))
	}
	return keep
}

// handle is the pool's reply router: it runs on each connection's read loop
// and must never block, so pending channels are buffered for every possible
// reply (n servers answer a call at most once each) and the send is
// non-blocking even while the call's shard lock is held — which is what
// makes recycling a completed call's slot safe: once the call is deleted
// under the shard lock, no router touches its channel. Replies to completed
// calls are dropped — those are the stragglers beyond the quorum, the same
// abandoned-buffer asymmetry the in-process backend has.
func (pl *Pool) handle(_ transport.Conn, m *wire.Msg) {
	if m.Kind != wire.KindAck && m.Kind != wire.KindView && m.Kind != wire.KindBusy {
		wire.RecycleMsg(m) // protocol noise; nobody saw its entries
		return
	}
	sh := pl.callShardOf(m.Call)
	routed := false
	sh.mu.Lock()
	if p := sh.calls[m.Call]; p != nil {
		// Retransmitted requests draw duplicate replies from servers that
		// already answered; dedup by sender so a repeat answer can never
		// stand in for a distinct quorum member.
		if f := int(m.From); f >= 0 && f < len(p.seen) && p.seen[f] {
			sh.mu.Unlock()
			wire.RecycleMsg(m)
			return
		} else if f >= 0 && f < len(p.seen) {
			p.seen[f] = true
		}
		p.routed++
		p.cli.msgs.Add(1)
		p.cli.bytes.Add(int64(m.WireSize()))
		select {
		case p.ch <- m:
			routed = true
		default: // over-full only if a server misbehaves; drop
		}
	}
	sh.mu.Unlock()
	if !routed {
		// Straggler past the filter race, or the misbehaving-server drop:
		// the reply dies here, entries unseen, so the arena keeps them.
		wire.RecycleMsg(m)
	}
}

// closeConns severs every established server connection, all shards.
func (pl *Pool) closeConns() {
	for j := range pl.links {
		if link := pl.links[j].Load(); link != nil {
			for _, c := range link.conns {
				c.Close()
			}
		}
	}
}

// Close severs every server connection. Outstanding communicate calls fail
// to make progress after Close; callers shut participants down first.
func (pl *Pool) Close() error {
	pl.inflight.Wait()
	pl.closeConns()
	return nil
}

// NewComm returns participant p's communicate handle for one election
// instance. delay (optional) injects per-server send latency — it is
// sampled on the participant's algorithm goroutine, so a plan-driven
// sampler may use a goroutine-owned PRNG. The handle must only be used
// from p's algorithm goroutine.
func (pl *Pool) NewComm(p rt.Procer, election uint64, delay func(server int) time.Duration) *Client {
	return &Client{
		pool: pl, p: p, election: election, delay: delay,
		// The election's coalescer stripe: all participants of one election
		// batch together; different elections flush on different locks.
		cshard: coalShardOf(election),
		seqs:   make(map[string]uint64),
		// The pool's baseline resend period (set on lossy transports);
		// SetFaults may arm a plan-specific one on top, never disarm this.
		retransmit: pl.defaultRetransmit,
		// A per-client jitter stream (xorshift64) decorrelates retransmit
		// timers across participants and elections: seeded from both IDs
		// so equal configurations still tick at different phases. The ^1
		// guards the all-zero state xorshift cannot leave.
		jit: (uint64(p.ID())+1)*0x9E3779B97F4A7C15 ^ election ^ 1,
	}
}

// Client is one participant's rt.Comm in one election instance: every
// communicate call broadcasts to all n servers through the pool and blocks
// until ⌊n/2⌋+1 of them answer — so any two calls, by any participants,
// intersect in at least one server, the property every proof in the paper
// stands on.
type Client struct {
	pool     *Pool
	p        rt.Procer
	election uint64
	cshard   int // coalescer stripe of this election, fixed at NewComm
	delay    func(int) time.Duration
	seqs     map[string]uint64 // per-register write versions of the own cell
	calls    int
	round    int32 // current protocol round, for span attribution (SetRound)

	// Single-goroutine scratch, reused across communicate calls: the
	// request message (safe because every send path has finished with it
	// before rpc returns — except delayed sends, which get fresh messages),
	// its one-entry payload, the quorum-reply collection slice, and the
	// views Collect hands back (valid until the participant's next
	// communicate call, per the rt.Comm contract).
	req     wire.Msg
	entry   [1]rt.Entry
	replies []*wire.Msg
	views   []rt.View

	// Fault-plan hooks, installed by SetFaults before the participant
	// starts; all nil/zero on a bare client, leaving the hot path alone.
	drop       func(server int) bool // request-direction loss; algorithm goroutine
	replyDrop  func(server int) bool // reply-direction loss; any read loop (must be concurrency-safe)
	retransmit time.Duration         // quorum-wait resend period; 0 = never resend
	jit        uint64                // xorshift64 retransmit-jitter state; algorithm goroutine
	noq        <-chan struct{}       // closed when this client is provably starved of quorums
	noqProc    int                   // participant id reported in the NoQuorumError

	msgs  atomic.Int64 // frames sent + replies received (the router bumps these)
	bytes atomic.Int64
}

// FaultProfile arms one client with a fault plan's link behavior; every
// field is optional. Drop decides request-direction loss per server and
// runs on the participant's algorithm goroutine (a goroutine-owned PRNG is
// fine); ReplyDrop decides reply-direction loss and runs concurrently on
// the connections' read loops, so it must be safe for concurrent calls.
// Retransmit > 0 makes quorum waits rebroadcast on that period — required
// for liveness under partitions, flaky links, and crash-recovery, since
// the algorithms themselves never resend. NoQuorum, when it fires, aborts
// the client's current and future quorum waits by unwinding the
// participant's goroutine with a *fault.NoQuorumError panic — the typed
// no-quorum outcome for clients the plan has provably cut off; recover it
// like a crash at the election runner.
type FaultProfile struct {
	Drop       func(server int) bool
	ReplyDrop  func(server int) bool
	Retransmit time.Duration
	NoQuorum   <-chan struct{}
	Proc       int
}

// SetFaults installs the profile. Call before the participant's goroutine
// starts; the hooks are read without synchronization afterwards. A zero
// Retransmit leaves the pool's default period armed (the lossy-transport
// reliability layer) rather than disarming resends.
func (c *Client) SetFaults(fp FaultProfile) {
	c.drop, c.replyDrop = fp.Drop, fp.ReplyDrop
	if fp.Retransmit > 0 {
		c.retransmit = fp.Retransmit
	}
	c.noq, c.noqProc = fp.NoQuorum, fp.Proc
}

// jitter stretches a retransmit period by a uniform 0–25%, advancing the
// client's xorshift64 stream. Strictly upward on purpose: spreading the
// phase is what breaks resend synchronization, and firing *early* would
// add spurious duplicates on quorum calls that were about to complete
// anyway. Runs on the algorithm goroutine only (the jit state is
// unsynchronized scratch, like the rest of the client's arena).
func (c *Client) jitter(d time.Duration) time.Duration {
	x := c.jit
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.jit = x
	return d + d*time.Duration(x%256)/1024
}

// SetRound records the protocol round in progress, so subsequent spans
// carry it. Tracing metadata only — never read by the quorum protocol.
// Must be called from the participant's algorithm goroutine (the round
// hook in core fires there).
func (c *Client) SetRound(r int) { c.round = int32(r) }

// Proc implements rt.Comm.
func (c *Client) Proc() rt.Procer { return c.p }

// QuorumSize implements rt.Comm: ⌊n/2⌋+1 of the n servers.
func (c *Client) QuorumSize() int { return c.pool.n/2 + 1 }

// Calls reports the number of communicate calls made — the paper's time
// metric. Read it after the participant's goroutine has returned.
func (c *Client) Calls() int { return c.calls }

// Messages reports the frames this participant sent plus the replies that
// reached it; Bytes the same in encoded bytes.
func (c *Client) Messages() int64 { return c.msgs.Load() }

// Bytes reports the participant's total wire traffic in bytes.
func (c *Client) Bytes() int64 { return c.bytes.Load() }

// msg returns the request message for one communicate call: the client's
// reusable scratch normally, a fresh message when delayed sends may retain
// it beyond this call.
func (c *Client) msg() *wire.Msg {
	if c.delay != nil {
		return &wire.Msg{}
	}
	c.req = wire.Msg{}
	return &c.req
}

// Propagate implements rt.Comm: bump the own cell of reg and push it to a
// quorum of servers. One communicate call.
func (c *Client) Propagate(reg string, val rt.Value) {
	c.seqs[reg]++
	m := c.msg()
	m.Kind, m.Election, m.From, m.Reg = wire.KindPropagate, c.election, c.p.ID(), reg
	if c.delay != nil {
		m.Entries = []rt.Entry{{Reg: reg, Owner: c.p.ID(), Seq: c.seqs[reg], Val: val}}
	} else {
		c.entry[0] = rt.Entry{Reg: reg, Owner: c.p.ID(), Seq: c.seqs[reg], Val: val}
		m.Entries = c.entry[:]
	}
	c.rpc(m, false)
}

// Collect implements rt.Comm: gather the register-array views of a quorum
// of servers. One communicate call. The returned slice is scratch reused
// by the client: it is valid until this participant's next communicate
// call (its entries are shared immutables and stay valid).
func (c *Client) Collect(reg string) []rt.View {
	m := c.msg()
	m.Kind, m.Election, m.From, m.Reg = wire.KindCollect, c.election, c.p.ID(), reg
	replies := c.rpc(m, true)
	c.views = c.views[:0]
	for _, r := range replies {
		c.views = append(c.views, rt.View{From: r.From, Entries: r.Entries})
		wire.PutMsg(r) // the view keeps the entries; the wrapper recycles
	}
	return c.views
}

// rpc broadcasts m to every server and blocks until a quorum has answered,
// returning the replies when keep is set (collects) and discarding them
// otherwise (propagate acks carry no payload). Sends to crashed or
// unreachable servers are message loss; the quorum wait rides on the
// ⌊n/2⌋+1 live majority the model guarantees.
//
// A busy reply arriving within the quorum wait aborts the call: the write
// is not known to be on a quorum, and rt.Comm has no error path, so after
// restoring the pool's state rpc unwinds the participant's goroutine with
// a *BusyError panic — recover it with CatchBusy around the election run.
// A busy reply arriving after a genuine quorum is a straggler: the quorum
// property already holds, and the filter or router drops it like any other.
func (c *Client) rpc(m *wire.Msg, keep bool) []*wire.Msg {
	pl := c.pool
	rec := pl.trace
	var t0 time.Time
	if pl.rpcHist != nil {
		t0 = time.Now()
	}
	call := pl.next.Add(1)
	m.Call = call
	p := pl.pend.Get().(*pending)
	p.cli = c
	sh := pl.callShardOf(call)
	sh.mu.Lock()
	sh.calls[call] = p
	sh.mu.Unlock()

	// Bit-complexity accounting counts frame bodies, like the sim kernel's
	// PayloadBytes; the length prefix — and a batch frame's header — is
	// transport framing, not payload.
	size := int64(m.WireSize())
	var frame []byte // encoded once, lazily; every broadcast reuses the bytes
	broadcast := func(skip []bool) {
		sent := int64(0)
		for j := 0; j < pl.n; j++ {
			if skip != nil && skip[j] {
				continue // this server already answered; nothing to gain
			}
			link := pl.links[j].Load()
			if link == nil {
				continue // server was unreachable at dial time: nothing to send
			}
			sent++ // a dropped request still went onto the wire and died there
			if c.drop != nil && c.drop(j) {
				continue
			}
			if c.delay != nil {
				if d := c.delay(j); d > 0 {
					transport.SendDelayed(link.conn(c.cshard), m, d, &pl.inflight)
					continue
				}
			}
			if link.cos != nil {
				if frame == nil {
					var encT0 int64
					if rec != nil {
						encT0 = trace.Now()
					}
					var err error
					if frame, err = wire.Append(wire.GetBuf(), m); err != nil {
						// Unencodable payloads cannot reach any server: loss on
						// every link, exactly as the per-conn Send path reports.
						wire.PutBuf(frame)
						frame = nil
						break
					}
					if rec != nil {
						rec.Record(c.election, c.round, trace.PEncode, encT0, trace.Now()-encT0, int64(len(frame)))
					}
				}
				link.cos[c.cshard].enqueue(frame)
			} else {
				link.conn(c.cshard).Send(m) //nolint:errcheck // loss, per the model
			}
		}
		c.msgs.Add(sent)
		c.bytes.Add(sent * size)
	}
	var sendT0, waitT0 int64
	if rec != nil {
		sendT0 = trace.Now()
	}
	broadcast(nil)
	if rec != nil {
		waitT0 = trace.Now()
		rec.Record(c.election, c.round, trace.PSend, sendT0, waitT0-sendT0, int64(pl.n))
	}

	need := c.QuorumSize()
	c.replies = c.replies[:0]
	shed, starved := false, false
	if c.retransmit == 0 && c.noq == nil {
		// The bare fast path: nothing to select on but the replies.
		for len(c.replies) < need {
			r := <-p.ch
			if r.Kind == wire.KindBusy {
				shed = true
				wire.RecycleMsg(r)
				break
			}
			c.replies = append(c.replies, r)
		}
	} else {
		var resends int64
		var tmr *time.Timer
		var tickC <-chan time.Time
		period := c.retransmit
		if period > 0 {
			tmr = time.NewTimer(c.jitter(period))
			defer tmr.Stop()
			tickC = tmr.C
		}
		var skip []bool
	wait:
		for len(c.replies) < need {
			select {
			case r := <-p.ch:
				if r.Kind == wire.KindBusy {
					shed = true
					wire.RecycleMsg(r)
					break wait
				}
				c.replies = append(c.replies, r)
			case <-tickC:
				// Resend — but only to servers that haven't answered this
				// call, and with the period doubling each round (capped)
				// plus 0–25% jitter. A blanket fixed-period rebroadcast
				// amplifies itself on a loss-free substrate: a call that
				// merely runs slow under load re-floods all n servers every
				// tick, slowing the others past their ticks in turn — and
				// with many concurrent elections sharing connections,
				// unjittered timers synchronize into resend bursts that
				// convoy the datagram sockets, which is exactly the udp
				// degradation T15 measured at conc=64. Selective, backed-off,
				// desynchronized resends still carry the call across
				// partitions, flaky links, and crash-recovery windows;
				// duplicate replies are deduped by the router.
				if rec != nil {
					resends++
					rec.Event(c.election, c.round, trace.PRetransmit, resends)
				}
				if skip == nil {
					skip = make([]bool, len(p.seen))
				}
				sh.mu.Lock()
				copy(skip, p.seen)
				sh.mu.Unlock()
				broadcast(skip)
				if period < c.retransmit<<6 {
					period *= 2
				}
				tmr.Reset(c.jitter(period))
			case <-c.noq:
				// The plan proved this client can never reach a quorum
				// again, and the grace period is over: abort with the typed
				// no-quorum outcome instead of waiting forever.
				starved = true
				break wait
			}
		}
	}
	if rec != nil {
		rec.Record(c.election, c.round, trace.PQuorumWait, waitT0, trace.Now()-waitT0, int64(len(c.replies)))
	}
	if frame != nil {
		wire.PutBuf(frame)
	}
	sh.mu.Lock()
	delete(sh.calls, call)
	sh.mu.Unlock()
	// After the delete, no router holds the slot: drain the stragglers that
	// beat the deletion and recycle everything — entries too, since these
	// replies were never handed to the caller.
	for {
		select {
		case m := <-p.ch:
			wire.RecycleMsg(m)
			continue
		default:
		}
		break
	}
	for i := range p.seen {
		p.seen[i] = false
	}
	p.cli, p.routed = nil, 0
	pl.pend.Put(p)
	c.calls++
	if shed {
		for _, r := range c.replies {
			wire.RecycleMsg(r)
		}
		pl.busy.Add(1)
		panic(&BusyError{Election: c.election})
	}
	if starved {
		for _, r := range c.replies {
			wire.RecycleMsg(r)
		}
		panic(&fault.NoQuorumError{Proc: c.noqProc})
	}
	if pl.rpcHist != nil {
		pl.rpcHist.Observe(time.Since(t0).Microseconds())
	}
	if !keep {
		// Propagate acks carry no entries the caller ever sees; recycle
		// whole so ack decodes stay allocation-free.
		for _, r := range c.replies {
			wire.RecycleMsg(r)
		}
		return nil
	}
	return c.replies
}
