package electd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Pool is a client process's connection pool over the n election servers:
// one pooled transport connection per server, shared by every participant
// and election instance in the process, with a call table routing replies
// back to the communicate call that is waiting for them.
type Pool struct {
	n     int
	conns []transport.Conn

	mu    sync.Mutex
	calls map[uint64]*pending
	next  atomic.Uint64

	// inflight tracks delayed (fault-injected) sends still riding timers,
	// so Close can wait for stragglers instead of racing them.
	inflight sync.WaitGroup
}

// pending is one outstanding communicate call awaiting quorum replies.
type pending struct {
	ch  chan *wire.Msg
	cli *Client
}

// DialPool connects to every server address over the given network. The
// address slice is indexed by server id; its length is the quorum system
// size n. Unreachable servers are tolerated up to the model's fault budget
// ⌈n/2⌉−1 — a dead replica at dial time is the same fault as one that
// crashes later, and quorum calls route around it; only when a majority
// cannot be reached does DialPool fail.
func DialPool(nw transport.Network, addrs []string) (*Pool, error) {
	pl := &Pool{n: len(addrs), calls: make(map[uint64]*pending)}
	var down []string
	for i, addr := range addrs {
		c, err := nw.Dial(addr, pl.handle)
		if err != nil {
			down = append(down, fmt.Sprintf("server %d at %s: %v", i, addr, err))
			pl.conns = append(pl.conns, nil)
			continue
		}
		pl.conns = append(pl.conns, c)
	}
	if len(down) > (len(addrs)-1)/2 {
		pl.Close()
		return nil, fmt.Errorf("electd: %d of %d servers unreachable — a majority quorum is impossible (%s)",
			len(down), len(addrs), strings.Join(down, "; "))
	}
	return pl, nil
}

// N returns the quorum system size.
func (pl *Pool) N() int { return pl.n }

// handle is the pool's reply router: it runs on each connection's read loop
// and must never block, so pending channels are buffered for every possible
// reply (n servers answer a call at most once each). Replies to completed
// calls are dropped — those are the stragglers beyond the quorum, the same
// abandoned-buffer asymmetry the in-process backend has.
func (pl *Pool) handle(_ transport.Conn, m *wire.Msg) {
	if m.Kind != wire.KindAck && m.Kind != wire.KindView {
		return
	}
	pl.mu.Lock()
	p := pl.calls[m.Call]
	pl.mu.Unlock()
	if p == nil {
		return
	}
	p.cli.msgs.Add(1)
	p.cli.bytes.Add(int64(m.WireSize()))
	select {
	case p.ch <- m:
	default: // over-full only if a server misbehaves; drop
	}
}

// Close severs every server connection. Outstanding communicate calls fail
// to make progress after Close; callers shut participants down first.
func (pl *Pool) Close() error {
	pl.inflight.Wait()
	for _, c := range pl.conns {
		if c != nil {
			c.Close()
		}
	}
	return nil
}

// NewComm returns participant p's communicate handle for one election
// instance. delay (optional) injects per-server send latency — it is
// sampled on the participant's algorithm goroutine, so a plan-driven
// sampler may use a goroutine-owned PRNG. The handle must only be used
// from p's algorithm goroutine.
func (pl *Pool) NewComm(p rt.Procer, election uint64, delay func(server int) time.Duration) *Client {
	return &Client{pool: pl, p: p, election: election, delay: delay, seqs: make(map[string]uint64)}
}

// Client is one participant's rt.Comm in one election instance: every
// communicate call broadcasts to all n servers through the pool and blocks
// until ⌊n/2⌋+1 of them answer — so any two calls, by any participants,
// intersect in at least one server, the property every proof in the paper
// stands on.
type Client struct {
	pool     *Pool
	p        rt.Procer
	election uint64
	delay    func(int) time.Duration
	seqs     map[string]uint64 // per-register write versions of the own cell
	calls    int

	msgs  atomic.Int64 // frames sent + replies received (the router bumps these)
	bytes atomic.Int64
}

// Proc implements rt.Comm.
func (c *Client) Proc() rt.Procer { return c.p }

// QuorumSize implements rt.Comm: ⌊n/2⌋+1 of the n servers.
func (c *Client) QuorumSize() int { return c.pool.n/2 + 1 }

// Calls reports the number of communicate calls made — the paper's time
// metric. Read it after the participant's goroutine has returned.
func (c *Client) Calls() int { return c.calls }

// Messages reports the frames this participant sent plus the replies that
// reached it; Bytes the same in encoded bytes.
func (c *Client) Messages() int64 { return c.msgs.Load() }

// Bytes reports the participant's total wire traffic in bytes.
func (c *Client) Bytes() int64 { return c.bytes.Load() }

// Propagate implements rt.Comm: bump the own cell of reg and push it to a
// quorum of servers. One communicate call.
func (c *Client) Propagate(reg string, val rt.Value) {
	c.seqs[reg]++
	e := rt.Entry{Reg: reg, Owner: c.p.ID(), Seq: c.seqs[reg], Val: val}
	c.rpc(&wire.Msg{
		Kind: wire.KindPropagate, Election: c.election, From: c.p.ID(),
		Reg: reg, Entries: []rt.Entry{e},
	})
}

// Collect implements rt.Comm: gather the register-array views of a quorum
// of servers. One communicate call.
func (c *Client) Collect(reg string) []rt.View {
	replies := c.rpc(&wire.Msg{
		Kind: wire.KindCollect, Election: c.election, From: c.p.ID(), Reg: reg,
	})
	views := make([]rt.View, len(replies))
	for i, m := range replies {
		views[i] = rt.View{From: m.From, Entries: m.Entries}
	}
	return views
}

// rpc broadcasts m to every server and blocks until a quorum has answered.
// Sends to crashed or unreachable servers are message loss; the quorum wait
// rides on the ⌊n/2⌋+1 live majority the model guarantees.
func (c *Client) rpc(m *wire.Msg) []*wire.Msg {
	pl := c.pool
	call := pl.next.Add(1)
	m.Call = call
	p := &pending{ch: make(chan *wire.Msg, pl.n), cli: c}
	pl.mu.Lock()
	pl.calls[call] = p
	pl.mu.Unlock()

	// Bit-complexity accounting counts frame bodies, like the sim kernel's
	// PayloadBytes; the length prefix is transport framing, not payload.
	size := int64(m.WireSize())
	for j := 0; j < pl.n; j++ {
		if pl.conns[j] == nil {
			continue // server was unreachable at dial time: nothing to send
		}
		c.msgs.Add(1)
		c.bytes.Add(size)
		if c.delay != nil {
			if d := c.delay(j); d > 0 {
				transport.SendDelayed(pl.conns[j], m, d, &pl.inflight)
				continue
			}
		}
		pl.conns[j].Send(m) //nolint:errcheck // loss, per the model
	}

	need := c.QuorumSize()
	out := make([]*wire.Msg, need)
	for i := 0; i < need; i++ {
		out[i] = <-p.ch
	}
	pl.mu.Lock()
	delete(pl.calls, call)
	pl.mu.Unlock()
	c.calls++
	return out
}
