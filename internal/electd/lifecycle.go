package electd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/trace"
)

// ServerOptions tunes a Server's state lifecycle. The zero value disables
// all of it: no eviction, no admission bound, no metrics — exactly the
// pre-lifecycle server, which retains instance state until RemoveElection.
type ServerOptions struct {
	// TTL evicts election instances that no request has touched for this
	// long; 0 disables TTL eviction. The TTL is a host policy living above
	// the quorum semantics, so it must be set from knowledge of the
	// workload: an instance evicted while its election still runs loses
	// register state on this replica, exactly like a crash — safe within
	// the model's ⌈n/2⌉−1 fault budget but not free. Pick a TTL longer
	// than the longest idle gap a live election can have (for the paper's
	// algorithms, the gap between two communicate calls of its slowest
	// participant), the same contract session TTLs have everywhere.
	TTL time.Duration

	// SweepInterval is how often the background sweeper scans for evictable
	// instances. 0 defaults to TTL/4 (bounded to [10ms, 10s]) when TTL is
	// set; with TTL == 0 and MaxLivePerShard == 0 no sweeper runs at all.
	SweepInterval time.Duration

	// MaxLivePerShard bounds the election instances one shard will host; 0
	// means unbounded. Above the bound, propagates that would create a new
	// instance are refused with a busy reply (admission control — see
	// Server.Handle), and the sweeper additionally evicts the
	// least-recently-used instances of an over-full shard even before
	// their TTL, so a burst that was admitted drains back under the bound.
	MaxLivePerShard int

	// DrainIdle is the quiescence bar Drain uses: an instance untouched
	// for this long during a drain is considered finished and evicted. 0
	// defaults to 250ms (or the TTL, when that is shorter).
	DrainIdle time.Duration

	// Metrics, when non-nil, registers the server's gauges and counters on
	// the registry, labeled server="<id>". The instruments are read-side
	// (func-backed from the atomics the server maintains anyway), so
	// enabling metrics adds nothing to the request path.
	Metrics *obs.Registry

	// Trace, when non-nil, records server-phase spans (shard-lock wait,
	// register merge, snapshot hit/miss, reply assembly) into the
	// election flight recorder. Nil leaves Handle untraced and unchanged.
	Trace *trace.Recorder
}

// NewServerOpts creates replica id with an explicit lifecycle. A sweeper
// goroutine runs iff TTL or MaxLivePerShard is set; stop it with Close.
func NewServerOpts(id rt.ProcID, opts ServerOptions) *Server {
	s := &Server{id: id, opts: opts}
	for i := range s.shards {
		empty := electionMap{}
		s.shards[i].live.Store(&empty)
	}
	if opts.Metrics != nil {
		s.registerMetrics(opts.Metrics)
	}
	if opts.TTL > 0 || opts.MaxLivePerShard > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	return s
}

// sweepInterval resolves the sweeper's period from the options.
func (s *Server) sweepInterval() time.Duration {
	if s.opts.SweepInterval > 0 {
		return s.opts.SweepInterval
	}
	if s.opts.TTL > 0 {
		iv := s.opts.TTL / 4
		if iv < 10*time.Millisecond {
			iv = 10 * time.Millisecond
		}
		if iv > 10*time.Second {
			iv = 10 * time.Second
		}
		return iv
	}
	return time.Second
}

// sweepLoop is the background sweeper: every interval it evicts what the
// TTL and the per-shard bound say is reclaimable. It holds each shard's
// lock only for that shard's scan, so a sweep never stalls the service.
func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	t := time.NewTicker(s.sweepInterval())
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.sweepOnce(s.opts.TTL)
		}
	}
}

// sweepOnce runs one eviction pass with an explicit idle bar: instances
// untouched for longer than idle are evicted (idle <= 0 disables that
// half), and shards still above MaxLivePerShard afterwards lose their
// least-recently-used instances down to the bound. It returns how many
// instances were evicted. Drain calls this directly with its own bar.
//
// Eviction mutates under the shard mutex by republishing the map without
// the victims — lifecycle stays locked, the request paths stay lock-free,
// and requests mid-flight on the old map finish against state the sweeper
// merely unpublished (exactly a crash of that replica's copy, which the
// quorum model already tolerates).
func (s *Server) sweepOnce(idle time.Duration) int {
	now := time.Now().UnixNano()
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		cur := sh.instances()
		doomed := map[uint64]bool{}
		if idle > 0 {
			cutoff := now - int64(idle)
			for id, st := range cur {
				if st.last.Load() <= cutoff {
					doomed[id] = true
				}
			}
		}
		if bound := s.opts.MaxLivePerShard; bound > 0 && len(cur)-len(doomed) > bound {
			// LRU eviction down to the bound: sort the survivors by idle
			// clock and drop the oldest. Shards are small (the bound caps
			// them), so the sort is cheap and only runs on over-full shards.
			type rec struct {
				id   uint64
				last int64
			}
			recs := make([]rec, 0, len(cur))
			for id, st := range cur {
				if !doomed[id] {
					recs = append(recs, rec{id, st.last.Load()})
				}
			}
			sort.Slice(recs, func(a, b int) bool { return recs[a].last < recs[b].last })
			for _, r := range recs[:len(recs)-bound] {
				doomed[r.id] = true
			}
		}
		if len(doomed) > 0 {
			next := make(electionMap, len(cur)-len(doomed))
			for id, st := range cur {
				if !doomed[id] {
					next[id] = st
				}
			}
			sh.live.Store(&next)
			total += len(doomed)
		}
		sh.mu.Unlock()
	}
	if total > 0 {
		s.evicted.Add(int64(total))
	}
	return total
}

// BeginDrain flips the server into drain mode: propagates that would
// create a new election instance are refused with busy replies, while
// requests for instances that already exist keep being served so in-flight
// elections can finish. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether the server is in drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully quiesces the server: stop admitting new elections, then
// wait for the live ones to finish — an instance untouched for DrainIdle
// is finished, there being no in-protocol completion signal — evicting
// them as they go idle. It returns nil once no instances remain, or an
// error listing the stragglers if the deadline passes first (the server
// keeps draining; callers typically exit non-zero).
func (s *Server) Drain(timeout time.Duration) error {
	s.BeginDrain()
	bar := s.opts.DrainIdle
	if bar <= 0 {
		bar = 250 * time.Millisecond
	}
	if s.opts.TTL > 0 && s.opts.TTL < bar {
		bar = s.opts.TTL
	}
	deadline := time.Now().Add(timeout)
	for {
		s.sweepOnce(bar)
		n := s.Elections()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("electd: drain deadline (%v) passed with %d election instance(s) still live on server %d", timeout, n, s.id)
		}
		// Poll at a quarter of the idle bar, clamped to [1ms, 100ms] and to
		// the deadline, so a long bar never oversleeps a short timeout.
		wait := bar / 4
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		if until := time.Until(deadline); wait > until {
			wait = until
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		time.Sleep(wait)
	}
}

// Close stops the background sweeper (if any). It does not touch election
// state or the transport listener; pair it with the listener's Close.
// Idempotent and safe on a zero-options server.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.sweepStop != nil {
			close(s.sweepStop)
			<-s.sweepDone
		}
	})
	return nil
}

// Evicted reports how many election instances the sweeper has reclaimed
// (TTL and LRU combined, drain included).
func (s *Server) Evicted() int64 { return s.evicted.Load() }

// Shed reports how many propagates the server refused with a busy reply.
func (s *Server) Shed() int64 { return s.shed.Load() }

// Started reports how many election instances the server has created.
func (s *Server) Started() int64 { return s.started.Load() }

// BusyError is the typed, retryable error a quorum call surfaces when a
// server refuses to admit its election (admission bound hit, or the server
// is draining). The election made no progress this call on that server;
// the write is NOT on a quorum, and the caller should back off and retry
// the whole election (against the same cluster later, or another one), not
// resume mid-protocol.
type BusyError struct {
	Election uint64
}

// Error implements error.
func (e *BusyError) Error() string {
	return fmt.Sprintf("electd: election %d refused admission (server busy or draining)", e.Election)
}

// Temporary marks the condition retryable, net.Error style.
func (e *BusyError) Temporary() bool { return true }

// CatchBusy runs f, converting a busy shed inside it into a *BusyError.
// The rt.Comm interface has no error path — the paper's model has no
// refusals, only crashes — so the client unwinds a shed election with a
// panic the same way the live backend unwinds crashed participants, and
// CatchBusy is the recover point drivers wrap an election attempt in. Any
// other panic propagates.
func CatchBusy(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if be, ok := r.(*BusyError); ok {
				err = be
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}
